#ifndef TDB_OBJECT_LOCK_MANAGER_H_
#define TDB_OBJECT_LOCK_MANAGER_H_

#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <set>

#include "common/metrics.h"
#include "common/status.h"
#include "object/object.h"

namespace tdb::object {

using TxnId = uint64_t;

/// Shared/exclusive object locks with strict two-phase locking (§4.2.3):
/// locks are acquired as objects are opened and released only at
/// transaction end. Deadlocks are broken by timeout — "a blocked call
/// raises an exception after a timeout interval" — surfaced here as
/// Status::LockTimeout.
///
/// All methods must be called with the object store's state mutex held (as
/// a unique_lock); waits release it so other threads can make progress,
/// exactly the state-mutex protocol §4.2.3 describes.
class LockManager {
 public:
  /// Wires contention instruments (all may be null). `acquisitions` counts
  /// every granted Lock call (the 2PL work a lock-free snapshot read
  /// avoids — tests assert it stays flat across read transactions),
  /// `waits` counts Lock calls that actually blocked, `timeouts` counts
  /// deadlock-breaking expirations, and `wait_us` records time spent
  /// blocked — only for calls that blocked, so percentiles describe
  /// contention events rather than being drowned by uncontended zero-wait
  /// acquisitions.
  void AttachMetrics(common::Counter* acquisitions, common::Counter* waits,
                     common::Counter* timeouts, common::Histogram* wait_us);

  /// Acquires a shared (read) or exclusive (write) lock on `oid` for
  /// `txn`. Re-entrant: a holder re-requesting a weaker-or-equal mode
  /// succeeds immediately; a sole shared holder upgrades to exclusive.
  Status Lock(TxnId txn, ObjectId oid, bool exclusive,
              std::unique_lock<std::mutex>& state_lock,
              std::chrono::milliseconds timeout);

  /// Releases every lock held by `txn` and wakes waiters.
  void ReleaseAll(TxnId txn);

  /// Introspection for tests.
  bool HoldsShared(TxnId txn, ObjectId oid) const;
  bool HoldsExclusive(TxnId txn, ObjectId oid) const;

 private:
  struct LockState {
    std::set<TxnId> shared;
    TxnId exclusive = 0;  // 0 = none.
  };

  bool CanGrant(const LockState& state, TxnId txn, bool exclusive) const;

  std::map<ObjectId, LockState> locks_;
  std::map<TxnId, std::set<ObjectId>> held_;
  // One CV for the whole table: DRM workloads have little lock contention
  // (§4.2.3 forgoes granular locking for the same reason).
  std::condition_variable cv_;
  common::Counter* acquisitions_metric_ = nullptr;
  common::Counter* waits_metric_ = nullptr;
  common::Counter* timeouts_metric_ = nullptr;
  common::Histogram* wait_us_metric_ = nullptr;
};

}  // namespace tdb::object

#endif  // TDB_OBJECT_LOCK_MANAGER_H_
