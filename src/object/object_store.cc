#include "object/object_store.h"

#include "common/trace.h"

namespace tdb::object {

namespace {
constexpr uint32_t kHeaderMagic = 0x54445242;  // "TDRB" — root registry.
}  // namespace

// ---------------------------------------------------------------------------
// Transaction

Transaction::Transaction(ObjectStore* store) : store_(store) {
  state_ = store->BeginTxn();
}

Transaction::~Transaction() {
  if (active()) Abort().ok();
}

Result<ObjectId> Transaction::Insert(std::unique_ptr<Object> object) {
  if (!active()) return Status::TransactionInvalid("transaction ended");
  if (object == nullptr) return Status::InvalidArgument("null object");
  return store_->InsertInternal(*state_, std::move(object));
}

Status Transaction::Remove(ObjectId oid) {
  if (!active()) return Status::TransactionInvalid("transaction ended");
  return store_->RemoveInternal(*state_, oid);
}

Status Transaction::Commit(bool durable) {
  if (!active()) return Status::TransactionInvalid("transaction ended");
  return store_->CommitTxn(*state_, durable);
}

Status Transaction::Abort() {
  if (!active()) return Status::TransactionInvalid("transaction ended");
  return store_->AbortTxn(*state_);
}

// ---------------------------------------------------------------------------
// ReadTransaction

ReadTransaction::ReadTransaction(ObjectStore* store) : store_(store) {
  // Pinning the view is the ONLY store interaction: no LockManager call,
  // no state-mutex acquisition, here or on any later Open/Prefetch.
  auto view = store->chunks_->PinView();
  if (!view.ok()) return;  // Store closed: stay inactive, every Open fails.
  view_ = std::move(view).value();
  state_ = std::make_shared<internal::TxnState>();
  state_->id = store->next_txn_id_.fetch_add(1);
  state_->active = true;
  store->m_.read_txns_begun->Increment();
}

ReadTransaction::~ReadTransaction() { End(); }

void ReadTransaction::End() {
  if (state_ != nullptr) state_->active = false;
  // Dropping the shared_ptr unpins the chunk-store view (the cleaner's
  // snapshot registry holds weak_ptrs) and releases any unpersisted map
  // nodes the view kept alive.
  view_.reset();
  objects_.clear();
}

Result<const Object*> ReadTransaction::OpenInternal(ObjectId oid) {
  if (oid == kInvalidObjectId || oid == store_->header_cid_) {
    return Status::InvalidArgument("invalid object id");
  }
  auto it = objects_.find(oid);
  if (it != objects_.end()) return it->second.get();
  // Zero-copy at steady state: a warm-cache hit is one lookup plus a
  // refcount bump; the bytes are unpickled straight out of the cache's
  // immutable payload.
  TDB_ASSIGN_OR_RETURN(std::shared_ptr<const Buffer> data,
                       store_->chunks_->ReadAtViewShared(*view_, oid));
  return UnpickleInto(oid, Slice(*data));
}

Result<const Object*> ReadTransaction::UnpickleInto(ObjectId oid, Slice data) {
  common::ScopedTimer timer(store_->chunks_->metrics().get(),
                            store_->m_.unpickle_us);
  Unpickler unpickler{data};
  uint32_t class_id;
  TDB_RETURN_IF_ERROR(unpickler.GetUint32(&class_id));
  // ClassRegistry is read-only after start-up registration, so concurrent
  // read transactions may unpickle without synchronization.
  TDB_ASSIGN_OR_RETURN(std::unique_ptr<Object> object,
                       store_->registry_.Unpickle(class_id, &unpickler));
  const Object* raw = object.get();
  objects_[oid] = std::move(object);
  return raw;
}

Result<std::unique_ptr<Object>> ReadTransaction::TakeInternal(ObjectId oid) {
  if (oid == kInvalidObjectId || oid == store_->header_cid_) {
    return Status::InvalidArgument("invalid object id");
  }
  TDB_ASSIGN_OR_RETURN(std::shared_ptr<const Buffer> data,
                       store_->chunks_->ReadAtViewShared(*view_, oid));
  common::ScopedTimer timer(store_->chunks_->metrics().get(),
                            store_->m_.unpickle_us);
  Unpickler unpickler{Slice(*data)};
  uint32_t class_id;
  TDB_RETURN_IF_ERROR(unpickler.GetUint32(&class_id));
  return store_->registry_.Unpickle(class_id, &unpickler);
}

Status ReadTransaction::Prefetch(const std::vector<ObjectId>& oids) {
  if (!active()) return Status::TransactionInvalid("read transaction ended");
  std::vector<ObjectId> missing;
  missing.reserve(oids.size());
  for (ObjectId oid : oids) {
    if (oid == kInvalidObjectId || oid == store_->header_cid_) {
      return Status::InvalidArgument("invalid object id");
    }
    if (objects_.find(oid) == objects_.end()) missing.push_back(oid);
  }
  if (missing.empty()) return Status::OK();
  TDB_ASSIGN_OR_RETURN(std::vector<Buffer> records,
                       store_->chunks_->ReadManyAtView(*view_, missing));
  for (size_t i = 0; i < missing.size(); i++) {
    TDB_RETURN_IF_ERROR(
        UnpickleInto(missing[i], Slice(records[i])).status());
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ObjectStore

ObjectStore::ObjectStore(chunk::ChunkStore* chunks,
                         const ObjectStoreOptions& options)
    : chunks_(chunks),
      options_(options),
      cache_(options.cache_capacity_bytes) {
  BindInstruments();
}

void ObjectStore::BindInstruments() {
  common::MetricsRegistry* r = chunks_->metrics().get();
  m_.txns_begun = r->GetCounter("txn.begin");
  m_.read_txns_begun = r->GetCounter("txn.read_begin");
  m_.commits = r->GetCounter("txn.commits");
  m_.durable_commits = r->GetCounter("txn.durable_commits");
  m_.aborts = r->GetCounter("txn.aborts");
  m_.deadlock_aborts = r->GetCounter("txn.deadlock_aborts");
  m_.lock_acquisitions = r->GetCounter("txn.lock_acquisitions");
  m_.lock_waits = r->GetCounter("txn.lock_waits");
  m_.lock_timeouts = r->GetCounter("txn.lock_timeouts");
  m_.pickle_bytes = r->GetCounter("object.pickle_bytes");
  m_.cache_hits = r->GetCounter("object.cache.hits");
  m_.cache_misses = r->GetCounter("object.cache.misses");
  m_.cache_evictions = r->GetCounter("object.cache.evictions");
  m_.cache_bytes_used = r->GetGauge("object.cache.bytes_used");
  m_.commit_latency_us = r->GetHistogram("txn.commit.latency_us");
  m_.lock_wait_us = r->GetHistogram("txn.lock_wait_us");
  m_.unpickle_us = r->GetHistogram("object.unpickle_us");
  cache_.AttachMetrics(m_.cache_hits, m_.cache_misses, m_.cache_evictions,
                       m_.cache_bytes_used);
  locks_.AttachMetrics(m_.lock_acquisitions, m_.lock_waits, m_.lock_timeouts,
                       m_.lock_wait_us);
}

ObjectStoreStats ObjectStore::Stats() const {
  auto u = [](int64_t v) { return static_cast<uint64_t>(v); };
  ObjectStoreStats s;
  s.txns_begun = u(m_.txns_begun->value());
  s.read_txns_begun = u(m_.read_txns_begun->value());
  s.commits = u(m_.commits->value());
  s.durable_commits = u(m_.durable_commits->value());
  s.aborts = u(m_.aborts->value());
  s.deadlock_aborts = u(m_.deadlock_aborts->value());
  s.lock_acquisitions = u(m_.lock_acquisitions->value());
  s.lock_waits = u(m_.lock_waits->value());
  s.lock_timeouts = u(m_.lock_timeouts->value());
  s.pickle_bytes = u(m_.pickle_bytes->value());
  s.cache_hits = u(m_.cache_hits->value());
  s.cache_misses = u(m_.cache_misses->value());
  s.cache_evictions = u(m_.cache_evictions->value());
  return s;
}

Result<std::unique_ptr<ObjectStore>> ObjectStore::Open(
    chunk::ChunkStore* chunks, const ObjectStoreOptions& options) {
  std::unique_ptr<ObjectStore> store(new ObjectStore(chunks, options));
  if (chunks->next_chunk_id() == 1) {
    // Virgin chunk store: claim chunk 1 as the object-store header.
    store->header_cid_ = chunks->AllocateChunkId();
    if (store->header_cid_ != 1) {
      return Status::InvalidArgument(
          "object store requires a virgin or object-store-managed chunk "
          "store");
    }
    TDB_RETURN_IF_ERROR(store->WriteHeader());
  } else {
    store->header_cid_ = 1;
    TDB_ASSIGN_OR_RETURN(Buffer header, chunks->Read(store->header_cid_));
    Unpickler unpickler{Slice(header)};
    uint32_t magic;
    uint64_t root;
    TDB_RETURN_IF_ERROR(unpickler.GetUint32(&magic));
    TDB_RETURN_IF_ERROR(unpickler.GetUint64(&root));
    if (magic != kHeaderMagic) {
      return Status::Corruption("chunk 1 is not an object-store header");
    }
    store->root_oid_ = root;
    uint64_t n_named;
    TDB_RETURN_IF_ERROR(unpickler.GetUint64(&n_named));
    for (uint64_t i = 0; i < n_named; i++) {
      std::string name;
      uint64_t oid;
      TDB_RETURN_IF_ERROR(unpickler.GetString(&name));
      TDB_RETURN_IF_ERROR(unpickler.GetUint64(&oid));
      store->named_roots_[name] = oid;
    }
  }
  return store;
}

Status ObjectStore::WriteHeader() {
  Pickler pickler;
  pickler.PutUint32(kHeaderMagic);
  pickler.PutUint64(root_oid_);
  pickler.PutUint64(named_roots_.size());
  for (const auto& [name, oid] : named_roots_) {
    pickler.PutString(name);
    pickler.PutUint64(oid);
  }
  return chunks_->Write(header_cid_, pickler.buffer(), true);
}

Result<ObjectId> ObjectStore::GetRoot() {
  std::lock_guard<std::mutex> lock(mutex_);
  return root_oid_;
}

Status ObjectStore::SetRoot(ObjectId oid) {
  std::lock_guard<std::mutex> lock(mutex_);
  ObjectId previous = root_oid_;
  root_oid_ = oid;
  Status s = WriteHeader();
  if (!s.ok()) root_oid_ = previous;
  return s;
}

Result<ObjectId> ObjectStore::GetNamedRoot(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = named_roots_.find(name);
  return it == named_roots_.end() ? kInvalidObjectId : it->second;
}

Status ObjectStore::SetNamedRoot(const std::string& name, ObjectId oid) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = named_roots_.find(name);
  std::optional<ObjectId> previous;
  if (it != named_roots_.end()) previous = it->second;
  named_roots_[name] = oid;
  Status s = WriteHeader();
  if (!s.ok()) {
    if (previous.has_value()) {
      named_roots_[name] = *previous;
    } else {
      named_roots_.erase(name);
    }
  }
  return s;
}

std::shared_ptr<internal::TxnState> ObjectStore::BeginTxn() {
  auto state = std::make_shared<internal::TxnState>();
  state->id = next_txn_id_.fetch_add(1);
  state->active = true;
  m_.txns_begun->Increment();
  return state;
}

Result<Object*> ObjectStore::Fetch(ObjectId oid) {
  auto data = chunks_->Read(oid);
  if (!data.ok()) return data.status();
  cache_.CountMiss();
  common::ScopedTimer timer(chunks_->metrics().get(), m_.unpickle_us);
  Unpickler unpickler{Slice(*data)};
  uint32_t class_id;
  TDB_RETURN_IF_ERROR(unpickler.GetUint32(&class_id));
  TDB_ASSIGN_OR_RETURN(std::unique_ptr<Object> object,
                       registry_.Unpickle(class_id, &unpickler));
  return cache_.Put(oid, std::move(object), /*dirty=*/false);
}

Result<Object*> ObjectStore::OpenInternal(internal::TxnState& txn,
                                          ObjectId oid, bool writable,
                                          std::shared_ptr<void>* pin_guard) {
  if (oid == kInvalidObjectId || oid == header_cid_) {
    return Status::InvalidArgument("invalid object id");
  }
  std::unique_lock<std::mutex> lock(mutex_);
  if (txn.removed.count(oid)) {
    return Status::NotFound("object removed in this transaction");
  }
  if (options_.locking_enabled) {
    Status locked =
        locks_.Lock(txn.id, oid, writable, lock, options_.lock_timeout);
    if (!locked.ok()) {
      if (locked.IsLockTimeout()) txn.hit_lock_timeout = true;
      return locked;
    }
  }
  Object* obj = cache_.Get(oid);
  if (obj == nullptr) {
    TDB_ASSIGN_OR_RETURN(obj, Fetch(oid));
  }
  if (writable) {
    cache_.SetDirty(oid, true);
    txn.write_set.insert(oid);
  } else {
    txn.read_set.insert(oid);
  }
  // Pin and build the release guard under the same mutex hold, so the
  // generation the guard releases is the generation that was pinned (an
  // abort may Erase + re-Put this oid the moment the mutex drops).
  const uint64_t pin_generation = cache_.Pin(oid);
  *pin_guard = MakePin(oid, pin_generation);
  cache_.EnforceCapacity();
  return obj;
}

std::shared_ptr<void> ObjectStore::MakePin(ObjectId oid,
                                           uint64_t generation) {
  // The pin itself was taken inside OpenInternal (under the mutex); this
  // wraps it so the last Ref copy releases it.
  return std::shared_ptr<void>(static_cast<void*>(nullptr),
                               [this, oid, generation](void*) {
                                 std::lock_guard<std::mutex> lock(mutex_);
                                 cache_.Unpin(oid, generation);
                               });
}

Result<ObjectId> ObjectStore::InsertInternal(internal::TxnState& txn,
                                             std::unique_ptr<Object> object) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!registry_.IsRegistered(object->class_id())) {
    return Status::InvalidArgument("class " +
                                   std::to_string(object->class_id()) +
                                   " not registered");
  }
  ObjectId oid = chunks_->AllocateChunkId();
  if (options_.locking_enabled) {
    // A fresh id is uncontended; the lock still must be recorded so it is
    // held until transaction end.
    Status locked = locks_.Lock(txn.id, oid, /*exclusive=*/true, lock,
                                options_.lock_timeout);
    if (!locked.ok()) {
      if (locked.IsLockTimeout()) txn.hit_lock_timeout = true;
      return locked;
    }
  }
  cache_.Put(oid, std::move(object), /*dirty=*/true);
  txn.write_set.insert(oid);
  txn.inserted.insert(oid);
  return oid;
}

Status ObjectStore::RemoveInternal(internal::TxnState& txn, ObjectId oid) {
  if (oid == kInvalidObjectId || oid == header_cid_) {
    return Status::InvalidArgument("invalid object id");
  }
  std::unique_lock<std::mutex> lock(mutex_);
  if (txn.removed.count(oid)) {
    return Status::NotFound("object already removed in this transaction");
  }
  if (options_.locking_enabled) {
    Status locked = locks_.Lock(txn.id, oid, /*exclusive=*/true, lock,
                                options_.lock_timeout);
    if (!locked.ok()) {
      if (locked.IsLockTimeout()) txn.hit_lock_timeout = true;
      return locked;
    }
  }
  // The object must exist: in cache (possibly inserted by this txn) or in
  // the chunk store.
  if (!cache_.Contains(oid)) {
    Status exists = chunks_->Read(oid).status();
    if (!exists.ok()) return exists;
  }
  txn.removed.insert(oid);
  return Status::OK();
}

Status ObjectStore::CommitTxn(internal::TxnState& txn, bool durable) {
  common::TraceSpan span("txn.commit");
  common::ScopedTimer timer(chunks_->metrics().get(), m_.commit_latency_us);
  std::unique_lock<std::mutex> lock(mutex_);

  chunk::WriteBatch batch;
  int64_t pickled = 0;
  for (ObjectId oid : txn.write_set) {
    if (txn.removed.count(oid)) continue;
    Object* obj = cache_.Get(oid);
    TDB_CHECK(obj != nullptr, "dirty object missing from cache");
    Pickler pickler;
    pickler.PutUint32(obj->class_id());
    obj->Pickle(&pickler);
    pickled += static_cast<int64_t>(pickler.buffer().size());
    batch.Write(oid, pickler.buffer());
  }
  for (ObjectId oid : txn.removed) {
    // Objects inserted and removed within this txn never reached the
    // chunk store; there is nothing to deallocate.
    if (!txn.inserted.count(oid)) batch.Deallocate(oid);
  }

  chunk::CommitHandle handle;
  if (!batch.empty() || durable) {
    // Stage 1: buffer the batch into the chunk store's commit group. Once
    // this succeeds the transaction's serialization order is fixed (its
    // writes are in the log buffer and the in-memory map), so 2PL locks
    // can be released BEFORE waiting on durability — early lock release.
    // Conflicting transactions that then read this data are serialized
    // after it; they cannot ack durably before it because their own
    // durable commit waits on the same (or a later) group flush. §4.1's
    // contract is preserved: the caller is acked only after WaitDurable,
    // i.e. after the covering sync + counter bump.
    auto buffered = chunks_->CommitBuffered(batch, durable);
    if (!buffered.ok()) {
      // The transaction cannot be partially applied; roll it back so the
      // caller sees a clean failure.
      lock.unlock();
      AbortTxn(txn).ok();
      return buffered.status();
    }
    handle = std::move(buffered).value();
  }

  for (ObjectId oid : txn.write_set) {
    if (!txn.removed.count(oid)) cache_.SetDirty(oid, false);
  }
  for (ObjectId oid : txn.removed) cache_.Erase(oid);

  txn.active = false;
  locks_.ReleaseAll(txn.id);
  cache_.EnforceCapacity();
  m_.commits->Increment();
  if (durable) m_.durable_commits->Increment();
  if (pickled > 0) m_.pickle_bytes->Add(pickled);
  lock.unlock();

  // Stage 2, outside the state mutex: block on the group flush (or, for a
  // nondurable commit, just run deferred chunk-store maintenance). Other
  // transactions proceed against this store meanwhile. On durability
  // failure the transaction is already torn down locally; the error is a
  // faithful "not durable" report (never a silent acceptance). The
  // deviation from strict 2PL-until-ack is documented in DESIGN.md.
  if (handle.valid()) {
    TDB_RETURN_IF_ERROR(chunks_->WaitDurable(handle));
  }
  return Status::OK();
}

Status ObjectStore::AbortTxn(internal::TxnState& txn) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!txn.active) return Status::TransactionInvalid("transaction ended");
  // Evict instances the transaction dirtied; the committed state will be
  // re-fetched from the chunk store on next access (§4.2.3).
  for (ObjectId oid : txn.write_set) cache_.Erase(oid);
  txn.active = false;
  locks_.ReleaseAll(txn.id);
  m_.aborts->Increment();
  if (txn.hit_lock_timeout) m_.deadlock_aborts->Increment();
  return Status::OK();
}

}  // namespace tdb::object
