#ifndef TDB_OBJECT_OBJECT_H_
#define TDB_OBJECT_OBJECT_H_

#include <cstdint>

#include "chunk/types.h"
#include "object/pickle.h"

namespace tdb::object {

/// Persistent object name. Because TDB stores one object per chunk
/// (§4.2.1), an object's id IS its chunk's id.
using ObjectId = chunk::ChunkId;
constexpr ObjectId kInvalidObjectId = chunk::kInvalidChunkId;

/// Identifies an application class "uniquely across all object classes and
/// persistent across system restarts" (§4.1).
using ClassId = uint32_t;

/// Base class of every persistent object. Applications subclass Object and
/// implement:
///   - class_id():  the registered, stable class id;
///   - Pickle():    serialize all persistent state;
///   - UnpickleFrom(): restore state (the paper's "unpickling constructor"
///     — here a default-construct-then-restore pair, which avoids
///     exceptions in constructors);
///   - ApproxSize(): optional, improves object-cache accounting.
class Object {
 public:
  virtual ~Object() = default;

  virtual ClassId class_id() const = 0;
  virtual void Pickle(Pickler* pickler) const = 0;
  virtual Status UnpickleFrom(Unpickler* unpickler) = 0;

  /// Approximate in-memory footprint for cache-budget accounting.
  virtual size_t ApproxSize() const { return 64; }
};

}  // namespace tdb::object

#endif  // TDB_OBJECT_OBJECT_H_
