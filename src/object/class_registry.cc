#include "object/class_registry.h"

namespace tdb::object {

Status ClassRegistry::Register(ClassId id, Factory factory) {
  if (!factories_.emplace(id, std::move(factory)).second) {
    return Status::AlreadyExists("class id " + std::to_string(id) +
                                 " already registered");
  }
  return Status::OK();
}

Result<std::unique_ptr<Object>> ClassRegistry::Unpickle(
    ClassId id, Unpickler* unpickler) const {
  auto it = factories_.find(id);
  if (it == factories_.end()) {
    return Status::NotFound("unregistered class id " + std::to_string(id));
  }
  return it->second(unpickler);
}

}  // namespace tdb::object
