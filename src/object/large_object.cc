#include "object/large_object.h"

#include "common/check.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace tdb::object {

void LargeObjectManifest::Pickle(Pickler* pickler) const {
  pickler->PutUint64(tag_);
  pickler->PutUint64(total_bytes_);
  pickler->PutUint32(part_bytes_);
  pickler->PutUint32(static_cast<uint32_t>(parts_.size()));
  for (ObjectId part : parts_) pickler->PutUint64(part);
}

Status LargeObjectManifest::UnpickleFrom(Unpickler* unpickler) {
  TDB_RETURN_IF_ERROR(unpickler->GetUint64(&tag_));
  TDB_RETURN_IF_ERROR(unpickler->GetUint64(&total_bytes_));
  TDB_RETURN_IF_ERROR(unpickler->GetUint32(&part_bytes_));
  uint32_t count = 0;
  TDB_RETURN_IF_ERROR(unpickler->GetUint32(&count));
  parts_.clear();
  parts_.reserve(count);
  for (uint32_t i = 0; i < count; i++) {
    uint64_t part = 0;
    TDB_RETURN_IF_ERROR(unpickler->GetUint64(&part));
    parts_.push_back(part);
  }
  return Status::OK();
}

void LargeObjectPart::Pickle(Pickler* pickler) const {
  pickler->PutBytes(bytes_);
}

Status LargeObjectPart::UnpickleFrom(Unpickler* unpickler) {
  return unpickler->GetBytes(&bytes_);
}

Status RegisterLargeObjectClasses(ObjectStore* os) {
  TDB_RETURN_IF_ERROR(os->registry().Register<LargeObjectManifest>(
      LargeObjectManifest::kClassId));
  return os->registry().Register<LargeObjectPart>(LargeObjectPart::kClassId);
}

// ---------------------------------------------------------------------------
// LargeObjectWriter

LargeObjectWriter::LargeObjectWriter(ObjectStore* store, uint32_t part_bytes)
    : store_(store), part_bytes_(part_bytes) {
  TDB_CHECK(part_bytes_ > 0, "part size must be positive");
}

Status LargeObjectWriter::FlushPart() {
  Transaction txn(store_);
  Result<ObjectId> inserted =
      txn.Insert(std::make_unique<LargeObjectPart>(std::move(pending_)));
  pending_.clear();
  if (!inserted.ok()) {
    failed_ = true;
    return inserted.status();
  }
  // Nondurable: the final manifest commit persists the whole chain.
  Status status = txn.Commit(false);
  if (!status.ok()) {
    failed_ = true;
    return status;
  }
  parts_.push_back(inserted.value());
  return Status::OK();
}

Status LargeObjectWriter::Append(Slice data) {
  if (failed_) return Status::InvalidArgument("writer failed earlier");
  if (finished_) return Status::InvalidArgument("writer already finished");
  bytes_appended_ += data.size();
  while (data.size() > 0) {
    size_t take = std::min<size_t>(part_bytes_ - pending_.size(), data.size());
    pending_.insert(pending_.end(), data.data(), data.data() + take);
    data = Slice(data.data() + take, data.size() - take);
    if (pending_.size() == part_bytes_) TDB_RETURN_IF_ERROR(FlushPart());
  }
  return Status::OK();
}

Result<std::unique_ptr<LargeObjectManifest>> LargeObjectWriter::Finish(
    uint64_t tag) {
  if (failed_) return Status::InvalidArgument("writer failed earlier");
  if (finished_) return Status::InvalidArgument("writer already finished");
  if (!pending_.empty()) TDB_RETURN_IF_ERROR(FlushPart());
  finished_ = true;
  return std::make_unique<LargeObjectManifest>(tag, bytes_appended_,
                                               part_bytes_, parts_);
}

Result<ObjectId> LargeObjectWriter::Commit(uint64_t tag, bool durable) {
  TDB_ASSIGN_OR_RETURN(std::unique_ptr<LargeObjectManifest> manifest,
                       Finish(tag));
  Transaction txn(store_);
  Result<ObjectId> inserted = txn.Insert(std::move(manifest));
  if (!inserted.ok()) return inserted.status();
  TDB_RETURN_IF_ERROR(txn.Commit(durable));
  return inserted.value();
}

// ---------------------------------------------------------------------------
// LargeObjectReader

Status LargeObjectReader::Open(ObjectId manifest_oid) {
  TDB_ASSIGN_OR_RETURN(manifest_,
                       txn_->Take<LargeObjectManifest>(manifest_oid));
  const uint64_t parts = manifest_->parts().size();
  const uint64_t part_bytes = manifest_->part_bytes();
  const uint64_t total = manifest_->total_bytes();
  // parts = ceil(total / part_bytes); catches truncated/padded part lists
  // before any part is fetched.
  const uint64_t expected =
      part_bytes == 0 ? 0 : (total + part_bytes - 1) / part_bytes;
  if (part_bytes == 0 || parts != expected) {
    manifest_.reset();
    return Status::InvalidArgument(
        "large-object manifest part list inconsistent with declared size");
  }
  part_.reset();
  part_index_ = 0;
  pos_ = 0;
  return Status::OK();
}

Result<size_t> LargeObjectReader::Read(uint8_t* buf, size_t n) {
  if (manifest_ == nullptr) {
    return Status::InvalidArgument("reader not opened");
  }
  const uint64_t total = manifest_->total_bytes();
  const uint64_t part_bytes = manifest_->part_bytes();
  size_t read = 0;
  while (read < n && pos_ < total) {
    const size_t index = static_cast<size_t>(pos_ / part_bytes);
    if (part_ == nullptr || part_index_ != index) {
      TDB_ASSIGN_OR_RETURN(
          part_, txn_->Take<LargeObjectPart>(manifest_->parts()[index]));
      part_index_ = index;
      const uint64_t expect =
          std::min<uint64_t>(part_bytes, total - index * part_bytes);
      if (part_->bytes().size() != expect) {
        part_.reset();
        return Status::Corruption(
            "large-object part " + std::to_string(index) +
            " length disagrees with its manifest");
      }
    }
    const size_t offset = static_cast<size_t>(pos_ % part_bytes);
    const size_t take = std::min<size_t>(n - read,
                                         part_->bytes().size() - offset);
    std::memcpy(buf + read, part_->bytes().data() + offset, take);
    read += take;
    pos_ += take;
  }
  return read;
}

Status LargeObjectReader::ReadAll(Buffer* out) {
  if (manifest_ == nullptr) {
    return Status::InvalidArgument("reader not opened");
  }
  out->clear();
  const uint64_t remaining = manifest_->total_bytes() - pos_;
  out->resize(static_cast<size_t>(remaining));
  size_t filled = 0;
  while (filled < out->size()) {
    TDB_ASSIGN_OR_RETURN(size_t got,
                         Read(out->data() + filled, out->size() - filled));
    if (got == 0) break;
    filled += got;
  }
  if (filled != out->size()) {
    return Status::Corruption("large-object stream ended early");
  }
  return Status::OK();
}

Status RemoveLargeObject(Transaction* txn, ObjectId manifest_oid) {
  TDB_ASSIGN_OR_RETURN(ReadonlyRef<LargeObjectManifest> manifest,
                       txn->OpenReadonly<LargeObjectManifest>(manifest_oid));
  std::vector<ObjectId> parts = manifest->parts();
  for (ObjectId part : parts) {
    TDB_RETURN_IF_ERROR(txn->Remove(part));
  }
  return txn->Remove(manifest_oid);
}

}  // namespace tdb::object
