#include "object/lock_manager.h"

namespace tdb::object {

void LockManager::AttachMetrics(common::Counter* acquisitions,
                                common::Counter* waits,
                                common::Counter* timeouts,
                                common::Histogram* wait_us) {
  acquisitions_metric_ = acquisitions;
  waits_metric_ = waits;
  timeouts_metric_ = timeouts;
  wait_us_metric_ = wait_us;
}

bool LockManager::CanGrant(const LockState& state, TxnId txn,
                           bool exclusive) const {
  if (state.exclusive != 0 && state.exclusive != txn) return false;
  if (!exclusive) return true;  // Shared: no foreign exclusive holder.
  // Exclusive: no foreign shared holders either (upgrade allowed only for
  // a sole shared holder).
  for (TxnId holder : state.shared) {
    if (holder != txn) return false;
  }
  return true;
}

Status LockManager::Lock(TxnId txn, ObjectId oid, bool exclusive,
                         std::unique_lock<std::mutex>& state_lock,
                         std::chrono::milliseconds timeout) {
  auto deadline = std::chrono::steady_clock::now() + timeout;
  bool blocked = false;
  uint64_t wait_start_us = 0;
  for (;;) {
    LockState& state = locks_[oid];
    if (CanGrant(state, txn, exclusive)) {
      if (exclusive) {
        state.exclusive = txn;
        state.shared.erase(txn);  // Upgrade consumes the shared lock.
      } else if (state.exclusive != txn) {
        state.shared.insert(txn);
      }
      held_[txn].insert(oid);
      if (acquisitions_metric_ != nullptr) acquisitions_metric_->Increment();
      if (blocked && wait_us_metric_ != nullptr) {
        wait_us_metric_->Record(
            static_cast<int64_t>(common::MonotonicMicros() - wait_start_us));
      }
      return Status::OK();
    }
    if (!blocked) {
      blocked = true;
      wait_start_us = common::MonotonicMicros();
      if (waits_metric_ != nullptr) waits_metric_->Increment();
    }
    // Release the state mutex while waiting (§4.2.3), reacquire on wake.
    if (cv_.wait_until(state_lock, deadline) == std::cv_status::timeout) {
      if (timeouts_metric_ != nullptr) timeouts_metric_->Increment();
      if (wait_us_metric_ != nullptr) {
        wait_us_metric_->Record(
            static_cast<int64_t>(common::MonotonicMicros() - wait_start_us));
      }
      return Status::LockTimeout("lock on object " + std::to_string(oid) +
                                 " (possible deadlock)");
    }
  }
}

void LockManager::ReleaseAll(TxnId txn) {
  auto it = held_.find(txn);
  if (it == held_.end()) return;
  for (ObjectId oid : it->second) {
    auto lock_it = locks_.find(oid);
    if (lock_it == locks_.end()) continue;
    LockState& state = lock_it->second;
    state.shared.erase(txn);
    if (state.exclusive == txn) state.exclusive = 0;
    if (state.shared.empty() && state.exclusive == 0) {
      locks_.erase(lock_it);
    }
  }
  held_.erase(it);
  cv_.notify_all();
}

bool LockManager::HoldsShared(TxnId txn, ObjectId oid) const {
  auto it = locks_.find(oid);
  return it != locks_.end() && it->second.shared.count(txn) > 0;
}

bool LockManager::HoldsExclusive(TxnId txn, ObjectId oid) const {
  auto it = locks_.find(oid);
  return it != locks_.end() && it->second.exclusive == txn;
}

}  // namespace tdb::object
