#ifndef TDB_OBJECT_LARGE_OBJECT_H_
#define TDB_OBJECT_LARGE_OBJECT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "object/object_store.h"

namespace tdb::object {

/// Streaming storage for objects far larger than one chunk. The object
/// store maps one object to one chunk (§4.2.1), which caps a pickled
/// object at what a single log record can reasonably hold and forces the
/// whole value through memory at once. Large objects split the value into
/// fixed-size parts — each an ordinary chunk-sized object — plus one
/// manifest listing the part ids:
///
///   LargeObjectWriter w(store, part_bytes);
///   w.Append(slice); ...                      // any chunking
///   Result<ObjectId> oid = w.Commit(tag, /*durable=*/true);
///
/// Durability/visibility contract: every full part is flushed in its own
/// NONDURABLE transaction as Append() goes (bounded memory, no giant
/// commit), and the final manifest commit makes the whole chain durable —
/// a durable chunk-store commit persists all earlier nondurable commits.
/// The object becomes visible only through its manifest, so a crash
/// mid-stream leaves NO partial object: just unreachable part chunks that
/// recovery may or may not retain (they are garbage either way, freed if
/// the writer is retried and re-commits, or left to the application's
/// normal remove path).
///
/// Reading streams part at a time over a lock-free ReadTransaction
/// snapshot via Take() (non-memoizing), so memory stays O(part_bytes)
/// regardless of object size.

/// Manifest: total size, part size, ordered part ids, and an
/// application-chosen tag (e.g. a directory key).
class LargeObjectManifest final : public Object {
 public:
  static constexpr ClassId kClassId = 0x4C4F424D;  // "LOBM"

  LargeObjectManifest() = default;
  LargeObjectManifest(uint64_t tag, uint64_t total_bytes, uint32_t part_bytes,
                      std::vector<ObjectId> parts)
      : tag_(tag), total_bytes_(total_bytes), part_bytes_(part_bytes),
        parts_(std::move(parts)) {}

  ClassId class_id() const override { return kClassId; }
  void Pickle(Pickler* pickler) const override;
  Status UnpickleFrom(Unpickler* unpickler) override;
  size_t ApproxSize() const override {
    return 64 + parts_.size() * sizeof(ObjectId);
  }

  uint64_t tag() const { return tag_; }
  uint64_t total_bytes() const { return total_bytes_; }
  uint32_t part_bytes() const { return part_bytes_; }
  const std::vector<ObjectId>& parts() const { return parts_; }

 private:
  uint64_t tag_ = 0;
  uint64_t total_bytes_ = 0;
  uint32_t part_bytes_ = 0;
  std::vector<ObjectId> parts_;
};

/// One fixed-size slice of a large object's value.
class LargeObjectPart final : public Object {
 public:
  static constexpr ClassId kClassId = 0x4C4F4250;  // "LOBP"

  LargeObjectPart() = default;
  explicit LargeObjectPart(Buffer bytes) : bytes_(std::move(bytes)) {}

  ClassId class_id() const override { return kClassId; }
  void Pickle(Pickler* pickler) const override;
  Status UnpickleFrom(Unpickler* unpickler) override;
  size_t ApproxSize() const override { return 32 + bytes_.size(); }

  const Buffer& bytes() const { return bytes_; }

 private:
  Buffer bytes_;
};

/// Registers both large-object classes (idempotent per fresh store; call
/// once after ObjectStore::Open).
Status RegisterLargeObjectClasses(ObjectStore* os);

/// Streaming writer. Single-threaded; one value per writer instance.
class LargeObjectWriter {
 public:
  /// Parts hold exactly `part_bytes` value bytes (the last may be short).
  LargeObjectWriter(ObjectStore* store, uint32_t part_bytes);

  /// Buffers `data`, flushing every completed part in its own nondurable
  /// transaction. After an error the writer is dead (every later call
  /// fails); already-flushed parts are unreachable garbage.
  Status Append(Slice data);

  /// Flushes the final partial part and returns the manifest for the
  /// caller to insert — into a plain transaction, or into a collection so
  /// the object is found by key after restart. The manifest insert is the
  /// visibility and durability point (commit it durable unless a later
  /// commit will be).
  Result<std::unique_ptr<LargeObjectManifest>> Finish(uint64_t tag);

  /// Convenience: Finish + insert + commit in one step. Returns the
  /// manifest's object id.
  Result<ObjectId> Commit(uint64_t tag, bool durable);

  uint64_t bytes_appended() const { return bytes_appended_; }
  size_t parts_flushed() const { return parts_.size(); }

 private:
  Status FlushPart();

  ObjectStore* store_;
  const uint32_t part_bytes_;
  Buffer pending_;
  std::vector<ObjectId> parts_;
  uint64_t bytes_appended_ = 0;
  bool failed_ = false;
  bool finished_ = false;
};

/// Streaming reader over a caller-provided ReadTransaction snapshot. The
/// manifest is read at Open; each part is fetched exactly once via Take()
/// as Read() crosses into it, so only one part is resident at a time.
class LargeObjectReader {
 public:
  explicit LargeObjectReader(ReadTransaction* txn) : txn_(txn) {}

  /// Reads the manifest. InvalidArgument if a part list is inconsistent
  /// with the declared size.
  Status Open(ObjectId manifest_oid);

  /// Sequential read of up to `n` bytes into `buf`; returns the number of
  /// bytes read, 0 at end of object. TamperDetected/Corruption propagate
  /// from the chunk layer; a part whose length disagrees with the
  /// manifest reports Corruption.
  Result<size_t> Read(uint8_t* buf, size_t n);

  /// Convenience: reads the remainder of the object into `out`.
  Status ReadAll(Buffer* out);

  uint64_t size() const { return manifest_ ? manifest_->total_bytes() : 0; }
  const LargeObjectManifest* manifest() const { return manifest_.get(); }

 private:
  ReadTransaction* txn_;
  std::unique_ptr<LargeObjectManifest> manifest_;
  std::unique_ptr<LargeObjectPart> part_;  // Currently resident part.
  size_t part_index_ = 0;                  // Index of part_ in the manifest.
  uint64_t pos_ = 0;                       // Value offset of the next byte.
};

/// Removes a large object (manifest + every part) within `txn`; the
/// caller commits. Reads the manifest through the transaction, so the
/// usual 2PL rules apply.
Status RemoveLargeObject(Transaction* txn, ObjectId manifest_oid);

}  // namespace tdb::object

#endif  // TDB_OBJECT_LARGE_OBJECT_H_
