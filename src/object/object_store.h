#ifndef TDB_OBJECT_OBJECT_STORE_H_
#define TDB_OBJECT_OBJECT_STORE_H_

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <unordered_map>
#include <mutex>
#include <string>
#include <set>
#include <type_traits>
#include <vector>

#include "chunk/chunk_store.h"
#include "common/result.h"
#include "object/class_registry.h"
#include "object/lock_manager.h"
#include "object/object.h"
#include "object/object_cache.h"

namespace tdb::object {

class ObjectStore;
class Transaction;
class ReadTransaction;

namespace internal {

/// Shared bookkeeping of one transaction. Refs hold a shared_ptr to it so
/// use-after-end is a *checked* error rather than undefined behavior.
struct TxnState {
  TxnId id = 0;
  bool active = false;
  // Guarded by the store's state mutex:
  std::set<ObjectId> read_set;
  std::set<ObjectId> write_set;  // Opened writable (incl. inserted).
  std::set<ObjectId> inserted;
  std::set<ObjectId> removed;
  // A lock wait expired during this transaction (the timeout that "breaks
  // potential deadlocks", §4.1). When the application then aborts, the
  // abort is attributed to deadlock avoidance in the store stats.
  bool hit_lock_timeout = false;
};

}  // namespace internal

/// Options for the object store.
struct ObjectStoreOptions {
  /// Budget for the object cache. The paper's evaluation uses 4 MB (§7.2).
  ///
  /// Sizing note: an object-cache miss is no longer a full validated chunk
  /// read. The chunk store keeps its own validated-plaintext cache
  /// (ChunkStoreOptions::cache_bytes), so a miss here typically costs one
  /// chunk-cache lookup plus unpickling — untrusted-store I/O, hashing,
  /// and decryption are skipped for chunks hot at that layer. Deployments
  /// that sized this budget defensively to avoid re-validation can run
  /// tighter and lean on the (cheaper, type-erased) chunk-layer cache.
  size_t cache_capacity_bytes = 4 * 1024 * 1024;

  /// How long lock acquisition waits before reporting LockTimeout ("thus
  /// breaking potential deadlocks", §4.1). Tunable by the application.
  std::chrono::milliseconds lock_timeout{500};

  /// §4.2.3: "the application may even switch off locking to avoid the
  /// locking overhead in the absence of concurrent transactions."
  bool locking_enabled = true;
};

/// Smart pointer to a read-only view of a persistent object (§4.1).
/// Valid only until its transaction commits or aborts; later dereferences
/// are checked runtime errors. Copyable; copies share the cache pin.
template <typename T>
class ReadonlyRef {
 public:
  ReadonlyRef() = default;

  /// Implicit up-cast ReadonlyRef<Derived> -> ReadonlyRef<Base>.
  template <typename U,
            typename = std::enable_if_t<std::is_base_of_v<T, U> &&
                                        !std::is_same_v<T, U>>>
  ReadonlyRef(const ReadonlyRef<U>& other)  // NOLINT(runtime/explicit)
      : state_(other.state_), oid_(other.oid_), ptr_(other.ptr_),
        pin_(other.pin_) {}

  const T& operator*() const { return *Access(); }
  const T* operator->() const { return Access(); }

  ObjectId id() const { return oid_; }
  bool valid() const { return state_ != nullptr && state_->active; }

 private:
  friend class ObjectStore;
  friend class Transaction;
  friend class ReadTransaction;
  template <typename>
  friend class ReadonlyRef;
  template <typename>
  friend class WritableRef;  // For WritableRef<T>::AsReadonly().
  template <typename To, typename From>
  friend Result<ReadonlyRef<To>> ref_cast(const ReadonlyRef<From>& from);

  ReadonlyRef(std::shared_ptr<internal::TxnState> state, ObjectId oid,
              const T* ptr, std::shared_ptr<void> pin)
      : state_(std::move(state)), oid_(oid), ptr_(ptr),
        pin_(std::move(pin)) {}

  const T* Access() const {
    TDB_CHECK(valid(), "Ref dereferenced outside its transaction");
    return ptr_;
  }

  std::shared_ptr<internal::TxnState> state_;
  ObjectId oid_ = kInvalidObjectId;
  const T* ptr_ = nullptr;
  std::shared_ptr<void> pin_;  // Deleter unpins the cache entry.
};

/// Smart pointer to a writable view of a persistent object. The referenced
/// object is dirty in the cache and pinned until transaction end
/// (no-steal, §4.2.2).
template <typename T>
class WritableRef {
 public:
  WritableRef() = default;

  template <typename U,
            typename = std::enable_if_t<std::is_base_of_v<T, U> &&
                                        !std::is_same_v<T, U>>>
  WritableRef(const WritableRef<U>& other)  // NOLINT(runtime/explicit)
      : state_(other.state_), oid_(other.oid_), ptr_(other.ptr_),
        pin_(other.pin_) {}

  T& operator*() const { return *Access(); }
  T* operator->() const { return Access(); }

  ObjectId id() const { return oid_; }
  bool valid() const { return state_ != nullptr && state_->active; }

  /// Read-only view of the same object.
  ReadonlyRef<T> AsReadonly() const {
    return ReadonlyRef<T>(state_, oid_, ptr_, pin_);
  }

 private:
  friend class ObjectStore;
  friend class Transaction;
  template <typename>
  friend class WritableRef;
  template <typename To, typename From>
  friend Result<WritableRef<To>> ref_cast(const WritableRef<From>& from);

  WritableRef(std::shared_ptr<internal::TxnState> state, ObjectId oid, T* ptr,
              std::shared_ptr<void> pin)
      : state_(std::move(state)), oid_(oid), ptr_(ptr),
        pin_(std::move(pin)) {}

  T* Access() const {
    TDB_CHECK(valid(), "Ref dereferenced outside its transaction");
    return ptr_;
  }

  std::shared_ptr<internal::TxnState> state_;
  ObjectId oid_ = kInvalidObjectId;
  T* ptr_ = nullptr;
  std::shared_ptr<void> pin_;
};

/// Checked down-cast between Ref types (the paper's copy-construction of
/// Ref<MyObject> from Ref<Object> with a runtime subtype check).
template <typename To, typename From>
Result<ReadonlyRef<To>> ref_cast(const ReadonlyRef<From>& from) {
  const To* typed = dynamic_cast<const To*>(from.ptr_);
  if (from.ptr_ != nullptr && typed == nullptr) {
    return Status::TypeMismatch("object is not of the requested class");
  }
  return ReadonlyRef<To>(from.state_, from.oid_, typed, from.pin_);
}

template <typename To, typename From>
Result<WritableRef<To>> ref_cast(const WritableRef<From>& from) {
  To* typed = dynamic_cast<To*>(from.ptr_);
  if (from.ptr_ != nullptr && typed == nullptr) {
    return Status::TypeMismatch("object is not of the requested class");
  }
  return WritableRef<To>(from.state_, from.oid_, typed, from.pin_);
}

/// A transaction over the object store (§4.1, Figure 3). Each transaction
/// executes atomically with respect to concurrent transactions (strict
/// 2PL) and crashes (chunk-store commits). Create on the stack; an active
/// transaction aborts in its destructor.
class Transaction {
 public:
  explicit Transaction(ObjectStore* store);
  ~Transaction();
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  /// Inserts `object` for persistent storage; returns its new id. The
  /// store takes ownership.
  Result<ObjectId> Insert(std::unique_ptr<Object> object);

  /// Opens the named object read-only (shared lock) / read-write
  /// (exclusive lock; the object is marked dirty and committed at commit).
  /// TypeMismatch if the stored object is not a T. LockTimeout on deadlock.
  template <typename T>
  Result<ReadonlyRef<T>> OpenReadonly(ObjectId oid);
  template <typename T>
  Result<WritableRef<T>> OpenWritable(ObjectId oid);

  /// Removes the named object and frees its storage at commit.
  Status Remove(ObjectId oid);

  /// Commits inserted/written/removed objects. Iff `durable`, the commit
  /// (and all previous nondurable commits) survives crashes. Invalidates
  /// this Transaction and all Refs it produced.
  Status Commit(bool durable = true);

  /// Undoes all changes made during the transaction.
  Status Abort();

  bool active() const { return state_ != nullptr && state_->active; }
  TxnId id() const { return state_ ? state_->id : 0; }

  /// The store this transaction runs against (e.g. for registering
  /// layer-specific instruments on its metrics registry).
  ObjectStore* store() const { return store_; }

 private:
  friend class ObjectStore;
  ObjectStore* store_;
  std::shared_ptr<internal::TxnState> state_;
};

/// A read-only transaction with MVCC snapshot semantics — the lock-free
/// alternative to Transaction for pure readers. At construction it pins a
/// chunk-store view (a COW map root + commit version; no checkpoint, no
/// log I/O) and serves every read from that consistent state:
///
///  - ZERO LockManager traffic and zero state-mutex acquisitions — the
///    read path touches only the chunk layer, so readers never block
///    writers and writers never block readers (no lock waits, no timeout
///    aborts for read-only work);
///  - a consistent snapshot: concurrent commits are invisible, unlike a
///    locking reader that observes states committed between its opens;
///  - the shared object cache is BYPASSED: its instances may be dirty
///    with uncommitted writes (no-steal) or newer than the view.
///    Unpickled objects are transaction-private and live until End().
///
/// Single-threaded like Transaction; concurrent ReadTransactions on their
/// own threads share no mutable state, which is what the read-scan
/// benchmark exercises. While any is active the chunk-store cleaner
/// pauses, so keep read transactions short-lived (the §4.1 guidance for
/// ordinary transactions applies unchanged).
class ReadTransaction {
 public:
  /// Pins the view. If the underlying chunk store is closed the
  /// transaction starts inactive and every Open fails.
  explicit ReadTransaction(ObjectStore* store);
  ~ReadTransaction();
  ReadTransaction(const ReadTransaction&) = delete;
  ReadTransaction& operator=(const ReadTransaction&) = delete;

  /// Opens an object at the pinned view. TypeMismatch if the stored
  /// object is not a T; NotFound if absent at the view (even if inserted
  /// later). Repeated opens return the same private instance.
  template <typename T>
  Result<ReadonlyRef<T>> Open(ObjectId oid);

  /// Batched warm-up: fetches all not-yet-opened objects through the
  /// chunk store's batched view read (one commit-mutex hold for the raw
  /// records, pooled validation) and unpickles them into the transaction.
  /// Open() afterwards is a pure map lookup.
  Status Prefetch(const std::vector<ObjectId>& oids);

  /// Opens an object at the pinned view WITHOUT memoizing it: ownership
  /// of the freshly unpickled instance transfers to the caller and the
  /// transaction retains nothing. This keeps long streaming scans (e.g.
  /// reading a multi-chunk large object part by part) at O(1) transaction
  /// memory, where Open() would retain every part until End(). An oid
  /// previously seen by Open() is re-read rather than stolen, so existing
  /// refs stay valid.
  template <typename T>
  Result<std::unique_ptr<T>> Take(ObjectId oid);

  /// Releases the pinned view and invalidates all refs. Idempotent; the
  /// destructor calls it.
  void End();

  bool active() const { return state_ != nullptr && state_->active; }
  /// Chunk-store commit seq of the pinned view.
  uint64_t snapshot_seq() const { return view_ ? view_->seq() : 0; }

 private:
  // Chunk read at the view + unpickle, memoized in objects_.
  Result<const Object*> OpenInternal(ObjectId oid);
  Result<const Object*> UnpickleInto(ObjectId oid, Slice data);
  // Chunk read at the view + unpickle, ownership to the caller.
  Result<std::unique_ptr<Object>> TakeInternal(ObjectId oid);

  ObjectStore* store_;
  std::shared_ptr<internal::TxnState> state_;
  std::shared_ptr<chunk::Snapshot> view_;
  std::unordered_map<ObjectId, std::unique_ptr<Object>> objects_;  // Txn-private.
};

/// Transaction/locking tallies, read back from the metrics registry by the
/// compatibility accessor ObjectStore::Stats().
struct ObjectStoreStats {
  uint64_t txns_begun = 0;
  uint64_t read_txns_begun = 0;  // Lock-free ReadTransactions pinned.
  uint64_t commits = 0;          // Successful CommitTxn calls.
  uint64_t durable_commits = 0;  // Subset acked only after the group flush.
  uint64_t aborts = 0;
  // Aborts of transactions that previously hit a lock timeout — the
  // deadlock-avoidance path: the timeout breaks the deadlock, the
  // application gives up and rolls back.
  uint64_t deadlock_aborts = 0;
  uint64_t lock_acquisitions = 0;  // Granted locks (0 delta for read txns).
  uint64_t lock_waits = 0;     // Lock calls that blocked.
  uint64_t lock_timeouts = 0;  // Waits that expired (possible deadlock).
  uint64_t pickle_bytes = 0;   // Serialized object bytes handed to commits.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
};

/// The object store (§4): type-safe, transactional storage of named C++
/// objects over the trusted chunk store. One object per chunk; object id ==
/// chunk id (§4.2.1).
///
/// Thread-safe: a single state mutex guards all structures; blocked lock
/// waits release it (§4.2.3). Individual Transaction objects are
/// single-threaded. Commits use the chunk store's two-stage group-commit
/// API: transaction locks are released as soon as the write batch is in
/// the chunk store's log buffer, and the committer then waits for the
/// covering group flush outside the state mutex — so concurrent durable
/// committers share one log sync and one counter bump (when
/// ChunkStoreOptions::group_commit is on) instead of serializing behind
/// each other's I/O.
class ObjectStore {
 public:
  /// The chunk store must outlive the object store and must not be used
  /// directly while the object store owns it logically (the object store
  /// reserves chunk id 1 for its root-registry header).
  static Result<std::unique_ptr<ObjectStore>> Open(
      chunk::ChunkStore* chunks, const ObjectStoreOptions& options = {});

  /// Class registration must precede reading any object of that class.
  ClassRegistry& registry() { return registry_; }

  /// The registered root object id, or kInvalidObjectId if none (§4.1:
  /// "the application can register a 'root' object id").
  Result<ObjectId> GetRoot();
  Status SetRoot(ObjectId oid);

  /// Additional named persistent roots. The collection store anchors its
  /// directory here; applications may register their own names too.
  /// Returns kInvalidObjectId when `name` is unset.
  Result<ObjectId> GetNamedRoot(const std::string& name);
  Status SetNamedRoot(const std::string& name, ObjectId oid);

  const ObjectCache::Stats& cache_stats() const { return cache_.stats(); }
  size_t cache_size_bytes() const { return cache_.size_bytes(); }
  chunk::ChunkStore* chunk_store() { return chunks_; }

  /// Transaction/locking tallies (see ObjectStoreStats). Reads the
  /// registry instruments; safe to call concurrently with transactions.
  ObjectStoreStats Stats() const;

  /// The registry shared with the underlying chunk store — one snapshot
  /// covers chunk, object, collection, and backup instruments.
  const std::shared_ptr<common::MetricsRegistry>& metrics() const {
    return chunks_->metrics();
  }

 private:
  friend class Transaction;
  friend class ReadTransaction;

  ObjectStore(chunk::ChunkStore* chunks, const ObjectStoreOptions& options);

  std::shared_ptr<internal::TxnState> BeginTxn();

  // Core of Open*(): lock, fetch into cache, pin; returns the cached
  // instance and hands back the pin-release guard, built under the same
  // mutex hold as the pin itself. The templated wrappers down-cast.
  Result<Object*> OpenInternal(internal::TxnState& txn, ObjectId oid,
                               bool writable,
                               std::shared_ptr<void>* pin_guard);
  Result<ObjectId> InsertInternal(internal::TxnState& txn,
                                  std::unique_ptr<Object> object);
  Status RemoveInternal(internal::TxnState& txn, ObjectId oid);
  Status CommitTxn(internal::TxnState& txn, bool durable);
  Status AbortTxn(internal::TxnState& txn);

  // Fetches a committed object into the cache (no locking). Requires the
  // state mutex.
  Result<Object*> Fetch(ObjectId oid);

  // Builds the pin guard shared_ptr for a Ref; releases only the entry
  // generation that was pinned.
  std::shared_ptr<void> MakePin(ObjectId oid, uint64_t generation);

  // Registry-backed instruments, resolved once at construction (against
  // the chunk store's registry) so transaction paths touch only the
  // wait-free instruments.
  struct Instruments {
    common::Counter* txns_begun = nullptr;
    common::Counter* read_txns_begun = nullptr;
    common::Counter* commits = nullptr;
    common::Counter* durable_commits = nullptr;
    common::Counter* aborts = nullptr;
    common::Counter* deadlock_aborts = nullptr;
    common::Counter* lock_acquisitions = nullptr;
    common::Counter* lock_waits = nullptr;
    common::Counter* lock_timeouts = nullptr;
    common::Counter* pickle_bytes = nullptr;
    common::Counter* cache_hits = nullptr;
    common::Counter* cache_misses = nullptr;
    common::Counter* cache_evictions = nullptr;
    common::Gauge* cache_bytes_used = nullptr;
    common::Histogram* commit_latency_us = nullptr;
    common::Histogram* lock_wait_us = nullptr;
    common::Histogram* unpickle_us = nullptr;
  };

  // Resolves every instrument in m_ and wires the cache and lock manager
  // (constructor only).
  void BindInstruments();

  chunk::ChunkStore* chunks_;
  ObjectStoreOptions options_;
  ClassRegistry registry_;
  Instruments m_;

  std::mutex mutex_;  // The "state mutex" of §4.2.3.
  LockManager locks_;
  ObjectCache cache_;
  std::atomic<TxnId> next_txn_id_{1};
  ObjectId header_cid_ = kInvalidObjectId;
  ObjectId root_oid_ = kInvalidObjectId;
  std::map<std::string, ObjectId> named_roots_;

  // Serializes and durably writes the header chunk. Requires mutex_.
  Status WriteHeader();
};

// ---------------------------------------------------------------------------
// Template implementations.

template <typename T>
Result<ReadonlyRef<T>> Transaction::OpenReadonly(ObjectId oid) {
  if (!active()) return Status::TransactionInvalid("transaction ended");
  std::shared_ptr<void> pin;
  TDB_ASSIGN_OR_RETURN(Object* obj,
                       store_->OpenInternal(*state_, oid, false, &pin));
  const T* typed = dynamic_cast<const T*>(obj);
  if (typed == nullptr) {
    // `pin` unpins on return — a failed down-cast must not leak the pin.
    return Status::TypeMismatch("object " + std::to_string(oid) +
                                " is not of the requested class");
  }
  return ReadonlyRef<T>(state_, oid, typed, std::move(pin));
}

template <typename T>
Result<WritableRef<T>> Transaction::OpenWritable(ObjectId oid) {
  if (!active()) return Status::TransactionInvalid("transaction ended");
  std::shared_ptr<void> pin;
  TDB_ASSIGN_OR_RETURN(Object* obj,
                       store_->OpenInternal(*state_, oid, true, &pin));
  T* typed = dynamic_cast<T*>(obj);
  if (typed == nullptr) {
    return Status::TypeMismatch("object " + std::to_string(oid) +
                                " is not of the requested class");
  }
  return WritableRef<T>(state_, oid, typed, std::move(pin));
}

template <typename T>
Result<ReadonlyRef<T>> ReadTransaction::Open(ObjectId oid) {
  if (!active()) return Status::TransactionInvalid("read transaction ended");
  TDB_ASSIGN_OR_RETURN(const Object* obj, OpenInternal(oid));
  const T* typed = dynamic_cast<const T*>(obj);
  if (typed == nullptr) {
    return Status::TypeMismatch("object " + std::to_string(oid) +
                                " is not of the requested class");
  }
  // No cache pin: the instance is transaction-private and owned by
  // objects_, which outlives every ref (refs die when state_->active
  // flips at End()).
  return ReadonlyRef<T>(state_, oid, typed, nullptr);
}

template <typename T>
Result<std::unique_ptr<T>> ReadTransaction::Take(ObjectId oid) {
  if (!active()) return Status::TransactionInvalid("read transaction ended");
  TDB_ASSIGN_OR_RETURN(std::unique_ptr<Object> obj, TakeInternal(oid));
  if (dynamic_cast<T*>(obj.get()) == nullptr) {
    return Status::TypeMismatch("object " + std::to_string(oid) +
                                " is not of the requested class");
  }
  return std::unique_ptr<T>(static_cast<T*>(obj.release()));
}

}  // namespace tdb::object

#endif  // TDB_OBJECT_OBJECT_STORE_H_
