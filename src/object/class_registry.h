#ifndef TDB_OBJECT_CLASS_REGISTRY_H_
#define TDB_OBJECT_CLASS_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>

#include "common/result.h"
#include "object/object.h"

namespace tdb::object {

/// Maps class ids to unpickling factories (§4.1: "the subclass must
/// register its unpickling constructor with the object store under its
/// class id"). One registry per object store; registration happens at
/// application start-up, before any objects are read.
class ClassRegistry {
 public:
  using Factory =
      std::function<Result<std::unique_ptr<Object>>(Unpickler*)>;

  /// AlreadyExists if the id is taken (ids must be globally unique).
  Status Register(ClassId id, Factory factory);

  /// Convenience for the common shape: T is default-constructible and
  /// restores itself via UnpickleFrom.
  template <typename T>
  Status Register(ClassId id) {
    return Register(id, [](Unpickler* unpickler)
                            -> Result<std::unique_ptr<Object>> {
      auto obj = std::make_unique<T>();
      TDB_RETURN_IF_ERROR(obj->UnpickleFrom(unpickler));
      return std::unique_ptr<Object>(std::move(obj));
    });
  }

  bool IsRegistered(ClassId id) const { return factories_.count(id) > 0; }

  /// Instantiates an object of class `id` from pickled bytes. NotFound if
  /// the class was never registered.
  Result<std::unique_ptr<Object>> Unpickle(ClassId id,
                                           Unpickler* unpickler) const;

 private:
  std::map<ClassId, Factory> factories_;
};

}  // namespace tdb::object

#endif  // TDB_OBJECT_CLASS_REGISTRY_H_
