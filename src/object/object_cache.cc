#include "object/object_cache.h"

#include "common/check.h"

namespace tdb::object {

void ObjectCache::AttachMetrics(common::Counter* hits,
                                common::Counter* misses,
                                common::Counter* evictions,
                                common::Gauge* bytes_used) {
  hits_metric_ = hits;
  misses_metric_ = misses;
  evictions_metric_ = evictions;
  bytes_used_metric_ = bytes_used;
}

Object* ObjectCache::Put(ObjectId oid, std::unique_ptr<Object> object,
                         bool dirty) {
  Erase(oid);
  Entry entry;
  entry.charge = object->ApproxSize() + 64;  // Entry bookkeeping overhead.
  entry.generation = ++next_generation_;
  entry.object = std::move(object);
  entry.dirty = dirty;
  lru_.push_front(oid);
  entry.lru_pos = lru_.begin();
  size_ += entry.charge;
  Object* raw = entry.object.get();
  entries_.emplace(oid, std::move(entry));
  MirrorSize();
  return raw;
}

Object* ObjectCache::Get(ObjectId oid) {
  auto it = entries_.find(oid);
  if (it == entries_.end()) return nullptr;
  stats_.hits++;
  if (hits_metric_ != nullptr) hits_metric_->Increment();
  Touch(oid);
  return it->second.object.get();
}

uint64_t ObjectCache::Pin(ObjectId oid) {
  auto it = entries_.find(oid);
  TDB_CHECK(it != entries_.end(), "pin of uncached object");
  it->second.pins++;
  return it->second.generation;
}

void ObjectCache::Unpin(ObjectId oid, uint64_t generation) {
  auto it = entries_.find(oid);
  if (it == entries_.end()) return;  // Erased by an abort; nothing to do.
  if (it->second.generation != generation) {
    // Erased by an abort, then re-fetched: the pinned entry is gone and
    // this release must not touch its replacement's pin count.
    return;
  }
  TDB_DCHECK(it->second.pins > 0);
  if (it->second.pins > 0) it->second.pins--;
}

void ObjectCache::SetDirty(ObjectId oid, bool dirty) {
  auto it = entries_.find(oid);
  TDB_CHECK(it != entries_.end(), "dirty mark of uncached object");
  it->second.dirty = dirty;
}

bool ObjectCache::IsDirty(ObjectId oid) const {
  auto it = entries_.find(oid);
  return it != entries_.end() && it->second.dirty;
}

void ObjectCache::Erase(ObjectId oid) {
  auto it = entries_.find(oid);
  if (it == entries_.end()) return;
  size_ -= it->second.charge;
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
  MirrorSize();
}

void ObjectCache::Touch(ObjectId oid) {
  auto it = entries_.find(oid);
  if (it == entries_.end()) return;
  lru_.erase(it->second.lru_pos);
  lru_.push_front(oid);
  it->second.lru_pos = lru_.begin();
}

void ObjectCache::EnforceCapacity() {
  if (size_ <= capacity_) return;
  // Walk from the LRU tail, skipping pinned/dirty entries.
  auto it = lru_.end();
  while (size_ > capacity_ && it != lru_.begin()) {
    --it;
    auto entry_it = entries_.find(*it);
    TDB_DCHECK(entry_it != entries_.end());
    if (entry_it->second.pins > 0 || entry_it->second.dirty) continue;
    size_ -= entry_it->second.charge;
    it = lru_.erase(it);
    entries_.erase(entry_it);
    stats_.evictions++;
    if (evictions_metric_ != nullptr) evictions_metric_->Increment();
  }
  MirrorSize();
}

}  // namespace tdb::object
