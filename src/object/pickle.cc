#include "object/pickle.h"

#include <cstring>

namespace tdb::object {

void Pickler::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutFixed64(&buf_, bits);
}

Status Unpickler::GetBool(bool* v) {
  Slice byte;
  TDB_RETURN_IF_ERROR(dec_.GetBytes(1, &byte));
  if (byte[0] > 1) return Status::Corruption("bad bool");
  *v = byte[0] == 1;
  return Status::OK();
}

Status Unpickler::GetInt32(int32_t* v) {
  uint32_t zz;
  TDB_RETURN_IF_ERROR(dec_.GetVarint32(&zz));
  *v = static_cast<int32_t>((zz >> 1) ^ (~(zz & 1) + 1));
  return Status::OK();
}

Status Unpickler::GetInt64(int64_t* v) {
  uint64_t zz;
  TDB_RETURN_IF_ERROR(dec_.GetVarint64(&zz));
  *v = static_cast<int64_t>((zz >> 1) ^ (~(zz & 1) + 1));
  return Status::OK();
}

Status Unpickler::GetDouble(double* v) {
  uint64_t bits;
  TDB_RETURN_IF_ERROR(dec_.GetFixed64(&bits));
  std::memcpy(v, &bits, sizeof(*v));
  return Status::OK();
}

Status Unpickler::GetString(std::string* s) {
  Slice bytes;
  TDB_RETURN_IF_ERROR(dec_.GetLengthPrefixed(&bytes));
  *s = bytes.ToString();
  return Status::OK();
}

Status Unpickler::GetBytes(Buffer* bytes) {
  Slice view;
  TDB_RETURN_IF_ERROR(dec_.GetLengthPrefixed(&view));
  *bytes = view.ToBuffer();
  return Status::OK();
}

}  // namespace tdb::object
