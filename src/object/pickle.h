#ifndef TDB_OBJECT_PICKLE_H_
#define TDB_OBJECT_PICKLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/slice.h"
#include "common/status.h"

namespace tdb::object {

/// Serializes an object's state into a compact byte sequence (§4.1:
/// subclasses of Object "must implement a method to pickle an object into a
/// sequence of bytes"). The encoding is architecture-independent (varints
/// and little-endian fixeds), so a database can move between platforms.
class Pickler {
 public:
  void PutBool(bool v) { buf_.push_back(v ? 1 : 0); }
  void PutUint32(uint32_t v) { PutVarint32(&buf_, v); }
  void PutUint64(uint64_t v) { PutVarint64(&buf_, v); }
  void PutInt32(int32_t v) { PutUint32(ZigZag32(v)); }
  void PutInt64(int64_t v) { PutUint64(ZigZag64(v)); }
  void PutDouble(double v);
  void PutString(std::string_view s) {
    PutLengthPrefixed(&buf_, Slice(s));
  }
  void PutBytes(Slice bytes) { PutLengthPrefixed(&buf_, bytes); }

  const Buffer& buffer() const { return buf_; }
  Buffer Take() { return std::move(buf_); }

 private:
  static uint32_t ZigZag32(int32_t v) {
    return (static_cast<uint32_t>(v) << 1) ^ static_cast<uint32_t>(v >> 31);
  }
  static uint64_t ZigZag64(int64_t v) {
    return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
  }

  Buffer buf_;
};

/// Reads back what a Pickler wrote, in the same order. All getters return
/// Corruption on malformed input (pickled bytes come from the chunk store,
/// which has already validated them, but defense in depth is cheap).
class Unpickler {
 public:
  explicit Unpickler(Slice data) : dec_(data) {}

  Status GetBool(bool* v);
  Status GetUint32(uint32_t* v) { return dec_.GetVarint32(v); }
  Status GetUint64(uint64_t* v) { return dec_.GetVarint64(v); }
  Status GetInt32(int32_t* v);
  Status GetInt64(int64_t* v);
  Status GetDouble(double* v);
  Status GetString(std::string* s);
  Status GetBytes(Buffer* bytes);

  bool done() const { return dec_.done(); }

 private:
  Decoder dec_;
};

}  // namespace tdb::object

#endif  // TDB_OBJECT_PICKLE_H_
