#ifndef TDB_OBJECT_OBJECT_CACHE_H_
#define TDB_OBJECT_OBJECT_CACHE_H_

#include <list>
#include <map>
#include <memory>

#include "common/metrics.h"
#include "object/object.h"

namespace tdb::object {

/// In-memory cache of unpickled objects, indexed by object id (§4.2.2).
/// Objects here are "ready for direct access by the application: decrypted,
/// validated, unpickled, and type checked". LRU eviction; entries are
/// exempt while pinned (live Refs) or dirty (no-steal: modified objects
/// stay cached until their transaction commits, §4.2.2).
///
/// Not thread-safe; the object store's state mutex serializes access.
class ObjectCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  explicit ObjectCache(size_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  /// Mirrors hit/miss/eviction tallies and occupancy into registry
  /// instruments (all may be null). The local Stats struct stays the
  /// source of truth for existing callers; the registry gets the same
  /// increments so one snapshot covers the whole database instance.
  void AttachMetrics(common::Counter* hits, common::Counter* misses,
                     common::Counter* evictions, common::Gauge* bytes_used);

  /// Inserts (or replaces) the cached instance for `oid`.
  Object* Put(ObjectId oid, std::unique_ptr<Object> object, bool dirty);

  /// Returns the cached instance or nullptr; a hit refreshes LRU position.
  Object* Get(ObjectId oid);

  bool Contains(ObjectId oid) const { return entries_.count(oid) > 0; }

  /// Pin/unpin: pinned entries cannot be evicted. Pins come from live Refs.
  /// Pin returns the entry's generation (stamped at Put); Unpin releases
  /// only if the entry still has that generation. An abort can Erase a
  /// pinned entry and a later fetch re-Put the same oid — a stale Ref's
  /// release must not steal the replacement entry's pin.
  uint64_t Pin(ObjectId oid);
  void Unpin(ObjectId oid, uint64_t generation);

  /// Marks an entry dirty (pinned by the no-steal policy) or clean.
  void SetDirty(ObjectId oid, bool dirty);
  bool IsDirty(ObjectId oid) const;

  /// Drops an entry regardless of state (transaction abort path). Pins are
  /// forgotten — callers must not touch the object afterwards.
  void Erase(ObjectId oid);

  /// Moves `oid` to the LRU head (a Ref was dereferenced).
  void Touch(ObjectId oid);

  /// Evicts LRU-clean-unpinned entries until within capacity.
  void EnforceCapacity();

  size_t size_bytes() const { return size_; }
  size_t entry_count() const { return entries_.size(); }
  const Stats& stats() const { return stats_; }
  void CountMiss() {
    stats_.misses++;
    if (misses_metric_ != nullptr) misses_metric_->Increment();
  }

 private:
  struct Entry {
    std::unique_ptr<Object> object;
    size_t charge = 0;
    int pins = 0;
    uint64_t generation = 0;
    bool dirty = false;
    std::list<ObjectId>::iterator lru_pos;
  };

  void MirrorSize() {
    if (bytes_used_metric_ != nullptr) {
      bytes_used_metric_->Set(static_cast<int64_t>(size_));
    }
  }

  std::map<ObjectId, Entry> entries_;
  uint64_t next_generation_ = 0;
  std::list<ObjectId> lru_;  // Front = most recently used.
  size_t capacity_;
  size_t size_ = 0;
  Stats stats_;
  common::Counter* hits_metric_ = nullptr;
  common::Counter* misses_metric_ = nullptr;
  common::Counter* evictions_metric_ = nullptr;
  common::Gauge* bytes_used_metric_ = nullptr;
};

}  // namespace tdb::object

#endif  // TDB_OBJECT_OBJECT_CACHE_H_
