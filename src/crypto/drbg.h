#ifndef TDB_CRYPTO_DRBG_H_
#define TDB_CRYPTO_DRBG_H_

#include <cstdint>

#include "common/slice.h"
#include "crypto/hash.h"

namespace tdb::crypto {

/// Deterministic random bit generator: SHA-256 in counter mode over a seed.
/// Supplies encryption IVs. Deterministic from its seed, which keeps crash/
/// recovery tests reproducible; a production deployment would seed it from
/// the platform entropy source at boot.
class CtrDrbg {
 public:
  explicit CtrDrbg(Slice seed);

  /// Fills `out` with n pseudo-random bytes.
  void Generate(uint8_t* out, size_t n);
  Buffer Generate(size_t n);

 private:
  Digest seed_;
  uint64_t counter_ = 0;
};

}  // namespace tdb::crypto

#endif  // TDB_CRYPTO_DRBG_H_
