#include "crypto/block_cipher.h"

#include "common/check.h"
#include "crypto/aes.h"
#include "crypto/des.h"

namespace tdb::crypto {

std::unique_ptr<BlockCipher> NewBlockCipher(CipherKind kind, Slice key) {
  switch (kind) {
    case CipherKind::kNone:
      return nullptr;
    case CipherKind::kDes3:
      return std::make_unique<TripleDes>(key);
    case CipherKind::kAes128:
      return std::make_unique<Aes128>(key);
  }
  TDB_CHECK(false, "unknown CipherKind");
  return nullptr;
}

size_t CipherKeySize(CipherKind kind) {
  switch (kind) {
    case CipherKind::kNone:
      return 0;
    case CipherKind::kDes3:
      return TripleDes::kKeySize;
    case CipherKind::kAes128:
      return Aes128::kKeySize;
  }
  return 0;
}

}  // namespace tdb::crypto
