#include "crypto/des.h"

#include "common/check.h"
#include "common/coding.h"

namespace tdb::crypto {

namespace {

// FIPS 46-3 tables. Entries are 1-based bit positions counted from the MSB,
// as in the standard.

constexpr uint8_t kIp[64] = {
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6, 64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17, 9,  1, 59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7};

constexpr uint8_t kFp[64] = {
    40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31,
    38, 6, 46, 14, 54, 22, 62, 30, 37, 5, 45, 13, 53, 21, 61, 29,
    36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9,  49, 17, 57, 25};

constexpr uint8_t kExpansion[48] = {
    32, 1,  2,  3,  4,  5,  4,  5,  6,  7,  8,  9,  8,  9,  10, 11,
    12, 13, 12, 13, 14, 15, 16, 17, 16, 17, 18, 19, 20, 21, 20, 21,
    22, 23, 24, 25, 24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1};

constexpr uint8_t kPbox[32] = {16, 7,  20, 21, 29, 12, 28, 17, 1,  15, 23,
                               26, 5,  18, 31, 10, 2,  8,  24, 14, 32, 27,
                               3,  9,  19, 13, 30, 6,  22, 11, 4,  25};

constexpr uint8_t kPc1[56] = {57, 49, 41, 33, 25, 17, 9,  1,  58, 50, 42, 34,
                              26, 18, 10, 2,  59, 51, 43, 35, 27, 19, 11, 3,
                              60, 52, 44, 36, 63, 55, 47, 39, 31, 23, 15, 7,
                              62, 54, 46, 38, 30, 22, 14, 6,  61, 53, 45, 37,
                              29, 21, 13, 5,  28, 20, 12, 4};

constexpr uint8_t kPc2[48] = {14, 17, 11, 24, 1,  5,  3,  28, 15, 6,  21, 10,
                              23, 19, 12, 4,  26, 8,  16, 7,  27, 20, 13, 2,
                              41, 52, 31, 37, 47, 55, 30, 40, 51, 45, 33, 48,
                              44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32};

constexpr uint8_t kShifts[16] = {1, 1, 2, 2, 2, 2, 2, 2,
                                 1, 2, 2, 2, 2, 2, 2, 1};

constexpr uint8_t kSbox[8][64] = {
    {14, 4,  13, 1, 2,  15, 11, 8,  3,  10, 6,  12, 5,  9,  0, 7,
     0,  15, 7,  4, 14, 2,  13, 1,  10, 6,  12, 11, 9,  5,  3, 8,
     4,  1,  14, 8, 13, 6,  2,  11, 15, 12, 9,  7,  3,  10, 5, 0,
     15, 12, 8,  2, 4,  9,  1,  7,  5,  11, 3,  14, 10, 0,  6, 13},
    {15, 1,  8,  14, 6,  11, 3,  4,  9,  7, 2,  13, 12, 0, 5,  10,
     3,  13, 4,  7,  15, 2,  8,  14, 12, 0, 1,  10, 6,  9, 11, 5,
     0,  14, 7,  11, 10, 4,  13, 1,  5,  8, 12, 6,  9,  3, 2,  15,
     13, 8,  10, 1,  3,  15, 4,  2,  11, 6, 7,  12, 0,  5, 14, 9},
    {10, 0,  9,  14, 6, 3,  15, 5,  1,  13, 12, 7,  11, 4,  2,  8,
     13, 7,  0,  9,  3, 4,  6,  10, 2,  8,  5,  14, 12, 11, 15, 1,
     13, 6,  4,  9,  8, 15, 3,  0,  11, 1,  2,  12, 5,  10, 14, 7,
     1,  10, 13, 0,  6, 9,  8,  7,  4,  15, 14, 3,  11, 5,  2,  12},
    {7,  13, 14, 3, 0,  6,  9,  10, 1,  2, 8, 5,  11, 12, 4,  15,
     13, 8,  11, 5, 6,  15, 0,  3,  4,  7, 2, 12, 1,  10, 14, 9,
     10, 6,  9,  0, 12, 11, 7,  13, 15, 1, 3, 14, 5,  2,  8,  4,
     3,  15, 0,  6, 10, 1,  13, 8,  9,  4, 5, 11, 12, 7,  2,  14},
    {2,  12, 4,  1,  7,  10, 11, 6,  8,  5,  3,  15, 13, 0, 14, 9,
     14, 11, 2,  12, 4,  7,  13, 1,  5,  0,  15, 10, 3,  9, 8,  6,
     4,  2,  1,  11, 10, 13, 7,  8,  15, 9,  12, 5,  6,  3, 0,  14,
     11, 8,  12, 7,  1,  14, 2,  13, 6,  15, 0,  9,  10, 4, 5,  3},
    {12, 1,  10, 15, 9, 2,  6,  8,  0,  13, 3,  4,  14, 7,  5,  11,
     10, 15, 4,  2,  7, 12, 9,  5,  6,  1,  13, 14, 0,  11, 3,  8,
     9,  14, 15, 5,  2, 8,  12, 3,  7,  0,  4,  10, 1,  13, 11, 6,
     4,  3,  2,  12, 9, 5,  15, 10, 11, 14, 1,  7,  6,  0,  8,  13},
    {4,  11, 2,  14, 15, 0, 8,  13, 3,  12, 9, 7,  5,  10, 6, 1,
     13, 0,  11, 7,  4,  9, 1,  10, 14, 3,  5, 12, 2,  15, 8, 6,
     1,  4,  11, 13, 12, 3, 7,  14, 10, 15, 6, 8,  0,  5,  9, 2,
     6,  11, 13, 8,  1,  4, 10, 7,  9,  5,  0, 15, 14, 2,  3, 12},
    {13, 2,  8,  4, 6,  15, 11, 1,  10, 9,  3,  14, 5,  0,  12, 7,
     1,  15, 13, 8, 10, 3,  7,  4,  12, 5,  6,  11, 0,  14, 9,  2,
     7,  11, 4,  1, 9,  12, 14, 2,  0,  6,  10, 13, 15, 3,  5,  8,
     2,  1,  14, 7, 4,  10, 8,  13, 15, 12, 9,  0,  3,  5,  6,  11}};

// Applies a bit permutation: bit i (1-based from MSB of an `in_bits`-wide
// value) of the result comes from position table[i] of the input.
uint64_t Permute(uint64_t in, int in_bits, const uint8_t* table,
                 int out_bits) {
  uint64_t out = 0;
  for (int i = 0; i < out_bits; i++) {
    out <<= 1;
    out |= (in >> (in_bits - table[i])) & 1;
  }
  return out;
}

// --- Precomputed fast paths ------------------------------------------
// SP tables fuse each S-box with the P permutation: SP[box][six-bit input]
// is the P-permuted 32-bit contribution. The expansion E is computed with
// shifts from a 34-bit wrapped copy of R. The initial and final
// permutations use per-input-byte lookup tables. Together these replace
// the bit-at-a-time loops in the hot path (~15-20x faster), which matters
// because TDB-S encrypts every chunk with 3DES.

struct SpTables {
  uint32_t sp[8][64];
};

const SpTables& GetSpTables() {
  static const SpTables tables = [] {
    SpTables t{};
    for (int box = 0; box < 8; box++) {
      for (int six = 0; six < 64; six++) {
        int row = ((six & 0x20) >> 4) | (six & 1);
        int col = (six >> 1) & 0xf;
        uint32_t s_out = kSbox[box][row * 16 + col];
        // Place at the box's nibble (MSB-first), then apply P.
        uint32_t pre_p = s_out << (28 - 4 * box);
        t.sp[box][six] = static_cast<uint32_t>(Permute(pre_p, 32, kPbox, 32));
      }
    }
    return t;
  }();
  return tables;
}

struct ByteP64 {
  uint64_t table[8][256];
};

ByteP64 BuildByteP64(const uint8_t* perm) {
  ByteP64 result{};
  for (int byte_idx = 0; byte_idx < 8; byte_idx++) {
    for (int value = 0; value < 256; value++) {
      uint64_t in = static_cast<uint64_t>(value) << (56 - 8 * byte_idx);
      result.table[byte_idx][value] = Permute(in, 64, perm, 64);
    }
  }
  return result;
}

const ByteP64& GetIpTable() {
  static const ByteP64 table = BuildByteP64(kIp);
  return table;
}

const ByteP64& GetFpTable() {
  static const ByteP64 table = BuildByteP64(kFp);
  return table;
}

inline uint64_t ApplyByteP64(const ByteP64& p, uint64_t in) {
  uint64_t out = 0;
  for (int i = 0; i < 8; i++) {
    out |= p.table[i][(in >> (56 - 8 * i)) & 0xff];
  }
  return out;
}

inline uint32_t Feistel(uint32_t half, uint64_t subkey) {
  const SpTables& sp = GetSpTables();
  // 34-bit wrap of R: R32 | R1..R32 | R1 — each six-bit E group is then a
  // plain shift.
  uint64_t ext = (static_cast<uint64_t>(half & 1) << 33) |
                 (static_cast<uint64_t>(half) << 1) | (half >> 31);
  uint32_t out = 0;
  for (int box = 0; box < 8; box++) {
    uint32_t six = static_cast<uint32_t>(
        ((ext >> (28 - 4 * box)) ^ (subkey >> (42 - 6 * box))) & 0x3f);
    out |= sp.sp[box][six];
  }
  return out;
}

uint64_t LoadBe64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; i++) v = (v << 8) | p[i];
  return v;
}

void StoreBe64(uint64_t v, uint8_t* p) {
  for (int i = 0; i < 8; i++) p[i] = static_cast<uint8_t>(v >> (56 - 8 * i));
}

uint32_t Rotl28(uint32_t v, int n) {
  return ((v << n) | (v >> (28 - n))) & 0x0fffffff;
}

}  // namespace

Des::Des(Slice key) {
  TDB_CHECK(key.size() == kKeySize, "DES key must be 8 bytes");
  uint64_t k = LoadBe64(key.data());
  uint64_t cd = Permute(k, 64, kPc1, 56);
  uint32_t c = static_cast<uint32_t>(cd >> 28);
  uint32_t d = static_cast<uint32_t>(cd & 0x0fffffff);
  for (int round = 0; round < 16; round++) {
    c = Rotl28(c, kShifts[round]);
    d = Rotl28(d, kShifts[round]);
    uint64_t merged = (static_cast<uint64_t>(c) << 28) | d;
    subkeys_[round] = Permute(merged, 56, kPc2, 48);
  }
}

uint64_t Des::Crypt(uint64_t block, bool decrypt) const {
  uint64_t permuted = ApplyByteP64(GetIpTable(), block);
  uint32_t left = static_cast<uint32_t>(permuted >> 32);
  uint32_t right = static_cast<uint32_t>(permuted);
  for (int round = 0; round < 16; round++) {
    uint64_t subkey = subkeys_[decrypt ? 15 - round : round];
    uint32_t next_right = left ^ Feistel(right, subkey);
    left = right;
    right = next_right;
  }
  // Note the final swap: (R16, L16).
  uint64_t preout = (static_cast<uint64_t>(right) << 32) | left;
  return ApplyByteP64(GetFpTable(), preout);
}

void Des::EncryptBlock(const uint8_t* in, uint8_t* out) const {
  StoreBe64(Crypt(LoadBe64(in), /*decrypt=*/false), out);
}

void Des::DecryptBlock(const uint8_t* in, uint8_t* out) const {
  StoreBe64(Crypt(LoadBe64(in), /*decrypt=*/true), out);
}

namespace {

// Extracts the i-th single-DES key, validating the composite key length
// before any byte is touched.
Slice SubKey(Slice key, int i) {
  TDB_CHECK(key.size() == TripleDes::kKeySize, "3DES key must be 24 bytes");
  return Slice(key.data() + 8 * i, 8);
}

}  // namespace

TripleDes::TripleDes(Slice key)
    : k1_(SubKey(key, 0)), k2_(SubKey(key, 1)), k3_(SubKey(key, 2)) {}

void TripleDes::EncryptBlock(const uint8_t* in, uint8_t* out) const {
  uint8_t tmp[kBlockSize];
  k1_.EncryptBlock(in, tmp);
  k2_.DecryptBlock(tmp, out);
  k3_.EncryptBlock(out, out);
}

void TripleDes::DecryptBlock(const uint8_t* in, uint8_t* out) const {
  uint8_t tmp[kBlockSize];
  k3_.DecryptBlock(in, tmp);
  k2_.EncryptBlock(tmp, out);
  k1_.DecryptBlock(out, out);
}

}  // namespace tdb::crypto
