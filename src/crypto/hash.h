#ifndef TDB_CRYPTO_HASH_H_
#define TDB_CRYPTO_HASH_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "common/slice.h"

namespace tdb::crypto {

/// One-way hash functions available to the chunk store. The paper's
/// evaluation uses SHA-1; SHA-256 is provided as the modern alternative.
enum class HashKind : uint8_t {
  kSha1 = 1,
  kSha256 = 2,
};

/// Fixed-capacity digest value (20 bytes for SHA-1, 32 for SHA-256).
class Digest {
 public:
  static constexpr size_t kMaxSize = 32;

  Digest() : size_(0) { bytes_.fill(0); }
  Digest(const uint8_t* data, size_t size);

  const uint8_t* data() const { return bytes_.data(); }
  size_t size() const { return size_; }
  Slice AsSlice() const { return Slice(bytes_.data(), size_); }
  std::string ToHex() const;

  friend bool operator==(const Digest& a, const Digest& b) {
    return a.size_ == b.size_ && a.bytes_ == b.bytes_;
  }
  friend bool operator!=(const Digest& a, const Digest& b) {
    return !(a == b);
  }

 private:
  std::array<uint8_t, kMaxSize> bytes_;
  size_t size_;
};

/// Incremental hash computation: Update any number of times, then Finish.
/// A Hasher is single-use after Finish unless Reset is called.
class Hasher {
 public:
  virtual ~Hasher() = default;

  virtual void Reset() = 0;
  virtual void Update(Slice data) = 0;
  virtual Digest Finish() = 0;
  virtual size_t digest_size() const = 0;
};

std::unique_ptr<Hasher> NewHasher(HashKind kind);

/// Digest size in bytes for `kind` (20 or 32).
size_t DigestSize(HashKind kind);

/// One-shot convenience.
Digest Hash(HashKind kind, Slice data);

}  // namespace tdb::crypto

#endif  // TDB_CRYPTO_HASH_H_
