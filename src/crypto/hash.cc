#include "crypto/hash.h"

#include <cstring>

#include "common/check.h"
#include "common/coding.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"

namespace tdb::crypto {

Digest::Digest(const uint8_t* data, size_t size) : size_(size) {
  TDB_CHECK(size <= kMaxSize);
  bytes_.fill(0);
  if (size > 0) std::memcpy(bytes_.data(), data, size);
}

std::string Digest::ToHex() const { return tdb::ToHex(AsSlice()); }

std::unique_ptr<Hasher> NewHasher(HashKind kind) {
  switch (kind) {
    case HashKind::kSha1:
      return std::make_unique<Sha1>();
    case HashKind::kSha256:
      return std::make_unique<Sha256>();
  }
  TDB_CHECK(false, "unknown HashKind");
  return nullptr;
}

size_t DigestSize(HashKind kind) {
  return kind == HashKind::kSha1 ? Sha1::kDigestSize : Sha256::kDigestSize;
}

Digest Hash(HashKind kind, Slice data) {
  auto hasher = NewHasher(kind);
  hasher->Update(data);
  return hasher->Finish();
}

}  // namespace tdb::crypto
