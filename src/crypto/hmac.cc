#include "crypto/hmac.h"

#include <cstring>

namespace tdb::crypto {

namespace {
constexpr size_t kBlockSize = 64;  // SHA-1 and SHA-256 share a 64B block.
}  // namespace

Hmac::Hmac(HashKind kind, Slice key) : kind_(kind), inner_(NewHasher(kind)) {
  uint8_t key_block[kBlockSize] = {0};
  if (key.size() > kBlockSize) {
    Digest d = Hash(kind, key);
    std::memcpy(key_block, d.data(), d.size());
  } else {
    std::memcpy(key_block, key.data(), key.size());
  }
  for (size_t i = 0; i < kBlockSize; i++) {
    ipad_[i] = key_block[i] ^ 0x36;
    opad_[i] = key_block[i] ^ 0x5c;
  }
  Reset();
}

void Hmac::Reset() {
  inner_->Reset();
  inner_->Update(Slice(ipad_, kBlockSize));
}

void Hmac::Update(Slice data) { inner_->Update(data); }

Digest Hmac::Finish() {
  Digest inner_digest = inner_->Finish();
  auto outer = NewHasher(kind_);
  outer->Update(Slice(opad_, kBlockSize));
  outer->Update(inner_digest.AsSlice());
  return outer->Finish();
}

Digest Hmac::Mac(HashKind kind, Slice key, Slice data) {
  Hmac mac(kind, key);
  mac.Update(data);
  return mac.Finish();
}

}  // namespace tdb::crypto
