#ifndef TDB_CRYPTO_CBC_H_
#define TDB_CRYPTO_CBC_H_

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "crypto/block_cipher.h"

namespace tdb::crypto {

/// CBC mode with PKCS#7 padding over any BlockCipher. The padding is what
/// produces the per-chunk "padding for block encryption" storage overhead
/// the paper measures for TDB-S.

/// Ciphertext length for a plaintext of `plain_size` bytes (padded up to the
/// next whole block, IV not included).
size_t CbcCiphertextSize(const BlockCipher& cipher, size_t plain_size);

/// Encrypts `plain` under `iv` (must be one block). Output = padded
/// ciphertext; the caller stores the IV alongside.
Buffer CbcEncrypt(const BlockCipher& cipher, Slice iv, Slice plain);

/// Decrypts and strips padding. Returns Corruption on malformed input or
/// bad padding (which, combined with the Merkle check above it, surfaces
/// tampering).
Result<Buffer> CbcDecrypt(const BlockCipher& cipher, Slice iv, Slice cipher_text);

}  // namespace tdb::crypto

#endif  // TDB_CRYPTO_CBC_H_
