#ifndef TDB_CRYPTO_AES_H_
#define TDB_CRYPTO_AES_H_

#include <cstdint>

#include "crypto/block_cipher.h"

namespace tdb::crypto {

/// AES-128 (FIPS 197). The paper notes "there are other algorithms that are
/// as secure as 3DES and run significantly faster" — this is that
/// configuration. 16-byte key, 16-byte block.
class Aes128 final : public BlockCipher {
 public:
  static constexpr size_t kBlockSize = 16;
  static constexpr size_t kKeySize = 16;
  static constexpr int kRounds = 10;

  explicit Aes128(Slice key);

  size_t block_size() const override { return kBlockSize; }
  size_t key_size() const override { return kKeySize; }
  void EncryptBlock(const uint8_t* in, uint8_t* out) const override;
  void DecryptBlock(const uint8_t* in, uint8_t* out) const override;

  /// Whole-buffer CBC via AES-NI when the CPU supports it and hardware
  /// dispatch is enabled; returns false (caller loops) otherwise.
  bool CbcEncryptBlocks(const uint8_t* iv, const uint8_t* in, size_t n_blocks,
                        uint8_t* out) const override;
  bool CbcDecryptBlocks(const uint8_t* iv, const uint8_t* in, size_t n_blocks,
                        uint8_t* out) const override;

 private:
  uint8_t round_keys_[(kRounds + 1) * 16];
  // Equivalent-inverse-cipher schedule for aesdec; prepared at key setup
  // whenever the CPU has AES-NI (independent of the runtime dispatch
  // switch, so tests can toggle dispatch after construction).
  uint8_t dec_round_keys_[(kRounds + 1) * 16];
  bool has_dec_round_keys_ = false;
};

}  // namespace tdb::crypto

#endif  // TDB_CRYPTO_AES_H_
