#ifndef TDB_CRYPTO_CIPHER_SUITE_H_
#define TDB_CRYPTO_CIPHER_SUITE_H_

#include <memory>

#include "common/result.h"
#include "common/slice.h"
#include "crypto/block_cipher.h"
#include "crypto/drbg.h"
#include "crypto/hash.h"
#include "crypto/hmac.h"

namespace tdb::crypto {

/// Security configuration of a TDB instance. The paper's three measured
/// configurations map to:
///   - "TDB"    : enabled = false (no hashing, no encryption, no counter)
///   - "TDB-S"  : enabled, kSha1 + kDes3 (the paper's choice)
///   - modern   : enabled, kSha256 + kAes128
struct SecurityConfig {
  bool enabled = true;
  HashKind hash = HashKind::kSha1;
  CipherKind cipher = CipherKind::kDes3;

  static SecurityConfig Disabled() { return {.enabled = false}; }
  static SecurityConfig PaperTdbS() {
    return {.enabled = true, .hash = HashKind::kSha1,
            .cipher = CipherKind::kDes3};
  }
  static SecurityConfig Modern() {
    return {.enabled = true, .hash = HashKind::kSha256,
            .cipher = CipherKind::kAes128};
  }
};

/// Bundles the hash, MAC and cipher operations the chunk store needs,
/// with encryption and MAC keys derived from the master secret held in the
/// secret store. When security is disabled, sealing is a pass-through and
/// hashes are empty (the paper's plain-TDB configuration, which still
/// detects *accidental* corruption via log checksums but offers no defense
/// against an intelligent attacker).
///
/// THREAD SAFETY: after construction, every const member (HashData, Mac,
/// Open, SealWithIv, SealedSize, hash_size) is safe to call concurrently —
/// the key schedules are immutable and each call keeps its working state
/// on the stack. Only Seal()/NextIv() mutate (they advance the IV
/// generator) and need external serialization. The chunk store's parallel
/// commit pipeline relies on this split: IVs are drawn serially in
/// submission order, then SealWithIv/HashData fan out across threads,
/// producing output bit-identical to the serial path.
class CipherSuite {
 public:
  /// `master_secret` comes from the SecretStore; `iv_seed` seeds the IV
  /// generator (pass varying bytes in production, a constant in tests).
  CipherSuite(const SecurityConfig& config, Slice master_secret,
              Slice iv_seed);

  bool enabled() const { return config_.enabled; }
  const SecurityConfig& config() const { return config_; }

  /// Bytes of hash stored per location-map entry (0 when disabled).
  size_t hash_size() const;

  /// One-way hash of chunk/record contents for the Merkle tree. Empty
  /// digest when disabled.
  Digest HashData(Slice data) const;

  /// Keyed MAC for the anchor record. Falls back to an (unkeyed) digest of
  /// nothing when disabled — the anchor then carries only a checksum.
  Digest Mac(Slice data) const;

  /// Encrypts `plain` into IV || ciphertext (pass-through when disabled).
  /// Equivalent to SealWithIv(plain, NextIv()).
  Buffer Seal(Slice plain);

  /// Draws the next IV (one cipher block; empty when encryption is off).
  /// Mutates the generator — serialize calls, and draw in a deterministic
  /// order if reproducible output matters.
  Buffer NextIv();

  /// Seals under a caller-supplied IV of exactly one cipher block (ignored
  /// and pass-through when encryption is off). Const and safe to call from
  /// multiple threads concurrently.
  Buffer SealWithIv(Slice plain, Slice iv) const;

  /// Inverse of Seal. Corruption on malformed input.
  Result<Buffer> Open(Slice sealed) const;

  /// Size Seal() will produce for `plain_size` input bytes.
  size_t SealedSize(size_t plain_size) const;

 private:
  SecurityConfig config_;
  Buffer mac_key_;
  std::unique_ptr<BlockCipher> cipher_;
  std::unique_ptr<CtrDrbg> iv_gen_;
};

}  // namespace tdb::crypto

#endif  // TDB_CRYPTO_CIPHER_SUITE_H_
