#ifndef TDB_CRYPTO_ACCEL_H_
#define TDB_CRYPTO_ACCEL_H_

#include <cstddef>
#include <cstdint>

namespace tdb::crypto::accel {

/// Runtime-dispatched hardware fast paths for the hot crypto kernels
/// (AES-NI block/CBC processing, SHA-NI SHA-1/SHA-256 compression).
///
/// Dispatch contract:
///   - CpuSupports*() report what the machine can execute (cpuid).
///   - *Enabled() additionally honor the runtime switch: the environment
///     variable TDB_CRYPTO_ACCEL=off (or 0) forces the portable paths, and
///     SetEnabledForTesting lets tests flip dispatch at will so both
///     implementations run on the same machine.
///   - The accelerated kernels are drop-in replacements: given the same
///     key schedule / state / input they produce bit-identical output to
///     the from-scratch portable implementations (asserted over the full
///     FIPS vector suite in tests/crypto_test.cc).
///
/// On targets without the x86 extensions the kernels below are compiled as
/// trapping stubs and CpuSupports*() return false, so they are never
/// reached.

/// True when the CPU executes AES-NI (+SSSE3/SSE4.1 used by the kernels).
bool CpuSupportsAes();
/// True when the CPU executes the SHA-NI extensions (SHA-1 and SHA-256).
bool CpuSupportsSha();

/// CpuSupports* gated by the runtime switch. Every dispatch site checks
/// one of these per call, so toggling takes effect immediately.
bool AesEnabled();
bool ShaEnabled();

/// Forces dispatch for tests: false = portable everywhere, true = restore
/// hardware paths where the CPU supports them. Safe on machines without
/// the extensions (enabling is still masked by cpuid).
void SetEnabledForTesting(bool enabled);

/// AES-128 kernels. Round keys use the byte layout of the FIPS 197 key
/// schedule exactly as Aes128 expands it: 11 round keys x 16 bytes.
/// Decryption needs the InvMixColumns-transformed (equivalent inverse
/// cipher) schedule, prepared once per key by AesNiPrepareDecryptKeys.
void AesNiPrepareDecryptKeys(const uint8_t enc_keys[176],
                             uint8_t dec_keys[176]);
void AesNiEncryptBlock(const uint8_t enc_keys[176], const uint8_t* in,
                       uint8_t* out);
void AesNiDecryptBlock(const uint8_t dec_keys[176], const uint8_t* in,
                       uint8_t* out);
/// Whole-buffer CBC: processes n_blocks 16-byte blocks. Encrypt chains
/// serially (CBC's data dependence); decrypt pipelines 4 blocks wide.
/// in/out must not alias.
void AesNiCbcEncrypt(const uint8_t enc_keys[176], const uint8_t iv[16],
                     const uint8_t* in, size_t n_blocks, uint8_t* out);
void AesNiCbcDecrypt(const uint8_t dec_keys[176], const uint8_t iv[16],
                     const uint8_t* in, size_t n_blocks, uint8_t* out);

/// SHA compression over n contiguous 64-byte blocks, updating `state`
/// in place (same representation as the portable h_ arrays).
void ShaNiSha1Blocks(uint32_t state[5], const uint8_t* blocks, size_t n);
void ShaNiSha256Blocks(uint32_t state[8], const uint8_t* blocks, size_t n);

}  // namespace tdb::crypto::accel

#endif  // TDB_CRYPTO_ACCEL_H_
