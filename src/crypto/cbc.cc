#include "crypto/cbc.h"

#include <cstring>

#include "common/check.h"

namespace tdb::crypto {

size_t CbcCiphertextSize(const BlockCipher& cipher, size_t plain_size) {
  size_t block = cipher.block_size();
  return (plain_size / block + 1) * block;  // PKCS#7 always adds >= 1 byte.
}

Buffer CbcEncrypt(const BlockCipher& cipher, Slice iv, Slice plain) {
  const size_t block = cipher.block_size();
  TDB_CHECK(iv.size() == block, "IV must be one cipher block");

  // PKCS#7 pad.
  size_t pad = block - (plain.size() % block);
  Buffer padded = plain.ToBuffer();
  padded.insert(padded.end(), pad, static_cast<uint8_t>(pad));

  Buffer out(padded.size());
  if (cipher.CbcEncryptBlocks(iv.data(), padded.data(), padded.size() / block,
                              out.data())) {
    return out;
  }
  uint8_t chain[32];
  std::memcpy(chain, iv.data(), block);
  for (size_t off = 0; off < padded.size(); off += block) {
    uint8_t x[32];
    for (size_t i = 0; i < block; i++) x[i] = padded[off + i] ^ chain[i];
    cipher.EncryptBlock(x, out.data() + off);
    std::memcpy(chain, out.data() + off, block);
  }
  return out;
}

Result<Buffer> CbcDecrypt(const BlockCipher& cipher, Slice iv,
                          Slice cipher_text) {
  const size_t block = cipher.block_size();
  TDB_CHECK(iv.size() == block, "IV must be one cipher block");
  if (cipher_text.size() == 0 || cipher_text.size() % block != 0) {
    return Status::Corruption("ciphertext not block-aligned");
  }

  Buffer out(cipher_text.size());
  if (!cipher.CbcDecryptBlocks(iv.data(), cipher_text.data(),
                               cipher_text.size() / block, out.data())) {
    uint8_t chain[32];
    std::memcpy(chain, iv.data(), block);
    for (size_t off = 0; off < cipher_text.size(); off += block) {
      cipher.DecryptBlock(cipher_text.data() + off, out.data() + off);
      for (size_t i = 0; i < block; i++) out[off + i] ^= chain[i];
      std::memcpy(chain, cipher_text.data() + off, block);
    }
  }

  uint8_t pad = out.back();
  if (pad == 0 || pad > block || pad > out.size()) {
    return Status::Corruption("bad CBC padding");
  }
  for (size_t i = out.size() - pad; i < out.size(); i++) {
    if (out[i] != pad) return Status::Corruption("bad CBC padding");
  }
  out.resize(out.size() - pad);
  return out;
}

}  // namespace tdb::crypto
