#include "crypto/accel.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/check.h"

#if defined(TDB_CRYPTO_X86_ACCEL)
#include <cpuid.h>
#endif

namespace tdb::crypto::accel {

namespace {

struct CpuFeatures {
  bool aes = false;
  bool sha = false;
};

CpuFeatures DetectCpu() {
  CpuFeatures features;
#if defined(TDB_CRYPTO_X86_ACCEL)
  unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
    const bool has_aesni = (ecx & bit_AES) != 0;
    const bool has_ssse3 = (ecx & bit_SSSE3) != 0;
    const bool has_sse41 = (ecx & bit_SSE4_1) != 0;
    features.aes = has_aesni && has_ssse3 && has_sse41;
    if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
      features.sha = has_ssse3 && has_sse41 && (ebx & bit_SHA) != 0;
    }
  }
#endif
  return features;
}

const CpuFeatures& Cpu() {
  static const CpuFeatures features = DetectCpu();
  return features;
}

// Runtime switch, defaulted from TDB_CRYPTO_ACCEL on first use.
std::atomic<int>& EnabledFlag() {
  static std::atomic<int> enabled = [] {
    const char* env = std::getenv("TDB_CRYPTO_ACCEL");
    if (env != nullptr &&
        (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0)) {
      return 0;
    }
    return 1;
  }();
  return enabled;
}

}  // namespace

bool CpuSupportsAes() { return Cpu().aes; }
bool CpuSupportsSha() { return Cpu().sha; }

bool AesEnabled() {
  return Cpu().aes && EnabledFlag().load(std::memory_order_relaxed) != 0;
}

bool ShaEnabled() {
  return Cpu().sha && EnabledFlag().load(std::memory_order_relaxed) != 0;
}

void SetEnabledForTesting(bool enabled) {
  EnabledFlag().store(enabled ? 1 : 0, std::memory_order_relaxed);
}

#if !defined(TDB_CRYPTO_X86_ACCEL)

// Trapping stubs for builds without the x86 kernels: CpuSupports*() are
// hardwired false above, so reaching any of these is a dispatch bug.
void AesNiPrepareDecryptKeys(const uint8_t*, uint8_t*) {
  TDB_CHECK(false, "AES-NI kernel not compiled in");
}
void AesNiEncryptBlock(const uint8_t*, const uint8_t*, uint8_t*) {
  TDB_CHECK(false, "AES-NI kernel not compiled in");
}
void AesNiDecryptBlock(const uint8_t*, const uint8_t*, uint8_t*) {
  TDB_CHECK(false, "AES-NI kernel not compiled in");
}
void AesNiCbcEncrypt(const uint8_t*, const uint8_t*, const uint8_t*, size_t,
                     uint8_t*) {
  TDB_CHECK(false, "AES-NI kernel not compiled in");
}
void AesNiCbcDecrypt(const uint8_t*, const uint8_t*, const uint8_t*, size_t,
                     uint8_t*) {
  TDB_CHECK(false, "AES-NI kernel not compiled in");
}
void ShaNiSha1Blocks(uint32_t*, const uint8_t*, size_t) {
  TDB_CHECK(false, "SHA-NI kernel not compiled in");
}
void ShaNiSha256Blocks(uint32_t*, const uint8_t*, size_t) {
  TDB_CHECK(false, "SHA-NI kernel not compiled in");
}

#endif  // !defined(TDB_CRYPTO_X86_ACCEL)

}  // namespace tdb::crypto::accel
