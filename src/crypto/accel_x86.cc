// AES-NI and SHA-NI kernels. This translation unit is compiled with
// -maes -msha -mssse3 -msse4.1 and is only entered after a cpuid check
// (accel.cc), so the intrinsics below never execute on machines without
// the extensions.
//
// All kernels operate on the exact representations the portable
// implementations use: the FIPS 197 key schedule bytes as Aes128 expands
// them (which is also AES-NI's in-memory round-key layout) and the
// uint32 h_ state arrays of Sha1/Sha256. Bit-identical output is a hard
// requirement, asserted over the FIPS vectors in tests/crypto_test.cc.

#if defined(TDB_CRYPTO_X86_ACCEL)

#include <immintrin.h>

#include <cstdint>

#include "crypto/accel.h"

namespace tdb::crypto::accel {

namespace {

inline __m128i LoadKey(const uint8_t* keys, int round) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + 16 * round));
}

inline __m128i EncryptOne(const __m128i k[11], __m128i x) {
  x = _mm_xor_si128(x, k[0]);
  for (int r = 1; r < 10; r++) x = _mm_aesenc_si128(x, k[r]);
  return _mm_aesenclast_si128(x, k[10]);
}

inline __m128i DecryptOne(const __m128i k[11], __m128i x) {
  x = _mm_xor_si128(x, k[0]);
  for (int r = 1; r < 10; r++) x = _mm_aesdec_si128(x, k[r]);
  return _mm_aesdeclast_si128(x, k[10]);
}

inline void LoadAllKeys(const uint8_t keys[176], __m128i k[11]) {
  for (int r = 0; r <= 10; r++) k[r] = LoadKey(keys, r);
}

}  // namespace

void AesNiPrepareDecryptKeys(const uint8_t enc_keys[176],
                             uint8_t dec_keys[176]) {
  // Equivalent inverse cipher (FIPS 197 §5.3.5): reverse the schedule and
  // apply InvMixColumns to the interior round keys.
  __m128i* out = reinterpret_cast<__m128i*>(dec_keys);
  _mm_storeu_si128(out + 0, LoadKey(enc_keys, 10));
  for (int r = 1; r < 10; r++) {
    _mm_storeu_si128(out + r, _mm_aesimc_si128(LoadKey(enc_keys, 10 - r)));
  }
  _mm_storeu_si128(out + 10, LoadKey(enc_keys, 0));
}

void AesNiEncryptBlock(const uint8_t enc_keys[176], const uint8_t* in,
                       uint8_t* out) {
  __m128i k[11];
  LoadAllKeys(enc_keys, k);
  __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), EncryptOne(k, x));
}

void AesNiDecryptBlock(const uint8_t dec_keys[176], const uint8_t* in,
                       uint8_t* out) {
  __m128i k[11];
  LoadAllKeys(dec_keys, k);
  __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), DecryptOne(k, x));
}

void AesNiCbcEncrypt(const uint8_t enc_keys[176], const uint8_t iv[16],
                     const uint8_t* in, size_t n_blocks, uint8_t* out) {
  __m128i k[11];
  LoadAllKeys(enc_keys, k);
  // CBC encryption is inherently serial (each block keys off the previous
  // ciphertext); the win over the portable path is doing each block in 10
  // aesenc instructions with the keys pinned in registers.
  __m128i chain = _mm_loadu_si128(reinterpret_cast<const __m128i*>(iv));
  for (size_t b = 0; b < n_blocks; b++) {
    __m128i x =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 16 * b));
    chain = EncryptOne(k, _mm_xor_si128(x, chain));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * b), chain);
  }
}

void AesNiCbcDecrypt(const uint8_t dec_keys[176], const uint8_t iv[16],
                     const uint8_t* in, size_t n_blocks, uint8_t* out) {
  __m128i k[11];
  LoadAllKeys(dec_keys, k);
  __m128i prev = _mm_loadu_si128(reinterpret_cast<const __m128i*>(iv));
  size_t b = 0;
  // Decryption has no serial dependence — pipeline 4 blocks so the aesdec
  // latency of one block overlaps the others.
  for (; b + 4 <= n_blocks; b += 4) {
    const __m128i* src = reinterpret_cast<const __m128i*>(in + 16 * b);
    __m128i c0 = _mm_loadu_si128(src + 0);
    __m128i c1 = _mm_loadu_si128(src + 1);
    __m128i c2 = _mm_loadu_si128(src + 2);
    __m128i c3 = _mm_loadu_si128(src + 3);
    __m128i x0 = _mm_xor_si128(c0, k[0]);
    __m128i x1 = _mm_xor_si128(c1, k[0]);
    __m128i x2 = _mm_xor_si128(c2, k[0]);
    __m128i x3 = _mm_xor_si128(c3, k[0]);
    for (int r = 1; r < 10; r++) {
      x0 = _mm_aesdec_si128(x0, k[r]);
      x1 = _mm_aesdec_si128(x1, k[r]);
      x2 = _mm_aesdec_si128(x2, k[r]);
      x3 = _mm_aesdec_si128(x3, k[r]);
    }
    x0 = _mm_aesdeclast_si128(x0, k[10]);
    x1 = _mm_aesdeclast_si128(x1, k[10]);
    x2 = _mm_aesdeclast_si128(x2, k[10]);
    x3 = _mm_aesdeclast_si128(x3, k[10]);
    __m128i* dst = reinterpret_cast<__m128i*>(out + 16 * b);
    _mm_storeu_si128(dst + 0, _mm_xor_si128(x0, prev));
    _mm_storeu_si128(dst + 1, _mm_xor_si128(x1, c0));
    _mm_storeu_si128(dst + 2, _mm_xor_si128(x2, c1));
    _mm_storeu_si128(dst + 3, _mm_xor_si128(x3, c2));
    prev = c3;
  }
  for (; b < n_blocks; b++) {
    __m128i c =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 16 * b));
    __m128i x = _mm_xor_si128(DecryptOne(k, c), prev);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * b), x);
    prev = c;
  }
}

namespace {

// SHA-256 round constants, natural order; _mm_loadu of 4 consecutive
// words yields the lane order _mm_sha256rnds2_epu32 expects.
alignas(16) constexpr uint32_t kSha256K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

}  // namespace

void ShaNiSha256Blocks(uint32_t state[8], const uint8_t* blocks, size_t n) {
  // Big-endian word swap for message loads.
  const __m128i kSwap =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  // Repack {a..h} into the ABEF/CDGH register layout the sha256rnds2
  // instruction works in.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i st1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);
  st1 = _mm_shuffle_epi32(st1, 0x1B);
  __m128i state0 = _mm_alignr_epi8(tmp, st1, 8);   // ABEF
  __m128i state1 = _mm_blend_epi16(st1, tmp, 0xF0);  // CDGH

  while (n-- > 0) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;
    __m128i m[4];

    // 16 groups of 4 rounds. Groups 0-3 load message words; group G's
    // schedule is staged by msg1 at group G-3 and finished by the alignr
    // feed + msg2 at group G-1, so msg1 spans groups 1-12 and the msg2
    // step spans groups 3-14.
    for (int g = 0; g < 16; g++) {
      if (g < 4) {
        m[g] = _mm_shuffle_epi8(
            _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(blocks + 16 * g)),
            kSwap);
      }
      __m128i msg = _mm_add_epi32(
          m[g & 3], _mm_load_si128(reinterpret_cast<const __m128i*>(
                        &kSha256K[4 * g])));
      state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
      if (g >= 3 && g < 15) {
        __m128i feed = _mm_alignr_epi8(m[g & 3], m[(g + 3) & 3], 4);
        m[(g + 1) & 3] = _mm_add_epi32(m[(g + 1) & 3], feed);
        m[(g + 1) & 3] = _mm_sha256msg2_epu32(m[(g + 1) & 3], m[g & 3]);
      }
      msg = _mm_shuffle_epi32(msg, 0x0E);
      state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
      if (g >= 1 && g <= 12) {
        m[(g + 3) & 3] = _mm_sha256msg1_epu32(m[(g + 3) & 3], m[g & 3]);
      }
    }

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
    blocks += 64;
  }

  // Unpack ABEF/CDGH back to {a..h}.
  tmp = _mm_shuffle_epi32(state0, 0x1B);
  state1 = _mm_shuffle_epi32(state1, 0xB1);
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);
  state1 = _mm_alignr_epi8(state1, tmp, 8);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

void ShaNiSha1Blocks(uint32_t state[5], const uint8_t* blocks, size_t n) {
  // Full 16-byte reversal: sha1rnds4 keeps ABCD in descending lanes.
  const __m128i kSwap =
      _mm_set_epi64x(0x0001020304050607ULL, 0x08090a0b0c0d0e0fULL);

  __m128i abcd = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state));
  abcd = _mm_shuffle_epi32(abcd, 0x1B);
  __m128i e[2];
  e[0] = _mm_set_epi32(static_cast<int>(state[4]), 0, 0, 0);
  e[1] = _mm_setzero_si128();

  while (n-- > 0) {
    const __m128i abcd_save = abcd;
    const __m128i e0_save = e[0];
    __m128i m[4];

    // 20 groups of 4 rounds, alternating the E accumulator. The schedule
    // ops past their useful range (late groups) touch only registers that
    // are never read again — keeping the loop uniform costs nothing.
    for (int g = 0; g < 20; g++) {
      if (g < 4) {
        m[g] = _mm_shuffle_epi8(
            _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(blocks + 16 * g)),
            kSwap);
      }
      const int in = g & 1, other = in ^ 1;
      if (g == 0) {
        e[0] = _mm_add_epi32(e[0], m[0]);
      } else {
        e[in] = _mm_sha1nexte_epu32(e[in], m[g & 3]);
      }
      e[other] = abcd;
      if (g >= 3) m[(g + 1) & 3] = _mm_sha1msg2_epu32(m[(g + 1) & 3], m[g & 3]);
      // sha1rnds4 needs a literal immediate for the round function.
      switch (g / 5) {
        case 0: abcd = _mm_sha1rnds4_epu32(abcd, e[in], 0); break;
        case 1: abcd = _mm_sha1rnds4_epu32(abcd, e[in], 1); break;
        case 2: abcd = _mm_sha1rnds4_epu32(abcd, e[in], 2); break;
        default: abcd = _mm_sha1rnds4_epu32(abcd, e[in], 3); break;
      }
      if (g >= 1) m[(g + 3) & 3] = _mm_sha1msg1_epu32(m[(g + 3) & 3], m[g & 3]);
      if (g >= 2) m[(g + 2) & 3] = _mm_xor_si128(m[(g + 2) & 3], m[g & 3]);
    }

    e[0] = _mm_sha1nexte_epu32(e[0], e0_save);
    abcd = _mm_add_epi32(abcd, abcd_save);
    blocks += 64;
  }

  abcd = _mm_shuffle_epi32(abcd, 0x1B);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), abcd);
  state[4] = static_cast<uint32_t>(_mm_extract_epi32(e[0], 3));
}

}  // namespace tdb::crypto::accel

#endif  // defined(TDB_CRYPTO_X86_ACCEL)
