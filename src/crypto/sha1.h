#ifndef TDB_CRYPTO_SHA1_H_
#define TDB_CRYPTO_SHA1_H_

#include <cstdint>

#include "crypto/hash.h"

namespace tdb::crypto {

/// SHA-1 (FIPS 180-1), the hash the paper's TDB-S configuration uses for its
/// Merkle tree. Implemented from the specification; validated against FIPS
/// test vectors in tests/crypto_test.cc.
class Sha1 final : public Hasher {
 public:
  static constexpr size_t kDigestSize = 20;

  Sha1() { Reset(); }

  void Reset() override;
  void Update(Slice data) override;
  Digest Finish() override;
  size_t digest_size() const override { return kDigestSize; }

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t h_[5];
  uint64_t length_ = 0;       // Total message length in bytes.
  uint8_t buffer_[64];        // Partial block.
  size_t buffered_ = 0;
};

}  // namespace tdb::crypto

#endif  // TDB_CRYPTO_SHA1_H_
