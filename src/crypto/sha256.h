#ifndef TDB_CRYPTO_SHA256_H_
#define TDB_CRYPTO_SHA256_H_

#include <cstdint>

#include "crypto/hash.h"

namespace tdb::crypto {

/// SHA-256 (FIPS 180-2). Offered as the modern, stronger alternative to the
/// paper's SHA-1 configuration; also the core of the CTR-mode DRBG.
class Sha256 final : public Hasher {
 public:
  static constexpr size_t kDigestSize = 32;

  Sha256() { Reset(); }

  void Reset() override;
  void Update(Slice data) override;
  Digest Finish() override;
  size_t digest_size() const override { return kDigestSize; }

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t h_[8];
  uint64_t length_ = 0;
  uint8_t buffer_[64];
  size_t buffered_ = 0;
};

}  // namespace tdb::crypto

#endif  // TDB_CRYPTO_SHA256_H_
