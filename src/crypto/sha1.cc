#include "crypto/sha1.h"

#include <cstring>

#include "crypto/accel.h"

namespace tdb::crypto {

namespace {

inline uint32_t Rotl(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

}  // namespace

void Sha1::Reset() {
  h_[0] = 0x67452301;
  h_[1] = 0xEFCDAB89;
  h_[2] = 0x98BADCFE;
  h_[3] = 0x10325476;
  h_[4] = 0xC3D2E1F0;
  length_ = 0;
  buffered_ = 0;
}

void Sha1::Update(Slice data) {
  length_ += data.size();
  const uint8_t* p = data.data();
  size_t n = data.size();
  if (buffered_ > 0) {
    size_t take = std::min(n, sizeof(buffer_) - buffered_);
    std::memcpy(buffer_ + buffered_, p, take);
    buffered_ += take;
    p += take;
    n -= take;
    if (buffered_ == sizeof(buffer_)) {
      ProcessBlock(buffer_);
      buffered_ = 0;
    }
  }
  if (n >= 64 && accel::ShaEnabled()) {
    // One SHA-NI call compresses the whole contiguous run.
    accel::ShaNiSha1Blocks(h_, p, n / 64);
    p += (n / 64) * 64;
    n %= 64;
  }
  while (n >= 64) {
    ProcessBlock(p);
    p += 64;
    n -= 64;
  }
  if (n > 0) {
    std::memcpy(buffer_, p, n);
    buffered_ = n;
  }
}

Digest Sha1::Finish() {
  uint64_t bit_len = length_ * 8;
  uint8_t pad[72];
  size_t pad_len = (buffered_ < 56) ? (56 - buffered_) : (120 - buffered_);
  pad[0] = 0x80;
  std::memset(pad + 1, 0, pad_len - 1);
  Update(Slice(pad, pad_len));
  uint8_t len_be[8];
  for (int i = 0; i < 8; i++)
    len_be[i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  Update(Slice(len_be, 8));

  uint8_t out[kDigestSize];
  for (int i = 0; i < 5; i++) {
    out[4 * i] = static_cast<uint8_t>(h_[i] >> 24);
    out[4 * i + 1] = static_cast<uint8_t>(h_[i] >> 16);
    out[4 * i + 2] = static_cast<uint8_t>(h_[i] >> 8);
    out[4 * i + 3] = static_cast<uint8_t>(h_[i]);
  }
  return Digest(out, kDigestSize);
}

void Sha1::ProcessBlock(const uint8_t* block) {
  if (accel::ShaEnabled()) {
    accel::ShaNiSha1Blocks(h_, block, 1);
    return;
  }
  uint32_t w[80];
  for (int i = 0; i < 16; i++) {
    w[i] = (static_cast<uint32_t>(block[4 * i]) << 24) |
           (static_cast<uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 80; i++) {
    w[i] = Rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; i++) {
    uint32_t f, k;
    if (i < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5A827999;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDC;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6;
    }
    uint32_t tmp = Rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = Rotl(b, 30);
    b = a;
    a = tmp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

}  // namespace tdb::crypto
