#ifndef TDB_CRYPTO_HMAC_H_
#define TDB_CRYPTO_HMAC_H_

#include "crypto/hash.h"

namespace tdb::crypto {

/// HMAC (RFC 2104) over either hash. The chunk store MACs its anchor record
/// with HMAC(secret key) so an attacker without the secret store cannot
/// forge a valid anchor.
class Hmac {
 public:
  Hmac(HashKind kind, Slice key);

  void Reset();
  void Update(Slice data);
  Digest Finish();

  /// One-shot convenience.
  static Digest Mac(HashKind kind, Slice key, Slice data);

 private:
  HashKind kind_;
  uint8_t ipad_[64];
  uint8_t opad_[64];
  std::unique_ptr<Hasher> inner_;
};

}  // namespace tdb::crypto

#endif  // TDB_CRYPTO_HMAC_H_
