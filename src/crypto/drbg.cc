#include "crypto/drbg.h"

#include <cstring>

#include "common/coding.h"
#include "crypto/sha256.h"

namespace tdb::crypto {

CtrDrbg::CtrDrbg(Slice seed) { seed_ = Hash(HashKind::kSha256, seed); }

void CtrDrbg::Generate(uint8_t* out, size_t n) {
  while (n > 0) {
    Buffer block_input;
    block_input.insert(block_input.end(), seed_.data(),
                       seed_.data() + seed_.size());
    PutFixed64(&block_input, counter_++);
    Digest block = Hash(HashKind::kSha256, block_input);
    size_t take = std::min(n, block.size());
    std::memcpy(out, block.data(), take);
    out += take;
    n -= take;
  }
}

Buffer CtrDrbg::Generate(size_t n) {
  Buffer out(n);
  Generate(out.data(), n);
  return out;
}

}  // namespace tdb::crypto
