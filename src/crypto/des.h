#ifndef TDB_CRYPTO_DES_H_
#define TDB_CRYPTO_DES_H_

#include <cstdint>

#include "crypto/block_cipher.h"

namespace tdb::crypto {

/// Single DES (FIPS 46-3) — building block for TripleDes; exposed on its own
/// for test-vector validation only. 8-byte key (parity bits ignored),
/// 8-byte block.
class Des final : public BlockCipher {
 public:
  static constexpr size_t kBlockSize = 8;
  static constexpr size_t kKeySize = 8;

  explicit Des(Slice key);

  size_t block_size() const override { return kBlockSize; }
  size_t key_size() const override { return kKeySize; }
  void EncryptBlock(const uint8_t* in, uint8_t* out) const override;
  void DecryptBlock(const uint8_t* in, uint8_t* out) const override;

 private:
  uint64_t Crypt(uint64_t block, bool decrypt) const;

  uint64_t subkeys_[16];  // 48-bit round keys.
};

/// Triple DES in EDE mode with a 24-byte key (three independent DES keys),
/// the cipher used by the paper's TDB-S configuration.
class TripleDes final : public BlockCipher {
 public:
  static constexpr size_t kBlockSize = 8;
  static constexpr size_t kKeySize = 24;

  explicit TripleDes(Slice key);

  size_t block_size() const override { return kBlockSize; }
  size_t key_size() const override { return kKeySize; }
  void EncryptBlock(const uint8_t* in, uint8_t* out) const override;
  void DecryptBlock(const uint8_t* in, uint8_t* out) const override;

 private:
  Des k1_, k2_, k3_;
};

}  // namespace tdb::crypto

#endif  // TDB_CRYPTO_DES_H_
