#include "crypto/cipher_suite.h"

#include <cstring>

#include "common/check.h"
#include "crypto/cbc.h"

namespace tdb::crypto {

namespace {

// Derives a purpose-specific subkey from the master secret so the cipher
// key and the MAC key are independent.
Buffer DeriveKey(Slice master, const char* purpose, size_t size) {
  Buffer out;
  uint8_t block_index = 0;
  while (out.size() < size) {
    Buffer label;
    label.insert(label.end(), purpose,
                 purpose + std::strlen(purpose));
    label.push_back(block_index++);
    Digest d = Hmac::Mac(HashKind::kSha256, master, label);
    out.insert(out.end(), d.data(), d.data() + d.size());
  }
  out.resize(size);
  return out;
}

}  // namespace

CipherSuite::CipherSuite(const SecurityConfig& config, Slice master_secret,
                         Slice iv_seed)
    : config_(config) {
  if (!config_.enabled) return;
  TDB_CHECK(master_secret.size() > 0, "secure mode requires a master secret");
  mac_key_ = DeriveKey(master_secret, "tdb-mac", 32);
  if (config_.cipher != CipherKind::kNone) {
    Buffer enc_key = DeriveKey(master_secret, "tdb-enc",
                               CipherKeySize(config_.cipher));
    cipher_ = NewBlockCipher(config_.cipher, enc_key);
  }
  Buffer seed = DeriveKey(master_secret, "tdb-iv", 32);
  seed.insert(seed.end(), iv_seed.data(), iv_seed.data() + iv_seed.size());
  iv_gen_ = std::make_unique<CtrDrbg>(seed);
}

size_t CipherSuite::hash_size() const {
  return config_.enabled ? DigestSize(config_.hash) : 0;
}

Digest CipherSuite::HashData(Slice data) const {
  if (!config_.enabled) return Digest();
  return Hash(config_.hash, data);
}

Digest CipherSuite::Mac(Slice data) const {
  if (!config_.enabled) return Digest();
  return Hmac::Mac(config_.hash, mac_key_, data);
}

Buffer CipherSuite::Seal(Slice plain) {
  if (!config_.enabled || cipher_ == nullptr) return plain.ToBuffer();
  Buffer iv = NextIv();
  return SealWithIv(plain, iv);
}

Buffer CipherSuite::NextIv() {
  if (!config_.enabled || cipher_ == nullptr) return Buffer();
  return iv_gen_->Generate(cipher_->block_size());
}

Buffer CipherSuite::SealWithIv(Slice plain, Slice iv) const {
  if (!config_.enabled || cipher_ == nullptr) return plain.ToBuffer();
  TDB_CHECK(iv.size() == cipher_->block_size(),
            "IV must be exactly one cipher block");
  Buffer cipher_text = CbcEncrypt(*cipher_, iv, plain);
  Buffer out;
  out.reserve(iv.size() + cipher_text.size());
  out.insert(out.end(), iv.data(), iv.data() + iv.size());
  out.insert(out.end(), cipher_text.begin(), cipher_text.end());
  return out;
}

Result<Buffer> CipherSuite::Open(Slice sealed) const {
  if (!config_.enabled || cipher_ == nullptr) return sealed.ToBuffer();
  size_t block = cipher_->block_size();
  if (sealed.size() < 2 * block) {
    return Status::Corruption("sealed chunk shorter than IV + one block");
  }
  Slice iv(sealed.data(), block);
  Slice cipher_text(sealed.data() + block, sealed.size() - block);
  return CbcDecrypt(*cipher_, iv, cipher_text);
}

size_t CipherSuite::SealedSize(size_t plain_size) const {
  if (!config_.enabled || cipher_ == nullptr) return plain_size;
  return cipher_->block_size() + CbcCiphertextSize(*cipher_, plain_size);
}

}  // namespace tdb::crypto
