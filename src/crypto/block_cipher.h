#ifndef TDB_CRYPTO_BLOCK_CIPHER_H_
#define TDB_CRYPTO_BLOCK_CIPHER_H_

#include <cstdint>
#include <memory>

#include "common/slice.h"

namespace tdb::crypto {

/// Block ciphers available for chunk encryption. The paper's TDB-S
/// configuration uses 3DES; AES-128 is the "as secure but significantly
/// faster" alternative the paper alludes to. kNone disables encryption
/// (plain TDB, security off).
enum class CipherKind : uint8_t {
  kNone = 0,
  kDes3 = 1,
  kAes128 = 2,
};

/// A raw block cipher: encrypts/decrypts exactly block_size() bytes.
/// Chaining and padding are layered on top in cbc.h.
class BlockCipher {
 public:
  virtual ~BlockCipher() = default;

  virtual size_t block_size() const = 0;
  virtual size_t key_size() const = 0;
  virtual void EncryptBlock(const uint8_t* in, uint8_t* out) const = 0;
  virtual void DecryptBlock(const uint8_t* in, uint8_t* out) const = 0;

  /// Optional whole-buffer CBC fast paths. A cipher with a hardware
  /// batch kernel processes all `n_blocks` blocks (chaining from `iv`,
  /// PKCS#7 handled by the caller) and returns true; the default returns
  /// false and the caller falls back to the per-block virtual loop.
  /// `in` and `out` must not alias. Implementations must be bit-identical
  /// to the per-block path.
  virtual bool CbcEncryptBlocks(const uint8_t* iv, const uint8_t* in,
                                size_t n_blocks, uint8_t* out) const {
    (void)iv, (void)in, (void)n_blocks, (void)out;
    return false;
  }
  virtual bool CbcDecryptBlocks(const uint8_t* iv, const uint8_t* in,
                                size_t n_blocks, uint8_t* out) const {
    (void)iv, (void)in, (void)n_blocks, (void)out;
    return false;
  }
};

/// Creates a keyed cipher; key must be exactly the cipher's key size
/// (24 bytes for 3DES, 16 for AES-128). Returns nullptr for kNone.
std::unique_ptr<BlockCipher> NewBlockCipher(CipherKind kind, Slice key);

/// Key size in bytes required by `kind` (0 for kNone).
size_t CipherKeySize(CipherKind kind);

}  // namespace tdb::crypto

#endif  // TDB_CRYPTO_BLOCK_CIPHER_H_
