#include "common/trace.h"

#include <memory>
#include <mutex>

namespace tdb::common {

namespace {

std::atomic<bool> g_tracing{false};

// Per-thread ring of completed spans. Writers are wait-free in practice:
// the ring's mutex is only ever contended by a drain, and each thread owns
// exactly one ring. Rings are kept alive by shared_ptr so a drain after a
// worker thread exits still sees its spans.
struct Ring {
  std::mutex mu;
  TraceEvent events[kTraceRingCapacity];
  size_t next = 0;       // Insertion cursor.
  size_t count = 0;      // Valid entries (<= capacity).
  uint64_t overwrites = 0;
  uint32_t thread_id = 0;
};

struct RingDirectory {
  std::mutex mu;
  std::vector<std::shared_ptr<Ring>> rings;
  uint32_t next_thread_id = 0;
};

RingDirectory& Directory() {
  static RingDirectory* dir = new RingDirectory();  // Intentionally leaked.
  return *dir;
}

Ring& ThreadRing() {
  thread_local std::shared_ptr<Ring> ring = [] {
    auto r = std::make_shared<Ring>();
    RingDirectory& dir = Directory();
    std::lock_guard<std::mutex> lock(dir.mu);
    r->thread_id = dir.next_thread_id++;
    dir.rings.push_back(r);
    return r;
  }();
  return *ring;
}

}  // namespace

void SetTracingEnabled(bool enabled) {
  g_tracing.store(enabled, std::memory_order_relaxed);
}

bool TracingEnabled() {
  return g_tracing.load(std::memory_order_relaxed);
}

namespace internal {

void RecordSpan(const char* name, uint64_t start_us, uint64_t end_us) {
  Ring& ring = ThreadRing();
  std::lock_guard<std::mutex> lock(ring.mu);
  TraceEvent& slot = ring.events[ring.next];
  if (ring.count == kTraceRingCapacity) ring.overwrites++;
  slot.name = name;
  slot.start_us = start_us;
  slot.duration_us = end_us >= start_us ? end_us - start_us : 0;
  slot.thread_id = ring.thread_id;
  ring.next = (ring.next + 1) % kTraceRingCapacity;
  if (ring.count < kTraceRingCapacity) ring.count++;
}

}  // namespace internal

std::vector<TraceEvent> DrainTraceEvents() {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    RingDirectory& dir = Directory();
    std::lock_guard<std::mutex> lock(dir.mu);
    rings = dir.rings;
  }
  std::vector<TraceEvent> out;
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mu);
    const size_t start =
        (ring->next + kTraceRingCapacity - ring->count) % kTraceRingCapacity;
    for (size_t i = 0; i < ring->count; i++) {
      out.push_back(ring->events[(start + i) % kTraceRingCapacity]);
    }
    ring->next = 0;
    ring->count = 0;
  }
  return out;
}

uint64_t TraceOverwrites() {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    RingDirectory& dir = Directory();
    std::lock_guard<std::mutex> lock(dir.mu);
    rings = dir.rings;
  }
  uint64_t total = 0;
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mu);
    total += ring->overwrites;
  }
  return total;
}

}  // namespace tdb::common
