#include "common/metrics.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace tdb::common {

namespace {

std::atomic<uint64_t (*)()> g_clock{nullptr};

uint64_t SteadyMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// bit_width(v) for v > 0: position of the highest set bit, 1-based.
size_t BitWidth(uint64_t v) {
  size_t w = 0;
  while (v != 0) {
    v >>= 1;
    w++;
  }
  return w;
}

}  // namespace

uint64_t MonotonicMicros() {
  uint64_t (*clock)() = g_clock.load(std::memory_order_acquire);
  return clock != nullptr ? clock() : SteadyMicros();
}

void SetMonotonicClockForTesting(uint64_t (*clock)()) {
  g_clock.store(clock, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Counter

size_t Counter::StripeIndex() {
  // One stripe per thread, assigned round-robin on first use; threads
  // beyond kStripes share, which only costs contention, never correctness.
  static std::atomic<size_t> next{0};
  thread_local size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return index;
}

// ---------------------------------------------------------------------------
// Histogram

void Histogram::Record(int64_t value) {
  const uint64_t magnitude = value <= 0 ? 0 : static_cast<uint64_t>(value);
  size_t bucket = magnitude <= 1 ? 0 : BitWidth(magnitude) - 1;
  if (bucket >= HistogramData::kBuckets) {
    bucket = HistogramData::kBuckets - 1;
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  int64_t cur = max_.load(std::memory_order_relaxed);
  while (cur < value && !max_.compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

HistogramData Histogram::Data() const {
  HistogramData d;
  for (size_t i = 0; i < HistogramData::kBuckets; i++) {
    d.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    d.count += d.buckets[i];
  }
  // Derive count from the buckets so the snapshot is internally consistent
  // even if a concurrent Record() is mid-flight between its two adds.
  d.sum = sum_.load(std::memory_order_relaxed);
  d.max = max_.load(std::memory_order_relaxed);
  return d;
}

int64_t HistogramData::Percentile(double p) const {
  if (count == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(count));
  if (rank >= count) rank = count - 1;
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; b++) {
    seen += buckets[b];
    if (seen > rank) {
      // Upper edge of bucket b: 2^(b+1) - 1 (bucket 0 holds v <= 1).
      int64_t upper = b >= 62 ? max : (int64_t(1) << (b + 1)) - 1;
      return upper < max ? upper : max;
    }
  }
  return max;
}

// ---------------------------------------------------------------------------
// AuditLog

void AuditLog::Record(const std::string& kind, int region,
                      const std::string& location,
                      const std::string& message) {
  std::lock_guard<std::mutex> lock(mu_);
  total_++;
  auto key = std::make_pair(kind, location);
  auto it = index_.find(key);
  if (it != index_.end()) {
    events_[it->second].count++;
    return;
  }
  if (events_.size() >= max_events_) {
    dropped_++;
    return;
  }
  AuditEvent ev;
  ev.kind = kind;
  ev.region = region;
  ev.location = location;
  ev.message = message;
  ev.count = 1;
  ev.first_seq = static_cast<uint64_t>(events_.size());
  index_[key] = events_.size();
  events_.push_back(std::move(ev));
}

std::vector<AuditEvent> AuditLog::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

size_t AuditLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

uint64_t AuditLog::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

uint64_t AuditLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void AuditLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  index_.clear();
  total_ = 0;
  dropped_ = 0;
}

// ---------------------------------------------------------------------------
// MetricsRegistry

MetricsRegistry::MetricsRegistry() {
  const char* env = std::getenv("TDB_METRICS");
  if (env != nullptr && std::strcmp(env, "off") == 0) {
    timing_.store(false, std::memory_order_relaxed);
  }
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, counter] : counters_) {
      snap.counters[name] = counter->value();
    }
    for (const auto& [name, gauge] : gauges_) {
      snap.gauges[name] = gauge->value();
    }
    for (const auto& [name, hist] : histograms_) {
      snap.histograms[name] = hist->Data();
    }
  }
  snap.audit = audit_.Events();
  snap.audit_total = audit_.total();
  snap.audit_dropped = audit_.dropped();
  return snap;
}

// ---------------------------------------------------------------------------
// MetricsSnapshot: merge + JSON

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) gauges[name] += v;
  for (const auto& [name, h] : other.histograms) {
    HistogramData& mine = histograms[name];
    mine.count += h.count;
    mine.sum += h.sum;
    if (h.max > mine.max) mine.max = h.max;
    for (size_t i = 0; i < HistogramData::kBuckets; i++) {
      mine.buckets[i] += h.buckets[i];
    }
  }
  for (const AuditEvent& ev : other.audit) {
    bool merged = false;
    for (AuditEvent& mine : audit) {
      if (mine.kind == ev.kind && mine.location == ev.location) {
        mine.count += ev.count;
        merged = true;
        break;
      }
    }
    if (!merged) audit.push_back(ev);
  }
  audit_total += other.audit_total;
  audit_dropped += other.audit_dropped;
}

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendInt(std::string* out, int64_t v) {
  *out += std::to_string(v);
}

// --- Minimal JSON parser (objects/arrays/strings/integers only: exactly
// the grammar ToJson emits; doubles are accepted and truncated). ---
struct JsonParser {
  const char* p;
  const char* end;
  bool failed = false;

  void Fail() { failed = true; }
  void SkipWs() {
    while (p < end && (*p == ' ' || *p == '\n' || *p == '\t' || *p == '\r')) {
      p++;
    }
  }
  bool Consume(char c) {
    SkipWs();
    if (failed || p >= end || *p != c) return false;
    p++;
    return true;
  }
  bool Peek(char c) {
    SkipWs();
    return !failed && p < end && *p == c;
  }
  std::string ParseString() {
    SkipWs();
    std::string out;
    if (failed || p >= end || *p != '"') {
      Fail();
      return out;
    }
    p++;
    while (p < end && *p != '"') {
      if (*p == '\\' && p + 1 < end) {
        p++;
        switch (*p) {
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'u': {
            if (p + 4 < end) {
              unsigned code = 0;
              std::sscanf(p + 1, "%4x", &code);
              out.push_back(static_cast<char>(code & 0xff));
              p += 4;
            } else {
              Fail();
              return out;
            }
            break;
          }
          default: out.push_back(*p);
        }
        p++;
      } else {
        out.push_back(*p++);
      }
    }
    if (p >= end) {
      Fail();
      return out;
    }
    p++;  // Closing quote.
    return out;
  }
  int64_t ParseInt() {
    SkipWs();
    if (failed || p >= end) {
      Fail();
      return 0;
    }
    bool neg = false;
    if (*p == '-') {
      neg = true;
      p++;
    }
    if (p >= end || *p < '0' || *p > '9') {
      Fail();
      return 0;
    }
    uint64_t v = 0;
    while (p < end && *p >= '0' && *p <= '9') {
      v = v * 10 + static_cast<uint64_t>(*p - '0');
      p++;
    }
    // Accept (and truncate) a fractional part / exponent.
    if (p < end && *p == '.') {
      p++;
      while (p < end && *p >= '0' && *p <= '9') p++;
    }
    if (p < end && (*p == 'e' || *p == 'E')) {
      p++;
      if (p < end && (*p == '+' || *p == '-')) p++;
      while (p < end && *p >= '0' && *p <= '9') p++;
    }
    return neg ? -static_cast<int64_t>(v) : static_cast<int64_t>(v);
  }
  // Skips one value of any type (unknown fields stay forward-compatible).
  void SkipValue() {
    SkipWs();
    if (failed || p >= end) {
      Fail();
      return;
    }
    if (*p == '"') {
      ParseString();
    } else if (*p == '{') {
      p++;
      if (Peek('}')) {
        p++;
        return;
      }
      do {
        ParseString();
        if (!Consume(':')) {
          Fail();
          return;
        }
        SkipValue();
      } while (Consume(','));
      if (!Consume('}')) Fail();
    } else if (*p == '[') {
      p++;
      if (Peek(']')) {
        p++;
        return;
      }
      do {
        SkipValue();
      } while (Consume(','));
      if (!Consume(']')) Fail();
    } else if (*p == 't' || *p == 'f' || *p == 'n') {
      while (p < end && *p >= 'a' && *p <= 'z') p++;
    } else {
      ParseInt();
    }
  }
};

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendEscaped(&out, name);
    out += ": ";
    AppendInt(&out, v);
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendEscaped(&out, name);
    out += ": ";
    AppendInt(&out, v);
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendEscaped(&out, name);
    out += ": {\"count\": ";
    AppendInt(&out, static_cast<int64_t>(h.count));
    out += ", \"sum\": ";
    AppendInt(&out, h.sum);
    out += ", \"max\": ";
    AppendInt(&out, h.max);
    out += ", \"p50\": ";
    AppendInt(&out, h.Percentile(0.50));
    out += ", \"p95\": ";
    AppendInt(&out, h.Percentile(0.95));
    out += ", \"p99\": ";
    AppendInt(&out, h.Percentile(0.99));
    out += ", \"buckets\": [";
    bool bfirst = true;
    for (size_t i = 0; i < HistogramData::kBuckets; i++) {
      if (h.buckets[i] == 0) continue;
      if (!bfirst) out += ", ";
      bfirst = false;
      out += "[";
      AppendInt(&out, static_cast<int64_t>(i));
      out += ", ";
      AppendInt(&out, static_cast<int64_t>(h.buckets[i]));
      out += "]";
    }
    out += "]}";
  }
  out += "\n  },\n  \"audit\": [";
  first = true;
  for (const AuditEvent& ev : audit) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += "{\"kind\": ";
    AppendEscaped(&out, ev.kind);
    out += ", \"region\": ";
    AppendInt(&out, ev.region);
    out += ", \"location\": ";
    AppendEscaped(&out, ev.location);
    out += ", \"message\": ";
    AppendEscaped(&out, ev.message);
    out += ", \"count\": ";
    AppendInt(&out, static_cast<int64_t>(ev.count));
    out += ", \"first_seq\": ";
    AppendInt(&out, static_cast<int64_t>(ev.first_seq));
    out += "}";
  }
  out += "\n  ],\n  \"audit_total\": ";
  AppendInt(&out, static_cast<int64_t>(audit_total));
  out += ",\n  \"audit_dropped\": ";
  AppendInt(&out, static_cast<int64_t>(audit_dropped));
  out += "\n}\n";
  return out;
}

Result<MetricsSnapshot> MetricsSnapshot::FromJson(const std::string& json) {
  MetricsSnapshot snap;
  JsonParser jp{json.data(), json.data() + json.size()};

  auto parse_int_map = [&](std::map<std::string, int64_t>* out) {
    if (!jp.Consume('{')) return jp.Fail();
    if (jp.Consume('}')) return;
    do {
      std::string name = jp.ParseString();
      if (!jp.Consume(':')) return jp.Fail();
      (*out)[name] = jp.ParseInt();
    } while (jp.Consume(','));
    if (!jp.Consume('}')) jp.Fail();
  };
  auto parse_histogram = [&](HistogramData* h) {
    if (!jp.Consume('{')) return jp.Fail();
    if (jp.Consume('}')) return;
    do {
      std::string field = jp.ParseString();
      if (!jp.Consume(':')) return jp.Fail();
      if (field == "count") {
        h->count = static_cast<uint64_t>(jp.ParseInt());
      } else if (field == "sum") {
        h->sum = jp.ParseInt();
      } else if (field == "max") {
        h->max = jp.ParseInt();
      } else if (field == "buckets") {
        if (!jp.Consume('[')) return jp.Fail();
        if (jp.Consume(']')) continue;
        do {
          if (!jp.Consume('[')) return jp.Fail();
          int64_t index = jp.ParseInt();
          if (!jp.Consume(',')) return jp.Fail();
          int64_t n = jp.ParseInt();
          if (!jp.Consume(']')) return jp.Fail();
          if (index < 0 ||
              index >= static_cast<int64_t>(HistogramData::kBuckets)) {
            return jp.Fail();
          }
          h->buckets[static_cast<size_t>(index)] =
              static_cast<uint64_t>(n);
        } while (jp.Consume(','));
        if (!jp.Consume(']')) return jp.Fail();
      } else {
        jp.SkipValue();  // p50/p95/p99 are derived; ignore on input.
      }
    } while (jp.Consume(','));
    if (!jp.Consume('}')) jp.Fail();
  };
  auto parse_audit_event = [&](AuditEvent* ev) {
    if (!jp.Consume('{')) return jp.Fail();
    if (jp.Consume('}')) return;
    do {
      std::string field = jp.ParseString();
      if (!jp.Consume(':')) return jp.Fail();
      if (field == "kind") {
        ev->kind = jp.ParseString();
      } else if (field == "region") {
        ev->region = static_cast<int>(jp.ParseInt());
      } else if (field == "location") {
        ev->location = jp.ParseString();
      } else if (field == "message") {
        ev->message = jp.ParseString();
      } else if (field == "count") {
        ev->count = static_cast<uint64_t>(jp.ParseInt());
      } else if (field == "first_seq") {
        ev->first_seq = static_cast<uint64_t>(jp.ParseInt());
      } else {
        jp.SkipValue();
      }
    } while (jp.Consume(','));
    if (!jp.Consume('}')) jp.Fail();
  };

  if (!jp.Consume('{')) {
    return Status::InvalidArgument("metrics json: not an object");
  }
  if (!jp.Consume('}')) {
    do {
      std::string section = jp.ParseString();
      if (!jp.Consume(':')) jp.Fail();
      if (jp.failed) break;
      if (section == "counters") {
        parse_int_map(&snap.counters);
      } else if (section == "gauges") {
        parse_int_map(&snap.gauges);
      } else if (section == "histograms") {
        if (!jp.Consume('{')) {
          jp.Fail();
          break;
        }
        if (!jp.Consume('}')) {
          do {
            std::string name = jp.ParseString();
            if (!jp.Consume(':')) {
              jp.Fail();
              break;
            }
            parse_histogram(&snap.histograms[name]);
          } while (jp.Consume(','));
          if (!jp.Consume('}')) jp.Fail();
        }
      } else if (section == "audit") {
        if (!jp.Consume('[')) {
          jp.Fail();
          break;
        }
        if (!jp.Consume(']')) {
          do {
            AuditEvent ev;
            parse_audit_event(&ev);
            snap.audit.push_back(std::move(ev));
          } while (jp.Consume(','));
          if (!jp.Consume(']')) jp.Fail();
        }
      } else if (section == "audit_total") {
        snap.audit_total = static_cast<uint64_t>(jp.ParseInt());
      } else if (section == "audit_dropped") {
        snap.audit_dropped = static_cast<uint64_t>(jp.ParseInt());
      } else {
        jp.SkipValue();
      }
    } while (!jp.failed && jp.Consume(','));
    if (!jp.failed && !jp.Consume('}')) jp.Fail();
  }
  if (jp.failed) {
    return Status::InvalidArgument("metrics json: parse error at offset " +
                                   std::to_string(jp.p - json.data()));
  }
  return snap;
}

}  // namespace tdb::common
