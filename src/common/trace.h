#ifndef TDB_COMMON_TRACE_H_
#define TDB_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/metrics.h"  // MonotonicMicros / SetMonotonicClockForTesting.

namespace tdb::common {

/// One completed span. `name` must be a string literal (or otherwise
/// outlive the tracing session): spans store the pointer, not a copy, so
/// the hot path never allocates.
struct TraceEvent {
  const char* name = nullptr;
  uint64_t start_us = 0;
  uint64_t duration_us = 0;
  uint32_t thread_id = 0;  // Small per-thread ordinal, stable per ring.
};

/// Tracing is process-global and off by default; a disabled TraceSpan is a
/// single relaxed load. Spans share the metrics clock, so
/// SetMonotonicClockForTesting makes trace timestamps deterministic too.
void SetTracingEnabled(bool enabled);
bool TracingEnabled();

/// Copies out (and clears) every thread's ring, oldest-first per thread.
/// Rings from exited threads are retained until drained.
std::vector<TraceEvent> DrainTraceEvents();

/// Spans recorded while a ring was full overwrite the oldest entry; this
/// counts how many were overwritten since the last drain.
uint64_t TraceOverwrites();

/// Fixed per-thread ring capacity, exposed for tests.
constexpr size_t kTraceRingCapacity = 4096;

namespace internal {
void RecordSpan(const char* name, uint64_t start_us, uint64_t end_us);
}  // namespace internal

/// RAII span: records [construction, destruction) into the calling
/// thread's ring buffer. Lock-lite: the only lock taken is the ring's own
/// mutex, contended only while a drain is copying that ring out.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (TracingEnabled()) {
      name_ = name;
      start_ = MonotonicMicros();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      internal::RecordSpan(name_, start_, MonotonicMicros());
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  uint64_t start_ = 0;
};

}  // namespace tdb::common

#endif  // TDB_COMMON_TRACE_H_
