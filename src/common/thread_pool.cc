#include "common/thread_pool.h"

#include <atomic>

namespace tdb {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 1) return;
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; i++) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ with a drained queue.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  if (workers_.empty()) {
    task();
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; i++) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  std::exception_ptr first_error;
  auto drain = [&] {
    size_t i;
    while ((i = next.fetch_add(1)) < n) {
      if (failed.load(std::memory_order_relaxed)) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (first_error == nullptr) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };
  const size_t helpers = std::min(workers_.size(), n - 1);
  std::vector<std::future<void>> joins;
  joins.reserve(helpers);
  for (size_t h = 0; h < helpers; h++) joins.push_back(Submit(drain));
  drain();  // The caller participates instead of idling.
  for (std::future<void>& f : joins) f.get();
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

Status ThreadPool::ParallelForStatus(
    size_t n, const std::function<Status(size_t)>& fn) {
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  size_t error_index = n;
  Status error = Status::OK();
  ParallelFor(n, [&](size_t i) {
    if (failed.load(std::memory_order_relaxed)) return;
    Status s = fn(i);
    if (s.ok()) return;
    std::lock_guard<std::mutex> lock(error_mu);
    // Keep the lowest-index failure so the reported error does not depend
    // on scheduling.
    if (i < error_index) {
      error_index = i;
      error = std::move(s);
    }
    failed.store(true, std::memory_order_relaxed);
  });
  return error;
}

}  // namespace tdb
