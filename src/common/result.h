#ifndef TDB_COMMON_RESULT_H_
#define TDB_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace tdb {

/// A Status plus, on success, a value of type T. Analogous to
/// arrow::Result / absl::StatusOr. Accessing the value of a failed Result is
/// a checked programming error.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success) or a Status (failure), so
  /// `return value;` and `return Status::NotFound(...)` both work.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    TDB_CHECK(!status_.ok(), "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    TDB_CHECK(ok(), "value() on failed Result: " + status_.ToString());
    return *value_;
  }
  const T& value() const& {
    TDB_CHECK(ok(), "value() on failed Result: " + status_.ToString());
    return *value_;
  }
  T&& value() && {
    TDB_CHECK(ok(), "value() on failed Result: " + status_.ToString());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates a Result-returning expression; on success binds the value to
/// `lhs`, on failure returns the Status to the caller.
#define TDB_ASSIGN_OR_RETURN(lhs, expr)                  \
  auto TDB_CONCAT_(_res_, __LINE__) = (expr);            \
  if (!TDB_CONCAT_(_res_, __LINE__).ok())                \
    return TDB_CONCAT_(_res_, __LINE__).status();        \
  lhs = std::move(TDB_CONCAT_(_res_, __LINE__)).value()

#define TDB_CONCAT_(a, b) TDB_CONCAT_IMPL_(a, b)
#define TDB_CONCAT_IMPL_(a, b) a##b

}  // namespace tdb

#endif  // TDB_COMMON_RESULT_H_
