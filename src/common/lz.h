#ifndef TDB_COMMON_LZ_H_
#define TDB_COMMON_LZ_H_

#include <cstdint>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"

namespace tdb {

/// From-scratch byte-oriented LZ codec used by the chunk store's
/// compress-before-encrypt path. Compressing before sealing means fewer
/// bytes are hashed, encrypted, logged, synced, and cleaned — the whole
/// downstream pipeline gets cheaper per stored chunk.
///
/// Wire format (everything little-endian):
///
///   varint32 raw_size
///   sequence*
///
/// where each sequence is
///
///   token      1 byte: high nibble = literal run length,
///                      low nibble  = match length - kLzMinMatch
///   [lit-ext]  if high nibble == 15: 255-run extension bytes
///   literals   `literal run length` raw bytes
///   offset     2 bytes LE, 1..65535 back-distance   (absent in the
///              final sequence, which is literals-only)
///   [match-ext] if low nibble == 15: 255-run extension bytes
///
/// The final sequence carries only literals: the decoder knows it is last
/// because the input is exhausted after its literal bytes. Matches may
/// overlap their own output (offset < match length) which is how runs
/// compress. Decompression is strictly bounds-checked and returns
/// Corruption on any malformed input; it never reads or writes out of
/// bounds and never produces more than `raw_size` bytes.

inline constexpr size_t kLzMinMatch = 4;
inline constexpr size_t kLzMaxOffset = 65535;

/// Compresses `in`. The output always round-trips through LzDecompress,
/// but is only worth storing when it is actually smaller than `in` —
/// incompressible input grows slightly (token overhead), and callers are
/// expected to fall back to raw storage in that case.
Buffer LzCompress(Slice in);

/// Inverse of LzCompress. `max_raw_size` bounds the claimed raw size so a
/// corrupted or hostile header cannot force a huge allocation.
Result<Buffer> LzDecompress(Slice in, size_t max_raw_size);

}  // namespace tdb

#endif  // TDB_COMMON_LZ_H_
