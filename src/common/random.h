#ifndef TDB_COMMON_RANDOM_H_
#define TDB_COMMON_RANDOM_H_

#include <cstdint>

#include "common/slice.h"

namespace tdb {

/// Deterministic, seedable pseudo-random generator (xorshift128+). Used by
/// workload generators, property tests, and fault injection so that every
/// run is reproducible from its seed. NOT cryptographic — IVs come from
/// crypto::CtrDrbg.
class Random {
 public:
  explicit Random(uint64_t seed) {
    // SplitMix64 seeding to avoid weak all-zero / low-entropy states.
    s_[0] = SplitMix(&seed);
    s_[1] = SplitMix(&seed);
  }

  uint64_t Next() {
    uint64_t x = s_[0];
    const uint64_t y = s_[1];
    s_[0] = y;
    x ^= x << 23;
    s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s_[1] + y;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  /// True with probability p (0.0 .. 1.0).
  bool Bernoulli(double p) {
    return static_cast<double>(Next() >> 11) / 9007199254740992.0 < p;
  }

  void Fill(Buffer* buf, size_t n) {
    buf->resize(n);
    for (size_t i = 0; i < n; i++) (*buf)[i] = static_cast<uint8_t>(Next());
  }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  uint64_t s_[2];
};

}  // namespace tdb

#endif  // TDB_COMMON_RANDOM_H_
