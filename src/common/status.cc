#include "common/status.h"

namespace tdb {

namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk: return "OK";
    case Status::Code::kNotFound: return "NotFound";
    case Status::Code::kInvalidArgument: return "InvalidArgument";
    case Status::Code::kCorruption: return "Corruption";
    case Status::Code::kTamperDetected: return "TamperDetected";
    case Status::Code::kReplayDetected: return "ReplayDetected";
    case Status::Code::kIOError: return "IOError";
    case Status::Code::kLockTimeout: return "LockTimeout";
    case Status::Code::kTransactionInvalid: return "TransactionInvalid";
    case Status::Code::kUniqueViolation: return "UniqueViolation";
    case Status::Code::kTypeMismatch: return "TypeMismatch";
    case Status::Code::kAlreadyExists: return "AlreadyExists";
    case Status::Code::kOutOfSpace: return "OutOfSpace";
    case Status::Code::kNotSupported: return "NotSupported";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace tdb
