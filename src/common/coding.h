#ifndef TDB_COMMON_CODING_H_
#define TDB_COMMON_CODING_H_

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace tdb {

/// Little-endian fixed-width and varint byte coding, plus a cursor-style
/// decoder. This is the wire format used by the chunk log, pickled objects,
/// index nodes, backups, and the baseline engine's WAL.

void PutFixed16(Buffer* dst, uint16_t v);
void PutFixed32(Buffer* dst, uint32_t v);
void PutFixed64(Buffer* dst, uint64_t v);
void PutVarint32(Buffer* dst, uint32_t v);
void PutVarint64(Buffer* dst, uint64_t v);
/// Varint length followed by the raw bytes.
void PutLengthPrefixed(Buffer* dst, Slice value);
/// Overwrites 4 bytes at `offset` (which must already exist) — used to
/// back-patch record lengths and checksums.
void PatchFixed32(Buffer* dst, size_t offset, uint32_t v);

uint16_t DecodeFixed16(const uint8_t* p);
uint32_t DecodeFixed32(const uint8_t* p);
uint64_t DecodeFixed64(const uint8_t* p);

/// Sequential decoder over a Slice. Get* methods return Corruption if the
/// input is exhausted or malformed, making truncated/garbled inputs safe to
/// parse (important: the chunk store parses attacker-controlled bytes).
class Decoder {
 public:
  explicit Decoder(Slice input) : input_(input) {}

  Status GetFixed16(uint16_t* v);
  Status GetFixed32(uint32_t* v);
  Status GetFixed64(uint64_t* v);
  Status GetVarint32(uint32_t* v);
  Status GetVarint64(uint64_t* v);
  Status GetLengthPrefixed(Slice* value);
  Status GetBytes(size_t n, Slice* value);
  Status Skip(size_t n);

  size_t remaining() const { return input_.size(); }
  bool done() const { return input_.empty(); }

 private:
  Slice input_;
};

/// Lowercase hex of `data` — for logging and test diagnostics.
std::string ToHex(Slice data);

/// Non-cryptographic 32-bit checksum (FNV-1a). Used by the *baseline*
/// engine's WAL and for accidental-corruption detection when the secure
/// cipher suite is disabled; the trusted path always uses SHA hashes.
uint32_t Checksum32(Slice data);

}  // namespace tdb

#endif  // TDB_COMMON_CODING_H_
