#ifndef TDB_COMMON_METRICS_H_
#define TDB_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"

namespace tdb::common {

/// Region classes for audit events. Values 0..3 mirror the harness's
/// structural RegionClass enum (see src/harness/region_map.h) so tamper
/// sweeps can correlate the tampered image region with the emitted event;
/// kRegionCounter covers the trusted one-way counter, which is not part of
/// the untrusted image.
inline constexpr int kRegionUnknown = -1;
inline constexpr int kRegionAnchor = 0;
inline constexpr int kRegionLog = 1;
inline constexpr int kRegionPayload = 2;
inline constexpr int kRegionMap = 3;
inline constexpr int kRegionCounter = 4;

/// Monotonic microsecond clock used by latency timers and trace spans.
/// Tests (and the deterministic harness) may substitute a fake clock;
/// passing nullptr restores the real steady_clock source.
uint64_t MonotonicMicros();
void SetMonotonicClockForTesting(uint64_t (*clock)());

/// Wait-free counter, sharded across cache lines so concurrent hot-path
/// increments from different threads never contend on one word. Negative
/// deltas are allowed (some "counters" track live quantities). value()
/// sums the stripes; it is a coherent snapshot per stripe, which is the
/// same guarantee the old per-field atomics gave.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(int64_t delta) {
    stripes_[StripeIndex()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  int64_t value() const {
    int64_t total = 0;
    for (const Stripe& s : stripes_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  static constexpr size_t kStripes = 16;
  struct alignas(64) Stripe {
    std::atomic<int64_t> v{0};
  };
  static size_t StripeIndex();
  Stripe stripes_[kStripes];
};

/// Single-word gauge: a value that moves both ways or is periodically
/// overwritten (bytes live, segments, cache occupancy, high-water marks).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Raises the gauge to `v` if larger (high-water marks).
  void SetMax(int64_t v) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Aggregated histogram contents, as captured by a snapshot or parsed back
/// from JSON. Buckets are log2-spaced: bucket b counts samples v in
/// [2^b, 2^(b+1) - 1]; bucket 0 additionally absorbs v <= 0.
struct HistogramData {
  static constexpr size_t kBuckets = 64;
  uint64_t count = 0;
  int64_t sum = 0;
  int64_t max = 0;
  std::array<uint64_t, kBuckets> buckets{};

  double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / count;
  }
  /// Upper-bound estimate of the p-th percentile (p in [0,1]): the upper
  /// edge of the bucket holding the p-th sample, clamped to the observed
  /// max. Exact for the max bucket; at worst 2x for interior buckets.
  int64_t Percentile(double p) const;
};

/// Log-bucketed latency histogram. Record() touches only relaxed atomics
/// (bucket count, sum, CAS max), so concurrent recorders never block and
/// the structure is TSan-clean by construction.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(int64_t value);
  HistogramData Data() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> buckets_[HistogramData::kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> max_{0};
};

/// One security-relevant detection: a MAC/hash mismatch, counter
/// regression, replay, or torn/missing anchor. Events are deduplicated by
/// (kind, location) — re-detecting the same damage (e.g. a read and a
/// later integrity scrub hitting the same record) increments `count`
/// instead of appending, so one tampered byte yields exactly one entry.
struct AuditEvent {
  std::string kind;      // "hash_mismatch", "mac_mismatch", "replay", ...
  int region = kRegionUnknown;  // kRegion* constant.
  std::string location;  // e.g. "seg 3 off 128", "anchor", "counter"
  std::string message;   // Detail from the first occurrence.
  uint64_t count = 0;    // Occurrences folded into this entry.
  uint64_t first_seq = 0;  // Order of first occurrence within the log.
};

/// Bounded in-memory security audit trail. Mutex-protected: detections are
/// failure paths, never hot. When capacity is reached new distinct events
/// are counted in dropped() rather than retained.
class AuditLog {
 public:
  explicit AuditLog(size_t max_events = 256) : max_events_(max_events) {}

  void Record(const std::string& kind, int region,
              const std::string& location, const std::string& message);
  std::vector<AuditEvent> Events() const;
  /// Distinct retained events.
  size_t size() const;
  /// Total occurrences recorded, including deduplicated repeats.
  uint64_t total() const;
  uint64_t dropped() const;
  void Clear();

 private:
  const size_t max_events_;
  mutable std::mutex mu_;
  std::vector<AuditEvent> events_;
  std::map<std::pair<std::string, std::string>, size_t> index_;
  uint64_t total_ = 0;
  uint64_t dropped_ = 0;
};

/// Point-in-time copy of a registry's contents. Mergeable (benches combine
/// per-fixture registries) and round-trippable through JSON (tdbstat
/// attaches to a bench run's --metrics-json output).
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramData> histograms;
  std::vector<AuditEvent> audit;
  uint64_t audit_total = 0;
  uint64_t audit_dropped = 0;

  /// Sums counters/gauges, adds histograms bucket-wise, concatenates audit
  /// entries (re-deduplicating by kind+location).
  void Merge(const MetricsSnapshot& other);
  std::string ToJson() const;
  static Result<MetricsSnapshot> FromJson(const std::string& json);
};

/// A named-instrument registry: one per database instance (the chunk store
/// creates its own unless ChunkStoreOptions::metrics supplies a shared
/// one; the object/collection/backup layers register on the chunk store's
/// registry so one snapshot covers the whole stack).
///
/// Get* registers on first use and returns a pointer that stays valid for
/// the registry's lifetime, so hot paths resolve their instruments once
/// and then touch only the lock-free instrument itself.
class MetricsRegistry {
 public:
  MetricsRegistry();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);
  AuditLog& audit() { return audit_; }
  const AuditLog& audit() const { return audit_; }

  /// Latency timing on/off (counters and audit are always on — tests rely
  /// on them functionally). Initialized from the TDB_METRICS environment
  /// variable: "off" disables timers. This is the knob behind the
  /// instrumentation-overhead experiment in EXPERIMENTS.md.
  void set_timing_enabled(bool enabled) {
    timing_.store(enabled, std::memory_order_relaxed);
  }
  bool timing_enabled() const {
    return timing_.load(std::memory_order_relaxed);
  }

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::atomic<bool> timing_{true};
  AuditLog audit_;
};

/// RAII latency timer: records elapsed microseconds into `hist` at scope
/// exit. No-op (and takes no clock reading) when the registry's timing is
/// disabled or `hist` is null.
class ScopedTimer {
 public:
  ScopedTimer(const MetricsRegistry* registry, Histogram* hist) {
    if (hist != nullptr && registry != nullptr &&
        registry->timing_enabled()) {
      hist_ = hist;
      start_ = MonotonicMicros();
    }
  }
  ~ScopedTimer() {
    if (hist_ != nullptr) {
      hist_->Record(static_cast<int64_t>(MonotonicMicros() - start_));
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_ = nullptr;
  uint64_t start_ = 0;
};

}  // namespace tdb::common

#endif  // TDB_COMMON_METRICS_H_
