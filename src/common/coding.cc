#include "common/coding.h"

#include "common/check.h"

namespace tdb {

void PutFixed16(Buffer* dst, uint16_t v) {
  dst->push_back(static_cast<uint8_t>(v));
  dst->push_back(static_cast<uint8_t>(v >> 8));
}

void PutFixed32(Buffer* dst, uint32_t v) {
  for (int i = 0; i < 4; i++) dst->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutFixed64(Buffer* dst, uint64_t v) {
  for (int i = 0; i < 8; i++) dst->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutVarint32(Buffer* dst, uint32_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  dst->push_back(static_cast<uint8_t>(v));
}

void PutVarint64(Buffer* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  dst->push_back(static_cast<uint8_t>(v));
}

void PutLengthPrefixed(Buffer* dst, Slice value) {
  PutVarint64(dst, value.size());
  dst->insert(dst->end(), value.data(), value.data() + value.size());
}

void PatchFixed32(Buffer* dst, size_t offset, uint32_t v) {
  TDB_CHECK(offset + 4 <= dst->size());
  for (int i = 0; i < 4; i++)
    (*dst)[offset + i] = static_cast<uint8_t>(v >> (8 * i));
}

uint16_t DecodeFixed16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0]) | (static_cast<uint16_t>(p[1]) << 8);
}

uint32_t DecodeFixed32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; i++) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint64_t DecodeFixed64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; i++) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

Status Decoder::GetFixed16(uint16_t* v) {
  if (input_.size() < 2) return Status::Corruption("truncated fixed16");
  *v = DecodeFixed16(input_.data());
  input_.RemovePrefix(2);
  return Status::OK();
}

Status Decoder::GetFixed32(uint32_t* v) {
  if (input_.size() < 4) return Status::Corruption("truncated fixed32");
  *v = DecodeFixed32(input_.data());
  input_.RemovePrefix(4);
  return Status::OK();
}

Status Decoder::GetFixed64(uint64_t* v) {
  if (input_.size() < 8) return Status::Corruption("truncated fixed64");
  *v = DecodeFixed64(input_.data());
  input_.RemovePrefix(8);
  return Status::OK();
}

Status Decoder::GetVarint32(uint32_t* v) {
  uint64_t v64;
  TDB_RETURN_IF_ERROR(GetVarint64(&v64));
  if (v64 > UINT32_MAX) return Status::Corruption("varint32 overflow");
  *v = static_cast<uint32_t>(v64);
  return Status::OK();
}

Status Decoder::GetVarint64(uint64_t* v) {
  uint64_t result = 0;
  for (unsigned shift = 0; shift <= 63 && !input_.empty(); shift += 7) {
    uint8_t byte = input_[0];
    input_.RemovePrefix(1);
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return Status::OK();
    }
  }
  return Status::Corruption("malformed varint64");
}

Status Decoder::GetLengthPrefixed(Slice* value) {
  uint64_t len;
  TDB_RETURN_IF_ERROR(GetVarint64(&len));
  return GetBytes(static_cast<size_t>(len), value);
}

Status Decoder::GetBytes(size_t n, Slice* value) {
  if (input_.size() < n) return Status::Corruption("truncated byte range");
  *value = Slice(input_.data(), n);
  input_.RemovePrefix(n);
  return Status::OK();
}

Status Decoder::Skip(size_t n) {
  if (input_.size() < n) return Status::Corruption("skip past end");
  input_.RemovePrefix(n);
  return Status::OK();
}

std::string ToHex(Slice data) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (size_t i = 0; i < data.size(); i++) {
    out.push_back(kDigits[data[i] >> 4]);
    out.push_back(kDigits[data[i] & 0xf]);
  }
  return out;
}

uint32_t Checksum32(Slice data) {
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < data.size(); i++) {
    h ^= data[i];
    h *= 16777619u;
  }
  return h;
}

}  // namespace tdb
