#ifndef TDB_COMMON_STATUS_H_
#define TDB_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace tdb {

/// Outcome of a fallible operation. Modeled on the RocksDB/Arrow idiom:
/// every public API that can fail returns a Status (or Result<T>), and the
/// caller is expected to check it. Statuses are cheap to copy for the OK
/// case and carry a code plus a human-readable message otherwise.
class Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kNotFound,          ///< Named entity (chunk, object, collection) absent.
    kInvalidArgument,   ///< Caller supplied an unusable argument.
    kCorruption,        ///< Stored bytes are structurally malformed.
    kTamperDetected,    ///< Hash/MAC validation failed: malicious change.
    kReplayDetected,    ///< One-way counter mismatch: stale image replayed.
    kIOError,           ///< Underlying platform store failed.
    kLockTimeout,       ///< Transactional lock wait exceeded its timeout.
    kTransactionInvalid,///< Transaction already committed/aborted.
    kUniqueViolation,   ///< Insert/update broke a unique index.
    kTypeMismatch,      ///< Runtime type check failed (wrong class).
    kAlreadyExists,     ///< Entity with that name already exists.
    kOutOfSpace,        ///< Store is full and may not grow.
    kNotSupported,      ///< Operation disabled in this configuration.
  };

  Status() = default;  // OK.

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status TamperDetected(std::string msg) {
    return Status(Code::kTamperDetected, std::move(msg));
  }
  static Status ReplayDetected(std::string msg) {
    return Status(Code::kReplayDetected, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status LockTimeout(std::string msg) {
    return Status(Code::kLockTimeout, std::move(msg));
  }
  static Status TransactionInvalid(std::string msg) {
    return Status(Code::kTransactionInvalid, std::move(msg));
  }
  static Status UniqueViolation(std::string msg) {
    return Status(Code::kUniqueViolation, std::move(msg));
  }
  static Status TypeMismatch(std::string msg) {
    return Status(Code::kTypeMismatch, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status OutOfSpace(std::string msg) {
    return Status(Code::kOutOfSpace, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsTamperDetected() const { return code_ == Code::kTamperDetected; }
  bool IsReplayDetected() const { return code_ == Code::kReplayDetected; }
  bool IsLockTimeout() const { return code_ == Code::kLockTimeout; }
  bool IsUniqueViolation() const { return code_ == Code::kUniqueViolation; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }

  /// "OK" or "<code>: <message>" for logging and test failure output.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  Code code_ = Code::kOk;
  std::string message_;
};

/// Propagates a non-OK status to the caller. Usable only in functions that
/// themselves return Status.
#define TDB_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::tdb::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                     \
  } while (0)

}  // namespace tdb

#endif  // TDB_COMMON_STATUS_H_
