#include "common/lz.h"

#include <cstring>

#include "common/coding.h"

namespace tdb {

namespace {

// Greedy matcher state: a hash table mapping 4-byte sequences to their
// most recent position. 2^13 entries keeps the table at 32KB — small
// enough to stay cache-resident for the chunk-sized inputs (a few KB to
// a few hundred KB) this codec sees.
constexpr int kHashBits = 13;
constexpr size_t kHashSize = size_t{1} << kHashBits;

inline uint32_t Load32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint32_t HashSeq(uint32_t v) {
  // Multiplicative hash of the 4-byte window (Fibonacci constant).
  return (v * 2654435761u) >> (32 - kHashBits);
}

// Emits a 255-run extension: value v is encoded as floor(v/255) bytes of
// 255 followed by one byte of v%255.
void PutRunExtension(Buffer* out, size_t v) {
  while (v >= 255) {
    out->push_back(255);
    v -= 255;
  }
  out->push_back(static_cast<uint8_t>(v));
}

// Appends one sequence: `literals` raw bytes, then (unless this is the
// final literals-only sequence) a match of `match_len` at `offset`.
void PutSequence(Buffer* out, const uint8_t* literals, size_t n_literals,
                 size_t offset, size_t match_len) {
  const bool has_match = match_len != 0;
  const size_t lit_nibble = n_literals < 15 ? n_literals : 15;
  size_t match_nibble = 0;
  if (has_match) {
    const size_t excess = match_len - kLzMinMatch;
    match_nibble = excess < 15 ? excess : 15;
  }
  out->push_back(static_cast<uint8_t>((lit_nibble << 4) | match_nibble));
  if (lit_nibble == 15) PutRunExtension(out, n_literals - 15);
  out->insert(out->end(), literals, literals + n_literals);
  if (!has_match) return;
  out->push_back(static_cast<uint8_t>(offset & 0xff));
  out->push_back(static_cast<uint8_t>(offset >> 8));
  if (match_nibble == 15) PutRunExtension(out, match_len - kLzMinMatch - 15);
}

Status GetRunExtension(Slice* in, size_t* v) {
  for (;;) {
    if (in->empty()) return Status::Corruption("lz: truncated run length");
    const uint8_t b = (*in)[0];
    in->RemovePrefix(1);
    *v += b;
    if (b != 255) return Status::OK();
  }
}

}  // namespace

Buffer LzCompress(Slice in) {
  Buffer out;
  out.reserve(in.size() / 2 + 16);
  PutVarint32(&out, static_cast<uint32_t>(in.size()));

  const uint8_t* base = in.data();
  const size_t n = in.size();
  // Inputs too small to ever contain a match are a single literal run.
  if (n < kLzMinMatch + 1) {
    PutSequence(&out, base, n, 0, 0);
    return out;
  }

  uint32_t table[kHashSize];
  std::memset(table, 0xff, sizeof(table));  // 0xffffffff = empty.

  size_t pos = 0;        // Next byte to examine.
  size_t lit_start = 0;  // First byte not yet emitted.
  // Stop matching where a 4-byte load would run off the end.
  const size_t match_limit = n - kLzMinMatch;
  while (pos <= match_limit) {
    const uint32_t seq = Load32(base + pos);
    const uint32_t slot = HashSeq(seq);
    const uint32_t cand = table[slot];
    table[slot] = static_cast<uint32_t>(pos);
    if (cand == 0xffffffffu || pos - cand > kLzMaxOffset ||
        Load32(base + cand) != seq) {
      pos++;
      continue;
    }
    // Extend the match forward.
    size_t len = kLzMinMatch;
    while (pos + len < n && base[cand + len] == base[pos + len]) len++;
    PutSequence(&out, base + lit_start, pos - lit_start, pos - cand, len);
    // Seed the table inside the match so adjacent repetitions chain.
    const size_t end = pos + len;
    for (size_t p = pos + 1; p + kLzMinMatch <= end && p <= match_limit;
         p += 2) {
      table[HashSeq(Load32(base + p))] = static_cast<uint32_t>(p);
    }
    pos = end;
    lit_start = end;
  }
  PutSequence(&out, base + lit_start, n - lit_start, 0, 0);
  return out;
}

Result<Buffer> LzDecompress(Slice in, size_t max_raw_size) {
  Decoder dec(in);
  uint32_t raw_size = 0;
  TDB_RETURN_IF_ERROR(dec.GetVarint32(&raw_size));
  if (raw_size > max_raw_size) {
    return Status::Corruption("lz: claimed size exceeds limit");
  }
  Slice rest;
  TDB_RETURN_IF_ERROR(dec.GetBytes(dec.remaining(), &rest));

  Buffer out;
  out.reserve(raw_size);
  for (;;) {
    if (rest.empty()) {
      // Input may only end right after a literals-only final sequence,
      // handled below; reaching here with bytes still owed is corruption.
      if (out.size() != raw_size) {
        return Status::Corruption("lz: truncated stream");
      }
      return out;
    }
    const uint8_t token = rest[0];
    rest.RemovePrefix(1);
    size_t n_literals = token >> 4;
    if (n_literals == 15) TDB_RETURN_IF_ERROR(GetRunExtension(&rest, &n_literals));
    if (n_literals > rest.size()) {
      return Status::Corruption("lz: literal run past end of input");
    }
    if (out.size() + n_literals > raw_size) {
      return Status::Corruption("lz: output overflow in literals");
    }
    out.insert(out.end(), rest.data(), rest.data() + n_literals);
    rest.RemovePrefix(n_literals);
    if (rest.empty()) {
      // Final, literals-only sequence: a match nibble here would have no
      // offset to apply, so it must be zero.
      if ((token & 0x0f) != 0 || out.size() != raw_size) {
        return Status::Corruption("lz: bad final sequence");
      }
      return out;
    }
    if (rest.size() < 2) return Status::Corruption("lz: truncated offset");
    const size_t offset = static_cast<size_t>(rest[0]) |
                          (static_cast<size_t>(rest[1]) << 8);
    rest.RemovePrefix(2);
    if (offset == 0 || offset > out.size()) {
      return Status::Corruption("lz: match offset out of range");
    }
    size_t match_len = (token & 0x0f);
    if (match_len == 15) TDB_RETURN_IF_ERROR(GetRunExtension(&rest, &match_len));
    match_len += kLzMinMatch;
    if (out.size() + match_len > raw_size) {
      return Status::Corruption("lz: output overflow in match");
    }
    // Byte-at-a-time copy: matches may overlap their own output
    // (offset < match_len encodes a run), so memcpy is not valid here.
    size_t src = out.size() - offset;
    for (size_t i = 0; i < match_len; i++) out.push_back(out[src + i]);
  }
}

}  // namespace tdb
