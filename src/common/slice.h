#ifndef TDB_COMMON_SLICE_H_
#define TDB_COMMON_SLICE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace tdb {

/// Owning byte buffer used throughout TDB for chunk and object payloads.
using Buffer = std::vector<uint8_t>;

/// Non-owning view of a byte range. The viewed bytes must outlive the Slice.
class Slice {
 public:
  Slice() : data_(nullptr), size_(0) {}
  Slice(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  Slice(const Buffer& buf)  // NOLINT(runtime/explicit)
      : data_(buf.data()), size_(buf.size()) {}
  Slice(std::string_view sv)  // NOLINT(runtime/explicit)
      : data_(reinterpret_cast<const uint8_t*>(sv.data())), size_(sv.size()) {}
  Slice(const char* cstr)  // NOLINT(runtime/explicit)
      : data_(reinterpret_cast<const uint8_t*>(cstr)),
        size_(std::strlen(cstr)) {}

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  uint8_t operator[](size_t i) const { return data_[i]; }

  /// Drops the first n bytes from the view.
  void RemovePrefix(size_t n) {
    data_ += n;
    size_ -= n;
  }

  Buffer ToBuffer() const { return Buffer(data_, data_ + size_); }
  std::string ToString() const {
    return std::string(reinterpret_cast<const char*>(data_), size_);
  }

  friend bool operator==(const Slice& a, const Slice& b) {
    return a.size_ == b.size_ &&
           (a.size_ == 0 || std::memcmp(a.data_, b.data_, a.size_) == 0);
  }
  friend bool operator!=(const Slice& a, const Slice& b) { return !(a == b); }

 private:
  const uint8_t* data_;
  size_t size_;
};

}  // namespace tdb

#endif  // TDB_COMMON_SLICE_H_
