#ifndef TDB_COMMON_THREAD_POOL_H_
#define TDB_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace tdb {

/// A fixed-size worker pool for fanning independent CPU-bound work — chunk
/// sealing, hashing, integrity validation — across cores.
///
/// Thread counts <= 1 create no worker threads at all: every task runs
/// inline on the calling thread, in submission order, so a pool is a
/// drop-in replacement for the serial code path (and `ThreadPool(0)` has
/// zero overhead beyond a virtual-free function call).
///
/// The pool itself is thread-safe, including the blocking helpers:
/// ParallelFor and friends keep all per-call state (work index, failure
/// flag, futures) on the caller's stack and each call joins only its own
/// submitted tasks, so several threads may drive ParallelFor on one pool
/// concurrently — calls simply share the worker set, and every caller
/// also participates in its own work instead of idling. The group-commit
/// chunk store relies on this: concurrent committers seal their batches
/// through one shared crypto pool.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; <= 1 means inline execution.
  explicit ThreadPool(int num_threads);

  /// Joins all workers. Pending submitted tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 when running inline).
  int thread_count() const { return static_cast<int>(workers_.size()); }

  /// Submits one task. The returned future becomes ready when the task
  /// finishes and rethrows any exception the task threw. With no workers
  /// the task runs inline before this returns (future already ready).
  std::future<void> Submit(std::function<void()> fn);

  /// Runs fn(0), fn(1), ..., fn(n-1) across the workers plus the calling
  /// thread and returns when all invocations finish. Results keyed by the
  /// index (e.g. writing results[i]) therefore land in submission order
  /// regardless of execution interleaving. The first exception thrown by
  /// any invocation is rethrown on the caller; once a task has thrown,
  /// not-yet-started indexes are skipped.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Status-returning variant: returns OK if every fn(i) returned OK,
  /// otherwise the lowest-index failure among the invocations that ran.
  /// After a failure is observed, not-yet-started indexes may be skipped —
  /// callers needing a fully deterministic "first failure" should collect
  /// per-index results with ParallelFor instead.
  Status ParallelForStatus(size_t n, const std::function<Status(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool shutdown_ = false;
};

}  // namespace tdb

#endif  // TDB_COMMON_THREAD_POOL_H_
