#ifndef TDB_COMMON_CHECK_H_
#define TDB_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace tdb::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& msg) {
  std::fprintf(stderr, "TDB_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg.empty() ? "" : " — ", msg.c_str());
  std::abort();
}

}  // namespace tdb::internal

/// Aborts on invariant violation. Used for programming errors (the paper's
/// "checked runtime errors"), never for recoverable conditions — those
/// return Status.
#define TDB_CHECK(cond, ...)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::tdb::internal::CheckFailed(__FILE__, __LINE__, #cond,             \
                                   ::std::string(__VA_ARGS__));           \
    }                                                                     \
  } while (0)

#ifdef NDEBUG
#define TDB_DCHECK(cond, ...) \
  do {                        \
  } while (0)
#else
#define TDB_DCHECK(cond, ...) TDB_CHECK(cond, __VA_ARGS__)
#endif

#endif  // TDB_COMMON_CHECK_H_
