#ifndef TDB_COLLECTION_INDEXER_H_
#define TDB_COLLECTION_INDEXER_H_

#include <functional>
#include <memory>
#include <string>

#include "collection/key.h"
#include "common/result.h"
#include "object/object.h"

namespace tdb::collection {

/// Physical organization of an index (§5.2.4).
enum class IndexKind : uint8_t {
  kBTree = 1,      // Ordered; supports scan, exact-match, range.
  kHashTable = 2,  // Larson dynamic hashing; scan and exact-match.
  kList = 3,       // Unordered list; scan, exact and range by linear walk.
};

enum class Uniqueness : uint8_t { kUnique = 1, kNonUnique = 2 };

/// §5.2.3: applications may declare an index's keys immutable, which lets
/// the collection store skip recording pre-update key snapshots for that
/// index and skip its maintenance at iterator close entirely.
enum class KeyMutability : uint8_t { kMutable = 1, kImmutable = 2 };

/// Type-erased view of an Indexer (§5.1.2: "all instances of the Indexer
/// class are required to inherit from non-templatized class GenericIndexer
/// to allow polymorphic access"). It carries the index's identity (name),
/// its organization, uniqueness, the functional key extractor, and the
/// runtime type checks for schema objects and query keys.
///
/// Confining all templates to Indexer keeps the rest of the collection
/// store untemplatized — the paper's defense against code bloat (§5.2.1).
class GenericIndexer {
 public:
  GenericIndexer(std::string name, Uniqueness uniqueness, IndexKind kind,
                 KeyMutability mutability = KeyMutability::kMutable)
      : name_(std::move(name)), uniqueness_(uniqueness), kind_(kind),
        mutability_(mutability) {}
  virtual ~GenericIndexer() = default;

  const std::string& name() const { return name_; }
  bool unique() const { return uniqueness_ == Uniqueness::kUnique; }
  bool immutable_keys() const {
    return mutability_ == KeyMutability::kImmutable;
  }
  IndexKind kind() const { return kind_; }

  /// Applies the extractor function. TypeMismatch if `obj` is not an
  /// instance of the collection schema class.
  virtual Result<std::unique_ptr<GenericKey>> ExtractKey(
      const object::Object& obj) const = 0;

  /// Fresh key instance for unpickling stored keys.
  virtual std::unique_ptr<GenericKey> NewKey() const = 0;

  /// Runtime type checks (§5.2.1): objects inserted must subclass the
  /// schema class; query keys must match the index key class.
  virtual bool IsSchemaInstance(const object::Object& obj) const = 0;
  virtual bool IsKeyInstance(const GenericKey& key) const = 0;

 private:
  std::string name_;
  Uniqueness uniqueness_;
  IndexKind kind_;
  KeyMutability mutability_;
};

/// The only templatized class in the collection store (§5.2.1). `Schema`
/// is the collection schema class, `Key` the index key class; the
/// extractor must be a pure function of the object (§5.1.1).
template <typename Schema, typename Key>
class Indexer final : public GenericIndexer {
 public:
  static_assert(std::is_base_of_v<object::Object, Schema>,
                "Schema must derive from tdb::object::Object");
  static_assert(std::is_base_of_v<GenericKey, Key>,
                "Key must derive from tdb::collection::GenericKey");

  using Extractor = std::function<Key(const Schema&)>;

  Indexer(std::string name, Uniqueness uniqueness, IndexKind kind,
          Extractor extractor,
          KeyMutability mutability = KeyMutability::kMutable)
      : GenericIndexer(std::move(name), uniqueness, kind, mutability),
        extractor_(std::move(extractor)) {}

  Result<std::unique_ptr<GenericKey>> ExtractKey(
      const object::Object& obj) const override {
    const Schema* typed = dynamic_cast<const Schema*>(&obj);
    if (typed == nullptr) {
      return Status::TypeMismatch(
          "object is not an instance of the collection schema class");
    }
    return std::unique_ptr<GenericKey>(
        std::make_unique<Key>(extractor_(*typed)));
  }

  std::unique_ptr<GenericKey> NewKey() const override {
    return std::make_unique<Key>();
  }

  bool IsSchemaInstance(const object::Object& obj) const override {
    return dynamic_cast<const Schema*>(&obj) != nullptr;
  }

  bool IsKeyInstance(const GenericKey& key) const override {
    return dynamic_cast<const Key*>(&key) != nullptr;
  }

 private:
  Extractor extractor_;
};

}  // namespace tdb::collection

#endif  // TDB_COLLECTION_INDEXER_H_
