#include "collection/hash_index.h"

#include "common/check.h"

namespace tdb::collection {

namespace {

using object::ObjectId;
using object::ReadonlyRef;
using object::Transaction;
using object::WritableRef;

// Larson linear-hashing bucket address with the table at (round, split).
size_t BucketFor(uint64_t hash, uint32_t round, uint32_t split) {
  uint64_t base = static_cast<uint64_t>(HashIndex::kInitialBuckets) << round;
  uint64_t idx = hash % base;
  if (idx < split) idx = hash % (base << 1);
  return static_cast<size_t>(idx);
}

Result<uint64_t> HashEntry(const GenericIndexer& indexer,
                           const IndexEntry& entry) {
  TDB_ASSIGN_OR_RETURN(std::unique_ptr<GenericKey> key,
                       UnpickleKey(indexer, entry.key));
  return key->Hash();
}

// Resolves bucket index -> bucket object id through the paged table.
Result<ObjectId> BucketOid(Transaction* txn, const HashDirectory& dir,
                           size_t index) {
  size_t page_idx = index / HashIndex::kBucketsPerPage;
  size_t slot = index % HashIndex::kBucketsPerPage;
  TDB_ASSIGN_OR_RETURN(ReadonlyRef<HashDirPage> page,
                       txn->OpenReadonly<HashDirPage>(dir.pages[page_idx]));
  return page->buckets[slot];
}

// Appends a fresh bucket to the table, growing it by one page if needed.
Status AppendBucket(Transaction* txn, WritableRef<HashDirectory>& dir,
                    ObjectId bucket) {
  if (dir->n_buckets % HashIndex::kBucketsPerPage == 0) {
    auto page = std::make_unique<HashDirPage>();
    page->buckets.push_back(bucket);
    TDB_ASSIGN_OR_RETURN(ObjectId page_oid, txn->Insert(std::move(page)));
    dir->pages.push_back(page_oid);
  } else {
    TDB_ASSIGN_OR_RETURN(WritableRef<HashDirPage> page,
                         txn->OpenWritable<HashDirPage>(dir->pages.back()));
    page->buckets.push_back(bucket);
  }
  dir->n_buckets++;
  return Status::OK();
}

// Splits the bucket at the split pointer (controlled splitting: triggered
// by bucket overflow, §Larson). Rewrites only the root, one table page,
// and the two buckets involved.
Status SplitOne(Transaction* txn, const GenericIndexer& indexer,
                WritableRef<HashDirectory>& dir) {
  const uint32_t old_index = dir->split;
  TDB_ASSIGN_OR_RETURN(ObjectId new_bucket_id,
                       txn->Insert(std::make_unique<HashBucket>()));
  TDB_RETURN_IF_ERROR(AppendBucket(txn, dir, new_bucket_id));

  // Advance the split pointer (and round) before redistributing so
  // BucketFor routes with the post-split geometry.
  dir->split++;
  uint64_t base = static_cast<uint64_t>(HashIndex::kInitialBuckets)
                  << dir->round;
  if (dir->split == base) {
    dir->round++;
    dir->split = 0;
  }

  TDB_ASSIGN_OR_RETURN(ObjectId old_bucket_id,
                       BucketOid(txn, *dir, old_index));
  TDB_ASSIGN_OR_RETURN(WritableRef<HashBucket> old_bucket,
                       txn->OpenWritable<HashBucket>(old_bucket_id));
  TDB_ASSIGN_OR_RETURN(WritableRef<HashBucket> new_bucket,
                       txn->OpenWritable<HashBucket>(new_bucket_id));
  std::vector<IndexEntry> keep;
  for (IndexEntry& entry : old_bucket->entries) {
    TDB_ASSIGN_OR_RETURN(uint64_t h, HashEntry(indexer, entry));
    if (BucketFor(h, dir->round, dir->split) == old_index) {
      keep.push_back(std::move(entry));
    } else {
      new_bucket->entries.push_back(std::move(entry));
    }
  }
  old_bucket->entries = std::move(keep);
  return Status::OK();
}

}  // namespace

Result<ObjectId> HashIndex::Create(Transaction* txn) {
  auto dir = std::make_unique<HashDirectory>();
  auto page = std::make_unique<HashDirPage>();
  for (uint32_t i = 0; i < kInitialBuckets; i++) {
    TDB_ASSIGN_OR_RETURN(ObjectId bucket,
                         txn->Insert(std::make_unique<HashBucket>()));
    page->buckets.push_back(bucket);
  }
  TDB_ASSIGN_OR_RETURN(ObjectId page_oid, txn->Insert(std::move(page)));
  dir->pages.push_back(page_oid);
  dir->n_buckets = kInitialBuckets;
  return txn->Insert(std::move(dir));
}

Status HashIndex::Insert(Transaction* txn, const GenericIndexer& indexer,
                         ObjectId root, const GenericKey& key, ObjectId oid) {
  // Read-only root access on the fast path: the directory is rewritten
  // only when a split happens.
  uint32_t round, split;
  size_t idx;
  ObjectId bucket_oid;
  {
    TDB_ASSIGN_OR_RETURN(ReadonlyRef<HashDirectory> dir,
                         txn->OpenReadonly<HashDirectory>(root));
    round = dir->round;
    split = dir->split;
    idx = BucketFor(key.Hash(), round, split);
    TDB_ASSIGN_OR_RETURN(bucket_oid, BucketOid(txn, *dir, idx));
  }
  TDB_ASSIGN_OR_RETURN(WritableRef<HashBucket> bucket,
                       txn->OpenWritable<HashBucket>(bucket_oid));
  // Uniqueness / idempotence: equal keys always land in the same bucket.
  for (const IndexEntry& entry : bucket->entries) {
    TDB_ASSIGN_OR_RETURN(int cmp, ComparePickled(indexer, entry.key, key));
    if (cmp != 0) continue;
    if (entry.oid == oid) return Status::OK();  // Already indexed.
    if (indexer.unique()) {
      return Status::UniqueViolation("duplicate key in unique index '" +
                                     indexer.name() + "'");
    }
  }
  IndexEntry entry;
  entry.key = PickleKey(key);
  entry.oid = oid;
  bucket->entries.push_back(std::move(entry));

  if (bucket->entries.size() > kSplitThreshold) {
    TDB_ASSIGN_OR_RETURN(WritableRef<HashDirectory> dir,
                         txn->OpenWritable<HashDirectory>(root));
    TDB_RETURN_IF_ERROR(SplitOne(txn, indexer, dir));
  }
  return Status::OK();
}

Status HashIndex::Remove(Transaction* txn, const GenericIndexer& indexer,
                         ObjectId root, const GenericKey& key, ObjectId oid) {
  ObjectId bucket_oid;
  {
    TDB_ASSIGN_OR_RETURN(ReadonlyRef<HashDirectory> dir,
                         txn->OpenReadonly<HashDirectory>(root));
    size_t idx = BucketFor(key.Hash(), dir->round, dir->split);
    TDB_ASSIGN_OR_RETURN(bucket_oid, BucketOid(txn, *dir, idx));
  }
  TDB_ASSIGN_OR_RETURN(WritableRef<HashBucket> bucket,
                       txn->OpenWritable<HashBucket>(bucket_oid));
  for (size_t i = 0; i < bucket->entries.size(); i++) {
    if (bucket->entries[i].oid != oid) continue;
    TDB_ASSIGN_OR_RETURN(int cmp,
                         ComparePickled(indexer, bucket->entries[i].key, key));
    if (cmp == 0) {
      bucket->entries.erase(bucket->entries.begin() + i);
      return Status::OK();
    }
  }
  return Status::NotFound("index entry not found");
}

Status HashIndex::Scan(Transaction* txn, ObjectId root,
                       std::vector<ObjectId>* out) {
  TDB_ASSIGN_OR_RETURN(ReadonlyRef<HashDirectory> dir,
                       txn->OpenReadonly<HashDirectory>(root));
  for (uint32_t i = 0; i < dir->n_buckets; i++) {
    TDB_ASSIGN_OR_RETURN(ObjectId bucket_oid,
                         BucketOid(txn, *dir, i));
    TDB_ASSIGN_OR_RETURN(ReadonlyRef<HashBucket> bucket,
                         txn->OpenReadonly<HashBucket>(bucket_oid));
    for (const IndexEntry& entry : bucket->entries) {
      out->push_back(entry.oid);
    }
  }
  return Status::OK();
}

Status HashIndex::Match(Transaction* txn, const GenericIndexer& indexer,
                        ObjectId root, const GenericKey& key,
                        std::vector<ObjectId>* out) {
  TDB_ASSIGN_OR_RETURN(ReadonlyRef<HashDirectory> dir,
                       txn->OpenReadonly<HashDirectory>(root));
  size_t idx = BucketFor(key.Hash(), dir->round, dir->split);
  TDB_ASSIGN_OR_RETURN(ObjectId bucket_oid,
                       BucketOid(txn, *dir, idx));
  TDB_ASSIGN_OR_RETURN(ReadonlyRef<HashBucket> bucket,
                       txn->OpenReadonly<HashBucket>(bucket_oid));
  for (const IndexEntry& entry : bucket->entries) {
    TDB_ASSIGN_OR_RETURN(int cmp, ComparePickled(indexer, entry.key, key));
    if (cmp == 0) out->push_back(entry.oid);
  }
  return Status::OK();
}

Result<bool> HashIndex::ContainsKey(Transaction* txn,
                                    const GenericIndexer& indexer,
                                    ObjectId root, const GenericKey& key) {
  std::vector<ObjectId> oids;
  TDB_RETURN_IF_ERROR(Match(txn, indexer, root, key, &oids));
  return !oids.empty();
}

Status HashIndex::Destroy(Transaction* txn, ObjectId root) {
  std::vector<ObjectId> pages;
  std::vector<ObjectId> buckets;
  {
    TDB_ASSIGN_OR_RETURN(ReadonlyRef<HashDirectory> dir,
                         txn->OpenReadonly<HashDirectory>(root));
    pages = dir->pages;
    for (uint32_t i = 0; i < dir->n_buckets; i++) {
      TDB_ASSIGN_OR_RETURN(ObjectId bucket,
                           BucketOid(txn, *dir, i));
      buckets.push_back(bucket);
    }
  }
  for (ObjectId bucket : buckets) TDB_RETURN_IF_ERROR(txn->Remove(bucket));
  for (ObjectId page : pages) TDB_RETURN_IF_ERROR(txn->Remove(page));
  return txn->Remove(root);
}

}  // namespace tdb::collection
