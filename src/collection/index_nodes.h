#ifndef TDB_COLLECTION_INDEX_NODES_H_
#define TDB_COLLECTION_INDEX_NODES_H_

#include <vector>

#include "collection/indexer.h"
#include "common/result.h"
#include "object/class_registry.h"
#include "object/object.h"

namespace tdb::collection {

/// Class ids below this value are reserved for TDB-internal persistent
/// classes (collection metadata and index meta-objects). Applications must
/// register their classes at kReservedClassIdLimit or above.
constexpr object::ClassId kReservedClassIdLimit = 32;

constexpr object::ClassId kCollectionClassId = 2;
constexpr object::ClassId kDirectoryClassId = 3;
constexpr object::ClassId kBTreeNodeClassId = 4;
constexpr object::ClassId kHashDirectoryClassId = 5;
constexpr object::ClassId kHashBucketClassId = 6;
constexpr object::ClassId kListNodeClassId = 7;
constexpr object::ClassId kHashDirPageClassId = 8;

/// One (pickled key, object id) pair as stored in index meta-objects.
struct IndexEntry {
  Buffer key;
  object::ObjectId oid = object::kInvalidObjectId;
};

/// B+-tree node (§5.2.4). Leaves hold (key, oid) entries sorted by
/// (key, oid); internal nodes hold separator entries and child node ids.
/// Index meta-objects are ordinary persistent objects, so they are locked,
/// cached, logged, encrypted and hashed like everything else — which is
/// precisely how TDB protects index meta-data from tampering (§1).
class BTreeNode final : public object::Object {
 public:
  object::ClassId class_id() const override { return kBTreeNodeClassId; }
  void Pickle(object::Pickler* pickler) const override;
  Status UnpickleFrom(object::Unpickler* unpickler) override;
  size_t ApproxSize() const override;

  bool leaf = true;
  std::vector<IndexEntry> entries;  // Leaf data or internal separators.
  std::vector<object::ObjectId> children;  // Internal: entries.size() + 1.
};

/// Linear-hashing directory root (Larson [20]). The bucket table is paged
/// (HashDirPage) so that a split — which grows the table by one bucket —
/// rewrites only this small root and one page, never the whole table.
class HashDirectory final : public object::Object {
 public:
  object::ClassId class_id() const override { return kHashDirectoryClassId; }
  void Pickle(object::Pickler* pickler) const override;
  Status UnpickleFrom(object::Unpickler* unpickler) override;
  size_t ApproxSize() const override {
    return sizeof(*this) + pages.size() * sizeof(object::ObjectId);
  }

  uint32_t round = 0;
  uint32_t split = 0;
  uint32_t n_buckets = 0;
  std::vector<object::ObjectId> pages;
};

/// One fixed-capacity page of the bucket table.
class HashDirPage final : public object::Object {
 public:
  object::ClassId class_id() const override { return kHashDirPageClassId; }
  void Pickle(object::Pickler* pickler) const override;
  Status UnpickleFrom(object::Unpickler* unpickler) override;
  size_t ApproxSize() const override {
    return sizeof(*this) + buckets.size() * sizeof(object::ObjectId);
  }

  std::vector<object::ObjectId> buckets;
};

/// One hash bucket.
class HashBucket final : public object::Object {
 public:
  object::ClassId class_id() const override { return kHashBucketClassId; }
  void Pickle(object::Pickler* pickler) const override;
  Status UnpickleFrom(object::Unpickler* unpickler) override;
  size_t ApproxSize() const override;

  std::vector<IndexEntry> entries;
};

/// Node of a list index: a chain of entry blocks.
class ListNode final : public object::Object {
 public:
  object::ClassId class_id() const override { return kListNodeClassId; }
  void Pickle(object::Pickler* pickler) const override;
  Status UnpickleFrom(object::Unpickler* unpickler) override;
  size_t ApproxSize() const override;

  std::vector<IndexEntry> entries;
  object::ObjectId next = object::kInvalidObjectId;
};

/// Registers every internal class with `registry` (done by the collection
/// store at open).
Status RegisterIndexNodeClasses(object::ClassRegistry* registry);

// --- Shared key helpers -----------------------------------------------

/// Unpickles a stored key through the indexer's key factory.
Result<std::unique_ptr<GenericKey>> UnpickleKey(const GenericIndexer& indexer,
                                                const Buffer& pickled);

/// Compares a stored (pickled) key against a live key.
Result<int> ComparePickled(const GenericIndexer& indexer, const Buffer& a,
                           const GenericKey& b);

/// Compares two stored entries by (key, oid).
Result<int> CompareEntries(const GenericIndexer& indexer, const IndexEntry& a,
                           const Buffer& b_key, object::ObjectId b_oid);

}  // namespace tdb::collection

#endif  // TDB_COLLECTION_INDEX_NODES_H_
