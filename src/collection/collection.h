#ifndef TDB_COLLECTION_COLLECTION_H_
#define TDB_COLLECTION_COLLECTION_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "collection/index_nodes.h"
#include "collection/indexer.h"
#include "collection/key.h"
#include "object/object_store.h"

namespace tdb::collection {

class CTransaction;
class CollectionStore;
class Iterator;

/// Persistent descriptor of one index on a collection.
struct IndexDesc {
  std::string name;
  IndexKind kind = IndexKind::kBTree;
  bool unique = false;
  bool immutable_keys = false;  // §5.2.3 snapshot-skipping declaration.
  object::ObjectId root = object::kInvalidObjectId;
};

/// A collection: a set of objects sharing one or more automatically
/// maintained indexes (§5.1.1). Collections are themselves persistent
/// objects; mutating methods require the collection opened writable
/// (obtained from CTransaction::CreateCollection / WriteCollection).
///
/// Objects in a collection must inherit from the collection's schema class
/// — enforced at runtime through the indexers' type checks (§5.2.1). An
/// object should belong to at most one collection (§5.1.1; not enforced).
class Collection final : public object::Object {
 public:
  Collection() = default;

  object::ClassId class_id() const override { return kCollectionClassId; }
  void Pickle(object::Pickler* pickler) const override;
  Status UnpickleFrom(object::Unpickler* unpickler) override;
  size_t ApproxSize() const override;

  const std::string& name() const { return name_; }
  object::ObjectId id() const { return self_oid_; }
  size_t index_count() const { return indexes_.size(); }
  const std::vector<IndexDesc>& indexes() const { return indexes_; }

  /// Creates a new index described by `indexer` and back-fills it with
  /// every object already in the collection (§5.1.2). UniqueViolation if a
  /// unique index would cover duplicate keys. Fails while iterators are
  /// open on this collection.
  Status CreateIndex(CTransaction* t, std::shared_ptr<GenericIndexer> indexer);

  /// Drops an index. InvalidArgument if it is the collection's only index.
  Status RemoveIndex(CTransaction* t, const GenericIndexer& indexer);

  /// Inserts `object` into the collection (and all its indexes). Returns
  /// the new object id. UniqueViolation if any unique index would get a
  /// duplicate key; TypeMismatch if the object is not a schema instance.
  Result<object::ObjectId> Insert(CTransaction* t,
                                  std::unique_ptr<object::Object> object);

  /// Queries (§5.1.2, Figure 6): scan, exact-match, range. The returned
  /// iterator is *insensitive* (§5.2.2): it enumerates the result set as
  /// of query time and hides the transaction's own updates until Close.
  Result<std::unique_ptr<Iterator>> Query(CTransaction* t,
                                          const GenericIndexer& indexer) const;
  Result<std::unique_ptr<Iterator>> Query(CTransaction* t,
                                          const GenericIndexer& indexer,
                                          const GenericKey& match) const;
  Result<std::unique_ptr<Iterator>> Query(CTransaction* t,
                                          const GenericIndexer& indexer,
                                          const GenericKey* min,
                                          const GenericKey* max) const;

  /// Removes every object whose `indexer` key lies in [min, max] (null =
  /// unbounded), deleting the objects and maintaining all indexes — the
  /// retention primitive for time-ordered collections: the freed chunks
  /// feed the cleaner. `removed` (optional) reports how many objects were
  /// deleted. Subject to the single-open-iterator constraint of §5.2.2.
  Status RemoveRange(CTransaction* t, const GenericIndexer& indexer,
                     const GenericKey* min, const GenericKey* max,
                     size_t* removed = nullptr);

 private:
  friend class CTransaction;
  friend class Iterator;

  // Looks up the descriptor matching `indexer` (by name, validating that
  // organization and uniqueness agree).
  Result<const IndexDesc*> FindIndex(const GenericIndexer& indexer) const;

  std::string name_;
  object::ObjectId self_oid_ = object::kInvalidObjectId;
  std::vector<IndexDesc> indexes_;
};

/// Unidirectional, insensitive iterator over a query result (§5.2.2).
/// Dereferencing writable marks the object for deferred index maintenance;
/// all index updates happen at Close(), which reports UniqueViolation and
/// the list of ejected objects if the transaction's updates created
/// duplicate keys in unique indexes (§5.2.3).
class Iterator {
 public:
  ~Iterator();
  Iterator(const Iterator&) = delete;
  Iterator& operator=(const Iterator&) = delete;

  bool end() const { return pos_ >= result_.size(); }
  /// Advances to the next object (iterators are unidirectional).
  void Next() {
    if (!end()) pos_++;
  }
  object::ObjectId current() const;

  /// Dereferences the current object read-only.
  template <typename T>
  Result<object::ReadonlyRef<T>> Read();

  /// Dereferences the current object writable. Requires that no other
  /// iterator is open on the same collection (constraint 2 of §5.2.2).
  /// A pre-update snapshot of every indexed key is taken before the
  /// reference is returned (§5.2.3).
  template <typename T>
  Result<object::WritableRef<T>> Write();

  /// Deletes the currently enumerated object from the collection (applied
  /// at Close, like all index maintenance).
  Status RemoveCurrent();

  /// Applies deferred index maintenance. Returns UniqueViolation if any
  /// update created a duplicate key in a unique index; the violating
  /// objects are removed from the collection's indexes and listed in
  /// ejected() so the application can re-integrate them. Idempotent.
  Status Close();

  const std::vector<object::ObjectId>& ejected() const { return ejected_; }

 private:
  friend class Collection;

  struct TouchedObject {
    std::map<std::string, Buffer> pre_keys;  // Index name -> pickled key.
    bool removed = false;
  };

  Iterator(CTransaction* ct, const Collection& collection,
           std::vector<object::ObjectId> result);

  // Captures the pre-update key snapshot for `oid` if not yet recorded.
  Status SnapshotKeys(object::ObjectId oid);
  Status CheckWritable() const;
  Result<object::ObjectId> CurrentChecked() const;

  CTransaction* ct_;
  std::string collection_name_;
  object::ObjectId coll_oid_;
  std::vector<IndexDesc> index_descs_;  // Frozen at query time.
  std::vector<object::ObjectId> result_;
  size_t pos_ = 0;
  bool closed_ = false;
  std::map<object::ObjectId, TouchedObject> touched_;
  std::vector<object::ObjectId> ejected_;
};

/// Transaction facade for collection applications (§5.1.2, Figure 5).
/// Unlike the object store's Transaction, it does not expose direct object
/// creation/update/deletion — writable references to collection objects
/// come only from iterators (constraint 1 of §5.2.2).
class CTransaction {
 public:
  explicit CTransaction(CollectionStore* store);
  ~CTransaction();
  CTransaction(const CTransaction&) = delete;
  CTransaction& operator=(const CTransaction&) = delete;

  /// Creates a new named collection with a single index. The indexer is
  /// retained by the collection store for index maintenance.
  Result<object::WritableRef<Collection>> CreateCollection(
      const std::string& name, std::shared_ptr<GenericIndexer> indexer);

  Result<object::ReadonlyRef<Collection>> ReadCollection(
      const std::string& name);
  Result<object::WritableRef<Collection>> WriteCollection(
      const std::string& name);

  /// Removes a named collection along with all objects in it.
  Status RemoveCollection(const std::string& name);

  /// Names of all collections in the database.
  Result<std::vector<std::string>> ListCollections();

  /// Commits/aborts. Commit fails while iterators are open (their deferred
  /// index maintenance has not been applied yet).
  Status Commit(bool durable = true);
  Status Abort();
  bool active() const { return txn_.active(); }

  CollectionStore* store() { return store_; }
  /// The underlying object-store transaction (used by index code; also an
  /// escape hatch for mixed object/collection applications).
  object::Transaction* txn() { return &txn_; }

 private:
  friend class Collection;
  friend class Iterator;

  CollectionStore* store_;
  object::Transaction txn_;
  std::map<object::ObjectId, int> open_iterators_;
};

/// The collection store (§5): keyed access to collections of objects over
/// the object store. Holds the live indexer registry (extractor functions
/// cannot be persisted, so applications re-register indexers after
/// restart — passing them to CreateCollection/CreateIndex/Query registers
/// them automatically).
class CollectionStore {
 public:
  /// Registers TDB's internal persistent classes and loads (or creates)
  /// the collection directory.
  static Result<std::unique_ptr<CollectionStore>> Open(
      object::ObjectStore* objects);

  /// Makes `indexer` available for maintenance of the like-named index of
  /// `collection_name`. Idempotent for equal (name, kind, uniqueness).
  Status RegisterIndexer(const std::string& collection_name,
                         std::shared_ptr<GenericIndexer> indexer);

  /// The registered indexer for (collection, index); NotFound if absent.
  Result<const GenericIndexer*> FindIndexer(const std::string& collection_name,
                                            const std::string& index_name) const;

  object::ObjectStore* object_store() { return objects_; }
  object::ObjectId directory_oid() const { return directory_oid_; }

 private:
  explicit CollectionStore(object::ObjectStore* objects)
      : objects_(objects) {}

  object::ObjectStore* objects_;
  object::ObjectId directory_oid_ = object::kInvalidObjectId;
  std::map<std::pair<std::string, std::string>,
           std::shared_ptr<GenericIndexer>>
      indexers_;
};

// ---------------------------------------------------------------------------
// Template implementations.

template <typename T>
Result<object::ReadonlyRef<T>> Iterator::Read() {
  TDB_ASSIGN_OR_RETURN(object::ObjectId oid, CurrentChecked());
  return ct_->txn()->OpenReadonly<T>(oid);
}

template <typename T>
Result<object::WritableRef<T>> Iterator::Write() {
  TDB_ASSIGN_OR_RETURN(object::ObjectId oid, CurrentChecked());
  TDB_RETURN_IF_ERROR(CheckWritable());
  TDB_RETURN_IF_ERROR(SnapshotKeys(oid));
  return ct_->txn()->OpenWritable<T>(oid);
}

}  // namespace tdb::collection

#endif  // TDB_COLLECTION_COLLECTION_H_
