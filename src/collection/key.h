#ifndef TDB_COLLECTION_KEY_H_
#define TDB_COLLECTION_KEY_H_

#include <memory>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>

#include "common/result.h"
#include "object/pickle.h"

namespace tdb::collection {

/// Base class of index keys (§5.1.2: "all index key classes are required
/// to inherit from the GenericKey class to allow polymorphic access").
/// Keys must be totally ordered (B-tree/list) and hashable (hash table).
class GenericKey {
 public:
  virtual ~GenericKey() = default;

  /// <0, 0, >0 like memcmp. `other` is guaranteed by the collection store
  /// to be the same concrete class (checked via the indexer).
  virtual int Compare(const GenericKey& other) const = 0;
  virtual uint64_t Hash() const = 0;
  virtual void Pickle(object::Pickler* pickler) const = 0;
  virtual Status UnpickleFrom(object::Unpickler* unpickler) = 0;
  virtual std::unique_ptr<GenericKey> Clone() const = 0;
};

/// Signed 64-bit integer key.
class IntKey final : public GenericKey {
 public:
  IntKey() = default;
  explicit IntKey(int64_t value) : value_(value) {}

  int Compare(const GenericKey& other) const override;
  uint64_t Hash() const override;
  void Pickle(object::Pickler* pickler) const override;
  Status UnpickleFrom(object::Unpickler* unpickler) override;
  std::unique_ptr<GenericKey> Clone() const override {
    return std::make_unique<IntKey>(value_);
  }

  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

/// Byte-string key (lexicographic order). Variable-sized keys are exactly
/// what offset-based embedded databases cannot index (§5.1.1).
class StringKey final : public GenericKey {
 public:
  StringKey() = default;
  explicit StringKey(std::string value) : value_(std::move(value)) {}

  int Compare(const GenericKey& other) const override;
  uint64_t Hash() const override;
  void Pickle(object::Pickler* pickler) const override;
  Status UnpickleFrom(object::Unpickler* unpickler) override;
  std::unique_ptr<GenericKey> Clone() const override {
    return std::make_unique<StringKey>(value_);
  }

  const std::string& value() const { return value_; }

 private:
  std::string value_;
};

/// IEEE double key (total order with NaN sorting last).
class DoubleKey final : public GenericKey {
 public:
  DoubleKey() = default;
  explicit DoubleKey(double value) : value_(value) {}

  int Compare(const GenericKey& other) const override;
  uint64_t Hash() const override;
  void Pickle(object::Pickler* pickler) const override;
  Status UnpickleFrom(object::Unpickler* unpickler) override;
  std::unique_ptr<GenericKey> Clone() const override {
    return std::make_unique<DoubleKey>(value_);
  }

  double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Lexicographically ordered composite of several key components (§5.1.1:
/// unlike offset-based schemes, functional indexes can combine any number
/// of fields — including derived ones — into one key).
///
///   using AccountKey = CompositeKey<IntKey, StringKey>;
///   AccountKey k(IntKey(7), StringKey("alice"));
template <typename... Components>
class CompositeKey final : public GenericKey {
  static_assert(sizeof...(Components) >= 1, "at least one component");
  static_assert((std::is_base_of_v<GenericKey, Components> && ...),
                "components must derive from GenericKey");

 public:
  CompositeKey() = default;
  explicit CompositeKey(Components... components)
      : components_(std::move(components)...) {}

  int Compare(const GenericKey& other) const override {
    const auto& rhs = static_cast<const CompositeKey&>(other);
    return CompareFrom<0>(rhs);
  }

  uint64_t Hash() const override {
    uint64_t h = 1469598103934665603ull;
    std::apply(
        [&h](const Components&... c) {
          ((h = (h ^ c.Hash()) * 1099511628211ull), ...);
        },
        components_);
    return h;
  }

  void Pickle(object::Pickler* pickler) const override {
    std::apply([pickler](const Components&... c) { (c.Pickle(pickler), ...); },
               components_);
  }

  Status UnpickleFrom(object::Unpickler* unpickler) override {
    Status status = Status::OK();
    std::apply(
        [&](Components&... c) {
          ((status.ok() ? (status = c.UnpickleFrom(unpickler), 0) : 0), ...);
        },
        components_);
    return status;
  }

  std::unique_ptr<GenericKey> Clone() const override {
    return std::make_unique<CompositeKey>(*this);
  }

  template <size_t I>
  const auto& get() const {
    return std::get<I>(components_);
  }

 private:
  template <size_t I>
  int CompareFrom(const CompositeKey& rhs) const {
    if constexpr (I == sizeof...(Components)) {
      return 0;
    } else {
      int c = std::get<I>(components_).Compare(std::get<I>(rhs.components_));
      if (c != 0) return c;
      return CompareFrom<I + 1>(rhs);
    }
  }

  std::tuple<Components...> components_;
};

/// Serializes a key to its pickled form (the representation stored in
/// index nodes).
Buffer PickleKey(const GenericKey& key);

}  // namespace tdb::collection

#endif  // TDB_COLLECTION_KEY_H_
