#include "collection/index_nodes.h"

namespace tdb::collection {

namespace {

void PickleEntries(object::Pickler* pickler,
                   const std::vector<IndexEntry>& entries) {
  pickler->PutUint64(entries.size());
  for (const IndexEntry& entry : entries) {
    pickler->PutBytes(entry.key);
    pickler->PutUint64(entry.oid);
  }
}

Status UnpickleEntries(object::Unpickler* unpickler,
                       std::vector<IndexEntry>* entries) {
  uint64_t n;
  TDB_RETURN_IF_ERROR(unpickler->GetUint64(&n));
  if (n > (1u << 24)) return Status::Corruption("absurd entry count");
  entries->clear();
  entries->resize(n);
  for (uint64_t i = 0; i < n; i++) {
    TDB_RETURN_IF_ERROR(unpickler->GetBytes(&(*entries)[i].key));
    TDB_RETURN_IF_ERROR(unpickler->GetUint64(&(*entries)[i].oid));
  }
  return Status::OK();
}

size_t EntriesSize(const std::vector<IndexEntry>& entries) {
  size_t size = entries.size() * (sizeof(IndexEntry) + 8);
  for (const IndexEntry& entry : entries) size += entry.key.size();
  return size;
}

}  // namespace

void BTreeNode::Pickle(object::Pickler* pickler) const {
  pickler->PutBool(leaf);
  PickleEntries(pickler, entries);
  pickler->PutUint64(children.size());
  for (object::ObjectId child : children) pickler->PutUint64(child);
}

Status BTreeNode::UnpickleFrom(object::Unpickler* unpickler) {
  TDB_RETURN_IF_ERROR(unpickler->GetBool(&leaf));
  TDB_RETURN_IF_ERROR(UnpickleEntries(unpickler, &entries));
  uint64_t n;
  TDB_RETURN_IF_ERROR(unpickler->GetUint64(&n));
  if (n > (1u << 20)) return Status::Corruption("absurd child count");
  children.resize(n);
  for (uint64_t i = 0; i < n; i++) {
    TDB_RETURN_IF_ERROR(unpickler->GetUint64(&children[i]));
  }
  return Status::OK();
}

size_t BTreeNode::ApproxSize() const {
  return sizeof(*this) + EntriesSize(entries) +
         children.size() * sizeof(object::ObjectId);
}

void HashDirectory::Pickle(object::Pickler* pickler) const {
  pickler->PutUint32(round);
  pickler->PutUint32(split);
  pickler->PutUint32(n_buckets);
  pickler->PutUint64(pages.size());
  for (object::ObjectId page : pages) pickler->PutUint64(page);
}

Status HashDirectory::UnpickleFrom(object::Unpickler* unpickler) {
  TDB_RETURN_IF_ERROR(unpickler->GetUint32(&round));
  TDB_RETURN_IF_ERROR(unpickler->GetUint32(&split));
  TDB_RETURN_IF_ERROR(unpickler->GetUint32(&n_buckets));
  uint64_t n;
  TDB_RETURN_IF_ERROR(unpickler->GetUint64(&n));
  if (n > (1u << 24)) return Status::Corruption("absurd page count");
  pages.resize(n);
  for (uint64_t i = 0; i < n; i++) {
    TDB_RETURN_IF_ERROR(unpickler->GetUint64(&pages[i]));
  }
  return Status::OK();
}

void HashDirPage::Pickle(object::Pickler* pickler) const {
  pickler->PutUint64(buckets.size());
  for (object::ObjectId bucket : buckets) pickler->PutUint64(bucket);
}

Status HashDirPage::UnpickleFrom(object::Unpickler* unpickler) {
  uint64_t n;
  TDB_RETURN_IF_ERROR(unpickler->GetUint64(&n));
  if (n > (1u << 20)) return Status::Corruption("absurd bucket count");
  buckets.resize(n);
  for (uint64_t i = 0; i < n; i++) {
    TDB_RETURN_IF_ERROR(unpickler->GetUint64(&buckets[i]));
  }
  return Status::OK();
}

void HashBucket::Pickle(object::Pickler* pickler) const {
  PickleEntries(pickler, entries);
}

Status HashBucket::UnpickleFrom(object::Unpickler* unpickler) {
  return UnpickleEntries(unpickler, &entries);
}

size_t HashBucket::ApproxSize() const {
  return sizeof(*this) + EntriesSize(entries);
}

void ListNode::Pickle(object::Pickler* pickler) const {
  PickleEntries(pickler, entries);
  pickler->PutUint64(next);
}

Status ListNode::UnpickleFrom(object::Unpickler* unpickler) {
  TDB_RETURN_IF_ERROR(UnpickleEntries(unpickler, &entries));
  return unpickler->GetUint64(&next);
}

size_t ListNode::ApproxSize() const {
  return sizeof(*this) + EntriesSize(entries);
}

Status RegisterIndexNodeClasses(object::ClassRegistry* registry) {
  TDB_RETURN_IF_ERROR(registry->Register<BTreeNode>(kBTreeNodeClassId));
  TDB_RETURN_IF_ERROR(
      registry->Register<HashDirectory>(kHashDirectoryClassId));
  TDB_RETURN_IF_ERROR(registry->Register<HashBucket>(kHashBucketClassId));
  TDB_RETURN_IF_ERROR(registry->Register<HashDirPage>(kHashDirPageClassId));
  return registry->Register<ListNode>(kListNodeClassId);
}

Result<std::unique_ptr<GenericKey>> UnpickleKey(const GenericIndexer& indexer,
                                                const Buffer& pickled) {
  std::unique_ptr<GenericKey> key = indexer.NewKey();
  object::Unpickler unpickler{Slice(pickled)};
  TDB_RETURN_IF_ERROR(key->UnpickleFrom(&unpickler));
  return key;
}

Result<int> ComparePickled(const GenericIndexer& indexer, const Buffer& a,
                           const GenericKey& b) {
  TDB_ASSIGN_OR_RETURN(std::unique_ptr<GenericKey> a_key,
                       UnpickleKey(indexer, a));
  return a_key->Compare(b);
}

Result<int> CompareEntries(const GenericIndexer& indexer, const IndexEntry& a,
                           const Buffer& b_key, object::ObjectId b_oid) {
  // Fast path: identical pickled bytes mean equal keys.
  int key_cmp;
  if (Slice(a.key) == Slice(b_key)) {
    key_cmp = 0;
  } else {
    TDB_ASSIGN_OR_RETURN(std::unique_ptr<GenericKey> b,
                         UnpickleKey(indexer, b_key));
    TDB_ASSIGN_OR_RETURN(key_cmp, ComparePickled(indexer, a.key, *b));
  }
  if (key_cmp != 0) return key_cmp;
  if (a.oid < b_oid) return -1;
  if (a.oid > b_oid) return 1;
  return 0;
}

}  // namespace tdb::collection
