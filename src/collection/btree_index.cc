#include "collection/btree_index.h"

#include "common/check.h"
#include "common/metrics.h"

namespace tdb::collection {

namespace {

using object::ObjectId;
using object::ReadonlyRef;
using object::Transaction;
using object::WritableRef;

constexpr size_t kT = BTreeIndex::kMinDegree;

// Depth instruments live on the store's shared registry; GetHistogram
// returns a stable pointer, so the per-op cost is one name lookup —
// negligible next to the object opens each level performs.
common::Histogram* DepthHistogram(Transaction* txn, const char* name) {
  return txn->store()->metrics()->GetHistogram(name);
}

// First index i with entries[i] >= (key, oid).
Result<size_t> LowerBound(const GenericIndexer& indexer,
                          const std::vector<IndexEntry>& entries,
                          const Buffer& key, ObjectId oid) {
  size_t lo = 0, hi = entries.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    TDB_ASSIGN_OR_RETURN(int cmp,
                         CompareEntries(indexer, entries[mid], key, oid));
    if (cmp < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Child slot to descend for (key, oid): the number of separators <= it.
Result<size_t> Route(const GenericIndexer& indexer,
                     const std::vector<IndexEntry>& entries, const Buffer& key,
                     ObjectId oid) {
  size_t lo = 0, hi = entries.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    TDB_ASSIGN_OR_RETURN(int cmp,
                         CompareEntries(indexer, entries[mid], key, oid));
    if (cmp <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Splits the full child at `idx` of `parent`, inserting a new separator.
Status SplitChild(Transaction* txn, WritableRef<BTreeNode>& parent,
                  size_t idx) {
  TDB_ASSIGN_OR_RETURN(WritableRef<BTreeNode> child,
                       txn->OpenWritable<BTreeNode>(parent->children[idx]));
  TDB_CHECK(child->entries.size() == BTreeIndex::kMaxEntries);
  auto right = std::make_unique<BTreeNode>();
  right->leaf = child->leaf;
  IndexEntry separator;
  if (child->leaf) {
    // B+ leaf split: the separator is a *copy* of the right half's first
    // entry; data stays in leaves.
    right->entries.assign(child->entries.begin() + kT, child->entries.end());
    child->entries.resize(kT);
    separator = right->entries.front();
  } else {
    separator = child->entries[kT - 1];
    right->entries.assign(child->entries.begin() + kT, child->entries.end());
    right->children.assign(child->children.begin() + kT,
                           child->children.end());
    child->entries.resize(kT - 1);
    child->children.resize(kT);
  }
  TDB_ASSIGN_OR_RETURN(ObjectId right_id, txn->Insert(std::move(right)));
  parent->entries.insert(parent->entries.begin() + idx, separator);
  parent->children.insert(parent->children.begin() + idx + 1, right_id);
  return Status::OK();
}

Status InsertIntoLeaf(const GenericIndexer& indexer,
                      WritableRef<BTreeNode>& leaf, const Buffer& key,
                      ObjectId oid) {
  TDB_ASSIGN_OR_RETURN(size_t pos,
                       LowerBound(indexer, leaf->entries, key, oid));
  if (pos < leaf->entries.size()) {
    TDB_ASSIGN_OR_RETURN(
        int cmp, CompareEntries(indexer, leaf->entries[pos], key, oid));
    if (cmp == 0) return Status::OK();  // Idempotent re-insert.
  }
  IndexEntry entry;
  entry.key = key;
  entry.oid = oid;
  leaf->entries.insert(leaf->entries.begin() + pos, entry);
  return Status::OK();
}

// Slow path: writable descend with preemptive splits.
Status InsertFull(Transaction* txn, const GenericIndexer& indexer,
                  ObjectId root, const Buffer& key, ObjectId oid) {
  TDB_ASSIGN_OR_RETURN(WritableRef<BTreeNode> node,
                       txn->OpenWritable<BTreeNode>(root));
  if (node->entries.size() == BTreeIndex::kMaxEntries) {
    // Grow in height, keeping the root's object id stable: move the root's
    // contents into a fresh child and split it.
    auto moved = std::make_unique<BTreeNode>();
    moved->leaf = node->leaf;
    moved->entries = std::move(node->entries);
    moved->children = std::move(node->children);
    TDB_ASSIGN_OR_RETURN(ObjectId moved_id, txn->Insert(std::move(moved)));
    node->leaf = false;
    node->entries.clear();
    node->children = {moved_id};
    TDB_RETURN_IF_ERROR(SplitChild(txn, node, 0));
  }
  while (!node->leaf) {
    TDB_ASSIGN_OR_RETURN(size_t idx, Route(indexer, node->entries, key, oid));
    {
      TDB_ASSIGN_OR_RETURN(ReadonlyRef<BTreeNode> peek,
                           txn->OpenReadonly<BTreeNode>(node->children[idx]));
      if (peek->entries.size() == BTreeIndex::kMaxEntries) {
        TDB_RETURN_IF_ERROR(SplitChild(txn, node, idx));
        TDB_ASSIGN_OR_RETURN(idx, Route(indexer, node->entries, key, oid));
      }
    }
    TDB_ASSIGN_OR_RETURN(WritableRef<BTreeNode> child,
                         txn->OpenWritable<BTreeNode>(node->children[idx]));
    node = child;
  }
  return InsertIntoLeaf(indexer, node, key, oid);
}

// Rebalances the (t-1)-entry child at `idx` so it can be descended into.
// Returns the index of the child to descend afterwards.
Result<size_t> EnsureChildFill(Transaction* txn,
                               WritableRef<BTreeNode>& parent, size_t idx) {
  TDB_ASSIGN_OR_RETURN(WritableRef<BTreeNode> child,
                       txn->OpenWritable<BTreeNode>(parent->children[idx]));
  // Try borrowing from the left sibling.
  if (idx > 0) {
    TDB_ASSIGN_OR_RETURN(
        WritableRef<BTreeNode> left,
        txn->OpenWritable<BTreeNode>(parent->children[idx - 1]));
    if (left->entries.size() >= kT) {
      if (child->leaf) {
        child->entries.insert(child->entries.begin(), left->entries.back());
        left->entries.pop_back();
        parent->entries[idx - 1] = child->entries.front();
      } else {
        child->entries.insert(child->entries.begin(),
                              parent->entries[idx - 1]);
        parent->entries[idx - 1] = left->entries.back();
        left->entries.pop_back();
        child->children.insert(child->children.begin(),
                               left->children.back());
        left->children.pop_back();
      }
      return idx;
    }
  }
  // Try borrowing from the right sibling.
  if (idx + 1 < parent->children.size()) {
    TDB_ASSIGN_OR_RETURN(
        WritableRef<BTreeNode> right,
        txn->OpenWritable<BTreeNode>(parent->children[idx + 1]));
    if (right->entries.size() >= kT) {
      if (child->leaf) {
        child->entries.push_back(right->entries.front());
        right->entries.erase(right->entries.begin());
        parent->entries[idx] = right->entries.front();
      } else {
        child->entries.push_back(parent->entries[idx]);
        parent->entries[idx] = right->entries.front();
        right->entries.erase(right->entries.begin());
        child->children.push_back(right->children.front());
        right->children.erase(right->children.begin());
      }
      return idx;
    }
  }
  // Merge with a sibling.
  if (idx > 0) {
    // Merge child into the left sibling.
    TDB_ASSIGN_OR_RETURN(
        WritableRef<BTreeNode> left,
        txn->OpenWritable<BTreeNode>(parent->children[idx - 1]));
    if (!child->leaf) left->entries.push_back(parent->entries[idx - 1]);
    left->entries.insert(left->entries.end(), child->entries.begin(),
                         child->entries.end());
    left->children.insert(left->children.end(), child->children.begin(),
                          child->children.end());
    ObjectId child_id = parent->children[idx];
    parent->entries.erase(parent->entries.begin() + idx - 1);
    parent->children.erase(parent->children.begin() + idx);
    TDB_RETURN_IF_ERROR(txn->Remove(child_id));
    return idx - 1;
  }
  // Merge the right sibling into child.
  TDB_ASSIGN_OR_RETURN(
      WritableRef<BTreeNode> right,
      txn->OpenWritable<BTreeNode>(parent->children[idx + 1]));
  if (!child->leaf) child->entries.push_back(parent->entries[idx]);
  child->entries.insert(child->entries.end(), right->entries.begin(),
                        right->entries.end());
  child->children.insert(child->children.end(), right->children.begin(),
                         right->children.end());
  ObjectId right_id = parent->children[idx + 1];
  parent->entries.erase(parent->entries.begin() + idx);
  parent->children.erase(parent->children.begin() + idx + 1);
  TDB_RETURN_IF_ERROR(txn->Remove(right_id));
  return idx;
}

Status RemoveFromLeaf(const GenericIndexer& indexer,
                      WritableRef<BTreeNode>& leaf, const Buffer& key,
                      ObjectId oid) {
  TDB_ASSIGN_OR_RETURN(size_t pos,
                       LowerBound(indexer, leaf->entries, key, oid));
  if (pos >= leaf->entries.size()) {
    return Status::NotFound("index entry not found");
  }
  TDB_ASSIGN_OR_RETURN(int cmp,
                       CompareEntries(indexer, leaf->entries[pos], key, oid));
  if (cmp != 0) return Status::NotFound("index entry not found");
  leaf->entries.erase(leaf->entries.begin() + pos);
  return Status::OK();
}

// Slow path: writable descend with preemptive rebalancing.
Status RemoveFull(Transaction* txn, const GenericIndexer& indexer,
                  ObjectId root, const Buffer& key, ObjectId oid) {
  TDB_ASSIGN_OR_RETURN(WritableRef<BTreeNode> node,
                       txn->OpenWritable<BTreeNode>(root));
  bool at_root = true;
  for (;;) {
    if (node->leaf) return RemoveFromLeaf(indexer, node, key, oid);
    TDB_ASSIGN_OR_RETURN(size_t idx, Route(indexer, node->entries, key, oid));
    {
      TDB_ASSIGN_OR_RETURN(ReadonlyRef<BTreeNode> peek,
                           txn->OpenReadonly<BTreeNode>(node->children[idx]));
      if (peek->entries.size() <= kT - 1) {
        TDB_ASSIGN_OR_RETURN(idx, EnsureChildFill(txn, node, idx));
      }
    }
    if (at_root && node->entries.empty() && node->children.size() == 1) {
      // Collapse the root into its only child, keeping the root id stable.
      ObjectId only = node->children[0];
      TDB_ASSIGN_OR_RETURN(WritableRef<BTreeNode> child,
                           txn->OpenWritable<BTreeNode>(only));
      node->leaf = child->leaf;
      node->entries = child->entries;
      node->children = child->children;
      TDB_RETURN_IF_ERROR(txn->Remove(only));
      continue;
    }
    TDB_ASSIGN_OR_RETURN(WritableRef<BTreeNode> child,
                         txn->OpenWritable<BTreeNode>(node->children[idx]));
    node = child;
    at_root = false;
  }
}

// Key-only comparison of a stored entry against a live key.
Result<int> CompareEntryKey(const GenericIndexer& indexer,
                            const IndexEntry& entry, const GenericKey& key) {
  return ComparePickled(indexer, entry.key, key);
}

Status RangeRec(Transaction* txn, const GenericIndexer& indexer,
                ObjectId node_id, const GenericKey* min, const GenericKey* max,
                std::vector<ObjectId>* out, int64_t depth,
                int64_t* max_depth) {
  if (depth > *max_depth) *max_depth = depth;
  TDB_ASSIGN_OR_RETURN(ReadonlyRef<BTreeNode> node,
                       txn->OpenReadonly<BTreeNode>(node_id));
  if (node->leaf) {
    for (const IndexEntry& entry : node->entries) {
      if (min != nullptr) {
        TDB_ASSIGN_OR_RETURN(int cmp, CompareEntryKey(indexer, entry, *min));
        if (cmp < 0) continue;
      }
      if (max != nullptr) {
        TDB_ASSIGN_OR_RETURN(int cmp, CompareEntryKey(indexer, entry, *max));
        if (cmp > 0) break;  // Entries are sorted: nothing further matches.
      }
      out->push_back(entry.oid);
    }
    return Status::OK();
  }
  for (size_t i = 0; i < node->children.size(); i++) {
    // Child i may contain keys in [sep[i-1].key, sep[i].key].
    if (min != nullptr && i < node->entries.size()) {
      TDB_ASSIGN_OR_RETURN(int cmp,
                           CompareEntryKey(indexer, node->entries[i], *min));
      if (cmp < 0) continue;  // Entire child below the range.
    }
    if (max != nullptr && i > 0) {
      TDB_ASSIGN_OR_RETURN(
          int cmp, CompareEntryKey(indexer, node->entries[i - 1], *max));
      if (cmp > 0) break;  // This child and all further ones above range.
    }
    TDB_RETURN_IF_ERROR(RangeRec(txn, indexer, node->children[i], min, max,
                                 out, depth + 1, max_depth));
  }
  return Status::OK();
}

Status ValidateRec(Transaction* txn, const GenericIndexer& indexer,
                   ObjectId node_id, bool is_root, int* leaf_depth,
                   int depth) {
  TDB_ASSIGN_OR_RETURN(ReadonlyRef<BTreeNode> node,
                       txn->OpenReadonly<BTreeNode>(node_id));
  if (!is_root && node->entries.size() < kT - 1) {
    return Status::Corruption("btree node underflow");
  }
  if (node->entries.size() > BTreeIndex::kMaxEntries) {
    return Status::Corruption("btree node overflow");
  }
  for (size_t i = 1; i < node->entries.size(); i++) {
    TDB_ASSIGN_OR_RETURN(
        int cmp, CompareEntries(indexer, node->entries[i - 1],
                                node->entries[i].key, node->entries[i].oid));
    if (cmp >= 0) return Status::Corruption("btree entries out of order");
  }
  if (node->leaf) {
    if (!node->children.empty()) {
      return Status::Corruption("leaf with children");
    }
    if (*leaf_depth == -1) *leaf_depth = depth;
    if (*leaf_depth != depth) {
      return Status::Corruption("leaves at different depths");
    }
    return Status::OK();
  }
  if (node->children.size() != node->entries.size() + 1) {
    return Status::Corruption("internal child count mismatch");
  }
  for (ObjectId child : node->children) {
    TDB_RETURN_IF_ERROR(
        ValidateRec(txn, indexer, child, false, leaf_depth, depth + 1));
  }
  return Status::OK();
}

}  // namespace

Result<ObjectId> BTreeIndex::Create(Transaction* txn) {
  return txn->Insert(std::make_unique<BTreeNode>());
}

Status BTreeIndex::Insert(Transaction* txn, const GenericIndexer& indexer,
                          ObjectId root, const GenericKey& key, ObjectId oid) {
  if (indexer.unique()) {
    std::vector<ObjectId> existing;
    TDB_RETURN_IF_ERROR(Match(txn, indexer, root, key, &existing));
    for (ObjectId e : existing) {
      if (e == oid) return Status::OK();  // Already indexed.
    }
    if (!existing.empty()) {
      return Status::UniqueViolation("duplicate key in unique index '" +
                                     indexer.name() + "'");
    }
  }
  Buffer key_bytes = PickleKey(key);

  // Fast path: if the target leaf has room, only the leaf is dirtied.
  // The descent depth (= tree height at this key) feeds the registry
  // histogram either way: InsertFull re-descends the same path.
  common::Histogram* depth_hist =
      DepthHistogram(txn, "index.btree.insert_depth");
  int64_t depth = 0;
  ObjectId node_id = root;
  for (;;) {
    depth++;
    TDB_ASSIGN_OR_RETURN(ReadonlyRef<BTreeNode> node,
                         txn->OpenReadonly<BTreeNode>(node_id));
    if (node->leaf) {
      if (node->entries.size() < kMaxEntries) {
        TDB_ASSIGN_OR_RETURN(WritableRef<BTreeNode> leaf,
                             txn->OpenWritable<BTreeNode>(node_id));
        depth_hist->Record(depth);
        return InsertIntoLeaf(indexer, leaf, key_bytes, oid);
      }
      break;  // Full leaf: take the splitting path.
    }
    TDB_ASSIGN_OR_RETURN(size_t idx,
                         Route(indexer, node->entries, key_bytes, oid));
    node_id = node->children[idx];
  }
  depth_hist->Record(depth);
  return InsertFull(txn, indexer, root, key_bytes, oid);
}

Status BTreeIndex::Remove(Transaction* txn, const GenericIndexer& indexer,
                          ObjectId root, const GenericKey& key, ObjectId oid) {
  Buffer key_bytes = PickleKey(key);
  // Fast path: leaf stays above the minimum (or is the root).
  ObjectId node_id = root;
  for (;;) {
    TDB_ASSIGN_OR_RETURN(ReadonlyRef<BTreeNode> node,
                         txn->OpenReadonly<BTreeNode>(node_id));
    if (node->leaf) {
      if (node_id == root || node->entries.size() > kT - 1) {
        TDB_ASSIGN_OR_RETURN(WritableRef<BTreeNode> leaf,
                             txn->OpenWritable<BTreeNode>(node_id));
        return RemoveFromLeaf(indexer, leaf, key_bytes, oid);
      }
      break;  // Would underflow: take the rebalancing path.
    }
    TDB_ASSIGN_OR_RETURN(size_t idx,
                         Route(indexer, node->entries, key_bytes, oid));
    node_id = node->children[idx];
  }
  return RemoveFull(txn, indexer, root, key_bytes, oid);
}

Status BTreeIndex::Scan(Transaction* txn, ObjectId root,
                        std::vector<ObjectId>* out) {
  TDB_ASSIGN_OR_RETURN(ReadonlyRef<BTreeNode> node,
                       txn->OpenReadonly<BTreeNode>(root));
  if (node->leaf) {
    for (const IndexEntry& entry : node->entries) out->push_back(entry.oid);
    return Status::OK();
  }
  for (ObjectId child : node->children) {
    TDB_RETURN_IF_ERROR(Scan(txn, child, out));
  }
  return Status::OK();
}

Status BTreeIndex::Match(Transaction* txn, const GenericIndexer& indexer,
                         ObjectId root, const GenericKey& key,
                         std::vector<ObjectId>* out) {
  int64_t max_depth = 0;
  Status s = RangeRec(txn, indexer, root, &key, &key, out, 1, &max_depth);
  if (s.ok()) {
    DepthHistogram(txn, "index.btree.probe_depth")->Record(max_depth);
  }
  return s;
}

Status BTreeIndex::Range(Transaction* txn, const GenericIndexer& indexer,
                         ObjectId root, const GenericKey* min,
                         const GenericKey* max,
                         std::vector<ObjectId>* out) {
  int64_t max_depth = 0;
  Status s = RangeRec(txn, indexer, root, min, max, out, 1, &max_depth);
  if (s.ok()) {
    DepthHistogram(txn, "index.btree.probe_depth")->Record(max_depth);
  }
  return s;
}

Result<bool> BTreeIndex::ContainsKey(Transaction* txn,
                                     const GenericIndexer& indexer,
                                     ObjectId root, const GenericKey& key) {
  std::vector<ObjectId> oids;
  TDB_RETURN_IF_ERROR(Match(txn, indexer, root, key, &oids));
  return !oids.empty();
}

Status BTreeIndex::Destroy(Transaction* txn, ObjectId root) {
  std::vector<ObjectId> children;
  {
    TDB_ASSIGN_OR_RETURN(ReadonlyRef<BTreeNode> node,
                         txn->OpenReadonly<BTreeNode>(root));
    children = node->children;
  }
  for (ObjectId child : children) {
    TDB_RETURN_IF_ERROR(Destroy(txn, child));
  }
  return txn->Remove(root);
}

Status BTreeIndex::Validate(Transaction* txn, const GenericIndexer& indexer,
                            ObjectId root) {
  int leaf_depth = -1;
  return ValidateRec(txn, indexer, root, true, &leaf_depth, 0);
}

}  // namespace tdb::collection
