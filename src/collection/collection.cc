#include "collection/collection.h"

#include "collection/btree_index.h"
#include "collection/hash_index.h"
#include "collection/list_index.h"
#include "common/check.h"

namespace tdb::collection {

namespace {

using object::ObjectId;
using object::ReadonlyRef;
using object::Transaction;
using object::WritableRef;

constexpr char kDirectoryRootName[] = "tdb.collections";

/// Persistent name -> collection-oid map (one per database).
class CollectionDirectory final : public object::Object {
 public:
  object::ClassId class_id() const override { return kDirectoryClassId; }
  void Pickle(object::Pickler* pickler) const override {
    pickler->PutUint64(collections.size());
    for (const auto& [name, oid] : collections) {
      pickler->PutString(name);
      pickler->PutUint64(oid);
    }
  }
  Status UnpickleFrom(object::Unpickler* unpickler) override {
    uint64_t n;
    TDB_RETURN_IF_ERROR(unpickler->GetUint64(&n));
    collections.clear();
    for (uint64_t i = 0; i < n; i++) {
      std::string name;
      uint64_t oid;
      TDB_RETURN_IF_ERROR(unpickler->GetString(&name));
      TDB_RETURN_IF_ERROR(unpickler->GetUint64(&oid));
      collections[name] = oid;
    }
    return Status::OK();
  }
  size_t ApproxSize() const override {
    return sizeof(*this) + collections.size() * 48;
  }

  std::map<std::string, ObjectId> collections;
};

// --- Index-kind dispatch ---------------------------------------------

Result<ObjectId> IndexCreate(Transaction* txn, IndexKind kind) {
  switch (kind) {
    case IndexKind::kBTree:
      return BTreeIndex::Create(txn);
    case IndexKind::kHashTable:
      return HashIndex::Create(txn);
    case IndexKind::kList:
      return ListIndex::Create(txn);
  }
  return Status::InvalidArgument("unknown index kind");
}

Status IndexInsert(Transaction* txn, const GenericIndexer& indexer,
                   const IndexDesc& desc, const GenericKey& key,
                   ObjectId oid) {
  switch (desc.kind) {
    case IndexKind::kBTree:
      return BTreeIndex::Insert(txn, indexer, desc.root, key, oid);
    case IndexKind::kHashTable:
      return HashIndex::Insert(txn, indexer, desc.root, key, oid);
    case IndexKind::kList:
      return ListIndex::Insert(txn, indexer, desc.root, key, oid);
  }
  return Status::InvalidArgument("unknown index kind");
}

Status IndexRemove(Transaction* txn, const GenericIndexer& indexer,
                   const IndexDesc& desc, const GenericKey& key,
                   ObjectId oid) {
  switch (desc.kind) {
    case IndexKind::kBTree:
      return BTreeIndex::Remove(txn, indexer, desc.root, key, oid);
    case IndexKind::kHashTable:
      return HashIndex::Remove(txn, indexer, desc.root, key, oid);
    case IndexKind::kList:
      return ListIndex::Remove(txn, indexer, desc.root, key, oid);
  }
  return Status::InvalidArgument("unknown index kind");
}

Status IndexScan(Transaction* txn, const IndexDesc& desc,
                 std::vector<ObjectId>* out) {
  switch (desc.kind) {
    case IndexKind::kBTree:
      return BTreeIndex::Scan(txn, desc.root, out);
    case IndexKind::kHashTable:
      return HashIndex::Scan(txn, desc.root, out);
    case IndexKind::kList:
      return ListIndex::Scan(txn, desc.root, out);
  }
  return Status::InvalidArgument("unknown index kind");
}

Status IndexMatch(Transaction* txn, const GenericIndexer& indexer,
                  const IndexDesc& desc, const GenericKey& key,
                  std::vector<ObjectId>* out) {
  switch (desc.kind) {
    case IndexKind::kBTree:
      return BTreeIndex::Match(txn, indexer, desc.root, key, out);
    case IndexKind::kHashTable:
      return HashIndex::Match(txn, indexer, desc.root, key, out);
    case IndexKind::kList:
      return ListIndex::Match(txn, indexer, desc.root, key, out);
  }
  return Status::InvalidArgument("unknown index kind");
}

Status IndexRange(Transaction* txn, const GenericIndexer& indexer,
                  const IndexDesc& desc, const GenericKey* min,
                  const GenericKey* max, std::vector<ObjectId>* out) {
  switch (desc.kind) {
    case IndexKind::kBTree:
      return BTreeIndex::Range(txn, indexer, desc.root, min, max, out);
    case IndexKind::kHashTable:
      return Status::NotSupported(
          "range queries require an ordered index (B-tree or list)");
    case IndexKind::kList:
      return ListIndex::Range(txn, indexer, desc.root, min, max, out);
  }
  return Status::InvalidArgument("unknown index kind");
}

Result<bool> IndexContainsKey(Transaction* txn, const GenericIndexer& indexer,
                              const IndexDesc& desc, const GenericKey& key) {
  switch (desc.kind) {
    case IndexKind::kBTree:
      return BTreeIndex::ContainsKey(txn, indexer, desc.root, key);
    case IndexKind::kHashTable:
      return HashIndex::ContainsKey(txn, indexer, desc.root, key);
    case IndexKind::kList:
      return ListIndex::ContainsKey(txn, indexer, desc.root, key);
  }
  return Status::InvalidArgument("unknown index kind");
}

Status IndexDestroy(Transaction* txn, const IndexDesc& desc) {
  switch (desc.kind) {
    case IndexKind::kBTree:
      return BTreeIndex::Destroy(txn, desc.root);
    case IndexKind::kHashTable:
      return HashIndex::Destroy(txn, desc.root);
    case IndexKind::kList:
      return ListIndex::Destroy(txn, desc.root);
  }
  return Status::InvalidArgument("unknown index kind");
}

}  // namespace

// ---------------------------------------------------------------------------
// Collection persistence

void Collection::Pickle(object::Pickler* pickler) const {
  pickler->PutString(name_);
  pickler->PutUint64(self_oid_);
  pickler->PutUint64(indexes_.size());
  for (const IndexDesc& desc : indexes_) {
    pickler->PutString(desc.name);
    pickler->PutUint32(static_cast<uint32_t>(desc.kind));
    pickler->PutBool(desc.unique);
    pickler->PutBool(desc.immutable_keys);
    pickler->PutUint64(desc.root);
  }
}

Status Collection::UnpickleFrom(object::Unpickler* unpickler) {
  TDB_RETURN_IF_ERROR(unpickler->GetString(&name_));
  TDB_RETURN_IF_ERROR(unpickler->GetUint64(&self_oid_));
  uint64_t n;
  TDB_RETURN_IF_ERROR(unpickler->GetUint64(&n));
  if (n > 1024) return Status::Corruption("absurd index count");
  indexes_.clear();
  indexes_.resize(n);
  for (uint64_t i = 0; i < n; i++) {
    TDB_RETURN_IF_ERROR(unpickler->GetString(&indexes_[i].name));
    uint32_t kind;
    TDB_RETURN_IF_ERROR(unpickler->GetUint32(&kind));
    if (kind < 1 || kind > 3) return Status::Corruption("bad index kind");
    indexes_[i].kind = static_cast<IndexKind>(kind);
    TDB_RETURN_IF_ERROR(unpickler->GetBool(&indexes_[i].unique));
    TDB_RETURN_IF_ERROR(unpickler->GetBool(&indexes_[i].immutable_keys));
    TDB_RETURN_IF_ERROR(unpickler->GetUint64(&indexes_[i].root));
  }
  return Status::OK();
}

size_t Collection::ApproxSize() const {
  return sizeof(*this) + indexes_.size() * 64 + name_.size();
}

Result<const IndexDesc*> Collection::FindIndex(
    const GenericIndexer& indexer) const {
  for (const IndexDesc& desc : indexes_) {
    if (desc.name != indexer.name()) continue;
    if (desc.kind != indexer.kind() || desc.unique != indexer.unique() ||
        desc.immutable_keys != indexer.immutable_keys()) {
      return Status::InvalidArgument("indexer '" + indexer.name() +
                                     "' does not match the stored index");
    }
    return &desc;
  }
  return Status::NotFound("no index named '" + indexer.name() + "'");
}

// ---------------------------------------------------------------------------
// Collection operations

Status Collection::CreateIndex(CTransaction* t,
                               std::shared_ptr<GenericIndexer> indexer) {
  if (t->open_iterators_[self_oid_] > 0) {
    return Status::InvalidArgument(
        "cannot create an index while iterators are open");
  }
  for (const IndexDesc& desc : indexes_) {
    if (desc.name == indexer->name()) {
      return Status::AlreadyExists("index '" + desc.name + "' exists");
    }
  }
  IndexDesc desc;
  desc.name = indexer->name();
  desc.kind = indexer->kind();
  desc.unique = indexer->unique();
  desc.immutable_keys = indexer->immutable_keys();
  TDB_ASSIGN_OR_RETURN(desc.root, IndexCreate(t->txn(), desc.kind));

  // Back-fill from the existing objects (via the first index).
  if (!indexes_.empty()) {
    std::vector<ObjectId> members;
    TDB_RETURN_IF_ERROR(IndexScan(t->txn(), indexes_[0], &members));
    for (ObjectId oid : members) {
      TDB_ASSIGN_OR_RETURN(ReadonlyRef<object::Object> obj,
                           t->txn()->OpenReadonly<object::Object>(oid));
      TDB_ASSIGN_OR_RETURN(std::unique_ptr<GenericKey> key,
                           indexer->ExtractKey(*obj));
      Status inserted = IndexInsert(t->txn(), *indexer, desc, *key, oid);
      if (!inserted.ok()) {
        // §5.1.2: creating a unique index over duplicate keys raises an
        // exception; tear the partial index down.
        IndexDestroy(t->txn(), desc).ok();
        return inserted;
      }
    }
  }
  indexes_.push_back(desc);
  return t->store()->RegisterIndexer(name_, std::move(indexer));
}

Status Collection::RemoveIndex(CTransaction* t,
                               const GenericIndexer& indexer) {
  if (t->open_iterators_[self_oid_] > 0) {
    return Status::InvalidArgument(
        "cannot remove an index while iterators are open");
  }
  if (indexes_.size() == 1) {
    return Status::InvalidArgument(
        "a collection must keep at least one index");
  }
  TDB_ASSIGN_OR_RETURN(const IndexDesc* desc, FindIndex(indexer));
  TDB_RETURN_IF_ERROR(IndexDestroy(t->txn(), *desc));
  for (auto it = indexes_.begin(); it != indexes_.end(); ++it) {
    if (it->name == desc->name) {
      indexes_.erase(it);
      break;
    }
  }
  return Status::OK();
}

Result<ObjectId> Collection::Insert(CTransaction* t,
                                    std::unique_ptr<object::Object> object) {
  if (object == nullptr) return Status::InvalidArgument("null object");
  // Resolve all indexers and extract all keys up front (this also performs
  // the schema-class runtime check).
  std::vector<const GenericIndexer*> indexers;
  std::vector<std::unique_ptr<GenericKey>> keys;
  for (const IndexDesc& desc : indexes_) {
    TDB_ASSIGN_OR_RETURN(const GenericIndexer* indexer,
                         t->store()->FindIndexer(name_, desc.name));
    TDB_ASSIGN_OR_RETURN(std::unique_ptr<GenericKey> key,
                         indexer->ExtractKey(*object));
    indexers.push_back(indexer);
    keys.push_back(std::move(key));
  }
  // Uniqueness pre-check so a violation mutates nothing (§5.1.2).
  for (size_t i = 0; i < indexes_.size(); i++) {
    if (!indexes_[i].unique) continue;
    TDB_ASSIGN_OR_RETURN(
        bool present,
        IndexContainsKey(t->txn(), *indexers[i], indexes_[i], *keys[i]));
    if (present) {
      return Status::UniqueViolation("duplicate key in unique index '" +
                                     indexes_[i].name + "'");
    }
  }
  TDB_ASSIGN_OR_RETURN(ObjectId oid, t->txn()->Insert(std::move(object)));
  for (size_t i = 0; i < indexes_.size(); i++) {
    TDB_RETURN_IF_ERROR(
        IndexInsert(t->txn(), *indexers[i], indexes_[i], *keys[i], oid));
  }
  return oid;
}

Result<std::unique_ptr<Iterator>> Collection::Query(
    CTransaction* t, const GenericIndexer& indexer) const {
  TDB_ASSIGN_OR_RETURN(const IndexDesc* desc, FindIndex(indexer));
  std::vector<ObjectId> result;
  TDB_RETURN_IF_ERROR(IndexScan(t->txn(), *desc, &result));
  return std::unique_ptr<Iterator>(new Iterator(t, *this, std::move(result)));
}

Result<std::unique_ptr<Iterator>> Collection::Query(
    CTransaction* t, const GenericIndexer& indexer,
    const GenericKey& match) const {
  TDB_ASSIGN_OR_RETURN(const IndexDesc* desc, FindIndex(indexer));
  if (!indexer.IsKeyInstance(match)) {
    return Status::TypeMismatch("query key is not of the index key class");
  }
  std::vector<ObjectId> result;
  TDB_RETURN_IF_ERROR(IndexMatch(t->txn(), indexer, *desc, match, &result));
  return std::unique_ptr<Iterator>(new Iterator(t, *this, std::move(result)));
}

Result<std::unique_ptr<Iterator>> Collection::Query(
    CTransaction* t, const GenericIndexer& indexer, const GenericKey* min,
    const GenericKey* max) const {
  TDB_ASSIGN_OR_RETURN(const IndexDesc* desc, FindIndex(indexer));
  if ((min != nullptr && !indexer.IsKeyInstance(*min)) ||
      (max != nullptr && !indexer.IsKeyInstance(*max))) {
    return Status::TypeMismatch("query key is not of the index key class");
  }
  std::vector<ObjectId> result;
  TDB_RETURN_IF_ERROR(
      IndexRange(t->txn(), indexer, *desc, min, max, &result));
  return std::unique_ptr<Iterator>(new Iterator(t, *this, std::move(result)));
}

Status Collection::RemoveRange(CTransaction* t, const GenericIndexer& indexer,
                               const GenericKey* min, const GenericKey* max,
                               size_t* removed) {
  TDB_ASSIGN_OR_RETURN(std::unique_ptr<Iterator> it,
                       Query(t, indexer, min, max));
  size_t count = 0;
  Status status;
  for (; status.ok() && !it->end(); it->Next()) {
    status = it->RemoveCurrent();
    if (status.ok()) count++;
  }
  Status closed = it->Close();
  if (status.ok()) status = closed;
  if (removed != nullptr) *removed = count;
  return status;
}

// ---------------------------------------------------------------------------
// Iterator

Iterator::Iterator(CTransaction* ct, const Collection& collection,
                   std::vector<ObjectId> result)
    : ct_(ct),
      collection_name_(collection.name()),
      coll_oid_(collection.id()),
      index_descs_(collection.indexes()),
      result_(std::move(result)) {
  ct_->open_iterators_[coll_oid_]++;
}

Iterator::~Iterator() {
  // Applying maintenance here (with status discarded) would hide
  // uniqueness violations; but leaving indexes unmaintained is worse.
  Close().ok();
}

object::ObjectId Iterator::current() const {
  TDB_CHECK(!end(), "iterator dereferenced past the end");
  return result_[pos_];
}

Result<ObjectId> Iterator::CurrentChecked() const {
  if (closed_) return Status::InvalidArgument("iterator closed");
  if (end()) return Status::InvalidArgument("iterator at end");
  return result_[pos_];
}

Status Iterator::CheckWritable() const {
  if (ct_->open_iterators_[coll_oid_] != 1) {
    return Status::InvalidArgument(
        "writable dereference with multiple open iterators on the "
        "collection (§5.2.2 constraint)");
  }
  return Status::OK();
}

Status Iterator::SnapshotKeys(ObjectId oid) {
  auto [it, fresh] = touched_.try_emplace(oid);
  if (!fresh) return Status::OK();  // Snapshot already taken.
  TDB_ASSIGN_OR_RETURN(ReadonlyRef<object::Object> obj,
                       ct_->txn()->OpenReadonly<object::Object>(oid));
  for (const IndexDesc& desc : index_descs_) {
    // §5.2.3: keys declared immutable are not snapshotted — the space
    // saving the paper describes.
    if (desc.immutable_keys) continue;
    TDB_ASSIGN_OR_RETURN(
        const GenericIndexer* indexer,
        ct_->store()->FindIndexer(collection_name_, desc.name));
    TDB_ASSIGN_OR_RETURN(std::unique_ptr<GenericKey> key,
                         indexer->ExtractKey(*obj));
    it->second.pre_keys[desc.name] = PickleKey(*key);
  }
  return Status::OK();
}

Status Iterator::RemoveCurrent() {
  TDB_ASSIGN_OR_RETURN(ObjectId oid, CurrentChecked());
  TDB_RETURN_IF_ERROR(CheckWritable());
  TDB_RETURN_IF_ERROR(SnapshotKeys(oid));
  touched_[oid].removed = true;
  return Status::OK();
}

Status Iterator::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  ct_->open_iterators_[coll_oid_]--;
  if (!ct_->active()) return Status::OK();  // Nothing to maintain.

  Status violation = Status::OK();
  for (auto& [oid, info] : touched_) {
    // Resolve indexers once per object.
    std::vector<const GenericIndexer*> indexers;
    for (const IndexDesc& desc : index_descs_) {
      TDB_ASSIGN_OR_RETURN(
          const GenericIndexer* indexer,
          ct_->store()->FindIndexer(collection_name_, desc.name));
      indexers.push_back(indexer);
    }

    if (info.removed) {
      for (size_t i = 0; i < index_descs_.size(); i++) {
        std::unique_ptr<GenericKey> pre;
        if (index_descs_[i].immutable_keys) {
          // No snapshot was taken: the (unchanged) key is recomputed from
          // the cached object.
          TDB_ASSIGN_OR_RETURN(ReadonlyRef<object::Object> doomed,
                               ct_->txn()->OpenReadonly<object::Object>(oid));
          TDB_ASSIGN_OR_RETURN(pre, indexers[i]->ExtractKey(*doomed));
        } else {
          TDB_ASSIGN_OR_RETURN(
              pre,
              UnpickleKey(*indexers[i], info.pre_keys[index_descs_[i].name]));
        }
        Status removed = IndexRemove(ct_->txn(), *indexers[i],
                                     index_descs_[i], *pre, oid);
        if (!removed.ok() && !removed.IsNotFound()) return removed;
      }
      TDB_RETURN_IF_ERROR(ct_->txn()->Remove(oid));
      continue;
    }

    // Updated object: compute post-update keys from the cached version
    // (§5.2.3) and redo only the indexes whose key changed.
    TDB_ASSIGN_OR_RETURN(ReadonlyRef<object::Object> obj,
                         ct_->txn()->OpenReadonly<object::Object>(oid));
    // Track which indexes have been switched to the post key, for undo.
    std::vector<Buffer> post_keys(index_descs_.size());
    std::vector<bool> updated(index_descs_.size(), false);
    Status eject_status = Status::OK();
    size_t failed_index = 0;
    for (size_t i = 0; i < index_descs_.size(); i++) {
      if (index_descs_[i].immutable_keys) continue;  // §5.2.3: no redo.
      TDB_ASSIGN_OR_RETURN(std::unique_ptr<GenericKey> post,
                           indexers[i]->ExtractKey(*obj));
      post_keys[i] = PickleKey(*post);
      const Buffer& pre_bytes = info.pre_keys[index_descs_[i].name];
      if (Slice(post_keys[i]) == Slice(pre_bytes)) continue;  // Unchanged.
      TDB_ASSIGN_OR_RETURN(std::unique_ptr<GenericKey> pre,
                           UnpickleKey(*indexers[i], pre_bytes));
      Status removed = IndexRemove(ct_->txn(), *indexers[i], index_descs_[i],
                                   *pre, oid);
      if (!removed.ok() && !removed.IsNotFound()) return removed;
      Status inserted = IndexInsert(ct_->txn(), *indexers[i],
                                    index_descs_[i], *post, oid);
      if (inserted.IsUniqueViolation()) {
        eject_status = inserted;
        failed_index = i;
        break;
      }
      TDB_RETURN_IF_ERROR(inserted);
      updated[i] = true;
    }

    if (!eject_status.ok()) {
      // §5.2.3: the update created a duplicate key in a unique index. The
      // object is removed from the collection (all indexes) and reported
      // so the application can re-integrate it.
      for (size_t i = 0; i < index_descs_.size(); i++) {
        if (i == failed_index) continue;  // Pre removed, post not inserted.
        std::unique_ptr<GenericKey> key;
        if (index_descs_[i].immutable_keys) {
          TDB_ASSIGN_OR_RETURN(key, indexers[i]->ExtractKey(*obj));
        } else {
          const Buffer& key_bytes =
              updated[i] ? post_keys[i]
                         : info.pre_keys[index_descs_[i].name];
          TDB_ASSIGN_OR_RETURN(key, UnpickleKey(*indexers[i], key_bytes));
        }
        Status removed = IndexRemove(ct_->txn(), *indexers[i],
                                     index_descs_[i], *key, oid);
        if (!removed.ok() && !removed.IsNotFound()) return removed;
      }
      ejected_.push_back(oid);
      violation = eject_status;
    }
  }
  return violation;
}

// ---------------------------------------------------------------------------
// CTransaction

CTransaction::CTransaction(CollectionStore* store)
    : store_(store), txn_(store->object_store()) {}

CTransaction::~CTransaction() {
  if (txn_.active()) txn_.Abort().ok();
}

Result<WritableRef<Collection>> CTransaction::CreateCollection(
    const std::string& name, std::shared_ptr<GenericIndexer> indexer) {
  if (indexer == nullptr) return Status::InvalidArgument("null indexer");
  TDB_ASSIGN_OR_RETURN(
      WritableRef<CollectionDirectory> directory,
      txn_.OpenWritable<CollectionDirectory>(store_->directory_oid()));
  if (directory->collections.count(name)) {
    return Status::AlreadyExists("collection '" + name + "' exists");
  }
  auto collection = std::make_unique<Collection>();
  collection->name_ = name;
  TDB_ASSIGN_OR_RETURN(ObjectId oid, txn_.Insert(std::move(collection)));
  TDB_ASSIGN_OR_RETURN(WritableRef<Collection> ref,
                       txn_.OpenWritable<Collection>(oid));
  ref->self_oid_ = oid;

  IndexDesc desc;
  desc.name = indexer->name();
  desc.kind = indexer->kind();
  desc.unique = indexer->unique();
  desc.immutable_keys = indexer->immutable_keys();
  TDB_ASSIGN_OR_RETURN(desc.root, IndexCreate(&txn_, desc.kind));
  ref->indexes_.push_back(desc);

  directory->collections[name] = oid;
  TDB_RETURN_IF_ERROR(store_->RegisterIndexer(name, std::move(indexer)));
  return ref;
}

Result<ReadonlyRef<Collection>> CTransaction::ReadCollection(
    const std::string& name) {
  TDB_ASSIGN_OR_RETURN(
      ReadonlyRef<CollectionDirectory> directory,
      txn_.OpenReadonly<CollectionDirectory>(store_->directory_oid()));
  auto it = directory->collections.find(name);
  if (it == directory->collections.end()) {
    return Status::NotFound("no collection named '" + name + "'");
  }
  return txn_.OpenReadonly<Collection>(it->second);
}

Result<WritableRef<Collection>> CTransaction::WriteCollection(
    const std::string& name) {
  TDB_ASSIGN_OR_RETURN(
      ReadonlyRef<CollectionDirectory> directory,
      txn_.OpenReadonly<CollectionDirectory>(store_->directory_oid()));
  auto it = directory->collections.find(name);
  if (it == directory->collections.end()) {
    return Status::NotFound("no collection named '" + name + "'");
  }
  return txn_.OpenWritable<Collection>(it->second);
}

Status CTransaction::RemoveCollection(const std::string& name) {
  TDB_ASSIGN_OR_RETURN(
      WritableRef<CollectionDirectory> directory,
      txn_.OpenWritable<CollectionDirectory>(store_->directory_oid()));
  auto it = directory->collections.find(name);
  if (it == directory->collections.end()) {
    return Status::NotFound("no collection named '" + name + "'");
  }
  ObjectId coll_oid = it->second;
  if (open_iterators_[coll_oid] > 0) {
    return Status::InvalidArgument(
        "cannot remove a collection while iterators are open");
  }
  TDB_ASSIGN_OR_RETURN(WritableRef<Collection> collection,
                       txn_.OpenWritable<Collection>(coll_oid));
  // Remove every member object (enumerated via the first index)...
  std::vector<ObjectId> members;
  TDB_RETURN_IF_ERROR(IndexScan(&txn_, collection->indexes_[0], &members));
  for (ObjectId oid : members) {
    TDB_RETURN_IF_ERROR(txn_.Remove(oid));
  }
  // ...then the index structures and the collection itself.
  for (const IndexDesc& desc : collection->indexes_) {
    TDB_RETURN_IF_ERROR(IndexDestroy(&txn_, desc));
  }
  TDB_RETURN_IF_ERROR(txn_.Remove(coll_oid));
  directory->collections.erase(it);
  return Status::OK();
}

Result<std::vector<std::string>> CTransaction::ListCollections() {
  TDB_ASSIGN_OR_RETURN(
      ReadonlyRef<CollectionDirectory> directory,
      txn_.OpenReadonly<CollectionDirectory>(store_->directory_oid()));
  std::vector<std::string> names;
  names.reserve(directory->collections.size());
  for (const auto& [name, _] : directory->collections) {
    names.push_back(name);
  }
  return names;
}

Status CTransaction::Commit(bool durable) {
  for (const auto& [coll, count] : open_iterators_) {
    if (count > 0) {
      return Status::InvalidArgument(
          "cannot commit with open iterators (close them first)");
    }
  }
  return txn_.Commit(durable);
}

Status CTransaction::Abort() { return txn_.Abort(); }

// ---------------------------------------------------------------------------
// CollectionStore

Result<std::unique_ptr<CollectionStore>> CollectionStore::Open(
    object::ObjectStore* objects) {
  std::unique_ptr<CollectionStore> store(new CollectionStore(objects));
  object::ClassRegistry& registry = objects->registry();
  if (!registry.IsRegistered(kCollectionClassId)) {
    TDB_RETURN_IF_ERROR(registry.Register<Collection>(kCollectionClassId));
    TDB_RETURN_IF_ERROR(
        registry.Register<CollectionDirectory>(kDirectoryClassId));
    TDB_RETURN_IF_ERROR(RegisterIndexNodeClasses(&registry));
  }
  TDB_ASSIGN_OR_RETURN(ObjectId directory,
                       objects->GetNamedRoot(kDirectoryRootName));
  if (directory == object::kInvalidObjectId) {
    object::Transaction txn(objects);
    TDB_ASSIGN_OR_RETURN(directory,
                         txn.Insert(std::make_unique<CollectionDirectory>()));
    TDB_RETURN_IF_ERROR(txn.Commit(true));
    TDB_RETURN_IF_ERROR(objects->SetNamedRoot(kDirectoryRootName, directory));
  }
  store->directory_oid_ = directory;
  return store;
}

Status CollectionStore::RegisterIndexer(
    const std::string& collection_name,
    std::shared_ptr<GenericIndexer> indexer) {
  if (indexer == nullptr) return Status::InvalidArgument("null indexer");
  auto key = std::make_pair(collection_name, indexer->name());
  auto it = indexers_.find(key);
  if (it != indexers_.end()) {
    if (it->second->kind() != indexer->kind() ||
        it->second->unique() != indexer->unique() ||
        it->second->immutable_keys() != indexer->immutable_keys()) {
      return Status::InvalidArgument(
          "conflicting indexer registration for '" + indexer->name() + "'");
    }
    it->second = std::move(indexer);  // Refresh the extractor binding.
    return Status::OK();
  }
  indexers_.emplace(std::move(key), std::move(indexer));
  return Status::OK();
}

Result<const GenericIndexer*> CollectionStore::FindIndexer(
    const std::string& collection_name, const std::string& index_name) const {
  auto it = indexers_.find(std::make_pair(collection_name, index_name));
  if (it == indexers_.end()) {
    return Status::NotFound("indexer '" + index_name +
                            "' not registered for collection '" +
                            collection_name +
                            "' (re-register indexers after restart)");
  }
  return it->second.get();
}

}  // namespace tdb::collection
