#ifndef TDB_COLLECTION_LIST_INDEX_H_
#define TDB_COLLECTION_LIST_INDEX_H_

#include <vector>

#include "collection/index_nodes.h"
#include "object/object_store.h"

namespace tdb::collection {

/// List index (§5.2.4): a chain of entry blocks with no ordering. The
/// cheapest index when only scans matter; exact-match and range queries
/// fall back to a linear walk. The head node's id is the index root and is
/// stable.
class ListIndex {
 public:
  static constexpr size_t kBlockEntries = 64;

  static Result<object::ObjectId> Create(object::Transaction* txn);

  static Status Insert(object::Transaction* txn,
                       const GenericIndexer& indexer, object::ObjectId root,
                       const GenericKey& key, object::ObjectId oid);
  static Status Remove(object::Transaction* txn,
                       const GenericIndexer& indexer, object::ObjectId root,
                       const GenericKey& key, object::ObjectId oid);
  static Status Scan(object::Transaction* txn, object::ObjectId root,
                     std::vector<object::ObjectId>* out);
  static Status Match(object::Transaction* txn, const GenericIndexer& indexer,
                      object::ObjectId root, const GenericKey& key,
                      std::vector<object::ObjectId>* out);
  static Status Range(object::Transaction* txn, const GenericIndexer& indexer,
                      object::ObjectId root, const GenericKey* min,
                      const GenericKey* max,
                      std::vector<object::ObjectId>* out);
  static Result<bool> ContainsKey(object::Transaction* txn,
                                  const GenericIndexer& indexer,
                                  object::ObjectId root,
                                  const GenericKey& key);
  static Status Destroy(object::Transaction* txn, object::ObjectId root);
};

}  // namespace tdb::collection

#endif  // TDB_COLLECTION_LIST_INDEX_H_
