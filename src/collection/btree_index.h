#ifndef TDB_COLLECTION_BTREE_INDEX_H_
#define TDB_COLLECTION_BTREE_INDEX_H_

#include <vector>

#include "collection/index_nodes.h"
#include "object/object_store.h"

namespace tdb::collection {

/// B+-tree index over (key, object id) entries (§5.2.4). All data entries
/// live in leaves; internal nodes hold routing separators. Entries are
/// totally ordered by (key, oid), which makes non-unique indexes
/// deterministic and removal exact. The root node's object id is stable
/// for the life of the index.
///
/// All nodes are persistent objects accessed through the caller's
/// transaction, so index updates commit or roll back atomically with the
/// data they index — malicious tampering with an index is detected exactly
/// like tampering with data (§1).
class BTreeIndex {
 public:
  /// Minimum degree t: internal nodes have t..2t children; nodes hold
  /// t-1..2t-1 entries (root exempt from the minimum).
  static constexpr size_t kMinDegree = 8;
  static constexpr size_t kMaxEntries = 2 * kMinDegree - 1;

  /// Creates an empty index; returns the root node's id.
  static Result<object::ObjectId> Create(object::Transaction* txn);

  /// Inserts (key, oid). UniqueViolation if the indexer is unique and the
  /// key is already present under a different oid. Re-inserting an
  /// existing (key, oid) pair is a no-op.
  static Status Insert(object::Transaction* txn,
                       const GenericIndexer& indexer, object::ObjectId root,
                       const GenericKey& key, object::ObjectId oid);

  /// Removes (key, oid); NotFound if absent.
  static Status Remove(object::Transaction* txn,
                       const GenericIndexer& indexer, object::ObjectId root,
                       const GenericKey& key, object::ObjectId oid);

  /// All oids in key order.
  static Status Scan(object::Transaction* txn, object::ObjectId root,
                     std::vector<object::ObjectId>* out);

  /// All oids whose key equals `key`.
  static Status Match(object::Transaction* txn, const GenericIndexer& indexer,
                      object::ObjectId root, const GenericKey& key,
                      std::vector<object::ObjectId>* out);

  /// All oids with min <= key <= max, in key order. Null bounds are
  /// unbounded.
  static Status Range(object::Transaction* txn, const GenericIndexer& indexer,
                      object::ObjectId root, const GenericKey* min,
                      const GenericKey* max,
                      std::vector<object::ObjectId>* out);

  /// True if any entry has this key.
  static Result<bool> ContainsKey(object::Transaction* txn,
                                  const GenericIndexer& indexer,
                                  object::ObjectId root,
                                  const GenericKey& key);

  /// Removes every node object of the index.
  static Status Destroy(object::Transaction* txn, object::ObjectId root);

  /// Test hook: validates tree invariants (ordering, fill factors, depth).
  static Status Validate(object::Transaction* txn,
                         const GenericIndexer& indexer,
                         object::ObjectId root);
};

}  // namespace tdb::collection

#endif  // TDB_COLLECTION_BTREE_INDEX_H_
