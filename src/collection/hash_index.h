#ifndef TDB_COLLECTION_HASH_INDEX_H_
#define TDB_COLLECTION_HASH_INDEX_H_

#include <vector>

#include "collection/index_nodes.h"
#include "object/object_store.h"

namespace tdb::collection {

/// Dynamic hash table index using Larson's linear hashing [20]: the table
/// grows one bucket at a time (splitting the bucket at the split pointer,
/// triggered by bucket overflow), so no global rehash ever happens.
/// The bucket table is paged, so one insert dirties at most a bucket plus —
/// when a split fires — the small root and one table page. Supports scan
/// and exact-match; range queries need an ordered index (B-tree). The
/// directory object's id is the index root and is stable.
class HashIndex {
 public:
  static constexpr uint32_t kInitialBuckets = 4;
  static constexpr size_t kSplitThreshold = 12;  // Bucket overflow trigger.
  static constexpr size_t kBucketsPerPage = 128;

  static Result<object::ObjectId> Create(object::Transaction* txn);

  static Status Insert(object::Transaction* txn,
                       const GenericIndexer& indexer, object::ObjectId root,
                       const GenericKey& key, object::ObjectId oid);
  static Status Remove(object::Transaction* txn,
                       const GenericIndexer& indexer, object::ObjectId root,
                       const GenericKey& key, object::ObjectId oid);
  static Status Scan(object::Transaction* txn, object::ObjectId root,
                     std::vector<object::ObjectId>* out);
  static Status Match(object::Transaction* txn, const GenericIndexer& indexer,
                      object::ObjectId root, const GenericKey& key,
                      std::vector<object::ObjectId>* out);
  static Result<bool> ContainsKey(object::Transaction* txn,
                                  const GenericIndexer& indexer,
                                  object::ObjectId root,
                                  const GenericKey& key);
  static Status Destroy(object::Transaction* txn, object::ObjectId root);
};

}  // namespace tdb::collection

#endif  // TDB_COLLECTION_HASH_INDEX_H_
