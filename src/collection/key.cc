#include "collection/key.h"

#include <cmath>
#include <cstring>

#include "common/check.h"

namespace tdb::collection {

namespace {

// 64-bit FNV-1a over raw bytes; good enough for a single-user embedded DB.
uint64_t HashBytes(const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = 14695981039346656037ull;
  for (size_t i = 0; i < size; i++) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

int IntKey::Compare(const GenericKey& other) const {
  const auto& rhs = static_cast<const IntKey&>(other);
  if (value_ < rhs.value_) return -1;
  if (value_ > rhs.value_) return 1;
  return 0;
}

uint64_t IntKey::Hash() const { return HashBytes(&value_, sizeof(value_)); }

void IntKey::Pickle(object::Pickler* pickler) const {
  pickler->PutInt64(value_);
}

Status IntKey::UnpickleFrom(object::Unpickler* unpickler) {
  return unpickler->GetInt64(&value_);
}

int StringKey::Compare(const GenericKey& other) const {
  const auto& rhs = static_cast<const StringKey&>(other);
  int c = value_.compare(rhs.value_);
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

uint64_t StringKey::Hash() const {
  return HashBytes(value_.data(), value_.size());
}

void StringKey::Pickle(object::Pickler* pickler) const {
  pickler->PutString(value_);
}

Status StringKey::UnpickleFrom(object::Unpickler* unpickler) {
  return unpickler->GetString(&value_);
}

int DoubleKey::Compare(const GenericKey& other) const {
  const auto& rhs = static_cast<const DoubleKey&>(other);
  bool a_nan = std::isnan(value_), b_nan = std::isnan(rhs.value_);
  if (a_nan || b_nan) return a_nan == b_nan ? 0 : (a_nan ? 1 : -1);
  if (value_ < rhs.value_) return -1;
  if (value_ > rhs.value_) return 1;
  return 0;
}

uint64_t DoubleKey::Hash() const {
  // Normalize -0.0 so equal keys hash equally.
  double v = value_ == 0.0 ? 0.0 : value_;
  return HashBytes(&v, sizeof(v));
}

void DoubleKey::Pickle(object::Pickler* pickler) const {
  pickler->PutDouble(value_);
}

Status DoubleKey::UnpickleFrom(object::Unpickler* unpickler) {
  return unpickler->GetDouble(&value_);
}

Buffer PickleKey(const GenericKey& key) {
  object::Pickler pickler;
  key.Pickle(&pickler);
  return pickler.Take();
}

}  // namespace tdb::collection
