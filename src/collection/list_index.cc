#include "collection/list_index.h"

namespace tdb::collection {

namespace {

using object::ObjectId;
using object::ReadonlyRef;
using object::Transaction;
using object::WritableRef;

}  // namespace

Result<ObjectId> ListIndex::Create(Transaction* txn) {
  return txn->Insert(std::make_unique<ListNode>());
}

Status ListIndex::Insert(Transaction* txn, const GenericIndexer& indexer,
                         ObjectId root, const GenericKey& key, ObjectId oid) {
  if (indexer.unique()) {
    TDB_ASSIGN_OR_RETURN(bool present, ContainsKey(txn, indexer, root, key));
    if (present) {
      // Idempotent if the existing entry is ours.
      std::vector<ObjectId> oids;
      TDB_RETURN_IF_ERROR(Match(txn, indexer, root, key, &oids));
      for (ObjectId e : oids) {
        if (e == oid) return Status::OK();
      }
      return Status::UniqueViolation("duplicate key in unique index '" +
                                     indexer.name() + "'");
    }
  } else {
    // Idempotence check for re-inserts of the same (key, oid).
    ObjectId node_id = root;
    while (node_id != object::kInvalidObjectId) {
      TDB_ASSIGN_OR_RETURN(ReadonlyRef<ListNode> node,
                           txn->OpenReadonly<ListNode>(node_id));
      for (const IndexEntry& entry : node->entries) {
        if (entry.oid != oid) continue;
        TDB_ASSIGN_OR_RETURN(int cmp,
                             ComparePickled(indexer, entry.key, key));
        if (cmp == 0) return Status::OK();
      }
      node_id = node->next;
    }
  }

  TDB_ASSIGN_OR_RETURN(WritableRef<ListNode> head,
                       txn->OpenWritable<ListNode>(root));
  if (head->entries.size() >= kBlockEntries) {
    // Spill the head's entries into a new block so the head id stays
    // stable and inserts stay O(1).
    auto spill = std::make_unique<ListNode>();
    spill->entries = std::move(head->entries);
    spill->next = head->next;
    TDB_ASSIGN_OR_RETURN(ObjectId spill_id, txn->Insert(std::move(spill)));
    head->entries.clear();
    head->next = spill_id;
  }
  IndexEntry entry;
  entry.key = PickleKey(key);
  entry.oid = oid;
  head->entries.push_back(std::move(entry));
  return Status::OK();
}

Status ListIndex::Remove(Transaction* txn, const GenericIndexer& indexer,
                         ObjectId root, const GenericKey& key, ObjectId oid) {
  ObjectId node_id = root;
  while (node_id != object::kInvalidObjectId) {
    ObjectId next;
    {
      TDB_ASSIGN_OR_RETURN(ReadonlyRef<ListNode> peek,
                           txn->OpenReadonly<ListNode>(node_id));
      next = peek->next;
      bool found = false;
      for (const IndexEntry& entry : peek->entries) {
        if (entry.oid != oid) continue;
        TDB_ASSIGN_OR_RETURN(int cmp,
                             ComparePickled(indexer, entry.key, key));
        if (cmp == 0) {
          found = true;
          break;
        }
      }
      if (!found) {
        node_id = next;
        continue;
      }
    }
    TDB_ASSIGN_OR_RETURN(WritableRef<ListNode> node,
                         txn->OpenWritable<ListNode>(node_id));
    for (size_t i = 0; i < node->entries.size(); i++) {
      if (node->entries[i].oid != oid) continue;
      TDB_ASSIGN_OR_RETURN(int cmp,
                           ComparePickled(indexer, node->entries[i].key, key));
      if (cmp == 0) {
        node->entries.erase(node->entries.begin() + i);
        return Status::OK();
      }
    }
    node_id = next;
  }
  return Status::NotFound("index entry not found");
}

Status ListIndex::Scan(Transaction* txn, ObjectId root,
                       std::vector<ObjectId>* out) {
  ObjectId node_id = root;
  while (node_id != object::kInvalidObjectId) {
    TDB_ASSIGN_OR_RETURN(ReadonlyRef<ListNode> node,
                         txn->OpenReadonly<ListNode>(node_id));
    for (const IndexEntry& entry : node->entries) out->push_back(entry.oid);
    node_id = node->next;
  }
  return Status::OK();
}

Status ListIndex::Match(Transaction* txn, const GenericIndexer& indexer,
                        ObjectId root, const GenericKey& key,
                        std::vector<ObjectId>* out) {
  return Range(txn, indexer, root, &key, &key, out);
}

Status ListIndex::Range(Transaction* txn, const GenericIndexer& indexer,
                        ObjectId root, const GenericKey* min,
                        const GenericKey* max,
                        std::vector<ObjectId>* out) {
  ObjectId node_id = root;
  while (node_id != object::kInvalidObjectId) {
    TDB_ASSIGN_OR_RETURN(ReadonlyRef<ListNode> node,
                         txn->OpenReadonly<ListNode>(node_id));
    for (const IndexEntry& entry : node->entries) {
      if (min != nullptr) {
        TDB_ASSIGN_OR_RETURN(int cmp, ComparePickled(indexer, entry.key, *min));
        if (cmp < 0) continue;
      }
      if (max != nullptr) {
        TDB_ASSIGN_OR_RETURN(int cmp, ComparePickled(indexer, entry.key, *max));
        if (cmp > 0) continue;
      }
      out->push_back(entry.oid);
    }
    node_id = node->next;
  }
  return Status::OK();
}

Result<bool> ListIndex::ContainsKey(Transaction* txn,
                                    const GenericIndexer& indexer,
                                    ObjectId root, const GenericKey& key) {
  std::vector<ObjectId> oids;
  TDB_RETURN_IF_ERROR(Match(txn, indexer, root, key, &oids));
  return !oids.empty();
}

Status ListIndex::Destroy(Transaction* txn, ObjectId root) {
  ObjectId node_id = root;
  while (node_id != object::kInvalidObjectId) {
    ObjectId next;
    {
      TDB_ASSIGN_OR_RETURN(ReadonlyRef<ListNode> node,
                           txn->OpenReadonly<ListNode>(node_id));
      next = node->next;
    }
    TDB_RETURN_IF_ERROR(txn->Remove(node_id));
    node_id = next;
  }
  return Status::OK();
}

}  // namespace tdb::collection
