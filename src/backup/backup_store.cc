#include "backup/backup_store.h"

#include "common/check.h"
#include "common/coding.h"
#include "common/trace.h"
#include "crypto/hmac.h"

namespace tdb::backup {

namespace {

constexpr uint32_t kBackupMagic = 0x54424B50;  // "TBKP"
constexpr uint8_t kVersion = 1;
constexpr uint8_t kKindFull = 1;
constexpr uint8_t kKindIncremental = 2;

using chunk::ChunkId;

}  // namespace

Result<std::unique_ptr<BackupStore>> BackupStore::Open(
    chunk::ChunkStore* chunks, platform::ArchivalStore* archive,
    platform::SecretStore* secrets, const crypto::SecurityConfig& security) {
  Buffer secret;
  if (security.enabled) {
    TDB_ASSIGN_OR_RETURN(secret, secrets->GetSecret());
  }
  crypto::CipherSuite suite(security, secret, Slice("tdb-backup-iv"));
  return std::unique_ptr<BackupStore>(
      new BackupStore(chunks, archive, std::move(suite)));
}

BackupStore::BackupStore(chunk::ChunkStore* chunks,
                         platform::ArchivalStore* archive,
                         crypto::CipherSuite suite)
    : chunks_(chunks), archive_(archive), suite_(std::move(suite)) {
  common::MetricsRegistry* r = chunks_->metrics().get();
  m_.fulls = r->GetCounter("backup.fulls");
  m_.incrementals = r->GetCounter("backup.incrementals");
  m_.chunks_written = r->GetCounter("backup.chunks_written");
  m_.bytes_written = r->GetCounter("backup.bytes_written");
  m_.restores = r->GetCounter("backup.restores");
  m_.chunks_restored = r->GetCounter("backup.chunks_restored");
  m_.create_latency_us = r->GetHistogram("backup.create.latency_us");
}

Result<BackupInfo> BackupStore::CreateFull(const std::string& archive_name) {
  return Create(archive_name, /*full=*/true);
}

Result<BackupInfo> BackupStore::CreateIncremental(
    const std::string& archive_name) {
  if (!has_lineage_) {
    return Status::InvalidArgument(
        "no prior backup in this session; create a full backup first");
  }
  return Create(archive_name, /*full=*/false);
}

Result<BackupInfo> BackupStore::Create(const std::string& archive_name,
                                       bool full) {
  common::TraceSpan span("backup.create");
  common::ScopedTimer timer(chunks_->metrics().get(), m_.create_latency_us);
  TDB_ASSIGN_OR_RETURN(std::shared_ptr<chunk::Snapshot> snap,
                       chunks_->CreateSnapshot());

  // Leaf table of the snapshot: cid -> (hash, loc).
  std::map<ChunkId, ChunkState> current;
  TDB_RETURN_IF_ERROR(chunks_->ForEachChunkAt(
      *snap, [&](ChunkId cid, const chunk::MapEntry& entry) {
        current[cid] = ChunkState{entry.hash, entry.loc};
        return Status::OK();
      }));

  // Select the chunk states to carry and the removals.
  std::vector<ChunkId> to_write;
  std::vector<ChunkId> removed;
  if (full) {
    for (const auto& [cid, _] : current) to_write.push_back(cid);
  } else {
    for (const auto& [cid, state] : current) {
      auto it = last_table_.find(cid);
      bool unchanged =
          it != last_table_.end() &&
          (suite_.enabled() ? it->second.hash == state.hash
                            : it->second.loc == state.loc);
      if (!unchanged) to_write.push_back(cid);
    }
    for (const auto& [cid, _] : last_table_) {
      if (!current.count(cid)) removed.push_back(cid);
    }
  }

  // Serialize.
  Buffer body;
  PutFixed32(&body, kBackupMagic);
  body.push_back(kVersion);
  body.push_back(full ? kKindFull : kKindIncremental);
  uint64_t seq = full ? 0 : next_seq_;
  PutVarint64(&body, seq);
  // prev_mac is fixed-width (hash_size bytes): zeros for a full backup.
  if (full) {
    Buffer zeros(suite_.hash_size(), 0);
    chunk::PutDigest(&body, crypto::Digest(zeros.data(), zeros.size()));
  } else {
    chunk::PutDigest(&body, last_mac_);
  }
  PutVarint64(&body, to_write.size());
  PutVarint64(&body, removed.size());
  for (ChunkId cid : to_write) {
    TDB_ASSIGN_OR_RETURN(Buffer plain, chunks_->ReadAtSnapshot(*snap, cid));
    Buffer sealed = suite_.Seal(plain);
    PutVarint64(&body, cid);
    PutLengthPrefixed(&body, sealed);
  }
  for (ChunkId cid : removed) PutVarint64(&body, cid);

  crypto::Digest mac = suite_.Mac(body);
  Buffer trailer;
  PutFixed32(&trailer, Checksum32(body));
  chunk::PutDigest(&trailer, mac);

  TDB_ASSIGN_OR_RETURN(std::unique_ptr<platform::ArchiveWriter> writer,
                       archive_->NewArchive(archive_name));
  TDB_RETURN_IF_ERROR(writer->Append(body));
  TDB_RETURN_IF_ERROR(writer->Append(trailer));
  TDB_RETURN_IF_ERROR(writer->Close());

  // Advance the lineage only after the archive is safely written.
  has_lineage_ = true;
  next_seq_ = seq + 1;
  last_mac_ = mac;
  last_table_ = std::move(current);

  BackupInfo info;
  info.seq = seq;
  info.chunks = to_write.size();
  info.removed = removed.size();
  info.bytes = body.size() + trailer.size();
  (full ? m_.fulls : m_.incrementals)->Increment();
  m_.chunks_written->Add(static_cast<int64_t>(info.chunks));
  m_.bytes_written->Add(static_cast<int64_t>(info.bytes));
  return info;
}

Status BackupStore::Restore(const std::vector<std::string>& archive_names,
                            chunk::ChunkStore* target) {
  if (archive_names.empty()) {
    return Status::InvalidArgument("no archives to restore");
  }

  // Phase 1: read and validate the whole chain before touching `target`
  // ("the backup store restores only valid backups", §2).
  struct ParsedBackup {
    uint8_t kind;
    uint64_t seq;
    crypto::Digest prev_mac;
    crypto::Digest mac;
    std::vector<std::pair<ChunkId, Buffer>> writes;  // Plaintext.
    std::vector<ChunkId> removed;
  };
  std::vector<ParsedBackup> parsed;
  for (const std::string& name : archive_names) {
    TDB_ASSIGN_OR_RETURN(std::unique_ptr<platform::ArchiveReader> reader,
                         archive_->OpenArchive(name));
    const size_t trailer_size = 4 + suite_.hash_size();
    uint64_t total = reader->remaining();
    if (total < trailer_size) {
      return Status::TamperDetected("backup archive truncated: " + name);
    }
    Buffer body, trailer;
    TDB_RETURN_IF_ERROR(reader->Read(total - trailer_size, &body));
    TDB_RETURN_IF_ERROR(reader->Read(trailer_size, &trailer));

    common::AuditLog& audit = chunks_->metrics()->audit();
    Decoder tdec{Slice(trailer)};
    uint32_t cksum;
    TDB_RETURN_IF_ERROR(tdec.GetFixed32(&cksum));
    if (Checksum32(body) != cksum) {
      audit.Record("backup_tamper", common::kRegionUnknown, name,
                   "backup checksum mismatch");
      return Status::TamperDetected("backup checksum mismatch: " + name);
    }
    crypto::Digest mac;
    TDB_RETURN_IF_ERROR(chunk::GetDigest(&tdec, suite_.hash_size(), &mac));
    if (suite_.enabled() && mac != suite_.Mac(body)) {
      audit.Record("backup_tamper", common::kRegionUnknown, name,
                   "backup MAC invalid");
      return Status::TamperDetected("backup MAC invalid: " + name);
    }

    ParsedBackup backup;
    backup.mac = mac;
    Decoder dec{Slice(body)};
    uint32_t magic;
    TDB_RETURN_IF_ERROR(dec.GetFixed32(&magic));
    if (magic != kBackupMagic) {
      return Status::Corruption("not a backup archive: " + name);
    }
    Slice version, kind;
    TDB_RETURN_IF_ERROR(dec.GetBytes(1, &version));
    if (version[0] != kVersion) {
      return Status::Corruption("unsupported backup version");
    }
    TDB_RETURN_IF_ERROR(dec.GetBytes(1, &kind));
    backup.kind = kind[0];
    TDB_RETURN_IF_ERROR(dec.GetVarint64(&backup.seq));
    TDB_RETURN_IF_ERROR(
        chunk::GetDigest(&dec, suite_.hash_size(), &backup.prev_mac));
    uint64_t n_chunks, n_removed;
    TDB_RETURN_IF_ERROR(dec.GetVarint64(&n_chunks));
    TDB_RETURN_IF_ERROR(dec.GetVarint64(&n_removed));
    for (uint64_t i = 0; i < n_chunks; i++) {
      ChunkId cid;
      TDB_RETURN_IF_ERROR(dec.GetVarint64(&cid));
      Slice sealed;
      TDB_RETURN_IF_ERROR(dec.GetLengthPrefixed(&sealed));
      auto plain = suite_.Open(sealed);
      if (!plain.ok()) {
        audit.Record("backup_tamper", common::kRegionUnknown, name,
                     "backup chunk decryption failed");
        return Status::TamperDetected("backup chunk decryption failed");
      }
      backup.writes.push_back({cid, std::move(plain).value()});
    }
    for (uint64_t i = 0; i < n_removed; i++) {
      ChunkId cid;
      TDB_RETURN_IF_ERROR(dec.GetVarint64(&cid));
      backup.removed.push_back(cid);
    }
    if (!dec.done()) {
      return Status::Corruption("trailing bytes in backup: " + name);
    }
    parsed.push_back(std::move(backup));
  }

  // Chain validation: full first, then consecutive incrementals each
  // MAC-linked to its predecessor.
  if (parsed[0].kind != kKindFull || parsed[0].seq != 0) {
    return Status::InvalidArgument("restore chain must start with a full backup");
  }
  for (size_t i = 1; i < parsed.size(); i++) {
    if (parsed[i].kind != kKindIncremental) {
      return Status::InvalidArgument("full backup in the middle of a chain");
    }
    if (parsed[i].seq != parsed[i - 1].seq + 1) {
      return Status::InvalidArgument("incremental backups out of sequence");
    }
    if (suite_.enabled() && parsed[i].prev_mac != parsed[i - 1].mac) {
      chunks_->metrics()->audit().Record(
          "backup_tamper", common::kRegionUnknown, archive_names[i],
          "incremental does not chain to its predecessor");
      return Status::TamperDetected(
          "incremental does not chain to its predecessor");
    }
  }

  // Phase 2: apply, one durable commit per backup. When `target` is null
  // (Verify), validation alone was the point.
  if (target == nullptr) return Status::OK();
  common::TraceSpan span("backup.restore");
  for (const ParsedBackup& backup : parsed) {
    chunk::WriteBatch batch;
    for (const auto& [cid, plain] : backup.writes) batch.Write(cid, plain);
    for (ChunkId cid : backup.removed) batch.Deallocate(cid);
    if (!batch.empty()) {
      TDB_RETURN_IF_ERROR(target->Commit(batch, /*durable=*/true));
    }
    m_.chunks_restored->Add(static_cast<int64_t>(backup.writes.size()));
  }
  m_.restores->Increment();
  return Status::OK();
}

Status BackupStore::Verify(const std::vector<std::string>& archive_names) {
  return Restore(archive_names, /*target=*/nullptr);
}

}  // namespace tdb::backup
