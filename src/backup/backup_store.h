#ifndef TDB_BACKUP_BACKUP_STORE_H_
#define TDB_BACKUP_BACKUP_STORE_H_

#include <map>
#include <string>
#include <vector>

#include "chunk/chunk_store.h"
#include "common/result.h"
#include "crypto/cipher_suite.h"
#include "platform/archival_store.h"
#include "platform/secret_store.h"

namespace tdb::backup {

/// Summary of a created backup.
struct BackupInfo {
  uint64_t seq = 0;        // 0 for a full backup, then 1, 2, ... .
  uint64_t chunks = 0;     // Chunk states carried in this backup.
  uint64_t removed = 0;    // Deallocations carried (incrementals only).
  uint64_t bytes = 0;      // Archive size.
};

/// The paper's backup store (§2, [23]): creates full and incremental
/// backups from chunk-store snapshots and restores only valid backups, in
/// the same sequence as they were created.
///
/// Archives live in the (attacker-controlled) archival store, so every
/// chunk payload is re-encrypted into the archive and the whole archive is
/// MACed. Incrementals chain to their predecessor by MAC, which is what
/// enforces restore ordering: a reordered, truncated, or substituted chain
/// fails validation.
///
/// Incrementals are computed by comparing the new snapshot's leaf table
/// against the previous backup's (recorded at backup time), so the previous
/// snapshot handle can be released and log cleaning is not blocked between
/// backups. The first backup in a process must be full.
class BackupStore {
 public:
  /// None of the pointers are owned; all must outlive this object. Fails if
  /// `security` is enabled and no secret is provisioned.
  static Result<std::unique_ptr<BackupStore>> Open(
      chunk::ChunkStore* chunks, platform::ArchivalStore* archive,
      platform::SecretStore* secrets,
      const crypto::SecurityConfig& security);

  /// Snapshots the database and writes a complete copy.
  Result<BackupInfo> CreateFull(const std::string& archive_name);

  /// Writes only chunks added/changed since the previous backup, plus the
  /// ids removed since then. InvalidArgument if no prior backup exists in
  /// this session.
  Result<BackupInfo> CreateIncremental(const std::string& archive_name);

  /// Restores the given chain (one full backup followed by its
  /// incrementals, in creation order) into `target`. Validates every
  /// archive's integrity and the chain linkage before applying anything;
  /// a tampered or mis-sequenced chain restores nothing.
  Status Restore(const std::vector<std::string>& archive_names,
                 chunk::ChunkStore* target);

  /// Validates a chain (integrity of every archive + linkage/ordering)
  /// without applying anything — for verifying staged backups before
  /// shipping them to a remote server.
  Status Verify(const std::vector<std::string>& archive_names);

 private:
  struct ChunkState {
    crypto::Digest hash;
    chunk::Location loc;
  };

  BackupStore(chunk::ChunkStore* chunks, platform::ArchivalStore* archive,
              crypto::CipherSuite suite);

  Result<BackupInfo> Create(const std::string& archive_name, bool full);

  // Registry-backed instruments (on the chunk store's shared registry).
  struct Instruments {
    common::Counter* fulls = nullptr;
    common::Counter* incrementals = nullptr;
    common::Counter* chunks_written = nullptr;
    common::Counter* bytes_written = nullptr;
    common::Counter* restores = nullptr;
    common::Counter* chunks_restored = nullptr;
    common::Histogram* create_latency_us = nullptr;
  };

  chunk::ChunkStore* chunks_;
  platform::ArchivalStore* archive_;
  crypto::CipherSuite suite_;
  Instruments m_;

  bool has_lineage_ = false;
  uint64_t next_seq_ = 0;
  crypto::Digest last_mac_;
  std::map<chunk::ChunkId, ChunkState> last_table_;
};

}  // namespace tdb::backup

#endif  // TDB_BACKUP_BACKUP_STORE_H_
