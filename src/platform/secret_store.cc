#include "platform/secret_store.h"

#include <cstdio>

namespace tdb::platform {

Result<Buffer> FileSecretStore::GetSecret() const {
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("secret not provisioned");
  Buffer secret;
  uint8_t buf[256];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    secret.insert(secret.end(), buf, buf + n);
  }
  std::fclose(f);
  if (secret.empty()) return Status::NotFound("secret not provisioned");
  return secret;
}

Status FileSecretStore::Provision(Slice secret) {
  if (secret.empty()) return Status::InvalidArgument("empty secret");
  if (std::FILE* existing = std::fopen(path_.c_str(), "rb")) {
    std::fclose(existing);
    return Status::AlreadyExists("already provisioned");
  }
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot create " + path_);
  size_t written = std::fwrite(secret.data(), 1, secret.size(), f);
  std::fclose(f);
  if (written != secret.size()) return Status::IOError("short write");
  return Status::OK();
}

}  // namespace tdb::platform
