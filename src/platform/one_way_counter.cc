#include "platform/one_way_counter.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/coding.h"

namespace tdb::platform {

FileOneWayCounter::FileOneWayCounter(std::string path, bool sync)
    : path_(std::move(path)), sync_(sync) {}

Result<uint64_t> FileOneWayCounter::Read() const {
  int fd = ::open(path_.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return static_cast<uint64_t>(0);
    return Status::IOError("open counter: " + std::string(strerror(errno)));
  }
  uint8_t buf[8];
  ssize_t n = ::pread(fd, buf, sizeof(buf), 0);
  ::close(fd);
  if (n == 0) return static_cast<uint64_t>(0);
  if (n != 8) return Status::IOError("short counter read");
  return DecodeFixed64(buf);
}

Result<uint64_t> FileOneWayCounter::Increment() {
  TDB_ASSIGN_OR_RETURN(uint64_t current, Read());
  uint64_t next = current + 1;
  int fd = ::open(path_.c_str(), O_CREAT | O_WRONLY, 0644);
  if (fd < 0) {
    return Status::IOError("open counter: " + std::string(strerror(errno)));
  }
  Buffer enc;
  PutFixed64(&enc, next);
  ssize_t w = ::pwrite(fd, enc.data(), enc.size(), 0);
  if (w != 8) {
    ::close(fd);
    return Status::IOError("short counter write");
  }
  if (sync_ && ::fsync(fd) != 0) {
    ::close(fd);
    return Status::IOError("counter fsync failed");
  }
  ::close(fd);
  return next;
}

}  // namespace tdb::platform
