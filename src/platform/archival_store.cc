#include "platform/archival_store.h"

#include <cstdio>
#include <filesystem>

namespace tdb::platform {

namespace {

class MemWriter final : public ArchiveWriter {
 public:
  MemWriter(std::map<std::string, Buffer>* archives, std::string name)
      : archives_(archives), name_(std::move(name)) {}

  Status Append(Slice data) override {
    if (closed_) return Status::InvalidArgument("archive closed");
    staged_.insert(staged_.end(), data.data(), data.data() + data.size());
    return Status::OK();
  }

  Status Close() override {
    if (closed_) return Status::InvalidArgument("archive closed");
    closed_ = true;
    (*archives_)[name_] = std::move(staged_);
    return Status::OK();
  }

 private:
  std::map<std::string, Buffer>* archives_;
  std::string name_;
  Buffer staged_;
  bool closed_ = false;
};

class MemReader final : public ArchiveReader {
 public:
  explicit MemReader(Buffer data) : data_(std::move(data)) {}

  Status Read(size_t n, Buffer* out) override {
    if (pos_ + n > data_.size()) {
      return Status::Corruption("archive truncated");
    }
    out->assign(data_.begin() + pos_, data_.begin() + pos_ + n);
    pos_ += n;
    return Status::OK();
  }

  uint64_t remaining() const override { return data_.size() - pos_; }

 private:
  Buffer data_;
  size_t pos_ = 0;
};

class FileWriter final : public ArchiveWriter {
 public:
  explicit FileWriter(std::FILE* f) : f_(f) {}
  ~FileWriter() override {
    if (f_ != nullptr) std::fclose(f_);
  }

  Status Append(Slice data) override {
    if (f_ == nullptr) return Status::InvalidArgument("archive closed");
    if (std::fwrite(data.data(), 1, data.size(), f_) != data.size()) {
      return Status::IOError("archive write failed");
    }
    return Status::OK();
  }

  Status Close() override {
    if (f_ == nullptr) return Status::InvalidArgument("archive closed");
    int rc = std::fclose(f_);
    f_ = nullptr;
    return rc == 0 ? Status::OK() : Status::IOError("archive close failed");
  }

 private:
  std::FILE* f_;
};

}  // namespace

Result<std::unique_ptr<ArchiveWriter>> MemArchivalStore::NewArchive(
    const std::string& name) {
  return std::unique_ptr<ArchiveWriter>(new MemWriter(&archives_, name));
}

Result<std::unique_ptr<ArchiveReader>> MemArchivalStore::OpenArchive(
    const std::string& name) const {
  auto it = archives_.find(name);
  if (it == archives_.end()) return Status::NotFound("no archive: " + name);
  return std::unique_ptr<ArchiveReader>(new MemReader(it->second));
}

Status MemArchivalStore::RemoveArchive(const std::string& name) {
  if (archives_.erase(name) == 0) {
    return Status::NotFound("no archive: " + name);
  }
  return Status::OK();
}

std::vector<std::string> MemArchivalStore::ListArchives() const {
  std::vector<std::string> names;
  for (const auto& [name, _] : archives_) names.push_back(name);
  return names;
}

Status MemArchivalStore::CorruptByte(const std::string& name, uint64_t offset,
                                     uint8_t mask) {
  auto it = archives_.find(name);
  if (it == archives_.end()) return Status::NotFound("no archive: " + name);
  if (offset >= it->second.size()) {
    return Status::InvalidArgument("offset past end");
  }
  it->second[offset] ^= mask;
  return Status::OK();
}

Result<uint64_t> MemArchivalStore::ArchiveSize(const std::string& name) const {
  auto it = archives_.find(name);
  if (it == archives_.end()) return Status::NotFound("no archive: " + name);
  return static_cast<uint64_t>(it->second.size());
}

FileArchivalStore::FileArchivalStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
}

Result<std::unique_ptr<ArchiveWriter>> FileArchivalStore::NewArchive(
    const std::string& name) {
  std::FILE* f = std::fopen((dir_ + "/" + name).c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot create archive " + name);
  return std::unique_ptr<ArchiveWriter>(new FileWriter(f));
}

Result<std::unique_ptr<ArchiveReader>> FileArchivalStore::OpenArchive(
    const std::string& name) const {
  std::FILE* f = std::fopen((dir_ + "/" + name).c_str(), "rb");
  if (f == nullptr) return Status::NotFound("no archive: " + name);
  Buffer data;
  uint8_t buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.insert(data.end(), buf, buf + n);
  }
  std::fclose(f);
  return std::unique_ptr<ArchiveReader>(new MemReader(std::move(data)));
}

Status FileArchivalStore::RemoveArchive(const std::string& name) {
  std::error_code ec;
  if (!std::filesystem::remove(dir_ + "/" + name, ec)) {
    return Status::NotFound("no archive: " + name);
  }
  return Status::OK();
}

std::vector<std::string> FileArchivalStore::ListArchives() const {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (entry.is_regular_file()) names.push_back(entry.path().filename());
  }
  return names;
}

}  // namespace tdb::platform
