#ifndef TDB_PLATFORM_UNTRUSTED_STORE_H_
#define TDB_PLATFORM_UNTRUSTED_STORE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"

namespace tdb::platform {

/// The paper's "untrusted store": a file-system-like interface over a
/// random-access storage system (flash RAM, hard disk). THREAT MODEL: an
/// attacker can arbitrarily read and modify everything behind this
/// interface, online or offline — nothing here is trusted. The chunk store
/// layers secrecy (encryption) and tamper detection (Merkle tree + anchor)
/// on top.
///
/// Files are flat-named byte arrays. Writes beyond the current end extend
/// the file (zero-filling any gap).
class UntrustedStore {
 public:
  virtual ~UntrustedStore() = default;

  /// Creates an empty file. AlreadyExists if present and !overwrite.
  virtual Status Create(const std::string& name, bool overwrite) = 0;
  virtual Status Remove(const std::string& name) = 0;
  virtual bool Exists(const std::string& name) const = 0;

  /// Reads exactly n bytes at offset into *out (resized). Corruption if the
  /// range extends past end-of-file.
  virtual Status Read(const std::string& name, uint64_t offset, size_t n,
                      Buffer* out) const = 0;
  virtual Status Write(const std::string& name, uint64_t offset,
                       Slice data) = 0;
  virtual Result<uint64_t> Size(const std::string& name) const = 0;
  virtual Status Truncate(const std::string& name, uint64_t size) = 0;

  /// Forces buffered writes of `name` to stable storage.
  virtual Status Sync(const std::string& name) = 0;

  virtual std::vector<std::string> List() const = 0;
};

}  // namespace tdb::platform

#endif  // TDB_PLATFORM_UNTRUSTED_STORE_H_
