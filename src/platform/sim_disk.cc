#include "platform/sim_disk.h"

#include "common/coding.h"

namespace tdb::platform {

uint64_t SectorAtomicTornLength(uint64_t offset, uint64_t write_len,
                                uint64_t requested, uint32_t sector_bytes) {
  if (requested >= write_len) return write_len;
  if (sector_bytes == 0) return requested;
  // The persisted prefix ends at the highest absolute sector boundary not
  // past offset+requested; anything short of a full sector is lost.
  uint64_t boundary = (offset + requested) / sector_bytes * sector_bytes;
  return boundary <= offset ? 0 : boundary - offset;
}

Result<uint64_t> StoreBackedCounter::Read() const {
  if (!store_->Exists(file_)) return static_cast<uint64_t>(0);
  Buffer bytes;
  TDB_RETURN_IF_ERROR(store_->Read(file_, 0, 8, &bytes));
  return DecodeFixed64(bytes.data());
}

Result<uint64_t> StoreBackedCounter::Increment() {
  TDB_ASSIGN_OR_RETURN(uint64_t current, Read());
  if (!store_->Exists(file_)) {
    TDB_RETURN_IF_ERROR(store_->Create(file_, false));
  }
  uint64_t next = current + 1;
  Buffer enc;
  PutFixed64(&enc, next);
  TDB_RETURN_IF_ERROR(store_->Write(file_, 0, enc));
  TDB_RETURN_IF_ERROR(store_->Sync(file_));
  return next;
}

}  // namespace tdb::platform
