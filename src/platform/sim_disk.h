#ifndef TDB_PLATFORM_SIM_DISK_H_
#define TDB_PLATFORM_SIM_DISK_H_

#include <cstdint>
#include <string>

#include "platform/one_way_counter.h"
#include "platform/untrusted_store.h"

namespace tdb::platform {

/// Latency model of a circa-2001 EIDE disk opened WRITE_THROUGH (the
/// paper's evaluation platform, §7.2: 8.9/10.9 ms seeks, 7200 rpm ->
/// 4.2 ms average rotational latency). Writes are charged synchronously:
///   cost = (reposition if the write is not physically contiguous with the
///           previous one) + half a rotation + transfer time.
/// Reads are free: both the paper's systems and ours run with warm OS/file
/// caches, and the paper identifies writes as the bottleneck ("the primary
/// performance bottleneck then becomes writes", §3.2.1).
/// Disk sector size assumed by the crash model: the hardware commits whole
/// sectors atomically and in order, so a power failure can only tear an
/// in-flight write at a sector boundary.
inline constexpr uint32_t kDefaultSectorBytes = 512;

struct DiskModel {
  double reposition_ms = 1.0;   // Short seek between nearby files/extents.
  double rotational_ms = 4.2;   // Average rotational latency (7200 rpm).
  double bandwidth_mb_s = 20.0; // Media transfer rate.
  uint32_t sector_bytes = kDefaultSectorBytes;  // Atomic-write unit.
};

/// Length of the prefix of a write at [offset, offset+write_len) that
/// survives a crash when the disk had persisted `requested` bytes of it so
/// far. The disk commits whole sectors in order, so the surviving prefix
/// must end on an absolute sector boundary unless the whole write landed:
/// the requested length is rounded *down* so the tear never splits a
/// sector. Returns a value in [0, write_len].
uint64_t SectorAtomicTornLength(uint64_t offset, uint64_t write_len,
                                uint64_t requested,
                                uint32_t sector_bytes = kDefaultSectorBytes);

/// Wraps any UntrustedStore and accumulates simulated I/O time in a
/// virtual clock instead of sleeping. Benchmarks add the virtual time to
/// measured CPU time to report disk-era response times.
class SimulatedDiskStore final : public UntrustedStore {
 public:
  explicit SimulatedDiskStore(UntrustedStore* base, DiskModel model = {})
      : base_(base), model_(model) {}

  double simulated_seconds() const { return simulated_ms_ / 1000.0; }
  void ResetClock() { simulated_ms_ = 0; }

  // UntrustedStore:
  Status Create(const std::string& name, bool overwrite) override {
    return base_->Create(name, overwrite);
  }
  Status Remove(const std::string& name) override {
    return base_->Remove(name);
  }
  bool Exists(const std::string& name) const override {
    return base_->Exists(name);
  }
  Status Read(const std::string& name, uint64_t offset, size_t n,
              Buffer* out) const override {
    return base_->Read(name, offset, n, out);
  }
  Status Write(const std::string& name, uint64_t offset,
               Slice data) override {
    ChargeWrite(name, offset, data.size());
    return base_->Write(name, offset, data);
  }
  Result<uint64_t> Size(const std::string& name) const override {
    return base_->Size(name);
  }
  Status Truncate(const std::string& name, uint64_t size) override {
    return base_->Truncate(name, size);
  }
  Status Sync(const std::string& name) override {
    return base_->Sync(name);  // WRITE_THROUGH: cost already charged.
  }
  std::vector<std::string> List() const override { return base_->List(); }

 private:
  void ChargeWrite(const std::string& name, uint64_t offset, size_t bytes) {
    bool sequential = (name == last_file_) && (offset == last_end_);
    if (!sequential) simulated_ms_ += model_.reposition_ms;
    simulated_ms_ += model_.rotational_ms / 2.0;
    simulated_ms_ +=
        bytes / (model_.bandwidth_mb_s * 1024.0 * 1024.0) * 1000.0;
    last_file_ = name;
    last_end_ = offset + bytes;
  }

  UntrustedStore* base_;
  DiskModel model_;
  double simulated_ms_ = 0;
  std::string last_file_;
  uint64_t last_end_ = 0;
};

/// One-way counter stored as a file in an (optionally simulated)
/// untrusted-store — exactly the paper's emulation ("the one-way counter
/// was emulated as a file", §7.2), so TDB-S pays the extra per-transaction
/// counter write the paper measures.
class StoreBackedCounter final : public OneWayCounter {
 public:
  explicit StoreBackedCounter(UntrustedStore* store,
                              std::string file = "one-way-counter")
      : store_(store), file_(std::move(file)) {}

  Result<uint64_t> Read() const override;
  Result<uint64_t> Increment() override;

 private:
  UntrustedStore* store_;
  std::string file_;
};

}  // namespace tdb::platform

#endif  // TDB_PLATFORM_SIM_DISK_H_
