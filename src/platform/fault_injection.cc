#include "platform/fault_injection.h"

namespace tdb::platform {

Status FaultInjectingStore::Write(const std::string& name, uint64_t offset,
                                  Slice data) {
  if (crashed_) return Status::IOError("simulated crash");
  if (armed_ && !crash_on_sync_) {
    if (writes_until_crash_ == 0) {
      crashed_ = true;
      // Torn write: apply a pseudo-random prefix of the final write, which
      // models a sector-aligned partial flush.
      size_t torn = static_cast<size_t>(rng_.Uniform(data.size() + 1));
      if (torn > 0) {
        Status s = base_->Write(name, offset, Slice(data.data(), torn));
        (void)s;  // The caller sees the crash either way.
      }
      return Status::IOError("simulated crash (torn write)");
    }
    writes_until_crash_--;
  }
  return base_->Write(name, offset, data);
}

Status FaultInjectingStore::Sync(const std::string& name) {
  if (crashed_) return Status::IOError("simulated crash");
  if (armed_ && crash_on_sync_) {
    crashed_ = true;
    return Status::IOError("simulated crash (at sync)");
  }
  return base_->Sync(name);
}

}  // namespace tdb::platform
