#include "platform/fault_injection.h"

namespace tdb::platform {

Status FaultInjectingStore::Write(const std::string& name, uint64_t offset,
                                  Slice data) {
  if (crashed_) return Status::IOError("simulated crash");
  if (armed_ && !crash_on_sync_) {
    if (writes_until_crash_ == 0) {
      crashed_ = true;
      // Torn write: the disk persists only a prefix of the final write, and
      // since sectors are committed atomically in order, the surviving
      // prefix always ends on a sector boundary (or covers everything).
      uint64_t requested =
          deterministic_tear_
              ? static_cast<uint64_t>(data.size()) * tear_num_ / tear_den_
              : rng_.Uniform(data.size() + 1);
      size_t torn = static_cast<size_t>(
          SectorAtomicTornLength(offset, data.size(), requested,
                                 deterministic_tear_ ? sector_bytes_
                                                     : kDefaultSectorBytes));
      if (torn > 0) {
        Status s = base_->Write(name, offset, Slice(data.data(), torn));
        (void)s;  // The caller sees the crash either way.
      }
      return Status::IOError("simulated crash (torn write)");
    }
    writes_until_crash_--;
  }
  writes_seen_++;
  return base_->Write(name, offset, data);
}

Status FaultInjectingStore::Sync(const std::string& name) {
  if (crashed_) return Status::IOError("simulated crash");
  if (armed_ && crash_on_sync_) {
    crashed_ = true;
    return Status::IOError("simulated crash (at sync)");
  }
  return base_->Sync(name);
}

}  // namespace tdb::platform
