#ifndef TDB_PLATFORM_STAGED_ARCHIVE_H_
#define TDB_PLATFORM_STAGED_ARCHIVE_H_

#include <string>
#include <vector>

#include "platform/archival_store.h"
#include "platform/untrusted_store.h"

namespace tdb::platform {

/// The paper's typical backup deployment (§2): "a typical implementation
/// of the backup store may stage backups in the untrusted store and
/// opportunistically migrate them to a remote server." Archives are staged
/// as files ("archive-<name>") in a local untrusted store and pushed to a
/// remote ArchivalStore when connectivity allows.
///
/// Both sides are attacker-controlled; archive contents are already
/// encrypted and MACed by the backup store, so migration is a plain copy.
class StagedArchivalStore final : public ArchivalStore {
 public:
  /// Does not take ownership of `staging`.
  explicit StagedArchivalStore(UntrustedStore* staging)
      : staging_(staging) {}

  Result<std::unique_ptr<ArchiveWriter>> NewArchive(
      const std::string& name) override;
  Result<std::unique_ptr<ArchiveReader>> OpenArchive(
      const std::string& name) const override;
  Status RemoveArchive(const std::string& name) override;
  std::vector<std::string> ListArchives() const override;

  /// Copies every staged archive to `remote`. With `purge`, staged copies
  /// are deleted once the remote write succeeds (the opportunistic
  /// migration freeing local space).
  Status MigrateAll(ArchivalStore* remote, bool purge);

 private:
  static std::string FileName(const std::string& name) {
    return "archive-" + name;
  }
  static bool IsArchiveFile(const std::string& file) {
    return file.rfind("archive-", 0) == 0;
  }

  UntrustedStore* staging_;
};

}  // namespace tdb::platform

#endif  // TDB_PLATFORM_STAGED_ARCHIVE_H_
