#include "platform/staged_archive.h"

namespace tdb::platform {

namespace {

class StagedWriter final : public ArchiveWriter {
 public:
  StagedWriter(UntrustedStore* store, std::string file)
      : store_(store), file_(std::move(file)) {}

  Status Append(Slice data) override {
    if (closed_) return Status::InvalidArgument("archive closed");
    staged_.insert(staged_.end(), data.data(), data.data() + data.size());
    return Status::OK();
  }

  Status Close() override {
    if (closed_) return Status::InvalidArgument("archive closed");
    closed_ = true;
    // Written in one shot at close so a crash mid-backup never leaves a
    // half archive visible.
    TDB_RETURN_IF_ERROR(store_->Create(file_, /*overwrite=*/true));
    TDB_RETURN_IF_ERROR(store_->Write(file_, 0, staged_));
    return store_->Sync(file_);
  }

 private:
  UntrustedStore* store_;
  std::string file_;
  Buffer staged_;
  bool closed_ = false;
};

class StagedReader final : public ArchiveReader {
 public:
  explicit StagedReader(Buffer data) : data_(std::move(data)) {}

  Status Read(size_t n, Buffer* out) override {
    if (pos_ + n > data_.size()) {
      return Status::Corruption("archive truncated");
    }
    out->assign(data_.begin() + pos_, data_.begin() + pos_ + n);
    pos_ += n;
    return Status::OK();
  }

  uint64_t remaining() const override { return data_.size() - pos_; }

 private:
  Buffer data_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<ArchiveWriter>> StagedArchivalStore::NewArchive(
    const std::string& name) {
  return std::unique_ptr<ArchiveWriter>(
      new StagedWriter(staging_, FileName(name)));
}

Result<std::unique_ptr<ArchiveReader>> StagedArchivalStore::OpenArchive(
    const std::string& name) const {
  const std::string file = FileName(name);
  if (!staging_->Exists(file)) return Status::NotFound("no archive: " + name);
  TDB_ASSIGN_OR_RETURN(uint64_t size, staging_->Size(file));
  Buffer data;
  TDB_RETURN_IF_ERROR(
      staging_->Read(file, 0, static_cast<size_t>(size), &data));
  return std::unique_ptr<ArchiveReader>(new StagedReader(std::move(data)));
}

Status StagedArchivalStore::RemoveArchive(const std::string& name) {
  return staging_->Remove(FileName(name));
}

std::vector<std::string> StagedArchivalStore::ListArchives() const {
  std::vector<std::string> names;
  for (const std::string& file : staging_->List()) {
    if (IsArchiveFile(file)) names.push_back(file.substr(8));
  }
  return names;
}

Status StagedArchivalStore::MigrateAll(ArchivalStore* remote, bool purge) {
  for (const std::string& name : ListArchives()) {
    TDB_ASSIGN_OR_RETURN(std::unique_ptr<ArchiveReader> reader,
                         OpenArchive(name));
    TDB_ASSIGN_OR_RETURN(std::unique_ptr<ArchiveWriter> writer,
                         remote->NewArchive(name));
    Buffer data;
    TDB_RETURN_IF_ERROR(
        reader->Read(static_cast<size_t>(reader->remaining()), &data));
    TDB_RETURN_IF_ERROR(writer->Append(data));
    TDB_RETURN_IF_ERROR(writer->Close());
    if (purge) {
      TDB_RETURN_IF_ERROR(RemoveArchive(name));
    }
  }
  return Status::OK();
}

}  // namespace tdb::platform
