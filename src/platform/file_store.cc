#include "platform/file_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

namespace tdb::platform {

namespace {

Status Errno(const std::string& op, const std::string& name) {
  return Status::IOError(op + " " + name + ": " + std::strerror(errno));
}

// RAII fd.
class Fd {
 public:
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() {
    if (fd_ >= 0) ::close(fd_);
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  int get() const { return fd_; }

 private:
  int fd_;
};

}  // namespace

FileUntrustedStore::FileUntrustedStore(std::string dir, bool sync_writes)
    : dir_(std::move(dir)), sync_writes_(sync_writes) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
}

std::string FileUntrustedStore::Path(const std::string& name) const {
  return dir_ + "/" + name;
}

Status FileUntrustedStore::Create(const std::string& name, bool overwrite) {
  if (!overwrite && Exists(name)) {
    return Status::AlreadyExists("file exists: " + name);
  }
  Fd fd(::open(Path(name).c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644));
  if (fd.get() < 0) return Errno("create", name);
  return Status::OK();
}

Status FileUntrustedStore::Remove(const std::string& name) {
  if (::unlink(Path(name).c_str()) != 0) {
    return errno == ENOENT ? Status::NotFound("no such file: " + name)
                           : Errno("remove", name);
  }
  return Status::OK();
}

bool FileUntrustedStore::Exists(const std::string& name) const {
  struct stat st;
  return ::stat(Path(name).c_str(), &st) == 0;
}

Status FileUntrustedStore::Read(const std::string& name, uint64_t offset,
                                size_t n, Buffer* out) const {
  Fd fd(::open(Path(name).c_str(), O_RDONLY));
  if (fd.get() < 0) {
    return errno == ENOENT ? Status::NotFound("no such file: " + name)
                           : Errno("open", name);
  }
  out->resize(n);
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::pread(fd.get(), out->data() + got, n - got, offset + got);
    if (r < 0) return Errno("pread", name);
    if (r == 0) return Status::Corruption("read past end of " + name);
    got += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status FileUntrustedStore::Write(const std::string& name, uint64_t offset,
                                 Slice data) {
  Fd fd(::open(Path(name).c_str(), O_WRONLY));
  if (fd.get() < 0) {
    return errno == ENOENT ? Status::NotFound("no such file: " + name)
                           : Errno("open", name);
  }
  size_t put = 0;
  while (put < data.size()) {
    ssize_t w = ::pwrite(fd.get(), data.data() + put, data.size() - put,
                         offset + put);
    if (w < 0) return Errno("pwrite", name);
    put += static_cast<size_t>(w);
  }
  return Status::OK();
}

Result<uint64_t> FileUntrustedStore::Size(const std::string& name) const {
  struct stat st;
  if (::stat(Path(name).c_str(), &st) != 0) {
    return errno == ENOENT ? Status::NotFound("no such file: " + name)
                           : Errno("stat", name);
  }
  return static_cast<uint64_t>(st.st_size);
}

Status FileUntrustedStore::Truncate(const std::string& name, uint64_t size) {
  if (::truncate(Path(name).c_str(), static_cast<off_t>(size)) != 0) {
    return errno == ENOENT ? Status::NotFound("no such file: " + name)
                           : Errno("truncate", name);
  }
  return Status::OK();
}

Status FileUntrustedStore::Sync(const std::string& name) {
  if (!sync_writes_) return Status::OK();
  Fd fd(::open(Path(name).c_str(), O_RDONLY));
  if (fd.get() < 0) {
    return errno == ENOENT ? Status::NotFound("no such file: " + name)
                           : Errno("open", name);
  }
  if (::fsync(fd.get()) != 0) return Errno("fsync", name);
  return Status::OK();
}

std::vector<std::string> FileUntrustedStore::List() const {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir_, ec)) {
    if (entry.is_regular_file()) names.push_back(entry.path().filename());
  }
  return names;
}

}  // namespace tdb::platform
