#ifndef TDB_PLATFORM_ARCHIVAL_STORE_H_
#define TDB_PLATFORM_ARCHIVAL_STORE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"

namespace tdb::platform {

/// Append-only output stream for one archive (a backup volume).
class ArchiveWriter {
 public:
  virtual ~ArchiveWriter() = default;
  virtual Status Append(Slice data) = 0;
  virtual Status Close() = 0;
};

/// Sequential input stream over one archive.
class ArchiveReader {
 public:
  virtual ~ArchiveReader() = default;
  /// Reads exactly n bytes; Corruption if fewer remain.
  virtual Status Read(size_t n, Buffer* out) = 0;
  virtual uint64_t remaining() const = 0;
};

/// The paper's "archival store": a stream interface to sequential storage
/// holding backups (e.g., staged locally, migrated to a remote server). As
/// with the untrusted store, the attacker may read and modify archives —
/// the backup store's restore path validates everything it reads.
class ArchivalStore {
 public:
  virtual ~ArchivalStore() = default;

  virtual Result<std::unique_ptr<ArchiveWriter>> NewArchive(
      const std::string& name) = 0;
  virtual Result<std::unique_ptr<ArchiveReader>> OpenArchive(
      const std::string& name) const = 0;
  virtual Status RemoveArchive(const std::string& name) = 0;
  virtual std::vector<std::string> ListArchives() const = 0;
};

/// In-memory archival store. Also plays the attacker via CorruptByte.
class MemArchivalStore final : public ArchivalStore {
 public:
  Result<std::unique_ptr<ArchiveWriter>> NewArchive(
      const std::string& name) override;
  Result<std::unique_ptr<ArchiveReader>> OpenArchive(
      const std::string& name) const override;
  Status RemoveArchive(const std::string& name) override;
  std::vector<std::string> ListArchives() const override;

  Status CorruptByte(const std::string& name, uint64_t offset, uint8_t mask);
  Result<uint64_t> ArchiveSize(const std::string& name) const;

 private:
  std::map<std::string, Buffer> archives_;
};

/// Archival store backed by files in a directory.
class FileArchivalStore final : public ArchivalStore {
 public:
  explicit FileArchivalStore(std::string dir);

  Result<std::unique_ptr<ArchiveWriter>> NewArchive(
      const std::string& name) override;
  Result<std::unique_ptr<ArchiveReader>> OpenArchive(
      const std::string& name) const override;
  Status RemoveArchive(const std::string& name) override;
  std::vector<std::string> ListArchives() const override;

 private:
  std::string dir_;
};

}  // namespace tdb::platform

#endif  // TDB_PLATFORM_ARCHIVAL_STORE_H_
