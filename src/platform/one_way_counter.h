#ifndef TDB_PLATFORM_ONE_WAY_COUNTER_H_
#define TDB_PLATFORM_ONE_WAY_COUNTER_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace tdb::platform {

/// The paper's one-way persistent counter: it can be read and incremented,
/// never decremented. Real devices use special-purpose hardware (the paper
/// cites Infineon's Eurochip); the paper's own evaluation — and this
/// reproduction — emulates it as a file. The chunk store signs the counter
/// value into its anchor record; replaying a stale database image then
/// fails because the stored value lags the counter.
///
/// Batching contract: counter devices are slow (a persisted increment per
/// durable commit is one of the paper's two dominant commit costs, §5/§7),
/// so the chunk store amortizes bumps — under group commit, one Increment
/// covers every durable commit sealed into the same merged commit record.
/// The store serializes its own Increment calls (a single flush leader at
/// a time), so implementations need Read/Increment to be safe against a
/// concurrent Read at most; MemOneWayCounter makes both fully atomic so
/// even misuse cannot produce a torn value. Implementations must never
/// expose value N as persisted while a crash could reveal a value < N.
class OneWayCounter {
 public:
  virtual ~OneWayCounter() = default;

  virtual Result<uint64_t> Read() const = 0;

  /// Atomically adds one and persists. Returns the new value.
  virtual Result<uint64_t> Increment() = 0;
};

/// In-memory counter for tests and benchmarks. Lock-free.
class MemOneWayCounter final : public OneWayCounter {
 public:
  Result<uint64_t> Read() const override { return value_.load(); }
  Result<uint64_t> Increment() override { return value_.fetch_add(1) + 1; }

 private:
  std::atomic<uint64_t> value_{0};
};

/// File-emulated counter, as in the paper's evaluation platform ("the
/// one-way counter was emulated as a file"). `sync` controls whether each
/// increment is fsynced.
class FileOneWayCounter final : public OneWayCounter {
 public:
  explicit FileOneWayCounter(std::string path, bool sync = true);

  Result<uint64_t> Read() const override;
  Result<uint64_t> Increment() override;

 private:
  std::string path_;
  bool sync_;
};

}  // namespace tdb::platform

#endif  // TDB_PLATFORM_ONE_WAY_COUNTER_H_
