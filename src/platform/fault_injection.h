#ifndef TDB_PLATFORM_FAULT_INJECTION_H_
#define TDB_PLATFORM_FAULT_INJECTION_H_

#include <cstdint>

#include "common/random.h"
#include "platform/sim_disk.h"
#include "platform/untrusted_store.h"

namespace tdb::platform {

/// Wraps any UntrustedStore and simulates a system crash: after a
/// configured number of write operations, the "power fails" — the crashing
/// write may be applied only partially (a torn write), and every subsequent
/// operation fails with IOError. Crash-recovery property tests drive a
/// workload through this wrapper, crash at a random point, then reopen the
/// database from the underlying store and check the durable-commit
/// invariants.
class FaultInjectingStore final : public UntrustedStore {
 public:
  /// Does not take ownership of `base`, which must outlive this wrapper.
  explicit FaultInjectingStore(UntrustedStore* base, uint64_t rng_seed = 1)
      : base_(base), rng_(rng_seed) {}

  /// Arms the crash: it fires on the (count+1)-th Write() from now.
  /// A torn fraction of that final write is applied (possibly none, possibly
  /// all of it — chosen pseudo-randomly, rounded down to a sector boundary).
  void CrashAfterWrites(uint64_t count) {
    writes_until_crash_ = count;
    armed_ = true;
    crashed_ = false;
    deterministic_tear_ = false;
  }

  /// Deterministic schedule for exhaustive sweeps: the crash fires on the
  /// (index+1)-th Write() from now, and the torn prefix of that write is
  /// `tear_num/tear_den` of its length, rounded down so the persisted
  /// prefix ends on a sector boundary (see SectorAtomicTornLength).
  /// tear_num >= tear_den persists the whole write (the crash then hits
  /// after the write reached the platter but before the caller learned so).
  ///
  /// The tear fraction is applied to the WHOLE crashing write, so a
  /// group-commit store that appends one merged multi-commit record in a
  /// single Write() spreads the tear points across the entire group. The
  /// fraction only reaches a given internal sector boundary if tear_den is
  /// at least the number of sectors the write spans; sweeps over merged
  /// appends must therefore enumerate proportionally finer buckets (the
  /// harness uses n/8 for the group preset vs n/4 elsewhere) or interior
  /// commit boundaries of the merged record are silently skipped. The
  /// sector-atomic model itself is unchanged.
  void CrashAtWrite(uint64_t index, uint32_t tear_num, uint32_t tear_den,
                    uint32_t sector_bytes = kDefaultSectorBytes) {
    writes_until_crash_ = index;
    armed_ = true;
    crashed_ = false;
    crash_on_sync_ = false;
    deterministic_tear_ = true;
    tear_num_ = tear_num;
    tear_den_ = tear_den == 0 ? 1 : tear_den;
    sector_bytes_ = sector_bytes;
  }

  /// Total Write() calls passed through to the base store (the crashing
  /// torn write is not counted). Dry-running a workload unarmed yields the
  /// write count N that an exhaustive sweep enumerates as 0..N-1.
  uint64_t writes_seen() const { return writes_seen_; }

  /// Arms the crash to fire on the next Sync() instead of a write.
  void CrashOnNextSync() {
    crash_on_sync_ = true;
    armed_ = true;
    crashed_ = false;
  }

  bool crashed() const { return crashed_; }

  /// Clears the crash state so the store is usable again (models reboot —
  /// recovery then reads whatever the base store holds).
  void Reboot() {
    armed_ = false;
    crashed_ = false;
    crash_on_sync_ = false;
  }

  // UntrustedStore:
  Status Create(const std::string& name, bool overwrite) override {
    TDB_RETURN_IF_ERROR(CheckAlive());
    return base_->Create(name, overwrite);
  }
  Status Remove(const std::string& name) override {
    TDB_RETURN_IF_ERROR(CheckAlive());
    return base_->Remove(name);
  }
  bool Exists(const std::string& name) const override {
    return base_->Exists(name);
  }
  Status Read(const std::string& name, uint64_t offset, size_t n,
              Buffer* out) const override {
    if (crashed_) return Status::IOError("simulated crash");
    return base_->Read(name, offset, n, out);
  }
  Status Write(const std::string& name, uint64_t offset, Slice data) override;
  Result<uint64_t> Size(const std::string& name) const override {
    if (crashed_) return Status::IOError("simulated crash");
    return base_->Size(name);
  }
  Status Truncate(const std::string& name, uint64_t size) override {
    TDB_RETURN_IF_ERROR(CheckAlive());
    return base_->Truncate(name, size);
  }
  Status Sync(const std::string& name) override;
  std::vector<std::string> List() const override { return base_->List(); }

 private:
  Status CheckAlive() const {
    return crashed_ ? Status::IOError("simulated crash") : Status::OK();
  }

  UntrustedStore* base_;
  Random rng_;
  bool armed_ = false;
  bool crashed_ = false;
  bool crash_on_sync_ = false;
  bool deterministic_tear_ = false;
  uint32_t tear_num_ = 0;
  uint32_t tear_den_ = 1;
  uint32_t sector_bytes_ = kDefaultSectorBytes;
  uint64_t writes_until_crash_ = 0;
  uint64_t writes_seen_ = 0;
};

}  // namespace tdb::platform

#endif  // TDB_PLATFORM_FAULT_INJECTION_H_
