#ifndef TDB_PLATFORM_SECRET_STORE_H_
#define TDB_PLATFORM_SECRET_STORE_H_

#include <string>

#include "common/result.h"
#include "common/slice.h"

namespace tdb::platform {

/// The paper's "secret store": a small store readable only by authorized
/// programs (modeled after ROM or tamper-responding battery-backed SRAM).
/// It holds the master secret from which the chunk store derives its
/// encryption and MAC keys. The TRUST BOUNDARY is modeled, not physically
/// enforced: in this reproduction "authorized program" = code holding a
/// SecretStore reference, matching the paper's "programs linked with the
/// DRM database system".
class SecretStore {
 public:
  virtual ~SecretStore() = default;

  /// Returns the master secret. NotFound if never provisioned.
  virtual Result<Buffer> GetSecret() const = 0;

  /// One-time provisioning (at device manufacture). AlreadyExists after.
  virtual Status Provision(Slice secret) = 0;
};

/// In-memory secret store (tests, benches).
class MemSecretStore final : public SecretStore {
 public:
  Result<Buffer> GetSecret() const override {
    if (secret_.empty()) return Status::NotFound("secret not provisioned");
    return secret_;
  }
  Status Provision(Slice secret) override {
    if (!secret_.empty()) return Status::AlreadyExists("already provisioned");
    if (secret.empty()) return Status::InvalidArgument("empty secret");
    secret_ = secret.ToBuffer();
    return Status::OK();
  }

 private:
  Buffer secret_;
};

/// File-backed secret store. A real device would keep this in ROM; on a PC
/// platform (like the paper's evaluation machine) it is simply a file that
/// the OS is trusted to protect.
class FileSecretStore final : public SecretStore {
 public:
  explicit FileSecretStore(std::string path) : path_(std::move(path)) {}

  Result<Buffer> GetSecret() const override;
  Status Provision(Slice secret) override;

 private:
  std::string path_;
};

}  // namespace tdb::platform

#endif  // TDB_PLATFORM_SECRET_STORE_H_
