#ifndef TDB_PLATFORM_MEM_STORE_H_
#define TDB_PLATFORM_MEM_STORE_H_

#include <map>
#include <mutex>
#include <string>

#include "platform/untrusted_store.h"

namespace tdb::platform {

/// In-memory untrusted store. Primary backend for tests and benchmarks; it
/// also plays the attacker: the image can be snapshotted, individual bytes
/// corrupted, and a stale image replayed — exactly the offline attacks the
/// paper's threat model allows on removable media.
///
/// Thread-safe behind an internal mutex: the group-commit chunk store
/// issues Sync/Write calls from a flush leader concurrently with reads and
/// tail writes from other threads (FileUntrustedStore gets the same
/// guarantee from per-call file descriptors and pread/pwrite).
class MemUntrustedStore final : public UntrustedStore {
 public:
  using Image = std::map<std::string, Buffer>;

  MemUntrustedStore() = default;

  Status Create(const std::string& name, bool overwrite) override;
  Status Remove(const std::string& name) override;
  bool Exists(const std::string& name) const override;
  Status Read(const std::string& name, uint64_t offset, size_t n,
              Buffer* out) const override;
  Status Write(const std::string& name, uint64_t offset, Slice data) override;
  Result<uint64_t> Size(const std::string& name) const override;
  Status Truncate(const std::string& name, uint64_t size) override;
  Status Sync(const std::string& name) override;
  std::vector<std::string> List() const override;

  // --- Attacker / test hooks (not part of UntrustedStore) ---

  /// Copies the full store image (the attacker "saving the database").
  Image SnapshotImage() const {
    std::lock_guard<std::mutex> lock(mu_);
    return files_;
  }

  /// Replaces the store contents with a saved image (a replay attack).
  void RestoreImage(Image image) {
    std::lock_guard<std::mutex> lock(mu_);
    files_ = std::move(image);
  }

  /// XORs one byte — the smallest possible malicious modification.
  Status CorruptByte(const std::string& name, uint64_t offset, uint8_t mask);

  /// Total bytes across all files (for space-accounting assertions).
  uint64_t TotalBytes() const;

  /// Number of Write() calls so far (for write-traffic accounting).
  uint64_t write_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return write_count_;
  }
  uint64_t bytes_written() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_written_;
  }
  uint64_t sync_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sync_count_;
  }

 private:
  mutable std::mutex mu_;
  Image files_;
  uint64_t write_count_ = 0;
  uint64_t bytes_written_ = 0;
  uint64_t sync_count_ = 0;
};

}  // namespace tdb::platform

#endif  // TDB_PLATFORM_MEM_STORE_H_
