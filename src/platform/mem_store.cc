#include "platform/mem_store.h"

#include <cstring>

namespace tdb::platform {

Status MemUntrustedStore::Create(const std::string& name, bool overwrite) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!overwrite && files_.count(name)) {
    return Status::AlreadyExists("file exists: " + name);
  }
  files_[name] = Buffer();
  return Status::OK();
}

Status MemUntrustedStore::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.erase(name) == 0) {
    return Status::NotFound("no such file: " + name);
  }
  return Status::OK();
}

bool MemUntrustedStore::Exists(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(name) > 0;
}

Status MemUntrustedStore::Read(const std::string& name, uint64_t offset,
                               size_t n, Buffer* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound("no such file: " + name);
  const Buffer& f = it->second;
  if (offset + n > f.size()) {
    return Status::Corruption("read past end of " + name);
  }
  out->assign(f.begin() + offset, f.begin() + offset + n);
  return Status::OK();
}

Status MemUntrustedStore::Write(const std::string& name, uint64_t offset,
                                Slice data) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound("no such file: " + name);
  Buffer& f = it->second;
  if (offset + data.size() > f.size()) f.resize(offset + data.size(), 0);
  std::memcpy(f.data() + offset, data.data(), data.size());
  write_count_++;
  bytes_written_ += data.size();
  return Status::OK();
}

Result<uint64_t> MemUntrustedStore::Size(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound("no such file: " + name);
  return static_cast<uint64_t>(it->second.size());
}

Status MemUntrustedStore::Truncate(const std::string& name, uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound("no such file: " + name);
  it->second.resize(size, 0);
  return Status::OK();
}

Status MemUntrustedStore::Sync(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!files_.count(name)) return Status::NotFound("no such file: " + name);
  sync_count_++;
  return Status::OK();
}

std::vector<std::string> MemUntrustedStore::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, _] : files_) names.push_back(name);
  return names;
}

Status MemUntrustedStore::CorruptByte(const std::string& name,
                                      uint64_t offset, uint8_t mask) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound("no such file: " + name);
  if (offset >= it->second.size()) {
    return Status::InvalidArgument("offset past end");
  }
  it->second[offset] ^= mask;
  return Status::OK();
}

uint64_t MemUntrustedStore::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [_, data] : files_) total += data.size();
  return total;
}

}  // namespace tdb::platform
