#ifndef TDB_PLATFORM_FILE_STORE_H_
#define TDB_PLATFORM_FILE_STORE_H_

#include <string>

#include "platform/untrusted_store.h"

namespace tdb::platform {

/// Untrusted store backed by a directory of real files (POSIX pread/pwrite).
/// This is the backend the paper's evaluation platform corresponds to
/// (NTFS files with WRITE_THROUGH ≈ write + fsync here).
class FileUntrustedStore final : public UntrustedStore {
 public:
  /// `dir` is created if absent. `sync_writes` maps to the paper's
  /// WRITE_THROUGH configuration: Sync() calls fsync when true and is a
  /// no-op when false (useful for fast benchmarking).
  explicit FileUntrustedStore(std::string dir, bool sync_writes = true);

  Status Create(const std::string& name, bool overwrite) override;
  Status Remove(const std::string& name) override;
  bool Exists(const std::string& name) const override;
  Status Read(const std::string& name, uint64_t offset, size_t n,
              Buffer* out) const override;
  Status Write(const std::string& name, uint64_t offset, Slice data) override;
  Result<uint64_t> Size(const std::string& name) const override;
  Status Truncate(const std::string& name, uint64_t size) override;
  Status Sync(const std::string& name) override;
  std::vector<std::string> List() const override;

  const std::string& dir() const { return dir_; }

 private:
  std::string Path(const std::string& name) const;

  std::string dir_;
  bool sync_writes_;
};

}  // namespace tdb::platform

#endif  // TDB_PLATFORM_FILE_STORE_H_
