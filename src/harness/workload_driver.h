#ifndef TDB_HARNESS_WORKLOAD_DRIVER_H_
#define TDB_HARNESS_WORKLOAD_DRIVER_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "harness/trace.h"
#include "workload/large_objects.h"
#include "workload/timeseries.h"
#include "workload/ycsb.h"

namespace tdb::harness {

/// Workload-scenario analogues of the chunk/object/collection drivers:
/// the crash/tamper harness driving the reusable workload subsystem
/// (src/workload) instead of a synthetic trace. Three scenario families:
///   kYcsb        one YCSB mix (chosen from the spec seed) over the
///                object/collection stores;
///   kTimeSeries  ordered B-tree collection keyed by timestamp with
///                range scans and retention-driven RemoveRange deletion;
///   kLargeObject multi-chunk streaming objects (writer part flushes,
///                manifest-commit visibility, snapshot reads).
/// The TraceSpec's serialized fields map deterministically onto the
/// scenario specs (see *SpecFor below), so a TDB-REPRO v1 line with
/// layer=ycsb|timeseries|largeobject replays bit-exactly.
enum class Scenario : uint8_t { kYcsb, kTimeSeries, kLargeObject };

const char* ScenarioName(Scenario scenario);  // The repro layer token.

/// Deterministic TraceSpec -> scenario-spec mappings. Only serialized
/// repro fields (seed / commits / slots / preset) influence the result:
/// seed picks the YCSB mix (seed % 6) and all payloads; commits sizes the
/// operation count; slots sizes the record count / retention window.
workload::YcsbSpec YcsbSpecFor(const TraceSpec& spec);
workload::TimeSeriesSpec TimeSeriesSpecFor(const TraceSpec& spec);
workload::LargeObjectSpec LargeObjectSpecFor(const TraceSpec& spec);

/// Dry-runs the scenario (no crash) and returns the number of base-store
/// writes, including the scenario's own setup/load commits — the crash
/// sweep enumerates write indices 0..N-1, so mid-load crashes are covered.
Result<uint64_t> CountWorkloadTraceWrites(Scenario scenario,
                                          const TraceSpec& spec);

/// One crash case: runs the scenario against a fault-injecting store
/// armed at `crash`, reboots, reopens the stack, re-attaches the scenario
/// driver and scans its state, then checks the durable-commit invariant
/// against the oracle (keyed by logical scenario key: record key,
/// timestamp, or large-object tag). Failure messages begin with the
/// case's TDB-REPRO line.
Status RunWorkloadCrashCase(Scenario scenario, const TraceSpec& spec,
                            const CrashCase& crash,
                            SweepStats* stats = nullptr);

/// Exhaustive campaign: every write index x every torn-write fraction in
/// {0,2,4}/4 (coarser buckets: full-stack cases are heavy), sharded like
/// ChunkCrashSweep.
Status WorkloadCrashSweep(Scenario scenario, const TraceSpec& spec, int shard,
                          int num_shards, SweepStats* stats = nullptr);

/// One tamper case: runs the scenario cleanly, XORs `mask` into one image
/// byte, reopens the full stack and re-scans the scenario state, and
/// asserts the corruption is either fully masked (scenario state equals
/// the untampered baseline) or reported — never silently accepted — with
/// the audit-trail contract of CheckTamperAudit.
Status RunWorkloadTamperCase(Scenario scenario, const TraceSpec& spec,
                             const std::string& file, uint64_t offset,
                             uint8_t mask);

/// Exhaustive tamper campaign over all four structural region classes of
/// the scenario's image (first/middle/last byte of every region),
/// sharded like ChunkTamperSweep.
Status WorkloadTamperSweep(Scenario scenario, const TraceSpec& spec,
                           int shard, int num_shards,
                           SweepStats* stats = nullptr);

}  // namespace tdb::harness

#endif  // TDB_HARNESS_WORKLOAD_DRIVER_H_
