#include "harness/replay.h"

#include "common/result.h"
#include "harness/chunk_driver.h"
#include "harness/collection_driver.h"
#include "harness/object_driver.h"
#include "harness/trace.h"
#include "harness/workload_driver.h"

namespace tdb::harness {

namespace {

bool ScenarioLayer(const std::string& layer, Scenario* out) {
  if (layer == "ycsb") {
    *out = Scenario::kYcsb;
  } else if (layer == "timeseries") {
    *out = Scenario::kTimeSeries;
  } else if (layer == "largeobject") {
    *out = Scenario::kLargeObject;
  } else {
    return false;
  }
  return true;
}

}  // namespace

Status ReplayRepro(const std::string& line) {
  TDB_ASSIGN_OR_RETURN(ReproCase repro, ParseRepro(line));
  Scenario scenario = Scenario::kYcsb;
  const bool is_scenario = ScenarioLayer(repro.layer, &scenario);
  if (repro.kind == "tamper") {
    if (is_scenario) {
      return RunWorkloadTamperCase(scenario, repro.spec, repro.tamper_file,
                                   repro.tamper_offset,
                                   static_cast<uint8_t>(repro.tamper_mask));
    }
    if (repro.layer != "chunk") {
      return Status::InvalidArgument(
          "tamper repros are chunk- or scenario-layer only");
    }
    return RunChunkTamperCase(repro.spec, repro.tamper_file,
                              repro.tamper_offset,
                              static_cast<uint8_t>(repro.tamper_mask));
  }
  if (is_scenario) {
    return RunWorkloadCrashCase(scenario, repro.spec, repro.crash);
  }
  if (repro.layer == "chunk") {
    return RunChunkCrashCase(repro.spec, repro.crash);
  }
  if (repro.layer == "object") {
    return RunObjectCrashCase(repro.spec, repro.crash);
  }
  return RunCollectionCrashCase(repro.spec, repro.crash);
}

}  // namespace tdb::harness
