#include "harness/replay.h"

#include "common/result.h"
#include "harness/chunk_driver.h"
#include "harness/collection_driver.h"
#include "harness/object_driver.h"
#include "harness/trace.h"

namespace tdb::harness {

Status ReplayRepro(const std::string& line) {
  TDB_ASSIGN_OR_RETURN(ReproCase repro, ParseRepro(line));
  if (repro.kind == "tamper") {
    if (repro.layer != "chunk") {
      return Status::InvalidArgument("tamper repros are chunk-layer only");
    }
    return RunChunkTamperCase(repro.spec, repro.tamper_file,
                              repro.tamper_offset,
                              static_cast<uint8_t>(repro.tamper_mask));
  }
  if (repro.layer == "chunk") {
    return RunChunkCrashCase(repro.spec, repro.crash);
  }
  if (repro.layer == "object") {
    return RunObjectCrashCase(repro.spec, repro.crash);
  }
  return RunCollectionCrashCase(repro.spec, repro.crash);
}

}  // namespace tdb::harness
