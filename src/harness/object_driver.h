#ifndef TDB_HARNESS_OBJECT_DRIVER_H_
#define TDB_HARNESS_OBJECT_DRIVER_H_

#include <cstdint>

#include "common/result.h"
#include "harness/oracle.h"
#include "harness/trace.h"
#include "object/object.h"
#include "object/object_store.h"

namespace tdb::harness {

/// The harness's persistent test object: an immutable logical key (the
/// trace slot that created it) plus a mutable payload.
class HarnessBlob final : public object::Object {
 public:
  static constexpr object::ClassId kClassId = 0x48424C42;  // "HBLB"

  HarnessBlob() = default;
  HarnessBlob(uint64_t key, Buffer bytes)
      : key_(key), bytes_(std::move(bytes)) {}

  object::ClassId class_id() const override { return kClassId; }
  void Pickle(object::Pickler* pickler) const override;
  Status UnpickleFrom(object::Unpickler* unpickler) override;
  size_t ApproxSize() const override { return 48 + bytes_.size(); }

  uint64_t key() const { return key_; }
  const Buffer& bytes() const { return bytes_; }
  void set_bytes(Buffer bytes) { bytes_ = std::move(bytes); }

 private:
  uint64_t key_ = 0;
  Buffer bytes_;
};

/// Registers HarnessBlob with the store's class registry (idempotent-safe
/// only per fresh store; call once after ObjectStore::Open).
Status RegisterHarnessClasses(object::ObjectStore* os);

/// The oracle value of a blob: key and payload folded into one buffer, so
/// a key corruption is as detectable as a payload corruption.
Buffer BlobImage(uint64_t key, const Buffer& bytes);

/// Object-layer analogues of the chunk driver entry points. The trace's
/// commit groups become object-store transactions (insert / open-writable
/// update / remove); checkpoint flags are ignored at this layer.
Result<uint64_t> CountObjectTraceWrites(const TraceSpec& spec);
Status RunObjectCrashCase(const TraceSpec& spec, const CrashCase& crash,
                          SweepStats* stats = nullptr);
Status ObjectCrashSweep(const TraceSpec& spec, int shard, int num_shards,
                        SweepStats* stats = nullptr);

}  // namespace tdb::harness

#endif  // TDB_HARNESS_OBJECT_DRIVER_H_
