#ifndef TDB_HARNESS_ORACLE_H_
#define TDB_HARNESS_ORACLE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"

namespace tdb::harness {

/// Plain in-memory model of the store's committed states, against which a
/// recovered database is checked. The oracle records one state per commit
/// *attempt* (boundary b = state after the first b attempts applied;
/// boundary 0 is the empty store) plus a durable floor.
///
/// The invariant checked after crash + recovery:
///   - the recovered id->payload mapping must EXACTLY equal some boundary
///     state b (commits are atomic: no torn or merged batches, no
///     resurrected deallocations, no values that were never committed);
///   - b >= floor, where floor is the newest boundary whose durability was
///     ACKNOWLEDGED to the caller (a durable Commit/Checkpoint returned
///     OK). Anything older would be a lost durable commit.
/// Boundaries above the floor are acceptable: an in-flight commit whose
/// final write fully reached the store legitimately survives, and internal
/// durable maintenance commits (cleaning, auto-checkpoints) may promote
/// not-yet-acknowledged state.
class StateOracle {
 public:
  using State = std::map<uint64_t, Buffer>;

  /// Begins a commit attempt; pending ops apply to a scratch copy.
  void BeginCommit();
  void PendingWrite(uint64_t id, Buffer payload);
  void PendingRemove(uint64_t id);
  /// Seals the attempt as a boundary. `acked` = the store returned OK;
  /// `durable` = the commit was requested durable. Only an acked durable
  /// commit raises the floor.
  void EndCommit(bool acked, bool durable);

  /// A successful explicit Checkpoint() makes every prior commit durable.
  void MarkAllDurable();

  size_t boundaries() const { return states_.size(); }
  size_t floor() const { return floor_; }
  const std::set<uint64_t>& ids() const { return ids_; }
  const State& state(size_t boundary) const { return states_[boundary]; }
  const State& last_state() const { return states_.back(); }

  /// Matches a recovered mapping (absent id = NotFound) against the
  /// acceptable boundaries; returns the matched boundary index or an error
  /// describing the closest mismatch.
  Result<size_t> MatchRecovered(const State& recovered) const;

 private:
  std::vector<State> states_{State{}};  // states_[0]: empty store.
  State pending_;
  size_t floor_ = 0;
  std::set<uint64_t> ids_;
};

}  // namespace tdb::harness

#endif  // TDB_HARNESS_ORACLE_H_
