#include "harness/oracle.h"

#include <sstream>

namespace tdb::harness {

void StateOracle::BeginCommit() { pending_ = states_.back(); }

void StateOracle::PendingWrite(uint64_t id, Buffer payload) {
  pending_[id] = std::move(payload);
  ids_.insert(id);
}

void StateOracle::PendingRemove(uint64_t id) {
  pending_.erase(id);
  ids_.insert(id);
}

void StateOracle::EndCommit(bool acked, bool durable) {
  states_.push_back(std::move(pending_));
  pending_.clear();
  if (acked && durable) floor_ = states_.size() - 1;
}

void StateOracle::MarkAllDurable() { floor_ = states_.size() - 1; }

namespace {

// First differing id between two states, for failure diagnostics.
std::string DescribeDiff(const StateOracle::State& recovered,
                         const StateOracle::State& expected) {
  std::ostringstream out;
  for (const auto& [id, payload] : expected) {
    auto it = recovered.find(id);
    if (it == recovered.end()) {
      out << "id " << id << ": expected " << payload.size()
          << " bytes, recovered NotFound";
      return out.str();
    }
    if (it->second != payload) {
      out << "id " << id << ": " << payload.size()
          << "-byte payload differs (recovered " << it->second.size()
          << " bytes)";
      return out.str();
    }
  }
  for (const auto& [id, payload] : recovered) {
    if (expected.count(id) == 0) {
      out << "id " << id << ": expected NotFound, recovered "
          << payload.size() << " bytes";
      return out.str();
    }
  }
  return "states equal";
}

}  // namespace

Result<size_t> StateOracle::MatchRecovered(const State& recovered) const {
  for (size_t b = floor_; b < states_.size(); b++) {
    if (states_[b] == recovered) return b;
  }
  std::ostringstream msg;
  msg << "recovered state matches no committed boundary in [" << floor_
      << ", " << states_.size() - 1 << "]; vs floor boundary " << floor_
      << ": " << DescribeDiff(recovered, states_[floor_])
      << "; vs last boundary: " << DescribeDiff(recovered, states_.back());
  return Status::Corruption(msg.str());
}

}  // namespace tdb::harness
