#include "harness/region_map.h"

#include "chunk/log_format.h"
#include "chunk/types.h"

namespace tdb::harness {

const char* RegionClassName(RegionClass cls) {
  switch (cls) {
    case RegionClass::kAnchorSlot:
      return "anchor-slot";
    case RegionClass::kLogStructure:
      return "log-structure";
    case RegionClass::kChunkPayload:
      return "chunk-payload";
    case RegionClass::kLocationMap:
      return "location-map";
  }
  return "unknown";
}

namespace {

bool HasPrefix(const std::string& name, const char* prefix) {
  return name.rfind(prefix, 0) == 0;
}

void ClassifySegment(const std::string& name, const Buffer& bytes,
                     std::vector<TamperRegion>* out) {
  uint64_t pos = 0;
  uint64_t size = bytes.size();
  uint64_t header = std::min<uint64_t>(chunk::kSegmentHeaderSize, size);
  if (header > 0) {
    out->push_back({name, 0, header, RegionClass::kLogStructure});
    pos = header;
  }
  while (pos < size) {
    Slice rest(bytes.data() + pos, size - pos);
    chunk::RecordView view;
    if (!chunk::ParseRecord(rest, &view).ok()) {
      // Unreachable tail (torn or trailing garbage): structural bytes.
      out->push_back({name, pos, size - pos, RegionClass::kLogStructure});
      return;
    }
    out->push_back(
        {name, pos, chunk::kRecordHeaderSize, RegionClass::kLogStructure});
    if (view.payload.size() > 0) {
      RegionClass cls = RegionClass::kLogStructure;  // Commit manifests.
      if (view.type == chunk::RecordType::kData) {
        cls = RegionClass::kChunkPayload;
      } else if (view.type == chunk::RecordType::kMapNode) {
        cls = RegionClass::kLocationMap;
      }
      out->push_back(
          {name, pos + chunk::kRecordHeaderSize, view.payload.size(), cls});
    }
    pos += view.record_size;
  }
}

}  // namespace

std::vector<TamperRegion> ClassifyImage(
    const platform::MemUntrustedStore::Image& image) {
  std::vector<TamperRegion> regions;
  for (const auto& [name, bytes] : image) {
    if (bytes.empty()) continue;
    if (HasPrefix(name, "anchor-")) {
      regions.push_back({name, 0, bytes.size(), RegionClass::kAnchorSlot});
    } else if (HasPrefix(name, "seg-")) {
      ClassifySegment(name, bytes, &regions);
    }
  }
  return regions;
}

}  // namespace tdb::harness
