#include "harness/workload_driver.h"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "crypto/cipher_suite.h"
#include "harness/chunk_driver.h"
#include "harness/oracle.h"
#include "harness/region_map.h"
#include "platform/fault_injection.h"
#include "platform/mem_store.h"
#include "platform/one_way_counter.h"
#include "platform/secret_store.h"

namespace tdb::harness {

const char* ScenarioName(Scenario scenario) {
  switch (scenario) {
    case Scenario::kYcsb: return "ycsb";
    case Scenario::kTimeSeries: return "timeseries";
    case Scenario::kLargeObject: return "largeobject";
  }
  return "ycsb";
}

workload::YcsbSpec YcsbSpecFor(const TraceSpec& spec) {
  workload::YcsbSpec y;
  y.mix = workload::MixFromIndex(spec.seed);
  y.records = spec.slots;
  y.ops = spec.commits;
  y.value_bytes = 64;
  y.max_scan_len = 8;
  y.seed = spec.seed;
  y.p_durable = 0.5;
  y.max_inserts = spec.commits;  // Bounded keyspace growth.
  return y;
}

workload::TimeSeriesSpec TimeSeriesSpecFor(const TraceSpec& spec) {
  workload::TimeSeriesSpec t;
  t.seed = spec.seed;
  t.batches = spec.commits;
  t.points_per_batch = 4;
  t.value_bytes = 48;
  t.start_ts = 1000;
  t.ts_stride = 10;
  // Roughly `slots` points stay live; everything older is retention-fed
  // to the cleaner.
  t.retention_window = t.ts_stride * std::max<uint64_t>(1, spec.slots);
  t.retention_every = 3;
  t.scan_every = 2;
  t.p_durable = 0.5;
  return t;
}

workload::LargeObjectSpec LargeObjectSpecFor(const TraceSpec& spec) {
  workload::LargeObjectSpec l;
  l.seed = spec.seed;
  l.ops = spec.commits;
  l.part_bytes = 64;  // Small parts: every object spans several chunks.
  l.max_parts = 3;
  l.p_durable = 0.5;
  l.remove_every = 4;
  l.read_every = 2;
  return l;
}

namespace {

constexpr const char* kMasterSecret = "tdb-harness-master-secret-32byte";
constexpr uint32_t kTearNums[] = {0, 2, 4};  // Coarser: cases are heavy.
constexpr uint32_t kTearDen = 4;

struct WorkloadEnv {
  platform::MemUntrustedStore mem;
  std::unique_ptr<platform::FaultInjectingStore> faulty;
  platform::MemSecretStore secrets;
  platform::MemOneWayCounter counter;

  WorkloadEnv() {
    faulty = std::make_unique<platform::FaultInjectingStore>(&mem);
    (void)secrets.Provision(kMasterSecret);
  }
};

Status Fail(const ReproCase& repro, const std::string& detail) {
  return Status::Corruption(FormatRepro(repro) + " | " + detail);
}

ReproCase MakeRepro(Scenario scenario, const TraceSpec& spec) {
  ReproCase repro;
  repro.layer = ScenarioName(scenario);
  repro.spec = spec;
  return repro;
}

struct WorkloadStack {
  std::unique_ptr<chunk::ChunkStore> chunks;
  std::unique_ptr<object::ObjectStore> objects;
  std::unique_ptr<collection::CollectionStore> collections;

  void Drop() {  // Reverse-order teardown without a clean close.
    collections.reset();
    objects.reset();
    chunks.reset();
  }
};

/// Opens the full stack on `store`. All three scenarios' classes are
/// registered regardless of which one runs (registration is cheap and
/// keeps reopen paths identical).
Result<WorkloadStack> OpenWorkloadStack(
    platform::UntrustedStore* store, platform::SecretStore* secrets,
    platform::OneWayCounter* counter, Preset preset,
    std::shared_ptr<common::MetricsRegistry> metrics = nullptr) {
  WorkloadStack stack;
  chunk::ChunkStoreOptions options = PresetOptions(preset);
  // Injecting the registry keeps the audit trail reachable even when Open
  // itself fails on a tampered image (the store object is never built).
  options.metrics = std::move(metrics);
  TDB_ASSIGN_OR_RETURN(stack.chunks, chunk::ChunkStore::Open(store, secrets,
                                                             counter, options));
  TDB_ASSIGN_OR_RETURN(stack.objects,
                       object::ObjectStore::Open(stack.chunks.get()));
  TDB_RETURN_IF_ERROR(workload::RegisterYcsbClasses(stack.objects.get()));
  TDB_RETURN_IF_ERROR(
      workload::RegisterTimeSeriesClasses(stack.objects.get()));
  TDB_RETURN_IF_ERROR(
      workload::RegisterLargeObjectWorkloadClasses(stack.objects.get()));
  TDB_ASSIGN_OR_RETURN(stack.collections,
                       collection::CollectionStore::Open(stack.objects.get()));
  return stack;
}

/// Bridges the workload drivers' CommitHook onto the harness oracle.
class OracleHook final : public workload::CommitHook {
 public:
  explicit OracleHook(StateOracle* oracle) : oracle_(oracle) {}
  void BeginCommit() override { oracle_->BeginCommit(); }
  void PendingWrite(uint64_t id, Buffer image) override {
    oracle_->PendingWrite(id, std::move(image));
  }
  void PendingRemove(uint64_t id) override { oracle_->PendingRemove(id); }
  void EndCommit(bool acked, bool durable) override {
    oracle_->EndCommit(acked, durable);
  }

 private:
  StateOracle* oracle_;
};

/// Creates the scenario's persistent structures and runs it to completion,
/// mirroring every commit attempt into `oracle`.
Status RunScenario(Scenario scenario, const TraceSpec& spec,
                   WorkloadStack* stack, StateOracle* oracle) {
  OracleHook hook_impl(oracle);
  workload::CommitHook* hook = oracle != nullptr ? &hook_impl : nullptr;
  switch (scenario) {
    case Scenario::kYcsb: {
      TDB_ASSIGN_OR_RETURN(
          std::unique_ptr<workload::YcsbDriver> driver,
          workload::YcsbDriver::Open(stack->objects.get(),
                                     stack->collections.get(),
                                     YcsbSpecFor(spec), /*create=*/true,
                                     hook));
      return driver->Run(/*stream=*/0, hook);
    }
    case Scenario::kTimeSeries: {
      TDB_ASSIGN_OR_RETURN(
          std::unique_ptr<workload::TimeSeriesDriver> driver,
          workload::TimeSeriesDriver::Open(stack->collections.get(),
                                           TimeSeriesSpecFor(spec),
                                           /*create=*/true));
      return driver->Run(hook);
    }
    case Scenario::kLargeObject: {
      TDB_ASSIGN_OR_RETURN(
          std::unique_ptr<workload::LargeObjectDriver> driver,
          workload::LargeObjectDriver::Open(stack->objects.get(),
                                            LargeObjectSpecFor(spec),
                                            /*create=*/true));
      return driver->Run(hook);
    }
  }
  return Status::InvalidArgument("unknown scenario");
}

/// Re-attaches the scenario driver on a reopened stack and scans its
/// committed state, keyed exactly like the oracle.
Status ScanScenario(Scenario scenario, const TraceSpec& spec,
                    WorkloadStack* stack, StateOracle::State* out) {
  switch (scenario) {
    case Scenario::kYcsb: {
      TDB_ASSIGN_OR_RETURN(
          std::unique_ptr<workload::YcsbDriver> driver,
          workload::YcsbDriver::Open(stack->objects.get(),
                                     stack->collections.get(),
                                     YcsbSpecFor(spec), /*create=*/false));
      return driver->Scan(out);
    }
    case Scenario::kTimeSeries: {
      TDB_ASSIGN_OR_RETURN(
          std::unique_ptr<workload::TimeSeriesDriver> driver,
          workload::TimeSeriesDriver::Open(stack->collections.get(),
                                           TimeSeriesSpecFor(spec),
                                           /*create=*/false));
      return driver->ScanAll(out);
    }
    case Scenario::kLargeObject: {
      TDB_ASSIGN_OR_RETURN(
          std::unique_ptr<workload::LargeObjectDriver> driver,
          workload::LargeObjectDriver::Open(stack->objects.get(),
                                            LargeObjectSpecFor(spec),
                                            /*create=*/false));
      return driver->ScanAll(out);
    }
  }
  return Status::InvalidArgument("unknown scenario");
}

}  // namespace

Result<uint64_t> CountWorkloadTraceWrites(Scenario scenario,
                                          const TraceSpec& spec) {
  WorkloadEnv env;
  TDB_ASSIGN_OR_RETURN(
      WorkloadStack stack,
      OpenWorkloadStack(env.faulty.get(), &env.secrets, &env.counter,
                        spec.preset));
  StateOracle oracle;
  // The baseline excludes only the raw stack open; the scenario's own
  // load/setup commits count, so the sweep crashes inside them too.
  uint64_t baseline = env.faulty->writes_seen();
  TDB_RETURN_IF_ERROR(RunScenario(scenario, spec, &stack, &oracle));
  return env.faulty->writes_seen() - baseline;
}

Status RunWorkloadCrashCase(Scenario scenario, const TraceSpec& spec,
                            const CrashCase& crash, SweepStats* stats) {
  ReproCase repro = MakeRepro(scenario, spec);
  repro.kind = "crash";
  repro.crash = crash;

  WorkloadEnv env;
  Result<WorkloadStack> opened = OpenWorkloadStack(
      env.faulty.get(), &env.secrets, &env.counter, spec.preset);
  if (!opened.ok()) {
    return Fail(repro, "initial open failed: " + opened.status().ToString());
  }
  WorkloadStack stack = std::move(opened).value();

  StateOracle oracle;
  env.faulty->CrashAtWrite(crash.write_index, crash.tear_num, crash.tear_den);
  Status run = RunScenario(scenario, spec, &stack, &oracle);
  if (!run.ok() && !env.faulty->crashed()) {
    return Fail(repro, "scenario op failed without a crash: " + run.ToString());
  }
  stack.Drop();

  env.faulty->Reboot();
  opened = OpenWorkloadStack(env.faulty.get(), &env.secrets, &env.counter,
                             spec.preset);
  if (!opened.ok()) {
    if (!env.faulty->crashed()) {
      return Fail(repro, "recovery failed on a legitimate crash image: " +
                             opened.status().ToString());
    }
    env.faulty->Reboot();
    opened = OpenWorkloadStack(env.faulty.get(), &env.secrets, &env.counter,
                               spec.preset);
    if (!opened.ok()) {
      return Fail(repro, "recovery failed after recovery-time crash: " +
                             opened.status().ToString());
    }
  }
  stack = std::move(opened).value();

  StateOracle::State recovered;
  Status scanned = ScanScenario(scenario, spec, &stack, &recovered);
  if (!scanned.ok()) {
    return Fail(repro, "post-recovery scenario scan: " + scanned.ToString());
  }
  Result<size_t> matched = oracle.MatchRecovered(recovered);
  if (!matched.ok()) return Fail(repro, matched.status().message());

  if (stats != nullptr) stats->cases++;
  return Status::OK();
}

Status WorkloadCrashSweep(Scenario scenario, const TraceSpec& spec, int shard,
                          int num_shards, SweepStats* stats) {
  TDB_ASSIGN_OR_RETURN(uint64_t writes,
                       CountWorkloadTraceWrites(scenario, spec));
  if (stats != nullptr) {
    stats->write_points = writes;
    stats->tear_buckets = std::size(kTearNums);
  }
  uint64_t case_idx = 0;
  for (uint64_t point = 0; point < writes; point++) {
    for (uint32_t tear : kTearNums) {
      uint64_t idx = case_idx++;
      if (num_shards > 1 &&
          static_cast<int>(idx % static_cast<uint64_t>(num_shards)) != shard) {
        continue;
      }
      CrashCase crash;
      crash.write_index = point;
      crash.tear_num = tear;
      crash.tear_den = kTearDen;
      TDB_RETURN_IF_ERROR(RunWorkloadCrashCase(scenario, spec, crash, stats));
    }
  }
  return Status::OK();
}

namespace {

/// Crash-consistent image of a completed scenario plus what a reopen of
/// it must reproduce.
struct WorkloadTamperContext {
  platform::MemUntrustedStore::Image image;
  uint64_t counter_value = 0;
  StateOracle oracle;
};

Status BuildWorkloadTamperContext(Scenario scenario, const TraceSpec& spec,
                                  WorkloadTamperContext* ctx) {
  WorkloadEnv env;
  TDB_ASSIGN_OR_RETURN(
      WorkloadStack stack,
      OpenWorkloadStack(env.faulty.get(), &env.secrets, &env.counter,
                        spec.preset));
  TDB_RETURN_IF_ERROR(RunScenario(scenario, spec, &stack, &ctx->oracle));
  // Snapshot BEFORE close so the image keeps a residual log; the attacker
  // grabs the media while the machine is off, mid-lifetime.
  ctx->image = env.mem.SnapshotImage();
  TDB_ASSIGN_OR_RETURN(ctx->counter_value, env.counter.Read());
  return Status::OK();
}

/// Opens an image and re-scans the scenario state. Returns true if the
/// stack flagged tampering anywhere (chunk-store open, integrity scrub,
/// or the scenario scan); false if everything validated — in which case,
/// when a baseline is given, the scanned state must equal it exactly
/// (else this is a silent acceptance and an error is returned).
Result<bool> EvaluateWorkloadImage(
    Scenario scenario, const TraceSpec& spec,
    const platform::MemUntrustedStore::Image& image, uint64_t counter_value,
    const StateOracle::State* baseline, StateOracle::State* out_values,
    std::vector<common::AuditEvent>* audit_out) {
  platform::MemUntrustedStore mem;
  mem.RestoreImage(image);
  platform::MemSecretStore secrets;
  (void)secrets.Provision(kMasterSecret);
  platform::MemOneWayCounter counter;
  while (counter.Read().value() < counter_value) {
    (void)counter.Increment();
  }

  auto registry = std::make_shared<common::MetricsRegistry>();
  // Collect whatever the audit trail holds on every exit path below; the
  // registry outlives the stack, so detections during a failed Open are
  // captured too.
  struct AuditCapture {
    std::shared_ptr<common::MetricsRegistry> registry;
    std::vector<common::AuditEvent>* out;
    ~AuditCapture() {
      if (out != nullptr) *out = registry->audit().Events();
    }
  } capture{registry, audit_out};

  auto is_detection = [](const Status& status) {
    return status.IsTamperDetected() || status.IsReplayDetected() ||
           status.IsCorruption();
  };

  Result<WorkloadStack> opened =
      OpenWorkloadStack(&mem, &secrets, &counter, spec.preset, registry);
  if (!opened.ok()) {
    if (is_detection(opened.status())) return true;
    return Status::Corruption("open failed with unexpected status: " +
                              opened.status().ToString());
  }
  WorkloadStack stack = std::move(opened).value();

  bool detected = false;
  uint64_t checked = 0;
  Status verify = stack.chunks->VerifyIntegrity(&checked);
  if (!verify.ok()) {
    if (!is_detection(verify)) {
      return Status::Corruption("VerifyIntegrity unexpected status: " +
                                verify.ToString());
    }
    detected = true;
  }
  StateOracle::State values;
  Status scanned = ScanScenario(scenario, spec, &stack, &values);
  if (!scanned.ok()) {
    if (!is_detection(scanned)) {
      return Status::Corruption("scenario scan unexpected status: " +
                                scanned.ToString());
    }
    detected = true;
  }
  if (!detected && baseline != nullptr && values != *baseline) {
    return Status::Corruption(
        "SILENT ACCEPTANCE: stack validated but the scenario state differs "
        "from the untampered baseline");
  }
  if (out_values != nullptr) *out_values = std::move(values);
  return detected;
}

Status WorkloadTamperBaseline(Scenario scenario, const TraceSpec& spec,
                              const WorkloadTamperContext& ctx,
                              StateOracle::State* baseline) {
  std::vector<common::AuditEvent> audit;
  Result<bool> flagged =
      EvaluateWorkloadImage(scenario, spec, ctx.image, ctx.counter_value,
                            nullptr, baseline, &audit);
  if (!flagged.ok()) {
    return Status::Corruption("untampered baseline reopen failed: " +
                              flagged.status().ToString());
  }
  if (flagged.value()) {
    return Status::Corruption(
        "untampered baseline reopen flagged tampering on a clean image");
  }
  if (!audit.empty()) {
    return Status::Corruption(
        "untampered baseline reopen left audit events on a clean image: " +
        AuditEventsToString(audit));
  }
  Result<size_t> matched = ctx.oracle.MatchRecovered(*baseline);
  if (!matched.ok()) {
    return Status::Corruption("untampered baseline violates the oracle: " +
                              matched.status().message());
  }
  return Status::OK();
}

}  // namespace

Status RunWorkloadTamperCase(Scenario scenario, const TraceSpec& spec,
                             const std::string& file, uint64_t offset,
                             uint8_t mask) {
  ReproCase repro = MakeRepro(scenario, spec);
  repro.kind = "tamper";
  repro.tamper_file = file;
  repro.tamper_offset = offset;
  repro.tamper_mask = mask;

  WorkloadTamperContext ctx;
  Status built = BuildWorkloadTamperContext(scenario, spec, &ctx);
  if (!built.ok()) return Fail(repro, built.ToString());
  StateOracle::State baseline;
  Status base = WorkloadTamperBaseline(scenario, spec, ctx, &baseline);
  if (!base.ok()) return Fail(repro, base.ToString());

  auto it = ctx.image.find(file);
  if (it == ctx.image.end() || offset >= it->second.size()) {
    return Fail(repro, "tamper site outside the image");
  }
  platform::MemUntrustedStore::Image tampered = ctx.image;
  tampered[file][offset] ^= mask;
  std::vector<common::AuditEvent> audit;
  Result<bool> detected =
      EvaluateWorkloadImage(scenario, spec, tampered, ctx.counter_value,
                            &baseline, nullptr, &audit);
  if (!detected.ok()) return Fail(repro, detected.status().message());
  std::vector<TamperRegion> regions = ClassifyImage(ctx.image);
  const TamperRegion* region = FindTamperRegion(regions, file, offset);
  return CheckTamperAudit(repro, detected.value(), audit,
                          region != nullptr ? &region->cls : nullptr);
}

Status WorkloadTamperSweep(Scenario scenario, const TraceSpec& spec,
                           int shard, int num_shards, SweepStats* stats) {
  WorkloadTamperContext ctx;
  TDB_RETURN_IF_ERROR(BuildWorkloadTamperContext(scenario, spec, &ctx));
  StateOracle::State baseline;
  TDB_RETURN_IF_ERROR(WorkloadTamperBaseline(scenario, spec, ctx, &baseline));

  std::vector<TamperRegion> regions = ClassifyImage(ctx.image);
  uint64_t case_idx = 0;
  for (const TamperRegion& region : regions) {
    for (uint64_t rel : TamperSiteOffsets(region.length)) {
      if (stats != nullptr) {
        stats->tamper_sites++;
        stats->sites_per_class[static_cast<int>(region.cls)]++;
      }
      uint64_t idx = case_idx++;
      if (num_shards > 1 &&
          static_cast<int>(idx % static_cast<uint64_t>(num_shards)) != shard) {
        continue;
      }
      uint64_t offset = region.offset + rel;
      ReproCase repro = MakeRepro(scenario, spec);
      repro.kind = "tamper";
      repro.tamper_file = region.file;
      repro.tamper_offset = offset;
      repro.tamper_mask = kTamperMask;

      platform::MemUntrustedStore::Image tampered = ctx.image;
      tampered[region.file][offset] ^= kTamperMask;
      std::vector<common::AuditEvent> audit;
      Result<bool> detected =
          EvaluateWorkloadImage(scenario, spec, tampered, ctx.counter_value,
                                &baseline, nullptr, &audit);
      if (!detected.ok()) return Fail(repro, detected.status().message());
      TDB_RETURN_IF_ERROR(
          CheckTamperAudit(repro, detected.value(), audit, &region.cls));
      if (stats != nullptr) {
        stats->cases++;
        stats->audit_events += audit.size();
        if (detected.value()) {
          stats->detected++;
        } else {
          stats->masked++;
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace tdb::harness
