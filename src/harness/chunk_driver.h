#ifndef TDB_HARNESS_CHUNK_DRIVER_H_
#define TDB_HARNESS_CHUNK_DRIVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "chunk/chunk_store.h"
#include "common/metrics.h"
#include "common/result.h"
#include "harness/oracle.h"
#include "harness/region_map.h"
#include "harness/trace.h"

namespace tdb::harness {

/// Store options for a preset (see Preset). Every knob a repro line does
/// not carry comes from here, so repros replay bit-exactly.
chunk::ChunkStoreOptions PresetOptions(Preset preset);

/// Dry-runs the trace (no crash) and returns the number of base-store
/// writes it performs — the N that an exhaustive crash sweep enumerates as
/// write indices 0..N-1.
Result<uint64_t> CountChunkTraceWrites(const TraceSpec& spec,
                                       const StoreWrap& wrap = nullptr);

/// Runs one crash case end to end: executes the trace against a
/// fault-injecting store armed at `crash`, reboots, recovers, and checks
/// the durable-commit invariant against the oracle (see StateOracle). Also
/// verifies integrity and that the store accepts a durable write after
/// recovery. A failure Status message begins with the case's repro line.
Status RunChunkCrashCase(const TraceSpec& spec, const CrashCase& crash,
                         SweepStats* stats = nullptr,
                         const StoreWrap& wrap = nullptr);

/// Exhaustive campaign: every write index 0..N-1 of the trace x every
/// torn-write fraction bucket {0,1,2,3,4}/4 (no sampling). `shard` of
/// `num_shards` runs every case with index % num_shards == shard, so ctest
/// can parallelize while the union still covers every case. If
/// `recovery_crash` >= 0, every case additionally crashes at that write
/// index during recovery (double-crash coverage).
Status ChunkCrashSweep(const TraceSpec& spec, int shard, int num_shards,
                       SweepStats* stats = nullptr,
                       int64_t recovery_crash = -1,
                       const StoreWrap& wrap = nullptr);

/// Runs one tamper case: executes the trace cleanly, XORs `mask` into one
/// byte of the resulting image, reopens, and asserts the mutation is
/// either fully masked (every recovered value identical to the untampered
/// baseline) or reported (TamperDetected / ReplayDetected / Corruption) —
/// never silently accepted.
Status RunChunkTamperCase(const TraceSpec& spec, const std::string& file,
                          uint64_t offset, uint8_t mask);

/// Exhaustive tamper campaign: classifies every byte of the image into the
/// four structural region classes (anchor slots, log structure, chunk
/// payloads, location map) and corrupts the first/middle/last byte of
/// every region instance, sharded like ChunkCrashSweep.
Status ChunkTamperSweep(const TraceSpec& spec, int shard, int num_shards,
                        SweepStats* stats = nullptr);

// --- Tamper-evaluation building blocks, shared with the other layers'
// --- tamper sweeps (object/collection/workload scenarios).

/// The XOR mask every sweep applies to a corrupted byte.
inline constexpr uint8_t kTamperMask = 0x40;

/// Audit regions a tampered byte of `cls` may legitimately surface as.
/// The byte's structural class and the detector that fires need not match
/// exactly: e.g. a corrupted payload byte inside the residual log breaks
/// the recovery scan, which the store reports as a log/counter-level
/// replay detection rather than a payload hash mismatch.
bool AuditRegionCompatible(RegionClass cls, int region);

std::string AuditEventsToString(const std::vector<common::AuditEvent>& events);

/// The audit-trail contract for one tamper case: a detected corruption
/// leaves exactly one deduplicated audit event (never zero — no silent
/// detection — and never several for one corrupted byte), with a region
/// compatible with the byte's structural class; a masked corruption
/// leaves none. Failures quote `repro`.
Status CheckTamperAudit(const ReproCase& repro, bool detected,
                        const std::vector<common::AuditEvent>& audit,
                        const RegionClass* cls);

/// First / middle / last byte of a region, deduplicated.
std::vector<uint64_t> TamperSiteOffsets(uint64_t length);

/// The classified region containing (file, offset), or nullptr.
const TamperRegion* FindTamperRegion(const std::vector<TamperRegion>& regions,
                                     const std::string& file, uint64_t offset);

}  // namespace tdb::harness

#endif  // TDB_HARNESS_CHUNK_DRIVER_H_
