#include "harness/trace.h"

#include <set>
#include <sstream>

#include "common/random.h"

namespace tdb::harness {

std::vector<TraceCommit> GenerateTrace(const TraceSpec& spec) {
  Random rng(spec.seed);
  std::vector<TraceCommit> trace;
  std::set<uint32_t> live;
  for (uint32_t c = 0; c < spec.commits; c++) {
    TraceCommit commit;
    uint32_t ops = static_cast<uint32_t>(rng.Range(1, spec.max_ops_per_commit));
    for (uint32_t i = 0; i < ops; i++) {
      TraceOp op;
      op.slot = static_cast<uint32_t>(rng.Uniform(spec.slots));
      if (live.count(op.slot) > 0 && rng.Bernoulli(spec.p_dealloc)) {
        op.kind = TraceOp::Kind::kDealloc;
        live.erase(op.slot);
      } else {
        op.kind = TraceOp::Kind::kWrite;
        op.size = static_cast<uint32_t>(
            rng.Range(spec.min_value_bytes, spec.max_value_bytes));
        op.payload_seed = rng.Next();
        live.insert(op.slot);
      }
      commit.ops.push_back(op);
    }
    commit.durable = rng.Bernoulli(spec.p_durable);
    commit.checkpoint_after = rng.Bernoulli(spec.p_checkpoint);
    if (spec.force_mid_checkpoint && c == spec.commits / 2) {
      commit.checkpoint_after = true;
    }
    trace.push_back(std::move(commit));
  }
  return trace;
}

Buffer SlotPayload(uint64_t payload_seed, uint32_t size) {
  Random rng(payload_seed);
  Buffer payload;
  rng.Fill(&payload, size);
  // Semi-compressible: the back half repeats the front half. Sizes (and
  // so every preset's crash/tear geometry) stay exactly as the spec
  // drives them, but the codec preset gets a mix of records that compress
  // (long repeat) and records that stay raw (tiny payloads where the
  // codec overhead wins).
  const size_t half = payload.size() / 2;
  for (size_t i = half; i < payload.size(); i++) {
    payload[i] = payload[i - half];
  }
  return payload;
}

const char* PresetName(Preset preset) {
  switch (preset) {
    case Preset::kStrict:
      return "strict";
    case Preset::kCleaning:
      return "cleaning";
    case Preset::kGroup:
      return "group";
    case Preset::kCodec:
      return "codec";
  }
  return "strict";
}

std::string FormatRepro(const ReproCase& repro) {
  std::ostringstream line;
  line << "TDB-REPRO v1 layer=" << repro.layer << " kind=" << repro.kind
       << " preset=" << PresetName(repro.spec.preset)
       << " seed=" << repro.spec.seed << " commits=" << repro.spec.commits
       << " slots=" << repro.spec.slots;
  if (repro.kind == "crash") {
    line << " point=" << repro.crash.write_index
         << " tear=" << repro.crash.tear_num << "/" << repro.crash.tear_den
         << " rcrash=" << repro.crash.recovery_crash;
  } else {
    line << " file=" << repro.tamper_file << " off=" << repro.tamper_offset
         << " mask=" << repro.tamper_mask;
  }
  return line.str();
}

namespace {

Status MalformedRepro(const std::string& detail) {
  return Status::InvalidArgument("malformed repro line: " + detail);
}

Result<uint64_t> ParseUint(const std::string& value) {
  if (value.empty()) return MalformedRepro("empty numeric field");
  uint64_t out = 0;
  for (char ch : value) {
    if (ch < '0' || ch > '9') return MalformedRepro("bad number: " + value);
    out = out * 10 + static_cast<uint64_t>(ch - '0');
  }
  return out;
}

}  // namespace

Result<ReproCase> ParseRepro(const std::string& line) {
  std::istringstream in(line);
  std::string token;
  if (!(in >> token) || token != "TDB-REPRO") {
    return MalformedRepro("missing TDB-REPRO tag");
  }
  if (!(in >> token) || token != "v1") return MalformedRepro("unknown version");

  ReproCase repro;
  while (in >> token) {
    size_t eq = token.find('=');
    if (eq == std::string::npos) return MalformedRepro("not key=value: " + token);
    std::string key = token.substr(0, eq);
    std::string value = token.substr(eq + 1);
    if (key == "layer") {
      if (value != "chunk" && value != "object" && value != "collection" &&
          value != "ycsb" && value != "timeseries" && value != "largeobject") {
        return MalformedRepro("unknown layer: " + value);
      }
      repro.layer = value;
    } else if (key == "kind") {
      if (value != "crash" && value != "tamper") {
        return MalformedRepro("unknown kind: " + value);
      }
      repro.kind = value;
    } else if (key == "preset") {
      if (value == "strict") {
        repro.spec.preset = Preset::kStrict;
      } else if (value == "cleaning") {
        repro.spec.preset = Preset::kCleaning;
      } else if (value == "group") {
        repro.spec.preset = Preset::kGroup;
      } else if (value == "codec") {
        repro.spec.preset = Preset::kCodec;
      } else {
        return MalformedRepro("unknown preset: " + value);
      }
    } else if (key == "seed") {
      TDB_ASSIGN_OR_RETURN(repro.spec.seed, ParseUint(value));
    } else if (key == "commits") {
      TDB_ASSIGN_OR_RETURN(uint64_t n, ParseUint(value));
      repro.spec.commits = static_cast<uint32_t>(n);
    } else if (key == "slots") {
      TDB_ASSIGN_OR_RETURN(uint64_t n, ParseUint(value));
      repro.spec.slots = static_cast<uint32_t>(n);
    } else if (key == "point") {
      TDB_ASSIGN_OR_RETURN(repro.crash.write_index, ParseUint(value));
    } else if (key == "tear") {
      size_t slash = value.find('/');
      if (slash == std::string::npos) return MalformedRepro("tear=a/b expected");
      TDB_ASSIGN_OR_RETURN(uint64_t num, ParseUint(value.substr(0, slash)));
      TDB_ASSIGN_OR_RETURN(uint64_t den, ParseUint(value.substr(slash + 1)));
      repro.crash.tear_num = static_cast<uint32_t>(num);
      repro.crash.tear_den = static_cast<uint32_t>(den);
    } else if (key == "rcrash") {
      if (value == "-1") {
        repro.crash.recovery_crash = -1;
      } else {
        TDB_ASSIGN_OR_RETURN(uint64_t n, ParseUint(value));
        repro.crash.recovery_crash = static_cast<int64_t>(n);
      }
    } else if (key == "file") {
      repro.tamper_file = value;
    } else if (key == "off") {
      TDB_ASSIGN_OR_RETURN(repro.tamper_offset, ParseUint(value));
    } else if (key == "mask") {
      TDB_ASSIGN_OR_RETURN(uint64_t n, ParseUint(value));
      repro.tamper_mask = static_cast<uint32_t>(n);
    } else {
      return MalformedRepro("unknown key: " + key);
    }
  }
  if (repro.kind == "tamper" && repro.tamper_file.empty()) {
    return MalformedRepro("tamper repro without file=");
  }
  return repro;
}

}  // namespace tdb::harness
