#include "harness/collection_driver.h"

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "collection/collection.h"
#include "collection/indexer.h"
#include "collection/key.h"
#include "crypto/cipher_suite.h"
#include "harness/chunk_driver.h"
#include "harness/object_driver.h"
#include "harness/oracle.h"
#include "platform/fault_injection.h"
#include "platform/mem_store.h"
#include "platform/one_way_counter.h"
#include "platform/secret_store.h"

namespace tdb::harness {

namespace {

constexpr const char* kMasterSecret = "tdb-harness-master-secret-32byte";
constexpr const char* kCollectionName = "harness";
constexpr const char* kIndexName = "by-key";
constexpr uint32_t kTearNums[] = {0, 2, 4};  // Coarser: cases are heavier.
constexpr uint32_t kTearDen = 4;

struct CollectionEnv {
  platform::MemUntrustedStore mem;
  std::unique_ptr<platform::FaultInjectingStore> faulty;
  platform::MemSecretStore secrets;
  platform::MemOneWayCounter counter;

  CollectionEnv() {
    faulty = std::make_unique<platform::FaultInjectingStore>(&mem);
    (void)secrets.Provision(kMasterSecret);
  }
};

Status Fail(const ReproCase& repro, const std::string& detail) {
  return Status::Corruption(FormatRepro(repro) + " | " + detail);
}

std::shared_ptr<collection::GenericIndexer> MakeKeyIndexer() {
  return std::make_shared<
      collection::Indexer<HarnessBlob, collection::IntKey>>(
      kIndexName, collection::Uniqueness::kUnique,
      collection::IndexKind::kBTree,
      [](const HarnessBlob& blob) {
        return collection::IntKey(static_cast<int64_t>(blob.key()));
      },
      collection::KeyMutability::kImmutable);
}

struct CollectionStack {
  std::unique_ptr<chunk::ChunkStore> chunks;
  std::unique_ptr<object::ObjectStore> objects;
  std::unique_ptr<collection::CollectionStore> collections;
  std::shared_ptr<collection::GenericIndexer> indexer;
};

/// Opens the full stack; `create` additionally creates the collection (a
/// durable setup commit that runs before the crash schedule is armed).
Result<CollectionStack> OpenCollectionStack(CollectionEnv* env, Preset preset,
                                            bool create) {
  CollectionStack stack;
  TDB_ASSIGN_OR_RETURN(
      stack.chunks,
      chunk::ChunkStore::Open(env->faulty.get(), &env->secrets, &env->counter,
                              PresetOptions(preset)));
  TDB_ASSIGN_OR_RETURN(stack.objects,
                       object::ObjectStore::Open(stack.chunks.get()));
  TDB_RETURN_IF_ERROR(RegisterHarnessClasses(stack.objects.get()));
  TDB_ASSIGN_OR_RETURN(stack.collections,
                       collection::CollectionStore::Open(stack.objects.get()));
  stack.indexer = MakeKeyIndexer();
  TDB_RETURN_IF_ERROR(
      stack.collections->RegisterIndexer(kCollectionName, stack.indexer));
  if (create) {
    collection::CTransaction ct(stack.collections.get());
    Result<object::WritableRef<collection::Collection>> coll =
        ct.CreateCollection(kCollectionName, stack.indexer);
    if (!coll.ok()) return coll.status();
    TDB_RETURN_IF_ERROR(ct.Commit(true));
  }
  return stack;
}

/// One trace commit group = one CTransaction. The oracle is keyed by slot.
/// Ops on a slot inserted earlier in the same commit group are skipped on
/// both sides: collection iterators are insensitive, so an in-transaction
/// insert is not visible to a later query in the same transaction.
Status ExecuteCollectionTrace(const std::vector<TraceCommit>& trace,
                              CollectionStack* stack, StateOracle* oracle) {
  for (const TraceCommit& commit : trace) {
    collection::CTransaction ct(stack->collections.get());
    oracle->BeginCommit();
    Result<object::WritableRef<collection::Collection>> coll =
        ct.WriteCollection(kCollectionName);
    if (!coll.ok()) {
      oracle->EndCommit(false, commit.durable);
      return coll.status();
    }
    std::set<uint32_t> fresh;  // Slots inserted by this commit group.
    for (const TraceOp& op : commit.ops) {
      if (fresh.count(op.slot) > 0) continue;
      collection::IntKey key(static_cast<int64_t>(op.slot));
      Result<std::unique_ptr<collection::Iterator>> query =
          coll.value()->Query(&ct, *stack->indexer, key);
      if (!query.ok()) {
        oracle->EndCommit(false, commit.durable);
        return query.status();
      }
      std::unique_ptr<collection::Iterator> it = std::move(query).value();
      Status op_status;
      if (op.kind == TraceOp::Kind::kWrite) {
        Buffer payload = SlotPayload(op.payload_seed, op.size);
        if (it->end()) {
          Result<object::ObjectId> inserted = coll.value()->Insert(
              &ct, std::make_unique<HarnessBlob>(op.slot, payload));
          op_status = inserted.ok() ? Status::OK() : inserted.status();
        } else {
          Result<object::WritableRef<HarnessBlob>> ref =
              it->Write<HarnessBlob>();
          if (ref.ok()) ref.value()->set_bytes(payload);
          op_status = ref.ok() ? Status::OK() : ref.status();
        }
        if (op_status.ok()) oracle->PendingWrite(op.slot, std::move(payload));
      } else {
        if (!it->end()) op_status = it->RemoveCurrent();
        if (op_status.ok()) oracle->PendingRemove(op.slot);
      }
      Status closed = it->Close();
      if (op_status.ok() && !closed.ok()) op_status = closed;
      if (!op_status.ok()) {
        oracle->EndCommit(false, commit.durable);
        return op_status;
      }
    }
    Status status = ct.Commit(commit.durable);
    oracle->EndCommit(status.ok(), commit.durable);
    TDB_RETURN_IF_ERROR(status);
  }
  return Status::OK();
}

/// Scans the collection and returns slot -> payload.
Status ScanCollection(CollectionStack* stack, StateOracle::State* out) {
  collection::CTransaction ct(stack->collections.get());
  Result<object::ReadonlyRef<collection::Collection>> coll =
      ct.ReadCollection(kCollectionName);
  if (!coll.ok()) return coll.status();
  TDB_ASSIGN_OR_RETURN(std::unique_ptr<collection::Iterator> it,
                       coll.value()->Query(&ct, *stack->indexer));
  for (; !it->end(); it->Next()) {
    Result<object::ReadonlyRef<HarnessBlob>> ref = it->Read<HarnessBlob>();
    if (!ref.ok()) return ref.status();
    uint64_t slot = ref.value()->key();
    if (out->count(slot) > 0) {
      return Status::Corruption("duplicate key " + std::to_string(slot) +
                                " in recovered collection scan");
    }
    (*out)[slot] = ref.value()->bytes();
  }
  TDB_RETURN_IF_ERROR(it->Close());
  return ct.Abort();
}

}  // namespace

Result<uint64_t> CountCollectionTraceWrites(const TraceSpec& spec) {
  std::vector<TraceCommit> trace = GenerateTrace(spec);
  CollectionEnv env;
  TDB_ASSIGN_OR_RETURN(CollectionStack stack,
                       OpenCollectionStack(&env, spec.preset, true));
  StateOracle oracle;
  uint64_t baseline = env.faulty->writes_seen();
  TDB_RETURN_IF_ERROR(ExecuteCollectionTrace(trace, &stack, &oracle));
  return env.faulty->writes_seen() - baseline;
}

Status RunCollectionCrashCase(const TraceSpec& spec, const CrashCase& crash,
                              SweepStats* stats) {
  ReproCase repro;
  repro.layer = "collection";
  repro.kind = "crash";
  repro.spec = spec;
  repro.crash = crash;

  std::vector<TraceCommit> trace = GenerateTrace(spec);
  CollectionEnv env;
  Result<CollectionStack> opened = OpenCollectionStack(&env, spec.preset, true);
  if (!opened.ok()) {
    return Fail(repro, "initial open failed: " + opened.status().ToString());
  }
  CollectionStack stack = std::move(opened).value();

  StateOracle oracle;
  env.faulty->CrashAtWrite(crash.write_index, crash.tear_num, crash.tear_den);
  Status run = ExecuteCollectionTrace(trace, &stack, &oracle);
  if (!run.ok() && !env.faulty->crashed()) {
    return Fail(repro, "trace op failed without a crash: " + run.ToString());
  }
  stack.collections.reset();
  stack.objects.reset();
  stack.chunks.reset();

  env.faulty->Reboot();
  opened = OpenCollectionStack(&env, spec.preset, false);
  if (!opened.ok()) {
    if (!env.faulty->crashed()) {
      return Fail(repro, "recovery failed on a legitimate crash image: " +
                             opened.status().ToString());
    }
    env.faulty->Reboot();
    opened = OpenCollectionStack(&env, spec.preset, false);
    if (!opened.ok()) {
      return Fail(repro, "recovery failed after recovery-time crash: " +
                             opened.status().ToString());
    }
  }
  stack = std::move(opened).value();

  StateOracle::State recovered;
  Status scanned = ScanCollection(&stack, &recovered);
  if (!scanned.ok()) {
    return Fail(repro, "post-recovery scan: " + scanned.ToString());
  }
  Result<size_t> matched = oracle.MatchRecovered(recovered);
  if (!matched.ok()) return Fail(repro, matched.status().message());

  if (stats != nullptr) stats->cases++;
  return Status::OK();
}

Status CollectionCrashSweep(const TraceSpec& spec, int shard, int num_shards,
                            SweepStats* stats) {
  TDB_ASSIGN_OR_RETURN(uint64_t writes, CountCollectionTraceWrites(spec));
  if (stats != nullptr) {
    stats->write_points = writes;
    stats->tear_buckets = std::size(kTearNums);
  }
  uint64_t case_idx = 0;
  for (uint64_t point = 0; point < writes; point++) {
    for (uint32_t tear : kTearNums) {
      uint64_t idx = case_idx++;
      if (num_shards > 1 &&
          static_cast<int>(idx % static_cast<uint64_t>(num_shards)) != shard) {
        continue;
      }
      CrashCase crash;
      crash.write_index = point;
      crash.tear_num = tear;
      crash.tear_den = kTearDen;
      TDB_RETURN_IF_ERROR(RunCollectionCrashCase(spec, crash, stats));
    }
  }
  return Status::OK();
}

}  // namespace tdb::harness
