#ifndef TDB_HARNESS_TRACE_H_
#define TDB_HARNESS_TRACE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "platform/untrusted_store.h"

namespace tdb::harness {

/// Store-configuration preset used by a trace run. Presets (rather than
/// free-form options) keep a repro line a single short token.
enum class Preset {
  /// Cleaning and automatic checkpoints off: the only durable boundaries
  /// are the trace's own durable commits and explicit checkpoints, so the
  /// oracle check is as tight as possible.
  kStrict,
  /// Small segments, aggressive cleaner and auto-checkpoints: covers the
  /// crash windows inside maintenance commits.
  kCleaning,
  /// Like kStrict but with ChunkStoreOptions::group_commit on: nondurable
  /// commits buffer into an open group and each durable commit seals ONE
  /// merged multi-commit record followed by one sync + one counter bump.
  /// Crash sweeps over this preset cover intra-group tear points — power
  /// failing inside the single merged append — and assert the durable
  /// floor is only raised at group ack.
  kGroup,
  /// Like kStrict but with the compress-before-encrypt codec on
  /// (ChunkStoreOptions::compression). SlotPayload is semi-compressible,
  /// so sweeps cover both compressed and stored-raw records: crash points
  /// land inside compressed appends and tamper sites hit compressed
  /// sealed payloads (whose corruption may surface as a decompression
  /// failure rather than a hash mismatch — still never silent).
  kCodec,
};

/// One logical operation inside a commit group. Slots are a small logical
/// namespace that the drivers map to chunk/object ids at run time.
struct TraceOp {
  enum class Kind : uint8_t { kWrite, kDealloc };
  Kind kind = Kind::kWrite;
  uint32_t slot = 0;
  uint32_t size = 0;           // Payload bytes (kWrite only).
  uint64_t payload_seed = 0;   // Payload = SlotPayload(payload_seed, size).
};

/// One atomic commit group of a trace.
struct TraceCommit {
  std::vector<TraceOp> ops;
  bool durable = false;
  bool checkpoint_after = false;  // Explicit Checkpoint() after the commit.
};

/// Seeded workload shape. Every field that is not serialized into a repro
/// line must keep its default for repros to replay exactly.
struct TraceSpec {
  uint64_t seed = 1;
  uint32_t commits = 12;
  uint32_t slots = 12;
  Preset preset = Preset::kStrict;

  // Knobs below are not serialized into repro lines; leave at defaults.
  uint32_t max_ops_per_commit = 5;
  uint32_t min_value_bytes = 16;
  uint32_t max_value_bytes = 192;
  double p_durable = 0.5;
  double p_dealloc = 0.15;
  double p_checkpoint = 0.08;
  bool force_mid_checkpoint = true;  // Guarantees map-node records exist.
};

/// Deterministic trace expansion: the same spec always yields the same
/// commit groups, operations, and payload bytes.
std::vector<TraceCommit> GenerateTrace(const TraceSpec& spec);

/// Deterministic payload bytes for one write.
Buffer SlotPayload(uint64_t payload_seed, uint32_t size);

/// A crash point inside a trace run: the base-store write index at which
/// power fails, and which sector-aligned fraction of that write survives.
struct CrashCase {
  uint64_t write_index = 0;
  uint32_t tear_num = 4;
  uint32_t tear_den = 4;
  /// If >= 0, a second crash is armed at this write index *during
  /// recovery* after the first reboot (double-crash coverage).
  int64_t recovery_crash = -1;
};

/// Campaign coverage accounting. `write_points` and the tamper site
/// counters describe the FULL sweep (identical across shards); `cases`,
/// `detected` and `masked` count only the work this shard executed.
struct SweepStats {
  uint64_t write_points = 0;  // Distinct crash write indices enumerated.
  uint64_t tear_buckets = 0;  // Torn-write fractions per crash point.
  uint64_t cases = 0;         // Cases this shard ran.
  uint64_t tamper_sites = 0;  // Corruption sites in the full campaign.
  uint64_t sites_per_class[4] = {0, 0, 0, 0};
  uint64_t detected = 0;      // Tamper cases flagged by the store.
  uint64_t masked = 0;        // Tamper cases fully masked (values intact).
  // Security-audit-trail cross-check: every detected tamper case must
  // leave exactly one (deduplicated) audit event in the store's registry,
  // with a region consistent with the byte actually corrupted; masked
  // cases and crash-normal recoveries must leave none. The sweep fails
  // hard on violations; these tallies let tests assert coverage too.
  uint64_t audit_events = 0;  // Audit events observed across all cases.
};

/// Lets a test interpose its own (possibly buggy) store between the
/// in-memory base store and the fault injector; used to prove the harness
/// catches real bugs. The returned pointer must stay valid for the run.
using StoreWrap =
    std::function<platform::UntrustedStore*(platform::UntrustedStore*)>;

/// A parsed single-line repro. Failures print `FormatRepro(...)` so any
/// failing campaign case replays as a one-liner via ReplayRepro().
struct ReproCase {
  /// "chunk" | "object" | "collection", or a workload scenario:
  /// "ycsb" | "timeseries" | "largeobject".
  std::string layer = "chunk";
  std::string kind = "crash";   // "crash" | "tamper".
  TraceSpec spec;
  CrashCase crash;              // kind == "crash".
  std::string tamper_file;      // kind == "tamper".
  uint64_t tamper_offset = 0;
  uint32_t tamper_mask = 0;
};

/// e.g. "TDB-REPRO v1 layer=chunk kind=crash preset=strict seed=7
///       commits=12 slots=12 point=17 tear=2/4 rcrash=-1"
std::string FormatRepro(const ReproCase& repro);
Result<ReproCase> ParseRepro(const std::string& line);

const char* PresetName(Preset preset);

}  // namespace tdb::harness

#endif  // TDB_HARNESS_TRACE_H_
