#include "harness/object_driver.h"

#include <map>
#include <memory>
#include <vector>

#include "crypto/cipher_suite.h"
#include "harness/chunk_driver.h"
#include "platform/fault_injection.h"
#include "platform/mem_store.h"
#include "platform/one_way_counter.h"
#include "platform/secret_store.h"

namespace tdb::harness {

void HarnessBlob::Pickle(object::Pickler* pickler) const {
  pickler->PutUint64(key_);
  pickler->PutBytes(bytes_);
}

Status HarnessBlob::UnpickleFrom(object::Unpickler* unpickler) {
  TDB_RETURN_IF_ERROR(unpickler->GetUint64(&key_));
  return unpickler->GetBytes(&bytes_);
}

Status RegisterHarnessClasses(object::ObjectStore* os) {
  return os->registry().Register<HarnessBlob>(HarnessBlob::kClassId);
}

Buffer BlobImage(uint64_t key, const Buffer& bytes) {
  Buffer image;
  image.reserve(8 + bytes.size());
  for (int i = 0; i < 8; i++) {
    image.push_back(static_cast<uint8_t>(key >> (8 * i)));
  }
  image.insert(image.end(), bytes.begin(), bytes.end());
  return image;
}

namespace {

constexpr const char* kMasterSecret = "tdb-harness-master-secret-32byte";
constexpr uint32_t kTearNums[] = {0, 1, 2, 3, 4};
constexpr uint32_t kTearDen = 4;

struct ObjectEnv {
  platform::MemUntrustedStore mem;
  std::unique_ptr<platform::FaultInjectingStore> faulty;
  platform::MemSecretStore secrets;
  platform::MemOneWayCounter counter;

  ObjectEnv() {
    faulty = std::make_unique<platform::FaultInjectingStore>(&mem);
    (void)secrets.Provision(kMasterSecret);
  }
};

Status Fail(const ReproCase& repro, const std::string& detail) {
  return Status::Corruption(FormatRepro(repro) + " | " + detail);
}

struct ObjectStack {
  std::unique_ptr<chunk::ChunkStore> chunks;
  std::unique_ptr<object::ObjectStore> objects;  // Destroyed first.
};

Result<ObjectStack> OpenObjectStack(ObjectEnv* env, Preset preset) {
  ObjectStack stack;
  TDB_ASSIGN_OR_RETURN(
      stack.chunks,
      chunk::ChunkStore::Open(env->faulty.get(), &env->secrets, &env->counter,
                              PresetOptions(preset)));
  TDB_ASSIGN_OR_RETURN(stack.objects,
                       object::ObjectStore::Open(stack.chunks.get()));
  TDB_RETURN_IF_ERROR(RegisterHarnessClasses(stack.objects.get()));
  return stack;
}

/// One trace commit group = one object-store transaction.
Status ExecuteObjectTrace(const std::vector<TraceCommit>& trace,
                          object::ObjectStore* os, StateOracle* oracle) {
  std::map<uint32_t, object::ObjectId> slot_oids;
  for (const TraceCommit& commit : trace) {
    object::Transaction txn(os);
    oracle->BeginCommit();
    for (const TraceOp& op : commit.ops) {
      if (op.kind == TraceOp::Kind::kWrite) {
        Buffer payload = SlotPayload(op.payload_seed, op.size);
        auto it = slot_oids.find(op.slot);
        if (it == slot_oids.end()) {
          Result<object::ObjectId> inserted = txn.Insert(
              std::make_unique<HarnessBlob>(op.slot, payload));
          if (!inserted.ok()) {
            oracle->EndCommit(false, commit.durable);
            return inserted.status();
          }
          slot_oids[op.slot] = inserted.value();
          oracle->PendingWrite(inserted.value(), BlobImage(op.slot, payload));
        } else {
          Result<object::WritableRef<HarnessBlob>> ref =
              txn.OpenWritable<HarnessBlob>(it->second);
          if (!ref.ok()) {
            oracle->EndCommit(false, commit.durable);
            return ref.status();
          }
          ref.value()->set_bytes(payload);
          oracle->PendingWrite(it->second, BlobImage(op.slot, payload));
        }
      } else {
        auto it = slot_oids.find(op.slot);
        if (it == slot_oids.end()) continue;
        Status removed = txn.Remove(it->second);
        if (!removed.ok()) {
          oracle->EndCommit(false, commit.durable);
          return removed;
        }
        oracle->PendingRemove(it->second);
        slot_oids.erase(it);
      }
    }
    Status status = txn.Commit(commit.durable);
    oracle->EndCommit(status.ok(), commit.durable);
    TDB_RETURN_IF_ERROR(status);
  }
  return Status::OK();
}

}  // namespace

Result<uint64_t> CountObjectTraceWrites(const TraceSpec& spec) {
  std::vector<TraceCommit> trace = GenerateTrace(spec);
  ObjectEnv env;
  TDB_ASSIGN_OR_RETURN(ObjectStack stack, OpenObjectStack(&env, spec.preset));
  StateOracle oracle;
  uint64_t baseline = env.faulty->writes_seen();
  TDB_RETURN_IF_ERROR(ExecuteObjectTrace(trace, stack.objects.get(), &oracle));
  return env.faulty->writes_seen() - baseline;
}

Status RunObjectCrashCase(const TraceSpec& spec, const CrashCase& crash,
                          SweepStats* stats) {
  ReproCase repro;
  repro.layer = "object";
  repro.kind = "crash";
  repro.spec = spec;
  repro.crash = crash;

  std::vector<TraceCommit> trace = GenerateTrace(spec);
  ObjectEnv env;
  Result<ObjectStack> opened = OpenObjectStack(&env, spec.preset);
  if (!opened.ok()) {
    return Fail(repro, "initial open failed: " + opened.status().ToString());
  }
  ObjectStack stack = std::move(opened).value();

  StateOracle oracle;
  env.faulty->CrashAtWrite(crash.write_index, crash.tear_num, crash.tear_den);
  Status run = ExecuteObjectTrace(trace, stack.objects.get(), &oracle);
  if (!run.ok() && !env.faulty->crashed()) {
    return Fail(repro, "trace op failed without a crash: " + run.ToString());
  }
  stack.objects.reset();
  stack.chunks.reset();

  env.faulty->Reboot();
  if (crash.recovery_crash >= 0) {
    env.faulty->CrashAtWrite(static_cast<uint64_t>(crash.recovery_crash), 1,
                             2);
  }
  opened = OpenObjectStack(&env, spec.preset);
  if (!opened.ok()) {
    if (!env.faulty->crashed()) {
      return Fail(repro, "recovery failed on a legitimate crash image: " +
                             opened.status().ToString());
    }
    env.faulty->Reboot();
    opened = OpenObjectStack(&env, spec.preset);
    if (!opened.ok()) {
      return Fail(repro, "recovery failed after recovery-time crash: " +
                             opened.status().ToString());
    }
  } else {
    env.faulty->Reboot();
  }
  stack = std::move(opened).value();

  StateOracle::State recovered;
  {
    object::Transaction txn(stack.objects.get());
    for (uint64_t oid : oracle.ids()) {
      Result<object::ReadonlyRef<HarnessBlob>> ref =
          txn.OpenReadonly<HarnessBlob>(oid);
      if (ref.ok()) {
        recovered[oid] =
            BlobImage(ref.value()->key(), ref.value()->bytes());
      } else if (!ref.status().IsNotFound()) {
        return Fail(repro, "post-recovery read of object " +
                               std::to_string(oid) +
                               " failed: " + ref.status().ToString());
      }
    }
    Status aborted = txn.Abort();
    if (!aborted.ok()) {
      return Fail(repro, "post-recovery read txn abort: " +
                             aborted.ToString());
    }
  }
  Result<size_t> matched = oracle.MatchRecovered(recovered);
  if (!matched.ok()) return Fail(repro, matched.status().message());

  // The recovered store must accept a durable transaction.
  {
    object::Transaction txn(stack.objects.get());
    Result<object::ObjectId> probe = txn.Insert(std::make_unique<HarnessBlob>(
        0xF00Du, Buffer{0xAA, 0xBB, 0xCC}));
    if (!probe.ok()) {
      return Fail(repro,
                  "post-recovery insert: " + probe.status().ToString());
    }
    Status committed = txn.Commit(true);
    if (!committed.ok()) {
      return Fail(repro,
                  "post-recovery durable commit: " + committed.ToString());
    }
  }
  if (stats != nullptr) stats->cases++;
  return Status::OK();
}

Status ObjectCrashSweep(const TraceSpec& spec, int shard, int num_shards,
                        SweepStats* stats) {
  TDB_ASSIGN_OR_RETURN(uint64_t writes, CountObjectTraceWrites(spec));
  if (stats != nullptr) {
    stats->write_points = writes;
    stats->tear_buckets = std::size(kTearNums);
  }
  uint64_t case_idx = 0;
  for (uint64_t point = 0; point < writes; point++) {
    for (uint32_t tear : kTearNums) {
      uint64_t idx = case_idx++;
      if (num_shards > 1 &&
          static_cast<int>(idx % static_cast<uint64_t>(num_shards)) != shard) {
        continue;
      }
      CrashCase crash;
      crash.write_index = point;
      crash.tear_num = tear;
      crash.tear_den = kTearDen;
      TDB_RETURN_IF_ERROR(RunObjectCrashCase(spec, crash, stats));
    }
  }
  return Status::OK();
}

}  // namespace tdb::harness
