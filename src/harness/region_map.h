#ifndef TDB_HARNESS_REGION_MAP_H_
#define TDB_HARNESS_REGION_MAP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "platform/mem_store.h"

namespace tdb::harness {

/// The four structural region classes of an on-store database image; the
/// tamper sweep corrupts representatives of every instance of each class.
enum class RegionClass : uint8_t {
  kAnchorSlot = 0,    // anchor-0 / anchor-1 slot files (the trust root).
  kLogStructure = 1,  // Segment headers, record headers, commit manifests.
  kChunkPayload = 2,  // Sealed data-record payloads.
  kLocationMap = 3,   // Sealed map-node record payloads (the Merkle tree).
};

inline constexpr int kRegionClasses = 4;

const char* RegionClassName(RegionClass cls);

/// One contiguous byte range of a store file with a single classification.
struct TamperRegion {
  std::string file;
  uint64_t offset = 0;
  uint64_t length = 0;
  RegionClass cls = RegionClass::kLogStructure;
};

/// Walks a crash-consistent store image and classifies every byte of the
/// anchor slots and segment files by parsing the log structure. Bytes the
/// parse cannot reach (e.g. a torn tail) are classified kLogStructure.
std::vector<TamperRegion> ClassifyImage(
    const platform::MemUntrustedStore::Image& image);

}  // namespace tdb::harness

#endif  // TDB_HARNESS_REGION_MAP_H_
