#ifndef TDB_HARNESS_COLLECTION_DRIVER_H_
#define TDB_HARNESS_COLLECTION_DRIVER_H_

#include <cstdint>

#include "common/result.h"
#include "harness/trace.h"

namespace tdb::harness {

/// Collection-layer (full stack: collection -> object -> chunk -> fault
/// store) analogues of the chunk driver. The trace's commit groups become
/// CTransactions over one int-keyed B-tree collection of HarnessBlobs
/// (key = slot): insert / iterator-update / iterator-remove. Recovery is
/// checked by reopening the whole stack and scanning the collection
/// against the oracle's boundary states.
Result<uint64_t> CountCollectionTraceWrites(const TraceSpec& spec);
Status RunCollectionCrashCase(const TraceSpec& spec, const CrashCase& crash,
                              SweepStats* stats = nullptr);
Status CollectionCrashSweep(const TraceSpec& spec, int shard, int num_shards,
                            SweepStats* stats = nullptr);

}  // namespace tdb::harness

#endif  // TDB_HARNESS_COLLECTION_DRIVER_H_
