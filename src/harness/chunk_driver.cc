#include "harness/chunk_driver.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "crypto/cipher_suite.h"
#include "harness/region_map.h"
#include "platform/fault_injection.h"
#include "platform/mem_store.h"
#include "platform/one_way_counter.h"
#include "platform/secret_store.h"

namespace tdb::harness {

chunk::ChunkStoreOptions PresetOptions(Preset preset) {
  chunk::ChunkStoreOptions options;
  options.security = crypto::SecurityConfig::Modern();
  options.map_fanout = 8;
  options.cache_bytes = 256 * 1024;
  options.crypto_threads = 0;  // Serial: thousands of short-lived stores.
  if (preset == Preset::kStrict || preset == Preset::kGroup ||
      preset == Preset::kCodec) {
    // No maintenance commits besides the trace's own checkpoints: the set
    // of durable boundaries is exactly what the oracle models. kGroup
    // additionally coalesces nondurable commits into merged multi-commit
    // records, so the durable boundaries (and crash-tear geometry) differ
    // while the oracle invariant stays identical. kCodec compresses each
    // record before sealing; boundaries are unchanged, the record bytes
    // (and hence crash/tamper sites) are.
    options.segment_size = 4096;
    options.checkpoint_interval_bytes = 1ull << 40;
    options.max_clean_segments_per_commit = 0;
    options.max_utilization = 0.95;
    options.group_commit = (preset == Preset::kGroup);
    options.compression = (preset == Preset::kCodec);
  } else {
    // Aggressive maintenance: crash points inside auto-checkpoint and
    // cleaning commits.
    options.segment_size = 2048;
    options.checkpoint_interval_bytes = 16 * 1024;
    options.max_clean_segments_per_commit = 2;
    options.max_utilization = 0.6;
  }
  return options;
}

namespace {

constexpr const char* kMasterSecret = "tdb-harness-master-secret-32byte";

/// Torn-write fractions enumerated per crash point. Group commit merges
/// several logical commits into one record, so its appends are longer:
/// finer-grained tear buckets keep the sweep enumerating tear points that
/// land INSIDE a merged multi-commit record, not only at its edges.
struct TearBuckets {
  const uint32_t* nums;
  size_t count;
  uint32_t den;
};

constexpr uint32_t kTearNumsDefault[] = {0, 1, 2, 3, 4};
constexpr uint32_t kTearNumsGroup[] = {0, 1, 2, 3, 4, 5, 6, 7, 8};

TearBuckets PresetTearBuckets(Preset preset) {
  if (preset == Preset::kGroup) {
    return {kTearNumsGroup, std::size(kTearNumsGroup), 8};
  }
  return {kTearNumsDefault, std::size(kTearNumsDefault), 4};
}

/// One fresh store environment (base memory image, optional buggy wrapper,
/// fault injector, trusted secret + counter that survive "reboots").
struct ChunkEnv {
  platform::MemUntrustedStore mem;
  platform::UntrustedStore* base = nullptr;
  std::unique_ptr<platform::FaultInjectingStore> faulty;
  platform::MemSecretStore secrets;
  platform::MemOneWayCounter counter;

  explicit ChunkEnv(const StoreWrap& wrap) {
    base = wrap ? wrap(&mem) : &mem;
    faulty = std::make_unique<platform::FaultInjectingStore>(base);
    (void)secrets.Provision(kMasterSecret);
  }
};

Status Fail(const ReproCase& repro, const std::string& detail) {
  return Status::Corruption(FormatRepro(repro) + " | " + detail);
}

/// Executes the trace on an open store, mirroring every commit attempt
/// into the oracle. Returns the first failing operation's status (a
/// simulated crash surfaces as IOError); OK if the whole trace ran.
Status ExecuteChunkTrace(const std::vector<TraceCommit>& trace,
                         chunk::ChunkStore* cs, StateOracle* oracle) {
  std::map<uint32_t, chunk::ChunkId> slot_ids;
  for (const TraceCommit& commit : trace) {
    chunk::WriteBatch batch;
    oracle->BeginCommit();
    for (const TraceOp& op : commit.ops) {
      if (op.kind == TraceOp::Kind::kWrite) {
        auto it = slot_ids.find(op.slot);
        chunk::ChunkId cid;
        if (it == slot_ids.end()) {
          cid = cs->AllocateChunkId();
          slot_ids[op.slot] = cid;
        } else {
          cid = it->second;
        }
        Buffer payload = SlotPayload(op.payload_seed, op.size);
        batch.Write(cid, payload);
        oracle->PendingWrite(cid, std::move(payload));
      } else {
        auto it = slot_ids.find(op.slot);
        if (it == slot_ids.end()) continue;
        batch.Deallocate(it->second);
        oracle->PendingRemove(it->second);
        slot_ids.erase(it);
      }
    }
    Status status = cs->Commit(batch, commit.durable);
    oracle->EndCommit(status.ok(), commit.durable);
    TDB_RETURN_IF_ERROR(status);
    if (commit.checkpoint_after) {
      TDB_RETURN_IF_ERROR(cs->Checkpoint());
      oracle->MarkAllDurable();
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<chunk::ChunkStore>> OpenStore(
    ChunkEnv* env, Preset preset,
    std::shared_ptr<common::MetricsRegistry> metrics = nullptr) {
  chunk::ChunkStoreOptions options = PresetOptions(preset);
  // Injecting the registry keeps the audit trail reachable even when Open
  // itself fails on a tampered image (the store object is never built).
  options.metrics = std::move(metrics);
  return chunk::ChunkStore::Open(env->faulty.get(), &env->secrets,
                                 &env->counter, options);
}

}  // namespace

bool AuditRegionCompatible(RegionClass cls, int region) {
  switch (cls) {
    case RegionClass::kAnchorSlot:
      return region == common::kRegionAnchor ||
             region == common::kRegionCounter ||
             region == common::kRegionLog;
    case RegionClass::kLogStructure:
      return region == common::kRegionLog ||
             region == common::kRegionCounter;
    case RegionClass::kChunkPayload:
      return region == common::kRegionPayload ||
             region == common::kRegionLog ||
             region == common::kRegionCounter;
    case RegionClass::kLocationMap:
      return region == common::kRegionMap ||
             region == common::kRegionLog ||
             region == common::kRegionCounter;
  }
  return false;
}

std::string AuditEventsToString(
    const std::vector<common::AuditEvent>& events) {
  std::string out;
  for (const common::AuditEvent& e : events) {
    if (!out.empty()) out += ", ";
    out += e.kind + "@" + e.location + " region=" +
           std::to_string(e.region) + " x" + std::to_string(e.count);
  }
  return out.empty() ? "<none>" : out;
}

std::vector<uint64_t> TamperSiteOffsets(uint64_t length) {
  std::vector<uint64_t> offsets{0};
  if (length > 2) offsets.push_back(length / 2);
  if (length > 1) offsets.push_back(length - 1);
  return offsets;
}

const TamperRegion* FindTamperRegion(const std::vector<TamperRegion>& regions,
                                     const std::string& file,
                                     uint64_t offset) {
  for (const TamperRegion& region : regions) {
    if (region.file == file && offset >= region.offset &&
        offset < region.offset + region.length) {
      return &region;
    }
  }
  return nullptr;
}

Status CheckTamperAudit(const ReproCase& repro, bool detected,
                        const std::vector<common::AuditEvent>& audit,
                        const RegionClass* cls) {
  auto fail = [&repro](const std::string& detail) {
    return Status::Corruption(FormatRepro(repro) + " | " + detail);
  };
  if (!detected) {
    if (!audit.empty()) {
      return fail("masked tamper left audit events: " +
                  AuditEventsToString(audit));
    }
    return Status::OK();
  }
  if (audit.empty()) {
    return fail(
        "tamper detected but the audit trail is empty (silent detection)");
  }
  if (audit.size() > 1) {
    return fail("tamper produced " + std::to_string(audit.size()) +
                " audit events, want exactly 1 deduplicated: " +
                AuditEventsToString(audit));
  }
  if (cls != nullptr && !AuditRegionCompatible(*cls, audit[0].region)) {
    return fail(std::string("audit region incompatible with class ") +
                RegionClassName(*cls) + ": " + AuditEventsToString(audit));
  }
  return Status::OK();
}

Result<uint64_t> CountChunkTraceWrites(const TraceSpec& spec,
                                       const StoreWrap& wrap) {
  std::vector<TraceCommit> trace = GenerateTrace(spec);
  ChunkEnv env(wrap);
  TDB_ASSIGN_OR_RETURN(std::unique_ptr<chunk::ChunkStore> cs,
                       OpenStore(&env, spec.preset));
  StateOracle oracle;
  uint64_t baseline = env.faulty->writes_seen();
  TDB_RETURN_IF_ERROR(ExecuteChunkTrace(trace, cs.get(), &oracle));
  return env.faulty->writes_seen() - baseline;
}

Status RunChunkCrashCase(const TraceSpec& spec, const CrashCase& crash,
                         SweepStats* stats, const StoreWrap& wrap) {
  ReproCase repro;
  repro.layer = "chunk";
  repro.kind = "crash";
  repro.spec = spec;
  repro.crash = crash;

  std::vector<TraceCommit> trace = GenerateTrace(spec);
  ChunkEnv env(wrap);
  Result<std::unique_ptr<chunk::ChunkStore>> opened =
      OpenStore(&env, spec.preset);
  if (!opened.ok()) {
    return Fail(repro, "initial open failed: " + opened.status().ToString());
  }
  std::unique_ptr<chunk::ChunkStore> cs = std::move(opened).value();

  StateOracle oracle;
  env.faulty->CrashAtWrite(crash.write_index, crash.tear_num, crash.tear_den);
  Status run = ExecuteChunkTrace(trace, cs.get(), &oracle);
  if (!run.ok() && !env.faulty->crashed()) {
    return Fail(repro, "trace op failed without a crash: " + run.ToString());
  }
  // Drop the store object without a clean close. If the crash has not
  // fired yet (write_index beyond the trace), it tears the destructor's
  // best-effort checkpoint instead.
  cs.reset();

  env.faulty->Reboot();
  if (crash.recovery_crash >= 0) {
    env.faulty->CrashAtWrite(static_cast<uint64_t>(crash.recovery_crash), 1,
                             2);
  }
  // Recovery of a crash-normal image must never log security audit events
  // (torn tails are expected, not attacks); the injected registry outlives
  // failed opens so nothing is missed.
  auto recovery_metrics = std::make_shared<common::MetricsRegistry>();
  opened = OpenStore(&env, spec.preset, recovery_metrics);
  if (!opened.ok()) {
    if (!env.faulty->crashed()) {
      return Fail(repro, "recovery failed on a legitimate crash image: " +
                             opened.status().ToString());
    }
    env.faulty->Reboot();
    opened = OpenStore(&env, spec.preset, recovery_metrics);
    if (!opened.ok()) {
      return Fail(repro, "recovery failed after recovery-time crash: " +
                             opened.status().ToString());
    }
  } else {
    env.faulty->Reboot();  // Disarm a recovery crash that never fired.
  }
  cs = std::move(opened).value();

  StateOracle::State recovered;
  for (uint64_t id : oracle.ids()) {
    Result<Buffer> read = cs->Read(id);
    if (read.ok()) {
      recovered[id] = std::move(read).value();
    } else if (!read.status().IsNotFound()) {
      return Fail(repro, "post-recovery read of chunk " + std::to_string(id) +
                             " failed: " + read.status().ToString());
    }
  }
  Result<size_t> matched = oracle.MatchRecovered(recovered);
  if (!matched.ok()) return Fail(repro, matched.status().message());

  uint64_t checked = 0;
  Status verify = cs->VerifyIntegrity(&checked);
  if (!verify.ok()) {
    return Fail(repro, "post-recovery VerifyIntegrity: " + verify.ToString());
  }

  // The recovered store must remain fully writable.
  chunk::ChunkId probe = cs->AllocateChunkId();
  Status write = cs->Write(probe, Slice("post-recovery-probe"), true);
  if (!write.ok()) {
    return Fail(repro, "post-recovery durable write: " + write.ToString());
  }
  Result<Buffer> readback = cs->Read(probe);
  if (!readback.ok() ||
      Slice(readback.value()) != Slice("post-recovery-probe")) {
    return Fail(repro, "post-recovery probe readback mismatch");
  }
  if (recovery_metrics->audit().size() != 0) {
    return Fail(repro, "crash-normal recovery logged audit events: " +
                           AuditEventsToString(
                               recovery_metrics->audit().Events()));
  }
  Status close = cs->Close();
  if (!close.ok()) {
    return Fail(repro, "post-recovery close: " + close.ToString());
  }
  if (stats != nullptr) stats->cases++;
  return Status::OK();
}

Status ChunkCrashSweep(const TraceSpec& spec, int shard, int num_shards,
                       SweepStats* stats, int64_t recovery_crash,
                       const StoreWrap& wrap) {
  TDB_ASSIGN_OR_RETURN(uint64_t writes, CountChunkTraceWrites(spec, wrap));
  TearBuckets tears = PresetTearBuckets(spec.preset);
  if (stats != nullptr) {
    stats->write_points = writes;
    stats->tear_buckets = tears.count;
  }
  uint64_t case_idx = 0;
  for (uint64_t point = 0; point < writes; point++) {
    for (size_t t = 0; t < tears.count; t++) {
      uint32_t tear = tears.nums[t];
      uint64_t idx = case_idx++;
      if (num_shards > 1 &&
          static_cast<int>(idx % static_cast<uint64_t>(num_shards)) != shard) {
        continue;
      }
      CrashCase crash;
      crash.write_index = point;
      crash.tear_num = tear;
      crash.tear_den = tears.den;
      crash.recovery_crash = recovery_crash;
      TDB_RETURN_IF_ERROR(RunChunkCrashCase(spec, crash, stats, wrap));
    }
  }
  return Status::OK();
}

namespace {

/// Crash-consistent image of a completed trace plus what recovery of it
/// must reproduce.
struct TamperContext {
  platform::MemUntrustedStore::Image image;
  uint64_t counter_value = 0;
  StateOracle oracle;
};

Status BuildTamperContext(const TraceSpec& spec, TamperContext* ctx) {
  std::vector<TraceCommit> trace = GenerateTrace(spec);
  ChunkEnv env(nullptr);
  TDB_ASSIGN_OR_RETURN(std::unique_ptr<chunk::ChunkStore> cs,
                       OpenStore(&env, spec.preset));
  TDB_RETURN_IF_ERROR(ExecuteChunkTrace(trace, cs.get(), &ctx->oracle));
  // Snapshot BEFORE close so the image keeps a residual log; the attacker
  // grabs the media while the machine is off, mid-lifetime.
  ctx->image = env.mem.SnapshotImage();
  TDB_ASSIGN_OR_RETURN(ctx->counter_value, env.counter.Read());
  return Status::OK();
}

/// Opens an image and reads back every oracle id. Returns true if the
/// store flagged tampering anywhere (open, read, or integrity scrub);
/// false if everything validated — in which case, when a baseline is
/// given, the recovered values must equal it exactly (else this is a
/// silent acceptance and an error is returned).
Result<bool> EvaluateImage(const TraceSpec& spec,
                           const platform::MemUntrustedStore::Image& image,
                           uint64_t counter_value,
                           const std::set<uint64_t>& ids,
                           const StateOracle::State* baseline,
                           StateOracle::State* out_values,
                           std::vector<common::AuditEvent>* audit_out) {
  platform::MemUntrustedStore mem;
  mem.RestoreImage(image);
  platform::MemSecretStore secrets;
  (void)secrets.Provision(kMasterSecret);
  platform::MemOneWayCounter counter;
  while (counter.Read().value() < counter_value) {
    (void)counter.Increment();
  }

  auto registry = std::make_shared<common::MetricsRegistry>();
  chunk::ChunkStoreOptions options = PresetOptions(spec.preset);
  options.metrics = registry;
  // Collect whatever the audit trail holds on every exit path below; the
  // registry outlives the store, so detections during a failed Open are
  // captured too.
  struct AuditCapture {
    std::shared_ptr<common::MetricsRegistry> registry;
    std::vector<common::AuditEvent>* out;
    ~AuditCapture() {
      if (out != nullptr) *out = registry->audit().Events();
    }
  } capture{registry, audit_out};

  Result<std::unique_ptr<chunk::ChunkStore>> opened =
      chunk::ChunkStore::Open(&mem, &secrets, &counter, options);
  if (!opened.ok()) {
    const Status& status = opened.status();
    if (status.IsTamperDetected() || status.IsReplayDetected() ||
        status.IsCorruption()) {
      return true;
    }
    return Status::Corruption("open failed with unexpected status: " +
                              status.ToString());
  }
  std::unique_ptr<chunk::ChunkStore> cs = std::move(opened).value();

  bool detected = false;
  StateOracle::State values;
  for (uint64_t id : ids) {
    Result<Buffer> read = cs->Read(id);
    if (read.ok()) {
      values[id] = std::move(read).value();
    } else if (read.status().IsTamperDetected() ||
               read.status().IsCorruption()) {
      detected = true;
    } else if (!read.status().IsNotFound()) {
      return Status::Corruption("read of chunk " + std::to_string(id) +
                                " failed with unexpected status: " +
                                read.status().ToString());
    }
  }
  uint64_t checked = 0;
  Status verify = cs->VerifyIntegrity(&checked);
  if (!verify.ok()) {
    if (verify.IsTamperDetected() || verify.IsCorruption()) {
      detected = true;
    } else {
      return Status::Corruption("VerifyIntegrity unexpected status: " +
                                verify.ToString());
    }
  }
  if (!detected && baseline != nullptr && values != *baseline) {
    return Status::Corruption(
        "SILENT ACCEPTANCE: store validated but recovered values differ "
        "from the untampered baseline");
  }
  if (out_values != nullptr) *out_values = std::move(values);
  return detected;
}

Status TamperBaseline(const TraceSpec& spec, const TamperContext& ctx,
                      StateOracle::State* baseline) {
  std::vector<common::AuditEvent> audit;
  Result<bool> flagged =
      EvaluateImage(spec, ctx.image, ctx.counter_value, ctx.oracle.ids(),
                    nullptr, baseline, &audit);
  if (!flagged.ok()) {
    return Status::Corruption("untampered baseline reopen failed: " +
                              flagged.status().ToString());
  }
  if (flagged.value()) {
    return Status::Corruption(
        "untampered baseline reopen flagged tampering on a clean image");
  }
  if (!audit.empty()) {
    return Status::Corruption(
        "untampered baseline reopen left audit events on a clean image: " +
        AuditEventsToString(audit));
  }
  // The baseline itself must satisfy the durable-commit invariant.
  Result<size_t> matched = ctx.oracle.MatchRecovered(*baseline);
  if (!matched.ok()) {
    return Status::Corruption("untampered baseline violates the oracle: " +
                              matched.status().message());
  }
  return Status::OK();
}

}  // namespace

Status RunChunkTamperCase(const TraceSpec& spec, const std::string& file,
                          uint64_t offset, uint8_t mask) {
  ReproCase repro;
  repro.layer = "chunk";
  repro.kind = "tamper";
  repro.spec = spec;
  repro.tamper_file = file;
  repro.tamper_offset = offset;
  repro.tamper_mask = mask;

  TamperContext ctx;
  Status built = BuildTamperContext(spec, &ctx);
  if (!built.ok()) return Fail(repro, built.ToString());
  StateOracle::State baseline;
  Status base = TamperBaseline(spec, ctx, &baseline);
  if (!base.ok()) return Fail(repro, base.ToString());

  auto it = ctx.image.find(file);
  if (it == ctx.image.end() || offset >= it->second.size()) {
    return Fail(repro, "tamper site outside the image");
  }
  platform::MemUntrustedStore::Image tampered = ctx.image;
  tampered[file][offset] ^= mask;
  std::vector<common::AuditEvent> audit;
  Result<bool> detected =
      EvaluateImage(spec, tampered, ctx.counter_value, ctx.oracle.ids(),
                    &baseline, nullptr, &audit);
  if (!detected.ok()) return Fail(repro, detected.status().message());
  std::vector<TamperRegion> regions = ClassifyImage(ctx.image);
  const TamperRegion* region = FindTamperRegion(regions, file, offset);
  return CheckTamperAudit(repro, detected.value(), audit,
                          region != nullptr ? &region->cls : nullptr);
}

Status ChunkTamperSweep(const TraceSpec& spec, int shard, int num_shards,
                        SweepStats* stats) {
  TamperContext ctx;
  TDB_RETURN_IF_ERROR(BuildTamperContext(spec, &ctx));
  StateOracle::State baseline;
  TDB_RETURN_IF_ERROR(TamperBaseline(spec, ctx, &baseline));

  std::vector<TamperRegion> regions = ClassifyImage(ctx.image);
  uint64_t case_idx = 0;
  for (const TamperRegion& region : regions) {
    for (uint64_t rel : TamperSiteOffsets(region.length)) {
      // Full-campaign coverage counters (identical across shards).
      if (stats != nullptr) {
        stats->tamper_sites++;
        stats->sites_per_class[static_cast<int>(region.cls)]++;
      }
      uint64_t idx = case_idx++;
      if (num_shards > 1 &&
          static_cast<int>(idx % static_cast<uint64_t>(num_shards)) != shard) {
        continue;
      }
      uint64_t offset = region.offset + rel;
      ReproCase repro;
      repro.layer = "chunk";
      repro.kind = "tamper";
      repro.spec = spec;
      repro.tamper_file = region.file;
      repro.tamper_offset = offset;
      repro.tamper_mask = kTamperMask;

      platform::MemUntrustedStore::Image tampered = ctx.image;
      tampered[region.file][offset] ^= kTamperMask;
      std::vector<common::AuditEvent> audit;
      Result<bool> detected =
          EvaluateImage(spec, tampered, ctx.counter_value, ctx.oracle.ids(),
                        &baseline, nullptr, &audit);
      if (!detected.ok()) return Fail(repro, detected.status().message());
      TDB_RETURN_IF_ERROR(
          CheckTamperAudit(repro, detected.value(), audit, &region.cls));
      if (stats != nullptr) {
        stats->cases++;
        stats->audit_events += audit.size();
        if (detected.value()) {
          stats->detected++;
        } else {
          stats->masked++;
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace tdb::harness
