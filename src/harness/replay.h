#ifndef TDB_HARNESS_REPLAY_H_
#define TDB_HARNESS_REPLAY_H_

#include <string>

#include "common/status.h"

namespace tdb::harness {

/// Replays a single-line repro printed by a failing campaign case. The
/// returned status is the case verdict: OK means the case now passes,
/// anything else reproduces (and re-describes) the original failure.
Status ReplayRepro(const std::string& line);

}  // namespace tdb::harness

#endif  // TDB_HARNESS_REPLAY_H_
