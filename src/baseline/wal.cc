#include "baseline/wal.h"

#include "common/coding.h"

namespace tdb::baseline {

void EncodeWalRecord(Buffer* dst, const WalRecord& record) {
  Buffer payload;
  payload.push_back(static_cast<uint8_t>(record.type));
  PutVarint32(&payload, record.tree_id);
  PutLengthPrefixed(&payload, record.key);
  PutLengthPrefixed(&payload, record.value);
  PutFixed32(dst, static_cast<uint32_t>(payload.size()));
  PutFixed32(dst, Checksum32(payload));
  dst->insert(dst->end(), payload.begin(), payload.end());
}

WalWriter::WalWriter(platform::UntrustedStore* store, std::string file)
    : store_(store), file_(std::move(file)) {}

Status WalWriter::Open(uint64_t tail) {
  if (!store_->Exists(file_)) {
    TDB_RETURN_IF_ERROR(store_->Create(file_, false));
  }
  tail_ = tail;
  // Drop any torn bytes past the recovered tail.
  TDB_RETURN_IF_ERROR(store_->Truncate(file_, tail_));
  return Status::OK();
}

void WalWriter::Add(const WalRecord& record) {
  EncodeWalRecord(&pending_, record);
}

Status WalWriter::Append(Slice framed) {
  TDB_RETURN_IF_ERROR(store_->Write(file_, tail_, framed));
  tail_ += framed.size();
  bytes_written_ += framed.size();
  return Status::OK();
}

Status WalWriter::Commit(bool sync) {
  WalRecord commit;
  commit.type = WalRecordType::kCommit;
  EncodeWalRecord(&pending_, commit);
  TDB_RETURN_IF_ERROR(Append(pending_));
  pending_.clear();
  if (sync) TDB_RETURN_IF_ERROR(store_->Sync(file_));
  return Status::OK();
}

Status WalWriter::Barrier(bool sync) {
  Buffer framed;
  WalRecord barrier;
  barrier.type = WalRecordType::kBarrier;
  EncodeWalRecord(&framed, barrier);
  TDB_RETURN_IF_ERROR(Append(framed));
  if (sync) TDB_RETURN_IF_ERROR(store_->Sync(file_));
  return Status::OK();
}

Result<uint64_t> ScanWal(platform::UntrustedStore* store,
                         const std::string& file,
                         const std::function<Status(const WalRecord&)>& fn) {
  if (!store->Exists(file)) return static_cast<uint64_t>(0);
  TDB_ASSIGN_OR_RETURN(uint64_t size, store->Size(file));
  Buffer data;
  TDB_RETURN_IF_ERROR(store->Read(file, 0, static_cast<size_t>(size), &data));
  uint64_t pos = 0;
  uint64_t intact_end = 0;
  while (pos + 8 <= data.size()) {
    uint32_t len = DecodeFixed32(data.data() + pos);
    uint32_t cksum = DecodeFixed32(data.data() + pos + 4);
    if (pos + 8 + len > data.size()) break;  // Torn tail.
    Slice payload(data.data() + pos + 8, len);
    if (Checksum32(payload) != cksum) break;
    WalRecord record;
    Decoder dec(payload);
    Slice type_byte;
    if (!dec.GetBytes(1, &type_byte).ok()) break;
    if (type_byte[0] < 1 || type_byte[0] > 5) break;
    record.type = static_cast<WalRecordType>(type_byte[0]);
    Slice key, value;
    if (!dec.GetVarint32(&record.tree_id).ok() ||
        !dec.GetLengthPrefixed(&key).ok() ||
        !dec.GetLengthPrefixed(&value).ok()) {
      break;
    }
    record.key = key.ToBuffer();
    record.value = value.ToBuffer();
    TDB_RETURN_IF_ERROR(fn(record));
    pos += 8 + len;
    intact_end = pos;
  }
  return intact_end;
}

}  // namespace tdb::baseline
