#include "baseline/pager.h"

#include "common/check.h"
#include "common/coding.h"

namespace tdb::baseline {

Buffer NodePage::Serialize() const {
  Buffer out;
  out.push_back(leaf ? 1 : 0);
  PutVarint32(&out, static_cast<uint32_t>(keys.size()));
  for (size_t i = 0; i < keys.size(); i++) {
    PutLengthPrefixed(&out, keys[i]);
    if (leaf) PutLengthPrefixed(&out, values[i]);
  }
  if (!leaf) {
    for (uint32_t child : children) PutVarint32(&out, child);
  }
  TDB_CHECK(out.size() <= Pager::kPageSize, "page overflow");
  out.resize(Pager::kPageSize, 0);
  return out;
}

Status NodePage::Parse(Slice data) {
  Decoder dec(data);
  Slice leaf_byte;
  TDB_RETURN_IF_ERROR(dec.GetBytes(1, &leaf_byte));
  leaf = leaf_byte[0] != 0;
  uint32_t n;
  TDB_RETURN_IF_ERROR(dec.GetVarint32(&n));
  if (n > Pager::kPageSize) return Status::Corruption("bad page entry count");
  keys.clear();
  values.clear();
  children.clear();
  keys.reserve(n);
  for (uint32_t i = 0; i < n; i++) {
    Slice key;
    TDB_RETURN_IF_ERROR(dec.GetLengthPrefixed(&key));
    keys.push_back(key.ToBuffer());
    if (leaf) {
      Slice value;
      TDB_RETURN_IF_ERROR(dec.GetLengthPrefixed(&value));
      values.push_back(value.ToBuffer());
    }
  }
  if (!leaf) {
    children.resize(n + 1);
    for (uint32_t i = 0; i <= n; i++) {
      TDB_RETURN_IF_ERROR(dec.GetVarint32(&children[i]));
    }
  }
  return Status::OK();
}

size_t NodePage::ByteSize() const {
  size_t size = 8;
  for (size_t i = 0; i < keys.size(); i++) {
    size += keys[i].size() + 5;
    if (leaf) size += values[i].size() + 5;
  }
  size += children.size() * 5;
  return size;
}

Pager::Pager(platform::UntrustedStore* store, std::string file,
             size_t cache_pages)
    : store_(store), file_(std::move(file)), cache_pages_(cache_pages) {}

void Pager::Reset(uint32_t next_page_id) {
  Clear();
  next_page_id_ = next_page_id;
}

void Pager::Clear() {
  cache_.clear();
  lru_.clear();
  dirty_count_ = 0;
}

void Pager::Touch(uint32_t page_id, Entry& entry) {
  lru_.erase(entry.lru_pos);
  lru_.push_front(page_id);
  entry.lru_pos = lru_.begin();
}

Result<NodePage*> Pager::Get(uint32_t page_id) {
  auto it = cache_.find(page_id);
  if (it != cache_.end()) {
    Touch(page_id, it->second);
    return it->second.page.get();
  }
  Buffer raw;
  TDB_RETURN_IF_ERROR(store_->Read(
      file_, static_cast<uint64_t>(page_id) * kPageSize, kPageSize, &raw));
  page_reads_++;
  auto page = std::make_unique<NodePage>();
  TDB_RETURN_IF_ERROR(page->Parse(raw));
  Entry entry;
  entry.page = std::move(page);
  lru_.push_front(page_id);
  entry.lru_pos = lru_.begin();
  NodePage* raw_ptr = entry.page.get();
  cache_.emplace(page_id, std::move(entry));
  EvictCleanIfNeeded();
  return raw_ptr;
}

Result<NodePage*> Pager::GetWritable(uint32_t page_id) {
  TDB_ASSIGN_OR_RETURN(NodePage * page, Get(page_id));
  Entry& entry = cache_.at(page_id);
  if (!entry.dirty) {
    entry.dirty = true;
    dirty_count_++;
  }
  return page;
}

Result<uint32_t> Pager::Allocate(NodePage** out) {
  uint32_t page_id = next_page_id_++;
  Entry entry;
  entry.page = std::make_unique<NodePage>();
  entry.dirty = true;
  dirty_count_++;
  lru_.push_front(page_id);
  entry.lru_pos = lru_.begin();
  *out = entry.page.get();
  cache_.emplace(page_id, std::move(entry));
  return page_id;
}

Status Pager::FlushAll(bool sync) {
  for (auto& [page_id, entry] : cache_) {
    if (!entry.dirty) continue;
    Buffer raw = entry.page->Serialize();
    TDB_RETURN_IF_ERROR(store_->Write(
        file_, static_cast<uint64_t>(page_id) * kPageSize, raw));
    entry.dirty = false;
    pages_written_++;
  }
  dirty_count_ = 0;
  if (sync) TDB_RETURN_IF_ERROR(store_->Sync(file_));
  EvictCleanIfNeeded();
  return Status::OK();
}

void Pager::EvictCleanIfNeeded() {
  auto it = lru_.end();
  while (cache_.size() > cache_pages_ && it != lru_.begin()) {
    --it;
    // Never evict the MRU entry: callers hold a raw pointer to the page
    // they just fetched.
    if (it == lru_.begin()) break;
    auto entry_it = cache_.find(*it);
    if (entry_it->second.dirty) continue;
    cache_.erase(entry_it);
    it = lru_.erase(it);
  }
}

}  // namespace tdb::baseline
