#ifndef TDB_BASELINE_BASELINE_DB_H_
#define TDB_BASELINE_BASELINE_DB_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "baseline/pager.h"
#include "baseline/wal.h"
#include "common/result.h"
#include "platform/untrusted_store.h"

namespace tdb::baseline {

/// BaselineDb: an architectural stand-in for Berkeley DB (§7), the
/// comparator in the paper's evaluation. A conventional embedded keyed
/// store: update-in-place B-trees over fixed-size pages, a buffer pool,
/// and a write-ahead log that is fsynced at commit and grows until an
/// explicit checkpoint. Like Berkeley DB's data model, each tree maps
/// unique, immutable byte-string keys to byte-string values — no typed
/// objects, no automatic index maintenance, no protection against
/// malicious tampering (all the things TDB adds).
///
/// Crash atomicity: logical WAL records + commit markers; recovery replays
/// committed operations since the last flush barrier. Pages are never
/// stolen dirty; when the pool fills, a barrier (flush-all + marker) runs.
///
/// Single-writer: one transaction at a time (the paper's TPC-B driver is
/// single-threaded).
class BaselineDb {
 public:
  using TreeId = uint32_t;

  struct Options {
    /// Buffer pool budget; the paper's evaluation uses 4 MB (§7.2).
    size_t cache_bytes = 4 * 1024 * 1024;
    /// Fsync the log at commit (the paper's WRITE_THROUGH setting).
    bool sync_commits = true;
  };

  struct Stats {
    uint64_t commits = 0;
    uint64_t barriers = 0;
    uint64_t wal_bytes = 0;
    uint64_t pages_written = 0;
    uint64_t page_reads = 0;
  };

  /// Opens (creating or recovering) the database in `store` using files
  /// "bdb-data" and "bdb-wal".
  static Result<std::unique_ptr<BaselineDb>> Open(
      platform::UntrustedStore* store, const Options& options);

  Result<TreeId> CreateTree(const std::string& name);
  Result<TreeId> OpenTree(const std::string& name) const;

  /// One transaction; operations are buffered and logged/applied at
  /// Commit (abort is therefore trivial).
  class Txn {
   public:
    explicit Txn(BaselineDb* db);
    ~Txn();
    Txn(const Txn&) = delete;
    Txn& operator=(const Txn&) = delete;

    /// Reads through the transaction's own pending writes.
    Result<Buffer> Get(TreeId tree, Slice key);
    Status Put(TreeId tree, Slice key, Slice value);
    Status Delete(TreeId tree, Slice key);
    Status Commit();
    Status Abort();
    bool active() const { return active_; }

   private:
    friend class BaselineDb;
    BaselineDb* db_;
    bool active_ = false;
    std::vector<WalRecord> ops_;
    // (tree, key) -> pending value (nullopt = deleted).
    std::map<std::pair<TreeId, Buffer>, std::optional<Buffer>> pending_;
  };

  /// Flushes all pages and truncates the log. The paper's Berkeley DB runs
  /// never checkpoint during the benchmark (§7.4) — neither do ours unless
  /// this is called.
  Status Checkpoint();

  Status Close();

  const Stats& stats() const { return stats_; }
  /// Data file + log file size — the paper's "database size" (Fig. 11).
  Result<uint64_t> TotalFileBytes() const;

 private:
  BaselineDb(platform::UntrustedStore* store, const Options& options);

  Status Bootstrap();
  Status Recover();
  Status WriteMeta(bool sync);
  Status Barrier();

  // Applies a committed logical operation to the trees.
  Status ApplyOp(const WalRecord& op);
  Status DoCreateTree(const std::string& name);

  // B-tree ops (root page ids are stable).
  struct SplitResult {
    Buffer separator;
    uint32_t right;
  };
  Result<std::optional<SplitResult>> InsertRec(uint32_t page_id, Slice key,
                                               Slice value);
  Status TreePut(uint32_t root, Slice key, Slice value);
  Status TreeDelete(uint32_t root, Slice key);
  Result<std::optional<Buffer>> TreeGet(uint32_t root, Slice key);

  platform::UntrustedStore* store_;
  Options options_;
  Pager pager_;
  WalWriter wal_;
  std::map<std::string, TreeId> trees_;
  std::map<TreeId, uint32_t> roots_;
  TreeId next_tree_id_ = 1;
  bool txn_active_ = false;
  Stats stats_;
};

}  // namespace tdb::baseline

#endif  // TDB_BASELINE_BASELINE_DB_H_
