#ifndef TDB_BASELINE_PAGER_H_
#define TDB_BASELINE_PAGER_H_

#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "platform/untrusted_store.h"

namespace tdb::baseline {

/// A parsed B-tree page of the baseline engine. Leaves hold (key, value)
/// byte-string pairs; internal nodes hold separator keys and child page
/// ids (children.size() == keys.size() + 1).
struct NodePage {
  bool leaf = true;
  std::vector<Buffer> keys;
  std::vector<Buffer> values;          // Leaf only.
  std::vector<uint32_t> children;      // Internal only.

  Buffer Serialize() const;
  Status Parse(Slice data);
  /// Serialized byte size (kept <= page size by splits).
  size_t ByteSize() const;
};

/// Page file + buffer pool for the baseline engine: fixed-size pages,
/// LRU cache of parsed nodes, update-in-place writes. This is the
/// conventional storage model the paper contrasts with TDB's log
/// structure: pages are written back where they live, and a write-ahead
/// log provides crash atomicity.
class Pager {
 public:
  static constexpr size_t kPageSize = 4096;
  /// Page ids start at 1; page 0 is the database meta page, managed by
  /// BaselineDb directly.
  Pager(platform::UntrustedStore* store, std::string file,
        size_t cache_pages);

  /// `next_page_id` restores the allocation high-water mark (from meta).
  void Reset(uint32_t next_page_id);

  Result<NodePage*> Get(uint32_t page_id);
  /// Like Get but marks the page dirty.
  Result<NodePage*> GetWritable(uint32_t page_id);
  /// Allocates a fresh (dirty, empty) page.
  Result<uint32_t> Allocate(NodePage** out);

  /// Writes every dirty page in place and syncs the data file (the
  /// checkpoint barrier; also forced when the pool fills with dirty
  /// pages). Clean pages become evictable again.
  Status FlushAll(bool sync);

  /// True when dirty pages exceed the pool budget and a barrier is needed
  /// before more work (the pool never steals dirty pages).
  bool NeedsBarrier() const { return dirty_count_ > cache_pages_; }

  uint32_t next_page_id() const { return next_page_id_; }
  uint64_t pages_written() const { return pages_written_; }
  uint64_t page_reads() const { return page_reads_; }

  /// Drops the whole cache (recovery restart).
  void Clear();

 private:
  struct Entry {
    std::unique_ptr<NodePage> page;
    bool dirty = false;
    std::list<uint32_t>::iterator lru_pos;
  };

  void Touch(uint32_t page_id, Entry& entry);
  void EvictCleanIfNeeded();

  platform::UntrustedStore* store_;
  std::string file_;
  size_t cache_pages_;
  uint32_t next_page_id_ = 1;
  std::map<uint32_t, Entry> cache_;
  std::list<uint32_t> lru_;
  size_t dirty_count_ = 0;
  uint64_t pages_written_ = 0;
  uint64_t page_reads_ = 0;
};

}  // namespace tdb::baseline

#endif  // TDB_BASELINE_PAGER_H_
