#ifndef TDB_BASELINE_WAL_H_
#define TDB_BASELINE_WAL_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "platform/untrusted_store.h"

namespace tdb::baseline {

/// Logical write-ahead-log records of the baseline engine. Each committed
/// transaction appends its operations followed by a commit marker; a
/// barrier marker records that all pages were flushed (recovery replays
/// committed operations after the last barrier).
enum class WalRecordType : uint8_t {
  kPut = 1,
  kDelete = 2,
  kCreateTree = 3,
  kCommit = 4,
  kBarrier = 5,
};

struct WalRecord {
  WalRecordType type;
  uint32_t tree_id = 0;
  Buffer key;    // kPut/kDelete key; kCreateTree name.
  Buffer value;  // kPut only.
};

/// Appender over the log file. Records are buffered per transaction and
/// written (one I/O) at commit; Sync() makes them durable.
class WalWriter {
 public:
  WalWriter(platform::UntrustedStore* store, std::string file);

  /// Opens (creating if needed); `tail` is the recovered end offset.
  Status Open(uint64_t tail);

  void Add(const WalRecord& record);
  /// Writes buffered records followed by a commit marker.
  Status Commit(bool sync);
  /// Discards buffered (uncommitted) records.
  void AbortPending() { pending_.clear(); }
  /// Appends a barrier marker (after a page flush).
  Status Barrier(bool sync);

  uint64_t tail() const { return tail_; }
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  Status Append(Slice framed);

  platform::UntrustedStore* store_;
  std::string file_;
  uint64_t tail_ = 0;
  Buffer pending_;
  uint64_t bytes_written_ = 0;
};

/// Encodes one record with length/checksum framing.
void EncodeWalRecord(Buffer* dst, const WalRecord& record);

/// Scans the log, invoking `fn` for each intact record; stops silently at
/// the first torn/corrupt record (the crash tail). Returns the end offset
/// of the last intact record.
Result<uint64_t> ScanWal(platform::UntrustedStore* store,
                         const std::string& file,
                         const std::function<Status(const WalRecord&)>& fn);

}  // namespace tdb::baseline

#endif  // TDB_BASELINE_WAL_H_
