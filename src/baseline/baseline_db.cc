#include "baseline/baseline_db.h"

#include <cstring>

#include "common/check.h"
#include "common/coding.h"

namespace tdb::baseline {

namespace {

constexpr char kDataFile[] = "bdb-data";
constexpr char kWalFile[] = "bdb-wal";
constexpr uint32_t kMetaMagic = 0x42444231;  // "BDB1"
// Split a page when its serialized size would exceed this.
constexpr size_t kSplitThreshold = Pager::kPageSize - 64;

int CompareBytes(Slice a, Slice b) {
  size_t common = std::min(a.size(), b.size());
  int c = common == 0 ? 0 : std::memcmp(a.data(), b.data(), common);
  if (c != 0) return c;
  if (a.size() < b.size()) return -1;
  if (a.size() > b.size()) return 1;
  return 0;
}

// First index with keys[i] >= key.
size_t LowerBound(const std::vector<Buffer>& keys, Slice key) {
  size_t lo = 0, hi = keys.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (CompareBytes(keys[mid], key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Child slot: the number of separators <= key.
size_t Route(const std::vector<Buffer>& keys, Slice key) {
  size_t lo = 0, hi = keys.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (CompareBytes(keys[mid], key) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

BaselineDb::BaselineDb(platform::UntrustedStore* store,
                       const Options& options)
    : store_(store),
      options_(options),
      pager_(store, kDataFile, options.cache_bytes / Pager::kPageSize),
      wal_(store, kWalFile) {}

Result<std::unique_ptr<BaselineDb>> BaselineDb::Open(
    platform::UntrustedStore* store, const Options& options) {
  std::unique_ptr<BaselineDb> db(new BaselineDb(store, options));
  if (store->Exists(kDataFile)) {
    TDB_RETURN_IF_ERROR(db->Recover());
  } else {
    TDB_RETURN_IF_ERROR(db->Bootstrap());
  }
  return db;
}

Status BaselineDb::Bootstrap() {
  TDB_RETURN_IF_ERROR(store_->Create(kDataFile, false));
  pager_.Reset(1);
  TDB_RETURN_IF_ERROR(WriteMeta(options_.sync_commits));
  return wal_.Open(0);
}

Status BaselineDb::Recover() {
  // Meta page (page 0) reflects the last barrier.
  Buffer meta;
  TDB_RETURN_IF_ERROR(store_->Read(kDataFile, 0, Pager::kPageSize, &meta));
  Decoder dec{Slice(meta)};
  uint32_t magic, next_page, next_tree, n_trees;
  TDB_RETURN_IF_ERROR(dec.GetFixed32(&magic));
  if (magic != kMetaMagic) return Status::Corruption("bad baseline meta");
  TDB_RETURN_IF_ERROR(dec.GetVarint32(&next_page));
  TDB_RETURN_IF_ERROR(dec.GetVarint32(&next_tree));
  TDB_RETURN_IF_ERROR(dec.GetVarint32(&n_trees));
  trees_.clear();
  roots_.clear();
  for (uint32_t i = 0; i < n_trees; i++) {
    Slice name;
    uint32_t tree_id, root;
    TDB_RETURN_IF_ERROR(dec.GetLengthPrefixed(&name));
    TDB_RETURN_IF_ERROR(dec.GetVarint32(&tree_id));
    TDB_RETURN_IF_ERROR(dec.GetVarint32(&root));
    trees_[name.ToString()] = tree_id;
    roots_[tree_id] = root;
  }
  pager_.Reset(next_page);
  next_tree_id_ = next_tree;

  // Replay committed operations after the last barrier.
  std::vector<WalRecord> all;
  TDB_ASSIGN_OR_RETURN(uint64_t intact_end,
                       ScanWal(store_, kWalFile, [&](const WalRecord& r) {
                         all.push_back(r);
                         return Status::OK();
                       }));
  size_t start = 0;
  for (size_t i = 0; i < all.size(); i++) {
    if (all[i].type == WalRecordType::kBarrier) start = i + 1;
  }
  std::vector<WalRecord> txn_ops;
  for (size_t i = start; i < all.size(); i++) {
    const WalRecord& record = all[i];
    if (record.type == WalRecordType::kCommit) {
      for (const WalRecord& op : txn_ops) {
        TDB_RETURN_IF_ERROR(ApplyOp(op));
      }
      txn_ops.clear();
    } else if (record.type != WalRecordType::kBarrier) {
      txn_ops.push_back(record);
    }
  }
  // Uncommitted trailing ops are discarded; torn bytes are truncated.
  return wal_.Open(intact_end);
}

Status BaselineDb::WriteMeta(bool sync) {
  Buffer meta;
  PutFixed32(&meta, kMetaMagic);
  PutVarint32(&meta, pager_.next_page_id());
  PutVarint32(&meta, next_tree_id_);
  PutVarint32(&meta, static_cast<uint32_t>(trees_.size()));
  for (const auto& [name, tree_id] : trees_) {
    PutLengthPrefixed(&meta, Slice(name));
    PutVarint32(&meta, tree_id);
    PutVarint32(&meta, roots_.at(tree_id));
  }
  TDB_CHECK(meta.size() <= Pager::kPageSize, "meta page overflow");
  meta.resize(Pager::kPageSize, 0);
  TDB_RETURN_IF_ERROR(store_->Write(kDataFile, 0, meta));
  if (sync) TDB_RETURN_IF_ERROR(store_->Sync(kDataFile));
  return Status::OK();
}

Status BaselineDb::Barrier() {
  TDB_RETURN_IF_ERROR(pager_.FlushAll(options_.sync_commits));
  TDB_RETURN_IF_ERROR(WriteMeta(options_.sync_commits));
  TDB_RETURN_IF_ERROR(wal_.Barrier(options_.sync_commits));
  stats_.barriers++;
  return Status::OK();
}

Status BaselineDb::Checkpoint() {
  TDB_RETURN_IF_ERROR(pager_.FlushAll(options_.sync_commits));
  TDB_RETURN_IF_ERROR(WriteMeta(options_.sync_commits));
  TDB_RETURN_IF_ERROR(store_->Truncate(kWalFile, 0));
  return wal_.Open(0);
}

Status BaselineDb::Close() {
  if (txn_active_) return Status::InvalidArgument("transaction active");
  return Barrier();
}

Result<uint64_t> BaselineDb::TotalFileBytes() const {
  TDB_ASSIGN_OR_RETURN(uint64_t data, store_->Size(kDataFile));
  uint64_t wal = 0;
  if (store_->Exists(kWalFile)) {
    TDB_ASSIGN_OR_RETURN(wal, store_->Size(kWalFile));
  }
  return data + wal;
}

// ---------------------------------------------------------------------------
// Trees

Result<BaselineDb::TreeId> BaselineDb::CreateTree(const std::string& name) {
  if (txn_active_) {
    return Status::InvalidArgument("cannot create trees inside a txn");
  }
  if (trees_.count(name)) return Status::AlreadyExists("tree " + name);
  WalRecord record;
  record.type = WalRecordType::kCreateTree;
  record.key = Slice(name).ToBuffer();
  wal_.Add(record);
  TDB_RETURN_IF_ERROR(wal_.Commit(options_.sync_commits));
  TDB_RETURN_IF_ERROR(DoCreateTree(name));
  return trees_.at(name);
}

Status BaselineDb::DoCreateTree(const std::string& name) {
  NodePage* root_page = nullptr;
  TDB_ASSIGN_OR_RETURN(uint32_t root, pager_.Allocate(&root_page));
  root_page->leaf = true;
  TreeId tree_id = next_tree_id_++;
  trees_[name] = tree_id;
  roots_[tree_id] = root;
  return Status::OK();
}

Result<BaselineDb::TreeId> BaselineDb::OpenTree(
    const std::string& name) const {
  auto it = trees_.find(name);
  if (it == trees_.end()) return Status::NotFound("no tree " + name);
  return it->second;
}

Status BaselineDb::ApplyOp(const WalRecord& op) {
  switch (op.type) {
    case WalRecordType::kCreateTree: {
      std::string name = Slice(op.key).ToString();
      if (trees_.count(name)) return Status::OK();  // Replay idempotence.
      return DoCreateTree(name);
    }
    case WalRecordType::kPut: {
      auto it = roots_.find(op.tree_id);
      if (it == roots_.end()) return Status::Corruption("op on missing tree");
      return TreePut(it->second, op.key, op.value);
    }
    case WalRecordType::kDelete: {
      auto it = roots_.find(op.tree_id);
      if (it == roots_.end()) return Status::Corruption("op on missing tree");
      Status s = TreeDelete(it->second, op.key);
      return s.IsNotFound() ? Status::OK() : s;
    }
    default:
      return Status::Corruption("unexpected op in transaction");
  }
}

// ---------------------------------------------------------------------------
// Page B-tree

Result<std::optional<BaselineDb::SplitResult>> BaselineDb::InsertRec(
    uint32_t page_id, Slice key, Slice value) {
  TDB_ASSIGN_OR_RETURN(NodePage * node, pager_.GetWritable(page_id));
  if (node->leaf) {
    size_t pos = LowerBound(node->keys, key);
    if (pos < node->keys.size() && CompareBytes(node->keys[pos], key) == 0) {
      node->values[pos] = value.ToBuffer();
    } else {
      node->keys.insert(node->keys.begin() + pos, key.ToBuffer());
      node->values.insert(node->values.begin() + pos, value.ToBuffer());
    }
    if (node->ByteSize() <= kSplitThreshold) return std::optional<SplitResult>();
    // Leaf split: upper half moves right; separator = right's first key.
    size_t mid = node->keys.size() / 2;
    NodePage* right = nullptr;
    TDB_ASSIGN_OR_RETURN(uint32_t right_id, pager_.Allocate(&right));
    // Re-fetch: Allocate may have evicted nothing (dirty pages pinned),
    // but the cache map can rehash — re-resolve the pointer to be safe.
    TDB_ASSIGN_OR_RETURN(node, pager_.GetWritable(page_id));
    right->leaf = true;
    right->keys.assign(node->keys.begin() + mid, node->keys.end());
    right->values.assign(node->values.begin() + mid, node->values.end());
    node->keys.resize(mid);
    node->values.resize(mid);
    SplitResult split;
    split.separator = right->keys.front();
    split.right = right_id;
    return std::optional<SplitResult>(split);
  }

  size_t slot = Route(node->keys, key);
  uint32_t child = node->children[slot];
  TDB_ASSIGN_OR_RETURN(std::optional<SplitResult> child_split,
                       InsertRec(child, key, value));
  if (!child_split.has_value()) return std::optional<SplitResult>();
  TDB_ASSIGN_OR_RETURN(node, pager_.GetWritable(page_id));  // Re-resolve.
  node->keys.insert(node->keys.begin() + slot, child_split->separator);
  node->children.insert(node->children.begin() + slot + 1,
                        child_split->right);
  if (node->ByteSize() <= kSplitThreshold) return std::optional<SplitResult>();
  // Internal split: median separator moves up.
  size_t mid = node->keys.size() / 2;
  SplitResult split;
  split.separator = node->keys[mid];
  NodePage* right = nullptr;
  TDB_ASSIGN_OR_RETURN(split.right, pager_.Allocate(&right));
  TDB_ASSIGN_OR_RETURN(node, pager_.GetWritable(page_id));
  right->leaf = false;
  right->keys.assign(node->keys.begin() + mid + 1, node->keys.end());
  right->children.assign(node->children.begin() + mid + 1,
                         node->children.end());
  node->keys.resize(mid);
  node->children.resize(mid + 1);
  return std::optional<SplitResult>(split);
}

Status BaselineDb::TreePut(uint32_t root, Slice key, Slice value) {
  if (key.size() + value.size() > Pager::kPageSize / 4) {
    return Status::InvalidArgument("record too large for baseline engine");
  }
  TDB_ASSIGN_OR_RETURN(std::optional<SplitResult> split,
                       InsertRec(root, key, value));
  if (!split.has_value()) return Status::OK();
  // Root split, keeping the root page id stable: move the root's contents
  // into a fresh left page.
  TDB_ASSIGN_OR_RETURN(NodePage * root_page, pager_.GetWritable(root));
  NodePage* left = nullptr;
  TDB_ASSIGN_OR_RETURN(uint32_t left_id, pager_.Allocate(&left));
  TDB_ASSIGN_OR_RETURN(root_page, pager_.GetWritable(root));
  left->leaf = root_page->leaf;
  left->keys = std::move(root_page->keys);
  left->values = std::move(root_page->values);
  left->children = std::move(root_page->children);
  root_page->leaf = false;
  root_page->keys = {split->separator};
  root_page->values.clear();
  root_page->children = {left_id, split->right};
  return Status::OK();
}

Status BaselineDb::TreeDelete(uint32_t root, Slice key) {
  uint32_t page_id = root;
  for (;;) {
    TDB_ASSIGN_OR_RETURN(NodePage * node, pager_.Get(page_id));
    if (node->leaf) {
      size_t pos = LowerBound(node->keys, key);
      if (pos >= node->keys.size() ||
          CompareBytes(node->keys[pos], key) != 0) {
        return Status::NotFound("key not found");
      }
      TDB_ASSIGN_OR_RETURN(node, pager_.GetWritable(page_id));
      node->keys.erase(node->keys.begin() + pos);
      node->values.erase(node->values.begin() + pos);
      // Lazy deletion: no page merging (fine for the baseline's role).
      return Status::OK();
    }
    page_id = node->children[Route(node->keys, key)];
  }
}

Result<std::optional<Buffer>> BaselineDb::TreeGet(uint32_t root, Slice key) {
  uint32_t page_id = root;
  for (;;) {
    TDB_ASSIGN_OR_RETURN(NodePage * node, pager_.Get(page_id));
    if (node->leaf) {
      size_t pos = LowerBound(node->keys, key);
      if (pos >= node->keys.size() ||
          CompareBytes(node->keys[pos], key) != 0) {
        return std::optional<Buffer>();
      }
      return std::optional<Buffer>(node->values[pos]);
    }
    page_id = node->children[Route(node->keys, key)];
  }
}

// ---------------------------------------------------------------------------
// Transactions

BaselineDb::Txn::Txn(BaselineDb* db) : db_(db) {
  if (!db_->txn_active_) {
    db_->txn_active_ = true;
    active_ = true;
  }
}

BaselineDb::Txn::~Txn() {
  if (active_) Abort().ok();
}

Result<Buffer> BaselineDb::Txn::Get(TreeId tree, Slice key) {
  if (!active_) return Status::TransactionInvalid("transaction not active");
  auto pending = pending_.find({tree, key.ToBuffer()});
  if (pending != pending_.end()) {
    if (!pending->second.has_value()) return Status::NotFound("deleted");
    return *pending->second;
  }
  auto root = db_->roots_.find(tree);
  if (root == db_->roots_.end()) return Status::NotFound("no such tree");
  TDB_ASSIGN_OR_RETURN(std::optional<Buffer> value,
                       db_->TreeGet(root->second, key));
  if (!value.has_value()) return Status::NotFound("key not found");
  return *value;
}

Status BaselineDb::Txn::Put(TreeId tree, Slice key, Slice value) {
  if (!active_) return Status::TransactionInvalid("transaction not active");
  if (!db_->roots_.count(tree)) return Status::NotFound("no such tree");
  WalRecord record;
  record.type = WalRecordType::kPut;
  record.tree_id = tree;
  record.key = key.ToBuffer();
  record.value = value.ToBuffer();
  pending_[{tree, record.key}] = record.value;
  ops_.push_back(std::move(record));
  return Status::OK();
}

Status BaselineDb::Txn::Delete(TreeId tree, Slice key) {
  if (!active_) return Status::TransactionInvalid("transaction not active");
  if (!db_->roots_.count(tree)) return Status::NotFound("no such tree");
  WalRecord record;
  record.type = WalRecordType::kDelete;
  record.tree_id = tree;
  record.key = key.ToBuffer();
  pending_[{tree, record.key}] = std::nullopt;
  ops_.push_back(std::move(record));
  return Status::OK();
}

Status BaselineDb::Txn::Commit() {
  if (!active_) return Status::TransactionInvalid("transaction not active");
  uint64_t wal_before = db_->wal_.bytes_written();
  for (const WalRecord& op : ops_) db_->wal_.Add(op);
  TDB_RETURN_IF_ERROR(db_->wal_.Commit(db_->options_.sync_commits));
  for (const WalRecord& op : ops_) {
    TDB_RETURN_IF_ERROR(db_->ApplyOp(op));
  }
  active_ = false;
  db_->txn_active_ = false;
  db_->stats_.commits++;
  db_->stats_.wal_bytes += db_->wal_.bytes_written() - wal_before;
  if (db_->pager_.NeedsBarrier()) {
    TDB_RETURN_IF_ERROR(db_->Barrier());
  }
  db_->stats_.pages_written = db_->pager_.pages_written();
  db_->stats_.page_reads = db_->pager_.page_reads();
  return Status::OK();
}

Status BaselineDb::Txn::Abort() {
  if (!active_) return Status::TransactionInvalid("transaction not active");
  ops_.clear();
  pending_.clear();
  active_ = false;
  db_->txn_active_ = false;
  return Status::OK();
}

}  // namespace tdb::baseline
