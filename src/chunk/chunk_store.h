#ifndef TDB_CHUNK_CHUNK_STORE_H_
#define TDB_CHUNK_CHUNK_STORE_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "chunk/anchor.h"
#include "chunk/chunk_cache.h"
#include "chunk/location_map.h"
#include "chunk/log_format.h"
#include "chunk/types.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "crypto/cipher_suite.h"
#include "platform/one_way_counter.h"
#include "platform/secret_store.h"
#include "platform/untrusted_store.h"

namespace tdb::chunk {

/// Tuning and security knobs for a chunk store instance.
struct ChunkStoreOptions {
  /// Security suite: SecurityConfig::Disabled() is the paper's "TDB"
  /// configuration, PaperTdbS() (SHA-1 + 3DES) is "TDB-S".
  crypto::SecurityConfig security = crypto::SecurityConfig::PaperTdbS();

  /// Nominal segment size; the unit of cleaning and space reclamation.
  uint32_t segment_size = 64 * 1024;

  /// Fanout of the location-map radix tree.
  uint32_t map_fanout = 64;

  /// Maximum fraction of the log occupied by live data before the cleaner
  /// kicks in (the paper's "database utilization"; default 60%, §7.3).
  double max_utilization = 0.6;

  /// Residual-log bytes that trigger an automatic checkpoint.
  uint64_t checkpoint_interval_bytes = 8 << 20;

  /// Bytes of one-way hash stored per location-map entry. Truncating to 12
  /// (96 bits) matches the paper's per-chunk overhead (§7.4) and shrinks
  /// checkpoints substantially; 0 means the full digest.
  uint32_t map_hash_bytes = 12;

  /// Upper bound on segments cleaned as a side effect of one commit,
  /// bounding per-commit cleaning latency (§3.2.1).
  int max_clean_segments_per_commit = 4;

  bool create_if_missing = true;

  /// Extra entropy mixed into the encryption-IV generator.
  std::string iv_seed = "tdb-iv";

  /// Byte budget for the validated-plaintext chunk cache: decrypted,
  /// hash-checked payloads served straight from trusted memory on re-read,
  /// skipping untrusted-store I/O, hashing, and decryption. 0 disables the
  /// cache (every read revalidates — the pre-cache behavior). Snapshot
  /// reads always bypass the cache; see DESIGN.md "Chunk cache & crypto
  /// pipeline".
  size_t cache_bytes = 4 * 1024 * 1024;

  /// Worker threads for the commit-path crypto pipeline (sealing + hashing
  /// of independent staged writes) and for VerifyIntegrity validation.
  /// 0 or 1 runs fully serial on the caller (the pre-pipeline behavior).
  /// Sealed output is bit-identical regardless of thread count: IVs are
  /// drawn serially in submission order, then encryption fans out.
  int crypto_threads = 4;
};

/// Counters exposed for tests, benchmarks, and the utilization experiment.
struct ChunkStoreStats {
  uint64_t live_bytes = 0;      // Bytes of live records (data + map).
  uint64_t total_bytes = 0;     // Bytes across all segment files.
  uint64_t segments = 0;
  uint64_t live_chunks = 0;
  uint64_t commits = 0;
  uint64_t durable_commits = 0;
  uint64_t checkpoints = 0;
  uint64_t cleaned_segments = 0;
  uint64_t relocated_records = 0;
  uint64_t relocated_bytes = 0;
  uint64_t bytes_appended = 0;  // Total log bytes written since open.
  // Breakdown of appended payload bytes by record type.
  uint64_t data_bytes = 0;
  uint64_t map_bytes = 0;
  uint64_t commit_bytes = 0;
  // Validated-plaintext chunk cache (only moves when cache_bytes > 0).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;    // Reads that fell through to validation.
  uint64_t cache_evictions = 0;
  uint64_t cache_bytes_used = 0;
  // Commit-path crypto pipeline.
  uint64_t sealed_bytes = 0;           // Plaintext bytes sealed by commits.
  uint64_t parallel_sealed_bytes = 0;  // Subset sealed via the worker pool.
  double utilization() const {
    return total_bytes == 0 ? 0.0
                            : static_cast<double>(live_bytes) / total_bytes;
  }
};

/// A group of chunk operations committed atomically (§3.1: "several
/// operations can be grouped into a single commit operation that is atomic
/// with respect to crashes"). Later operations on the same chunk id
/// supersede earlier ones.
class WriteBatch {
 public:
  void Write(ChunkId cid, Slice data);
  void Deallocate(ChunkId cid);
  bool empty() const { return ops_.empty(); }
  size_t size() const { return ops_.size(); }
  void Clear() { ops_.clear(); }

 private:
  friend class ChunkStore;
  struct Op {
    bool is_write;
    ChunkId cid;
    Buffer data;
  };
  std::vector<Op> ops_;
};

/// An immutable view of the database at a durable point in time, produced
/// by copy-on-write of the location map (§3.2.1). Cheap to hold; cleaning
/// is paused while any snapshot is alive so its records stay readable.
class Snapshot {
 public:
  uint64_t seq() const { return seq_; }

 private:
  friend class ChunkStore;
  std::shared_ptr<MapNode> root_;
  uint64_t seq_ = 0;
};

/// The trusted chunk store (§3): log-structured storage of encrypted,
/// hash-validated, variable-sized chunks over an untrusted store.
///
/// Guarantees under the threat model (attacker controls the untrusted
/// store, cannot read the secret store or decrement the one-way counter):
///  - secrecy: all persisted payloads are encrypted;
///  - tamper detection: any modification of data, metadata, or the log is
///    detected on read/recovery (Merkle tree + MACed commit chain/anchor);
///  - replay detection: restoring a stale image is detected via the
///    one-way counter;
///  - atomicity: a WriteBatch commits entirely or not at all across
///    crashes; nondurable commits never survive a crash unless followed by
///    a durable commit.
///
/// Not thread-safe: callers (the object store) serialize access. The store
/// does use an internal worker pool (options.crypto_threads) to fan
/// independent sealing/validation work across cores, but all of its public
/// entry points remain single-caller.
class ChunkStore {
 public:
  static Result<std::unique_ptr<ChunkStore>> Open(
      platform::UntrustedStore* store, platform::SecretStore* secrets,
      platform::OneWayCounter* counter, const ChunkStoreOptions& options);

  ~ChunkStore();
  ChunkStore(const ChunkStore&) = delete;
  ChunkStore& operator=(const ChunkStore&) = delete;

  /// Returns a fresh, unallocated chunk id (§3.1 allocateChunkId).
  ChunkId AllocateChunkId() { return next_chunk_id_++; }

  /// Returns the last committed state of `cid`; NotFound if never written
  /// or deallocated; TamperDetected if validation fails.
  Result<Buffer> Read(ChunkId cid);

  /// Atomically applies `batch`. If `durable`, the commit (and every
  /// earlier nondurable commit) survives crashes once this returns OK.
  Status Commit(const WriteBatch& batch, bool durable);

  /// Single-chunk conveniences.
  Status Write(ChunkId cid, Slice data, bool durable);
  Status Deallocate(ChunkId cid, bool durable);

  /// Writes dirty location-map nodes and the anchor (durable). Normally
  /// automatic; exposed for idle-time maintenance.
  Status Checkpoint();

  /// Idle-time cleaning: reclaims up to `max_segments` low-utilization
  /// segments. No-op while snapshots are alive.
  Status Clean(int max_segments);

  /// Integrity scrub: walks the whole location map and validates every
  /// live chunk's record (checksum, Merkle hash, decryption). Returns the
  /// first failure — the offline analogue of the per-read validation, for
  /// idle-time or post-restore checks. `chunks_checked` may be null.
  Status VerifyIntegrity(uint64_t* chunks_checked);

  /// Snapshots (§3.2.1, used by the backup store). Checkpoints first so
  /// the snapshot is fully persisted. ReadAtSnapshot always bypasses the
  /// validated-plaintext cache — the cache is keyed by a chunk's CURRENT
  /// committed state, which a snapshot may predate — and performs the full
  /// validated read instead.
  Result<std::shared_ptr<Snapshot>> CreateSnapshot();
  Result<Buffer> ReadAtSnapshot(const Snapshot& snap, ChunkId cid);
  Status ForEachChunkAt(
      const Snapshot& snap,
      const std::function<Status(ChunkId, const MapEntry&)>& fn);
  Status DiffSnapshots(
      const Snapshot& base, const Snapshot& delta,
      const std::function<Status(ChunkId, DiffKind, const MapEntry&)>& fn);

  /// Operation counters, including cache hit/miss/eviction and sealed-byte
  /// breakdowns for the commit pipeline.
  const ChunkStoreStats& Stats() const { return stats_; }
  const ChunkStoreStats& stats() const { return stats_; }  // Legacy alias.
  const ChunkStoreOptions& options() const { return options_; }
  uint64_t next_chunk_id() const { return next_chunk_id_; }

  /// Flushes a final checkpoint. The destructor calls this best-effort.
  Status Close();

  /// Debug: prints a per-region segment census (live/dead/map bytes) to
  /// stderr. Used by benchmarks under TPCB_DEBUG.
  void DumpSegmentCensus() const;

 private:
  struct SegInfo {
    uint64_t total = 0;     // Bytes in the segment file.
    uint64_t live = 0;      // Bytes of live records (data + map).
    uint64_t live_map = 0;  // Bytes of live map-node records. Segments
                            // holding live map nodes are not cleanable
                            // until a checkpoint relocates those nodes.
  };

  ChunkStore(platform::UntrustedStore* store,
             platform::OneWayCounter* counter,
             const ChunkStoreOptions& options, crypto::CipherSuite suite);

  // --- open/recovery ---
  Status Bootstrap();            // Fresh store: first segment + checkpoint.
  Status Recover();              // Anchor + residual log replay.
  Status RebuildAccounting();    // Full map walk -> per-segment live bytes.

  // --- log tail ---
  static std::string SegmentName(uint32_t id);
  Status OpenFreshSegment();     // Rolls the tail to a new segment file.
  // Appends a record to the tail (rolling segments as needed); returns its
  // location.
  Result<Location> Append(RecordType type, Slice payload);
  Status FlushTail();
  Status SyncDirtyFiles();

  // --- records ---
  // I/O + structural checks only: reads the record at `loc`, verifying
  // type and payload length against the location map but NOT the hash —
  // callers validate (possibly on another thread) before trusting it.
  Result<Buffer> FetchRawRecord(const Location& loc, RecordType expected);
  Result<Buffer> ReadRawRecord(const Location& loc, RecordType expected,
                               const crypto::Digest& expected_hash);
  Result<Buffer> ReadDataAt(const MapEntry& entry);
  NodeLoader MakeLoader();
  // Loads the checkpointed map root (level read from the record itself).
  Result<std::shared_ptr<MapNode>> LoadRoot(const Location& loc,
                                            const crypto::Digest& hash);

  // --- commit machinery ---
  // A write whose payload is already sealed (the cleaner relocates sealed
  // bytes verbatim, so relocation neither decrypts nor changes hashes).
  struct StagedWrite {
    ChunkId cid;
    Buffer sealed;
    crypto::Digest hash;
  };
  Status CommitInternal(const std::vector<StagedWrite>& writes,
                        const std::vector<ChunkId>& deallocs, uint8_t flags,
                        const NodeWriteResult* new_root);
  Status WriteAnchor();
  Status CheckpointLocked();
  Status MaybeCheckpoint();

  // --- cleaning ---
  Status MaybeClean();
  // Lowest-live data-only segments behind the scan position; stops when
  // projected size reaches `target` (0 = no target) or `max_segments`.
  std::vector<uint32_t> CleanCandidates(uint64_t target, int max_segments);
  // Checkpoints iff that would unlock >= one segment of parked garbage.
  // Also marks live map nodes in low-yield segments dirty first, so the
  // checkpoint relocates them and unpins those segments for cleaning.
  Status UnlockGarbageWithCheckpoint();
  // Marks map nodes persisted in `victims` (and their ancestors) dirty.
  Result<bool> DirtyMapNodesIn(const std::set<uint32_t>& victims);
  Status CleanSegments(const std::vector<uint32_t>& victims);
  Status FreePendingSegments();
  size_t ActiveSnapshots();

  void AccountLive(uint32_t segment, int64_t delta, bool is_map = false);

  // Hash of a sealed record as stored in the map (possibly truncated).
  crypto::Digest EntryHash(Slice sealed) const;
  size_t entry_hash_size() const;

  // Worker pool for the commit/verify crypto pipeline; created lazily on
  // first use, nullptr when options_.crypto_threads <= 1.
  ThreadPool* CryptoPool();
  // Mirrors cache occupancy/eviction counters into stats_.
  void SyncCacheStats();

  platform::UntrustedStore* store_;
  platform::OneWayCounter* counter_;
  ChunkStoreOptions options_;
  crypto::CipherSuite suite_;
  AnchorManager anchor_mgr_;
  LocationMap map_;

  bool open_ = false;
  uint64_t next_chunk_id_ = 1;
  uint64_t seq_ = 0;
  uint64_t counter_value_ = 0;  // Cached one-way counter value.
  crypto::Digest chain_mac_;  // MAC of the most recent commit record.
  // Checkpoint state mirrored into the anchor.
  crypto::Digest ckpt_mac_;
  bool has_root_ = false;
  Location root_loc_;
  crypto::Digest root_hash_;
  uint32_t scan_segment_ = 0;
  uint32_t scan_offset_ = 0;
  uint64_t residual_bytes_ = 0;

  // Tail segment.
  uint32_t cur_segment_ = 0;
  uint64_t cur_offset_ = 0;  // Flushed bytes in the tail file.
  Buffer tail_buf_;
  uint32_t next_segment_id_ = 1;

  std::map<uint32_t, SegInfo> segments_;
  std::set<std::string> dirty_files_;
  std::vector<uint32_t> pending_free_;  // Freed at next durable commit.
  std::vector<std::weak_ptr<Snapshot>> snapshots_;

  bool in_maintenance_ = false;  // Guards checkpoint/clean reentrancy.
  ChunkStoreStats stats_;

  // Validated-plaintext cache (tentpole of the hot-read path): holds only
  // bytes that already passed Merkle + decryption validation, keyed by the
  // chunk's last committed state. See DESIGN.md for invalidation rules.
  ChunkCache cache_;
  std::unique_ptr<ThreadPool> crypto_pool_;
};

}  // namespace tdb::chunk

#endif  // TDB_CHUNK_CHUNK_STORE_H_
