#ifndef TDB_CHUNK_CHUNK_STORE_H_
#define TDB_CHUNK_CHUNK_STORE_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "chunk/anchor.h"
#include "chunk/chunk_cache.h"
#include "chunk/location_map.h"
#include "chunk/log_format.h"
#include "chunk/types.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "crypto/cipher_suite.h"
#include "platform/one_way_counter.h"
#include "platform/secret_store.h"
#include "platform/untrusted_store.h"

namespace tdb::chunk {

/// Tuning and security knobs for a chunk store instance.
struct ChunkStoreOptions {
  /// Security suite: SecurityConfig::Disabled() is the paper's "TDB"
  /// configuration, PaperTdbS() (SHA-1 + 3DES) is "TDB-S".
  crypto::SecurityConfig security = crypto::SecurityConfig::PaperTdbS();

  /// Nominal segment size; the unit of cleaning and space reclamation.
  uint32_t segment_size = 64 * 1024;

  /// Fanout of the location-map radix tree.
  uint32_t map_fanout = 64;

  /// Maximum fraction of the log occupied by live data before the cleaner
  /// kicks in (the paper's "database utilization"; default 60%, §7.3).
  double max_utilization = 0.6;

  /// Residual-log bytes that trigger an automatic checkpoint.
  uint64_t checkpoint_interval_bytes = 8 << 20;

  /// Bytes of one-way hash stored per location-map entry. Truncating to 12
  /// (96 bits) matches the paper's per-chunk overhead (§7.4) and shrinks
  /// checkpoints substantially; 0 means the full digest.
  uint32_t map_hash_bytes = 12;

  /// Upper bound on segments cleaned as a side effect of one commit,
  /// bounding per-commit cleaning latency (§3.2.1).
  int max_clean_segments_per_commit = 4;

  bool create_if_missing = true;

  /// Extra entropy mixed into the encryption-IV generator.
  std::string iv_seed = "tdb-iv";

  /// Compress-before-encrypt: each chunk plaintext is run through the
  /// built-in LZ codec before sealing and stored compressed when that is
  /// actually smaller. The choice is recorded per chunk in EntryFlags —
  /// authenticated via both the map-node encoding and the MACed commit
  /// manifests — so mixed and pre-compression images stay readable either
  /// way. Off by default: sealed output is then byte-identical to older
  /// stores. Compression happens before encryption by necessity: sealed
  /// bytes are indistinguishable from random and do not compress.
  bool compression = false;

  /// Byte budget for the validated-plaintext chunk cache: decrypted,
  /// hash-checked payloads served straight from trusted memory on re-read,
  /// skipping untrusted-store I/O, hashing, and decryption. 0 disables the
  /// cache (every read revalidates — the pre-cache behavior). Snapshot
  /// reads always bypass the cache; see DESIGN.md "Chunk cache & crypto
  /// pipeline".
  size_t cache_bytes = 4 * 1024 * 1024;

  /// Worker threads for the commit-path crypto pipeline (sealing + hashing
  /// of independent staged writes) and for VerifyIntegrity validation.
  /// 0 or 1 runs fully serial on the caller (the pre-pipeline behavior).
  /// Sealed output is bit-identical regardless of thread count: IVs are
  /// drawn serially in submission order, then encryption fans out.
  int crypto_threads = 4;

  /// Group commit (§5/§7 cost model: the per-commit Sync and one-way
  /// counter bump bound durable-commit throughput). When true, commits are
  /// buffered into an open group: nondurable commits append their data
  /// records and apply to the in-memory map without writing a commit
  /// record; the next durable commit (or checkpoint/clean) seals the whole
  /// group under ONE merged manifest — one log write, one MAC, one chain
  /// link — and a leader performs ONE Sync and ONE counter bump for every
  /// durable committer waiting on the group. Concurrent durable committers
  /// therefore amortize the sync + counter cost; each still gets its own
  /// per-batch Status and is acked only after the covering sync + bump
  /// (paper §4.1 semantics). When false (default), every commit seals its
  /// own manifest and durable commits sync individually — the serialized
  /// pre-group behavior, byte-identical on disk.
  bool group_commit = false;

  /// Leader accumulation window, microseconds (group_commit only). A
  /// durable committer that elects itself group leader first waits up to
  /// this long — releasing the store mutex — so concurrent committers can
  /// buffer into its group before it seals. This is the classic
  /// group-commit delay (cf. MySQL binlog_group_commit_sync_delay,
  /// PostgreSQL commit_delay): without it, on a fast device each flush
  /// finishes before the next committer arrives, every commit leads a
  /// solo group, and nothing is amortized. 0 (default) seals immediately.
  /// Single-committer latency grows by up to the window when nonzero, so
  /// pair it with group_commit_target_commits sized to the expected
  /// concurrency.
  uint32_t group_commit_window_us = 0;

  /// Seal early once this many commits (the leader's own included) have
  /// buffered into the group, without waiting out the rest of the window
  /// (cf. MySQL binlog_group_commit_sync_no_delay_count). 0 means always
  /// wait the full window. Ignored when group_commit_window_us is 0.
  uint32_t group_commit_target_commits = 0;

  /// Metrics registry the store records into (counters, gauges, latency
  /// histograms, and the security audit trail). Null (default) gives the
  /// store a private registry, preserving the per-store semantics of
  /// Stats(); pass a shared registry to aggregate several stores (or to
  /// keep the audit trail reachable when Open itself fails, as the tamper
  /// harness does). The object/collection/backup layers register on the
  /// owning chunk store's registry via ChunkStore::metrics().
  std::shared_ptr<common::MetricsRegistry> metrics;
};

/// Counters exposed for tests, benchmarks, and the utilization experiment.
/// Returned by value from ChunkStore::Stats() as a coherent-enough
/// snapshot of the store's internal atomic counters (individual fields are
/// exact; cross-field invariants may be mid-update under concurrency).
struct ChunkStoreStats {
  uint64_t live_bytes = 0;      // Bytes of live records (data + map).
  uint64_t total_bytes = 0;     // Bytes across all segment files.
  uint64_t segments = 0;
  uint64_t live_chunks = 0;
  uint64_t commits = 0;         // Sealed commit manifests (log truth).
  uint64_t durable_commits = 0; // Acked durable commits (incl. internal).
  uint64_t checkpoints = 0;
  uint64_t cleaned_segments = 0;
  uint64_t relocated_records = 0;
  uint64_t relocated_bytes = 0;
  uint64_t bytes_appended = 0;  // Total log bytes written since open.
  // Breakdown of appended payload bytes by record type.
  uint64_t data_bytes = 0;
  uint64_t map_bytes = 0;
  uint64_t commit_bytes = 0;
  // Validated-plaintext chunk cache (only moves when cache_bytes > 0).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;    // Reads that fell through to validation.
  uint64_t cache_evictions = 0;  // All causes (see breakdown below).
  uint64_t cache_bytes_used = 0;
  // Evictions by cause. `cache_evictions` is their sum; before the cause
  // breakdown it silently missed every non-capacity erasure (deallocations
  // and failed/aborted commits), overstating the effective hit ratio.
  uint64_t cache_evictions_capacity = 0;
  uint64_t cache_evictions_dealloc = 0;
  uint64_t cache_evictions_failed_commit = 0;
  uint64_t cache_evictions_relocation = 0;  // Zero by design; see cache.
  // Commit-path crypto pipeline.
  uint64_t sealed_bytes = 0;           // Plaintext bytes sealed by commits.
  uint64_t parallel_sealed_bytes = 0;  // Subset sealed via the worker pool.
  // Group commit (only moves when options.group_commit is true, except
  // log_syncs / counter_bumps which count in both modes).
  uint64_t commit_groups = 0;          // Durable group flushes led.
  uint64_t grouped_commits = 0;        // Durable commits that shared a flush.
  uint64_t max_commits_per_group = 0;  // Largest single group flush.
  uint64_t log_syncs = 0;              // Sync rounds issued to the store.
  uint64_t counter_bumps = 0;          // One-way counter increments.
  // Compress-before-encrypt codec (only moves when options.compression).
  uint64_t compress_attempts = 0;   // Writes run through the compressor.
  uint64_t compressed_chunks = 0;   // Writes actually stored compressed.
  uint64_t compress_bytes_in = 0;   // Plaintext bytes of compressed writes.
  uint64_t compress_bytes_out = 0;  // Stored bytes of compressed writes.
  // Pinned read views (lock-free snapshot read path).
  uint64_t views_pinned = 0;

  double utilization() const {
    return total_bytes == 0 ? 0.0
                            : static_cast<double>(live_bytes) / total_bytes;
  }
  /// Mean durable commits acked per sync round (1.0 without grouping).
  double commits_per_sync() const {
    return log_syncs == 0
               ? 0.0
               : static_cast<double>(durable_commits) / log_syncs;
  }
  /// Syncs (and, with security enabled, counter bumps) amortized away
  /// relative to the one-sync-per-durable-commit baseline.
  uint64_t syncs_saved() const {
    return durable_commits > log_syncs ? durable_commits - log_syncs : 0;
  }
  uint64_t counter_bumps_saved() const {
    return durable_commits > counter_bumps ? durable_commits - counter_bumps
                                           : 0;
  }
};

/// A group of chunk operations committed atomically (§3.1: "several
/// operations can be grouped into a single commit operation that is atomic
/// with respect to crashes"). Later operations on the same chunk id
/// supersede earlier ones.
class WriteBatch {
 public:
  void Write(ChunkId cid, Slice data);
  void Deallocate(ChunkId cid);
  bool empty() const { return ops_.empty(); }
  size_t size() const { return ops_.size(); }
  void Clear() { ops_.clear(); }

 private:
  friend class ChunkStore;
  struct Op {
    bool is_write;
    ChunkId cid;
    Buffer data;
  };
  std::vector<Op> ops_;
};

namespace internal {

/// Completion state of one buffered durable commit; the "per-group future"
/// a committer blocks on. Guarded by the owning store's commit mutex.
struct CommitTicket {
  bool done = false;
  Status result;
};

}  // namespace internal

/// Handle returned by ChunkStore::CommitBuffered. For a durable commit in
/// group mode it is the pending durability future; otherwise it is already
/// complete. Pass to ChunkStore::WaitDurable to obtain the final Status
/// (and run deferred maintenance). Movable and copyable; all copies share
/// the same completion state.
class CommitHandle {
 public:
  CommitHandle() = default;
  bool valid() const { return ticket_ != nullptr; }

 private:
  friend class ChunkStore;
  std::shared_ptr<internal::CommitTicket> ticket_;
};

/// An immutable view of the database at a durable point in time, produced
/// by copy-on-write of the location map (§3.2.1). Cheap to hold; cleaning
/// is paused while any snapshot is alive so its records stay readable.
class Snapshot {
 public:
  uint64_t seq() const { return seq_; }
  /// Commit version at capture; gates versioned chunk-cache hits in
  /// ReadAtView (ReadAtSnapshot always bypasses the cache).
  uint64_t version() const { return version_; }

 private:
  friend class ChunkStore;
  std::shared_ptr<MapNode> root_;
  uint64_t seq_ = 0;
  uint64_t version_ = 0;
};

/// The trusted chunk store (§3): log-structured storage of encrypted,
/// hash-validated, variable-sized chunks over an untrusted store.
///
/// Guarantees under the threat model (attacker controls the untrusted
/// store, cannot read the secret store or decrement the one-way counter):
///  - secrecy: all persisted payloads are encrypted;
///  - tamper detection: any modification of data, metadata, or the log is
///    detected on read/recovery (Merkle tree + MACed commit chain/anchor);
///  - replay detection: restoring a stale image is detected via the
///    one-way counter;
///  - atomicity: a WriteBatch commits entirely or not at all across
///    crashes; nondurable commits never survive a crash unless followed by
///    a durable commit.
///
/// Thread-safe: a single commit mutex guards all mutable state, with two
/// deliberate carve-outs for concurrency:
///  - cache-hit Reads take only the chunk cache's internal lock (never the
///    commit mutex), so hot reads never queue behind an in-flight commit
///    or group sync;
///  - in group-commit mode the leader's Sync + counter bump run OUTSIDE
///    the commit mutex, so followers keep buffering (and readers keep
///    reading) while the flush is in flight.
/// Batch sealing (the crypto pipeline) also runs outside the commit mutex
/// on the committer's own thread; the cipher suite's IV generator is the
/// only serialized crypto step.
class ChunkStore {
 public:
  static Result<std::unique_ptr<ChunkStore>> Open(
      platform::UntrustedStore* store, platform::SecretStore* secrets,
      platform::OneWayCounter* counter, const ChunkStoreOptions& options);

  ~ChunkStore();
  ChunkStore(const ChunkStore&) = delete;
  ChunkStore& operator=(const ChunkStore&) = delete;

  /// Returns a fresh, unallocated chunk id (§3.1 allocateChunkId).
  ChunkId AllocateChunkId() { return next_chunk_id_.fetch_add(1); }

  /// Returns the last committed state of `cid`; NotFound if never written
  /// or deallocated; TamperDetected if validation fails.
  Result<Buffer> Read(ChunkId cid);

  /// Atomically applies `batch`. If `durable`, the commit (and every
  /// earlier nondurable commit) survives crashes once this returns OK.
  /// Equivalent to CommitBuffered + WaitDurable.
  Status Commit(const WriteBatch& batch, bool durable);

  /// Two-stage commit. Stage 1: validates, seals, and buffers `batch` —
  /// once this returns OK the batch is in the log buffer and applied to
  /// the in-memory map, so its serialization order is fixed and callers
  /// (e.g. the object store) may release transaction locks early. Errors
  /// here are per-batch: a failed batch never poisons other buffered
  /// commits. Stage 2 (WaitDurable): for a durable commit, blocks until a
  /// group flush covering the batch completes — the first waiter becomes
  /// the leader and performs the merged manifest write + one Sync + one
  /// counter bump for the whole group — and returns the durability
  /// verdict; durability is acked ONLY here, after sync + bump (§4.1).
  /// WaitDurable also runs deferred checkpoint/cleaning maintenance, so it
  /// should be called exactly once per successful CommitBuffered.
  /// With group_commit off, CommitBuffered performs the full serialized
  /// commit and the returned handle is already complete.
  Result<CommitHandle> CommitBuffered(const WriteBatch& batch, bool durable);
  Status WaitDurable(CommitHandle& handle);

  /// Single-chunk conveniences.
  Status Write(ChunkId cid, Slice data, bool durable);
  Status Deallocate(ChunkId cid, bool durable);

  /// Writes dirty location-map nodes and the anchor (durable). Normally
  /// automatic; exposed for idle-time maintenance. In group mode the
  /// checkpoint's manifest absorbs all buffered commits and completes any
  /// pending durability tickets.
  Status Checkpoint();

  /// Idle-time cleaning: reclaims up to `max_segments` low-utilization
  /// segments. No-op while snapshots are alive.
  Status Clean(int max_segments);

  /// Integrity scrub: walks the whole location map and validates every
  /// live chunk's record (checksum, Merkle hash, decryption). Returns the
  /// first failure — the offline analogue of the per-read validation, for
  /// idle-time or post-restore checks. `chunks_checked` may be null.
  Status VerifyIntegrity(uint64_t* chunks_checked);

  /// Snapshots (§3.2.1, used by the backup store). Checkpoints first so
  /// the snapshot is fully persisted. ReadAtSnapshot always bypasses the
  /// validated-plaintext cache — the cache is keyed by a chunk's CURRENT
  /// committed state, which a snapshot may predate — and performs the full
  /// validated read instead.
  Result<std::shared_ptr<Snapshot>> CreateSnapshot();
  Result<Buffer> ReadAtSnapshot(const Snapshot& snap, ChunkId cid);

  /// Pins a read view of the CURRENT applied state: like CreateSnapshot
  /// but without the checkpoint (no log writes, no sync — just a brief
  /// mutex hold to capture the COW map root and commit version). Views
  /// register like snapshots, so the cleaner pauses while any is alive and
  /// their records stay readable. This is the MVCC read-transaction
  /// anchor: readers at a view never block on, and are never blocked by,
  /// writers.
  Result<std::shared_ptr<Snapshot>> PinView();

  /// Validated read at a pinned view. Serves from the plaintext cache when
  /// the cached entry's commit version is <= the view's (taking only the
  /// cache lock); otherwise walks the view's map root and fetches the raw
  /// record under the commit mutex, then runs the expensive validation —
  /// Merkle hash check, decryption, decompression — OUTSIDE it, so
  /// concurrent view readers serialize only on I/O, not on crypto.
  Result<Buffer> ReadAtView(const Snapshot& view, ChunkId cid);

  /// Zero-copy variant of ReadAtView: a cache hit hands back shared
  /// ownership of the cached payload (one refcount bump, no allocation,
  /// no memcpy); a miss allocates once for the freshly validated bytes.
  /// This is the ReadTransaction hot path — per-object cost at steady
  /// state is one cache lookup plus the caller's unpickle.
  Result<std::shared_ptr<const Buffer>> ReadAtViewShared(const Snapshot& view,
                                                         ChunkId cid);

  /// Batched view read: all cache misses fetch their raw records under ONE
  /// commit-mutex acquisition, then validation fans out across the crypto
  /// pool (mirroring VerifyIntegrity's pipeline). Fails on the first
  /// error, lowest-index first; on success out[i] is the payload of
  /// cids[i].
  Result<std::vector<Buffer>> ReadManyAtView(const Snapshot& view,
                                             const std::vector<ChunkId>& cids);
  Status ForEachChunkAt(
      const Snapshot& snap,
      const std::function<Status(ChunkId, const MapEntry&)>& fn);
  Status DiffSnapshots(
      const Snapshot& base, const Snapshot& delta,
      const std::function<Status(ChunkId, DiffKind, const MapEntry&)>& fn);

  /// Operation counters, including cache and group-commit metrics.
  /// Returns a snapshot by value; safe to call concurrently with readers
  /// and committers.
  ChunkStoreStats Stats() const;
  ChunkStoreStats stats() const { return Stats(); }  // Legacy alias.

  /// The registry backing Stats(): latency histograms, the security audit
  /// trail, and every counter above, by name. Shared with the layers built
  /// on this store (object/collection/backup) so one snapshot covers the
  /// whole database instance.
  const std::shared_ptr<common::MetricsRegistry>& metrics() const {
    return metrics_;
  }

  const ChunkStoreOptions& options() const { return options_; }
  uint64_t next_chunk_id() const { return next_chunk_id_.load(); }

  /// Flushes a final checkpoint. The destructor calls this best-effort.
  Status Close();

  /// Debug: prints a per-region segment census (live/dead/map bytes) to
  /// stderr. Used by benchmarks under TPCB_DEBUG.
  void DumpSegmentCensus() const;

 private:
  struct SegInfo {
    uint64_t total = 0;     // Bytes in the segment file.
    uint64_t live = 0;      // Bytes of live records (data + map).
    uint64_t live_map = 0;  // Bytes of live map-node records. Segments
                            // holding live map nodes are not cleanable
                            // until a checkpoint relocates those nodes.
  };

  /// Registry-backed instruments, resolved once at construction so hot
  /// paths touch only the wait-free instruments themselves (the old
  /// per-field AtomicStats atomics, migrated onto the metrics registry;
  /// Stats() reads them back as the compatibility accessor). Quantities
  /// that move both ways or get rebuilt are gauges; monotonic tallies are
  /// sharded counters.
  struct Instruments {
    common::Gauge* live_bytes = nullptr;
    common::Gauge* total_bytes = nullptr;
    common::Gauge* segments = nullptr;
    common::Gauge* live_chunks = nullptr;
    common::Counter* commits = nullptr;
    common::Counter* durable_commits = nullptr;
    common::Counter* checkpoints = nullptr;
    common::Counter* cleaned_segments = nullptr;
    common::Counter* relocated_records = nullptr;
    common::Counter* relocated_bytes = nullptr;
    common::Counter* bytes_appended = nullptr;
    common::Counter* data_bytes = nullptr;
    common::Counter* map_bytes = nullptr;
    common::Counter* commit_bytes = nullptr;
    common::Counter* cache_hits = nullptr;
    common::Counter* cache_misses = nullptr;
    common::Counter* cache_evictions[4] = {};  // Indexed by EvictCause.
    common::Gauge* cache_bytes_used = nullptr;
    common::Counter* sealed_bytes = nullptr;
    common::Counter* parallel_sealed_bytes = nullptr;
    common::Counter* commit_groups = nullptr;
    common::Counter* grouped_commits = nullptr;
    common::Gauge* max_commits_per_group = nullptr;
    common::Counter* log_syncs = nullptr;
    common::Counter* counter_bumps = nullptr;
    common::Counter* compress_attempts = nullptr;
    common::Counter* compressed_chunks = nullptr;
    common::Counter* compress_bytes_in = nullptr;
    common::Counter* compress_bytes_out = nullptr;
    common::Counter* views_pinned = nullptr;
    // Latency histograms (recording gated by the registry's timing flag).
    common::Histogram* read_latency_us = nullptr;
    common::Histogram* seal_latency_us = nullptr;
    common::Histogram* sync_latency_us = nullptr;
    common::Histogram* counter_bump_latency_us = nullptr;
    common::Histogram* group_flush_latency_us = nullptr;
    common::Histogram* commit_latency_us = nullptr;
    common::Histogram* verify_latency_us = nullptr;
    // Read-path stage breakdown (cache misses only; a hit skips all three).
    common::Histogram* read_verify_us = nullptr;
    common::Histogram* read_decrypt_us = nullptr;
    common::Histogram* read_decompress_us = nullptr;
    // Recovery (set once per Open that replays a residual log).
    common::Gauge* recovery_time_us = nullptr;
    common::Gauge* recovery_commits_replayed = nullptr;
    common::Gauge* recovery_chunks_replayed = nullptr;
    common::Counter* verified_chunks = nullptr;
  };

  ChunkStore(platform::UntrustedStore* store,
             platform::OneWayCounter* counter,
             const ChunkStoreOptions& options, crypto::CipherSuite suite);

  // --- open/recovery (single-threaded: before the store is published) ---
  Status Bootstrap();            // Fresh store: first segment + checkpoint.
  Status Recover();              // Anchor + residual log replay.
  Status RebuildAccounting();    // Full map walk -> per-segment live bytes.

  // --- log tail (all require mu_) ---
  static std::string SegmentName(uint32_t id);
  Status OpenFreshSegment();     // Rolls the tail to a new segment file.
  // Appends a record to the tail (rolling segments as needed); returns its
  // location.
  Result<Location> Append(RecordType type, Slice payload);
  Status FlushTail();
  Status SyncDirtyFilesLocked();

  // --- records (require mu_: may read the unflushed tail buffer) ---
  // I/O + structural checks only: reads the record at `loc`, verifying
  // type and payload length against the location map but NOT the hash —
  // callers validate (possibly on another thread) before trusting it.
  // Records still sitting in the tail buffer (buffered group commits) are
  // served from memory.
  Result<Buffer> FetchRawRecord(const Location& loc, RecordType expected);
  Result<Buffer> ReadRawRecord(const Location& loc, RecordType expected,
                               const crypto::Digest& expected_hash);
  Result<Buffer> ReadDataAt(const MapEntry& entry);
  // Hash-checks, decrypts, and (if entry.flags says so) decompresses a
  // fetched data record. Pure crypto on local state — safe OUTSIDE mu_ and
  // called concurrently by the view read path and VerifyIntegrity.
  Result<Buffer> ValidateSealed(const MapEntry& entry, Buffer sealed);
  NodeLoader MakeLoader();
  // Loads the checkpointed map root (level read from the record itself).
  Result<std::shared_ptr<MapNode>> LoadRoot(const Location& loc,
                                            const crypto::Digest& hash);

  // --- commit machinery ---
  // A write whose payload is already sealed (the cleaner relocates sealed
  // bytes verbatim, so relocation neither decrypts nor changes hashes).
  struct StagedWrite {
    ChunkId cid;
    Buffer sealed;
    crypto::Digest hash;
    uint8_t flags = 0;  // EntryFlags describing `sealed`'s payload.
  };
  // A batch after normalization + sealing, ready to buffer. `plains`
  // points into the caller's WriteBatch (valid for the CommitBuffered
  // call) and feeds the cache write-through.
  struct PreparedBatch {
    std::vector<StagedWrite> writes;
    std::vector<const Buffer*> plains;  // Parallel to writes.
    std::vector<ChunkId> deallocs;
    std::vector<ChunkId> touched;       // All ids, in first-seen order.
  };
  // One buffered-but-unsealed operation of the open commit group.
  struct PendingOp {
    bool is_write;
    ChunkId cid;
    Location loc;         // is_write only.
    crypto::Digest hash;  // is_write only.
    uint8_t flags = 0;    // is_write only (EntryFlags).
  };
  struct SealResult {
    uint64_t counter_target = 0;  // Sealed counter value (durable only).
    bool bump_counter = false;
    crypto::Digest mac;
  };

  // Normalize + seal OUTSIDE mu_ (crypto pipeline; only the IV draw is
  // serialized). Per-batch: a failure here touches no shared state.
  Status PrepareBatch(const WriteBatch& batch, PreparedBatch* out);
  // Requires mu_. Appends the batch's data records, applies them to the
  // map/accounting/cache and extends the open group. On failure the
  // batch's partial application is rolled back so groupmates are unharmed.
  Status BufferBatchLocked(const PreparedBatch& prep);
  // Requires mu_. Seals every buffered op (plus `new_root`, if any) into
  // ONE merged manifest: one log write, one MAC, one chain link, one
  // counter target. With an empty group this still writes a manifest (an
  // empty durable commit is a pure sync point, as before group commit).
  Result<SealResult> SealGroupLocked(uint8_t flags,
                                     const NodeWriteResult* new_root);
  // Requires mu_. Sync + counter bump, fully under the lock (checkpoints,
  // cleaning, and the serialized non-group path).
  Status FinishDurableLocked(const SealResult& seal);
  // Requires mu_, group idle. The locked durable-seal path: seals the open
  // group under one merged manifest (+ optional new map root), syncs and
  // bumps under the lock, writes the anchor for checkpoints, and completes
  // any absorbed durability tickets.
  Status CommitGroupDurableLocked(uint8_t flags,
                                  const NodeWriteResult* new_root);
  // Requires mu_ (released during the flush I/O). The group-leader flush:
  // seals the open group, then syncs + bumps OUTSIDE mu_ so new commits
  // keep buffering, then completes every waiting ticket.
  Status LeadGroupFlushLocked(std::unique_lock<std::mutex>& lock);
  // Requires mu_. Blocks until no leader flush is in flight; durable-seal
  // paths that run under the lock (checkpoint, cleaning) must wait so two
  // flushes never interleave their counter bumps.
  void AwaitGroupIdleLocked(std::unique_lock<std::mutex>& lock);
  // Requires mu_. Completes `tickets` with `status` and wakes waiters.
  void CompleteTicketsLocked(
      std::vector<std::shared_ptr<internal::CommitTicket>>* tickets,
      const Status& status);
  // Takes mu_: deferred auto-checkpoint + cleaning after a commit.
  Status RunMaintenance();

  // Cheap precheck mirroring MaybeCheckpointLocked/MaybeCleanLocked
  // trigger conditions, so RunMaintenance can bail before serializing
  // against an in-flight group flush (or its accumulation window) when no
  // maintenance is owed.
  bool MaintenanceDueLocked();

  Status WriteAnchor();
  Status CheckpointLocked();
  Status MaybeCheckpointLocked();

  // --- cleaning (require mu_) ---
  Status MaybeCleanLocked();
  // Lowest-live data-only segments behind the scan position; stops when
  // projected size reaches `target` (0 = no target) or `max_segments`.
  std::vector<uint32_t> CleanCandidates(uint64_t target, int max_segments);
  // Checkpoints iff that would unlock >= one segment of parked garbage.
  // Also marks live map nodes in low-yield segments dirty first, so the
  // checkpoint relocates them and unpins those segments for cleaning.
  Status UnlockGarbageWithCheckpoint();
  // Marks map nodes persisted in `victims` (and their ancestors) dirty.
  Result<bool> DirtyMapNodesIn(const std::set<uint32_t>& victims);
  Status CleanSegments(const std::vector<uint32_t>& victims);
  Status FreePendingSegments();
  size_t ActiveSnapshots();

  void AccountLive(uint32_t segment, int64_t delta, bool is_map = false);

  // Hash of a sealed record as stored in the map (possibly truncated).
  crypto::Digest EntryHash(Slice sealed) const;
  size_t entry_hash_size() const;

  // Seals with a serially-drawn IV; the only mutating cipher-suite calls,
  // serialized by iv_mu_ so concurrent committers can seal in parallel.
  Buffer SealSerialIv(Slice plain);
  Buffer NextIvSerial();

  // Worker pool for the commit/verify crypto pipeline; created on first
  // use (thread-safely), nullptr when options_.crypto_threads <= 1.
  ThreadPool* CryptoPool();
  static void AtomicMax(std::atomic<uint64_t>& counter, uint64_t value);

  // Resolves every instrument in m_ against metrics_ (constructor only).
  void BindInstruments();
  // Records a security audit event (tamper/replay/counter detections).
  void AuditDetect(const char* kind, int region, const std::string& location,
                   const std::string& message);
  static std::string LocationString(const Location& loc);

  platform::UntrustedStore* store_;
  platform::OneWayCounter* counter_;
  ChunkStoreOptions options_;
  crypto::CipherSuite suite_;
  AnchorManager anchor_mgr_;
  LocationMap map_;

  std::atomic<bool> open_{false};
  std::atomic<uint64_t> next_chunk_id_{1};

  // --- All state below requires mu_ unless noted. ---
  mutable std::mutex mu_;  // The commit mutex.
  uint64_t seq_ = 0;
  // Monotone count of applied (buffered or sealed) commits. Unlike seq_ it
  // advances for every applied batch — group-mode buffered commits mutate
  // the map without bumping seq_ — so it versions the in-memory state for
  // the versioned chunk cache and pinned views. Not persisted; resets with
  // the (equally empty) cache at open.
  uint64_t commit_version_ = 0;
  uint64_t counter_value_ = 0;  // Cached one-way counter value.
  crypto::Digest chain_mac_;  // MAC of the most recent commit record.
  // Checkpoint state mirrored into the anchor.
  crypto::Digest ckpt_mac_;
  bool has_root_ = false;
  Location root_loc_;
  crypto::Digest root_hash_;
  uint32_t scan_segment_ = 0;
  uint32_t scan_offset_ = 0;
  uint64_t residual_bytes_ = 0;

  // Tail segment.
  uint32_t cur_segment_ = 0;
  uint64_t cur_offset_ = 0;  // Flushed bytes in the tail file.
  Buffer tail_buf_;
  uint32_t next_segment_id_ = 1;

  std::map<uint32_t, SegInfo> segments_;
  std::set<std::string> dirty_files_;
  std::vector<uint32_t> pending_free_;  // Freed at next durable commit.
  std::vector<std::weak_ptr<Snapshot>> snapshots_;

  bool in_maintenance_ = false;  // Guards checkpoint/clean reentrancy.

  // Open commit group (group_commit mode): buffered ops awaiting the next
  // merged manifest, and the durable committers waiting on its flush.
  std::vector<PendingOp> group_ops_;
  std::vector<std::shared_ptr<internal::CommitTicket>> group_tickets_;
  bool group_flushing_ = false;  // A leader's sync is in flight.
  std::condition_variable group_cv_;

  std::shared_ptr<common::MetricsRegistry> metrics_;  // Never null.
  Instruments m_;  // Wait-free instruments: no lock required.

  // Validated-plaintext cache: holds only bytes that already passed
  // Merkle + decryption validation, keyed by the chunk's last committed
  // state. Internally locked; see DESIGN.md for invalidation rules.
  ChunkCache cache_;

  std::mutex iv_mu_;  // Serializes CipherSuite::Seal/NextIv (DRBG state).
  std::once_flag crypto_pool_once_;
  std::unique_ptr<ThreadPool> crypto_pool_;
};

}  // namespace tdb::chunk

#endif  // TDB_CHUNK_CHUNK_STORE_H_
