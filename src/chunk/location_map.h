#ifndef TDB_CHUNK_LOCATION_MAP_H_
#define TDB_CHUNK_LOCATION_MAP_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "chunk/log_format.h"
#include "chunk/types.h"
#include "common/result.h"

namespace tdb::chunk {

/// One slot of a map node. In a leaf it names a data chunk's log record;
/// in an internal node it names the persisted child map node. Either way it
/// carries the child's one-way hash — this is how the Merkle tree is
/// embedded in the location map (§3.2.1 of the paper): validating a chunk
/// read validates a root-to-leaf hash path.
struct MapEntry {
  bool present = false;
  uint8_t flags = 0;  // EntryFlags; authenticated via the node encoding.
  Location loc;
  crypto::Digest hash;
};

/// A node of the location map tree. Nodes are copy-on-write: snapshots
/// share subtrees with the live map, and mutation clones shared nodes along
/// the root-to-leaf path.
struct MapNode {
  uint32_t level = 0;   // 0 = leaf.
  uint64_t index = 0;   // Node index within its level.
  std::vector<MapEntry> entries;
  std::vector<std::shared_ptr<MapNode>> children;  // Internal nodes only.
  bool dirty = false;          // Needs rewriting at the next checkpoint.
  bool has_persisted = false;  // A log record exists for this version.
  Location persisted_loc;
  crypto::Digest persisted_hash;
  uint32_t persisted_size = 0;  // Full record size, for space accounting.
};

/// Loads a map node from the log given its location and expected hash
/// (validating both), or fails with Corruption/TamperDetected.
using NodeLoader = std::function<Result<std::shared_ptr<MapNode>>(
    uint32_t level, uint64_t index, const Location& loc,
    const crypto::Digest& hash)>;

/// Writes a serialized map node to the log tail; returns its Location,
/// payload hash, and total record size.
struct NodeWriteResult {
  Location loc;
  crypto::Digest hash;
  uint32_t record_size;
};
using NodeWriter = std::function<Result<NodeWriteResult>(Slice node_bytes)>;

/// Change kinds reported by Diff.
enum class DiffKind { kAdded, kRemoved, kChanged };

/// The hierarchical location map: ChunkId -> (Location, hash), organized as
/// a radix tree of map chunks so it scales to large chunk counts and so the
/// Merkle hash tree rides along for free. Not thread-safe; the chunk store
/// serializes access.
class LocationMap {
 public:
  explicit LocationMap(uint32_t fanout);

  /// Starts from a persisted root (recovery path).
  void ResetToRoot(std::shared_ptr<MapNode> root);

  const std::shared_ptr<MapNode>& root() const { return root_; }

  /// Looks up a chunk. nullopt if not mapped.
  Result<std::optional<MapEntry>> Get(ChunkId cid, const NodeLoader& loader);

  /// Looks up within an arbitrary (e.g., snapshot) root.
  Result<std::optional<MapEntry>> GetAt(const std::shared_ptr<MapNode>& root,
                                        ChunkId cid,
                                        const NodeLoader& loader) const;

  /// Inserts or replaces a mapping. If the entry replaces an older one, the
  /// old entry is returned so the caller can de-account its log record.
  Result<std::optional<MapEntry>> Put(ChunkId cid, const MapEntry& entry,
                                      const NodeLoader& loader);

  /// Removes a mapping; returns the removed entry (nullopt if absent).
  Result<std::optional<MapEntry>> Remove(ChunkId cid,
                                         const NodeLoader& loader);

  /// Serializes every dirty node bottom-up through `writer` (the paper's
  /// checkpoint: "modified state is written opportunistically"). Returns
  /// the root's location/hash for the checkpoint commit. Old persisted node
  /// records are reported through `obsolete` for space de-accounting.
  Result<NodeWriteResult> WriteDirty(
      const NodeWriter& writer,
      const std::function<void(const Location&, uint32_t)>& obsolete);

  bool HasDirtyNodes() const { return root_ != nullptr && root_->dirty; }

  /// Visits every present leaf entry under `root` in ascending cid order.
  Status ForEach(
      const std::shared_ptr<MapNode>& root, const NodeLoader& loader,
      const std::function<Status(ChunkId, const MapEntry&)>& fn) const;

  /// Visits every map node under `root` (loading all of them). Used to
  /// rebuild segment space accounting at open.
  Status ForEachNode(
      const std::shared_ptr<MapNode>& root, const NodeLoader& loader,
      const std::function<void(const MapNode&)>& fn) const;

  /// Structural diff `base` -> `delta` for incremental backups. Subtrees
  /// with equal hashes are skipped without loading. `fn(cid, kind, entry)`
  /// receives the delta-side entry (or the base-side one for kRemoved).
  Status Diff(const std::shared_ptr<MapNode>& base,
              const std::shared_ptr<MapNode>& delta, const NodeLoader& loader,
              const std::function<Status(ChunkId, DiffKind, const MapEntry&)>&
                  fn) const;

  /// (De)serialization of a single node.
  static Buffer EncodeNode(const MapNode& node);
  static Result<std::shared_ptr<MapNode>> DecodeNode(Slice data,
                                                     uint32_t fanout,
                                                     size_t hash_size);

  uint32_t fanout() const { return fanout_; }

 private:
  // Number of chunk ids a node at `level` covers.
  uint64_t Span(uint32_t level) const;
  // Grows the tree with new roots until `cid` is in range.
  void GrowTo(ChunkId cid);
  // Clones `node` if shared with a snapshot (COW). Returns writable node.
  std::shared_ptr<MapNode> EnsureWritable(std::shared_ptr<MapNode>& slot);
  // Returns (loading if necessary) child `slot` of `node`; creates it when
  // `create` and absent. Returns nullptr if absent and !create.
  Result<std::shared_ptr<MapNode>> Child(const std::shared_ptr<MapNode>& node,
                                         uint32_t slot, bool create,
                                         const NodeLoader& loader) const;

  Result<NodeWriteResult> WriteDirtyRec(
      const std::shared_ptr<MapNode>& node, const NodeWriter& writer,
      const std::function<void(const Location&, uint32_t)>& obsolete);

  uint32_t fanout_;
  std::shared_ptr<MapNode> root_;
};

}  // namespace tdb::chunk

#endif  // TDB_CHUNK_LOCATION_MAP_H_
