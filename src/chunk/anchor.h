#ifndef TDB_CHUNK_ANCHOR_H_
#define TDB_CHUNK_ANCHOR_H_

#include <string>

#include "chunk/log_format.h"
#include "chunk/types.h"
#include "common/result.h"
#include "crypto/cipher_suite.h"
#include "platform/untrusted_store.h"

namespace tdb::chunk {

/// The anchor is the paper's "hash value along with the current value of
/// the one-way counter, signed with the secret key and stored at a known
/// location in the untrusted store" (§3). It is the single trust root:
/// everything else is authenticated transitively — the checkpointed map
/// root via its hash, the residual log via the MAC chain, freshness via the
/// one-way counter value.
struct AnchorState {
  uint64_t counter = 0;         // One-way counter at last durable commit.
  uint64_t seq = 0;             // Seq of last durable commit.
  uint64_t next_chunk_id = 1;   // Allocation high-water mark.
  bool has_root = false;        // False only before the first checkpoint.
  Location root_loc;            // Location-map root at last checkpoint.
  crypto::Digest root_hash;
  crypto::Digest ckpt_mac;      // MAC of the checkpoint commit record.
  uint32_t scan_segment = 0;    // Residual-log scan start (after ckpt).
  uint32_t scan_offset = 0;
};

/// Reads/writes the anchor using two alternating slots so a crash can tear
/// at most the slot being written; recovery picks the valid slot with the
/// highest (counter, seq).
class AnchorManager {
 public:
  /// `entry_hash_size` frames the (possibly truncated) root hash.
  AnchorManager(platform::UntrustedStore* store,
                const crypto::CipherSuite* suite, size_t entry_hash_size)
      : store_(store), suite_(suite), entry_hash_size_(entry_hash_size) {}

  /// NotFound if no valid anchor exists (fresh store); TamperDetected if
  /// slots exist but none validates.
  Result<AnchorState> Load() const;

  /// Writes `state` to the next slot and syncs it.
  Status Write(const AnchorState& state);

  static Buffer Encode(const AnchorState& state,
                       const crypto::CipherSuite& suite,
                       size_t entry_hash_size);
  static Result<AnchorState> Decode(Slice data,
                                    const crypto::CipherSuite& suite,
                                    size_t entry_hash_size);

 private:
  platform::UntrustedStore* store_;
  const crypto::CipherSuite* suite_;
  size_t entry_hash_size_;
  int next_slot_ = 0;
};

}  // namespace tdb::chunk

#endif  // TDB_CHUNK_ANCHOR_H_
