#ifndef TDB_CHUNK_CHUNK_CACHE_H_
#define TDB_CHUNK_CHUNK_CACHE_H_

#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "chunk/types.h"
#include "common/metrics.h"
#include "common/slice.h"

namespace tdb::chunk {

/// Why a validated-plaintext entry left the cache. Every mutation site is
/// tagged so hit-ratio math stays trustworthy: before causes were tracked,
/// Stats() only counted capacity evictions and silently missed erasures on
/// deallocation and failed/aborted commits.
enum class EvictCause {
  kCapacity = 0,      // LRU pressure in EvictToFit.
  kDealloc = 1,       // Chunk deallocated by a committed batch.
  kFailedCommit = 2,  // Batch failed/rolled back; ids dropped defensively.
  kRelocation = 3,    // Cleaner relocation. Structurally zero by design:
                      // relocation moves sealed bytes verbatim (same id,
                      // same plaintext), so entries survive; the counter
                      // exists to prove that claim in live stats.
};

/// Per-cause eviction counts, plus the compatibility total.
struct CacheEvictionCounts {
  uint64_t capacity = 0;
  uint64_t dealloc = 0;
  uint64_t failed_commit = 0;
  uint64_t relocation = 0;
  uint64_t total() const {
    return capacity + dealloc + failed_commit + relocation;
  }
};

/// Byte-budgeted LRU cache of validated plaintext chunk payloads.
///
/// Every entry holds bytes that already passed the full read validation
/// (Merkle hash check + decryption) or that the store itself just sealed
/// and committed, so serving a hit skips untrusted-store I/O, record
/// parsing, hashing, and decryption entirely. The cache lives in trusted
/// memory; holding decrypted bytes here does not change the threat model,
/// which only covers state behind the UntrustedStore interface.
///
/// Keyed by ChunkId and always reflecting the LAST COMMITTED state of the
/// chunk: the owning ChunkStore write-throughs commits, erases
/// deallocations, and never populates it from snapshot reads (which may
/// see older versions). Cleaner relocation moves sealed bytes verbatim —
/// same id, same plaintext — so cached entries stay valid across Clean.
///
/// Thread-safe behind an internal mutex that is never held across I/O, so
/// cache-hit reads never queue behind an in-flight commit sync (the
/// group-commit read-path requirement). The mutex only covers the map/LRU
/// manipulation and the payload copy-out.
class ChunkCache {
 public:
  /// `capacity_bytes` = 0 disables the cache (all ops become no-ops).
  explicit ChunkCache(size_t capacity_bytes) : capacity_(capacity_bytes) {}

  /// Mirrors eviction counts and occupancy into registry instruments (all
  /// may be null). Call before concurrent use; the owning ChunkStore does
  /// so in its constructor.
  void AttachMetrics(common::Counter* evictions[4],
                     common::Gauge* bytes_used);

  bool enabled() const { return capacity_ > 0; }

  /// On a hit, copies the cached payload into `*out`, refreshes the LRU
  /// position and returns true; returns false on a miss. The copy-out
  /// (instead of a pointer into the cache) is what makes concurrent
  /// readers safe against eviction/replacement, and costs nothing extra:
  /// the chunk store returned payloads by value already.
  bool Get(ChunkId cid, Buffer* out);

  /// Versioned hit: like Get, but only succeeds when the entry's commit
  /// version is <= `max_version`. Because entries always track a chunk's
  /// LAST committed state (commits write through, deallocations erase), an
  /// entry whose version predates a pinned view is exactly the state that
  /// view observes — so lock-free view reads can serve from cache without
  /// ever consulting the location map.
  bool GetIfVersionAtMost(ChunkId cid, uint64_t max_version, Buffer* out);

  /// Zero-copy versioned hit: same admission rule as GetIfVersionAtMost,
  /// but hands back shared ownership of the cached payload instead of
  /// copying it — nullptr on a miss. Payloads are immutable once inserted
  /// (replacement swaps in a NEW buffer), so a returned handle stays valid
  /// bytes even if the entry is evicted or replaced a nanosecond later.
  /// This is the snapshot-read fast path: per-hit cost drops to one map
  /// lookup + one refcount bump, no allocation.
  std::shared_ptr<const Buffer> GetSharedIfVersionAtMost(ChunkId cid,
                                                         uint64_t max_version);

  /// Inserts or replaces the entry for `cid`, evicting LRU entries to fit.
  /// Payloads that alone exceed the budget are not cached (but still
  /// replace — i.e. erase — any stale entry under the same id).
  /// `version` is the store's commit version at insertion; it gates
  /// GetIfVersionAtMost.
  void Put(ChunkId cid, Slice data, uint64_t version);

  /// Drops the entry for `cid` if present, attributing the eviction to
  /// `cause` (only counted when an entry was actually present).
  void Erase(ChunkId cid, EvictCause cause);

  /// Drops everything.
  void Clear();

  size_t size_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return size_;
  }
  size_t entry_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }
  /// All evictions regardless of cause (the pre-cause compatibility view —
  /// which previously undercounted by missing every non-capacity cause).
  uint64_t evictions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return counts_.total();
  }
  CacheEvictionCounts eviction_counts() const {
    std::lock_guard<std::mutex> lock(mu_);
    return counts_;
  }

 private:
  // Per-entry bookkeeping overhead charged against the budget, so millions
  // of tiny chunks cannot blow past the nominal byte cap.
  static constexpr size_t kEntryOverhead = 64;

  struct Entry {
    // Shared so GetSharedIfVersionAtMost can hand out the payload without
    // copying; never mutated after insertion (replacement allocates anew).
    std::shared_ptr<const Buffer> data;
    uint64_t version = 0;
    std::list<ChunkId>::iterator lru_pos;
  };

  size_t Charge(const Buffer& data) const {
    return data.size() + kEntryOverhead;
  }
  void EvictToFit(size_t incoming_charge);      // Requires mu_.
  bool EraseLocked(ChunkId cid);                // Requires mu_.
  void CountEvictionLocked(EvictCause cause);   // Requires mu_.
  void MirrorSizeLocked();                      // Requires mu_.

  mutable std::mutex mu_;
  std::unordered_map<ChunkId, Entry> entries_;
  std::list<ChunkId> lru_;  // Front = most recently used.
  size_t capacity_;
  size_t size_ = 0;
  CacheEvictionCounts counts_;
  common::Counter* evict_metrics_[4] = {nullptr, nullptr, nullptr, nullptr};
  common::Gauge* bytes_used_metric_ = nullptr;
};

}  // namespace tdb::chunk

#endif  // TDB_CHUNK_CHUNK_CACHE_H_
