#ifndef TDB_CHUNK_CHUNK_CACHE_H_
#define TDB_CHUNK_CHUNK_CACHE_H_

#include <list>
#include <unordered_map>

#include "chunk/types.h"
#include "common/slice.h"

namespace tdb::chunk {

/// Byte-budgeted LRU cache of validated plaintext chunk payloads.
///
/// Every entry holds bytes that already passed the full read validation
/// (Merkle hash check + decryption) or that the store itself just sealed
/// and committed, so serving a hit skips untrusted-store I/O, record
/// parsing, hashing, and decryption entirely. The cache lives in trusted
/// memory; holding decrypted bytes here does not change the threat model,
/// which only covers state behind the UntrustedStore interface.
///
/// Keyed by ChunkId and always reflecting the LAST COMMITTED state of the
/// chunk: the owning ChunkStore write-throughs commits, erases
/// deallocations, and never populates it from snapshot reads (which may
/// see older versions). Cleaner relocation moves sealed bytes verbatim —
/// same id, same plaintext — so cached entries stay valid across Clean.
///
/// Not thread-safe; like the rest of ChunkStore, callers serialize access.
class ChunkCache {
 public:
  /// `capacity_bytes` = 0 disables the cache (all ops become no-ops).
  explicit ChunkCache(size_t capacity_bytes) : capacity_(capacity_bytes) {}

  bool enabled() const { return capacity_ > 0; }

  /// Returns the cached payload and refreshes its LRU position, or nullptr
  /// on miss. The pointer is valid only until the next mutating call.
  const Buffer* Get(ChunkId cid);

  /// Inserts or replaces the entry for `cid`, evicting LRU entries to fit.
  /// Payloads that alone exceed the budget are not cached (but still
  /// replace — i.e. erase — any stale entry under the same id).
  void Put(ChunkId cid, Slice data);

  /// Drops the entry for `cid` if present (deallocate / failed commit).
  void Erase(ChunkId cid);

  /// Drops everything.
  void Clear();

  size_t size_bytes() const { return size_; }
  size_t entry_count() const { return entries_.size(); }
  uint64_t evictions() const { return evictions_; }

 private:
  // Per-entry bookkeeping overhead charged against the budget, so millions
  // of tiny chunks cannot blow past the nominal byte cap.
  static constexpr size_t kEntryOverhead = 64;

  struct Entry {
    Buffer data;
    std::list<ChunkId>::iterator lru_pos;
  };

  size_t Charge(const Buffer& data) const {
    return data.size() + kEntryOverhead;
  }
  void EvictToFit(size_t incoming_charge);

  std::unordered_map<ChunkId, Entry> entries_;
  std::list<ChunkId> lru_;  // Front = most recently used.
  size_t capacity_;
  size_t size_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace tdb::chunk

#endif  // TDB_CHUNK_CHUNK_CACHE_H_
