#include "chunk/log_format.h"

namespace tdb::chunk {

Buffer EncodeSegmentHeader(uint32_t segment_id) {
  Buffer out;
  PutFixed32(&out, kSegmentMagic);
  PutFixed32(&out, segment_id);
  return out;
}

Status DecodeSegmentHeader(Slice data, uint32_t* segment_id) {
  Decoder dec(data);
  uint32_t magic;
  TDB_RETURN_IF_ERROR(dec.GetFixed32(&magic));
  if (magic != kSegmentMagic) return Status::Corruption("bad segment magic");
  return dec.GetFixed32(segment_id);
}

void AppendRecord(Buffer* dst, RecordType type, Slice payload) {
  dst->push_back(static_cast<uint8_t>(type));
  PutFixed32(dst, static_cast<uint32_t>(payload.size()));
  PutFixed32(dst, Checksum32(payload));
  dst->insert(dst->end(), payload.data(), payload.data() + payload.size());
}

Status ParseRecord(Slice input, RecordView* out) {
  if (input.size() < kRecordHeaderSize) {
    return Status::Corruption("truncated record header");
  }
  uint8_t type = input[0];
  if (type < static_cast<uint8_t>(RecordType::kData) ||
      type > static_cast<uint8_t>(RecordType::kCommit)) {
    return Status::Corruption("bad record type");
  }
  uint32_t len = DecodeFixed32(input.data() + 1);
  uint32_t cksum = DecodeFixed32(input.data() + 5);
  if (input.size() < kRecordHeaderSize + len) {
    return Status::Corruption("truncated record payload");
  }
  Slice payload(input.data() + kRecordHeaderSize, len);
  if (Checksum32(payload) != cksum) {
    return Status::Corruption("record checksum mismatch");
  }
  out->type = static_cast<RecordType>(type);
  out->payload = payload;
  out->record_size = kRecordHeaderSize + len;
  return Status::OK();
}

void PutLocation(Buffer* dst, const Location& loc) {
  PutVarint32(dst, loc.segment);
  PutVarint32(dst, loc.offset);
  PutVarint32(dst, loc.length);
}

Status GetLocation(Decoder* dec, Location* loc) {
  TDB_RETURN_IF_ERROR(dec->GetVarint32(&loc->segment));
  TDB_RETURN_IF_ERROR(dec->GetVarint32(&loc->offset));
  return dec->GetVarint32(&loc->length);
}

void PutDigest(Buffer* dst, const crypto::Digest& digest) {
  dst->insert(dst->end(), digest.data(), digest.data() + digest.size());
}

Status GetDigest(Decoder* dec, size_t hash_size, crypto::Digest* digest) {
  if (hash_size == 0) {
    *digest = crypto::Digest();
    return Status::OK();
  }
  Slice bytes;
  TDB_RETURN_IF_ERROR(dec->GetBytes(hash_size, &bytes));
  *digest = crypto::Digest(bytes.data(), bytes.size());
  return Status::OK();
}

Buffer EncodeManifest(const CommitManifest& manifest, size_t mac_size,
                      size_t entry_hash_size) {
  // Digest fields self-describe their width on encode; the sizes matter
  // only for decoding. Kept in the signature for symmetry.
  (void)mac_size;
  (void)entry_hash_size;
  Buffer out;
  PutVarint64(&out, manifest.seq);
  out.push_back(manifest.flags);
  PutVarint64(&out, manifest.next_chunk_id);
  PutVarint64(&out, manifest.counter);
  PutDigest(&out, manifest.prev_mac);

  PutVarint32(&out, static_cast<uint32_t>(manifest.writes.size()));
  for (const ManifestWrite& w : manifest.writes) {
    PutVarint64(&out, w.cid);
    PutLocation(&out, w.loc);
    PutDigest(&out, w.hash);
    out.push_back(w.flags);
  }
  PutVarint32(&out, static_cast<uint32_t>(manifest.deallocs.size()));
  for (ChunkId cid : manifest.deallocs) PutVarint64(&out, cid);

  out.push_back(manifest.has_root ? 1 : 0);
  if (manifest.has_root) {
    PutLocation(&out, manifest.root_loc);
    PutDigest(&out, manifest.root_hash);
  }
  return out;
}

Status DecodeManifest(Slice data, size_t mac_size, size_t entry_hash_size,
                      CommitManifest* out) {
  Decoder dec(data);
  TDB_RETURN_IF_ERROR(dec.GetVarint64(&out->seq));
  Slice flags;
  TDB_RETURN_IF_ERROR(dec.GetBytes(1, &flags));
  out->flags = flags[0];
  TDB_RETURN_IF_ERROR(dec.GetVarint64(&out->next_chunk_id));
  TDB_RETURN_IF_ERROR(dec.GetVarint64(&out->counter));
  // prev_mac: the MAC digest size equals the suite hash size.
  TDB_RETURN_IF_ERROR(GetDigest(&dec, mac_size, &out->prev_mac));

  uint32_t n_writes;
  TDB_RETURN_IF_ERROR(dec.GetVarint32(&n_writes));
  if (n_writes > (1u << 24)) return Status::Corruption("absurd write count");
  out->writes.clear();
  out->writes.reserve(n_writes);
  for (uint32_t i = 0; i < n_writes; i++) {
    ManifestWrite w;
    TDB_RETURN_IF_ERROR(dec.GetVarint64(&w.cid));
    TDB_RETURN_IF_ERROR(GetLocation(&dec, &w.loc));
    TDB_RETURN_IF_ERROR(GetDigest(&dec, entry_hash_size, &w.hash));
    Slice wflags;
    TDB_RETURN_IF_ERROR(dec.GetBytes(1, &wflags));
    if (wflags[0] > kEntryCompressed) {
      return Status::Corruption("bad manifest write flags");
    }
    w.flags = wflags[0];
    out->writes.push_back(w);
  }

  uint32_t n_deallocs;
  TDB_RETURN_IF_ERROR(dec.GetVarint32(&n_deallocs));
  if (n_deallocs > (1u << 24)) {
    return Status::Corruption("absurd dealloc count");
  }
  out->deallocs.clear();
  out->deallocs.reserve(n_deallocs);
  for (uint32_t i = 0; i < n_deallocs; i++) {
    ChunkId cid;
    TDB_RETURN_IF_ERROR(dec.GetVarint64(&cid));
    out->deallocs.push_back(cid);
  }

  Slice has_root;
  TDB_RETURN_IF_ERROR(dec.GetBytes(1, &has_root));
  out->has_root = has_root[0] != 0;
  if (out->has_root) {
    TDB_RETURN_IF_ERROR(GetLocation(&dec, &out->root_loc));
    TDB_RETURN_IF_ERROR(GetDigest(&dec, entry_hash_size, &out->root_hash));
  }
  if (!dec.done()) return Status::Corruption("trailing manifest bytes");
  return Status::OK();
}

}  // namespace tdb::chunk
