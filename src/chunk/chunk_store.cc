#include "chunk/chunk_store.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "common/lz.h"
#include "common/trace.h"

namespace tdb::chunk {

namespace {

// Lexicographically sortable segment file names.
constexpr char kSegmentPrefix[] = "seg-";

// Commit batches below this many writes seal serially: the fan-out/join
// overhead only pays for itself once several independent seals overlap.
constexpr size_t kParallelSealMinWrites = 4;

// VerifyIntegrity fans validation out in batches of this many chunks so
// sealed bytes are buffered boundedly (I/O stays serial; crypto overlaps).
constexpr size_t kVerifyBatchChunks = 256;

// Decompression-bomb guard: a compressed record claiming a raw size above
// this is rejected as tampered without allocating.
constexpr size_t kMaxDecompressedChunk = size_t{1} << 30;

// Parses "seg-<id>"; returns false for other files (anchors etc.).
bool ParseSegmentName(const std::string& name, uint32_t* id) {
  if (name.rfind(kSegmentPrefix, 0) != 0) return false;
  uint64_t value = 0;
  for (size_t i = 4; i < name.size(); i++) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + (name[i] - '0');
  }
  if (name.size() == 4 || value > UINT32_MAX) return false;
  *id = static_cast<uint32_t>(value);
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// WriteBatch

void WriteBatch::Write(ChunkId cid, Slice data) {
  ops_.push_back(Op{true, cid, data.ToBuffer()});
}

void WriteBatch::Deallocate(ChunkId cid) {
  ops_.push_back(Op{false, cid, Buffer()});
}

// ---------------------------------------------------------------------------
// Open / bootstrap / recovery

ChunkStore::ChunkStore(platform::UntrustedStore* store,
                       platform::OneWayCounter* counter,
                       const ChunkStoreOptions& options,
                       crypto::CipherSuite suite)
    : store_(store),
      counter_(counter),
      options_(options),
      suite_(std::move(suite)),
      anchor_mgr_(store, &suite_, entry_hash_size()),
      map_(options.map_fanout),
      metrics_(options.metrics != nullptr
                   ? options.metrics
                   : std::make_shared<common::MetricsRegistry>()),
      cache_(options.cache_bytes) {
  BindInstruments();
  cache_.AttachMetrics(m_.cache_evictions, m_.cache_bytes_used);
}

void ChunkStore::BindInstruments() {
  common::MetricsRegistry* r = metrics_.get();
  m_.live_bytes = r->GetGauge("chunk.live_bytes");
  m_.total_bytes = r->GetGauge("chunk.total_bytes");
  m_.segments = r->GetGauge("chunk.segments");
  m_.live_chunks = r->GetGauge("chunk.live_chunks");
  m_.commits = r->GetCounter("chunk.commits");
  m_.durable_commits = r->GetCounter("chunk.durable_commits");
  m_.checkpoints = r->GetCounter("chunk.checkpoints");
  m_.cleaned_segments = r->GetCounter("chunk.cleaner.segments_cleaned");
  m_.relocated_records = r->GetCounter("chunk.cleaner.relocated_records");
  m_.relocated_bytes = r->GetCounter("chunk.cleaner.relocated_bytes");
  m_.bytes_appended = r->GetCounter("chunk.bytes_appended");
  m_.data_bytes = r->GetCounter("chunk.data_bytes");
  m_.map_bytes = r->GetCounter("chunk.map_bytes");
  m_.commit_bytes = r->GetCounter("chunk.commit_bytes");
  m_.cache_hits = r->GetCounter("chunk.cache.hits");
  m_.cache_misses = r->GetCounter("chunk.cache.misses");
  m_.cache_evictions[0] = r->GetCounter("chunk.cache.evictions.capacity");
  m_.cache_evictions[1] = r->GetCounter("chunk.cache.evictions.dealloc");
  m_.cache_evictions[2] =
      r->GetCounter("chunk.cache.evictions.failed_commit");
  m_.cache_evictions[3] = r->GetCounter("chunk.cache.evictions.relocation");
  m_.cache_bytes_used = r->GetGauge("chunk.cache.bytes_used");
  m_.sealed_bytes = r->GetCounter("chunk.sealed_bytes");
  m_.parallel_sealed_bytes = r->GetCounter("chunk.parallel_sealed_bytes");
  m_.commit_groups = r->GetCounter("chunk.commit_groups");
  m_.grouped_commits = r->GetCounter("chunk.grouped_commits");
  m_.max_commits_per_group = r->GetGauge("chunk.max_commits_per_group");
  m_.log_syncs = r->GetCounter("chunk.log_syncs");
  m_.counter_bumps = r->GetCounter("chunk.counter_bumps");
  m_.compress_attempts = r->GetCounter("chunk.compress.attempts");
  m_.compressed_chunks = r->GetCounter("chunk.compress.chunks");
  m_.compress_bytes_in = r->GetCounter("chunk.compress.bytes_in");
  m_.compress_bytes_out = r->GetCounter("chunk.compress.bytes_out");
  m_.views_pinned = r->GetCounter("chunk.views_pinned");
  m_.read_latency_us = r->GetHistogram("chunk.read.latency_us");
  m_.seal_latency_us = r->GetHistogram("chunk.seal.latency_us");
  m_.sync_latency_us = r->GetHistogram("chunk.sync.latency_us");
  m_.counter_bump_latency_us =
      r->GetHistogram("chunk.counter_bump.latency_us");
  m_.group_flush_latency_us =
      r->GetHistogram("chunk.group_flush.latency_us");
  m_.commit_latency_us = r->GetHistogram("chunk.commit.latency_us");
  m_.verify_latency_us = r->GetHistogram("chunk.verify.latency_us");
  m_.read_verify_us = r->GetHistogram("chunk.read.verify_us");
  m_.read_decrypt_us = r->GetHistogram("chunk.read.decrypt_us");
  m_.read_decompress_us = r->GetHistogram("chunk.read.decompress_us");
  m_.recovery_time_us = r->GetGauge("recovery.time_us");
  m_.recovery_commits_replayed = r->GetGauge("recovery.commits_replayed");
  m_.recovery_chunks_replayed = r->GetGauge("recovery.chunks_replayed");
  m_.verified_chunks = r->GetCounter("chunk.verify.chunks");
}

void ChunkStore::AuditDetect(const char* kind, int region,
                             const std::string& location,
                             const std::string& message) {
  metrics_->audit().Record(kind, region, location, message);
}

std::string ChunkStore::LocationString(const Location& loc) {
  return "seg " + std::to_string(loc.segment) + " off " +
         std::to_string(loc.offset);
}

ThreadPool* ChunkStore::CryptoPool() {
  if (options_.crypto_threads <= 1) return nullptr;
  std::call_once(crypto_pool_once_, [this] {
    crypto_pool_ = std::make_unique<ThreadPool>(options_.crypto_threads);
  });
  return crypto_pool_.get();
}

void ChunkStore::AtomicMax(std::atomic<uint64_t>& counter, uint64_t value) {
  uint64_t cur = counter.load();
  while (cur < value && !counter.compare_exchange_weak(cur, value)) {
  }
}

Buffer ChunkStore::SealSerialIv(Slice plain) {
  std::lock_guard<std::mutex> lock(iv_mu_);
  return suite_.Seal(plain);
}

Buffer ChunkStore::NextIvSerial() {
  std::lock_guard<std::mutex> lock(iv_mu_);
  return suite_.NextIv();
}

size_t ChunkStore::entry_hash_size() const {
  size_t full = suite_.hash_size();
  if (full == 0) return 0;
  if (options_.map_hash_bytes == 0) return full;
  return std::min<size_t>(full, options_.map_hash_bytes);
}

crypto::Digest ChunkStore::EntryHash(Slice sealed) const {
  crypto::Digest full = suite_.HashData(sealed);
  size_t want = entry_hash_size();
  if (full.size() <= want || want == 0) return full;
  return crypto::Digest(full.data(), want);
}

ChunkStore::~ChunkStore() {
  if (open_.load()) Close().ok();
}

Result<std::unique_ptr<ChunkStore>> ChunkStore::Open(
    platform::UntrustedStore* store, platform::SecretStore* secrets,
    platform::OneWayCounter* counter, const ChunkStoreOptions& options) {
  if (options.max_utilization <= 0.0 || options.max_utilization > 0.99) {
    return Status::InvalidArgument("max_utilization out of range");
  }
  Buffer secret;
  if (options.security.enabled) {
    TDB_ASSIGN_OR_RETURN(secret, secrets->GetSecret());
  }
  crypto::CipherSuite suite(options.security, secret,
                            Slice(options.iv_seed));
  std::unique_ptr<ChunkStore> cs(
      new ChunkStore(store, counter, options, std::move(suite)));

  auto anchor = cs->anchor_mgr_.Load();
  if (anchor.ok()) {
    TDB_RETURN_IF_ERROR(cs->Recover());
  } else if (anchor.status().IsNotFound()) {
    // Fresh store — unless segment files exist, which means the attacker
    // removed the anchor.
    for (const std::string& name : store->List()) {
      uint32_t id;
      if (ParseSegmentName(name, &id)) {
        cs->AuditDetect("anchor_missing", common::kRegionAnchor, "anchor",
                        "segments present but anchor missing");
        return Status::TamperDetected("segments present but anchor missing");
      }
    }
    if (!options.create_if_missing) {
      return Status::NotFound("no database and create_if_missing is false");
    }
    TDB_RETURN_IF_ERROR(cs->Bootstrap());
  } else {
    if (anchor.status().IsTamperDetected() ||
        anchor.status().IsCorruption()) {
      cs->AuditDetect("torn_anchor", common::kRegionAnchor, "anchor",
                      anchor.status().ToString());
    }
    return anchor.status();
  }
  cs->open_.store(true);
  return cs;
}

Status ChunkStore::Bootstrap() {
  std::unique_lock<std::mutex> lock(mu_);
  if (suite_.enabled()) {
    TDB_ASSIGN_OR_RETURN(counter_value_, counter_->Read());
  }
  TDB_RETURN_IF_ERROR(OpenFreshSegment());
  return CheckpointLocked();
}

Status ChunkStore::Recover() {
  std::unique_lock<std::mutex> lock(mu_);
  common::TraceSpan span("chunk.recover");
  const uint64_t recover_start = common::MonotonicMicros();
  TDB_ASSIGN_OR_RETURN(AnchorState anchor, anchor_mgr_.Load());

  // Freshness floor: the hardware counter can never be behind the anchor.
  // The exact check happens after the residual log is scanned, against the
  // last durable commit's sealed counter value.
  if (suite_.enabled()) {
    TDB_ASSIGN_OR_RETURN(uint64_t cv, counter_->Read());
    if (cv < anchor.counter) {
      AuditDetect("counter_regression", common::kRegionCounter, "counter",
                  "one-way counter behind anchor");
      return Status::TamperDetected("one-way counter behind anchor");
    }
    counter_value_ = cv;
  }

  next_chunk_id_.store(anchor.next_chunk_id);
  seq_ = anchor.seq;
  has_root_ = anchor.has_root;
  root_loc_ = anchor.root_loc;
  root_hash_ = anchor.root_hash;
  ckpt_mac_ = anchor.ckpt_mac;
  scan_segment_ = anchor.scan_segment;
  scan_offset_ = anchor.scan_offset;

  if (has_root_) {
    TDB_ASSIGN_OR_RETURN(std::shared_ptr<MapNode> root,
                         LoadRoot(root_loc_, root_hash_));
    map_.ResetToRoot(std::move(root));
  }

  // --- Scan the residual log ---------------------------------------------
  struct ScannedCommit {
    CommitManifest manifest;
    crypto::Digest mac;
    uint32_t end_segment;
    uint64_t end_offset;
  };
  std::vector<ScannedCommit> commits;
  crypto::Digest prev = ckpt_mac_;
  const size_t mac_size = suite_.hash_size();
  NodeLoader loader = MakeLoader();

  uint32_t seg = scan_segment_;
  uint64_t off = scan_offset_;
  bool stop = false;
  while (!stop) {
    const std::string name = SegmentName(seg);
    if (!store_->Exists(name)) break;
    auto size_or = store_->Size(name);
    if (!size_or.ok()) break;
    uint64_t file_size = *size_or;
    if (off >= file_size) {
      seg++;
      off = kSegmentHeaderSize;
      // Validate the next segment's header before scanning it.
      if (store_->Exists(SegmentName(seg))) {
        Buffer header;
        if (!store_->Read(SegmentName(seg), 0, kSegmentHeaderSize, &header)
                 .ok()) {
          break;
        }
        uint32_t seg_id;
        if (!DecodeSegmentHeader(header, &seg_id).ok() || seg_id != seg) {
          break;
        }
      }
      continue;
    }
    Buffer file;
    TDB_RETURN_IF_ERROR(
        store_->Read(name, off, static_cast<size_t>(file_size - off), &file));
    size_t pos = 0;
    while (pos < file.size()) {
      RecordView view;
      if (!ParseRecord(Slice(file.data() + pos, file.size() - pos), &view)
               .ok()) {
        stop = true;  // Torn tail (or garbage): scanning ends here.
        break;
      }
      if (view.type == RecordType::kCommit) {
        if (view.payload.size() < mac_size) {
          stop = true;
          break;
        }
        Slice sealed_m(view.payload.data(), view.payload.size() - mac_size);
        crypto::Digest mac(view.payload.data() + sealed_m.size(), mac_size);
        if (suite_.enabled() && mac != suite_.Mac(sealed_m)) {
          stop = true;
          break;
        }
        auto manifest_bytes = suite_.Open(sealed_m);
        if (!manifest_bytes.ok()) {
          stop = true;
          break;
        }
        CommitManifest manifest;
        if (!DecodeManifest(*manifest_bytes, mac_size, entry_hash_size(),
                            &manifest)
                 .ok()) {
          stop = true;
          break;
        }
        if (manifest.prev_mac != prev) {
          stop = true;
          break;
        }
        // Seq numbers must be consecutive within the residual chain (the
        // checkpoint's own seq is not in the anchor, so the first scanned
        // commit fixes the base).
        if (!commits.empty() &&
            manifest.seq != commits.back().manifest.seq + 1) {
          stop = true;
          break;
        }
        prev = mac;
        commits.push_back(ScannedCommit{std::move(manifest), mac, seg,
                                        off + pos + view.record_size});
      }
      pos += view.record_size;
    }
    off = file_size;
  }
  if (std::getenv("TDB_RECOVERY_DEBUG") != nullptr) {
    std::fprintf(stderr,
                 "[recover] scanned=%zu stop=%d scan_seg=%u scan_off=%u "
                 "anchor_seq=%llu\n",
                 commits.size(), (int)stop, scan_segment_, scan_offset_,
                 (unsigned long long)anchor.seq);
    if (!commits.empty()) {
      std::fprintf(stderr, "[recover] first_seq=%llu last_seq=%llu\n",
                   (unsigned long long)commits.front().manifest.seq,
                   (unsigned long long)commits.back().manifest.seq);
    }
  }

  // --- Freshness: the last durable commit must match the counter ---------
  if (suite_.enabled()) {
    uint64_t last_counter = anchor.counter;
    for (const ScannedCommit& c : commits) {
      if (c.manifest.durable()) last_counter = c.manifest.counter;
    }
    // The hardware counter ahead of the log means the current log is stale
    // or truncated (the counter only advances after a successful sync).
    if (counter_value_ > last_counter) {
      AuditDetect("replay", common::kRegionLog, "log",
                  "stale or truncated database image (counter ahead of "
                  "log state)");
      return Status::ReplayDetected(
          "stale or truncated database image (counter behind log state)");
    }
    // It may lag by exactly one: crash after the log sync but before the
    // increment. Resynchronize; anything further is impossible for an
    // attacker without forging the MACed commit chain. (A failed group
    // flush re-seals the same counter target under the next seq, so
    // consecutive durable manifests may carry EQUAL counter values — the
    // hardware still never trails the last sealed value by two or more.)
    if (counter_value_ + 1 == last_counter) {
      TDB_ASSIGN_OR_RETURN(counter_value_, counter_->Increment());
    }
    if (counter_value_ != last_counter) {
      AuditDetect("counter_regression", common::kRegionCounter, "counter",
                  "one-way counter out of sync with log");
      return Status::TamperDetected("one-way counter out of sync with log");
    }
  }

  // --- Apply the durable prefix -------------------------------------------
  size_t last_durable = commits.size();
  while (last_durable > 0 && !commits[last_durable - 1].manifest.durable()) {
    last_durable--;
  }
  uint32_t tail_segment = scan_segment_;
  uint64_t tail_offset = scan_offset_;
  uint64_t replayed_chunks = 0;
  for (size_t i = 0; i < last_durable; i++) {
    const ScannedCommit& c = commits[i];
    replayed_chunks += c.manifest.writes.size();
    for (const ManifestWrite& w : c.manifest.writes) {
      MapEntry entry;
      entry.present = true;
      entry.flags = w.flags;
      entry.loc = w.loc;
      entry.hash = w.hash;
      TDB_RETURN_IF_ERROR(map_.Put(w.cid, entry, loader).status());
      AtomicMax(next_chunk_id_, w.cid + 1);
    }
    for (ChunkId cid : c.manifest.deallocs) {
      TDB_RETURN_IF_ERROR(map_.Remove(cid, loader).status());
    }
    AtomicMax(next_chunk_id_, c.manifest.next_chunk_id);
    seq_ = c.manifest.seq;
    chain_mac_ = c.mac;
    tail_segment = c.end_segment;
    tail_offset = c.end_offset;
    if (c.manifest.checkpoint() && c.manifest.has_root) {
      // A checkpoint whose anchor write was lost in the crash window.
      has_root_ = true;
      root_loc_ = c.manifest.root_loc;
      root_hash_ = c.manifest.root_hash;
      ckpt_mac_ = c.mac;
    }
  }
  if (last_durable == 0) chain_mac_ = ckpt_mac_;

  // --- Truncate away everything past the durable tail ---------------------
  TDB_RETURN_IF_ERROR(store_->Truncate(SegmentName(tail_segment), tail_offset));
  for (const std::string& name : store_->List()) {
    uint32_t id;
    if (ParseSegmentName(name, &id) && id > tail_segment) {
      TDB_RETURN_IF_ERROR(store_->Remove(name));
    }
  }

  cur_segment_ = tail_segment;
  cur_offset_ = tail_offset;
  next_segment_id_ = tail_segment + 1;

  TDB_RETURN_IF_ERROR(RebuildAccounting());

  // Normalize: a fresh checkpoint + anchor resets the crash windows, makes
  // discarded nondurable garbage unreachable, and re-syncs the counter.
  Status normalized = CheckpointLocked();
  m_.recovery_commits_replayed->Set(static_cast<int64_t>(last_durable));
  m_.recovery_chunks_replayed->Set(static_cast<int64_t>(replayed_chunks));
  m_.recovery_time_us->Set(
      static_cast<int64_t>(common::MonotonicMicros() - recover_start));
  return normalized;
}

Status ChunkStore::RebuildAccounting() {
  segments_.clear();
  m_.live_bytes->Set(0);
  m_.total_bytes->Set(0);
  m_.live_chunks->Set(0);
  for (const std::string& name : store_->List()) {
    uint32_t id;
    if (!ParseSegmentName(name, &id)) continue;
    TDB_ASSIGN_OR_RETURN(uint64_t size, store_->Size(name));
    segments_[id].total = size;
    m_.total_bytes->Add(static_cast<int64_t>(size));
  }
  if (!has_root_) {
    m_.segments->Set(static_cast<int64_t>(segments_.size()));
    return Status::OK();
  }
  NodeLoader loader = MakeLoader();
  TDB_RETURN_IF_ERROR(map_.ForEachNode(
      map_.root(), loader, [&](const MapNode& node) {
        if (node.has_persisted) {
          AccountLive(node.persisted_loc.segment, node.persisted_size,
                      /*is_map=*/true);
        }
        if (node.level == 0) {
          for (const MapEntry& entry : node.entries) {
            if (!entry.present) continue;
            AccountLive(entry.loc.segment,
                        kRecordHeaderSize + entry.loc.length);
            m_.live_chunks->Add(1);
          }
        }
      }));
  m_.segments->Set(static_cast<int64_t>(segments_.size()));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Log tail

std::string ChunkStore::SegmentName(uint32_t id) {
  return kSegmentPrefix + std::to_string(id);
}

Status ChunkStore::OpenFreshSegment() {
  TDB_RETURN_IF_ERROR(FlushTail());
  cur_segment_ = next_segment_id_++;
  const std::string name = SegmentName(cur_segment_);
  TDB_RETURN_IF_ERROR(store_->Create(name, /*overwrite=*/true));
  cur_offset_ = 0;
  tail_buf_ = EncodeSegmentHeader(cur_segment_);
  segments_[cur_segment_] = SegInfo{};
  m_.segments->Set(static_cast<int64_t>(segments_.size()));
  return Status::OK();
}

Result<Location> ChunkStore::Append(RecordType type, Slice payload) {
  const uint64_t record_size = kRecordHeaderSize + payload.size();
  const uint64_t used = cur_offset_ + tail_buf_.size();
  // Roll to a fresh segment when full — unless this segment is still empty,
  // in which case an oversized record is allowed to live alone in it.
  if (used + record_size > options_.segment_size &&
      used > kSegmentHeaderSize) {
    TDB_RETURN_IF_ERROR(OpenFreshSegment());
  }
  Location loc;
  loc.segment = cur_segment_;
  loc.offset = static_cast<uint32_t>(cur_offset_ + tail_buf_.size());
  loc.length = static_cast<uint32_t>(payload.size());
  AppendRecord(&tail_buf_, type, payload);
  switch (type) {
    case RecordType::kData:
      m_.data_bytes->Add(static_cast<int64_t>(record_size));
      break;
    case RecordType::kMapNode:
      m_.map_bytes->Add(static_cast<int64_t>(record_size));
      break;
    case RecordType::kCommit:
      m_.commit_bytes->Add(static_cast<int64_t>(record_size));
      break;
  }
  return loc;
}

Status ChunkStore::FlushTail() {
  if (tail_buf_.empty()) return Status::OK();
  const std::string name = SegmentName(cur_segment_);
  TDB_RETURN_IF_ERROR(store_->Write(name, cur_offset_, tail_buf_));
  segments_[cur_segment_].total += tail_buf_.size();
  m_.total_bytes->Add(static_cast<int64_t>(tail_buf_.size()));
  m_.bytes_appended->Add(static_cast<int64_t>(tail_buf_.size()));
  cur_offset_ += tail_buf_.size();
  residual_bytes_ += tail_buf_.size();
  dirty_files_.insert(name);
  tail_buf_.clear();
  return Status::OK();
}

Status ChunkStore::SyncDirtyFilesLocked() {
  common::TraceSpan span("chunk.sync");
  common::ScopedTimer timer(metrics_.get(), m_.sync_latency_us);
  for (const std::string& name : dirty_files_) {
    TDB_RETURN_IF_ERROR(store_->Sync(name));
  }
  dirty_files_.clear();
  m_.log_syncs->Increment();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Record reads

Result<Buffer> ChunkStore::FetchRawRecord(const Location& loc,
                                          RecordType expected) {
  const size_t record_size = kRecordHeaderSize + loc.length;
  Buffer bytes;
  if (loc.segment == cur_segment_ && loc.offset >= cur_offset_) {
    // The record sits in the unflushed tail buffer — a buffered group
    // commit read back before any flush. Records never straddle a flush
    // boundary (FlushTail writes the whole buffer), so the bytes are
    // either fully here or fully in the store.
    const uint64_t start = loc.offset - cur_offset_;
    if (start + record_size > tail_buf_.size()) {
      AuditDetect("record_mismatch", common::kRegionLog,
                  LocationString(loc), "tail record beyond buffer");
      return Status::TamperDetected("record does not match location map");
    }
    bytes = Slice(tail_buf_.data() + start, record_size).ToBuffer();
  } else {
    Status read = store_->Read(SegmentName(loc.segment), loc.offset,
                               record_size, &bytes);
    if (!read.ok()) {
      if (read.IsNotFound() || read.IsCorruption()) {
        AuditDetect("record_missing", common::kRegionLog,
                    LocationString(loc), read.ToString());
        return Status::TamperDetected("record missing: " + read.ToString());
      }
      return read;
    }
  }
  RecordView view;
  Status parsed = ParseRecord(bytes, &view);
  if (!parsed.ok()) {
    AuditDetect("record_damaged", common::kRegionLog, LocationString(loc),
                parsed.ToString());
    return Status::TamperDetected("record damaged: " + parsed.ToString());
  }
  if (view.type != expected || view.payload.size() != loc.length) {
    AuditDetect("record_mismatch", common::kRegionLog, LocationString(loc),
                "type or length disagrees with location map");
    return Status::TamperDetected("record does not match location map");
  }
  return view.payload.ToBuffer();
}

Result<Buffer> ChunkStore::ReadRawRecord(const Location& loc,
                                         RecordType expected,
                                         const crypto::Digest& expected_hash) {
  TDB_ASSIGN_OR_RETURN(Buffer payload, FetchRawRecord(loc, expected));
  if (suite_.enabled() && EntryHash(payload) != expected_hash) {
    AuditDetect("hash_mismatch",
                expected == RecordType::kMapNode ? common::kRegionMap
                                                 : common::kRegionPayload,
                LocationString(loc), "record hash does not match map entry");
    return Status::TamperDetected("chunk hash mismatch");
  }
  return payload;
}

Result<Buffer> ChunkStore::ValidateSealed(const MapEntry& entry,
                                          Buffer sealed) {
  {
    common::ScopedTimer timer(metrics_.get(), m_.read_verify_us);
    if (suite_.enabled() && EntryHash(sealed) != entry.hash) {
      AuditDetect("hash_mismatch", common::kRegionPayload,
                  LocationString(entry.loc),
                  "record hash does not match map entry");
      return Status::TamperDetected("chunk hash mismatch");
    }
  }
  Buffer plain;
  {
    common::ScopedTimer timer(metrics_.get(), m_.read_decrypt_us);
    auto opened = suite_.Open(sealed);
    if (!opened.ok()) {
      AuditDetect("decrypt_failure", common::kRegionPayload,
                  LocationString(entry.loc), opened.status().ToString());
      return Status::TamperDetected("chunk decryption failed: " +
                                    opened.status().ToString());
    }
    plain = std::move(opened).value();
  }
  if (entry.flags & kEntryCompressed) {
    common::ScopedTimer timer(metrics_.get(), m_.read_decompress_us);
    auto raw = LzDecompress(plain, kMaxDecompressedChunk);
    if (!raw.ok()) {
      // Decompression failure past an intact Merkle hash + decryption can
      // only mean the authenticated flags disagree with the payload (or a
      // store bug); surface it with the same severity as tampering.
      AuditDetect("decompress_failure", common::kRegionPayload,
                  LocationString(entry.loc), raw.status().ToString());
      return Status::TamperDetected("chunk decompression failed: " +
                                    raw.status().ToString());
    }
    return std::move(raw).value();
  }
  return plain;
}

Result<Buffer> ChunkStore::ReadDataAt(const MapEntry& entry) {
  TDB_ASSIGN_OR_RETURN(Buffer sealed,
                       FetchRawRecord(entry.loc, RecordType::kData));
  return ValidateSealed(entry, std::move(sealed));
}

NodeLoader ChunkStore::MakeLoader() {
  return [this](uint32_t level, uint64_t index, const Location& loc,
                const crypto::Digest& hash)
             -> Result<std::shared_ptr<MapNode>> {
    TDB_ASSIGN_OR_RETURN(Buffer sealed,
                         ReadRawRecord(loc, RecordType::kMapNode, hash));
    auto plain = suite_.Open(sealed);
    if (!plain.ok()) {
      AuditDetect("decrypt_failure", common::kRegionMap, LocationString(loc),
                  "map node decryption failed");
      return Status::TamperDetected("map node decryption failed");
    }
    TDB_ASSIGN_OR_RETURN(
        std::shared_ptr<MapNode> node,
        LocationMap::DecodeNode(*plain, map_.fanout(), entry_hash_size()));
    if (node->level != level || node->index != index) {
      AuditDetect("map_node_mismatch", common::kRegionMap,
                  LocationString(loc), "map node identity mismatch");
      return Status::TamperDetected("map node identity mismatch");
    }
    node->has_persisted = true;
    node->persisted_loc = loc;
    node->persisted_hash = hash;
    node->persisted_size =
        static_cast<uint32_t>(kRecordHeaderSize + loc.length);
    return node;
  };
}

Result<std::shared_ptr<MapNode>> ChunkStore::LoadRoot(
    const Location& loc, const crypto::Digest& hash) {
  TDB_ASSIGN_OR_RETURN(Buffer sealed,
                       ReadRawRecord(loc, RecordType::kMapNode, hash));
  auto plain = suite_.Open(sealed);
  if (!plain.ok()) {
    AuditDetect("decrypt_failure", common::kRegionMap, LocationString(loc),
                "map root decryption failed");
    return Status::TamperDetected("map root decryption failed");
  }
  TDB_ASSIGN_OR_RETURN(
      std::shared_ptr<MapNode> node,
      LocationMap::DecodeNode(*plain, map_.fanout(), entry_hash_size()));
  if (node->index != 0) {
    AuditDetect("map_node_mismatch", common::kRegionMap, LocationString(loc),
                "map root identity mismatch");
    return Status::TamperDetected("map root identity mismatch");
  }
  node->has_persisted = true;
  node->persisted_loc = loc;
  node->persisted_hash = hash;
  node->persisted_size = static_cast<uint32_t>(kRecordHeaderSize + loc.length);
  return node;
}

// ---------------------------------------------------------------------------
// Public operations

Result<Buffer> ChunkStore::Read(ChunkId cid) {
  if (!open_.load()) return Status::InvalidArgument("chunk store not open");
  common::TraceSpan span("chunk.read");
  common::ScopedTimer timer(metrics_.get(), m_.read_latency_us);
  // Cache entries hold already-validated plaintext of the chunk's last
  // committed state, so a hit skips the map walk, untrusted-store I/O,
  // hash check, and decryption entirely — AND takes only the cache's own
  // lock, never the commit mutex, so hot reads proceed while a commit
  // (or group sync) is in flight.
  Buffer hit;
  if (cache_.Get(cid, &hit)) {
    m_.cache_hits->Increment();
    return hit;
  }
  std::lock_guard<std::mutex> lock(mu_);
  NodeLoader loader = MakeLoader();
  TDB_ASSIGN_OR_RETURN(std::optional<MapEntry> entry, map_.Get(cid, loader));
  if (!entry.has_value()) {
    return Status::NotFound("chunk " + std::to_string(cid));
  }
  TDB_ASSIGN_OR_RETURN(Buffer plain, ReadDataAt(*entry));
  if (cache_.enabled()) {
    m_.cache_misses->Increment();
    cache_.Put(cid, plain, commit_version_);
  }
  return plain;
}

Status ChunkStore::Write(ChunkId cid, Slice data, bool durable) {
  WriteBatch batch;
  batch.Write(cid, data);
  return Commit(batch, durable);
}

Status ChunkStore::Deallocate(ChunkId cid, bool durable) {
  WriteBatch batch;
  batch.Deallocate(cid);
  return Commit(batch, durable);
}

Status ChunkStore::Commit(const WriteBatch& batch, bool durable) {
  common::ScopedTimer timer(metrics_.get(), m_.commit_latency_us);
  TDB_ASSIGN_OR_RETURN(CommitHandle handle, CommitBuffered(batch, durable));
  return WaitDurable(handle);
}

// ---------------------------------------------------------------------------
// Commit machinery

Status ChunkStore::PrepareBatch(const WriteBatch& batch, PreparedBatch* out) {
  // Normalize: the last operation on a chunk id wins.
  std::unordered_map<ChunkId, const WriteBatch::Op*> last;
  std::vector<ChunkId> order;
  for (const WriteBatch::Op& op : batch.ops_) {
    if (op.cid == kInvalidChunkId) {
      return Status::InvalidArgument("invalid chunk id 0");
    }
    auto [it, inserted] = last.insert({op.cid, &op});
    if (inserted) {
      order.push_back(op.cid);
    } else {
      it->second = &op;
    }
  }
  std::vector<const WriteBatch::Op*> write_ops;
  for (ChunkId cid : order) {
    const WriteBatch::Op* op = last[cid];
    if (op->is_write) {
      write_ops.push_back(op);
      m_.sealed_bytes->Add(static_cast<int64_t>(op->data.size()));
    } else {
      out->deallocs.push_back(cid);
    }
  }
  out->touched = std::move(order);

  // Seal + hash the staged writes — on the committer's own thread, outside
  // the commit mutex, so concurrent committers overlap their crypto. Each
  // write is independent; with a pool available and enough writes the
  // CPU-bound work additionally fans out across the workers. IVs are drawn
  // serially (the cipher suite's DRBG is the only serialized step), which
  // keeps single-threaded sealing bit-identical to the serial path.
  out->writes.resize(write_ops.size());
  out->plains.resize(write_ops.size());
  for (size_t i = 0; i < write_ops.size(); i++) {
    out->plains[i] = &write_ops[i]->data;
  }
  common::TraceSpan span("chunk.seal");
  common::ScopedTimer timer(metrics_.get(), m_.seal_latency_us);
  // Compress-before-encrypt: returns the plaintext to seal for write `i` —
  // the LZ-compressed form when that is actually smaller (recording the
  // choice in the staged flags), the raw bytes otherwise. `scratch` owns
  // the compressed bytes for the Slice's lifetime. Runs on the sealing
  // thread (including pool workers): the codec is pure CPU on local state.
  auto plain_for = [&](size_t i, Buffer* scratch) -> Slice {
    const Buffer& data = write_ops[i]->data;
    if (!options_.compression) return data;
    m_.compress_attempts->Increment();
    *scratch = LzCompress(data);
    if (scratch->size() >= data.size()) return data;
    out->writes[i].flags = kEntryCompressed;
    m_.compressed_chunks->Increment();
    m_.compress_bytes_in->Add(static_cast<int64_t>(data.size()));
    m_.compress_bytes_out->Add(static_cast<int64_t>(scratch->size()));
    return *scratch;
  };
  ThreadPool* pool = CryptoPool();
  if (pool != nullptr && suite_.enabled() &&
      write_ops.size() >= kParallelSealMinWrites) {
    std::vector<Buffer> ivs(write_ops.size());
    for (size_t i = 0; i < write_ops.size(); i++) ivs[i] = NextIvSerial();
    pool->ParallelFor(write_ops.size(), [&](size_t i) {
      out->writes[i].cid = write_ops[i]->cid;
      Buffer scratch;
      out->writes[i].sealed = suite_.SealWithIv(plain_for(i, &scratch), ivs[i]);
      out->writes[i].hash = EntryHash(out->writes[i].sealed);
    });
    for (const WriteBatch::Op* op : write_ops) {
      m_.parallel_sealed_bytes->Add(static_cast<int64_t>(op->data.size()));
    }
  } else {
    for (size_t i = 0; i < write_ops.size(); i++) {
      out->writes[i].cid = write_ops[i]->cid;
      Buffer scratch;
      out->writes[i].sealed = SealSerialIv(plain_for(i, &scratch));
      out->writes[i].hash = EntryHash(out->writes[i].sealed);
    }
  }
  return Status::OK();
}

Status ChunkStore::BufferBatchLocked(const PreparedBatch& prep) {
  // Applied-op journal for rollback: a failed batch must leave the open
  // group exactly as it found it so groupmates are not poisoned.
  struct AppliedOp {
    bool was_write;
    ChunkId cid;
    std::optional<MapEntry> old_entry;
  };
  const size_t ops_start = group_ops_.size();
  std::vector<AppliedOp> applied;
  applied.reserve(prep.writes.size() + prep.deallocs.size());
  NodeLoader loader = MakeLoader();
  Status failed = Status::OK();

  for (const StagedWrite& w : prep.writes) {
    auto loc = Append(RecordType::kData, w.sealed);
    if (!loc.ok()) {
      failed = loc.status();
      break;
    }
    MapEntry entry;
    entry.present = true;
    entry.flags = w.flags;
    entry.loc = *loc;
    entry.hash = w.hash;
    auto old = map_.Put(w.cid, entry, loader);
    if (!old.ok()) {
      failed = old.status();
      break;
    }
    group_ops_.push_back(PendingOp{true, w.cid, *loc, w.hash, w.flags});
    applied.push_back(AppliedOp{true, w.cid, *old});
    AtomicMax(next_chunk_id_, w.cid + 1);
    AccountLive(loc->segment, kRecordHeaderSize + loc->length);
    if (old->has_value()) {
      AccountLive((*old)->loc.segment,
                  -static_cast<int64_t>(kRecordHeaderSize +
                                        (*old)->loc.length));
    } else {
      m_.live_chunks->Add(1);
    }
  }
  if (failed.ok()) {
    for (ChunkId cid : prep.deallocs) {
      auto old = map_.Remove(cid, loader);
      if (!old.ok()) {
        failed = old.status();
        break;
      }
      group_ops_.push_back(
          PendingOp{false, cid, Location(), crypto::Digest(), 0});
      applied.push_back(AppliedOp{false, cid, *old});
      if (old->has_value()) {
        AccountLive((*old)->loc.segment,
                    -static_cast<int64_t>(kRecordHeaderSize +
                                          (*old)->loc.length));
        m_.live_chunks->Add(-1);
      }
    }
  }
  if (failed.ok()) {
    // The applied state changed: bump the commit version so versioned
    // cache entries and newly pinned views order against this batch.
    commit_version_++;
    return Status::OK();
  }

  // Roll back this batch's partial application (reverse order). The data
  // records it appended stay in the log as dead bytes — they are never
  // referenced by a manifest. Rollback map I/O errors are best-effort: the
  // original failure is what the caller must handle either way.
  for (size_t i = applied.size(); i-- > 0;) {
    const AppliedOp& a = applied[i];
    const PendingOp& p = group_ops_[ops_start + i];
    if (a.was_write) {
      AccountLive(p.loc.segment,
                  -static_cast<int64_t>(kRecordHeaderSize + p.loc.length));
      if (a.old_entry.has_value()) {
        map_.Put(a.cid, *a.old_entry, loader).status().ok();
        AccountLive(a.old_entry->loc.segment,
                    kRecordHeaderSize + a.old_entry->loc.length);
      } else {
        map_.Remove(a.cid, loader).status().ok();
        m_.live_chunks->Add(-1);
      }
    } else if (a.old_entry.has_value()) {
      map_.Put(a.cid, *a.old_entry, loader).status().ok();
      AccountLive(a.old_entry->loc.segment,
                  kRecordHeaderSize + a.old_entry->loc.length);
      m_.live_chunks->Add(1);
    }
  }
  group_ops_.resize(ops_start);
  return failed;
}

Result<ChunkStore::SealResult> ChunkStore::SealGroupLocked(
    uint8_t flags, const NodeWriteResult* new_root) {
  const bool durable = flags & kCommitDurable;
  CommitManifest manifest;
  manifest.seq = seq_ + 1;
  manifest.flags = flags;
  // A durable commit seals the counter value it is ABOUT to establish; the
  // hardware counter is bumped only after the log write + sync succeed, so
  // failed commit attempts never advance it. Recovery compares the last
  // durable commit's sealed value with the hardware counter to detect
  // replayed or truncated logs (§3).
  const bool bump_counter = durable && suite_.enabled();
  manifest.counter = counter_value_ + (bump_counter ? 1 : 0);
  manifest.prev_mac = chain_mac_;

  // Merge the buffered group into ONE manifest: the last operation on a
  // chunk id wins across ALL buffered batches, so a write followed by a
  // groupmate's deallocate (or overwrite) cannot resurrect at recovery.
  {
    std::unordered_map<ChunkId, size_t> last;
    std::vector<ChunkId> order;
    for (size_t i = 0; i < group_ops_.size(); i++) {
      auto [it, inserted] = last.insert({group_ops_[i].cid, i});
      if (inserted) {
        order.push_back(group_ops_[i].cid);
      } else {
        it->second = i;
      }
    }
    for (ChunkId cid : order) {
      const PendingOp& op = group_ops_[last[cid]];
      if (op.is_write) {
        manifest.writes.push_back(
            ManifestWrite{op.cid, op.loc, op.hash, op.flags});
      } else {
        manifest.deallocs.push_back(op.cid);
      }
    }
  }
  manifest.next_chunk_id = next_chunk_id_.load();
  if (new_root != nullptr) {
    manifest.has_root = true;
    manifest.root_loc = new_root->loc;
    manifest.root_hash = new_root->hash;
  }

  Buffer encoded =
      EncodeManifest(manifest, suite_.hash_size(), entry_hash_size());
  Buffer sealed_manifest = SealSerialIv(encoded);
  crypto::Digest mac = suite_.Mac(sealed_manifest);
  Buffer commit_payload = sealed_manifest;
  PutDigest(&commit_payload, mac);
  TDB_RETURN_IF_ERROR(Append(RecordType::kCommit, commit_payload).status());
  TDB_RETURN_IF_ERROR(FlushTail());

  seq_ = manifest.seq;
  chain_mac_ = mac;
  m_.commits->Increment();
  group_ops_.clear();

  SealResult res;
  res.counter_target = manifest.counter;
  res.bump_counter = bump_counter;
  res.mac = mac;
  return res;
}

Status ChunkStore::FinishDurableLocked(const SealResult& seal) {
  TDB_RETURN_IF_ERROR(SyncDirtyFilesLocked());
  if (seal.bump_counter) {
    common::TraceSpan span("chunk.counter_bump");
    common::ScopedTimer timer(metrics_.get(), m_.counter_bump_latency_us);
    TDB_ASSIGN_OR_RETURN(uint64_t cv, counter_->Increment());
    m_.counter_bumps->Increment();
    TDB_CHECK(cv >= seal.counter_target,
              "one-way counter regressed during commit");
    counter_value_ = seal.counter_target;
  }
  return Status::OK();
}

void ChunkStore::CompleteTicketsLocked(
    std::vector<std::shared_ptr<internal::CommitTicket>>* tickets,
    const Status& status) {
  for (auto& ticket : *tickets) {
    ticket->result = status;
    ticket->done = true;
  }
  tickets->clear();
  group_cv_.notify_all();
}

void ChunkStore::AwaitGroupIdleLocked(std::unique_lock<std::mutex>& lock) {
  while (group_flushing_) group_cv_.wait(lock);
}

Status ChunkStore::CommitGroupDurableLocked(uint8_t flags,
                                            const NodeWriteResult* new_root) {
  std::vector<std::shared_ptr<internal::CommitTicket>> tickets =
      std::move(group_tickets_);
  group_tickets_.clear();

  Status result = Status::OK();
  auto seal = SealGroupLocked(flags, new_root);
  if (!seal.ok()) {
    result = seal.status();
  } else {
    result = FinishDurableLocked(*seal);
    if (result.ok() && new_root != nullptr) {
      has_root_ = true;
      root_loc_ = new_root->loc;
      root_hash_ = new_root->hash;
      ckpt_mac_ = seal->mac;
      scan_segment_ = cur_segment_;
      scan_offset_ = static_cast<uint32_t>(cur_offset_);
      residual_bytes_ = 0;
      // The anchor is rewritten only at checkpoints; between checkpoints
      // the commit records themselves carry the authenticated counter, so
      // a durable commit costs exactly one sequential log write (+ sync).
      result = WriteAnchor();
    }
    if (result.ok()) {
      // One ack for this (internal or serialized) commit plus one for
      // every absorbed group committer.
      m_.durable_commits->Add(static_cast<int64_t>(1 + tickets.size()));
      if (!tickets.empty()) {
        m_.commit_groups->Increment();
        m_.grouped_commits->Add(static_cast<int64_t>(tickets.size()));
        m_.max_commits_per_group->SetMax(static_cast<int64_t>(tickets.size()));
      }
      result = FreePendingSegments();
    }
  }
  CompleteTicketsLocked(&tickets, result);
  return result;
}

Status ChunkStore::LeadGroupFlushLocked(std::unique_lock<std::mutex>& lock) {
  // Leader election happened in WaitDurable: group_flushing_ was false and
  // we hold mu_. Claim leadership first, then optionally sit in the
  // accumulation window so concurrent committers can buffer into this
  // group before it seals; tickets are only moved out afterwards, so a
  // commit that lands during the window rides this flush.
  group_flushing_ = true;
  if (options_.group_commit_window_us > 0) {
    const uint32_t target = options_.group_commit_target_commits;
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(options_.group_commit_window_us);
    // CommitBuffered notifies group_cv_ on each enqueue while a leader is
    // waiting, so the early-seal target is checked promptly; otherwise the
    // wait simply expires at the deadline.
    while (!(target > 0 && group_tickets_.size() >= target) &&
           std::chrono::steady_clock::now() < deadline) {
      group_cv_.wait_until(lock, deadline);
    }
  }
  std::vector<std::shared_ptr<internal::CommitTicket>> tickets =
      std::move(group_tickets_);
  group_tickets_.clear();

  auto seal = SealGroupLocked(kCommitDurable, nullptr);
  if (!seal.ok()) {
    group_flushing_ = false;
    CompleteTicketsLocked(&tickets, seal.status());
    return seal.status();
  }
  // Snapshot the dirty-file set under the lock, then run the expensive
  // Sync + counter bump OUTSIDE it: followers keep sealing and buffering
  // (and cache-miss readers keep reading) while the flush I/O is in
  // flight. Only one flush runs at a time (group_flushing_), and locked
  // durable paths await idleness, so the counter bump cannot interleave.
  std::set<std::string> to_sync = std::move(dirty_files_);
  dirty_files_.clear();
  lock.unlock();

  Status result = Status::OK();
  {
    common::TraceSpan flush_span("chunk.group_flush");
    common::ScopedTimer flush_timer(metrics_.get(),
                                    m_.group_flush_latency_us);
    {
      common::TraceSpan sync_span("chunk.sync");
      common::ScopedTimer sync_timer(metrics_.get(), m_.sync_latency_us);
      for (const std::string& name : to_sync) {
        Status s = store_->Sync(name);
        if (!s.ok()) {
          result = s;
          break;
        }
      }
    }
    if (result.ok()) m_.log_syncs->Increment();
    if (result.ok() && seal->bump_counter) {
      common::TraceSpan bump_span("chunk.counter_bump");
      common::ScopedTimer bump_timer(metrics_.get(),
                                     m_.counter_bump_latency_us);
      auto cv = counter_->Increment();
      if (cv.ok()) {
        m_.counter_bumps->Increment();
        TDB_CHECK(*cv >= seal->counter_target,
                  "one-way counter regressed during commit");
      } else {
        result = cv.status();
      }
    }
  }

  lock.lock();
  if (!result.ok()) {
    // Failed flush: files stay dirty for the next attempt, the counter
    // target is re-sealed by the next group (counter_value_ unchanged),
    // and the WHOLE group fails — durability is never acked without a
    // covering sync + bump.
    dirty_files_.insert(to_sync.begin(), to_sync.end());
  } else {
    if (seal->bump_counter) counter_value_ = seal->counter_target;
    const uint64_t n = tickets.size();
    m_.durable_commits->Add(static_cast<int64_t>(n));
    m_.grouped_commits->Add(static_cast<int64_t>(n));
    m_.commit_groups->Increment();
    m_.max_commits_per_group->SetMax(static_cast<int64_t>(n));
    result = FreePendingSegments();
  }
  group_flushing_ = false;
  CompleteTicketsLocked(&tickets, result);
  return result;
}

Result<CommitHandle> ChunkStore::CommitBuffered(const WriteBatch& batch,
                                                bool durable) {
  if (!open_.load()) return Status::InvalidArgument("chunk store not open");
  PreparedBatch prep;
  TDB_RETURN_IF_ERROR(PrepareBatch(batch, &prep));

  CommitHandle handle;
  handle.ticket_ = std::make_shared<internal::CommitTicket>();

  std::unique_lock<std::mutex> lock(mu_);
  Status buffered = BufferBatchLocked(prep);
  if (!buffered.ok()) {
    // The failed batch was rolled back, but drop its ids from the cache
    // anyway so no stale plaintext can outlive a partial rollback.
    for (ChunkId cid : prep.touched) {
      cache_.Erase(cid, EvictCause::kFailedCommit);
    }
    return buffered;
  }
  // Write-through: the batch's plaintext is the chunks' new committed
  // state, already in trusted memory — cache it without revalidation.
  if (cache_.enabled()) {
    for (size_t i = 0; i < prep.writes.size(); i++) {
      cache_.Put(prep.writes[i].cid, *prep.plains[i], commit_version_);
    }
    for (ChunkId cid : prep.deallocs) {
      cache_.Erase(cid, EvictCause::kDealloc);
    }
  }

  if (options_.group_commit) {
    if (durable) {
      // Join the open group; WaitDurable elects the leader that flushes it.
      group_tickets_.push_back(handle.ticket_);
      // A leader may be sitting in its accumulation window — wake it so
      // the early-seal target is re-checked with this ticket counted.
      if (group_flushing_) group_cv_.notify_all();
    } else {
      // Applied and buffered; durability rides on the next group flush.
      // (A crash before that flush discards it — exactly the paper's
      // nondurable-commit contract, §3.1.)
      handle.ticket_->done = true;
    }
    return handle;
  }

  // Serialized mode (group_commit off): seal this batch's own manifest
  // immediately — byte-identical log output to the pre-group-commit store.
  Status result;
  if (durable) {
    AwaitGroupIdleLocked(lock);  // No-op in this mode; defensive.
    result = CommitGroupDurableLocked(kCommitDurable, nullptr);
  } else {
    result = SealGroupLocked(durable ? kCommitDurable : 0, nullptr).status();
  }
  if (!result.ok()) {
    for (ChunkId cid : prep.touched) {
      cache_.Erase(cid, EvictCause::kFailedCommit);
    }
    return result;
  }
  handle.ticket_->done = true;
  return handle;
}

Status ChunkStore::WaitDurable(CommitHandle& handle) {
  if (!handle.valid()) {
    return Status::InvalidArgument("invalid commit handle");
  }
  std::shared_ptr<internal::CommitTicket> ticket = handle.ticket_;
  Status result;
  {
    std::unique_lock<std::mutex> lock(mu_);
    while (!ticket->done) {
      if (!group_flushing_) {
        // First pending waiter becomes the leader and flushes the whole
        // group (its own ticket included).
        LeadGroupFlushLocked(lock);
      } else {
        group_cv_.wait(lock);
      }
    }
    result = ticket->result;
  }
  if (!result.ok()) return result;
  // Deferred maintenance (auto-checkpoint, cleaning) runs after the ack,
  // outside any caller-held locks — e.g. the object store has already
  // released its transaction locks by now.
  return RunMaintenance();
}

Status ChunkStore::RunMaintenance() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!open_.load() || in_maintenance_) return Status::OK();
  // Bail before serializing against the group when nothing is owed: a
  // committer that just got acked may be the very one the next leader's
  // accumulation window is waiting for, and queueing it behind the window
  // here would starve group formation.
  if (!MaintenanceDueLocked()) return Status::OK();
  AwaitGroupIdleLocked(lock);
  TDB_RETURN_IF_ERROR(MaybeCheckpointLocked());
  return MaybeCleanLocked();
}

bool ChunkStore::MaintenanceDueLocked() {
  if (residual_bytes_ >= options_.checkpoint_interval_bytes) return true;
  if (ActiveSnapshots() > 0 || options_.max_clean_segments_per_commit <= 0) {
    return false;
  }
  // Same utilization trigger as MaybeCleanLocked (which re-checks after
  // the group goes idle; this is only an early out).
  const uint64_t target = std::max<uint64_t>(
      static_cast<uint64_t>(m_.live_bytes->value() /
                            options_.max_utilization),
      2 * static_cast<uint64_t>(options_.segment_size));
  return static_cast<uint64_t>(m_.total_bytes->value()) >
         target + options_.segment_size;
}

Status ChunkStore::WriteAnchor() {
  AnchorState state;
  state.counter = counter_value_;
  state.seq = seq_;
  state.next_chunk_id = next_chunk_id_.load();
  state.has_root = has_root_;
  state.root_loc = root_loc_;
  state.root_hash = root_hash_;
  state.ckpt_mac = ckpt_mac_;
  state.scan_segment = scan_segment_;
  state.scan_offset = scan_offset_;
  return anchor_mgr_.Write(state);
}

Status ChunkStore::Checkpoint() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!open_.load()) return Status::InvalidArgument("chunk store not open");
  AwaitGroupIdleLocked(lock);
  return CheckpointLocked();
}

Status ChunkStore::CheckpointLocked() {
  NodeWriter writer = [this](Slice bytes) -> Result<NodeWriteResult> {
    Buffer sealed = SealSerialIv(bytes);
    TDB_ASSIGN_OR_RETURN(Location loc, Append(RecordType::kMapNode, sealed));
    NodeWriteResult res;
    res.loc = loc;
    res.hash = EntryHash(sealed);
    res.record_size = static_cast<uint32_t>(kRecordHeaderSize + loc.length);
    AccountLive(loc.segment, res.record_size, /*is_map=*/true);
    return res;
  };
  auto obsolete = [this](const Location& loc, uint32_t size) {
    AccountLive(loc.segment, -static_cast<int64_t>(size), /*is_map=*/true);
  };
  TDB_ASSIGN_OR_RETURN(NodeWriteResult root,
                       map_.WriteDirty(writer, obsolete));
  // The checkpoint's manifest absorbs any buffered group commits (their
  // ops merge into it) and completes their pending durability tickets.
  TDB_RETURN_IF_ERROR(
      CommitGroupDurableLocked(kCommitDurable | kCommitCheckpoint, &root));
  m_.checkpoints->Increment();
  return Status::OK();
}

Status ChunkStore::MaybeCheckpointLocked() {
  if (residual_bytes_ < options_.checkpoint_interval_bytes) {
    return Status::OK();
  }
  return CheckpointLocked();
}

ChunkStoreStats ChunkStore::Stats() const {
  // Compatibility accessor over the metrics registry: the same counters
  // the registry snapshot exposes by name, in the struct shape the tests
  // and benchmarks predate the registry with.
  auto u = [](int64_t v) { return static_cast<uint64_t>(v); };
  ChunkStoreStats s;
  s.live_bytes = u(m_.live_bytes->value());
  s.total_bytes = u(m_.total_bytes->value());
  s.segments = u(m_.segments->value());
  s.live_chunks = u(m_.live_chunks->value());
  s.commits = u(m_.commits->value());
  s.durable_commits = u(m_.durable_commits->value());
  s.checkpoints = u(m_.checkpoints->value());
  s.cleaned_segments = u(m_.cleaned_segments->value());
  s.relocated_records = u(m_.relocated_records->value());
  s.relocated_bytes = u(m_.relocated_bytes->value());
  s.bytes_appended = u(m_.bytes_appended->value());
  s.data_bytes = u(m_.data_bytes->value());
  s.map_bytes = u(m_.map_bytes->value());
  s.commit_bytes = u(m_.commit_bytes->value());
  s.cache_hits = u(m_.cache_hits->value());
  s.cache_misses = u(m_.cache_misses->value());
  const CacheEvictionCounts evictions = cache_.eviction_counts();
  s.cache_evictions = evictions.total();
  s.cache_evictions_capacity = evictions.capacity;
  s.cache_evictions_dealloc = evictions.dealloc;
  s.cache_evictions_failed_commit = evictions.failed_commit;
  s.cache_evictions_relocation = evictions.relocation;
  s.cache_bytes_used = cache_.size_bytes();
  s.sealed_bytes = u(m_.sealed_bytes->value());
  s.parallel_sealed_bytes = u(m_.parallel_sealed_bytes->value());
  s.commit_groups = u(m_.commit_groups->value());
  s.grouped_commits = u(m_.grouped_commits->value());
  s.max_commits_per_group = u(m_.max_commits_per_group->value());
  s.log_syncs = u(m_.log_syncs->value());
  s.counter_bumps = u(m_.counter_bumps->value());
  s.compress_attempts = u(m_.compress_attempts->value());
  s.compressed_chunks = u(m_.compressed_chunks->value());
  s.compress_bytes_in = u(m_.compress_bytes_in->value());
  s.compress_bytes_out = u(m_.compress_bytes_out->value());
  s.views_pinned = u(m_.views_pinned->value());
  return s;
}

void ChunkStore::DumpSegmentCensus() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n_resid = 0, resid_total = 0, resid_live = 0;
  uint64_t n_map = 0, map_total = 0, map_live = 0;
  uint64_t n_dense = 0, dense_total = 0, dense_live = 0;
  uint64_t n_clean = 0, clean_total = 0, clean_live = 0;
  for (const auto& [id, info] : segments_) {
    if (id >= scan_segment_) {
      n_resid++; resid_total += info.total; resid_live += info.live;
    } else if (info.live_map > 0) {
      n_map++; map_total += info.total; map_live += info.live;
    } else if (static_cast<double>(info.live) >
               options_.max_utilization * info.total) {
      n_dense++; dense_total += info.total; dense_live += info.live;
    } else {
      n_clean++; clean_total += info.total; clean_live += info.live;
    }
  }
  std::fprintf(stderr,
               "[census] residual: %llu segs %llu/%llu live | maplive: %llu "
               "segs %llu/%llu | dense: %llu segs %llu/%llu | cleanable: "
               "%llu segs %llu/%llu\n",
               (unsigned long long)n_resid, (unsigned long long)resid_live,
               (unsigned long long)resid_total, (unsigned long long)n_map,
               (unsigned long long)map_live, (unsigned long long)map_total,
               (unsigned long long)n_dense, (unsigned long long)dense_live,
               (unsigned long long)dense_total, (unsigned long long)n_clean,
               (unsigned long long)clean_live,
               (unsigned long long)clean_total);
}

Status ChunkStore::Close() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!open_.load()) return Status::OK();
  AwaitGroupIdleLocked(lock);
  Status s = CheckpointLocked();
  open_.store(false);
  return s;
}

// ---------------------------------------------------------------------------
// Cleaning

void ChunkStore::AccountLive(uint32_t segment, int64_t delta, bool is_map) {
  SegInfo& info = segments_[segment];
  info.live = static_cast<uint64_t>(static_cast<int64_t>(info.live) + delta);
  if (is_map) {
    info.live_map =
        static_cast<uint64_t>(static_cast<int64_t>(info.live_map) + delta);
  }
  // Two's-complement wraparound makes fetch_add with a negative delta
  // correct for unsigned atomics.
  m_.live_bytes->Add(delta);
}

size_t ChunkStore::ActiveSnapshots() {
  snapshots_.erase(std::remove_if(snapshots_.begin(), snapshots_.end(),
                                  [](const std::weak_ptr<Snapshot>& w) {
                                    return w.expired();
                                  }),
                   snapshots_.end());
  return snapshots_.size();
}

std::vector<uint32_t> ChunkStore::CleanCandidates(uint64_t target,
                                                  int max_segments) {
  std::set<uint32_t> pending(pending_free_.begin(), pending_free_.end());
  std::vector<std::pair<uint64_t, uint32_t>> candidates;
  for (const auto& [id, info] : segments_) {
    // Segments holding live map nodes wait for a checkpoint to relocate
    // them; cleaning sticks to data-only segments so it never forces a
    // full map flush (bounded per-commit cost, §3.2.1). Segments at or
    // past the residual-log scan position hold the commit chain recovery
    // replays, so they become cleanable only after the next checkpoint.
    if (id == cur_segment_ || pending.count(id) || info.live_map > 0 ||
        id >= scan_segment_) {
      continue;
    }
    // Cleaning economy: relocating a victim costs its live bytes and only
    // frees its dead bytes. Victims denser than the utilization target
    // have no yield — they wait until more of their records die. Without
    // this, tight targets degenerate into copying the whole database per
    // commit (the paper's Fig. 11 knee is this copy cost growing).
    if (static_cast<double>(info.live) >
        options_.max_utilization * info.total) {
      continue;
    }
    candidates.push_back({info.live, id});
  }
  std::sort(candidates.begin(), candidates.end());
  std::vector<uint32_t> victims;
  uint64_t projected = static_cast<uint64_t>(m_.total_bytes->value());
  for (const auto& [live, id] : candidates) {
    if (static_cast<int>(victims.size()) >= max_segments) break;
    if (target != 0 && projected <= target) break;
    victims.push_back(id);
    projected -= segments_[id].total;
  }
  return victims;
}

Status ChunkStore::UnlockGarbageWithCheckpoint() {
  // Dead bytes parked in the residual region (or under live map nodes)
  // become cleanable only after a checkpoint advances the scan position
  // and relocates dirty map nodes. Checkpointing itself produces garbage
  // (it obsoletes the previous map records), so it is rate-limited: only
  // when it unlocks at least a segment of garbage AND enough residual log
  // has accumulated since the last checkpoint to be worth paying for.
  // Without the second condition, tight utilization targets degenerate
  // into checkpoint storms.
  uint64_t locked_dead = 0;
  for (const auto& [id, info] : segments_) {
    if (id == cur_segment_) continue;
    if (id >= scan_segment_ || info.live_map > 0) {
      locked_dead += info.total - info.live;
    }
  }
  if (locked_dead < options_.segment_size) return Status::OK();
  // Tighter utilization targets need garbage unlocked (and hence
  // checkpoints) more often — compactness is paid for with checkpoint
  // traffic, which is the paper's utilization/performance tradeoff.
  double slack = 1.0 - options_.max_utilization;
  uint64_t floor_bytes = std::max<uint64_t>(
      options_.segment_size,
      static_cast<uint64_t>(10.0 * options_.segment_size * slack));
  if (residual_bytes_ < floor_bytes) return Status::OK();

  // Segments pinned by a few surviving (clean) map nodes accumulate dead
  // bytes indefinitely; mark those nodes dirty so this checkpoint
  // relocates them and the segments become cleanable.
  std::set<uint32_t> stale_map_segments;
  for (const auto& [id, info] : segments_) {
    if (id >= scan_segment_ || info.live_map == 0) continue;
    if (static_cast<double>(info.live) <=
        options_.max_utilization * info.total) {
      stale_map_segments.insert(id);
      if (stale_map_segments.size() >= 8) break;
    }
  }
  if (!stale_map_segments.empty()) {
    TDB_RETURN_IF_ERROR(DirtyMapNodesIn(stale_map_segments).status());
  }
  return CheckpointLocked();
}

Result<bool> ChunkStore::DirtyMapNodesIn(const std::set<uint32_t>& victims) {
  NodeLoader loader = MakeLoader();
  // Full tree walk: a child whose own record is outside every victim can
  // still have descendants inside one.
  std::function<Result<bool>(const std::shared_ptr<MapNode>&)> mark =
      [&](const std::shared_ptr<MapNode>& node) -> Result<bool> {
    bool any = node->has_persisted &&
               victims.count(node->persisted_loc.segment) > 0;
    if (node->level > 0) {
      for (uint32_t i = 0; i < map_.fanout(); i++) {
        if (!node->entries[i].present) continue;
        std::shared_ptr<MapNode> child = node->children[i];
        if (child == nullptr) {
          TDB_ASSIGN_OR_RETURN(
              child, loader(node->level - 1, node->index * map_.fanout() + i,
                            node->entries[i].loc, node->entries[i].hash));
          node->children[i] = child;
        }
        TDB_ASSIGN_OR_RETURN(bool child_any, mark(child));
        any = any || child_any;
      }
    }
    if (any) node->dirty = true;
    return any;
  };
  return mark(map_.root());
}

Status ChunkStore::MaybeCleanLocked() {
  if (in_maintenance_ || ActiveSnapshots() > 0 ||
      options_.max_clean_segments_per_commit <= 0) {
    return Status::OK();
  }
  const uint64_t target = std::max<uint64_t>(
      static_cast<uint64_t>(m_.live_bytes->value() /
                            options_.max_utilization),
      2 * static_cast<uint64_t>(options_.segment_size));
  if (static_cast<uint64_t>(m_.total_bytes->value()) <=
      target + options_.segment_size) {
    return Status::OK();
  }
  std::vector<uint32_t> victims =
      CleanCandidates(target, options_.max_clean_segments_per_commit);
  if (victims.empty()) {
    in_maintenance_ = true;
    Status unlocked = UnlockGarbageWithCheckpoint();
    in_maintenance_ = false;
    TDB_RETURN_IF_ERROR(unlocked);
    victims = CleanCandidates(target, options_.max_clean_segments_per_commit);
  }
  if (victims.empty()) return Status::OK();
  return CleanSegments(victims);
}

Status ChunkStore::Clean(int max_segments) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!open_.load()) return Status::InvalidArgument("chunk store not open");
  if (in_maintenance_ || ActiveSnapshots() > 0 || max_segments <= 0) {
    return Status::OK();
  }
  AwaitGroupIdleLocked(lock);
  std::vector<uint32_t> victims = CleanCandidates(0, max_segments);
  if (victims.empty()) {
    in_maintenance_ = true;
    Status unlocked = UnlockGarbageWithCheckpoint();
    in_maintenance_ = false;
    TDB_RETURN_IF_ERROR(unlocked);
    victims = CleanCandidates(0, max_segments);
  }
  if (victims.empty()) return Status::OK();
  return CleanSegments(victims);
}

Status ChunkStore::CleanSegments(const std::vector<uint32_t>& victims) {
  in_maintenance_ = true;
  std::set<uint32_t> victim_set(victims.begin(), victims.end());
  NodeLoader loader = MakeLoader();

  // Relocate live data records out of the victims (sealed bytes move
  // verbatim; hashes are unchanged, so cached plaintext stays valid).
  std::vector<std::pair<ChunkId, MapEntry>> to_move;
  Status walk = map_.ForEach(
      map_.root(), loader,
      [&](ChunkId cid, const MapEntry& entry) -> Status {
        if (victim_set.count(entry.loc.segment)) {
          to_move.push_back({cid, entry});
        }
        return Status::OK();
      });
  if (!walk.ok()) {
    in_maintenance_ = false;
    return walk;
  }
  Status status = Status::OK();
  PreparedBatch relocations;
  for (const auto& [cid, entry] : to_move) {
    auto raw = ReadRawRecord(entry.loc, RecordType::kData, entry.hash);
    if (!raw.ok()) {
      status = raw.status();
      break;
    }
    StagedWrite staged;
    staged.cid = cid;
    staged.sealed = std::move(raw).value();
    staged.hash = entry.hash;
    staged.flags = entry.flags;  // Sealed bytes move verbatim.
    relocations.writes.push_back(std::move(staged));
    m_.relocated_records->Increment();
    m_.relocated_bytes->Add(static_cast<int64_t>(entry.loc.length));
  }
  if (status.ok() && !relocations.writes.empty()) {
    // Buffer the relocations into the open group: victim segments are all
    // behind the scan position, so a chunk rewritten by a buffered commit
    // can never also be a relocation candidate (its entry already points
    // at the tail region).
    status = BufferBatchLocked(relocations);
  }
  if (status.ok()) {
    // The relocation commit is durable so the victims become reclaimable
    // right away (the §3.2.2 rule) without forcing a map checkpoint —
    // victims never contain live map nodes. It merges with (and acks) any
    // buffered group commits.
    status = CommitGroupDurableLocked(kCommitClean | kCommitDurable, nullptr);
  }
  if (status.ok()) {
    for (uint32_t id : victims) pending_free_.push_back(id);
    status = FreePendingSegments();
    m_.cleaned_segments->Add(static_cast<int64_t>(victims.size()));
  }
  in_maintenance_ = false;
  return status;
}

Status ChunkStore::FreePendingSegments() {
  std::vector<uint32_t> keep;
  for (uint32_t id : pending_free_) {
    auto it = segments_.find(id);
    if (it == segments_.end()) continue;
    if (it->second.live != 0 || id == cur_segment_ ||
        id >= scan_segment_) {
      keep.push_back(id);  // Still referenced; try again later.
      continue;
    }
    TDB_RETURN_IF_ERROR(store_->Remove(SegmentName(id)));
    m_.total_bytes->Add(-static_cast<int64_t>(it->second.total));
    segments_.erase(it);
  }
  pending_free_ = std::move(keep);
  m_.segments->Set(static_cast<int64_t>(segments_.size()));
  return Status::OK();
}

Status ChunkStore::VerifyIntegrity(uint64_t* chunks_checked) {
  if (!open_.load()) return Status::InvalidArgument("chunk store not open");
  std::lock_guard<std::mutex> lock(mu_);
  common::TraceSpan span("chunk.verify");
  common::ScopedTimer timer(metrics_.get(), m_.verify_latency_us);
  uint64_t checked = 0;
  NodeLoader loader = MakeLoader();
  ThreadPool* pool = CryptoPool();
  if (pool == nullptr) {
    Status walk = map_.ForEach(
        map_.root(), loader,
        [&](ChunkId cid, const MapEntry& entry) -> Status {
          Status read = ReadDataAt(entry).status();
          if (!read.ok()) {
            return Status::TamperDetected("chunk " + std::to_string(cid) +
                                          ": " + read.ToString());
          }
          checked++;
          return Status::OK();
        });
    m_.verified_chunks->Add(static_cast<int64_t>(checked));
    if (chunks_checked != nullptr) *chunks_checked = checked;
    return walk;
  }

  // Parallel scrub: collect the live entries first (map-node loading stays
  // serial), then validate in bounded batches — the untrusted-store reads
  // run serially on this thread, the hash checks and decryption fan out.
  // Failures are reported for the lowest chunk position, matching the
  // serial path's "first failure" regardless of scheduling.
  std::vector<std::pair<ChunkId, MapEntry>> entries;
  TDB_RETURN_IF_ERROR(map_.ForEach(
      map_.root(), loader,
      [&](ChunkId cid, const MapEntry& entry) -> Status {
        entries.push_back({cid, entry});
        return Status::OK();
      }));
  for (size_t start = 0; start < entries.size();
       start += kVerifyBatchChunks) {
    const size_t n = std::min(kVerifyBatchChunks, entries.size() - start);
    std::vector<Buffer> sealed(n);
    std::vector<Status> results(n, Status::OK());
    for (size_t j = 0; j < n; j++) {
      auto raw = FetchRawRecord(entries[start + j].second.loc,
                                RecordType::kData);
      if (raw.ok()) {
        sealed[j] = std::move(raw).value();
      } else {
        results[j] = raw.status();
      }
    }
    pool->ParallelFor(n, [&](size_t j) {
      if (!results[j].ok()) return;
      // ValidateSealed audits with the same keys (kind + location) as the
      // serial path, so a chunk flagged by both collapses to one entry.
      results[j] =
          ValidateSealed(entries[start + j].second, std::move(sealed[j]))
              .status();
    });
    for (size_t j = 0; j < n; j++) {
      if (!results[j].ok()) {
        m_.verified_chunks->Add(static_cast<int64_t>(checked));
        if (chunks_checked != nullptr) *chunks_checked = checked;
        return Status::TamperDetected(
            "chunk " + std::to_string(entries[start + j].first) + ": " +
            results[j].ToString());
      }
      checked++;
    }
  }
  m_.verified_chunks->Add(static_cast<int64_t>(checked));
  if (chunks_checked != nullptr) *chunks_checked = checked;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Snapshots

Result<std::shared_ptr<Snapshot>> ChunkStore::CreateSnapshot() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!open_.load()) return Status::InvalidArgument("chunk store not open");
  AwaitGroupIdleLocked(lock);
  // Checkpoint first so the snapshot tree is fully persisted (cheap
  // incremental diffs need the hashes) and the root is anchored. This
  // also absorbs and acks any buffered group commits.
  TDB_RETURN_IF_ERROR(CheckpointLocked());
  auto snap = std::make_shared<Snapshot>();
  snap->root_ = map_.root();
  snap->seq_ = seq_;
  snap->version_ = commit_version_;
  snapshots_.push_back(snap);
  return snap;
}

Result<std::shared_ptr<Snapshot>> ChunkStore::PinView() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_.load()) return Status::InvalidArgument("chunk store not open");
  // No checkpoint, no group-idle wait: the COW root already reflects every
  // applied (including buffered) commit, and later commits clone nodes
  // along their write paths, leaving this root's subtree intact. Shared
  // ownership keeps unpersisted in-memory nodes alive for the view's
  // lifetime; registration pauses the cleaner so persisted records stay
  // readable.
  auto snap = std::make_shared<Snapshot>();
  snap->root_ = map_.root();
  snap->seq_ = seq_;
  snap->version_ = commit_version_;
  snapshots_.push_back(snap);
  m_.views_pinned->Increment();
  return snap;
}

Result<Buffer> ChunkStore::ReadAtView(const Snapshot& view, ChunkId cid) {
  TDB_ASSIGN_OR_RETURN(std::shared_ptr<const Buffer> data,
                       ReadAtViewShared(view, cid));
  return Buffer(*data);
}

Result<std::shared_ptr<const Buffer>> ChunkStore::ReadAtViewShared(
    const Snapshot& view, ChunkId cid) {
  if (!open_.load()) return Status::InvalidArgument("chunk store not open");
  common::TraceSpan span("chunk.read_view");
  common::ScopedTimer timer(metrics_.get(), m_.read_latency_us);
  // A cache entry always holds a chunk's LAST committed state, stamped
  // with the commit version current at insertion. One stamped at or before
  // the view's version is therefore exactly the state the view observes —
  // served under the cache's own lock only, with shared ownership instead
  // of a copy (payloads are immutable once cached).
  if (std::shared_ptr<const Buffer> hit =
          cache_.GetSharedIfVersionAtMost(cid, view.version_)) {
    m_.cache_hits->Increment();
    return hit;
  }
  MapEntry entry;
  Buffer sealed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    NodeLoader loader = MakeLoader();
    TDB_ASSIGN_OR_RETURN(std::optional<MapEntry> found,
                         map_.GetAt(view.root_, cid, loader));
    if (!found.has_value()) {
      return Status::NotFound("chunk " + std::to_string(cid));
    }
    entry = *found;
    TDB_ASSIGN_OR_RETURN(sealed,
                         FetchRawRecord(entry.loc, RecordType::kData));
  }
  if (cache_.enabled()) m_.cache_misses->Increment();
  // Hash check, decryption, and decompression run OUTSIDE the commit
  // mutex: concurrent view readers serialize only on the record fetch.
  // The result is not cached — the view's state may predate the chunk's
  // current committed state, which is what the cache must keep holding.
  TDB_ASSIGN_OR_RETURN(Buffer plain, ValidateSealed(entry, std::move(sealed)));
  return std::make_shared<const Buffer>(std::move(plain));
}

Result<std::vector<Buffer>> ChunkStore::ReadManyAtView(
    const Snapshot& view, const std::vector<ChunkId>& cids) {
  if (!open_.load()) return Status::InvalidArgument("chunk store not open");
  common::TraceSpan span("chunk.read_view_many");
  std::vector<Buffer> out(cids.size());
  std::vector<size_t> misses;
  misses.reserve(cids.size());
  for (size_t i = 0; i < cids.size(); i++) {
    if (cache_.GetIfVersionAtMost(cids[i], view.version_, &out[i])) {
      m_.cache_hits->Increment();
    } else {
      misses.push_back(i);
    }
  }
  if (misses.empty()) return out;

  // One commit-mutex acquisition fetches every missing raw record...
  std::vector<MapEntry> entries(misses.size());
  std::vector<Buffer> sealed(misses.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    NodeLoader loader = MakeLoader();
    for (size_t j = 0; j < misses.size(); j++) {
      const ChunkId cid = cids[misses[j]];
      TDB_ASSIGN_OR_RETURN(std::optional<MapEntry> found,
                           map_.GetAt(view.root_, cid, loader));
      if (!found.has_value()) {
        return Status::NotFound("chunk " + std::to_string(cid));
      }
      entries[j] = *found;
      TDB_ASSIGN_OR_RETURN(sealed[j],
                           FetchRawRecord(entries[j].loc, RecordType::kData));
    }
  }
  if (cache_.enabled()) {
    m_.cache_misses->Add(static_cast<int64_t>(misses.size()));
  }
  // ...then validation (hash + decrypt + decompress) fans out across the
  // crypto pool, outside the mutex. First failure wins, lowest index
  // first, matching the serial order.
  std::vector<Status> results(misses.size(), Status::OK());
  ThreadPool* pool = CryptoPool();
  auto validate = [&](size_t j) {
    auto plain = ValidateSealed(entries[j], std::move(sealed[j]));
    if (plain.ok()) {
      out[misses[j]] = std::move(plain).value();
    } else {
      results[j] = plain.status();
    }
  };
  if (pool != nullptr && misses.size() > 1) {
    pool->ParallelFor(misses.size(), [&](size_t j) { validate(j); });
  } else {
    for (size_t j = 0; j < misses.size(); j++) validate(j);
  }
  for (const Status& s : results) {
    if (!s.ok()) return s;
  }
  return out;
}

Result<Buffer> ChunkStore::ReadAtSnapshot(const Snapshot& snap, ChunkId cid) {
  if (!open_.load()) return Status::InvalidArgument("chunk store not open");
  std::lock_guard<std::mutex> lock(mu_);
  NodeLoader loader = MakeLoader();
  TDB_ASSIGN_OR_RETURN(std::optional<MapEntry> entry,
                       map_.GetAt(snap.root_, cid, loader));
  if (!entry.has_value()) {
    return Status::NotFound("chunk " + std::to_string(cid));
  }
  return ReadDataAt(*entry);
}

Status ChunkStore::ForEachChunkAt(
    const Snapshot& snap,
    const std::function<Status(ChunkId, const MapEntry&)>& fn) {
  if (!open_.load()) return Status::InvalidArgument("chunk store not open");
  std::lock_guard<std::mutex> lock(mu_);
  return map_.ForEach(snap.root_, MakeLoader(), fn);
}

Status ChunkStore::DiffSnapshots(
    const Snapshot& base, const Snapshot& delta,
    const std::function<Status(ChunkId, DiffKind, const MapEntry&)>& fn) {
  if (!open_.load()) return Status::InvalidArgument("chunk store not open");
  std::lock_guard<std::mutex> lock(mu_);
  return map_.Diff(base.root_, delta.root_, MakeLoader(), fn);
}

}  // namespace tdb::chunk
