#ifndef TDB_CHUNK_TYPES_H_
#define TDB_CHUNK_TYPES_H_

#include <cstdint>

#include "crypto/cipher_suite.h"

namespace tdb::chunk {

/// Name of a chunk. Ids are allocated monotonically and never reused
/// (a deviation from the paper, which reuses ids; monotonic ids make replay
/// reasoning simpler and cost 8 bytes each).
using ChunkId = uint64_t;

constexpr ChunkId kInvalidChunkId = 0;  // Valid ids start at 1.

/// Physical position of a log record: which segment file, the byte offset
/// of the record header within it, and the payload length.
struct Location {
  uint32_t segment = 0;
  uint32_t offset = 0;
  uint32_t length = 0;  // Payload bytes (record header not included).

  friend bool operator==(const Location& a, const Location& b) {
    return a.segment == b.segment && a.offset == b.offset &&
           a.length == b.length;
  }
};

/// Log record types.
enum class RecordType : uint8_t {
  kData = 1,     // Sealed chunk contents.
  kMapNode = 2,  // Sealed location-map node (written at checkpoints).
  kCommit = 3,   // Sealed commit manifest + MAC; ends a commit.
};

/// Commit flags carried in the manifest.
enum CommitFlags : uint8_t {
  kCommitDurable = 1 << 0,
  kCommitCheckpoint = 1 << 1,
  kCommitClean = 1 << 2,  // Produced by the log cleaner (relocations only).
};

/// Per-chunk entry flags, carried (authenticated) in both the map-node
/// encoding and commit manifests. Describes how the sealed record payload
/// was produced from the chunk plaintext.
enum EntryFlags : uint8_t {
  kEntryCompressed = 1 << 0,  // Payload is LzCompress(plaintext).
};

}  // namespace tdb::chunk

#endif  // TDB_CHUNK_TYPES_H_
