#include "chunk/anchor.h"

namespace tdb::chunk {

namespace {

constexpr uint32_t kAnchorMagic = 0x54424148;  // "TBAH"
const char* SlotName(int slot) { return slot == 0 ? "anchor-0" : "anchor-1"; }

}  // namespace

Buffer AnchorManager::Encode(const AnchorState& state,
                             const crypto::CipherSuite& suite,
                             size_t entry_hash_size) {
  (void)entry_hash_size;
  Buffer payload;
  PutFixed32(&payload, kAnchorMagic);
  PutVarint64(&payload, state.counter);
  PutVarint64(&payload, state.seq);
  PutVarint64(&payload, state.next_chunk_id);
  payload.push_back(state.has_root ? 1 : 0);
  if (state.has_root) {
    PutLocation(&payload, state.root_loc);
    PutDigest(&payload, state.root_hash);
  }
  PutDigest(&payload, state.ckpt_mac);
  PutVarint32(&payload, state.scan_segment);
  PutVarint32(&payload, state.scan_offset);

  crypto::Digest mac = suite.Mac(payload);
  Buffer out;
  PutFixed32(&out, static_cast<uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  PutFixed32(&out, Checksum32(payload));
  PutDigest(&out, mac);
  return out;
}

Result<AnchorState> AnchorManager::Decode(Slice data,
                                          const crypto::CipherSuite& suite,
                                          size_t entry_hash_size) {
  Decoder outer(data);
  uint32_t payload_len;
  TDB_RETURN_IF_ERROR(outer.GetFixed32(&payload_len));
  Slice payload;
  TDB_RETURN_IF_ERROR(outer.GetBytes(payload_len, &payload));
  uint32_t cksum;
  TDB_RETURN_IF_ERROR(outer.GetFixed32(&cksum));
  if (Checksum32(payload) != cksum) {
    return Status::Corruption("anchor checksum mismatch");
  }
  crypto::Digest mac;
  TDB_RETURN_IF_ERROR(GetDigest(&outer, suite.hash_size(), &mac));
  if (suite.enabled() && mac != suite.Mac(payload)) {
    return Status::TamperDetected("anchor MAC invalid");
  }

  AnchorState state;
  Decoder dec(payload);
  uint32_t magic;
  TDB_RETURN_IF_ERROR(dec.GetFixed32(&magic));
  if (magic != kAnchorMagic) return Status::Corruption("bad anchor magic");
  TDB_RETURN_IF_ERROR(dec.GetVarint64(&state.counter));
  TDB_RETURN_IF_ERROR(dec.GetVarint64(&state.seq));
  TDB_RETURN_IF_ERROR(dec.GetVarint64(&state.next_chunk_id));
  Slice has_root;
  TDB_RETURN_IF_ERROR(dec.GetBytes(1, &has_root));
  state.has_root = has_root[0] != 0;
  if (state.has_root) {
    TDB_RETURN_IF_ERROR(GetLocation(&dec, &state.root_loc));
    TDB_RETURN_IF_ERROR(GetDigest(&dec, entry_hash_size, &state.root_hash));
  }
  TDB_RETURN_IF_ERROR(GetDigest(&dec, suite.hash_size(), &state.ckpt_mac));
  TDB_RETURN_IF_ERROR(dec.GetVarint32(&state.scan_segment));
  TDB_RETURN_IF_ERROR(dec.GetVarint32(&state.scan_offset));
  return state;
}

Result<AnchorState> AnchorManager::Load() const {
  bool any_slot = false;
  bool any_valid = false;
  Status first_error = Status::OK();
  AnchorState best;
  int best_slot = -1;
  for (int slot = 0; slot < 2; slot++) {
    const std::string name = SlotName(slot);
    if (!store_->Exists(name)) continue;
    any_slot = true;
    auto size = store_->Size(name);
    if (!size.ok()) continue;
    Buffer bytes;
    Status read = store_->Read(name, 0, static_cast<size_t>(*size), &bytes);
    if (!read.ok()) continue;
    auto decoded = Decode(bytes, *suite_, entry_hash_size_);
    if (!decoded.ok()) {
      if (first_error.ok()) first_error = decoded.status();
      continue;
    }
    if (!any_valid || decoded->counter > best.counter ||
        (decoded->counter == best.counter && decoded->seq > best.seq)) {
      best = *decoded;
      best_slot = slot;
      any_valid = true;
    }
  }
  if (!any_slot) return Status::NotFound("no anchor (fresh store)");
  if (!any_valid) {
    return first_error.ok()
               ? Status::TamperDetected("no valid anchor slot")
               : first_error;
  }
  // Alternate away from the newest slot so it is never the one torn.
  const_cast<AnchorManager*>(this)->next_slot_ = 1 - best_slot;
  return best;
}

Status AnchorManager::Write(const AnchorState& state) {
  const std::string name = SlotName(next_slot_);
  next_slot_ = 1 - next_slot_;
  Buffer bytes = Encode(state, *suite_, entry_hash_size_);
  if (!store_->Exists(name)) {
    TDB_RETURN_IF_ERROR(store_->Create(name, /*overwrite=*/false));
  }
  // Shrink first so a stale longer anchor can never leave valid trailing
  // bytes, then write and sync.
  TDB_RETURN_IF_ERROR(store_->Truncate(name, 0));
  TDB_RETURN_IF_ERROR(store_->Write(name, 0, bytes));
  return store_->Sync(name);
}

}  // namespace tdb::chunk
