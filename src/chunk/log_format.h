#ifndef TDB_CHUNK_LOG_FORMAT_H_
#define TDB_CHUNK_LOG_FORMAT_H_

#include <string>
#include <vector>

#include "common/coding.h"
#include "common/result.h"
#include "chunk/types.h"
#include "crypto/hash.h"

namespace tdb::chunk {

/// On-disk layout
/// --------------
/// The log is a set of segment files "seg-<id>" in the untrusted store.
/// Each starts with a fixed header, followed by records appended in commit
/// order:
///
///   record := type(1) | payload_len(fixed32) | payload_cksum(fixed32)
///             | payload
///
/// The checksum is a non-cryptographic FNV-1a over the payload; it detects
/// torn writes at the tail. MALICIOUS modification is detected one level
/// up: data/map payloads are hashed into the location map (the Merkle
/// tree), and commit manifests carry an HMAC chained through the anchor.

constexpr uint32_t kSegmentMagic = 0x54424C47;  // "TDBL"(ish)
constexpr size_t kSegmentHeaderSize = 8;        // magic + segment id
constexpr size_t kRecordHeaderSize = 9;         // type + len + cksum

/// Serialized segment file header.
Buffer EncodeSegmentHeader(uint32_t segment_id);
Status DecodeSegmentHeader(Slice data, uint32_t* segment_id);

/// Appends a record (header + payload) to *dst and reports the payload
/// length for Location bookkeeping.
void AppendRecord(Buffer* dst, RecordType type, Slice payload);

/// Parsed record view (payload aliases the input buffer).
struct RecordView {
  RecordType type;
  Slice payload;
  size_t record_size;  // Header + payload bytes consumed.
};

/// Parses the record starting at the head of `input`. Corruption if the
/// header is malformed, the payload is truncated, or the checksum fails.
Status ParseRecord(Slice input, RecordView* out);

/// One chunk write inside a commit manifest.
struct ManifestWrite {
  ChunkId cid;
  Location loc;
  crypto::Digest hash;  // Hash of the sealed payload; empty if security off.
  uint8_t flags = 0;    // EntryFlags; authenticated by the manifest MAC.
};

/// The commit manifest: the metadata a commit appends after its data
/// records. MACed and hash-chained (prev_mac) so recovery can authenticate
/// the residual log against the anchor.
struct CommitManifest {
  uint64_t seq = 0;
  uint8_t flags = 0;
  uint64_t next_chunk_id = 1;
  /// One-way counter value as of this commit (durable commits bump it
  /// first). Recovery compares the last durable commit's value with the
  /// hardware counter to detect replayed/truncated logs (§3).
  uint64_t counter = 0;
  crypto::Digest prev_mac;
  std::vector<ManifestWrite> writes;
  std::vector<ChunkId> deallocs;
  // Checkpoint commits carry the location-map root.
  bool has_root = false;
  Location root_loc;
  crypto::Digest root_hash;

  bool durable() const { return flags & kCommitDurable; }
  bool checkpoint() const { return flags & kCommitCheckpoint; }
};

/// `mac_size` frames prev_mac (the full keyed-MAC width); `entry_hash_size`
/// frames per-write and root hashes (possibly truncated, see
/// ChunkStoreOptions::map_hash_bytes).
Buffer EncodeManifest(const CommitManifest& manifest, size_t mac_size,
                      size_t entry_hash_size);
Status DecodeManifest(Slice data, size_t mac_size, size_t entry_hash_size,
                      CommitManifest* out);

/// Helpers shared by the map and manifest codecs.
void PutLocation(Buffer* dst, const Location& loc);
Status GetLocation(Decoder* dec, Location* loc);
void PutDigest(Buffer* dst, const crypto::Digest& digest);
Status GetDigest(Decoder* dec, size_t hash_size, crypto::Digest* digest);

}  // namespace tdb::chunk

#endif  // TDB_CHUNK_LOG_FORMAT_H_
