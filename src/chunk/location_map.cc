#include "chunk/location_map.h"

#include "common/check.h"

namespace tdb::chunk {

namespace {

// Entries compare equal when they provably name identical content: by hash
// when the secure suite is on, by location otherwise (a relocated-but-
// unchanged chunk then looks "changed", which only makes incremental
// backups conservatively larger).
bool EntryEqual(const MapEntry& a, const MapEntry& b) {
  if (a.hash.size() > 0 || b.hash.size() > 0) return a.hash == b.hash;
  return a.loc == b.loc;
}

std::shared_ptr<MapNode> NewNode(uint32_t level, uint64_t index,
                                 uint32_t fanout) {
  auto node = std::make_shared<MapNode>();
  node->level = level;
  node->index = index;
  node->entries.resize(fanout);
  if (level > 0) node->children.resize(fanout);
  return node;
}

}  // namespace

LocationMap::LocationMap(uint32_t fanout) : fanout_(fanout) {
  TDB_CHECK(fanout >= 2, "map fanout must be at least 2");
  root_ = NewNode(0, 0, fanout_);
}

void LocationMap::ResetToRoot(std::shared_ptr<MapNode> root) {
  TDB_CHECK(root != nullptr);
  root_ = std::move(root);
}

uint64_t LocationMap::Span(uint32_t level) const {
  uint64_t span = fanout_;
  for (uint32_t l = 0; l < level; l++) span *= fanout_;
  return span;
}

void LocationMap::GrowTo(ChunkId cid) {
  while (cid >= Span(root_->level)) {
    auto new_root = NewNode(root_->level + 1, 0, fanout_);
    new_root->children[0] = root_;
    new_root->entries[0].present = true;
    if (root_->has_persisted) {
      new_root->entries[0].loc = root_->persisted_loc;
      new_root->entries[0].hash = root_->persisted_hash;
    }
    new_root->dirty = true;
    root_ = std::move(new_root);
  }
}

std::shared_ptr<MapNode> LocationMap::EnsureWritable(
    std::shared_ptr<MapNode>& slot) {
  if (slot.use_count() == 1) return slot;
  // Shared with a snapshot: clone (entries and child pointers are copied,
  // grandchildren stay shared until they are themselves written).
  auto clone = std::make_shared<MapNode>(*slot);
  slot = clone;
  return clone;
}

Result<std::shared_ptr<MapNode>> LocationMap::Child(
    const std::shared_ptr<MapNode>& node, uint32_t slot, bool create,
    const NodeLoader& loader) const {
  TDB_DCHECK(node->level > 0);
  if (node->children[slot] != nullptr) return node->children[slot];
  const MapEntry& entry = node->entries[slot];
  uint64_t child_index = node->index * fanout_ + slot;
  if (entry.present) {
    // Persisted but not loaded.
    TDB_ASSIGN_OR_RETURN(
        std::shared_ptr<MapNode> child,
        loader(node->level - 1, child_index, entry.loc, entry.hash));
    node->children[slot] = child;
    return child;
  }
  if (!create) return std::shared_ptr<MapNode>(nullptr);
  auto child = NewNode(node->level - 1, child_index, fanout_);
  child->dirty = true;
  node->children[slot] = child;
  node->entries[slot].present = true;
  return child;
}

Result<std::optional<MapEntry>> LocationMap::Get(ChunkId cid,
                                                 const NodeLoader& loader) {
  return GetAt(root_, cid, loader);
}

Result<std::optional<MapEntry>> LocationMap::GetAt(
    const std::shared_ptr<MapNode>& root, ChunkId cid,
    const NodeLoader& loader) const {
  if (cid >= Span(root->level)) return std::optional<MapEntry>();
  std::shared_ptr<MapNode> node = root;
  while (node->level > 0) {
    uint64_t child_span = Span(node->level - 1);
    uint32_t slot = static_cast<uint32_t>((cid / child_span) % fanout_);
    if (!node->entries[slot].present) return std::optional<MapEntry>();
    TDB_ASSIGN_OR_RETURN(std::shared_ptr<MapNode> child,
                         Child(node, slot, /*create=*/false, loader));
    node = child;
  }
  const MapEntry& entry = node->entries[cid % fanout_];
  if (!entry.present) return std::optional<MapEntry>();
  return std::optional<MapEntry>(entry);
}

Result<std::optional<MapEntry>> LocationMap::Put(ChunkId cid,
                                                 const MapEntry& entry,
                                                 const NodeLoader& loader) {
  GrowTo(cid);
  std::shared_ptr<MapNode>* slot_ptr = &root_;
  while (true) {
    std::shared_ptr<MapNode> node = EnsureWritable(*slot_ptr);
    node->dirty = true;
    if (node->level == 0) {
      MapEntry& leaf = node->entries[cid % fanout_];
      std::optional<MapEntry> old;
      if (leaf.present) old = leaf;
      leaf = entry;
      leaf.present = true;
      return old;
    }
    uint64_t child_span = Span(node->level - 1);
    uint32_t slot = static_cast<uint32_t>((cid / child_span) % fanout_);
    TDB_ASSIGN_OR_RETURN(std::shared_ptr<MapNode> child,
                         Child(node, slot, /*create=*/true, loader));
    (void)child;  // Re-borrow through the slot for COW.
    slot_ptr = &node->children[slot];
  }
}

Result<std::optional<MapEntry>> LocationMap::Remove(ChunkId cid,
                                                    const NodeLoader& loader) {
  // Probe first so a miss does not dirty the path.
  TDB_ASSIGN_OR_RETURN(std::optional<MapEntry> existing, Get(cid, loader));
  if (!existing.has_value()) return std::optional<MapEntry>();

  std::shared_ptr<MapNode>* slot_ptr = &root_;
  while (true) {
    std::shared_ptr<MapNode> node = EnsureWritable(*slot_ptr);
    node->dirty = true;
    if (node->level == 0) {
      MapEntry& leaf = node->entries[cid % fanout_];
      leaf = MapEntry();
      return existing;
    }
    uint64_t child_span = Span(node->level - 1);
    uint32_t slot = static_cast<uint32_t>((cid / child_span) % fanout_);
    TDB_ASSIGN_OR_RETURN(std::shared_ptr<MapNode> child,
                         Child(node, slot, /*create=*/false, loader));
    TDB_CHECK(child != nullptr, "map path vanished during Remove");
    slot_ptr = &node->children[slot];
  }
}

Result<NodeWriteResult> LocationMap::WriteDirty(
    const NodeWriter& writer,
    const std::function<void(const Location&, uint32_t)>& obsolete) {
  return WriteDirtyRec(root_, writer, obsolete);
}

Result<NodeWriteResult> LocationMap::WriteDirtyRec(
    const std::shared_ptr<MapNode>& node, const NodeWriter& writer,
    const std::function<void(const Location&, uint32_t)>& obsolete) {
  if (!node->dirty && node->has_persisted) {
    return NodeWriteResult{node->persisted_loc, node->persisted_hash,
                           node->persisted_size};
  }
  if (node->level > 0) {
    for (uint32_t i = 0; i < fanout_; i++) {
      const std::shared_ptr<MapNode>& child = node->children[i];
      if (child == nullptr) continue;  // Unloaded children are clean.
      if (!child->dirty && child->has_persisted) continue;
      TDB_ASSIGN_OR_RETURN(NodeWriteResult res,
                           WriteDirtyRec(child, writer, obsolete));
      node->entries[i].present = true;
      node->entries[i].loc = res.loc;
      node->entries[i].hash = res.hash;
    }
  }
  Buffer bytes = EncodeNode(*node);
  TDB_ASSIGN_OR_RETURN(NodeWriteResult res, writer(bytes));
  if (node->has_persisted) obsolete(node->persisted_loc, node->persisted_size);
  node->has_persisted = true;
  node->persisted_loc = res.loc;
  node->persisted_hash = res.hash;
  node->persisted_size = res.record_size;
  node->dirty = false;
  return res;
}

Status LocationMap::ForEach(
    const std::shared_ptr<MapNode>& root, const NodeLoader& loader,
    const std::function<Status(ChunkId, const MapEntry&)>& fn) const {
  if (root->level == 0) {
    for (uint32_t i = 0; i < fanout_; i++) {
      if (!root->entries[i].present) continue;
      TDB_RETURN_IF_ERROR(fn(root->index * fanout_ + i, root->entries[i]));
    }
    return Status::OK();
  }
  for (uint32_t i = 0; i < fanout_; i++) {
    if (!root->entries[i].present) continue;
    TDB_ASSIGN_OR_RETURN(std::shared_ptr<MapNode> child,
                         Child(root, i, /*create=*/false, loader));
    TDB_RETURN_IF_ERROR(ForEach(child, loader, fn));
  }
  return Status::OK();
}

Status LocationMap::ForEachNode(
    const std::shared_ptr<MapNode>& root, const NodeLoader& loader,
    const std::function<void(const MapNode&)>& fn) const {
  fn(*root);
  if (root->level == 0) return Status::OK();
  for (uint32_t i = 0; i < fanout_; i++) {
    if (!root->entries[i].present) continue;
    TDB_ASSIGN_OR_RETURN(std::shared_ptr<MapNode> child,
                         Child(root, i, /*create=*/false, loader));
    TDB_RETURN_IF_ERROR(ForEachNode(child, loader, fn));
  }
  return Status::OK();
}

namespace {

// Wraps `node` in synthetic parents until it sits at `level`, so two roots
// of different heights can be diffed slot-by-slot.
std::shared_ptr<MapNode> RaiseToLevel(std::shared_ptr<MapNode> node,
                                      uint32_t level, uint32_t fanout) {
  while (node->level < level) {
    auto wrapper = std::make_shared<MapNode>();
    wrapper->level = node->level + 1;
    wrapper->index = 0;
    wrapper->entries.resize(fanout);
    wrapper->children.resize(fanout);
    wrapper->entries[0].present = true;
    if (node->has_persisted) {
      wrapper->entries[0].loc = node->persisted_loc;
      wrapper->entries[0].hash = node->persisted_hash;
    }
    wrapper->children[0] = node;
    node = wrapper;
  }
  return node;
}

}  // namespace

Status LocationMap::Diff(
    const std::shared_ptr<MapNode>& base, const std::shared_ptr<MapNode>& delta,
    const NodeLoader& loader,
    const std::function<Status(ChunkId, DiffKind, const MapEntry&)>& fn)
    const {
  uint32_t level = std::max(base->level, delta->level);
  std::shared_ptr<MapNode> a = RaiseToLevel(base, level, fanout_);
  std::shared_ptr<MapNode> b = RaiseToLevel(delta, level, fanout_);

  // Recursive lambda over same-shaped node pairs (either may be null).
  std::function<Status(const std::shared_ptr<MapNode>&,
                       const std::shared_ptr<MapNode>&, uint32_t, uint64_t)>
      rec = [&](const std::shared_ptr<MapNode>& na,
                const std::shared_ptr<MapNode>& nb, uint32_t lvl,
                uint64_t index) -> Status {
    static const MapEntry kAbsent;
    for (uint32_t i = 0; i < fanout_; i++) {
      const MapEntry& ea = na ? na->entries[i] : kAbsent;
      const MapEntry& eb = nb ? nb->entries[i] : kAbsent;
      if (!ea.present && !eb.present) continue;
      if (lvl == 0) {
        ChunkId cid = index * fanout_ + i;
        if (!ea.present) {
          TDB_RETURN_IF_ERROR(fn(cid, DiffKind::kAdded, eb));
        } else if (!eb.present) {
          TDB_RETURN_IF_ERROR(fn(cid, DiffKind::kRemoved, ea));
        } else if (!EntryEqual(ea, eb)) {
          TDB_RETURN_IF_ERROR(fn(cid, DiffKind::kChanged, eb));
        }
        continue;
      }
      // Internal: identical persisted subtrees are skipped wholesale —
      // this is what makes incremental backups cheap (§3.2.1).
      if (ea.present && eb.present && EntryEqual(ea, eb)) continue;
      std::shared_ptr<MapNode> ca, cb;
      if (ea.present) {
        TDB_ASSIGN_OR_RETURN(ca, Child(na, i, /*create=*/false, loader));
      }
      if (eb.present) {
        TDB_ASSIGN_OR_RETURN(cb, Child(nb, i, /*create=*/false, loader));
      }
      TDB_RETURN_IF_ERROR(rec(ca, cb, lvl - 1, index * fanout_ + i));
    }
    return Status::OK();
  };
  return rec(a, b, level, 0);
}

Buffer LocationMap::EncodeNode(const MapNode& node) {
  Buffer out;
  PutVarint32(&out, node.level);
  PutVarint64(&out, node.index);
  for (const MapEntry& entry : node.entries) {
    // Presence byte doubles as the flag carrier: 0 = absent, else bit 0
    // set (present) with EntryFlags shifted into bits 1+. A plain present
    // entry still encodes as 1, so pre-flag images decode unchanged.
    out.push_back(entry.present
                      ? static_cast<uint8_t>(1 | (entry.flags << 1))
                      : 0);
    if (entry.present) {
      PutLocation(&out, entry.loc);
      PutDigest(&out, entry.hash);
    }
  }
  return out;
}

Result<std::shared_ptr<MapNode>> LocationMap::DecodeNode(Slice data,
                                                         uint32_t fanout,
                                                         size_t hash_size) {
  Decoder dec(data);
  auto node = std::make_shared<MapNode>();
  TDB_RETURN_IF_ERROR(dec.GetVarint32(&node->level));
  TDB_RETURN_IF_ERROR(dec.GetVarint64(&node->index));
  node->entries.resize(fanout);
  if (node->level > 0) node->children.resize(fanout);
  for (uint32_t i = 0; i < fanout; i++) {
    Slice present;
    TDB_RETURN_IF_ERROR(dec.GetBytes(1, &present));
    if (present[0] == 0) continue;
    if ((present[0] & 1) == 0 || (present[0] >> 1) > kEntryCompressed) {
      return Status::Corruption("bad map entry flags");
    }
    node->entries[i].present = true;
    node->entries[i].flags = static_cast<uint8_t>(present[0] >> 1);
    TDB_RETURN_IF_ERROR(GetLocation(&dec, &node->entries[i].loc));
    TDB_RETURN_IF_ERROR(GetDigest(&dec, hash_size, &node->entries[i].hash));
  }
  if (!dec.done()) return Status::Corruption("trailing map node bytes");
  return node;
}

}  // namespace tdb::chunk
