#include "chunk/chunk_cache.h"

namespace tdb::chunk {

const Buffer* ChunkCache::Get(ChunkId cid) {
  auto it = entries_.find(cid);
  if (it == entries_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return &it->second.data;
}

void ChunkCache::Put(ChunkId cid, Slice data) {
  if (!enabled()) return;
  // Replace-or-erase: a stale entry under this id must never survive, even
  // when the new payload itself is too large to cache.
  Erase(cid);
  Buffer payload = data.ToBuffer();
  const size_t charge = Charge(payload);
  if (charge > capacity_) return;
  EvictToFit(charge);
  lru_.push_front(cid);
  entries_[cid] = Entry{std::move(payload), lru_.begin()};
  size_ += charge;
}

void ChunkCache::Erase(ChunkId cid) {
  auto it = entries_.find(cid);
  if (it == entries_.end()) return;
  size_ -= Charge(it->second.data);
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
}

void ChunkCache::Clear() {
  entries_.clear();
  lru_.clear();
  size_ = 0;
}

void ChunkCache::EvictToFit(size_t incoming_charge) {
  while (size_ + incoming_charge > capacity_ && !lru_.empty()) {
    auto it = entries_.find(lru_.back());
    size_ -= Charge(it->second.data);
    entries_.erase(it);
    lru_.pop_back();
    evictions_++;
  }
}

}  // namespace tdb::chunk
