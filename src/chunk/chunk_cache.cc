#include "chunk/chunk_cache.h"

namespace tdb::chunk {

bool ChunkCache::Get(ChunkId cid, Buffer* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(cid);
  if (it == entries_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  *out = it->second.data;
  return true;
}

void ChunkCache::Put(ChunkId cid, Slice data) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  // Replace-or-erase: a stale entry under this id must never survive, even
  // when the new payload itself is too large to cache.
  EraseLocked(cid);
  Buffer payload = data.ToBuffer();
  const size_t charge = Charge(payload);
  if (charge > capacity_) return;
  EvictToFit(charge);
  lru_.push_front(cid);
  entries_[cid] = Entry{std::move(payload), lru_.begin()};
  size_ += charge;
}

void ChunkCache::Erase(ChunkId cid) {
  std::lock_guard<std::mutex> lock(mu_);
  EraseLocked(cid);
}

void ChunkCache::EraseLocked(ChunkId cid) {
  auto it = entries_.find(cid);
  if (it == entries_.end()) return;
  size_ -= Charge(it->second.data);
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
}

void ChunkCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
  size_ = 0;
}

void ChunkCache::EvictToFit(size_t incoming_charge) {
  while (size_ + incoming_charge > capacity_ && !lru_.empty()) {
    auto it = entries_.find(lru_.back());
    size_ -= Charge(it->second.data);
    entries_.erase(it);
    lru_.pop_back();
    evictions_++;
  }
}

}  // namespace tdb::chunk
