#include "chunk/chunk_cache.h"

namespace tdb::chunk {

void ChunkCache::AttachMetrics(common::Counter* evictions[4],
                               common::Gauge* bytes_used) {
  std::lock_guard<std::mutex> lock(mu_);
  for (int i = 0; i < 4; i++) evict_metrics_[i] = evictions[i];
  bytes_used_metric_ = bytes_used;
}

bool ChunkCache::Get(ChunkId cid, Buffer* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(cid);
  if (it == entries_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  *out = *it->second.data;
  return true;
}

bool ChunkCache::GetIfVersionAtMost(ChunkId cid, uint64_t max_version,
                                    Buffer* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(cid);
  if (it == entries_.end() || it->second.version > max_version) return false;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  *out = *it->second.data;
  return true;
}

std::shared_ptr<const Buffer> ChunkCache::GetSharedIfVersionAtMost(
    ChunkId cid, uint64_t max_version) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(cid);
  if (it == entries_.end() || it->second.version > max_version) {
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.data;
}

void ChunkCache::Put(ChunkId cid, Slice data, uint64_t version) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  // Replace-or-erase: a stale entry under this id must never survive, even
  // when the new payload itself is too large to cache. Replacement is not
  // an eviction — the entry's chunk is still cached (or superseded), so it
  // does not distort the hit-ratio denominators.
  EraseLocked(cid);
  auto payload = std::make_shared<const Buffer>(data.ToBuffer());
  const size_t charge = Charge(*payload);
  if (charge > capacity_) {
    MirrorSizeLocked();
    return;
  }
  EvictToFit(charge);
  lru_.push_front(cid);
  entries_[cid] = Entry{std::move(payload), version, lru_.begin()};
  size_ += charge;
  MirrorSizeLocked();
}

void ChunkCache::Erase(ChunkId cid, EvictCause cause) {
  std::lock_guard<std::mutex> lock(mu_);
  if (EraseLocked(cid)) {
    CountEvictionLocked(cause);
    MirrorSizeLocked();
  }
}

bool ChunkCache::EraseLocked(ChunkId cid) {
  auto it = entries_.find(cid);
  if (it == entries_.end()) return false;
  size_ -= Charge(*it->second.data);
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
  return true;
}

void ChunkCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
  size_ = 0;
  MirrorSizeLocked();
}

void ChunkCache::EvictToFit(size_t incoming_charge) {
  while (size_ + incoming_charge > capacity_ && !lru_.empty()) {
    auto it = entries_.find(lru_.back());
    size_ -= Charge(*it->second.data);
    entries_.erase(it);
    lru_.pop_back();
    CountEvictionLocked(EvictCause::kCapacity);
  }
}

void ChunkCache::CountEvictionLocked(EvictCause cause) {
  switch (cause) {
    case EvictCause::kCapacity: counts_.capacity++; break;
    case EvictCause::kDealloc: counts_.dealloc++; break;
    case EvictCause::kFailedCommit: counts_.failed_commit++; break;
    case EvictCause::kRelocation: counts_.relocation++; break;
  }
  common::Counter* c = evict_metrics_[static_cast<int>(cause)];
  if (c != nullptr) c->Increment();
}

void ChunkCache::MirrorSizeLocked() {
  if (bytes_used_metric_ != nullptr) {
    bytes_used_metric_->Set(static_cast<int64_t>(size_));
  }
}

}  // namespace tdb::chunk
