#ifndef TDB_WORKLOAD_WORKLOAD_H_
#define TDB_WORKLOAD_WORKLOAD_H_

#include <cstdint>

#include "common/result.h"
#include "common/slice.h"

namespace tdb::workload {

/// Observer of a workload driver's commit attempts, mirroring the
/// StateOracle protocol of the crash harness without depending on it:
/// BeginCommit opens an attempt, Pending* describe its logical effects,
/// EndCommit seals it (`acked` = the store returned OK). Drivers call the
/// hook for EVERY commit attempt in deterministic order when run
/// single-threaded, so the harness can model boundary states exactly.
/// What `id` means is scenario-specific (documented per driver): an object
/// id for plain-object scenarios, a logical key for collection scenarios.
class CommitHook {
 public:
  virtual ~CommitHook() = default;
  virtual void BeginCommit() {}
  virtual void PendingWrite(uint64_t id, Buffer image) { (void)id; (void)image; }
  virtual void PendingRemove(uint64_t id) { (void)id; }
  virtual void EndCommit(bool acked, bool durable) { (void)acked; (void)durable; }
};

/// Deterministic, semi-compressible payload bytes: a seeded noise prefix
/// whose back half repeats the front half, so the LZ codec compresses it
/// without it being trivially constant (mirrors the harness SlotPayload
/// convention so codec-on runs store a mix of compressed and raw records).
Buffer ValuePayload(uint64_t seed, uint32_t size);

}  // namespace tdb::workload

#endif  // TDB_WORKLOAD_WORKLOAD_H_
