#ifndef TDB_WORKLOAD_LARGE_OBJECTS_H_
#define TDB_WORKLOAD_LARGE_OBJECTS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/metrics.h"
#include "common/random.h"
#include "object/large_object.h"
#include "object/object_store.h"
#include "workload/workload.h"

namespace tdb::workload {

/// Streaming large-object scenario: objects spanning many chunks are
/// written through LargeObjectWriter (parts flushed in nondurable
/// transactions as the stream goes), read back through LargeObjectReader
/// over a lock-free ReadTransaction snapshot, and removed part-by-part.
/// Sizes deliberately cycle through the boundary cases: an exact multiple
/// of the part size, one byte over, one byte under, and a random tail.
struct LargeObjectSpec {
  uint64_t seed = 1;
  uint32_t ops = 12;          // Scenario steps (write / read / remove).
  uint32_t part_bytes = 512;  // Part (chunk-payload) size.
  uint32_t max_parts = 4;     // Largest object is ~max_parts parts.
  double p_durable = 0.5;     // Chance a manifest/remove commit is durable.
  uint32_t remove_every = 4;  // Every k-th step removes (0 = never).
  uint32_t read_every = 2;    // Every k-th step verifies a read (0 = never).
};

/// Tag -> manifest-oid directory, persisted under a named root so a
/// reopened store can enumerate the surviving objects. Append-only log
/// replayed in order: an entry with an invalid oid tombstones its tag.
class LobDirectory final : public object::Object {
 public:
  static constexpr object::ClassId kClassId = 0x574C4F44;  // "WLOD"

  struct Entry {
    uint64_t tag = 0;
    object::ObjectId oid = object::kInvalidObjectId;
  };

  LobDirectory() = default;

  object::ClassId class_id() const override { return kClassId; }
  void Pickle(object::Pickler* pickler) const override;
  Status UnpickleFrom(object::Unpickler* unpickler) override;
  size_t ApproxSize() const override {
    return 32 + entries_.size() * sizeof(Entry);
  }

  const std::vector<Entry>& entries() const { return entries_; }
  void Append(uint64_t tag, object::ObjectId oid) {
    entries_.push_back(Entry{tag, oid});
  }
  /// Replays the log into tag -> live manifest oid.
  std::map<uint64_t, object::ObjectId> Replay() const;

 private:
  std::vector<Entry> entries_;
};

/// Registers the directory plus the large-object classes.
Status RegisterLargeObjectWorkloadClasses(object::ObjectStore* os);

/// Driver. CommitHook ids are tags; images are the raw value bytes (the
/// manifest commit is the visibility point, so mid-stream crashes must
/// expose either the whole value or nothing). Latency lands in
/// `workload.lob.{write,read,remove}_us`; counters `workload.lob.objects`
/// and `workload.lob.bytes`.
class LargeObjectDriver {
 public:
  /// `create` installs the empty directory in a durable setup commit.
  static Result<std::unique_ptr<LargeObjectDriver>> Open(
      object::ObjectStore* objects, const LargeObjectSpec& spec, bool create);

  /// Runs spec.ops steps: streamed writes with interleaved read
  /// verification (against the in-process model) and removes.
  Status Run(CommitHook* hook = nullptr);

  /// One scenario step (the benchmark's unit of work).
  Status RunStep(CommitHook* hook = nullptr);

  /// Writes one new large object of `total_bytes` (streamed); returns its
  /// tag. Exposed for benchmarks and edge tests.
  Result<uint64_t> WriteOne(uint64_t total_bytes, CommitHook* hook = nullptr);

  /// Reads `tag` back over a fresh snapshot and verifies it against the
  /// model (alternating ReadAll and bounded-buffer Read loops).
  Status ReadOne(uint64_t tag);

  /// Scans the committed directory into tag -> value bytes (streamed; the
  /// same keying the CommitHook sees).
  Status ScanAll(std::map<uint64_t, Buffer>* out);

  size_t live_objects() const { return model_.size(); }
  uint64_t bytes_written() const { return bytes_written_; }
  const LargeObjectSpec& spec() const { return spec_; }

 private:
  LargeObjectDriver(object::ObjectStore* objects, const LargeObjectSpec& spec);

  Status Attach();
  Status RemoveOne(uint64_t tag, CommitHook* hook);
  uint64_t PickSize();
  Result<uint64_t> PickLiveTag();

  object::ObjectStore* objects_;
  const LargeObjectSpec spec_;
  Random rng_;

  object::ObjectId directory_oid_ = object::kInvalidObjectId;
  std::map<uint64_t, object::ObjectId> manifests_;  // tag -> manifest oid.
  std::map<uint64_t, Buffer> model_;                // tag -> value bytes.
  uint64_t next_tag_ = 0;
  uint32_t step_ = 0;
  uint64_t bytes_written_ = 0;

  common::MetricsRegistry* registry_ = nullptr;
  common::Histogram* write_us_ = nullptr;
  common::Histogram* read_us_ = nullptr;
  common::Histogram* remove_us_ = nullptr;
  common::Counter* objects_count_ = nullptr;
  common::Counter* bytes_ = nullptr;
};

}  // namespace tdb::workload

#endif  // TDB_WORKLOAD_LARGE_OBJECTS_H_
