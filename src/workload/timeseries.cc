#include "workload/timeseries.h"

#include <string>
#include <utility>

#include "collection/indexer.h"
#include "collection/key.h"

namespace tdb::workload {

namespace {

constexpr const char* kCollectionName = "tseries";
constexpr const char* kIndexName = "by-ts";

std::shared_ptr<collection::GenericIndexer> MakeTsIndexer() {
  return std::make_shared<collection::Indexer<TsPoint, collection::IntKey>>(
      kIndexName, collection::Uniqueness::kUnique,
      collection::IndexKind::kBTree,
      [](const TsPoint& point) {
        return collection::IntKey(static_cast<int64_t>(point.ts()));
      },
      collection::KeyMutability::kImmutable);
}

}  // namespace

void TsPoint::Pickle(object::Pickler* pickler) const {
  pickler->PutUint64(ts_);
  pickler->PutBytes(bytes_);
}

Status TsPoint::UnpickleFrom(object::Unpickler* unpickler) {
  TDB_RETURN_IF_ERROR(unpickler->GetUint64(&ts_));
  return unpickler->GetBytes(&bytes_);
}

Status RegisterTimeSeriesClasses(object::ObjectStore* os) {
  return os->registry().Register<TsPoint>(TsPoint::kClassId);
}

TimeSeriesDriver::TimeSeriesDriver(collection::CollectionStore* collections,
                                   const TimeSeriesSpec& spec)
    : collections_(collections),
      spec_(spec),
      rng_(spec.seed * 0x9E3779B97F4A7C15ull + 3),
      next_ts_(spec.start_ts) {
  registry_ = collections_->object_store()->metrics().get();
  append_us_ = registry_->GetHistogram("workload.ts.append_us");
  scan_us_ = registry_->GetHistogram("workload.ts.scan_us");
  retention_us_ = registry_->GetHistogram("workload.ts.retention_us");
  points_ = registry_->GetCounter("workload.ts.points");
  retained_deletes_ = registry_->GetCounter("workload.ts.retained_deletes");
}

Result<std::unique_ptr<TimeSeriesDriver>> TimeSeriesDriver::Open(
    collection::CollectionStore* collections, const TimeSeriesSpec& spec,
    bool create) {
  std::unique_ptr<TimeSeriesDriver> driver(
      new TimeSeriesDriver(collections, spec));
  driver->indexer_ = MakeTsIndexer();
  TDB_RETURN_IF_ERROR(
      collections->RegisterIndexer(kCollectionName, driver->indexer_));
  if (create) {
    collection::CTransaction ct(collections);
    Result<object::WritableRef<collection::Collection>> coll =
        ct.CreateCollection(kCollectionName, driver->indexer_);
    if (!coll.ok()) return coll.status();
    TDB_RETURN_IF_ERROR(ct.Commit(true));
  }
  return driver;
}

Buffer TimeSeriesDriver::PointImage(uint64_t ts, const Buffer& bytes) const {
  Buffer image;
  image.reserve(8 + bytes.size());
  for (int i = 0; i < 8; i++) {
    image.push_back(static_cast<uint8_t>((ts >> (i * 8)) & 0xFF));
  }
  image.insert(image.end(), bytes.begin(), bytes.end());
  return image;
}

Status TimeSeriesDriver::AppendBatch(CommitHook* hook) {
  common::ScopedTimer timer(registry_, append_us_);
  const bool durable = rng_.Bernoulli(spec_.p_durable);
  if (hook != nullptr) hook->BeginCommit();
  collection::CTransaction ct(collections_);
  Result<object::WritableRef<collection::Collection>> coll =
      ct.WriteCollection(kCollectionName);
  if (!coll.ok()) {
    if (hook != nullptr) hook->EndCommit(false, durable);
    return coll.status();
  }
  std::map<uint64_t, Buffer> appended;
  Status status;
  for (uint32_t i = 0; status.ok() && i < spec_.points_per_batch; i++) {
    // Monotonic timestamps with deterministic jitter inside the stride.
    const uint64_t ts =
        next_ts_ + (spec_.ts_stride > 1 ? rng_.Uniform(spec_.ts_stride) : 0);
    next_ts_ += spec_.ts_stride;
    Buffer payload = ValuePayload(rng_.Next(), spec_.value_bytes);
    Result<object::ObjectId> inserted =
        coll.value()->Insert(&ct, std::make_unique<TsPoint>(ts, payload));
    status = inserted.ok() ? Status::OK() : inserted.status();
    if (status.ok()) {
      if (hook != nullptr) hook->PendingWrite(ts, PointImage(ts, payload));
      appended[ts] = std::move(payload);
    }
  }
  if (status.ok()) status = ct.Commit(durable);
  if (hook != nullptr) hook->EndCommit(status.ok(), durable);
  TDB_RETURN_IF_ERROR(status);
  for (auto& [ts, payload] : appended) {
    model_[ts] = std::move(payload);
    points_appended_++;
    points_->Increment();
  }
  return Status::OK();
}

Status TimeSeriesDriver::ScanWindow() {
  common::ScopedTimer timer(registry_, scan_us_);
  if (model_.empty()) return Status::OK();
  const uint64_t newest = model_.rbegin()->first;
  const uint64_t lo =
      newest > spec_.retention_window ? newest - spec_.retention_window : 0;
  collection::CTransaction ct(collections_);
  Result<object::ReadonlyRef<collection::Collection>> coll =
      ct.ReadCollection(kCollectionName);
  if (!coll.ok()) return coll.status();
  collection::IntKey min(static_cast<int64_t>(lo));
  collection::IntKey max(static_cast<int64_t>(newest));
  TDB_ASSIGN_OR_RETURN(std::unique_ptr<collection::Iterator> it,
                       coll.value()->Query(&ct, *indexer_, &min, &max));
  // The scan must enumerate exactly the model's window, in ascending
  // order, with matching values.
  auto expect = model_.lower_bound(lo);
  Status status;
  for (; status.ok() && !it->end(); it->Next()) {
    Result<object::ReadonlyRef<TsPoint>> point = it->Read<TsPoint>();
    status = point.ok() ? Status::OK() : point.status();
    if (!status.ok()) break;
    if (expect == model_.end() || expect->first > newest) {
      status = Status::Corruption("window scan returned unexpected point ts " +
                                  std::to_string(point.value()->ts()));
    } else if (point.value()->ts() != expect->first ||
               Slice(point.value()->bytes()) != Slice(expect->second)) {
      status = Status::Corruption(
          "window scan mismatch at ts " + std::to_string(expect->first) +
          ": got ts " + std::to_string(point.value()->ts()));
    } else {
      ++expect;
    }
  }
  if (status.ok() && expect != model_.end()) {
    status = Status::Corruption("window scan ended before ts " +
                                std::to_string(expect->first));
  }
  Status closed = it->Close();
  if (status.ok()) status = closed;
  Status aborted = ct.Abort();
  if (status.ok()) status = aborted;
  return status;
}

Status TimeSeriesDriver::RunRetention(CommitHook* hook) {
  common::ScopedTimer timer(registry_, retention_us_);
  if (model_.empty()) return Status::OK();
  const uint64_t newest = model_.rbegin()->first;
  if (newest <= spec_.retention_window) return Status::OK();
  const uint64_t cutoff = newest - spec_.retention_window;  // Keep >= cutoff.
  auto first_kept = model_.lower_bound(cutoff);
  if (first_kept == model_.begin()) return Status::OK();  // Nothing expires.
  const bool durable = rng_.Bernoulli(spec_.p_durable);
  if (hook != nullptr) hook->BeginCommit();
  collection::CTransaction ct(collections_);
  Result<object::WritableRef<collection::Collection>> coll =
      ct.WriteCollection(kCollectionName);
  Status status = coll.ok() ? Status::OK() : coll.status();
  size_t removed = 0;
  if (status.ok()) {
    collection::IntKey max(static_cast<int64_t>(cutoff) - 1);
    status = coll.value()->RemoveRange(&ct, *indexer_, nullptr, &max,
                                       &removed);
  }
  if (status.ok()) {
    const size_t expected =
        static_cast<size_t>(std::distance(model_.begin(), first_kept));
    if (removed != expected) {
      status = Status::Corruption(
          "retention removed " + std::to_string(removed) + " points, model "
          "expected " + std::to_string(expected));
    }
  }
  if (status.ok()) {
    if (hook != nullptr) {
      for (auto it = model_.begin(); it != first_kept; ++it) {
        hook->PendingRemove(it->first);
      }
    }
    status = ct.Commit(durable);
  }
  if (hook != nullptr) hook->EndCommit(status.ok(), durable);
  TDB_RETURN_IF_ERROR(status);
  points_deleted_ += removed;
  retained_deletes_->Add(static_cast<int64_t>(removed));
  model_.erase(model_.begin(), first_kept);
  return Status::OK();
}

Status TimeSeriesDriver::RunStep(CommitHook* hook) {
  TDB_RETURN_IF_ERROR(AppendBatch(hook));
  step_++;
  if (spec_.scan_every != 0 && step_ % spec_.scan_every == 0) {
    TDB_RETURN_IF_ERROR(ScanWindow());
  }
  if (spec_.retention_every != 0 && step_ % spec_.retention_every == 0) {
    TDB_RETURN_IF_ERROR(RunRetention(hook));
  }
  return Status::OK();
}

Status TimeSeriesDriver::Run(CommitHook* hook) {
  for (uint32_t batch = 0; batch < spec_.batches; batch++) {
    TDB_RETURN_IF_ERROR(RunStep(hook));
  }
  return Status::OK();
}

Status TimeSeriesDriver::ScanAll(std::map<uint64_t, Buffer>* out) {
  out->clear();
  collection::CTransaction ct(collections_);
  Result<object::ReadonlyRef<collection::Collection>> coll =
      ct.ReadCollection(kCollectionName);
  if (!coll.ok()) {
    if (coll.status().IsNotFound()) return ct.Abort();  // Never created.
    return coll.status();
  }
  TDB_ASSIGN_OR_RETURN(std::unique_ptr<collection::Iterator> it,
                       coll.value()->Query(&ct, *indexer_));
  for (; !it->end(); it->Next()) {
    Result<object::ReadonlyRef<TsPoint>> point = it->Read<TsPoint>();
    if (!point.ok()) return point.status();
    uint64_t ts = point.value()->ts();
    if (out->count(ts) > 0) {
      return Status::Corruption("duplicate ts " + std::to_string(ts) +
                                " in scan");
    }
    (*out)[ts] = PointImage(ts, point.value()->bytes());
  }
  TDB_RETURN_IF_ERROR(it->Close());
  return ct.Abort();
}

}  // namespace tdb::workload
