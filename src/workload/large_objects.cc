#include "workload/large_objects.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>

#include "common/check.h"

namespace tdb::workload {

namespace {

constexpr const char* kDirectoryRoot = "lob-dir";

}  // namespace

void LobDirectory::Pickle(object::Pickler* pickler) const {
  pickler->PutUint32(static_cast<uint32_t>(entries_.size()));
  for (const Entry& entry : entries_) {
    pickler->PutUint64(entry.tag);
    pickler->PutUint64(entry.oid);
  }
}

Status LobDirectory::UnpickleFrom(object::Unpickler* unpickler) {
  uint32_t count = 0;
  TDB_RETURN_IF_ERROR(unpickler->GetUint32(&count));
  entries_.clear();
  entries_.reserve(count);
  for (uint32_t i = 0; i < count; i++) {
    Entry entry;
    TDB_RETURN_IF_ERROR(unpickler->GetUint64(&entry.tag));
    TDB_RETURN_IF_ERROR(unpickler->GetUint64(&entry.oid));
    entries_.push_back(entry);
  }
  return Status::OK();
}

std::map<uint64_t, object::ObjectId> LobDirectory::Replay() const {
  std::map<uint64_t, object::ObjectId> live;
  for (const Entry& entry : entries_) {
    if (entry.oid == object::kInvalidObjectId) {
      live.erase(entry.tag);
    } else {
      live[entry.tag] = entry.oid;
    }
  }
  return live;
}

Status RegisterLargeObjectWorkloadClasses(object::ObjectStore* os) {
  TDB_RETURN_IF_ERROR(object::RegisterLargeObjectClasses(os));
  return os->registry().Register<LobDirectory>(LobDirectory::kClassId);
}

LargeObjectDriver::LargeObjectDriver(object::ObjectStore* objects,
                                     const LargeObjectSpec& spec)
    : objects_(objects),
      spec_(spec),
      rng_(spec.seed * 0x9E3779B97F4A7C15ull + 5) {
  registry_ = objects_->metrics().get();
  write_us_ = registry_->GetHistogram("workload.lob.write_us");
  read_us_ = registry_->GetHistogram("workload.lob.read_us");
  remove_us_ = registry_->GetHistogram("workload.lob.remove_us");
  objects_count_ = registry_->GetCounter("workload.lob.objects");
  bytes_ = registry_->GetCounter("workload.lob.bytes");
}

Result<std::unique_ptr<LargeObjectDriver>> LargeObjectDriver::Open(
    object::ObjectStore* objects, const LargeObjectSpec& spec, bool create) {
  if (spec.part_bytes == 0) {
    return Status::InvalidArgument("part_bytes must be positive");
  }
  std::unique_ptr<LargeObjectDriver> driver(
      new LargeObjectDriver(objects, spec));
  if (create) {
    object::Transaction txn(objects);
    TDB_ASSIGN_OR_RETURN(object::ObjectId dir_oid,
                         txn.Insert(std::make_unique<LobDirectory>()));
    driver->directory_oid_ = dir_oid;
    // Root anchored before the commit (see YcsbDriver::Load): a crash
    // between root write and commit leaves a dangling root, which Attach
    // treats as an empty directory.
    TDB_RETURN_IF_ERROR(objects->SetNamedRoot(kDirectoryRoot, dir_oid));
    TDB_RETURN_IF_ERROR(txn.Commit(true));
  } else {
    TDB_RETURN_IF_ERROR(driver->Attach());
  }
  return driver;
}

Status LargeObjectDriver::Attach() {
  TDB_ASSIGN_OR_RETURN(object::ObjectId dir_oid,
                       objects_->GetNamedRoot(kDirectoryRoot));
  if (dir_oid == object::kInvalidObjectId) return Status::OK();  // Empty.
  object::ReadTransaction txn(objects_);
  Result<std::unique_ptr<LobDirectory>> directory =
      txn.Take<LobDirectory>(dir_oid);
  if (!directory.ok()) {
    if (directory.status().IsNotFound()) return Status::OK();  // Dangling.
    return directory.status();
  }
  directory_oid_ = dir_oid;
  manifests_ = directory.value()->Replay();
  if (!manifests_.empty()) next_tag_ = manifests_.rbegin()->first + 1;
  // Rebuild the model from the store so ReadOne can verify after reopen.
  for (const auto& [tag, oid] : manifests_) {
    object::LargeObjectReader reader(&txn);
    TDB_RETURN_IF_ERROR(reader.Open(oid));
    Buffer value;
    TDB_RETURN_IF_ERROR(reader.ReadAll(&value));
    model_[tag] = std::move(value);
  }
  return Status::OK();
}

uint64_t LargeObjectDriver::PickSize() {
  const uint64_t parts = 1 + rng_.Uniform(std::max<uint32_t>(1, spec_.max_parts));
  const uint64_t base = parts * spec_.part_bytes;
  switch (rng_.Uniform(4)) {
    case 0: return base;                            // Exactly at a boundary.
    case 1: return base + 1;                        // One byte over.
    case 2: return base > 1 ? base - 1 : 1;         // One byte under.
    default: return base + rng_.Uniform(spec_.part_bytes);  // Random tail.
  }
}

Result<uint64_t> LargeObjectDriver::PickLiveTag() {
  if (model_.empty()) return Status::NotFound("no live large objects");
  auto it = model_.begin();
  std::advance(it, static_cast<int64_t>(rng_.Uniform(model_.size())));
  return it->first;
}

Result<uint64_t> LargeObjectDriver::WriteOne(uint64_t total_bytes,
                                             CommitHook* hook) {
  common::ScopedTimer timer(registry_, write_us_);
  const uint64_t tag = next_tag_++;
  const bool durable = rng_.Bernoulli(spec_.p_durable);
  Buffer value = ValuePayload(rng_.Next(), static_cast<uint32_t>(total_bytes));
  object::LargeObjectWriter writer(objects_, spec_.part_bytes);
  // Stream in appends that straddle part boundaries to exercise the
  // writer's internal buffering (not one part per Append).
  const size_t step = std::max<size_t>(1, spec_.part_bytes / 3 + 1);
  for (size_t off = 0; off < value.size(); off += step) {
    const size_t n = std::min(step, value.size() - off);
    TDB_RETURN_IF_ERROR(writer.Append(Slice(value.data() + off, n)));
  }
  TDB_ASSIGN_OR_RETURN(std::unique_ptr<object::LargeObjectManifest> manifest,
                       writer.Finish(tag));
  if (hook != nullptr) hook->BeginCommit();
  object::Transaction txn(objects_);
  Status status;
  object::ObjectId manifest_oid = object::kInvalidObjectId;
  Result<object::ObjectId> inserted = txn.Insert(std::move(manifest));
  status = inserted.ok() ? Status::OK() : inserted.status();
  if (status.ok()) {
    manifest_oid = inserted.value();
    Result<object::WritableRef<LobDirectory>> dir =
        txn.OpenWritable<LobDirectory>(directory_oid_);
    status = dir.ok() ? Status::OK() : dir.status();
    if (status.ok()) {
      dir.value()->Append(tag, manifest_oid);
      if (hook != nullptr) hook->PendingWrite(tag, value);
      status = txn.Commit(durable);
    }
  }
  if (hook != nullptr) hook->EndCommit(status.ok(), durable);
  TDB_RETURN_IF_ERROR(status);
  manifests_[tag] = manifest_oid;
  bytes_written_ += value.size();
  bytes_->Add(static_cast<int64_t>(value.size()));
  objects_count_->Increment();
  model_[tag] = std::move(value);
  return tag;
}

Status LargeObjectDriver::ReadOne(uint64_t tag) {
  common::ScopedTimer timer(registry_, read_us_);
  auto expect = model_.find(tag);
  if (expect == model_.end()) {
    return Status::InvalidArgument("tag " + std::to_string(tag) +
                                   " is not live");
  }
  object::ReadTransaction txn(objects_);
  object::LargeObjectReader reader(&txn);
  TDB_RETURN_IF_ERROR(reader.Open(manifests_[tag]));
  if (reader.size() != expect->second.size()) {
    return Status::Corruption("large object " + std::to_string(tag) +
                              " size mismatch: manifest says " +
                              std::to_string(reader.size()) + ", model says " +
                              std::to_string(expect->second.size()));
  }
  Buffer got;
  if (rng_.Bernoulli(0.5)) {
    TDB_RETURN_IF_ERROR(reader.ReadAll(&got));
  } else {
    // Bounded-buffer streaming: read through a buffer smaller than a part
    // so every part boundary is crossed mid-Read.
    Buffer chunk(std::max<size_t>(1, spec_.part_bytes / 2 + 3));
    while (true) {
      TDB_ASSIGN_OR_RETURN(size_t n, reader.Read(chunk.data(), chunk.size()));
      if (n == 0) break;
      got.insert(got.end(), chunk.begin(), chunk.begin() + n);
    }
  }
  if (Slice(got) != Slice(expect->second)) {
    return Status::Corruption("large object " + std::to_string(tag) +
                              " value mismatch");
  }
  return Status::OK();
}

Status LargeObjectDriver::RemoveOne(uint64_t tag, CommitHook* hook) {
  common::ScopedTimer timer(registry_, remove_us_);
  auto it = manifests_.find(tag);
  if (it == manifests_.end()) {
    return Status::InvalidArgument("tag " + std::to_string(tag) +
                                   " is not live");
  }
  const bool durable = rng_.Bernoulli(spec_.p_durable);
  if (hook != nullptr) hook->BeginCommit();
  object::Transaction txn(objects_);
  Status status = object::RemoveLargeObject(&txn, it->second);
  if (status.ok()) {
    Result<object::WritableRef<LobDirectory>> dir =
        txn.OpenWritable<LobDirectory>(directory_oid_);
    status = dir.ok() ? Status::OK() : dir.status();
    if (status.ok()) {
      dir.value()->Append(tag, object::kInvalidObjectId);
      if (hook != nullptr) hook->PendingRemove(tag);
      status = txn.Commit(durable);
    }
  }
  if (hook != nullptr) hook->EndCommit(status.ok(), durable);
  TDB_RETURN_IF_ERROR(status);
  manifests_.erase(tag);
  model_.erase(tag);
  return Status::OK();
}

Status LargeObjectDriver::RunStep(CommitHook* hook) {
  step_++;
  if (spec_.remove_every != 0 && step_ % spec_.remove_every == 0 &&
      !model_.empty()) {
    TDB_ASSIGN_OR_RETURN(uint64_t tag, PickLiveTag());
    TDB_RETURN_IF_ERROR(RemoveOne(tag, hook));
    return Status::OK();
  }
  TDB_ASSIGN_OR_RETURN(uint64_t written, WriteOne(PickSize(), hook));
  if (spec_.read_every != 0 && step_ % spec_.read_every == 0) {
    TDB_ASSIGN_OR_RETURN(uint64_t tag, PickLiveTag());
    TDB_RETURN_IF_ERROR(ReadOne(tag));
    (void)written;
  }
  return Status::OK();
}

Status LargeObjectDriver::Run(CommitHook* hook) {
  for (uint32_t op = 0; op < spec_.ops; op++) {
    TDB_RETURN_IF_ERROR(RunStep(hook));
  }
  return Status::OK();
}

Status LargeObjectDriver::ScanAll(std::map<uint64_t, Buffer>* out) {
  out->clear();
  TDB_ASSIGN_OR_RETURN(object::ObjectId dir_oid,
                       objects_->GetNamedRoot(kDirectoryRoot));
  if (dir_oid == object::kInvalidObjectId) return Status::OK();
  object::ReadTransaction txn(objects_);
  Result<std::unique_ptr<LobDirectory>> directory =
      txn.Take<LobDirectory>(dir_oid);
  if (!directory.ok()) {
    if (directory.status().IsNotFound()) return Status::OK();  // Dangling.
    return directory.status();
  }
  for (const auto& [tag, oid] : directory.value()->Replay()) {
    object::LargeObjectReader reader(&txn);
    TDB_RETURN_IF_ERROR(reader.Open(oid));
    Buffer value;
    TDB_RETURN_IF_ERROR(reader.ReadAll(&value));
    (*out)[tag] = std::move(value);
  }
  return Status::OK();
}

}  // namespace tdb::workload
