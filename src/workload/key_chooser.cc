#include "workload/key_chooser.h"

#include <cmath>

#include "common/check.h"

namespace tdb::workload {

namespace {

/// zeta(from..to] increment: sum_{i=from+1..to} 1/i^theta.
double ZetaRange(uint64_t from, uint64_t to, double theta) {
  double sum = 0.0;
  for (uint64_t i = from + 1; i <= to; i++) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

ZipfianChooser::ZipfianChooser(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  TDB_CHECK(n_ >= 1, "zipfian keyspace must be non-empty");
  TDB_CHECK(theta_ > 0.0 && theta_ < 1.0, "zipfian theta must be in (0,1)");
  alpha_ = 1.0 / (1.0 - theta_);
  zeta2_ = ZetaRange(0, 2, theta_);
  zetan_ = ZetaRange(0, n_, theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2_ / zetan_);
}

void ZipfianChooser::Grow(uint64_t n) {
  if (n <= n_) return;
  zetan_ += ZetaRange(n_, n, theta_);
  n_ = n;
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2_ / zetan_);
}

uint64_t ZipfianChooser::Next(Random* rng) const {
  // 53-bit uniform in [0,1).
  double u = static_cast<double>(rng->Next() >> 11) *
             (1.0 / 9007199254740992.0);
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  uint64_t rank = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

uint64_t FnvHash64(uint64_t value) {
  uint64_t hash = 0xCBF29CE484222325ull;
  for (int i = 0; i < 8; i++) {
    hash ^= (value >> (i * 8)) & 0xFF;
    hash *= 0x100000001B3ull;
  }
  return hash;
}

uint64_t ScrambledZipfianChooser::Next(Random* rng) const {
  return FnvHash64(inner_.Next(rng)) % inner_.n();
}

uint64_t LatestChooser::Next(Random* rng, uint64_t limit) const {
  TDB_CHECK(limit >= 1, "latest distribution needs a non-empty keyspace");
  uint64_t rank = inner_.Next(rng);
  if (rank >= limit) rank = limit - 1;
  return limit - 1 - rank;
}

}  // namespace tdb::workload
