#ifndef TDB_WORKLOAD_TIMESERIES_H_
#define TDB_WORKLOAD_TIMESERIES_H_

#include <cstdint>
#include <map>
#include <memory>

#include "collection/collection.h"
#include "common/metrics.h"
#include "common/random.h"
#include "object/object_store.h"
#include "workload/workload.h"

namespace tdb::workload {

/// Time-series scenario: an ordered B-tree collection keyed by timestamp.
/// Batches of monotonically increasing points are appended; window range
/// scans read the recent past; retention passes RemoveRange() everything
/// older than the window, feeding the freed chunks to the cleaner. The
/// driver is single-threaded and fully deterministic per spec.
struct TimeSeriesSpec {
  uint64_t seed = 1;
  uint32_t batches = 16;          // Append batches (one commit each).
  uint32_t points_per_batch = 8;
  uint32_t value_bytes = 64;
  uint64_t start_ts = 1000;
  uint64_t ts_stride = 10;        // Timestamp gap between points.
  /// Points with ts < newest - retention_window are deleted by retention.
  uint64_t retention_window = 600;
  uint32_t retention_every = 4;   // Retention after every k-th batch.
  uint32_t scan_every = 2;        // Window scan after every k-th batch.
  double p_durable = 0.5;
};

/// One data point: immutable timestamp key plus a value.
class TsPoint final : public object::Object {
 public:
  static constexpr object::ClassId kClassId = 0x54535054;  // "TSPT"

  TsPoint() = default;
  TsPoint(uint64_t ts, Buffer bytes) : ts_(ts), bytes_(std::move(bytes)) {}

  object::ClassId class_id() const override { return kClassId; }
  void Pickle(object::Pickler* pickler) const override;
  Status UnpickleFrom(object::Unpickler* unpickler) override;
  size_t ApproxSize() const override { return 48 + bytes_.size(); }

  uint64_t ts() const { return ts_; }
  const Buffer& bytes() const { return bytes_; }

 private:
  uint64_t ts_ = 0;
  Buffer bytes_;
};

Status RegisterTimeSeriesClasses(object::ObjectStore* os);

/// Driver. CommitHook ids are timestamps; images fold ts + value.
/// Latency lands in `workload.ts.{append,scan,retention}_us`; counters
/// `workload.ts.points`, `.retained_deletes`.
class TimeSeriesDriver {
 public:
  /// `create` creates the collection (a durable setup commit).
  static Result<std::unique_ptr<TimeSeriesDriver>> Open(
      collection::CollectionStore* collections, const TimeSeriesSpec& spec,
      bool create);

  /// Runs the whole spec: append batches with interleaved window scans
  /// (validated against the driver's internal model) and retention.
  Status Run(CommitHook* hook = nullptr);

  /// Runs one batch step (append + due scan/retention); wraps around
  /// after spec.batches steps. The benchmark's unit of work.
  Status RunStep(CommitHook* hook = nullptr);

  /// Scans the whole collection into ts -> point image.
  Status ScanAll(std::map<uint64_t, Buffer>* out);

  /// Points currently live in the driver's model (after retention).
  size_t model_size() const { return model_.size(); }
  uint64_t points_appended() const { return points_appended_; }
  uint64_t points_deleted() const { return points_deleted_; }

 private:
  TimeSeriesDriver(collection::CollectionStore* collections,
                   const TimeSeriesSpec& spec);

  Status AppendBatch(CommitHook* hook);
  Status ScanWindow();
  Status RunRetention(CommitHook* hook);
  Buffer PointImage(uint64_t ts, const Buffer& bytes) const;

  collection::CollectionStore* collections_;
  const TimeSeriesSpec spec_;
  Random rng_;
  std::shared_ptr<collection::GenericIndexer> indexer_;

  std::map<uint64_t, Buffer> model_;  // ts -> value (current live set).
  uint64_t next_ts_ = 0;
  uint32_t step_ = 0;
  uint64_t points_appended_ = 0;
  uint64_t points_deleted_ = 0;

  common::MetricsRegistry* registry_ = nullptr;
  common::Histogram* append_us_ = nullptr;
  common::Histogram* scan_us_ = nullptr;
  common::Histogram* retention_us_ = nullptr;
  common::Counter* points_ = nullptr;
  common::Counter* retained_deletes_ = nullptr;
};

}  // namespace tdb::workload

#endif  // TDB_WORKLOAD_TIMESERIES_H_
