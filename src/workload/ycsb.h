#ifndef TDB_WORKLOAD_YCSB_H_
#define TDB_WORKLOAD_YCSB_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "collection/collection.h"
#include "common/metrics.h"
#include "common/random.h"
#include "object/object_store.h"
#include "workload/key_chooser.h"
#include "workload/workload.h"

namespace tdb::workload {

/// The six core YCSB workload mixes:
///   A  50% read / 50% update, zipfian          (session store)
///   B  95% read /  5% update, zipfian          (photo tagging)
///   C 100% read, zipfian                       (profile cache)
///   D  95% read /  5% insert, latest           (status updates)
///   E  95% scan /  5% insert, zipfian          (threaded conversations)
///   F  50% read / 50% read-modify-write, zipfian (user database)
/// A-D and F run over the object store (point access by object id through
/// a persistent key directory); E runs over a B-tree collection, whose
/// ordered index serves the range scans.
enum class Mix : uint8_t { kA, kB, kC, kD, kE, kF };
inline constexpr int kMixCount = 6;

const char* MixName(Mix mix);          // "A".."F"
Mix MixFromIndex(uint64_t index);      // index % 6 -> Mix

enum class OpKind : uint8_t { kRead, kUpdate, kInsert, kScan,
                              kReadModifyWrite };

struct YcsbSpec {
  Mix mix = Mix::kA;
  uint64_t records = 100;     // Records loaded before the run.
  uint64_t ops = 100;         // Operations per Run() stream.
  uint32_t value_bytes = 128;
  uint32_t max_scan_len = 16;  // E: records enumerated per scan.
  double theta = ZipfianChooser::kDefaultTheta;
  uint64_t seed = 1;
  double p_durable = 0.25;    // Chance a mutating transaction is durable.
  /// Insert headroom beyond `records` (D/E grow the keyspace). 0 = `ops`.
  /// When exhausted, insert ops degrade to reads (counted, never fails).
  uint64_t max_inserts = 0;
};

/// The benchmark record: an immutable logical key plus a mutable value.
class YcsbRecord final : public object::Object {
 public:
  static constexpr object::ClassId kClassId = 0x59435352;  // "YCSR"

  YcsbRecord() = default;
  YcsbRecord(uint64_t key, Buffer bytes)
      : key_(key), bytes_(std::move(bytes)) {}

  object::ClassId class_id() const override { return kClassId; }
  void Pickle(object::Pickler* pickler) const override;
  Status UnpickleFrom(object::Unpickler* unpickler) override;
  size_t ApproxSize() const override { return 48 + bytes_.size(); }

  uint64_t key() const { return key_; }
  const Buffer& bytes() const { return bytes_; }
  void set_bytes(Buffer bytes) { bytes_ = std::move(bytes); }

 private:
  uint64_t key_ = 0;
  Buffer bytes_;
};

/// Key -> object-id directory for the object-store mixes, persisted so a
/// reopened store (or the crash harness's recovery pass) can enumerate the
/// table. Each insert appends its (key, oid) pair in the same transaction
/// as the record, so the mapping is crash-atomic with the record; entry
/// order is commit order, not key order (concurrent inserts may finish
/// out of order).
class YcsbDirectory final : public object::Object {
 public:
  static constexpr object::ClassId kClassId = 0x59434449;  // "YCDI"

  struct Entry {
    uint64_t key = 0;
    object::ObjectId oid = object::kInvalidObjectId;
  };

  YcsbDirectory() = default;

  object::ClassId class_id() const override { return kClassId; }
  void Pickle(object::Pickler* pickler) const override;
  Status UnpickleFrom(object::Unpickler* unpickler) override;
  size_t ApproxSize() const override {
    return 32 + entries_.size() * sizeof(Entry);
  }

  const std::vector<Entry>& entries() const { return entries_; }
  void Append(uint64_t key, object::ObjectId oid) {
    entries_.push_back(Entry{key, oid});
  }

 private:
  std::vector<Entry> entries_;
};

/// Registers YcsbRecord and YcsbDirectory (call once per fresh store).
Status RegisterYcsbClasses(object::ObjectStore* os);

/// The oracle image of a record: key and value folded into one buffer.
Buffer YcsbRecordImage(uint64_t key, const Buffer& bytes);

/// Executes a YCSB mix against an open store stack. Thread-safe: distinct
/// streams may Run() concurrently (the bench mode); a single stream run
/// with a CommitHook is fully deterministic (the harness/test mode — the
/// hook is keyed by LOGICAL RECORD KEY for every mix).
///
/// Per-op latency lands in the store registry's histograms
/// `workload.<mix>.{read,update,insert,scan,rmw}_us`, with counters
/// `workload.<mix>.ops`, `.retries` (lock-timeout retries) and
/// `.insert_skips` (inserts degraded to reads after headroom ran out).
class YcsbDriver {
 public:
  /// `collections` is required for mix E, ignored otherwise. `create`
  /// loads `spec.records` seed records in one durable transaction;
  /// `create=false` attaches to an existing (possibly crash-recovered)
  /// table, which may legitimately be absent (an empty table).
  static Result<std::unique_ptr<YcsbDriver>> Open(
      object::ObjectStore* objects,
      collection::CollectionStore* collections, const YcsbSpec& spec,
      bool create, CommitHook* hook = nullptr);

  ~YcsbDriver();  // Out of line: Stream is private and incomplete here.

  /// Runs spec.ops operations of stream `stream` (deterministic per
  /// (spec.seed, stream)).
  Status Run(uint64_t stream, CommitHook* hook = nullptr);

  /// Runs `count` operations, resuming where the stream's previous
  /// RunOps/Run left off (benchmark batching).
  Status RunOps(uint64_t stream, uint64_t count, CommitHook* hook = nullptr);

  /// Scans the committed table into logical-key -> record image (the same
  /// keying the CommitHook sees).
  Status Scan(std::map<uint64_t, Buffer>* out);

  uint64_t live_records() const {
    return live_.load(std::memory_order_acquire);
  }
  const YcsbSpec& spec() const { return spec_; }

 private:
  struct Stream;

  YcsbDriver(object::ObjectStore* objects,
             collection::CollectionStore* collections, const YcsbSpec& spec);

  Status Load(CommitHook* hook);
  Status Attach();
  Status RunOne(Stream* stream, CommitHook* hook);
  Status DoRead(Stream* stream, uint64_t key);
  Status DoUpdate(Stream* stream, uint64_t key, CommitHook* hook);
  Status DoInsert(Stream* stream, CommitHook* hook, bool* out_of_room);
  Status DoScan(Stream* stream, uint64_t start_key);
  Status DoRmw(Stream* stream, uint64_t key, CommitHook* hook);
  OpKind PickOp(Stream* stream) const;
  uint64_t PickKey(Stream* stream) const;
  Stream* GetStream(uint64_t stream_id);
  object::ObjectId OidForKey(uint64_t key) const;
  bool use_collection() const { return spec_.mix == Mix::kE; }

  object::ObjectStore* objects_;
  collection::CollectionStore* collections_;
  const YcsbSpec spec_;
  const uint64_t capacity_;

  // Key -> oid table (object-store mixes). Entries [0, live_) are
  // published: written under mutex_, then live_ advances with a release
  // store, so lock-free readers see initialized slots.
  std::vector<object::ObjectId> oids_;
  std::atomic<uint64_t> live_{0};
  uint64_t reserved_ = 0;  // Next key to hand to an insert. Under mutex_.
  std::mutex mutex_;
  object::ObjectId directory_oid_ = object::kInvalidObjectId;

  std::shared_ptr<collection::GenericIndexer> indexer_;

  // Per-stream state, created on first use.
  std::map<uint64_t, std::unique_ptr<Stream>> streams_;
  std::mutex streams_mutex_;

  // Instruments (resolved once against the store's registry).
  common::MetricsRegistry* registry_ = nullptr;
  common::Histogram* read_us_ = nullptr;
  common::Histogram* update_us_ = nullptr;
  common::Histogram* insert_us_ = nullptr;
  common::Histogram* scan_us_ = nullptr;
  common::Histogram* rmw_us_ = nullptr;
  common::Counter* ops_ = nullptr;
  common::Counter* retries_ = nullptr;
  common::Counter* insert_skips_ = nullptr;
};

}  // namespace tdb::workload

#endif  // TDB_WORKLOAD_YCSB_H_
