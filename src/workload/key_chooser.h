#ifndef TDB_WORKLOAD_KEY_CHOOSER_H_
#define TDB_WORKLOAD_KEY_CHOOSER_H_

#include <cstdint>

#include "common/random.h"

namespace tdb::workload {

/// Uniform choice over [0, n).
class UniformChooser {
 public:
  explicit UniformChooser(uint64_t n) : n_(n) {}
  uint64_t Next(Random* rng) const { return rng->Uniform(n_); }
  void Grow(uint64_t n) {
    if (n > n_) n_ = n;
  }
  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
};

/// Zipfian choice over [0, n): rank r is drawn with probability
/// proportional to 1 / (r+1)^theta, so rank 0 is the hottest key. Uses the
/// rejection-free inversion of Gray et al., "Quickly Generating
/// Billion-Record Synthetic Databases" (SIGMOD '94): with
///   zeta(n)  = sum_{i=1..n} 1/i^theta,
///   alpha    = 1 / (1 - theta),
///   eta      = (1 - (2/n)^(1-theta)) / (1 - zeta(2)/zeta(n)),
/// a uniform u in [0,1) maps to
///   u*zeta(n) < 1           -> 0,
///   u*zeta(n) < 1 + 0.5^theta -> 1,
///   otherwise               -> floor(n * (eta*u - eta + 1)^alpha).
/// The keyspace can Grow() without replaying history: zeta extends
/// incrementally (zeta is a prefix sum), matching YCSB's insert handling.
class ZipfianChooser {
 public:
  static constexpr double kDefaultTheta = 0.99;

  explicit ZipfianChooser(uint64_t n, double theta = kDefaultTheta);

  uint64_t Next(Random* rng) const;

  /// Extends the keyspace to `n` items (no-op if not larger).
  void Grow(uint64_t n);

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zeta2_;  // zeta(2): constant per theta.
  double zetan_;  // zeta(n): extended incrementally by Grow().
  double eta_;
};

/// Zipfian rank spread over the keyspace by a 64-bit FNV-1a hash, so the
/// hottest keys are scattered instead of clustered at 0 (YCSB's
/// "scrambled zipfian"). Distinct hot ranks keep distinct hash slots with
/// overwhelming probability for workload-sized keyspaces.
class ScrambledZipfianChooser {
 public:
  explicit ScrambledZipfianChooser(uint64_t n,
                                   double theta = ZipfianChooser::kDefaultTheta)
      : inner_(n, theta) {}

  uint64_t Next(Random* rng) const;
  void Grow(uint64_t n) { inner_.Grow(n); }
  uint64_t n() const { return inner_.n(); }

 private:
  ZipfianChooser inner_;
};

/// "Latest" distribution (YCSB D): the most recently inserted key is the
/// hottest. Draws a zipfian rank r over the current keyspace and returns
/// limit-1-r, where `limit` is the caller's current insertion frontier.
class LatestChooser {
 public:
  explicit LatestChooser(uint64_t n,
                         double theta = ZipfianChooser::kDefaultTheta)
      : inner_(n, theta) {}

  uint64_t Next(Random* rng, uint64_t limit) const;
  void Grow(uint64_t n) { inner_.Grow(n); }

 private:
  ZipfianChooser inner_;
};

/// 64-bit FNV-1a of an integer key (used by the scrambler; exposed for
/// tests).
uint64_t FnvHash64(uint64_t value);

}  // namespace tdb::workload

#endif  // TDB_WORKLOAD_KEY_CHOOSER_H_
