#include "workload/ycsb.h"

#include <algorithm>
#include <string>
#include <utility>

#include "collection/indexer.h"
#include "collection/key.h"
#include "common/check.h"

namespace tdb::workload {

namespace {

constexpr const char* kCollectionName = "ycsb";
constexpr const char* kIndexName = "by-key";
constexpr const char* kDirectoryRoot = "ycsb-dir";
constexpr int kMaxRetries = 1000;

std::shared_ptr<collection::GenericIndexer> MakeYcsbIndexer() {
  return std::make_shared<
      collection::Indexer<YcsbRecord, collection::IntKey>>(
      kIndexName, collection::Uniqueness::kUnique,
      collection::IndexKind::kBTree,
      [](const YcsbRecord& rec) {
        return collection::IntKey(static_cast<int64_t>(rec.key()));
      },
      collection::KeyMutability::kImmutable);
}

}  // namespace

Buffer ValuePayload(uint64_t seed, uint32_t size) {
  Random rng(seed);
  Buffer payload;
  rng.Fill(&payload, size);
  const size_t half = payload.size() / 2;
  for (size_t i = half; i < payload.size(); i++) {
    payload[i] = payload[i - half];
  }
  return payload;
}

const char* MixName(Mix mix) {
  switch (mix) {
    case Mix::kA: return "A";
    case Mix::kB: return "B";
    case Mix::kC: return "C";
    case Mix::kD: return "D";
    case Mix::kE: return "E";
    case Mix::kF: return "F";
  }
  return "?";
}

Mix MixFromIndex(uint64_t index) {
  return static_cast<Mix>(index % kMixCount);
}

void YcsbRecord::Pickle(object::Pickler* pickler) const {
  pickler->PutUint64(key_);
  pickler->PutBytes(bytes_);
}

Status YcsbRecord::UnpickleFrom(object::Unpickler* unpickler) {
  TDB_RETURN_IF_ERROR(unpickler->GetUint64(&key_));
  return unpickler->GetBytes(&bytes_);
}

void YcsbDirectory::Pickle(object::Pickler* pickler) const {
  pickler->PutUint32(static_cast<uint32_t>(entries_.size()));
  for (const Entry& entry : entries_) {
    pickler->PutUint64(entry.key);
    pickler->PutUint64(entry.oid);
  }
}

Status YcsbDirectory::UnpickleFrom(object::Unpickler* unpickler) {
  uint32_t count = 0;
  TDB_RETURN_IF_ERROR(unpickler->GetUint32(&count));
  entries_.clear();
  entries_.reserve(count);
  for (uint32_t i = 0; i < count; i++) {
    Entry entry;
    TDB_RETURN_IF_ERROR(unpickler->GetUint64(&entry.key));
    TDB_RETURN_IF_ERROR(unpickler->GetUint64(&entry.oid));
    entries_.push_back(entry);
  }
  return Status::OK();
}

Status RegisterYcsbClasses(object::ObjectStore* os) {
  TDB_RETURN_IF_ERROR(
      os->registry().Register<YcsbRecord>(YcsbRecord::kClassId));
  return os->registry().Register<YcsbDirectory>(YcsbDirectory::kClassId);
}

Buffer YcsbRecordImage(uint64_t key, const Buffer& bytes) {
  Buffer image;
  image.reserve(8 + bytes.size());
  for (int i = 0; i < 8; i++) {
    image.push_back(static_cast<uint8_t>((key >> (i * 8)) & 0xFF));
  }
  image.insert(image.end(), bytes.begin(), bytes.end());
  return image;
}

// ---------------------------------------------------------------------------
// YcsbDriver

struct YcsbDriver::Stream {
  Random rng;
  ScrambledZipfianChooser zipf;
  LatestChooser latest;

  Stream(uint64_t seed, uint64_t n, double theta)
      : rng(seed), zipf(n, theta), latest(n, theta) {}
};

YcsbDriver::~YcsbDriver() = default;

YcsbDriver::YcsbDriver(object::ObjectStore* objects,
                       collection::CollectionStore* collections,
                       const YcsbSpec& spec)
    : objects_(objects),
      collections_(collections),
      spec_(spec),
      capacity_(spec.records +
                (spec.max_inserts != 0 ? spec.max_inserts : spec.ops)) {
  oids_.assign(capacity_, object::kInvalidObjectId);
  registry_ = objects_->metrics().get();
  const std::string prefix = std::string("workload.") + MixName(spec_.mix);
  read_us_ = registry_->GetHistogram(prefix + ".read_us");
  update_us_ = registry_->GetHistogram(prefix + ".update_us");
  insert_us_ = registry_->GetHistogram(prefix + ".insert_us");
  scan_us_ = registry_->GetHistogram(prefix + ".scan_us");
  rmw_us_ = registry_->GetHistogram(prefix + ".rmw_us");
  ops_ = registry_->GetCounter(prefix + ".ops");
  retries_ = registry_->GetCounter(prefix + ".retries");
  insert_skips_ = registry_->GetCounter(prefix + ".insert_skips");
}

Result<std::unique_ptr<YcsbDriver>> YcsbDriver::Open(
    object::ObjectStore* objects, collection::CollectionStore* collections,
    const YcsbSpec& spec, bool create, CommitHook* hook) {
  if (spec.mix == Mix::kE && collections == nullptr) {
    return Status::InvalidArgument("mix E needs a collection store");
  }
  std::unique_ptr<YcsbDriver> driver(
      new YcsbDriver(objects, collections, spec));
  if (driver->use_collection()) {
    driver->indexer_ = MakeYcsbIndexer();
    TDB_RETURN_IF_ERROR(
        collections->RegisterIndexer(kCollectionName, driver->indexer_));
  }
  if (create) {
    TDB_RETURN_IF_ERROR(driver->Load(hook));
  } else {
    TDB_RETURN_IF_ERROR(driver->Attach());
  }
  return driver;
}

Status YcsbDriver::Load(CommitHook* hook) {
  Random rng(spec_.seed * 0x9E3779B97F4A7C15ull + 1);
  if (hook != nullptr) hook->BeginCommit();
  Status status;
  if (use_collection()) {
    collection::CTransaction ct(collections_);
    Result<object::WritableRef<collection::Collection>> coll =
        ct.CreateCollection(kCollectionName, indexer_);
    if (!coll.ok()) {
      if (hook != nullptr) hook->EndCommit(false, true);
      return coll.status();
    }
    for (uint64_t key = 0; key < spec_.records; key++) {
      Buffer payload = ValuePayload(rng.Next(), spec_.value_bytes);
      Result<object::ObjectId> inserted = coll.value()->Insert(
          &ct, std::make_unique<YcsbRecord>(key, payload));
      if (!inserted.ok()) {
        if (hook != nullptr) hook->EndCommit(false, true);
        return inserted.status();
      }
      oids_[key] = inserted.value();
      if (hook != nullptr) {
        hook->PendingWrite(key, YcsbRecordImage(key, payload));
      }
    }
    status = ct.Commit(true);
  } else {
    object::Transaction txn(objects_);
    auto directory = std::make_unique<YcsbDirectory>();
    for (uint64_t key = 0; key < spec_.records; key++) {
      Buffer payload = ValuePayload(rng.Next(), spec_.value_bytes);
      Result<object::ObjectId> inserted =
          txn.Insert(std::make_unique<YcsbRecord>(key, payload));
      if (!inserted.ok()) {
        if (hook != nullptr) hook->EndCommit(false, true);
        return inserted.status();
      }
      oids_[key] = inserted.value();
      directory->Append(key, inserted.value());
      if (hook != nullptr) {
        hook->PendingWrite(key, YcsbRecordImage(key, payload));
      }
    }
    Result<object::ObjectId> dir = txn.Insert(std::move(directory));
    if (!dir.ok()) {
      if (hook != nullptr) hook->EndCommit(false, true);
      return dir.status();
    }
    directory_oid_ = dir.value();
    // Anchor the directory BEFORE the commit: if the root write survives a
    // crash but the commit does not, the root points at a missing object
    // and Attach/Scan correctly see an empty table (boundary 0).
    Status anchored = objects_->SetNamedRoot(kDirectoryRoot, directory_oid_);
    if (!anchored.ok()) {
      if (hook != nullptr) hook->EndCommit(false, true);
      return anchored;
    }
    status = txn.Commit(true);
  }
  if (hook != nullptr) hook->EndCommit(status.ok(), true);
  TDB_RETURN_IF_ERROR(status);
  reserved_ = spec_.records;
  live_.store(spec_.records, std::memory_order_release);
  return Status::OK();
}

Status YcsbDriver::Attach() {
  if (use_collection()) {
    std::map<uint64_t, Buffer> state;
    TDB_RETURN_IF_ERROR(Scan(&state));
    uint64_t count = state.size();
    reserved_ = count;
    live_.store(count, std::memory_order_release);
    return Status::OK();
  }
  TDB_ASSIGN_OR_RETURN(object::ObjectId dir_oid,
                       objects_->GetNamedRoot(kDirectoryRoot));
  if (dir_oid == object::kInvalidObjectId) return Status::OK();  // Empty.
  object::ReadTransaction txn(objects_);
  Result<std::unique_ptr<YcsbDirectory>> directory =
      txn.Take<YcsbDirectory>(dir_oid);
  if (!directory.ok()) {
    // Root anchored but the directory commit never landed: empty table.
    if (directory.status().IsNotFound()) return Status::OK();
    return directory.status();
  }
  directory_oid_ = dir_oid;
  uint64_t contiguous = 0;
  for (const YcsbDirectory::Entry& entry : directory.value()->entries()) {
    if (entry.key >= capacity_) {
      return Status::Corruption("directory key beyond driver capacity");
    }
    oids_[entry.key] = entry.oid;
  }
  while (contiguous < capacity_ &&
         oids_[contiguous] != object::kInvalidObjectId) {
    contiguous++;
  }
  reserved_ = contiguous;
  live_.store(contiguous, std::memory_order_release);
  return Status::OK();
}

object::ObjectId YcsbDriver::OidForKey(uint64_t key) const {
  TDB_DCHECK(key < capacity_, "key out of range");
  return oids_[key];
}

YcsbDriver::Stream* YcsbDriver::GetStream(uint64_t stream_id) {
  std::lock_guard<std::mutex> lock(streams_mutex_);
  auto it = streams_.find(stream_id);
  if (it != streams_.end()) return it->second.get();
  uint64_t n = std::max<uint64_t>(1, live_.load(std::memory_order_acquire));
  auto stream = std::make_unique<Stream>(
      spec_.seed * 0x2545F4914F6CDD1Dull + stream_id * 0x9E3779B9ull + 17, n,
      spec_.theta);
  Stream* raw = stream.get();
  streams_[stream_id] = std::move(stream);
  return raw;
}

OpKind YcsbDriver::PickOp(Stream* stream) const {
  const uint64_t u = stream->rng.Uniform(100);
  switch (spec_.mix) {
    case Mix::kA: return u < 50 ? OpKind::kRead : OpKind::kUpdate;
    case Mix::kB: return u < 95 ? OpKind::kRead : OpKind::kUpdate;
    case Mix::kC: return OpKind::kRead;
    case Mix::kD: return u < 95 ? OpKind::kRead : OpKind::kInsert;
    case Mix::kE: return u < 95 ? OpKind::kScan : OpKind::kInsert;
    case Mix::kF: return u < 50 ? OpKind::kRead : OpKind::kReadModifyWrite;
  }
  return OpKind::kRead;
}

uint64_t YcsbDriver::PickKey(Stream* stream) const {
  const uint64_t live = live_.load(std::memory_order_acquire);
  if (spec_.mix == Mix::kD) {
    stream->latest.Grow(live);
    return stream->latest.Next(&stream->rng, live);
  }
  stream->zipf.Grow(live);
  uint64_t key = stream->zipf.Next(&stream->rng);
  return key < live ? key : key % live;
}

Status YcsbDriver::Run(uint64_t stream, CommitHook* hook) {
  return RunOps(stream, spec_.ops, hook);
}

Status YcsbDriver::RunOps(uint64_t stream_id, uint64_t count,
                          CommitHook* hook) {
  Stream* stream = GetStream(stream_id);
  for (uint64_t i = 0; i < count; i++) {
    TDB_RETURN_IF_ERROR(RunOne(stream, hook));
  }
  return Status::OK();
}

Status YcsbDriver::RunOne(Stream* stream, CommitHook* hook) {
  ops_->Increment();
  OpKind op = PickOp(stream);
  const uint64_t live = live_.load(std::memory_order_acquire);
  if (live == 0 && op != OpKind::kInsert) {
    // Nothing to read yet: only inserts are meaningful.
    if (spec_.mix != Mix::kD && spec_.mix != Mix::kE) return Status::OK();
    op = OpKind::kInsert;
  }
  switch (op) {
    case OpKind::kRead: {
      common::ScopedTimer timer(registry_, read_us_);
      return DoRead(stream, PickKey(stream));
    }
    case OpKind::kUpdate: {
      common::ScopedTimer timer(registry_, update_us_);
      return DoUpdate(stream, PickKey(stream), hook);
    }
    case OpKind::kInsert: {
      bool out_of_room = false;
      {
        common::ScopedTimer timer(registry_, insert_us_);
        TDB_RETURN_IF_ERROR(DoInsert(stream, hook, &out_of_room));
      }
      if (out_of_room) {
        insert_skips_->Increment();
        if (live_.load(std::memory_order_acquire) == 0) return Status::OK();
        if (use_collection()) {
          common::ScopedTimer timer(registry_, scan_us_);
          return DoScan(stream, PickKey(stream));
        }
        common::ScopedTimer timer(registry_, read_us_);
        return DoRead(stream, PickKey(stream));
      }
      return Status::OK();
    }
    case OpKind::kScan: {
      common::ScopedTimer timer(registry_, scan_us_);
      return DoScan(stream, PickKey(stream));
    }
    case OpKind::kReadModifyWrite: {
      common::ScopedTimer timer(registry_, rmw_us_);
      return DoRmw(stream, PickKey(stream), hook);
    }
  }
  return Status::OK();
}

Status YcsbDriver::DoRead(Stream* stream, uint64_t key) {
  (void)stream;
  object::ReadTransaction txn(objects_);
  TDB_ASSIGN_OR_RETURN(object::ReadonlyRef<YcsbRecord> rec,
                       txn.Open<YcsbRecord>(OidForKey(key)));
  if (rec->key() != key) {
    return Status::Corruption("record key mismatch: directory says " +
                              std::to_string(key) + ", record says " +
                              std::to_string(rec->key()));
  }
  return Status::OK();
}

Status YcsbDriver::DoUpdate(Stream* stream, uint64_t key, CommitHook* hook) {
  const uint64_t payload_seed = stream->rng.Next();
  const bool durable = stream->rng.Bernoulli(spec_.p_durable);
  Buffer payload = ValuePayload(payload_seed, spec_.value_bytes);
  for (int attempt = 0; attempt < kMaxRetries; attempt++) {
    if (hook != nullptr) hook->BeginCommit();
    object::Transaction txn(objects_);
    Result<object::WritableRef<YcsbRecord>> rec =
        txn.OpenWritable<YcsbRecord>(OidForKey(key));
    Status status = rec.ok() ? Status::OK() : rec.status();
    if (status.ok()) {
      rec.value()->set_bytes(payload);
      if (hook != nullptr) {
        hook->PendingWrite(key, YcsbRecordImage(key, payload));
      }
      status = txn.Commit(durable);
    }
    if (hook != nullptr) hook->EndCommit(status.ok(), durable);
    if (status.IsLockTimeout()) {
      retries_->Increment();
      continue;
    }
    return status;
  }
  return Status::LockTimeout("update retries exhausted");
}

Status YcsbDriver::DoInsert(Stream* stream, CommitHook* hook,
                            bool* out_of_room) {
  uint64_t key = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (reserved_ >= capacity_) {
      *out_of_room = true;
      return Status::OK();
    }
    key = reserved_++;
  }
  const uint64_t payload_seed = stream->rng.Next();
  const bool durable = stream->rng.Bernoulli(spec_.p_durable);
  Buffer payload = ValuePayload(payload_seed, spec_.value_bytes);
  for (int attempt = 0; attempt < kMaxRetries; attempt++) {
    if (hook != nullptr) hook->BeginCommit();
    Status status;
    object::ObjectId oid = object::kInvalidObjectId;
    if (use_collection()) {
      collection::CTransaction ct(collections_);
      Result<object::WritableRef<collection::Collection>> coll =
          ct.WriteCollection(kCollectionName);
      status = coll.ok() ? Status::OK() : coll.status();
      if (status.ok()) {
        Result<object::ObjectId> inserted = coll.value()->Insert(
            &ct, std::make_unique<YcsbRecord>(key, payload));
        status = inserted.ok() ? Status::OK() : inserted.status();
        if (status.ok()) {
          oid = inserted.value();
          if (hook != nullptr) {
            hook->PendingWrite(key, YcsbRecordImage(key, payload));
          }
          status = ct.Commit(durable);
        }
      }
    } else {
      object::Transaction txn(objects_);
      Result<object::ObjectId> inserted =
          txn.Insert(std::make_unique<YcsbRecord>(key, payload));
      status = inserted.ok() ? Status::OK() : inserted.status();
      if (status.ok()) {
        Result<object::WritableRef<YcsbDirectory>> dir =
            txn.OpenWritable<YcsbDirectory>(directory_oid_);
        status = dir.ok() ? Status::OK() : dir.status();
        if (status.ok()) {
          oid = inserted.value();
          dir.value()->Append(key, oid);
          if (hook != nullptr) {
            hook->PendingWrite(key, YcsbRecordImage(key, payload));
          }
          status = txn.Commit(durable);
        }
      }
    }
    if (hook != nullptr) hook->EndCommit(status.ok(), durable);
    if (status.IsLockTimeout()) {
      retries_->Increment();
      continue;
    }
    if (status.ok()) {
      std::lock_guard<std::mutex> lock(mutex_);
      oids_[key] = oid;
      uint64_t next = live_.load(std::memory_order_relaxed);
      while (next < capacity_ && oids_[next] != object::kInvalidObjectId) {
        next++;
      }
      live_.store(next, std::memory_order_release);
    }
    return status;
  }
  return Status::LockTimeout("insert retries exhausted");
}

Status YcsbDriver::DoScan(Stream* stream, uint64_t start_key) {
  const uint32_t scan_len =
      1 + static_cast<uint32_t>(stream->rng.Uniform(spec_.max_scan_len));
  for (int attempt = 0; attempt < kMaxRetries; attempt++) {
    collection::CTransaction ct(collections_);
    Result<object::ReadonlyRef<collection::Collection>> coll =
        ct.ReadCollection(kCollectionName);
    Status status = coll.ok() ? Status::OK() : coll.status();
    if (status.ok()) {
      collection::IntKey min(static_cast<int64_t>(start_key));
      Result<std::unique_ptr<collection::Iterator>> query =
          coll.value()->Query(&ct, *indexer_, &min, nullptr);
      status = query.ok() ? Status::OK() : query.status();
      if (status.ok()) {
        std::unique_ptr<collection::Iterator> it = std::move(query).value();
        int64_t last_key = -1;
        for (uint32_t i = 0; status.ok() && i < scan_len && !it->end();
             i++, it->Next()) {
          Result<object::ReadonlyRef<YcsbRecord>> rec = it->Read<YcsbRecord>();
          status = rec.ok() ? Status::OK() : rec.status();
          if (status.ok()) {
            int64_t key = static_cast<int64_t>(rec.value()->key());
            if (key < static_cast<int64_t>(start_key) || key <= last_key) {
              status = Status::Corruption(
                  "scan out of order: key " + std::to_string(key) +
                  " after " + std::to_string(last_key));
            }
            last_key = key;
          }
        }
        Status closed = it->Close();
        if (status.ok()) status = closed;
      }
    }
    Status aborted = ct.Abort();
    if (status.ok()) status = aborted;
    if (status.IsLockTimeout()) {
      retries_->Increment();
      continue;
    }
    return status;
  }
  return Status::LockTimeout("scan retries exhausted");
}

Status YcsbDriver::DoRmw(Stream* stream, uint64_t key, CommitHook* hook) {
  const uint64_t payload_seed = stream->rng.Next();
  const bool durable = stream->rng.Bernoulli(spec_.p_durable);
  for (int attempt = 0; attempt < kMaxRetries; attempt++) {
    if (hook != nullptr) hook->BeginCommit();
    object::Transaction txn(objects_);
    Result<object::WritableRef<YcsbRecord>> rec =
        txn.OpenWritable<YcsbRecord>(OidForKey(key));
    Status status = rec.ok() ? Status::OK() : rec.status();
    if (status.ok()) {
      // The "modify" derives from the read value, making this a true RMW
      // (still deterministic in single-stream runs: the old value is).
      const Buffer& old = rec.value()->bytes();
      const uint64_t mixed =
          payload_seed ^ (old.empty() ? 0 : FnvHash64(old[0] + old.size()));
      Buffer payload = ValuePayload(mixed, spec_.value_bytes);
      rec.value()->set_bytes(payload);
      if (hook != nullptr) {
        hook->PendingWrite(key, YcsbRecordImage(key, payload));
      }
      status = txn.Commit(durable);
    }
    if (hook != nullptr) hook->EndCommit(status.ok(), durable);
    if (status.IsLockTimeout()) {
      retries_->Increment();
      continue;
    }
    return status;
  }
  return Status::LockTimeout("read-modify-write retries exhausted");
}

Status YcsbDriver::Scan(std::map<uint64_t, Buffer>* out) {
  out->clear();
  if (use_collection()) {
    collection::CTransaction ct(collections_);
    Result<object::ReadonlyRef<collection::Collection>> coll =
        ct.ReadCollection(kCollectionName);
    if (!coll.ok()) {
      // Never created: legitimately empty (e.g. crash before the load).
      if (coll.status().IsNotFound()) return ct.Abort();
      return coll.status();
    }
    TDB_ASSIGN_OR_RETURN(std::unique_ptr<collection::Iterator> it,
                         coll.value()->Query(&ct, *indexer_));
    for (; !it->end(); it->Next()) {
      Result<object::ReadonlyRef<YcsbRecord>> rec = it->Read<YcsbRecord>();
      if (!rec.ok()) return rec.status();
      uint64_t key = rec.value()->key();
      if (out->count(key) > 0) {
        return Status::Corruption("duplicate key " + std::to_string(key) +
                                  " in collection scan");
      }
      (*out)[key] = YcsbRecordImage(key, rec.value()->bytes());
    }
    TDB_RETURN_IF_ERROR(it->Close());
    return ct.Abort();
  }
  const uint64_t live = live_.load(std::memory_order_acquire);
  object::ReadTransaction txn(objects_);
  for (uint64_t key = 0; key < live; key++) {
    TDB_ASSIGN_OR_RETURN(object::ReadonlyRef<YcsbRecord> rec,
                         txn.Open<YcsbRecord>(oids_[key]));
    if (rec->key() != key) {
      return Status::Corruption("record key mismatch in scan at key " +
                                std::to_string(key));
    }
    (*out)[key] = YcsbRecordImage(key, rec->bytes());
  }
  return Status::OK();
}

}  // namespace tdb::workload
