#include <gtest/gtest.h>

#include <string>

#include "common/coding.h"
#include "common/random.h"
#include "crypto/accel.h"
#include "crypto/aes.h"
#include "crypto/cbc.h"
#include "crypto/cipher_suite.h"
#include "crypto/des.h"
#include "crypto/drbg.h"
#include "crypto/hash.h"
#include "crypto/hmac.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"

namespace tdb::crypto {
namespace {

Buffer FromHex(const std::string& hex) {
  Buffer out;
  for (size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(
        static_cast<uint8_t>(std::stoi(hex.substr(i, 2), nullptr, 16)));
  }
  return out;
}

// ---------------------------------------------------------------- SHA-1

TEST(Sha1Test, FipsVectors) {
  EXPECT_EQ(Hash(HashKind::kSha1, Slice("")).ToHex(),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(Hash(HashKind::kSha1, Slice("abc")).ToHex(),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(
      Hash(HashKind::kSha1,
           Slice("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))
          .ToHex(),
      "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, MillionAs) {
  Sha1 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; i++) h.Update(Slice(chunk));
  EXPECT_EQ(h.Finish().ToHex(), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Test, IncrementalMatchesOneShot) {
  std::string msg = "The quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= msg.size(); split++) {
    Sha1 h;
    h.Update(Slice(msg.substr(0, split)));
    h.Update(Slice(msg.substr(split)));
    EXPECT_EQ(h.Finish(), Hash(HashKind::kSha1, Slice(msg))) << split;
  }
}

TEST(Sha1Test, PaddingBoundaries) {
  // Lengths straddling the 55/56/63/64-byte padding edges must not crash
  // and must be distinct.
  Digest prev;
  for (size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 127u, 128u}) {
    std::string msg(len, 'x');
    Digest d = Hash(HashKind::kSha1, Slice(msg));
    EXPECT_NE(d, prev);
    prev = d;
  }
}

// -------------------------------------------------------------- SHA-256

TEST(Sha256Test, FipsVectors) {
  EXPECT_EQ(
      Hash(HashKind::kSha256, Slice("")).ToHex(),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(
      Hash(HashKind::kSha256, Slice("abc")).ToHex(),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      Hash(HashKind::kSha256,
           Slice("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))
          .ToHex(),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; i++) h.Update(Slice(chunk));
  EXPECT_EQ(h.Finish().ToHex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, ResetReusesHasher) {
  Sha256 h;
  h.Update(Slice("garbage"));
  h.Reset();
  h.Update(Slice("abc"));
  EXPECT_EQ(h.Finish().ToHex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// ----------------------------------------------------------------- HMAC

TEST(HmacTest, Rfc2202Sha1Vectors) {
  Buffer key1(20, 0x0b);
  EXPECT_EQ(Hmac::Mac(HashKind::kSha1, key1, Slice("Hi There")).ToHex(),
            "b617318655057264e28bc0b6fb378c8ef146be00");
  EXPECT_EQ(Hmac::Mac(HashKind::kSha1, Slice("Jefe"),
                      Slice("what do ya want for nothing?"))
                .ToHex(),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

TEST(HmacTest, Rfc4231Sha256Vectors) {
  Buffer key1(20, 0x0b);
  EXPECT_EQ(
      Hmac::Mac(HashKind::kSha256, key1, Slice("Hi There")).ToHex(),
      "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
  EXPECT_EQ(
      Hmac::Mac(HashKind::kSha256, Slice("Jefe"),
                Slice("what do ya want for nothing?"))
          .ToHex(),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, LongKeyIsHashedFirst) {
  Buffer long_key(150, 0xaa);
  // Must not crash and must differ from using the truncated key directly.
  Digest a = Hmac::Mac(HashKind::kSha256, long_key, Slice("data"));
  Digest b = Hmac::Mac(HashKind::kSha256, Slice(long_key.data(), 64),
                       Slice("data"));
  EXPECT_NE(a, b);
}

TEST(HmacTest, KeySensitivity) {
  EXPECT_NE(Hmac::Mac(HashKind::kSha1, Slice("key1"), Slice("msg")),
            Hmac::Mac(HashKind::kSha1, Slice("key2"), Slice("msg")));
}

// ------------------------------------------------------------------ DES

TEST(DesTest, ClassicWorkedExample) {
  Des des(FromHex("133457799bbcdff1"));
  Buffer pt = FromHex("0123456789abcdef");
  uint8_t ct[8];
  des.EncryptBlock(pt.data(), ct);
  EXPECT_EQ(ToHex(Slice(ct, 8)), "85e813540f0ab405");
  uint8_t back[8];
  des.DecryptBlock(ct, back);
  EXPECT_EQ(ToHex(Slice(back, 8)), "0123456789abcdef");
}

TEST(DesTest, NbsZeroVector) {
  Des des(FromHex("0101010101010101"));
  Buffer pt = FromHex("0000000000000000");
  uint8_t ct[8];
  des.EncryptBlock(pt.data(), ct);
  EXPECT_EQ(ToHex(Slice(ct, 8)), "8ca64de9c1b123a7");
}

TEST(TripleDesTest, DegeneratesToDesWithEqualKeys) {
  Buffer key = FromHex("133457799bbcdff1");
  Buffer triple_key;
  for (int i = 0; i < 3; i++)
    triple_key.insert(triple_key.end(), key.begin(), key.end());
  TripleDes tdes(triple_key);
  Des des(key);
  Buffer pt = FromHex("0123456789abcdef");
  uint8_t ct3[8], ct1[8];
  tdes.EncryptBlock(pt.data(), ct3);
  des.EncryptBlock(pt.data(), ct1);
  EXPECT_EQ(ToHex(Slice(ct3, 8)), ToHex(Slice(ct1, 8)));
}

TEST(TripleDesTest, RoundtripRandomKeysAndBlocks) {
  Random rng(42);
  for (int trial = 0; trial < 50; trial++) {
    Buffer key, pt;
    rng.Fill(&key, TripleDes::kKeySize);
    rng.Fill(&pt, 8);
    TripleDes tdes(key);
    uint8_t ct[8], back[8];
    tdes.EncryptBlock(pt.data(), ct);
    tdes.DecryptBlock(ct, back);
    EXPECT_EQ(ToHex(Slice(back, 8)), ToHex(Slice(pt)));
    EXPECT_NE(ToHex(Slice(ct, 8)), ToHex(Slice(pt)));  // Sanity.
  }
}

// ------------------------------------------------------------------ AES

TEST(Aes128Test, Fips197AppendixC) {
  Aes128 aes(FromHex("000102030405060708090a0b0c0d0e0f"));
  Buffer pt = FromHex("00112233445566778899aabbccddeeff");
  uint8_t ct[16];
  aes.EncryptBlock(pt.data(), ct);
  EXPECT_EQ(ToHex(Slice(ct, 16)), "69c4e0d86a7b0430d8cdb78070b4c55a");
  uint8_t back[16];
  aes.DecryptBlock(ct, back);
  EXPECT_EQ(ToHex(Slice(back, 16)), "00112233445566778899aabbccddeeff");
}

TEST(Aes128Test, Fips197AppendixB) {
  Aes128 aes(FromHex("2b7e151628aed2a6abf7158809cf4f3c"));
  Buffer pt = FromHex("3243f6a8885a308d313198a2e0370734");
  uint8_t ct[16];
  aes.EncryptBlock(pt.data(), ct);
  EXPECT_EQ(ToHex(Slice(ct, 16)), "3925841d02dc09fbdc118597196a0b32");
}

TEST(Aes128Test, RoundtripRandom) {
  Random rng(43);
  for (int trial = 0; trial < 50; trial++) {
    Buffer key, pt;
    rng.Fill(&key, Aes128::kKeySize);
    rng.Fill(&pt, 16);
    Aes128 aes(key);
    uint8_t ct[16], back[16];
    aes.EncryptBlock(pt.data(), ct);
    aes.DecryptBlock(ct, back);
    EXPECT_EQ(ToHex(Slice(back, 16)), ToHex(Slice(pt)));
  }
}

// ------------------------------------------------------------------ CBC

class CbcSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CbcSizeTest, RoundtripBothCiphers) {
  size_t size = GetParam();
  Random rng(size + 1);
  Buffer plain;
  rng.Fill(&plain, size);

  for (CipherKind kind : {CipherKind::kDes3, CipherKind::kAes128}) {
    Buffer key, iv;
    rng.Fill(&key, CipherKeySize(kind));
    auto cipher = NewBlockCipher(kind, key);
    rng.Fill(&iv, cipher->block_size());

    Buffer ct = CbcEncrypt(*cipher, iv, plain);
    EXPECT_EQ(ct.size(), CbcCiphertextSize(*cipher, size));
    EXPECT_EQ(ct.size() % cipher->block_size(), 0u);

    auto back = CbcDecrypt(*cipher, iv, ct);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(*back, plain);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CbcSizeTest,
                         ::testing::Values(0, 1, 7, 8, 9, 15, 16, 17, 100,
                                           255, 256, 1000, 4096));

TEST(CbcTest, RejectsUnalignedCiphertext) {
  Buffer key(16, 1);
  Aes128 aes(key);
  Buffer iv(16, 2);
  Buffer bad(17, 3);
  EXPECT_TRUE(CbcDecrypt(aes, iv, bad).status().IsCorruption());
  Buffer empty;
  EXPECT_TRUE(CbcDecrypt(aes, iv, empty).status().IsCorruption());
}

TEST(CbcTest, WrongIvCorruptsFirstBlockOnly) {
  Buffer key(16, 1), iv(16, 2), iv2(16, 3);
  Aes128 aes(key);
  Buffer plain(48, 0x55);
  Buffer ct = CbcEncrypt(aes, iv, plain);
  auto back = CbcDecrypt(aes, iv2, ct);
  // Either padding failure or a differing first block; never equality.
  if (back.ok()) {
    EXPECT_NE(*back, plain);
  }
}

// --------------------------------------------------------------- DRBG

TEST(DrbgTest, DeterministicFromSeed) {
  CtrDrbg a(Slice("seed")), b(Slice("seed")), c(Slice("other"));
  Buffer ba = a.Generate(100), bb = b.Generate(100), bc = c.Generate(100);
  EXPECT_EQ(ba, bb);
  EXPECT_NE(ba, bc);
}

TEST(DrbgTest, StreamAdvances) {
  CtrDrbg d(Slice("seed"));
  Buffer first = d.Generate(32), second = d.Generate(32);
  EXPECT_NE(first, second);
}

// --------------------------------------------------------- CipherSuite

TEST(CipherSuiteTest, SealOpenRoundtrip) {
  for (auto config : {SecurityConfig::PaperTdbS(), SecurityConfig::Modern()}) {
    CipherSuite suite(config, Slice("master-secret"), Slice("iv-seed"));
    Buffer plain;
    Random rng(7);
    rng.Fill(&plain, 333);
    Buffer sealed = suite.Seal(plain);
    EXPECT_EQ(sealed.size(), suite.SealedSize(plain.size()));
    EXPECT_NE(sealed, plain);
    auto back = suite.Open(sealed);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, plain);
  }
}

TEST(CipherSuiteTest, DisabledIsPassThrough) {
  CipherSuite suite(SecurityConfig::Disabled(), Slice(""), Slice(""));
  EXPECT_FALSE(suite.enabled());
  EXPECT_EQ(suite.hash_size(), 0u);
  Buffer plain = {1, 2, 3};
  Buffer sealed = suite.Seal(plain);
  EXPECT_EQ(sealed, plain);
  auto back = suite.Open(sealed);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, plain);
  EXPECT_EQ(suite.HashData(plain).size(), 0u);
}

TEST(CipherSuiteTest, DifferentSecretsCannotOpen) {
  CipherSuite a(SecurityConfig::Modern(), Slice("secret-a"), Slice("iv"));
  CipherSuite b(SecurityConfig::Modern(), Slice("secret-b"), Slice("iv"));
  Buffer plain(100, 0x42);
  Buffer sealed = a.Seal(plain);
  auto opened = b.Open(sealed);
  // Wrong key: padding check usually fails; if it passes by chance the
  // plaintext must differ.
  if (opened.ok()) {
    EXPECT_NE(*opened, plain);
  }
}

TEST(CipherSuiteTest, MacIsKeyedAndDeterministic) {
  CipherSuite a(SecurityConfig::Modern(), Slice("secret-a"), Slice("iv"));
  CipherSuite a2(SecurityConfig::Modern(), Slice("secret-a"), Slice("iv2"));
  CipherSuite b(SecurityConfig::Modern(), Slice("secret-b"), Slice("iv"));
  EXPECT_EQ(a.Mac(Slice("anchor")), a2.Mac(Slice("anchor")));
  EXPECT_NE(a.Mac(Slice("anchor")), b.Mac(Slice("anchor")));
  EXPECT_NE(a.Mac(Slice("anchor")), a.Mac(Slice("anchor2")));
}

TEST(CipherSuiteTest, SealIsRandomizedPerCall) {
  CipherSuite suite(SecurityConfig::Modern(), Slice("s"), Slice("iv"));
  Buffer plain(64, 0x11);
  // Fresh IV per Seal: identical plaintexts produce different ciphertexts,
  // which is what makes the paper's traffic-analysis point work.
  EXPECT_NE(suite.Seal(plain), suite.Seal(plain));
}

TEST(CipherSuiteTest, HashMatchesUnderlyingAlgorithm) {
  CipherSuite suite(SecurityConfig::PaperTdbS(), Slice("s"), Slice("iv"));
  EXPECT_EQ(suite.HashData(Slice("abc")),
            Hash(HashKind::kSha1, Slice("abc")));
  EXPECT_EQ(suite.hash_size(), 20u);
}

// ------------------------------------------------- hardware dispatch

// Flips the runtime dispatch switch for a scope. On machines without the
// ISA extensions both settings resolve to the portable path, so these
// tests degrade to portable-vs-portable and still pass — that is exactly
// the CI forced-portable story.
class ScopedAccel {
 public:
  explicit ScopedAccel(bool on) { accel::SetEnabledForTesting(on); }
  ~ScopedAccel() { accel::SetEnabledForTesting(true); }
};

TEST(AccelTest, OverrideForcesPortableDispatch) {
  {
    ScopedAccel off(false);
    EXPECT_FALSE(accel::AesEnabled());
    EXPECT_FALSE(accel::ShaEnabled());
  }
  // Restored: enabled iff the CPU actually has the extensions.
  EXPECT_EQ(accel::AesEnabled(), accel::CpuSupportsAes());
  EXPECT_EQ(accel::ShaEnabled(), accel::CpuSupportsSha());
}

// Every SHA vector the suite checks, hashed under both dispatch modes —
// including splits that exercise the buffered-partial-block path around
// the multi-block fast path.
TEST(AccelTest, ShaIdenticalAcrossDispatch) {
  std::string long_msg;
  Random rng(2026);
  for (int i = 0; i < 5000; i++) long_msg.push_back(static_cast<char>(rng.Next()));
  const std::string msgs[] = {
      "", "abc", "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      std::string(55, 'x'), std::string(56, 'x'), std::string(64, 'x'),
      std::string(65, 'x'), std::string(1000, 'a'), long_msg};
  for (HashKind kind : {HashKind::kSha1, HashKind::kSha256}) {
    for (const std::string& msg : msgs) {
      Digest hw, sw;
      {
        ScopedAccel on(true);
        hw = Hash(kind, Slice(msg));
      }
      {
        ScopedAccel off(false);
        sw = Hash(kind, Slice(msg));
      }
      EXPECT_EQ(hw, sw) << "len " << msg.size();
      for (size_t split : {size_t{1}, size_t{63}, size_t{64}, size_t{100}}) {
        if (split > msg.size()) continue;
        ScopedAccel on(true);
        Sha256 h256;
        Sha1 h1;
        Hasher& h = (kind == HashKind::kSha1) ? static_cast<Hasher&>(h1)
                                              : static_cast<Hasher&>(h256);
        h.Update(Slice(msg.substr(0, split)));
        h.Update(Slice(msg.substr(split)));
        EXPECT_EQ(h.Finish(), sw) << "split " << split;
      }
    }
  }
}

TEST(AccelTest, AesBlockIdenticalAcrossDispatch) {
  Random rng(77);
  for (int trial = 0; trial < 50; trial++) {
    Buffer key, pt;
    rng.Fill(&key, Aes128::kKeySize);
    rng.Fill(&pt, 16);
    Aes128 aes(key);
    uint8_t hw_ct[16], sw_ct[16], hw_back[16], sw_back[16];
    {
      ScopedAccel on(true);
      aes.EncryptBlock(pt.data(), hw_ct);
    }
    {
      ScopedAccel off(false);
      aes.EncryptBlock(pt.data(), sw_ct);
      // Cross-mode: decrypt the hardware ciphertext on the portable path.
      aes.DecryptBlock(hw_ct, sw_back);
    }
    {
      ScopedAccel on(true);
      aes.DecryptBlock(sw_ct, hw_back);
    }
    EXPECT_EQ(ToHex(Slice(hw_ct, 16)), ToHex(Slice(sw_ct, 16)));
    EXPECT_EQ(ToHex(Slice(hw_back, 16)), ToHex(Slice(pt)));
    EXPECT_EQ(ToHex(Slice(sw_back, 16)), ToHex(Slice(pt)));
  }
}

TEST(AccelTest, CbcIdenticalAcrossDispatch) {
  Random rng(78);
  for (size_t size : {0u, 1u, 15u, 16u, 17u, 100u, 255u, 256u, 1000u, 4096u}) {
    Buffer key, iv, plain;
    rng.Fill(&key, Aes128::kKeySize);
    rng.Fill(&plain, size);
    Aes128 aes(key);
    rng.Fill(&iv, aes.block_size());
    Buffer hw_ct, sw_ct;
    {
      ScopedAccel on(true);
      hw_ct = CbcEncrypt(aes, iv, plain);
    }
    {
      ScopedAccel off(false);
      sw_ct = CbcEncrypt(aes, iv, plain);
      auto back = CbcDecrypt(aes, iv, hw_ct);  // Cross-mode decrypt.
      ASSERT_TRUE(back.ok()) << size;
      EXPECT_EQ(*back, plain) << size;
    }
    EXPECT_EQ(hw_ct, sw_ct) << size;
    ScopedAccel on(true);
    auto back = CbcDecrypt(aes, iv, sw_ct);
    ASSERT_TRUE(back.ok()) << size;
    EXPECT_EQ(*back, plain) << size;
  }
}

TEST(AccelTest, SuiteSealedUnderHardwareOpensUnderPortable) {
  // End-to-end cross-compatibility: a chunk sealed with hardware crypto
  // must open on a portable-only machine, and vice versa — the on-disk
  // format cannot depend on dispatch.
  for (auto config : {SecurityConfig::PaperTdbS(), SecurityConfig::Modern()}) {
    Buffer plain;
    Random rng(9);
    rng.Fill(&plain, 777);
    Buffer sealed_hw, sealed_sw;
    {
      ScopedAccel on(true);
      CipherSuite suite(config, Slice("master"), Slice("iv-seed"));
      sealed_hw = suite.Seal(plain);
    }
    {
      ScopedAccel off(false);
      CipherSuite suite(config, Slice("master"), Slice("iv-seed"));
      sealed_sw = suite.Seal(plain);
      // Same secret, same DRBG seed, same draw sequence: the sealed bytes
      // must match exactly (the DRBG itself runs on AES).
      EXPECT_EQ(sealed_hw, sealed_sw);
      auto opened = suite.Open(sealed_hw);
      ASSERT_TRUE(opened.ok());
      EXPECT_EQ(*opened, plain);
    }
    ScopedAccel on(true);
    CipherSuite suite(config, Slice("master"), Slice("iv-seed"));
    auto opened = suite.Open(sealed_sw);
    ASSERT_TRUE(opened.ok());
    EXPECT_EQ(*opened, plain);
  }
}

}  // namespace
}  // namespace tdb::crypto
