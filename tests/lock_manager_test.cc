// Direct unit tests of the strict-2PL lock manager (§4.2.3); the
// transactional suites cover it end to end, these pin the table mechanics.

#include "object/lock_manager.h"

#include <gtest/gtest.h>

#include <thread>

namespace tdb::object {
namespace {

using namespace std::chrono_literals;

class LockManagerTest : public ::testing::Test {
 protected:
  Status Lock(TxnId txn, ObjectId oid, bool exclusive,
              std::chrono::milliseconds timeout = 50ms) {
    std::unique_lock<std::mutex> guard(mutex_);
    return locks_.Lock(txn, oid, exclusive, guard, timeout);
  }

  std::mutex mutex_;
  LockManager locks_;
};

TEST_F(LockManagerTest, SharedLocksCoexist) {
  ASSERT_TRUE(Lock(1, 100, false).ok());
  ASSERT_TRUE(Lock(2, 100, false).ok());
  EXPECT_TRUE(locks_.HoldsShared(1, 100));
  EXPECT_TRUE(locks_.HoldsShared(2, 100));
}

TEST_F(LockManagerTest, ExclusiveExcludesEverything) {
  ASSERT_TRUE(Lock(1, 100, true).ok());
  EXPECT_TRUE(Lock(2, 100, false).IsLockTimeout());
  EXPECT_TRUE(Lock(2, 100, true).IsLockTimeout());
}

TEST_F(LockManagerTest, SharedBlocksExclusive) {
  ASSERT_TRUE(Lock(1, 100, false).ok());
  EXPECT_TRUE(Lock(2, 100, true).IsLockTimeout());
}

TEST_F(LockManagerTest, ReentrantAndUpgrade) {
  ASSERT_TRUE(Lock(1, 100, false).ok());
  ASSERT_TRUE(Lock(1, 100, false).ok());  // Re-request shared.
  ASSERT_TRUE(Lock(1, 100, true).ok());   // Sole holder upgrades.
  EXPECT_TRUE(locks_.HoldsExclusive(1, 100));
  EXPECT_FALSE(locks_.HoldsShared(1, 100));  // Upgrade consumed it.
  ASSERT_TRUE(Lock(1, 100, false).ok());  // Shared under own exclusive: ok.
  ASSERT_TRUE(Lock(1, 100, true).ok());   // Re-request exclusive: ok.
}

TEST_F(LockManagerTest, UpgradeBlockedByOtherReader) {
  ASSERT_TRUE(Lock(1, 100, false).ok());
  ASSERT_TRUE(Lock(2, 100, false).ok());
  EXPECT_TRUE(Lock(1, 100, true).IsLockTimeout());
}

TEST_F(LockManagerTest, ReleaseAllWakesWaiters) {
  ASSERT_TRUE(Lock(1, 100, true).ok());
  std::thread releaser([&] {
    std::this_thread::sleep_for(30ms);
    std::lock_guard<std::mutex> guard(mutex_);
    locks_.ReleaseAll(1);
  });
  // Waits under the state mutex, which Lock releases while blocked.
  EXPECT_TRUE(Lock(2, 100, true, 2000ms).ok());
  releaser.join();
  EXPECT_TRUE(locks_.HoldsExclusive(2, 100));
}

TEST_F(LockManagerTest, ReleaseAllDropsEveryLockOfTxn) {
  ASSERT_TRUE(Lock(1, 100, true).ok());
  ASSERT_TRUE(Lock(1, 101, false).ok());
  {
    std::lock_guard<std::mutex> guard(mutex_);
    locks_.ReleaseAll(1);
  }
  EXPECT_FALSE(locks_.HoldsExclusive(1, 100));
  EXPECT_FALSE(locks_.HoldsShared(1, 101));
  EXPECT_TRUE(Lock(2, 100, true).ok());
  EXPECT_TRUE(Lock(2, 101, true).ok());
}

TEST_F(LockManagerTest, IndependentObjectsDoNotInterfere) {
  ASSERT_TRUE(Lock(1, 100, true).ok());
  EXPECT_TRUE(Lock(2, 200, true).ok());
}

TEST_F(LockManagerTest, ReleaseOfUnknownTxnIsNoop) {
  std::lock_guard<std::mutex> guard(mutex_);
  locks_.ReleaseAll(42);  // Must not crash.
}

}  // namespace
}  // namespace tdb::object
