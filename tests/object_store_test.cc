#include "object/object_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/random.h"
#include "platform/mem_store.h"
#include "platform/one_way_counter.h"
#include "platform/secret_store.h"

namespace tdb::object {
namespace {

// --- Example application classes (the paper's Figure 4 Meter/Profile) ---

constexpr ClassId kMeterClass = 100;
constexpr ClassId kProfileClass = 101;
constexpr ClassId kExtendedMeterClass = 102;

class Meter : public Object {
 public:
  Meter() = default;
  Meter(int32_t id, int32_t views, int32_t prints)
      : id_(id), view_count_(views), print_count_(prints) {}

  ClassId class_id() const override { return kMeterClass; }
  void Pickle(Pickler* p) const override {
    p->PutInt32(id_);
    p->PutInt32(view_count_);
    p->PutInt32(print_count_);
  }
  Status UnpickleFrom(Unpickler* u) override {
    TDB_RETURN_IF_ERROR(u->GetInt32(&id_));
    TDB_RETURN_IF_ERROR(u->GetInt32(&view_count_));
    return u->GetInt32(&print_count_);
  }
  size_t ApproxSize() const override { return sizeof(*this); }

  int32_t id() const { return id_; }
  int32_t view_count() const { return view_count_; }
  int32_t print_count() const { return print_count_; }
  void IncrementViews() { view_count_++; }
  void Reset() { view_count_ = print_count_ = 0; }

 private:
  int32_t id_ = 0;
  int32_t view_count_ = 0;
  int32_t print_count_ = 0;
};

// Schema evolution by subclassing (§5.1.1 allows this for collections too).
class ExtendedMeter : public Meter {
 public:
  ExtendedMeter() = default;
  ClassId class_id() const override { return kExtendedMeterClass; }
  void Pickle(Pickler* p) const override {
    Meter::Pickle(p);
    p->PutString(region_);
  }
  Status UnpickleFrom(Unpickler* u) override {
    TDB_RETURN_IF_ERROR(Meter::UnpickleFrom(u));
    return u->GetString(&region_);
  }
  std::string region_;
};

class Profile : public Object {
 public:
  ClassId class_id() const override { return kProfileClass; }
  void Pickle(Pickler* p) const override {
    p->PutUint64(meters_.size());
    for (ObjectId m : meters_) p->PutUint64(m);
  }
  Status UnpickleFrom(Unpickler* u) override {
    uint64_t n;
    TDB_RETURN_IF_ERROR(u->GetUint64(&n));
    meters_.resize(n);
    for (uint64_t i = 0; i < n; i++) {
      TDB_RETURN_IF_ERROR(u->GetUint64(&meters_[i]));
    }
    return Status::OK();
  }
  size_t ApproxSize() const override {
    return sizeof(*this) + meters_.size() * sizeof(ObjectId);
  }

  std::vector<ObjectId> meters_;
};

struct Env {
  platform::MemUntrustedStore store;
  platform::MemSecretStore secrets;
  platform::MemOneWayCounter counter;
  std::unique_ptr<chunk::ChunkStore> chunks;
  std::unique_ptr<ObjectStore> objects;

  explicit Env(ObjectStoreOptions options = {}) {
    TDB_CHECK(secrets.Provision(Slice("obj-secret")).ok());
    OpenStores(options);
  }

  void OpenStores(ObjectStoreOptions options = {}) {
    objects.reset();
    chunks.reset();
    chunk::ChunkStoreOptions copts;
    copts.security = crypto::SecurityConfig::Modern();
    copts.segment_size = 8 * 1024;
    copts.map_fanout = 8;
    auto cs = chunk::ChunkStore::Open(&store, &secrets, &counter, copts);
    TDB_CHECK(cs.ok(), cs.status().ToString());
    chunks = std::move(cs).value();
    auto os = ObjectStore::Open(chunks.get(), options);
    TDB_CHECK(os.ok(), os.status().ToString());
    objects = std::move(os).value();
    RegisterAll();
  }

  void RegisterAll() {
    TDB_CHECK(objects->registry().Register<Meter>(kMeterClass).ok());
    TDB_CHECK(objects->registry().Register<Profile>(kProfileClass).ok());
    TDB_CHECK(
        objects->registry().Register<ExtendedMeter>(kExtendedMeterClass).ok());
  }

  // Simulates a device restart.
  void Reopen(ObjectStoreOptions options = {}) {
    TDB_CHECK(chunks->Close().ok());
    OpenStores(options);
  }
};

// ----------------------------------------------------------------- pickle

TEST(PickleTest, AllTypesRoundtrip) {
  Pickler p;
  p.PutBool(true);
  p.PutInt32(-12345);
  p.PutInt64(-99999999999LL);
  p.PutUint32(77);
  p.PutUint64(1ull << 60);
  p.PutDouble(3.14159);
  p.PutString("hello");
  const Buffer raw = {0x00, 0x01, 0x02};
  p.PutBytes(raw);

  Unpickler u{Slice(p.buffer())};
  bool b;
  int32_t i32;
  int64_t i64;
  uint32_t u32;
  uint64_t u64;
  double d;
  std::string s;
  Buffer bytes;
  ASSERT_TRUE(u.GetBool(&b).ok());
  ASSERT_TRUE(u.GetInt32(&i32).ok());
  ASSERT_TRUE(u.GetInt64(&i64).ok());
  ASSERT_TRUE(u.GetUint32(&u32).ok());
  ASSERT_TRUE(u.GetUint64(&u64).ok());
  ASSERT_TRUE(u.GetDouble(&d).ok());
  ASSERT_TRUE(u.GetString(&s).ok());
  ASSERT_TRUE(u.GetBytes(&bytes).ok());
  EXPECT_TRUE(b);
  EXPECT_EQ(i32, -12345);
  EXPECT_EQ(i64, -99999999999LL);
  EXPECT_EQ(u32, 77u);
  EXPECT_EQ(u64, 1ull << 60);
  EXPECT_DOUBLE_EQ(d, 3.14159);
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(bytes.size(), 3u);
  EXPECT_TRUE(u.done());
}

TEST(PickleTest, SignedBoundaries) {
  for (int64_t v : {int64_t(0), int64_t(-1), int64_t(1), INT64_MIN,
                    INT64_MAX}) {
    Pickler p;
    p.PutInt64(v);
    Unpickler u{Slice(p.buffer())};
    int64_t out;
    ASSERT_TRUE(u.GetInt64(&out).ok());
    EXPECT_EQ(out, v);
  }
}

TEST(PickleTest, TruncatedInputRejected) {
  Pickler p;
  p.PutString("long string value");
  Buffer data = p.Take();
  data.resize(data.size() - 3);
  Unpickler u{Slice(data)};
  std::string s;
  EXPECT_TRUE(u.GetString(&s).IsCorruption());
}

// --------------------------------------------------------------- registry

TEST(ClassRegistryTest, DuplicateIdRejected) {
  ClassRegistry registry;
  ASSERT_TRUE(registry.Register<Meter>(1).ok());
  EXPECT_EQ(registry.Register<Profile>(1).code(),
            Status::Code::kAlreadyExists);
}

TEST(ClassRegistryTest, UnregisteredClassFails) {
  ClassRegistry registry;
  Pickler p;
  Unpickler u{Slice(p.buffer())};
  EXPECT_TRUE(registry.Unpickle(42, &u).status().IsNotFound());
}

// ------------------------------------------------------------ object store

TEST(ObjectStoreTest, InsertOpenCommitReadBack) {
  Env env;
  ObjectId meter_id;
  {
    Transaction txn(env.objects.get());
    auto id = txn.Insert(std::make_unique<Meter>(7, 3, 1));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    meter_id = *id;
    ASSERT_TRUE(txn.Commit().ok());
  }
  {
    Transaction txn(env.objects.get());
    auto meter = txn.OpenReadonly<Meter>(meter_id);
    ASSERT_TRUE(meter.ok()) << meter.status().ToString();
    EXPECT_EQ((*meter)->id(), 7);
    EXPECT_EQ((*meter)->view_count(), 3);
    ASSERT_TRUE(txn.Commit().ok());
  }
}

TEST(ObjectStoreTest, PaperFigure4Scenario) {
  Env env;
  // Add a new Meter to the Profile registered as root object.
  ObjectId profile_id;
  {
    Transaction t(env.objects.get());
    auto pid = t.Insert(std::make_unique<Profile>());
    ASSERT_TRUE(pid.ok());
    profile_id = *pid;
    auto mid = t.Insert(std::make_unique<Meter>(1, 0, 0));
    ASSERT_TRUE(mid.ok());
    auto profile = t.OpenWritable<Profile>(profile_id);
    ASSERT_TRUE(profile.ok());
    (*profile)->meters_.push_back(*mid);
    ASSERT_TRUE(t.Commit().ok());
    ASSERT_TRUE(env.objects->SetRoot(profile_id).ok());
  }
  // Increment view count for the first good.
  {
    Transaction t2(env.objects.get());
    auto root = env.objects->GetRoot();
    ASSERT_TRUE(root.ok());
    auto profile = t2.OpenReadonly<Profile>(*root);
    ASSERT_TRUE(profile.ok());
    ObjectId meter_id = (*profile)->meters_[0];
    auto meter = t2.OpenWritable<Meter>(meter_id);
    ASSERT_TRUE(meter.ok());
    (*meter)->IncrementViews();
    ASSERT_TRUE(t2.Commit().ok());
  }
  // Check.
  {
    Transaction t3(env.objects.get());
    auto root = env.objects->GetRoot();
    auto profile = t3.OpenReadonly<Profile>(*root);
    auto meter = t3.OpenReadonly<Meter>((*profile)->meters_[0]);
    ASSERT_TRUE(meter.ok());
    EXPECT_EQ((*meter)->view_count(), 1);
  }
}

TEST(ObjectStoreTest, StateSurvivesRestart) {
  Env env;
  ObjectId meter_id;
  {
    Transaction txn(env.objects.get());
    meter_id = *txn.Insert(std::make_unique<Meter>(9, 42, 17));
    ASSERT_TRUE(txn.Commit(true).ok());
    ASSERT_TRUE(env.objects->SetRoot(meter_id).ok());
  }
  env.Reopen();
  EXPECT_EQ(*env.objects->GetRoot(), meter_id);
  Transaction txn(env.objects.get());
  auto meter = txn.OpenReadonly<Meter>(meter_id);
  ASSERT_TRUE(meter.ok()) << meter.status().ToString();
  EXPECT_EQ((*meter)->view_count(), 42);
}

TEST(ObjectStoreTest, AbortRollsBackModifications) {
  Env env;
  ObjectId meter_id;
  {
    Transaction txn(env.objects.get());
    meter_id = *txn.Insert(std::make_unique<Meter>(1, 10, 0));
    ASSERT_TRUE(txn.Commit().ok());
  }
  {
    Transaction txn(env.objects.get());
    auto meter = txn.OpenWritable<Meter>(meter_id);
    ASSERT_TRUE(meter.ok());
    (*meter)->IncrementViews();
    (*meter)->IncrementViews();
    EXPECT_EQ((*meter)->view_count(), 12);
    ASSERT_TRUE(txn.Abort().ok());
  }
  Transaction txn(env.objects.get());
  auto meter = txn.OpenReadonly<Meter>(meter_id);
  ASSERT_TRUE(meter.ok());
  EXPECT_EQ((*meter)->view_count(), 10);  // Rolled back.
}

TEST(ObjectStoreTest, DestructorAbortsActiveTransaction) {
  Env env;
  ObjectId meter_id;
  {
    Transaction txn(env.objects.get());
    meter_id = *txn.Insert(std::make_unique<Meter>(1, 5, 0));
    ASSERT_TRUE(txn.Commit().ok());
  }
  {
    Transaction txn(env.objects.get());
    auto meter = txn.OpenWritable<Meter>(meter_id);
    ASSERT_TRUE(meter.ok());
    (*meter)->Reset();
    // No commit: destructor aborts.
  }
  Transaction txn(env.objects.get());
  EXPECT_EQ((*txn.OpenReadonly<Meter>(meter_id))->view_count(), 5);
}

TEST(ObjectStoreTest, InsertRolledBackByAbort) {
  Env env;
  ObjectId meter_id;
  {
    Transaction txn(env.objects.get());
    meter_id = *txn.Insert(std::make_unique<Meter>(1, 0, 0));
    ASSERT_TRUE(txn.Abort().ok());
  }
  Transaction txn(env.objects.get());
  EXPECT_TRUE(txn.OpenReadonly<Meter>(meter_id).status().IsNotFound());
}

TEST(ObjectStoreTest, RemoveFreesObject) {
  Env env;
  ObjectId meter_id;
  {
    Transaction txn(env.objects.get());
    meter_id = *txn.Insert(std::make_unique<Meter>(1, 0, 0));
    ASSERT_TRUE(txn.Commit().ok());
  }
  {
    Transaction txn(env.objects.get());
    ASSERT_TRUE(txn.Remove(meter_id).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  Transaction txn(env.objects.get());
  EXPECT_TRUE(txn.OpenReadonly<Meter>(meter_id).status().IsNotFound());
}

TEST(ObjectStoreTest, RemoveOfMissingObjectFails) {
  Env env;
  Transaction txn(env.objects.get());
  EXPECT_TRUE(txn.Remove(99999).IsNotFound());
}

TEST(ObjectStoreTest, TypeMismatchCaught) {
  Env env;
  ObjectId meter_id;
  {
    Transaction txn(env.objects.get());
    meter_id = *txn.Insert(std::make_unique<Meter>(1, 0, 0));
    ASSERT_TRUE(txn.Commit().ok());
  }
  Transaction txn(env.objects.get());
  auto as_profile = txn.OpenReadonly<Profile>(meter_id);
  EXPECT_EQ(as_profile.status().code(), Status::Code::kTypeMismatch);
}

TEST(ObjectStoreTest, SubtypingWorksThroughBaseRef) {
  Env env;
  ObjectId ext_id;
  {
    Transaction txn(env.objects.get());
    auto ext = std::make_unique<ExtendedMeter>();
    ext->region_ = "EU";
    ext_id = *txn.Insert(std::move(ext));
    ASSERT_TRUE(txn.Commit().ok());
  }
  Transaction txn(env.objects.get());
  // Open as base class: fine (ExtendedMeter is-a Meter).
  auto base = txn.OpenReadonly<Meter>(ext_id);
  ASSERT_TRUE(base.ok());
  // Checked down-cast back to the subclass (the paper's Ref copy-construct
  // with runtime check).
  auto derived = ref_cast<ExtendedMeter>(*base);
  ASSERT_TRUE(derived.ok());
  EXPECT_EQ((*derived)->region_, "EU");
  // Down-cast to an unrelated class fails cleanly.
  auto wrong = ref_cast<Profile>(*base);
  EXPECT_EQ(wrong.status().code(), Status::Code::kTypeMismatch);
}

TEST(ObjectStoreDeathTest, RefInvalidAfterCommit) {
  Env env;
  Transaction txn(env.objects.get());
  ObjectId id = *txn.Insert(std::make_unique<Meter>(1, 0, 0));
  auto meter = txn.OpenWritable<Meter>(id);
  ASSERT_TRUE(meter.ok());
  ASSERT_TRUE(txn.Commit().ok());
  // Using the Ref after commit is the paper's "checked runtime error".
  EXPECT_DEATH((*meter)->view_count(), "outside its transaction");
}

TEST(ObjectStoreTest, UnregisteredClassFailsOnRead) {
  Env env;
  ObjectId meter_id;
  {
    Transaction txn(env.objects.get());
    meter_id = *txn.Insert(std::make_unique<Meter>(1, 2, 3));
    ASSERT_TRUE(txn.Commit(true).ok());
  }
  // Restart without registering Meter.
  TDB_CHECK(env.chunks->Close().ok());
  chunk::ChunkStoreOptions copts;
  copts.security = crypto::SecurityConfig::Modern();
  copts.segment_size = 8 * 1024;
  copts.map_fanout = 8;
  env.objects.reset();
  env.chunks =
      std::move(chunk::ChunkStore::Open(&env.store, &env.secrets,
                                        &env.counter, copts))
          .value();
  auto os = ObjectStore::Open(env.chunks.get(), {});
  ASSERT_TRUE(os.ok());
  Transaction txn(os->get());
  EXPECT_TRUE(txn.OpenReadonly<Meter>(meter_id).status().IsNotFound());
}

// ------------------------------------------------------------- concurrency

TEST(ObjectStoreConcurrencyTest, WriteLockBlocksSecondWriter) {
  ObjectStoreOptions options;
  options.lock_timeout = std::chrono::milliseconds(100);
  Env env(options);
  ObjectId meter_id;
  {
    Transaction txn(env.objects.get());
    meter_id = *txn.Insert(std::make_unique<Meter>(1, 0, 0));
    ASSERT_TRUE(txn.Commit().ok());
  }
  Transaction writer(env.objects.get());
  ASSERT_TRUE(writer.OpenWritable<Meter>(meter_id).ok());

  // A second transaction times out trying to write the same object.
  Transaction contender(env.objects.get());
  auto result = contender.OpenWritable<Meter>(meter_id);
  EXPECT_TRUE(result.status().IsLockTimeout()) << result.status().ToString();
}

TEST(ObjectStoreConcurrencyTest, SharedReadersCoexist) {
  Env env;
  ObjectId meter_id;
  {
    Transaction txn(env.objects.get());
    meter_id = *txn.Insert(std::make_unique<Meter>(1, 0, 0));
    ASSERT_TRUE(txn.Commit().ok());
  }
  Transaction r1(env.objects.get());
  Transaction r2(env.objects.get());
  EXPECT_TRUE(r1.OpenReadonly<Meter>(meter_id).ok());
  EXPECT_TRUE(r2.OpenReadonly<Meter>(meter_id).ok());
}

TEST(ObjectStoreConcurrencyTest, ReaderBlocksWriterUntilCommit) {
  ObjectStoreOptions options;
  options.lock_timeout = std::chrono::milliseconds(2000);
  Env env(options);
  ObjectId meter_id;
  {
    Transaction txn(env.objects.get());
    meter_id = *txn.Insert(std::make_unique<Meter>(1, 0, 0));
    ASSERT_TRUE(txn.Commit().ok());
  }
  auto reader = std::make_unique<Transaction>(env.objects.get());
  ASSERT_TRUE(reader->OpenReadonly<Meter>(meter_id).ok());

  // Writer thread blocks on the exclusive lock until the reader commits.
  std::thread release([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ASSERT_TRUE(reader->Commit().ok());
  });
  Transaction writer(env.objects.get());
  auto w = writer.OpenWritable<Meter>(meter_id);
  EXPECT_TRUE(w.ok()) << w.status().ToString();
  release.join();
}

TEST(ObjectStoreConcurrencyTest, LockUpgradeForSoleReader) {
  Env env;
  ObjectId meter_id;
  {
    Transaction txn(env.objects.get());
    meter_id = *txn.Insert(std::make_unique<Meter>(1, 0, 0));
    ASSERT_TRUE(txn.Commit().ok());
  }
  Transaction txn(env.objects.get());
  ASSERT_TRUE(txn.OpenReadonly<Meter>(meter_id).ok());
  auto writable = txn.OpenWritable<Meter>(meter_id);  // Upgrade.
  ASSERT_TRUE(writable.ok()) << writable.status().ToString();
  (*writable)->IncrementViews();
  ASSERT_TRUE(txn.Commit().ok());
}

TEST(ObjectStoreConcurrencyTest, DeadlockBrokenByTimeout) {
  ObjectStoreOptions options;
  options.lock_timeout = std::chrono::milliseconds(100);
  Env env(options);
  ObjectId a, b;
  {
    Transaction txn(env.objects.get());
    a = *txn.Insert(std::make_unique<Meter>(1, 0, 0));
    b = *txn.Insert(std::make_unique<Meter>(2, 0, 0));
    ASSERT_TRUE(txn.Commit().ok());
  }
  Transaction t1(env.objects.get());
  Transaction t2(env.objects.get());
  ASSERT_TRUE(t1.OpenWritable<Meter>(a).ok());
  ASSERT_TRUE(t2.OpenWritable<Meter>(b).ok());

  // t1 wants b (held by t2) while t2 wants a (held by t1): deadlock.
  std::atomic<bool> t2_timed_out{false};
  std::thread th([&] {
    auto r = t2.OpenWritable<Meter>(a);
    if (r.status().IsLockTimeout()) t2_timed_out = true;
    if (!r.ok()) {
      ASSERT_TRUE(t2.Abort().ok());
    }
  });
  auto r1 = t1.OpenWritable<Meter>(b);
  th.join();
  // At least one of the two must have timed out, breaking the deadlock.
  EXPECT_TRUE(r1.status().IsLockTimeout() || t2_timed_out);
}

TEST(ObjectStoreConcurrencyTest, LockingCanBeDisabled) {
  ObjectStoreOptions options;
  options.locking_enabled = false;
  Env env(options);
  ObjectId meter_id;
  {
    Transaction txn(env.objects.get());
    meter_id = *txn.Insert(std::make_unique<Meter>(1, 0, 0));
    ASSERT_TRUE(txn.Commit().ok());
  }
  Transaction t1(env.objects.get());
  Transaction t2(env.objects.get());
  EXPECT_TRUE(t1.OpenWritable<Meter>(meter_id).ok());
  EXPECT_TRUE(t2.OpenWritable<Meter>(meter_id).ok());  // No blocking.
}

// ------------------------------------------------------------------- cache

TEST(ObjectCacheTest, EvictionRespectsCapacityAndLru) {
  ObjectStoreOptions options;
  options.cache_capacity_bytes = 2000;  // Tiny cache.
  Env env(options);
  std::vector<ObjectId> ids;
  {
    Transaction txn(env.objects.get());
    for (int i = 0; i < 50; i++) {
      ids.push_back(*txn.Insert(std::make_unique<Meter>(i, i, 0)));
    }
    ASSERT_TRUE(txn.Commit().ok());
  }
  // After commit, dirty pins are gone; capacity enforcement evicted some.
  EXPECT_LE(env.objects->cache_size_bytes(), 2000u);
  // Everything still readable (cache misses re-fetch).
  Transaction txn(env.objects.get());
  for (int i = 0; i < 50; i++) {
    auto meter = txn.OpenReadonly<Meter>(ids[i]);
    ASSERT_TRUE(meter.ok()) << i;
    EXPECT_EQ((*meter)->view_count(), i);
  }
  EXPECT_GT(env.objects->cache_stats().misses, 0u);
  EXPECT_GT(env.objects->cache_stats().evictions, 0u);
}

TEST(ObjectCacheTest, RepeatedReadsHitCache) {
  Env env;
  ObjectId meter_id;
  {
    Transaction txn(env.objects.get());
    meter_id = *txn.Insert(std::make_unique<Meter>(1, 0, 0));
    ASSERT_TRUE(txn.Commit().ok());
  }
  for (int i = 0; i < 10; i++) {
    Transaction txn(env.objects.get());
    ASSERT_TRUE(txn.OpenReadonly<Meter>(meter_id).ok());
  }
  EXPECT_GE(env.objects->cache_stats().hits, 9u);
}

TEST(ObjectCacheTest, UnitTestsPinAndDirty) {
  ObjectCache cache(300);
  auto* m1 = cache.Put(1, std::make_unique<Meter>(1, 0, 0), false);
  ASSERT_NE(m1, nullptr);
  EXPECT_EQ(cache.Get(1), m1);
  EXPECT_EQ(cache.Get(2), nullptr);

  const uint64_t pin_gen = cache.Pin(1);
  for (ObjectId oid = 2; oid <= 10; oid++) {
    cache.Put(oid, std::make_unique<Meter>(int32_t(oid), 0, 0), false);
  }
  cache.EnforceCapacity();
  // Entry 1 is pinned: must survive even though it is the LRU tail.
  EXPECT_NE(cache.Get(1), nullptr);
  EXPECT_LE(cache.size_bytes(), 300u + 150u);  // Allow one entry overshoot.

  // A stale-generation release (abort erased + re-fetched the oid) must
  // not unpin the replacement entry.
  cache.Unpin(1, pin_gen + 1000);
  cache.Put(11, std::make_unique<Meter>(11, 0, 0), false);
  cache.EnforceCapacity();
  EXPECT_NE(cache.Get(1), nullptr);  // Still pinned.
  cache.Unpin(1, pin_gen);

  // Dirty entries survive too (no-steal).
  cache.Put(20, std::make_unique<Meter>(20, 0, 0), true);
  for (ObjectId oid = 30; oid < 40; oid++) {
    cache.Put(oid, std::make_unique<Meter>(int32_t(oid), 0, 0), false);
  }
  cache.EnforceCapacity();
  EXPECT_NE(cache.Get(20), nullptr);
  cache.SetDirty(20, false);
  for (ObjectId oid = 50; oid < 70; oid++) {
    cache.Put(oid, std::make_unique<Meter>(int32_t(oid), 0, 0), false);
  }
  cache.EnforceCapacity();
  EXPECT_EQ(cache.Get(20), nullptr);  // Now evictable, and evicted.
}

// ------------------------------------------------------------ transactions

TEST(ObjectStoreTest, CommittedTransactionCannotBeReused) {
  Env env;
  Transaction txn(env.objects.get());
  ASSERT_TRUE(txn.Insert(std::make_unique<Meter>(1, 0, 0)).ok());
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_FALSE(txn.active());
  EXPECT_EQ(txn.Insert(std::make_unique<Meter>(2, 0, 0)).status().code(),
            Status::Code::kTransactionInvalid);
  EXPECT_EQ(txn.Commit().code(), Status::Code::kTransactionInvalid);
  EXPECT_EQ(txn.Abort().code(), Status::Code::kTransactionInvalid);
}

TEST(ObjectStoreTest, NondurableCommitsCoveredByDurableOne) {
  Env env;
  ObjectId id;
  {
    Transaction t1(env.objects.get());
    id = *t1.Insert(std::make_unique<Meter>(1, 1, 0));
    ASSERT_TRUE(t1.Commit(/*durable=*/false).ok());
    Transaction t2(env.objects.get());
    auto meter = t2.OpenWritable<Meter>(id);
    ASSERT_TRUE(meter.ok());
    (*meter)->IncrementViews();
    ASSERT_TRUE(t2.Commit(/*durable=*/true).ok());
  }
  env.Reopen();
  Transaction txn(env.objects.get());
  auto meter = txn.OpenReadonly<Meter>(id);
  ASSERT_TRUE(meter.ok());
  EXPECT_EQ((*meter)->view_count(), 2);
}

TEST(ObjectStoreTest, ManyObjectsStressWithModel) {
  Env env;
  Random rng(77);
  std::map<ObjectId, int32_t> model;
  for (int round = 0; round < 30; round++) {
    Transaction txn(env.objects.get());
    for (int op = 0; op < 10; op++) {
      double roll = 0.01 * rng.Uniform(100);
      if (model.empty() || roll < 0.3) {
        int32_t views = static_cast<int32_t>(rng.Uniform(1000));
        ObjectId id = *txn.Insert(std::make_unique<Meter>(0, views, 0));
        model[id] = views;
      } else if (roll < 0.6) {
        auto it = model.begin();
        std::advance(it, rng.Uniform(model.size()));
        auto meter = txn.OpenWritable<Meter>(it->first);
        ASSERT_TRUE(meter.ok());
        (*meter)->IncrementViews();
        it->second++;
      } else if (roll < 0.75) {
        auto it = model.begin();
        std::advance(it, rng.Uniform(model.size()));
        ASSERT_TRUE(txn.Remove(it->first).ok());
        model.erase(it);
      } else {
        auto it = model.begin();
        std::advance(it, rng.Uniform(model.size()));
        auto meter = txn.OpenReadonly<Meter>(it->first);
        ASSERT_TRUE(meter.ok());
        EXPECT_EQ((*meter)->view_count(), it->second);
      }
    }
    ASSERT_TRUE(txn.Commit(round % 5 == 0).ok());
  }
  env.Reopen();
  Transaction txn(env.objects.get());
  for (const auto& [id, views] : model) {
    auto meter = txn.OpenReadonly<Meter>(id);
    ASSERT_TRUE(meter.ok()) << id;
    EXPECT_EQ((*meter)->view_count(), views) << id;
  }
}

// ------------------------------------------------------- read transactions

TEST(ReadTransactionTest, SnapshotReadsTakeZeroLocks) {
  Env env;
  std::vector<ObjectId> ids;
  {
    Transaction txn(env.objects.get());
    for (int i = 0; i < 8; i++) {
      ids.push_back(*txn.Insert(std::make_unique<Meter>(i, i * 10, 0)));
    }
    ASSERT_TRUE(txn.Commit().ok());
  }

  const uint64_t locks_before = env.objects->Stats().lock_acquisitions;
  EXPECT_GT(locks_before, 0u);  // The writer above did take locks.
  {
    ReadTransaction rtxn(env.objects.get());
    ASSERT_TRUE(rtxn.active());
    for (size_t i = 0; i < ids.size(); i++) {
      auto meter = rtxn.Open<Meter>(ids[i]);
      ASSERT_TRUE(meter.ok());
      EXPECT_EQ((*meter)->view_count(), static_cast<int32_t>(i) * 10);
    }
    // Repeated opens return the same memoized instance.
    auto again = rtxn.Open<Meter>(ids[0]);
    ASSERT_TRUE(again.ok());
  }
  // The acceptance bar: a full read transaction makes ZERO LockManager
  // acquisitions (and so can never block or be blocked by writers).
  EXPECT_EQ(env.objects->Stats().lock_acquisitions, locks_before);
  EXPECT_EQ(env.objects->Stats().read_txns_begun, 1u);
}

TEST(ReadTransactionTest, SnapshotIsolatedFromLaterCommits) {
  Env env;
  ObjectId meter_id;
  {
    Transaction txn(env.objects.get());
    meter_id = *txn.Insert(std::make_unique<Meter>(1, 5, 0));
    ASSERT_TRUE(txn.Commit().ok());
  }

  ReadTransaction rtxn(env.objects.get());
  ASSERT_TRUE(rtxn.active());

  // Concurrent writer: update the meter, insert a new object, remove
  // nothing. The read transaction must not observe any of it.
  ObjectId late_id;
  {
    Transaction txn(env.objects.get());
    auto meter = txn.OpenWritable<Meter>(meter_id);
    ASSERT_TRUE(meter.ok());
    (*meter)->IncrementViews();
    late_id = *txn.Insert(std::make_unique<Meter>(2, 99, 0));
    ASSERT_TRUE(txn.Commit().ok());
  }

  auto meter = rtxn.Open<Meter>(meter_id);
  ASSERT_TRUE(meter.ok());
  EXPECT_EQ((*meter)->view_count(), 5);  // Pre-update value.
  EXPECT_TRUE(rtxn.Open<Meter>(late_id).status().IsNotFound());

  // A fresh read transaction pins the new state.
  ReadTransaction rtxn2(env.objects.get());
  auto updated = rtxn2.Open<Meter>(meter_id);
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ((*updated)->view_count(), 6);
  auto late = rtxn2.Open<Meter>(late_id);
  ASSERT_TRUE(late.ok());
  EXPECT_EQ((*late)->view_count(), 99);
}

TEST(ReadTransactionTest, SeesRemovedObjectAtItsView) {
  Env env;
  ObjectId id;
  {
    Transaction txn(env.objects.get());
    id = *txn.Insert(std::make_unique<Meter>(7, 70, 0));
    ASSERT_TRUE(txn.Commit().ok());
  }
  ReadTransaction rtxn(env.objects.get());
  {
    Transaction txn(env.objects.get());
    ASSERT_TRUE(txn.Remove(id).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  // The pinned view predates the removal.
  auto meter = rtxn.Open<Meter>(id);
  ASSERT_TRUE(meter.ok());
  EXPECT_EQ((*meter)->view_count(), 70);
  // A fresh view no longer finds it.
  ReadTransaction rtxn2(env.objects.get());
  EXPECT_TRUE(rtxn2.Open<Meter>(id).status().IsNotFound());
}

TEST(ReadTransactionTest, PrefetchBatchesAndMemoizes) {
  Env env;
  std::vector<ObjectId> ids;
  {
    Transaction txn(env.objects.get());
    for (int i = 0; i < 16; i++) {
      ids.push_back(*txn.Insert(std::make_unique<Meter>(i, i, 0)));
    }
    ASSERT_TRUE(txn.Commit().ok());
  }
  const uint64_t locks_before = env.objects->Stats().lock_acquisitions;
  ReadTransaction rtxn(env.objects.get());
  ASSERT_TRUE(rtxn.Prefetch(ids).ok());
  for (size_t i = 0; i < ids.size(); i++) {
    auto meter = rtxn.Open<Meter>(ids[i]);
    ASSERT_TRUE(meter.ok());
    EXPECT_EQ((*meter)->view_count(), static_cast<int32_t>(i));
  }
  // Prefetch of already-loaded ids is a no-op; a missing id fails whole.
  ASSERT_TRUE(rtxn.Prefetch(ids).ok());
  std::vector<ObjectId> with_missing = ids;
  with_missing.push_back(99999);
  EXPECT_FALSE(rtxn.Prefetch(with_missing).ok());
  EXPECT_EQ(env.objects->Stats().lock_acquisitions, locks_before);
}

TEST(ReadTransactionTest, RejectsHeaderAndInvalidIds) {
  Env env;
  ReadTransaction rtxn(env.objects.get());
  ASSERT_TRUE(rtxn.active());
  EXPECT_EQ(rtxn.Open<Meter>(kInvalidObjectId).status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(rtxn.Open<Meter>(1).status().code(),  // The header chunk.
            Status::Code::kInvalidArgument);
  EXPECT_EQ(rtxn.Prefetch({1}).code(), Status::Code::kInvalidArgument);
}

TEST(ReadTransactionTest, TypeMismatchCaught) {
  Env env;
  ObjectId id;
  {
    Transaction txn(env.objects.get());
    id = *txn.Insert(std::make_unique<Meter>(1, 1, 0));
    ASSERT_TRUE(txn.Commit().ok());
  }
  ReadTransaction rtxn(env.objects.get());
  EXPECT_EQ(rtxn.Open<Profile>(id).status().code(),
            Status::Code::kTypeMismatch);
  // Subtyping still works through a base ref.
  auto base = rtxn.Open<Object>(id);
  ASSERT_TRUE(base.ok());
}

TEST(ReadTransactionTest, EndInvalidatesRefsAndFurtherOpens) {
  Env env;
  ObjectId id;
  {
    Transaction txn(env.objects.get());
    id = *txn.Insert(std::make_unique<Meter>(1, 1, 0));
    ASSERT_TRUE(txn.Commit().ok());
  }
  ReadTransaction rtxn(env.objects.get());
  auto meter = rtxn.Open<Meter>(id);
  ASSERT_TRUE(meter.ok());
  EXPECT_TRUE(meter->valid());
  rtxn.End();
  EXPECT_FALSE(rtxn.active());
  EXPECT_FALSE(meter->valid());
  EXPECT_EQ(rtxn.Open<Meter>(id).status().code(),
            Status::Code::kTransactionInvalid);
  rtxn.End();  // Idempotent.
}

TEST(ReadTransactionTest, ConcurrentReadersWithWriter) {
  Env env;
  std::vector<ObjectId> ids;
  {
    Transaction txn(env.objects.get());
    for (int i = 0; i < 32; i++) {
      ids.push_back(*txn.Insert(std::make_unique<Meter>(i, 1000 + i, 0)));
    }
    ASSERT_TRUE(txn.Commit().ok());
  }
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; t++) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        ReadTransaction rtxn(env.objects.get());
        // Within one view, all meters must come from one commit: the
        // writer below bumps all counts together, so (count - 1000 - i)
        // must be identical across the scan.
        int32_t delta = -1;
        for (size_t i = 0; i < ids.size(); i++) {
          auto meter = rtxn.Open<Meter>(ids[i]);
          if (!meter.ok()) {
            failures.fetch_add(1);
            return;
          }
          int32_t d = (*meter)->view_count() - 1000 - static_cast<int32_t>(i);
          if (delta < 0) delta = d;
          if (d != delta) {
            failures.fetch_add(1);
            return;
          }
        }
      }
    });
  }
  for (int round = 0; round < 10; round++) {
    Transaction txn(env.objects.get());
    for (ObjectId id : ids) {
      auto meter = txn.OpenWritable<Meter>(id);
      if (!meter.ok()) {
        failures.fetch_add(1);
        break;
      }
      (*meter)->IncrementViews();
    }
    ASSERT_TRUE(txn.Commit(round % 2 == 0).ok());
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ReadTransactionTest, ReadPathHistogramsPopulate) {
  // One snapshot read through the full stack must leave a sample in every
  // stage histogram: chunk read, hash verify, decrypt, decompress, and
  // object unpickle (all surfaced by tdbstat --json).
  platform::MemUntrustedStore store;
  platform::MemSecretStore secrets;
  platform::MemOneWayCounter counter;
  TDB_CHECK(secrets.Provision(Slice("histo-secret")).ok());
  chunk::ChunkStoreOptions copts;
  copts.security = crypto::SecurityConfig::Modern();
  copts.compression = true;
  copts.cache_bytes = 0;  // Force reads through the validation pipeline.
  auto chunks = chunk::ChunkStore::Open(&store, &secrets, &counter, copts);
  ASSERT_TRUE(chunks.ok());
  auto objects = ObjectStore::Open(chunks->get());
  ASSERT_TRUE(objects.ok());
  ASSERT_TRUE((*objects)->registry().Register<Meter>(kMeterClass).ok());

  ObjectId id;
  {
    Transaction txn(objects->get());
    // Compressible payload: a Meter pickles small; that is fine, the
    // decompress histogram records the (possibly raw) stage regardless of
    // whether this particular chunk compressed.
    id = *txn.Insert(std::make_unique<Meter>(1, 2, 3));
    ASSERT_TRUE(txn.Commit().ok());
  }
  {
    ReadTransaction rtxn(objects->get());
    ASSERT_TRUE(rtxn.Open<Meter>(id).ok());
  }

  common::MetricsSnapshot snap = (*chunks)->metrics()->Snapshot();
  for (const char* name :
       {"chunk.read.latency_us", "chunk.read.verify_us",
        "chunk.read.decrypt_us", "object.unpickle_us"}) {
    auto it = snap.histograms.find(name);
    ASSERT_NE(it, snap.histograms.end()) << name;
    EXPECT_GT(it->second.count, 0u) << name;
  }
  // The decompress histogram is registered (surfaced in dumps) even when
  // no read decompressed anything yet.
  EXPECT_NE(snap.histograms.find("chunk.read.decompress_us"),
            snap.histograms.end());
}

}  // namespace
}  // namespace tdb::object
