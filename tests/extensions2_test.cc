// Tests for CompositeKey (multi-variable functional indexes, §5.1.1) and
// StagedArchivalStore (stage-then-migrate backups, §2).

#include <gtest/gtest.h>

#include "backup/backup_store.h"
#include "collection/collection.h"
#include "platform/mem_store.h"
#include "platform/one_way_counter.h"
#include "platform/secret_store.h"
#include "platform/staged_archive.h"

namespace tdb {
namespace {

using collection::CompositeKey;
using collection::CTransaction;
using collection::IndexKind;
using collection::IntKey;
using collection::StringKey;
using collection::Uniqueness;

// --------------------------------------------------------- composite keys

using RegionUserKey = CompositeKey<StringKey, IntKey>;

TEST(CompositeKeyTest, LexicographicOrdering) {
  RegionUserKey a{StringKey("eu"), IntKey(5)};
  RegionUserKey b{StringKey("eu"), IntKey(9)};
  RegionUserKey c{StringKey("us"), IntKey(1)};
  RegionUserKey a2{StringKey("eu"), IntKey(5)};
  EXPECT_LT(a.Compare(b), 0);
  EXPECT_LT(b.Compare(c), 0);  // First component dominates.
  EXPECT_GT(c.Compare(a), 0);
  EXPECT_EQ(a.Compare(a2), 0);
  EXPECT_EQ(a.Hash(), a2.Hash());
  EXPECT_NE(a.Hash(), b.Hash());
}

TEST(CompositeKeyTest, PickleRoundtrip) {
  RegionUserKey original{StringKey("apac"), IntKey(-42)};
  Buffer pickled = collection::PickleKey(original);
  RegionUserKey restored;
  object::Unpickler u{Slice(pickled)};
  ASSERT_TRUE(restored.UnpickleFrom(&u).ok());
  EXPECT_EQ(restored.get<0>().value(), "apac");
  EXPECT_EQ(restored.get<1>().value(), -42);
  EXPECT_EQ(original.Compare(restored), 0);
}

TEST(CompositeKeyTest, CloneIsDeepEqual) {
  RegionUserKey key{StringKey("eu"), IntKey(7)};
  auto clone = key.Clone();
  EXPECT_EQ(key.Compare(*clone), 0);
}

// A collection indexed by a composite (region, usage) key.
constexpr object::ClassId kDeviceClass = 130;

class Device : public object::Object {
 public:
  Device() = default;
  Device(std::string region, int64_t usage)
      : region_(std::move(region)), usage_(usage) {}
  object::ClassId class_id() const override { return kDeviceClass; }
  void Pickle(object::Pickler* p) const override {
    p->PutString(region_);
    p->PutInt64(usage_);
  }
  Status UnpickleFrom(object::Unpickler* u) override {
    TDB_RETURN_IF_ERROR(u->GetString(&region_));
    return u->GetInt64(&usage_);
  }
  std::string region_;
  int64_t usage_ = 0;
};

TEST(CompositeKeyTest, CompositeIndexRangeQuery) {
  platform::MemUntrustedStore store;
  platform::MemSecretStore secrets;
  platform::MemOneWayCounter counter;
  ASSERT_TRUE(secrets.Provision(Slice("s")).ok());
  chunk::ChunkStoreOptions copts;
  copts.security = crypto::SecurityConfig::Modern();
  auto chunks =
      std::move(chunk::ChunkStore::Open(&store, &secrets, &counter, copts))
          .value();
  auto objects = std::move(object::ObjectStore::Open(chunks.get())).value();
  ASSERT_TRUE(objects->registry().Register<Device>(kDeviceClass).ok());
  auto colls =
      std::move(collection::CollectionStore::Open(objects.get())).value();

  auto indexer =
      std::make_shared<collection::Indexer<Device, RegionUserKey>>(
          "by-region-usage", Uniqueness::kNonUnique, IndexKind::kBTree,
          [](const Device& d) {
            return RegionUserKey{StringKey(d.region_), IntKey(d.usage_)};
          });

  CTransaction t(colls.get());
  auto fleet = t.CreateCollection("fleet", indexer);
  ASSERT_TRUE(fleet.ok());
  for (const char* region : {"eu", "us", "apac"}) {
    for (int64_t usage = 0; usage < 10; usage++) {
      ASSERT_TRUE(
          (*fleet)->Insert(&t, std::make_unique<Device>(region, usage)).ok());
    }
  }
  // All EU devices with usage in [3, 6].
  RegionUserKey min{StringKey("eu"), IntKey(3)};
  RegionUserKey max{StringKey("eu"), IntKey(6)};
  auto it = (*fleet)->Query(&t, *indexer, &min, &max);
  ASSERT_TRUE(it.ok()) << it.status().ToString();
  int count = 0;
  int64_t last_usage = -1;
  for (; !(*it)->end(); (*it)->Next()) {
    auto device = (*it)->Read<Device>();
    ASSERT_TRUE(device.ok());
    EXPECT_EQ((*device)->region_, "eu");
    EXPECT_GE((*device)->usage_, 3);
    EXPECT_LE((*device)->usage_, 6);
    EXPECT_GT((*device)->usage_, last_usage);  // Sorted by the composite.
    last_usage = (*device)->usage_;
    count++;
  }
  EXPECT_EQ(count, 4);
  ASSERT_TRUE((*it)->Close().ok());
  ASSERT_TRUE(t.Commit().ok());
}

// ------------------------------------------------------- staged archives

TEST(StagedArchiveTest, StageListReadRemove) {
  platform::MemUntrustedStore staging;
  platform::StagedArchivalStore archive(&staging);
  auto writer = archive.NewArchive("b0");
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(Slice("payload-1")).ok());
  ASSERT_TRUE((*writer)->Append(Slice("payload-2")).ok());
  ASSERT_TRUE((*writer)->Close().ok());

  EXPECT_EQ(archive.ListArchives(), std::vector<std::string>{"b0"});
  auto reader = archive.OpenArchive("b0");
  ASSERT_TRUE(reader.ok());
  Buffer data;
  ASSERT_TRUE((*reader)->Read(18, &data).ok());
  EXPECT_EQ(Slice(data).ToString(), "payload-1payload-2");
  ASSERT_TRUE(archive.RemoveArchive("b0").ok());
  EXPECT_TRUE(archive.OpenArchive("b0").status().IsNotFound());
}

TEST(StagedArchiveTest, UnclosedArchiveInvisible) {
  platform::MemUntrustedStore staging;
  platform::StagedArchivalStore archive(&staging);
  auto writer = archive.NewArchive("partial");
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(Slice("half")).ok());
  EXPECT_TRUE(archive.OpenArchive("partial").status().IsNotFound());
}

TEST(StagedArchiveTest, MigrationMovesArchivesToRemote) {
  platform::MemUntrustedStore staging;
  platform::StagedArchivalStore local(&staging);
  platform::MemArchivalStore remote;
  for (const char* name : {"day0", "day1"}) {
    auto writer = local.NewArchive(name);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(Slice(name)).ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  ASSERT_TRUE(local.MigrateAll(&remote, /*purge=*/true).ok());
  EXPECT_TRUE(local.ListArchives().empty());
  EXPECT_EQ(remote.ListArchives().size(), 2u);
  auto reader = remote.OpenArchive("day1");
  ASSERT_TRUE(reader.ok());
  Buffer data;
  ASSERT_TRUE((*reader)->Read(4, &data).ok());
  EXPECT_EQ(Slice(data).ToString(), "day1");
}

TEST(StagedArchiveTest, EndToEndBackupThroughStagingAndMigration) {
  // Device: chunk store + staged backups on the SAME untrusted store, then
  // migration to the remote server, then restore from the remote.
  platform::MemUntrustedStore device;
  platform::MemSecretStore secrets;
  platform::MemOneWayCounter counter;
  ASSERT_TRUE(secrets.Provision(Slice("s")).ok());
  chunk::ChunkStoreOptions options;
  auto cs = std::move(chunk::ChunkStore::Open(&device, &secrets, &counter,
                                              options))
                .value();
  chunk::ChunkId cid = cs->AllocateChunkId();
  ASSERT_TRUE(cs->Write(cid, Slice("device-state"), true).ok());

  platform::StagedArchivalStore staged(&device);
  auto backups = std::move(backup::BackupStore::Open(cs.get(), &staged,
                                                     &secrets,
                                                     options.security))
                     .value();
  ASSERT_TRUE(backups->CreateFull("b0").ok());
  ASSERT_TRUE(cs->Write(cid, Slice("device-state-2"), true).ok());
  ASSERT_TRUE(backups->CreateIncremental("b1").ok());

  // Opportunistic migration to the remote server.
  platform::MemArchivalStore remote;
  ASSERT_TRUE(staged.MigrateAll(&remote, /*purge=*/true).ok());

  // Restore on a replacement device, reading from the remote.
  platform::MemUntrustedStore replacement;
  platform::MemOneWayCounter new_counter;
  auto target = std::move(chunk::ChunkStore::Open(&replacement, &secrets,
                                                  &new_counter, options))
                    .value();
  auto remote_backups =
      std::move(backup::BackupStore::Open(target.get(), &remote, &secrets,
                                          options.security))
          .value();
  ASSERT_TRUE(remote_backups->Restore({"b0", "b1"}, target.get()).ok());
  EXPECT_EQ(Slice(*target->Read(cid)).ToString(), "device-state-2");
}

}  // namespace
}  // namespace tdb
