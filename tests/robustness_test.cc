// Robustness tests beyond the per-module suites: repeated crashes
// (including crashes during recovery itself), snapshot diffs across map
// growth, anchor-slot attacks, and miscellaneous edge cases.

#include <gtest/gtest.h>

#include <map>

#include "chunk/anchor.h"
#include "chunk/chunk_store.h"
#include "common/random.h"
#include "harness/chunk_driver.h"
#include "harness/trace.h"
#include "platform/fault_injection.h"
#include "platform/mem_store.h"
#include "platform/one_way_counter.h"
#include "platform/secret_store.h"

namespace tdb::chunk {
namespace {

using platform::FaultInjectingStore;
using platform::MemOneWayCounter;
using platform::MemSecretStore;
using platform::MemUntrustedStore;

ChunkStoreOptions SmallOptions() {
  ChunkStoreOptions options;
  options.security = crypto::SecurityConfig::Modern();
  options.segment_size = 4 * 1024;
  options.map_fanout = 8;
  return options;
}

// Exhaustive replacement for the old hand-counted crash loops (a fixed
// seed list with `CrashAfterWrites(rng.Uniform(40) + 1)`): the harness
// sweep crashes at EVERY base-store write index of a multi-commit trace,
// at every sector-aligned torn-write fraction, and checks the durable
// floor against its oracle after each recovery. Sharded two ways so each
// ctest entry stays short.
class RepeatedCrashTest : public ::testing::TestWithParam<int> {};

TEST_P(RepeatedCrashTest, SurvivesEveryCrashPoint) {
  constexpr int kShards = 2;
  harness::TraceSpec spec;
  spec.seed = 101;
  spec.commits = 8;
  spec.slots = 8;
  spec.preset = harness::Preset::kStrict;
  harness::SweepStats stats;
  Status status = harness::ChunkCrashSweep(spec, GetParam(), kShards, &stats);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_GT(stats.cases, 0u);
  // This shard ran exactly its residue class of the full campaign.
  uint64_t total = stats.write_points * stats.tear_buckets;
  uint64_t shard = static_cast<uint64_t>(GetParam());
  EXPECT_EQ(stats.cases, total / kShards + (total % kShards > shard ? 1 : 0));
}

INSTANTIATE_TEST_SUITE_P(Shards, RepeatedCrashTest, ::testing::Range(0, 2));

// Crashes during recovery itself: every trace crash point is rerun with a
// second crash armed at recovery write index GetParam(); the store must
// come back on the third boot with the durable floor intact.
class RecoveryCrashTest : public ::testing::TestWithParam<int> {};

TEST_P(RecoveryCrashTest, SurvivesCrashDuringRecovery) {
  harness::TraceSpec spec;
  spec.seed = 103;
  spec.commits = 6;
  spec.slots = 8;
  spec.preset = harness::Preset::kStrict;
  harness::SweepStats stats;
  Status status = harness::ChunkCrashSweep(spec, 0, 1, &stats,
                                           /*recovery_crash=*/GetParam());
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(stats.cases, stats.write_points * stats.tear_buckets);
}

INSTANTIATE_TEST_SUITE_P(RecoveryWriteIndex, RecoveryCrashTest,
                         ::testing::Range(0, 4));

TEST(SnapshotGrowthTest, DiffAcrossMapTreeGrowth) {
  // Base snapshot while the map is a single leaf (fanout 8, < 8 chunks);
  // delta after it has grown several levels. Exercises Diff's
  // RaiseToLevel path.
  MemSecretStore secrets;
  ASSERT_TRUE(secrets.Provision(Slice("s")).ok());
  MemOneWayCounter counter;
  MemUntrustedStore store;
  auto cs = std::move(ChunkStore::Open(&store, &secrets, &counter,
                                       SmallOptions()))
                .value();
  std::vector<ChunkId> early;
  for (int i = 0; i < 3; i++) {
    ChunkId cid = cs->AllocateChunkId();
    ASSERT_TRUE(cs->Write(cid, Slice("early"), false).ok());
    early.push_back(cid);
  }
  auto base = cs->CreateSnapshot();
  ASSERT_TRUE(base.ok());

  // Grow well past one leaf and a second level (8*8 = 64).
  std::vector<ChunkId> added;
  for (int i = 0; i < 200; i++) {
    ChunkId cid = cs->AllocateChunkId();
    ASSERT_TRUE(cs->Write(cid, Slice("late"), false).ok());
    added.push_back(cid);
  }
  ASSERT_TRUE(cs->Write(early[0], Slice("early-changed"), false).ok());
  auto delta = cs->CreateSnapshot();
  ASSERT_TRUE(delta.ok());

  std::map<ChunkId, DiffKind> changes;
  ASSERT_TRUE(cs->DiffSnapshots(**base, **delta,
                                [&](ChunkId cid, DiffKind kind,
                                    const MapEntry&) {
                                  changes[cid] = kind;
                                  return Status::OK();
                                })
                  .ok());
  EXPECT_EQ(changes.size(), added.size() + 1);
  EXPECT_EQ(changes[early[0]], DiffKind::kChanged);
  for (ChunkId cid : added) {
    EXPECT_EQ(changes[cid], DiffKind::kAdded) << cid;
  }
  EXPECT_FALSE(changes.count(early[1]));
}

TEST(AnchorAttackTest, NewestSlotWinsAndTamperedSlotIgnored) {
  MemSecretStore secrets;
  ASSERT_TRUE(secrets.Provision(Slice("s")).ok());
  MemOneWayCounter counter;
  MemUntrustedStore store;
  ChunkId cid;
  {
    auto cs = std::move(ChunkStore::Open(&store, &secrets, &counter,
                                         SmallOptions()))
                  .value();
    cid = cs->AllocateChunkId();
    ASSERT_TRUE(cs->Write(cid, Slice("v1"), true).ok());
    ASSERT_TRUE(cs->Checkpoint().ok());
    ASSERT_TRUE(cs->Write(cid, Slice("v2"), true).ok());
    ASSERT_TRUE(cs->Close().ok());
  }
  // Corrupt ONE anchor slot: the other (valid) slot must still open the
  // database — unless the surviving slot is stale enough that the counter
  // check fires, which must then be reported as replay, never as silent
  // acceptance of old state.
  for (const char* slot : {"anchor-0", "anchor-1"}) {
    if (!store.Exists(slot)) continue;
    auto image = store.SnapshotImage();
    ASSERT_TRUE(store.CorruptByte(slot, 10, 0xFF).ok());
    auto cs = ChunkStore::Open(&store, &secrets, &counter, SmallOptions());
    if (cs.ok()) {
      auto data = (*cs)->Read(cid);
      ASSERT_TRUE(data.ok());
      EXPECT_EQ(Slice(*data).ToString(), "v2");
      ASSERT_TRUE((*cs)->Close().ok());
    } else {
      EXPECT_TRUE(cs.status().IsReplayDetected() ||
                  cs.status().IsTamperDetected())
          << cs.status().ToString();
    }
    store.RestoreImage(image);
  }
}

TEST(VerifyIntegrityTest, CleanStorePassesTamperFails) {
  MemSecretStore secrets;
  ASSERT_TRUE(secrets.Provision(Slice("s")).ok());
  MemOneWayCounter counter;
  MemUntrustedStore store;
  auto cs = std::move(ChunkStore::Open(&store, &secrets, &counter,
                                       SmallOptions()))
                .value();
  std::vector<ChunkId> cids;
  Random rng(5);
  for (int i = 0; i < 60; i++) {
    ChunkId cid = cs->AllocateChunkId();
    Buffer data;
    rng.Fill(&data, 120);
    ASSERT_TRUE(cs->Write(cid, data, false).ok());
    cids.push_back(cid);
  }
  ASSERT_TRUE(cs->Checkpoint().ok());
  uint64_t checked = 0;
  ASSERT_TRUE(cs->VerifyIntegrity(&checked).ok());
  EXPECT_EQ(checked, 60u);

  // Corrupt one byte in the middle of a segment and scrub until it bites
  // (some offsets are dead bytes).
  bool caught = false;
  for (const std::string& name : store.List()) {
    if (name.rfind("seg-", 0) != 0) continue;
    uint64_t size = *store.Size(name);
    for (uint64_t off = 16; off < size && !caught; off += 11) {
      ASSERT_TRUE(store.CorruptByte(name, off, 0x20).ok());
      Status scrub = cs->VerifyIntegrity(nullptr);
      if (!scrub.ok()) {
        EXPECT_TRUE(scrub.IsTamperDetected());
        caught = true;
      }
      ASSERT_TRUE(store.CorruptByte(name, off, 0x20).ok());
    }
  }
  EXPECT_TRUE(caught);
}

TEST(SnapshotTest, MultipleConcurrentSnapshotsIndependent) {
  MemSecretStore secrets;
  ASSERT_TRUE(secrets.Provision(Slice("s")).ok());
  MemOneWayCounter counter;
  MemUntrustedStore store;
  auto cs = std::move(ChunkStore::Open(&store, &secrets, &counter,
                                       SmallOptions()))
                .value();
  ChunkId cid = cs->AllocateChunkId();
  ASSERT_TRUE(cs->Write(cid, Slice("gen-0"), true).ok());
  auto snap0 = cs->CreateSnapshot();
  ASSERT_TRUE(snap0.ok());
  ASSERT_TRUE(cs->Write(cid, Slice("gen-1"), true).ok());
  auto snap1 = cs->CreateSnapshot();
  ASSERT_TRUE(snap1.ok());
  ASSERT_TRUE(cs->Write(cid, Slice("gen-2"), true).ok());

  EXPECT_EQ(Slice(*cs->ReadAtSnapshot(**snap0, cid)).ToString(), "gen-0");
  EXPECT_EQ(Slice(*cs->ReadAtSnapshot(**snap1, cid)).ToString(), "gen-1");
  EXPECT_EQ(Slice(*cs->Read(cid)).ToString(), "gen-2");

  // Releasing the older snapshot leaves the newer one intact.
  snap0->reset();
  EXPECT_EQ(Slice(*cs->ReadAtSnapshot(**snap1, cid)).ToString(), "gen-1");
}

TEST(ResidualLogTest, LongResidualLogReplaysManyCommits) {
  // Hundreds of commits with no checkpoint in between: recovery replays
  // them all from the anchor's scan position.
  MemSecretStore secrets;
  ASSERT_TRUE(secrets.Provision(Slice("s")).ok());
  MemOneWayCounter counter;
  MemUntrustedStore store;
  FaultInjectingStore faulty(&store);
  std::map<ChunkId, Buffer> model;
  {
    auto options = SmallOptions();
    options.checkpoint_interval_bytes = 1ull << 40;  // Never auto-ckpt.
    options.max_clean_segments_per_commit = 0;       // Never auto-clean
    options.max_utilization = 0.95;                  // (cleaning implies a
                                                     // durable checkpoint).
    auto cs = std::move(ChunkStore::Open(&faulty, &secrets, &counter,
                                         options))
                  .value();
    Random rng(6);
    for (int i = 0; i < 400; i++) {
      ChunkId cid = cs->AllocateChunkId();
      Buffer data;
      rng.Fill(&data, 80);
      ASSERT_TRUE(cs->Write(cid, data, true).ok());
      model[cid] = data;
    }
    EXPECT_LE(cs->stats().checkpoints, 2u);  // Only the bootstrap one(s).
    // Simulated power cut: the destructor's close-time checkpoint fails.
    faulty.CrashAfterWrites(0);
  }
  faulty.Reboot();
  auto cs = ChunkStore::Open(&faulty, &secrets, &counter, SmallOptions());
  ASSERT_TRUE(cs.ok()) << cs.status().ToString();
  for (const auto& [cid, expected] : model) {
    auto data = (*cs)->Read(cid);
    ASSERT_TRUE(data.ok()) << cid;
    EXPECT_EQ(*data, expected);
  }
}

TEST(UtilizationKnobTest, HigherTargetYieldsDenserDatabase) {
  // The Fig. 11 relationship at the chunk level: a tighter utilization
  // target produces a smaller database at higher achieved density, for
  // the same overwrite-heavy workload.
  auto run = [&](double util) {
    MemSecretStore secrets;
    TDB_CHECK(secrets.Provision(Slice("s")).ok());
    MemOneWayCounter counter;
    MemUntrustedStore store;
    ChunkStoreOptions options;
    options.security = crypto::SecurityConfig::Disabled();
    options.segment_size = 8 * 1024;
    options.map_fanout = 8;
    options.max_utilization = util;
    options.checkpoint_interval_bytes = 1 << 20;
    auto cs = std::move(ChunkStore::Open(&store, &secrets, &counter,
                                         options))
                  .value();
    Random rng(13);
    std::vector<ChunkId> cids;
    for (int i = 0; i < 300; i++) cids.push_back(cs->AllocateChunkId());
    for (int round = 0; round < 40; round++) {
      WriteBatch batch;
      for (int j = 0; j < 20; j++) {
        Buffer data;
        rng.Fill(&data, 120);
        batch.Write(cids[rng.Uniform(cids.size())], data);
      }
      TDB_CHECK(cs->Commit(batch, round % 4 == 0).ok());
    }
    // Everything still readable.
    uint64_t checked = 0;
    TDB_CHECK(cs->VerifyIntegrity(&checked).ok());
    return cs->stats();
  };
  ChunkStoreStats loose = run(0.5);
  ChunkStoreStats tight = run(0.9);
  EXPECT_LT(tight.total_bytes, loose.total_bytes);
  EXPECT_GT(tight.utilization(), loose.utilization());
}

// The validated-plaintext cache must not weaken tamper detection: once a
// chunk has been evicted, the next read goes back to the untrusted store
// and revalidates in full.
TEST(ChunkCacheRobustnessTest, TamperDetectedOnColdReadAfterEviction) {
  MemSecretStore secrets;
  ASSERT_TRUE(secrets.Provision(Slice("s")).ok());
  MemOneWayCounter counter;
  MemUntrustedStore store;
  auto options = SmallOptions();
  options.cache_bytes = 1500;  // Room for ~2 of the 500-byte chunks.
  auto cs = std::move(ChunkStore::Open(&store, &secrets, &counter, options))
                .value();
  Random rng(21);
  Buffer victim_data;
  rng.Fill(&victim_data, 500);
  ChunkId victim = cs->AllocateChunkId();
  ASSERT_TRUE(cs->Write(victim, victim_data, true).ok());
  ASSERT_TRUE(cs->Read(victim).ok());  // Cached (write-through + hit).

  // Evict the victim by reading a stream of other chunks.
  for (int i = 0; i < 10; i++) {
    ChunkId cid = cs->AllocateChunkId();
    Buffer data;
    rng.Fill(&data, 500);
    ASSERT_TRUE(cs->Write(cid, data, false).ok());
    ASSERT_TRUE(cs->Read(cid).ok());
  }
  ASSERT_GT(cs->Stats().cache_evictions, 0u);

  // Corrupt the whole image. A cache hit would mask this; the cold read
  // must revalidate against the store and report tampering.
  for (const std::string& name : store.List()) {
    if (name.rfind("seg-", 0) != 0) continue;
    uint64_t size = *store.Size(name);
    for (uint64_t off = 8; off < size; off++) {
      ASSERT_TRUE(store.CorruptByte(name, off, 0xA5).ok());
    }
  }
  auto read = cs->Read(victim);
  ASSERT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsTamperDetected()) << read.status().ToString();
}

// Parallel VerifyIntegrity (crypto_threads > 1) reports tampering exactly
// like the serial scrub, including on multi-batch stores.
TEST(ChunkCacheRobustnessTest, ParallelScrubDetectsTampering) {
  MemSecretStore secrets;
  ASSERT_TRUE(secrets.Provision(Slice("s")).ok());
  MemOneWayCounter counter;
  MemUntrustedStore store;
  auto options = SmallOptions();
  options.crypto_threads = 8;
  auto cs = std::move(ChunkStore::Open(&store, &secrets, &counter, options))
                .value();
  Random rng(22);
  // More chunks than one verify batch so batching boundaries are crossed.
  const int kChunks = 300;
  for (int i = 0; i < kChunks; i++) {
    ChunkId cid = cs->AllocateChunkId();
    Buffer data;
    rng.Fill(&data, 100);
    ASSERT_TRUE(cs->Write(cid, data, false).ok());
  }
  ASSERT_TRUE(cs->Checkpoint().ok());
  uint64_t checked = 0;
  ASSERT_TRUE(cs->VerifyIntegrity(&checked).ok());
  EXPECT_EQ(checked, static_cast<uint64_t>(kChunks));

  // Flip bytes until the scrub bites (some offsets land on dead records).
  bool caught = false;
  for (const std::string& name : store.List()) {
    if (name.rfind("seg-", 0) != 0 || caught) continue;
    uint64_t size = *store.Size(name);
    for (uint64_t off = 16; off < size && !caught; off += 13) {
      ASSERT_TRUE(store.CorruptByte(name, off, 0x20).ok());
      Status scrub = cs->VerifyIntegrity(nullptr);
      if (!scrub.ok()) {
        EXPECT_TRUE(scrub.IsTamperDetected()) << scrub.ToString();
        caught = true;
      }
      ASSERT_TRUE(store.CorruptByte(name, off, 0x20).ok());  // Undo.
    }
  }
  EXPECT_TRUE(caught);
}

// Crash-recovery property with the cache and pipeline at their defaults:
// a reopened store never serves pre-crash cached state (the cache dies
// with the process) and the durable floor is intact.
TEST(ChunkCacheRobustnessTest, CacheDoesNotLeakAcrossCrashRecovery) {
  MemSecretStore secrets;
  ASSERT_TRUE(secrets.Provision(Slice("s")).ok());
  MemOneWayCounter counter;
  MemUntrustedStore base;
  FaultInjectingStore faulty(&base, 31);

  ChunkId cid;
  Buffer durable_value;
  {
    auto cs = std::move(ChunkStore::Open(&faulty, &secrets, &counter,
                                         SmallOptions()))
                  .value();
    Random rng(31);
    rng.Fill(&durable_value, 300);
    cid = cs->AllocateChunkId();
    ASSERT_TRUE(cs->Write(cid, durable_value, true).ok());
    ASSERT_TRUE(cs->Read(cid).ok());  // Hot in the cache.
    // A nondurable overwrite reaches the cache (it is committed state)...
    ASSERT_TRUE(cs->Write(cid, Slice("nondurable-overwrite"), false).ok());
    auto hot = cs->Read(cid);
    ASSERT_TRUE(hot.ok());
    EXPECT_EQ(Slice(*hot).ToString(), "nondurable-overwrite");
    // ...then the process crashes before any durable commit.
    faulty.CrashAfterWrites(0);
    (void)cs->Write(cs->AllocateChunkId(), Slice("lost"), true).ok();
    // The store object is abandoned (destructor checkpoint fails too).
  }
  faulty.Reboot();
  auto cs = std::move(ChunkStore::Open(&faulty, &secrets, &counter,
                                       SmallOptions()))
                .value();
  auto data = cs->Read(cid);
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(*data, durable_value);  // Durable floor, not the cached value.
}

}  // namespace
}  // namespace tdb::chunk
