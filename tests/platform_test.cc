#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>

#include "common/random.h"
#include "platform/archival_store.h"
#include "platform/fault_injection.h"
#include "platform/file_store.h"
#include "platform/mem_store.h"
#include "platform/one_way_counter.h"
#include "platform/secret_store.h"

namespace tdb::platform {
namespace {

// Temporary directory scoped to one test.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = std::filesystem::temp_directory_path() /
            ("tdb_test_" + tag + "_" + std::to_string(::getpid()));
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string path() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

// ---------------------------------------------------------------- stores

// One fixture runs the whole contract against both backends.
class UntrustedStoreTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    if (GetParam() == "mem") {
      store_ = std::make_unique<MemUntrustedStore>();
    } else {
      dir_ = std::make_unique<TempDir>("store");
      store_ = std::make_unique<FileUntrustedStore>(dir_->path());
    }
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<UntrustedStore> store_;
};

TEST_P(UntrustedStoreTest, CreateWriteReadRoundtrip) {
  ASSERT_TRUE(store_->Create("log", false).ok());
  ASSERT_TRUE(store_->Write("log", 0, Slice("hello world")).ok());
  Buffer out;
  ASSERT_TRUE(store_->Read("log", 6, 5, &out).ok());
  EXPECT_EQ(Slice(out).ToString(), "world");
}

TEST_P(UntrustedStoreTest, CreateRespectsOverwriteFlag) {
  ASSERT_TRUE(store_->Create("f", false).ok());
  ASSERT_TRUE(store_->Write("f", 0, Slice("data")).ok());
  EXPECT_TRUE(store_->Create("f", false).code() ==
              Status::Code::kAlreadyExists);
  ASSERT_TRUE(store_->Create("f", true).ok());
  EXPECT_EQ(*store_->Size("f"), 0u);
}

TEST_P(UntrustedStoreTest, WriteExtendsAndZeroFills) {
  ASSERT_TRUE(store_->Create("f", false).ok());
  ASSERT_TRUE(store_->Write("f", 10, Slice("x")).ok());
  EXPECT_EQ(*store_->Size("f"), 11u);
  Buffer out;
  ASSERT_TRUE(store_->Read("f", 0, 11, &out).ok());
  for (int i = 0; i < 10; i++) EXPECT_EQ(out[i], 0) << i;
  EXPECT_EQ(out[10], 'x');
}

TEST_P(UntrustedStoreTest, ReadPastEndFails) {
  ASSERT_TRUE(store_->Create("f", false).ok());
  ASSERT_TRUE(store_->Write("f", 0, Slice("abc")).ok());
  Buffer out;
  EXPECT_FALSE(store_->Read("f", 2, 5, &out).ok());
}

TEST_P(UntrustedStoreTest, MissingFileOperationsFail) {
  Buffer out;
  EXPECT_TRUE(store_->Read("nope", 0, 1, &out).IsNotFound());
  EXPECT_TRUE(store_->Write("nope", 0, Slice("x")).IsNotFound());
  EXPECT_FALSE(store_->Size("nope").ok());
  EXPECT_TRUE(store_->Remove("nope").IsNotFound());
  EXPECT_FALSE(store_->Exists("nope"));
}

TEST_P(UntrustedStoreTest, TruncateShrinksAndGrows) {
  ASSERT_TRUE(store_->Create("f", false).ok());
  ASSERT_TRUE(store_->Write("f", 0, Slice("abcdef")).ok());
  ASSERT_TRUE(store_->Truncate("f", 3).ok());
  EXPECT_EQ(*store_->Size("f"), 3u);
  ASSERT_TRUE(store_->Truncate("f", 5).ok());
  Buffer out;
  ASSERT_TRUE(store_->Read("f", 0, 5, &out).ok());
  EXPECT_EQ(out[2], 'c');
  EXPECT_EQ(out[3], 0);
}

TEST_P(UntrustedStoreTest, ListAndRemove) {
  ASSERT_TRUE(store_->Create("a", false).ok());
  ASSERT_TRUE(store_->Create("b", false).ok());
  auto names = store_->List();
  EXPECT_EQ(names.size(), 2u);
  ASSERT_TRUE(store_->Remove("a").ok());
  EXPECT_FALSE(store_->Exists("a"));
  EXPECT_TRUE(store_->Exists("b"));
}

TEST_P(UntrustedStoreTest, SyncSucceeds) {
  ASSERT_TRUE(store_->Create("f", false).ok());
  ASSERT_TRUE(store_->Write("f", 0, Slice("x")).ok());
  EXPECT_TRUE(store_->Sync("f").ok());
}

TEST_P(UntrustedStoreTest, OverwriteInMiddle) {
  ASSERT_TRUE(store_->Create("f", false).ok());
  ASSERT_TRUE(store_->Write("f", 0, Slice("aaaaaa")).ok());
  ASSERT_TRUE(store_->Write("f", 2, Slice("BB")).ok());
  Buffer out;
  ASSERT_TRUE(store_->Read("f", 0, 6, &out).ok());
  EXPECT_EQ(Slice(out).ToString(), "aaBBaa");
}

INSTANTIATE_TEST_SUITE_P(Backends, UntrustedStoreTest,
                         ::testing::Values("mem", "file"));

TEST(MemStoreAttackerTest, SnapshotAndReplay) {
  MemUntrustedStore store;
  ASSERT_TRUE(store.Create("db", false).ok());
  ASSERT_TRUE(store.Write("db", 0, Slice("version-1")).ok());
  auto saved = store.SnapshotImage();
  ASSERT_TRUE(store.Write("db", 0, Slice("version-2")).ok());
  store.RestoreImage(saved);
  Buffer out;
  ASSERT_TRUE(store.Read("db", 0, 9, &out).ok());
  EXPECT_EQ(Slice(out).ToString(), "version-1");
}

TEST(MemStoreAttackerTest, CorruptByteFlipsExactlyOneBit) {
  MemUntrustedStore store;
  ASSERT_TRUE(store.Create("db", false).ok());
  ASSERT_TRUE(store.Write("db", 0, Slice("AAAA")).ok());
  ASSERT_TRUE(store.CorruptByte("db", 2, 0x01).ok());
  Buffer out;
  ASSERT_TRUE(store.Read("db", 0, 4, &out).ok());
  EXPECT_EQ(out[2], 'A' ^ 0x01);
  EXPECT_TRUE(store.CorruptByte("db", 99, 1).code() ==
              Status::Code::kInvalidArgument);
}

TEST(MemStoreAccountingTest, CountsWritesAndBytes) {
  MemUntrustedStore store;
  ASSERT_TRUE(store.Create("f", false).ok());
  ASSERT_TRUE(store.Write("f", 0, Slice("12345")).ok());
  ASSERT_TRUE(store.Write("f", 5, Slice("678")).ok());
  EXPECT_EQ(store.write_count(), 2u);
  EXPECT_EQ(store.bytes_written(), 8u);
  EXPECT_EQ(store.TotalBytes(), 8u);
}

// -------------------------------------------------------- fault injection

TEST(FaultInjectionTest, CrashAfterNWrites) {
  MemUntrustedStore base;
  FaultInjectingStore store(&base);
  ASSERT_TRUE(store.Create("f", false).ok());
  store.CrashAfterWrites(2);
  EXPECT_TRUE(store.Write("f", 0, Slice("a")).ok());
  EXPECT_TRUE(store.Write("f", 1, Slice("b")).ok());
  EXPECT_FALSE(store.Write("f", 2, Slice("c")).ok());  // Crash fires here.
  EXPECT_TRUE(store.crashed());
  // Everything fails until reboot.
  Buffer out;
  EXPECT_FALSE(store.Read("f", 0, 1, &out).ok());
  EXPECT_FALSE(store.Sync("f").ok());
  store.Reboot();
  EXPECT_TRUE(store.Read("f", 0, 2, &out).ok());
  EXPECT_EQ(Slice(out).ToString(), "ab");
}

TEST(FaultInjectionTest, TornWriteAppliesOnlyPrefix) {
  // Tearing is sector-atomic: the surviving prefix of the crashing write
  // always ends on a sector boundary (or covers the whole write). With
  // many trials over a multi-sector write, all outcomes show up.
  bool saw_partial = false, saw_none = false;
  Buffer data(2048, 0x5A);  // Four 512-byte sectors.
  for (uint64_t seed = 0; seed < 64 && !(saw_partial && saw_none); seed++) {
    MemUntrustedStore base;
    FaultInjectingStore store(&base, seed);
    ASSERT_TRUE(store.Create("f", false).ok());
    store.CrashAfterWrites(0);
    EXPECT_FALSE(store.Write("f", 0, data).ok());
    uint64_t size = *base.Size("f");
    EXPECT_LE(size, 2048u);
    EXPECT_EQ(size % 512, 0u);  // Sector-aligned prefix, never mid-sector.
    if (size > 0 && size < 2048) saw_partial = true;
    if (size == 0) saw_none = true;
  }
  EXPECT_TRUE(saw_partial);
  EXPECT_TRUE(saw_none);

  // A sub-sector write can never be partially applied: it either fully
  // lands or is lost entirely.
  for (uint64_t seed = 0; seed < 16; seed++) {
    MemUntrustedStore base;
    FaultInjectingStore store(&base, seed);
    ASSERT_TRUE(store.Create("f", false).ok());
    store.CrashAfterWrites(0);
    EXPECT_FALSE(store.Write("f", 0, Slice("0123456789")).ok());
    uint64_t size = *base.Size("f");
    EXPECT_TRUE(size == 0 || size == 10) << size;
  }
}

TEST(FaultInjectionTest, CrashOnSync) {
  MemUntrustedStore base;
  FaultInjectingStore store(&base);
  ASSERT_TRUE(store.Create("f", false).ok());
  store.CrashOnNextSync();
  EXPECT_TRUE(store.Write("f", 0, Slice("a")).ok());  // Writes still fine.
  EXPECT_FALSE(store.Sync("f").ok());
  EXPECT_TRUE(store.crashed());
}

// ------------------------------------------------------------ secret store

TEST(SecretStoreTest, MemProvisionOnce) {
  MemSecretStore store;
  EXPECT_TRUE(store.GetSecret().status().IsNotFound());
  ASSERT_TRUE(store.Provision(Slice("top-secret")).ok());
  EXPECT_EQ(Slice(*store.GetSecret()).ToString(), "top-secret");
  EXPECT_TRUE(store.Provision(Slice("again")).code() ==
              Status::Code::kAlreadyExists);
  EXPECT_FALSE(MemSecretStore().Provision(Slice("")).ok());
}

TEST(SecretStoreTest, FileBacked) {
  TempDir dir("secret");
  std::string path = dir.path() + "/secret";
  FileSecretStore store(path);
  EXPECT_TRUE(store.GetSecret().status().IsNotFound());
  ASSERT_TRUE(store.Provision(Slice("key-bytes")).ok());
  EXPECT_TRUE(store.Provision(Slice("x")).code() ==
              Status::Code::kAlreadyExists);
  // A fresh handle (reboot) still reads it.
  FileSecretStore reopened(path);
  EXPECT_EQ(Slice(*reopened.GetSecret()).ToString(), "key-bytes");
}

// --------------------------------------------------------- one-way counter

TEST(OneWayCounterTest, MemIncrements) {
  MemOneWayCounter counter;
  EXPECT_EQ(*counter.Read(), 0u);
  EXPECT_EQ(*counter.Increment(), 1u);
  EXPECT_EQ(*counter.Increment(), 2u);
  EXPECT_EQ(*counter.Read(), 2u);
}

TEST(OneWayCounterTest, FilePersistsAcrossReopen) {
  TempDir dir("counter");
  std::string path = dir.path() + "/counter";
  {
    FileOneWayCounter counter(path);
    EXPECT_EQ(*counter.Read(), 0u);
    EXPECT_EQ(*counter.Increment(), 1u);
    EXPECT_EQ(*counter.Increment(), 2u);
  }
  FileOneWayCounter reopened(path);
  EXPECT_EQ(*reopened.Read(), 2u);
  EXPECT_EQ(*reopened.Increment(), 3u);
}

// ---------------------------------------------------------- archival store

TEST(ArchivalStoreTest, MemWriteReadRoundtrip) {
  MemArchivalStore store;
  auto writer = store.NewArchive("backup-1");
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(Slice("hello ")).ok());
  ASSERT_TRUE((*writer)->Append(Slice("backup")).ok());
  ASSERT_TRUE((*writer)->Close().ok());

  auto reader = store.OpenArchive("backup-1");
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->remaining(), 12u);
  Buffer out;
  ASSERT_TRUE((*reader)->Read(6, &out).ok());
  EXPECT_EQ(Slice(out).ToString(), "hello ");
  ASSERT_TRUE((*reader)->Read(6, &out).ok());
  EXPECT_EQ(Slice(out).ToString(), "backup");
  EXPECT_TRUE((*reader)->Read(1, &out).IsCorruption());
}

TEST(ArchivalStoreTest, UnclosedArchiveIsInvisible) {
  MemArchivalStore store;
  auto writer = store.NewArchive("partial");
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(Slice("data")).ok());
  // No Close(): the archive must not exist.
  EXPECT_TRUE(store.OpenArchive("partial").status().IsNotFound());
}

TEST(ArchivalStoreTest, FileBackedRoundtrip) {
  TempDir dir("archive");
  FileArchivalStore store(dir.path());
  auto writer = store.NewArchive("vol1");
  ASSERT_TRUE(writer.ok());
  Buffer payload;
  Random rng(5);
  rng.Fill(&payload, 10000);
  ASSERT_TRUE((*writer)->Append(payload).ok());
  ASSERT_TRUE((*writer)->Close().ok());

  auto reader = store.OpenArchive("vol1");
  ASSERT_TRUE(reader.ok());
  Buffer out;
  ASSERT_TRUE((*reader)->Read(10000, &out).ok());
  EXPECT_EQ(out, payload);
  EXPECT_EQ(store.ListArchives().size(), 1u);
  ASSERT_TRUE(store.RemoveArchive("vol1").ok());
  EXPECT_TRUE(store.OpenArchive("vol1").status().IsNotFound());
}

TEST(ArchivalStoreTest, ListAndRemoveMem) {
  MemArchivalStore store;
  for (const char* name : {"a", "b", "c"}) {
    auto w = store.NewArchive(name);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE((*w)->Close().ok());
  }
  EXPECT_EQ(store.ListArchives().size(), 3u);
  ASSERT_TRUE(store.RemoveArchive("b").ok());
  EXPECT_EQ(store.ListArchives().size(), 2u);
  EXPECT_TRUE(store.RemoveArchive("b").IsNotFound());
}

}  // namespace
}  // namespace tdb::platform
