// Full-stack integration tests: collection store over object store over
// chunk store over (faulty / file-backed / attacked) platform stores —
// the scenarios a DRM device actually faces.

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "backup/backup_store.h"
#include "collection/collection.h"
#include "common/random.h"
#include "platform/archival_store.h"
#include "platform/fault_injection.h"
#include "platform/file_store.h"
#include "platform/mem_store.h"
#include "platform/one_way_counter.h"
#include "platform/secret_store.h"

namespace tdb {
namespace {

using collection::CollectionStore;
using collection::CTransaction;
using collection::IndexKind;
using collection::IntKey;
using collection::Uniqueness;
using object::ObjectId;

constexpr object::ClassId kAccountClass = 150;

class Account : public object::Object {
 public:
  Account() = default;
  Account(int64_t id, int64_t balance) : id_(id), balance_(balance) {}
  object::ClassId class_id() const override { return kAccountClass; }
  void Pickle(object::Pickler* p) const override {
    p->PutInt64(id_);
    p->PutInt64(balance_);
  }
  Status UnpickleFrom(object::Unpickler* u) override {
    TDB_RETURN_IF_ERROR(u->GetInt64(&id_));
    return u->GetInt64(&balance_);
  }
  int64_t id_ = 0;
  int64_t balance_ = 0;
};

using AccountIndexer = collection::Indexer<Account, IntKey>;

std::shared_ptr<collection::GenericIndexer> ById() {
  return std::make_shared<AccountIndexer>(
      "by-id", Uniqueness::kUnique, IndexKind::kBTree,
      [](const Account& a) { return IntKey(a.id_); });
}

// A whole TDB stack over a caller-provided untrusted store.
struct Stack {
  platform::MemSecretStore secrets;
  platform::MemOneWayCounter counter;
  std::unique_ptr<chunk::ChunkStore> chunks;
  std::unique_ptr<object::ObjectStore> objects;
  std::unique_ptr<CollectionStore> collections;

  Status Open(platform::UntrustedStore* store,
              object::ObjectStoreOptions oopts = {},
              platform::OneWayCounter* hw_counter = nullptr) {
    if (!secrets.GetSecret().ok()) {
      TDB_RETURN_IF_ERROR(secrets.Provision(Slice("integration-secret")));
    }
    if (hw_counter == nullptr) hw_counter = &counter;
    collections.reset();
    objects.reset();
    chunks.reset();
    chunk::ChunkStoreOptions copts;
    copts.security = crypto::SecurityConfig::Modern();
    copts.segment_size = 16 * 1024;
    copts.map_fanout = 8;
    TDB_ASSIGN_OR_RETURN(
        chunks, chunk::ChunkStore::Open(store, &secrets, hw_counter, copts));
    TDB_ASSIGN_OR_RETURN(objects,
                         object::ObjectStore::Open(chunks.get(), oopts));
    TDB_RETURN_IF_ERROR(objects->registry().Register<Account>(kAccountClass));
    TDB_ASSIGN_OR_RETURN(collections, CollectionStore::Open(objects.get()));
    return collections->RegisterIndexer("bank", ById());
  }
};

TEST(IntegrationTest, CollectionWorkloadSurvivesCrashAndRecovers) {
  platform::MemUntrustedStore base;
  platform::FaultInjectingStore faulty(&base, 99);
  Stack stack;
  std::map<int64_t, int64_t> durable_model;

  {
    ASSERT_TRUE(stack.Open(&faulty).ok());
    CTransaction setup(stack.collections.get());
    auto bank = setup.CreateCollection("bank", ById());
    ASSERT_TRUE(bank.ok());
    for (int64_t id = 0; id < 50; id++) {
      ASSERT_TRUE(
          (*bank)->Insert(&setup, std::make_unique<Account>(id, 100)).ok());
    }
    ASSERT_TRUE(setup.Commit(true).ok());
    for (int64_t id = 0; id < 50; id++) durable_model[id] = 100;

    // Updates, some durable; crash mid-stream.
    Random rng(7);
    faulty.CrashAfterWrites(rng.Uniform(60) + 10);
    std::map<int64_t, int64_t> pending_model = durable_model;
    auto indexer = ById();
    for (int round = 0; round < 500; round++) {
      CTransaction txn(stack.collections.get());
      auto bank_or = txn.ReadCollection("bank");
      if (!bank_or.ok()) break;
      int64_t id = static_cast<int64_t>(rng.Uniform(50));
      int64_t delta = static_cast<int64_t>(rng.Uniform(20)) - 10;
      auto it = (*bank_or)->Query(&txn, *indexer, IntKey(id));
      if (!it.ok()) break;
      auto account = (*it)->Write<Account>();
      if (!account.ok()) break;
      (*account)->balance_ += delta;
      if (!(*it)->Close().ok()) break;
      bool durable = round % 4 == 0;
      uint64_t durables_before = stack.chunks->stats().durable_commits;
      if (!txn.Commit(durable).ok()) break;
      pending_model[id] += delta;
      if (durable ||
          stack.chunks->stats().durable_commits > durables_before) {
        durable_model = pending_model;
      }
      if (faulty.crashed()) break;
    }
  }

  // Drop the crashed stack (its close-time checkpoint fails against the
  // crashed store, as on a real power loss), then reboot and recover.
  stack.collections.reset();
  stack.objects.reset();
  stack.chunks.reset();
  faulty.Reboot();
  Stack recovered;
  recovered.secrets = stack.secrets;  // Same device secret.
  // (counter state lives in stack.counter; share it.)
  Status open = [&] {
    chunk::ChunkStoreOptions copts;
    copts.security = crypto::SecurityConfig::Modern();
    copts.segment_size = 16 * 1024;
    copts.map_fanout = 8;
    TDB_ASSIGN_OR_RETURN(recovered.chunks,
                         chunk::ChunkStore::Open(&faulty, &stack.secrets,
                                                 &stack.counter, copts));
    TDB_ASSIGN_OR_RETURN(recovered.objects,
                         object::ObjectStore::Open(recovered.chunks.get()));
    TDB_RETURN_IF_ERROR(
        recovered.objects->registry().Register<Account>(kAccountClass));
    TDB_ASSIGN_OR_RETURN(recovered.collections,
                         CollectionStore::Open(recovered.objects.get()));
    return recovered.collections->RegisterIndexer("bank", ById());
  }();
  ASSERT_TRUE(open.ok()) << open.ToString();

  // Integrity scrub passes, and every durable account state is present.
  // (Balances may be ahead of the durable floor by covered nondurable
  // commits or the unacknowledged final transaction — here we just assert
  // presence and queryability of all 50 accounts.)
  uint64_t checked = 0;
  ASSERT_TRUE(recovered.chunks->VerifyIntegrity(&checked).ok());
  EXPECT_GT(checked, 50u);

  CTransaction txn(recovered.collections.get());
  auto bank = txn.ReadCollection("bank");
  ASSERT_TRUE(bank.ok());
  auto indexer = ById();
  for (int64_t id = 0; id < 50; id++) {
    auto it = (*bank)->Query(&txn, *indexer, IntKey(id));
    ASSERT_TRUE(it.ok());
    ASSERT_FALSE((*it)->end()) << "account " << id << " missing";
    ASSERT_TRUE((*it)->Close().ok());
  }
}

TEST(IntegrationTest, FullStackOnRealFiles) {
  auto dir = std::filesystem::temp_directory_path() /
             ("tdb_integration_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  // The device's hardware counter persists across restarts; emulate it
  // with a file next to the database (as the paper's evaluation does).
  platform::FileOneWayCounter hw_counter(dir.string() + ".counter",
                                         /*sync=*/false);
  std::filesystem::remove(dir.string() + ".counter");
  {
    platform::FileUntrustedStore store(dir.string(), /*sync_writes=*/false);
    Stack stack;
    Status open = stack.Open(&store, {}, &hw_counter);
    ASSERT_TRUE(open.ok()) << open.ToString();
    CTransaction txn(stack.collections.get());
    auto bank = txn.CreateCollection("bank", ById());
    ASSERT_TRUE(bank.ok());
    for (int64_t id = 0; id < 30; id++) {
      ASSERT_TRUE(
          (*bank)->Insert(&txn, std::make_unique<Account>(id, id * 7)).ok());
    }
    ASSERT_TRUE(txn.Commit(true).ok());
    ASSERT_TRUE(stack.chunks->Close().ok());
  }
  // Fresh process image: reopen from the files alone.
  {
    platform::FileUntrustedStore store(dir.string(), /*sync_writes=*/false);
    Stack stack;
    Status reopen = stack.Open(&store, {}, &hw_counter);
    ASSERT_TRUE(reopen.ok()) << reopen.ToString();
    CTransaction txn(stack.collections.get());
    auto bank = txn.ReadCollection("bank");
    ASSERT_TRUE(bank.ok());
    auto indexer = ById();
    auto it = (*bank)->Query(&txn, *indexer, IntKey(29));
    ASSERT_TRUE(it.ok());
    ASSERT_FALSE((*it)->end());
    EXPECT_EQ((*(*it)->Read<Account>())->balance_, 29 * 7);
    ASSERT_TRUE((*it)->Close().ok());
  }
  std::filesystem::remove_all(dir);
  std::filesystem::remove(dir.string() + ".counter");
}

TEST(IntegrationTest, IndexTamperingDetectedThroughQueries) {
  // §1's motivating attack: "a malicious user can effectively remove data
  // from a database by tampering with an index on the data". Flip bytes
  // across the whole image: the integrity scrub must catch every flip that
  // lands on live bytes, and queries must never return silently wrong rows.
  platform::MemUntrustedStore store;
  Stack stack;
  ASSERT_TRUE(stack.Open(&store).ok());
  {
    CTransaction txn(stack.collections.get());
    auto bank = txn.CreateCollection("bank", ById());
    ASSERT_TRUE(bank.ok());
    for (int64_t id = 0; id < 40; id++) {
      ASSERT_TRUE(
          (*bank)->Insert(&txn, std::make_unique<Account>(id, 555)).ok());
    }
    ASSERT_TRUE(txn.Commit(true).ok());
  }
  // Compact so most bytes in the image are live.
  for (int i = 0; i < 10; i++) ASSERT_TRUE(stack.chunks->Clean(4).ok());
  ASSERT_TRUE(stack.chunks->Checkpoint().ok());

  auto indexer = ById();
  Random rng(3);
  int detected = 0, intact = 0;
  for (int trial = 0; trial < 40; trial++) {
    auto files = store.List();
    std::string file;
    uint64_t size = 0;
    do {
      file = files[rng.Uniform(files.size())];
      size = *store.Size(file);
    } while (size == 0);
    uint64_t off = rng.Uniform(size);
    ASSERT_TRUE(store.CorruptByte(file, off, 0x01).ok());

    // Whole-database scrub: detects any flip on live bytes.
    Status scrub = stack.chunks->VerifyIntegrity(nullptr);
    if (!scrub.ok()) {
      EXPECT_TRUE(scrub.IsTamperDetected()) << scrub.ToString();
      detected++;
    } else {
      intact++;  // Flip landed on dead bytes (obsolete records/anchors).
    }
    // Point query: either correct or a detected failure, never wrong.
    CTransaction txn(stack.collections.get());
    int64_t id = static_cast<int64_t>(rng.Uniform(40));
    auto bank = txn.ReadCollection("bank");
    if (bank.ok()) {
      auto it = (*bank)->Query(&txn, *indexer, IntKey(id));
      if (it.ok() && !(*it)->end()) {
        auto account = (*it)->Read<Account>();
        if (account.ok()) {
          ASSERT_EQ((*account)->balance_, 555);
        }
      }
      if (it.ok()) (void)(*it)->Close().ok();
    }
    ASSERT_TRUE(store.CorruptByte(file, off, 0x01).ok());  // Undo.
  }
  EXPECT_GT(detected, 0);
  EXPECT_EQ(detected + intact, 40);
}

TEST(IntegrationTest, ConcurrentBankTransfersPreserveInvariant) {
  // Strict 2PL across threads: total balance is invariant under
  // concurrent transfers; deadlocks resolve via lock timeouts + retry.
  platform::MemUntrustedStore store;
  Stack stack;
  object::ObjectStoreOptions oopts;
  oopts.lock_timeout = std::chrono::milliseconds(50);
  ASSERT_TRUE(stack.Open(&store, oopts).ok());

  constexpr int kAccounts = 8;
  constexpr int64_t kInitial = 1000;
  std::vector<ObjectId> ids;
  {
    object::Transaction txn(stack.objects.get());
    for (int i = 0; i < kAccounts; i++) {
      ids.push_back(*txn.Insert(std::make_unique<Account>(i, kInitial)));
    }
    ASSERT_TRUE(txn.Commit(true).ok());
  }

  auto worker = [&](uint64_t seed) {
    Random rng(seed);
    for (int i = 0; i < 60; i++) {
      ObjectId from = ids[rng.Uniform(kAccounts)];
      ObjectId to = ids[rng.Uniform(kAccounts)];
      if (from == to) continue;
      int64_t amount = static_cast<int64_t>(rng.Uniform(50));
      for (int attempt = 0; attempt < 20; attempt++) {
        object::Transaction txn(stack.objects.get());
        auto a = txn.OpenWritable<Account>(from);
        if (!a.ok()) continue;  // Timeout: retry fresh.
        auto b = txn.OpenWritable<Account>(to);
        if (!b.ok()) continue;
        (*a)->balance_ -= amount;
        (*b)->balance_ += amount;
        if (txn.Commit(false).ok()) break;
      }
    }
  };
  std::vector<std::thread> threads;
  for (uint64_t t = 0; t < 4; t++) threads.emplace_back(worker, t + 1);
  for (auto& thread : threads) thread.join();

  object::Transaction txn(stack.objects.get());
  int64_t total = 0;
  for (ObjectId id : ids) {
    auto account = txn.OpenReadonly<Account>(id);
    ASSERT_TRUE(account.ok());
    total += (*account)->balance_;
  }
  EXPECT_EQ(total, kAccounts * kInitial);
}

TEST(IntegrationTest, BackupAndRestoreWholeCollectionDatabase) {
  platform::MemUntrustedStore device;
  platform::MemArchivalStore archive;
  Stack stack;
  ASSERT_TRUE(stack.Open(&device).ok());
  {
    CTransaction txn(stack.collections.get());
    auto bank = txn.CreateCollection("bank", ById());
    ASSERT_TRUE(bank.ok());
    for (int64_t id = 0; id < 25; id++) {
      ASSERT_TRUE(
          (*bank)->Insert(&txn, std::make_unique<Account>(id, id + 1)).ok());
    }
    ASSERT_TRUE(txn.Commit(true).ok());
  }
  auto backups =
      std::move(backup::BackupStore::Open(stack.chunks.get(), &archive,
                                          &stack.secrets,
                                          crypto::SecurityConfig::Modern()))
          .value();
  ASSERT_TRUE(backups->CreateFull("b0").ok());
  {
    CTransaction txn(stack.collections.get());
    auto bank = txn.WriteCollection("bank");
    ASSERT_TRUE(bank.ok());
    ASSERT_TRUE(
        (*bank)->Insert(&txn, std::make_unique<Account>(100, 777)).ok());
    ASSERT_TRUE(txn.Commit(true).ok());
  }
  ASSERT_TRUE(backups->CreateIncremental("b1").ok());
  ASSERT_TRUE(backups->Verify({"b0", "b1"}).ok());

  // Restore onto a replacement device and use it through the FULL stack.
  platform::MemUntrustedStore replacement;
  Stack restored_stack;
  restored_stack.secrets = stack.secrets;
  chunk::ChunkStoreOptions copts;
  copts.security = crypto::SecurityConfig::Modern();
  copts.segment_size = 16 * 1024;
  copts.map_fanout = 8;
  auto target = std::move(chunk::ChunkStore::Open(&replacement,
                                                  &stack.secrets,
                                                  &restored_stack.counter,
                                                  copts))
                    .value();
  ASSERT_TRUE(backups->Restore({"b0", "b1"}, target.get()).ok());

  auto objects = std::move(object::ObjectStore::Open(target.get())).value();
  ASSERT_TRUE(objects->registry().Register<Account>(kAccountClass).ok());
  auto colls = std::move(CollectionStore::Open(objects.get())).value();
  ASSERT_TRUE(colls->RegisterIndexer("bank", ById()).ok());

  CTransaction txn(colls.get());
  auto bank = txn.ReadCollection("bank");
  ASSERT_TRUE(bank.ok()) << bank.status().ToString();
  auto indexer = ById();
  auto it = (*bank)->Query(&txn, *indexer, IntKey(100));
  ASSERT_TRUE(it.ok());
  ASSERT_FALSE((*it)->end());
  EXPECT_EQ((*(*it)->Read<Account>())->balance_, 777);
  ASSERT_TRUE((*it)->Close().ok());
}

}  // namespace
}  // namespace tdb
