#include "baseline/baseline_db.h"

#include <gtest/gtest.h>

#include <map>

#include "common/coding.h"
#include "common/random.h"
#include "platform/fault_injection.h"
#include "platform/mem_store.h"

namespace tdb::baseline {
namespace {

using platform::FaultInjectingStore;
using platform::MemUntrustedStore;

BaselineDb::Options SmallCache() {
  BaselineDb::Options options;
  options.cache_bytes = 64 * 1024;  // 16 pages: forces barriers/evictions.
  return options;
}

Buffer Key(int64_t k) {
  Buffer b;
  PutFixed64(&b, static_cast<uint64_t>(k));
  return b;
}

TEST(BaselineDbTest, PutGetRoundtrip) {
  MemUntrustedStore store;
  auto db = BaselineDb::Open(&store, SmallCache());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto tree = (*db)->CreateTree("accounts");
  ASSERT_TRUE(tree.ok());
  BaselineDb::Txn txn(db->get());
  ASSERT_TRUE(txn.Put(*tree, Key(1), Slice("alice:100")).ok());
  ASSERT_TRUE(txn.Put(*tree, Key(2), Slice("bob:50")).ok());
  // Read-your-writes before commit.
  EXPECT_EQ(Slice(*txn.Get(*tree, Key(1))).ToString(), "alice:100");
  ASSERT_TRUE(txn.Commit().ok());

  BaselineDb::Txn txn2(db->get());
  EXPECT_EQ(Slice(*txn2.Get(*tree, Key(2))).ToString(), "bob:50");
  EXPECT_TRUE(txn2.Get(*tree, Key(3)).status().IsNotFound());
  ASSERT_TRUE(txn2.Commit().ok());
}

TEST(BaselineDbTest, OverwriteAndDelete) {
  MemUntrustedStore store;
  auto db = BaselineDb::Open(&store, SmallCache());
  ASSERT_TRUE(db.ok());
  auto tree = (*db)->CreateTree("t");
  ASSERT_TRUE(tree.ok());
  {
    BaselineDb::Txn txn(db->get());
    ASSERT_TRUE(txn.Put(*tree, Key(1), Slice("v1")).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  {
    BaselineDb::Txn txn(db->get());
    ASSERT_TRUE(txn.Put(*tree, Key(1), Slice("v2")).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  {
    BaselineDb::Txn txn(db->get());
    EXPECT_EQ(Slice(*txn.Get(*tree, Key(1))).ToString(), "v2");
    ASSERT_TRUE(txn.Delete(*tree, Key(1)).ok());
    EXPECT_TRUE(txn.Get(*tree, Key(1)).status().IsNotFound());
    ASSERT_TRUE(txn.Commit().ok());
  }
  BaselineDb::Txn txn(db->get());
  EXPECT_TRUE(txn.Get(*tree, Key(1)).status().IsNotFound());
  ASSERT_TRUE(txn.Abort().ok());
}

TEST(BaselineDbTest, AbortDiscardsChanges) {
  MemUntrustedStore store;
  auto db = BaselineDb::Open(&store, SmallCache());
  ASSERT_TRUE(db.ok());
  auto tree = (*db)->CreateTree("t");
  ASSERT_TRUE(tree.ok());
  {
    BaselineDb::Txn txn(db->get());
    ASSERT_TRUE(txn.Put(*tree, Key(1), Slice("keep")).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  {
    BaselineDb::Txn txn(db->get());
    ASSERT_TRUE(txn.Put(*tree, Key(1), Slice("discard")).ok());
    ASSERT_TRUE(txn.Abort().ok());
  }
  BaselineDb::Txn txn(db->get());
  EXPECT_EQ(Slice(*txn.Get(*tree, Key(1))).ToString(), "keep");
  ASSERT_TRUE(txn.Abort().ok());
}

TEST(BaselineDbTest, ManyKeysSplitPagesAndPersist) {
  MemUntrustedStore store;
  std::map<int64_t, std::string> model;
  {
    auto db = BaselineDb::Open(&store, SmallCache());
    ASSERT_TRUE(db.ok());
    auto tree = (*db)->CreateTree("t");
    ASSERT_TRUE(tree.ok());
    Random rng(3);
    for (int batch = 0; batch < 40; batch++) {
      BaselineDb::Txn txn(db->get());
      for (int i = 0; i < 25; i++) {
        int64_t k = static_cast<int64_t>(rng.Uniform(5000));
        std::string value = "value-" + std::to_string(k) + "-" +
                            std::string(rng.Uniform(80), 'x');
        ASSERT_TRUE(txn.Put(*tree, Key(k), Slice(value)).ok());
        model[k] = value;
      }
      ASSERT_TRUE(txn.Commit().ok());
    }
    ASSERT_TRUE((*db)->Close().ok());
  }
  // Reopen and verify everything.
  auto db = BaselineDb::Open(&store, SmallCache());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto tree = (*db)->OpenTree("t");
  ASSERT_TRUE(tree.ok());
  BaselineDb::Txn txn(db->get());
  for (const auto& [k, expected] : model) {
    auto value = txn.Get(*tree, Key(k));
    ASSERT_TRUE(value.ok()) << k;
    EXPECT_EQ(Slice(*value).ToString(), expected) << k;
  }
  ASSERT_TRUE(txn.Abort().ok());
}

TEST(BaselineDbTest, CommittedDataSurvivesCrash) {
  MemUntrustedStore base;
  FaultInjectingStore faulty(&base);
  {
    auto db = BaselineDb::Open(&faulty, SmallCache());
    ASSERT_TRUE(db.ok());
    auto tree = (*db)->CreateTree("t");
    ASSERT_TRUE(tree.ok());
    BaselineDb::Txn txn(db->get());
    ASSERT_TRUE(txn.Put(*tree, Key(1), Slice("durable")).ok());
    ASSERT_TRUE(txn.Commit().ok());
    // Crash without Close (no barrier, pages unflushed: WAL must carry it).
    faulty.CrashAfterWrites(0);
  }
  faulty.Reboot();
  auto db = BaselineDb::Open(&faulty, SmallCache());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto tree = (*db)->OpenTree("t");
  ASSERT_TRUE(tree.ok());
  BaselineDb::Txn txn(db->get());
  EXPECT_EQ(Slice(*txn.Get(*tree, Key(1))).ToString(), "durable");
  ASSERT_TRUE(txn.Abort().ok());
}

TEST(BaselineDbTest, UncommittedOpsDiscardedAfterCrash) {
  MemUntrustedStore base;
  FaultInjectingStore faulty(&base);
  {
    auto db = BaselineDb::Open(&faulty, SmallCache());
    ASSERT_TRUE(db.ok());
    auto tree = (*db)->CreateTree("t");
    ASSERT_TRUE(tree.ok());
    {
      BaselineDb::Txn txn(db->get());
      ASSERT_TRUE(txn.Put(*tree, Key(1), Slice("committed")).ok());
      ASSERT_TRUE(txn.Commit().ok());
    }
    BaselineDb::Txn txn(db->get());
    ASSERT_TRUE(txn.Put(*tree, Key(2), Slice("uncommitted")).ok());
    // Crash mid-commit: the WAL write is torn.
    faulty.CrashAfterWrites(0);
    EXPECT_FALSE(txn.Commit().ok());
  }
  faulty.Reboot();
  auto db = BaselineDb::Open(&faulty, SmallCache());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto tree = (*db)->OpenTree("t");
  ASSERT_TRUE(tree.ok());
  BaselineDb::Txn txn(db->get());
  EXPECT_EQ(Slice(*txn.Get(*tree, Key(1))).ToString(), "committed");
  EXPECT_TRUE(txn.Get(*tree, Key(2)).status().IsNotFound());
  ASSERT_TRUE(txn.Abort().ok());
}

// Random crash-point property test mirroring the chunk store's.
class BaselineCrashTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BaselineCrashTest, CommittedStateSurvives) {
  const uint64_t seed = GetParam();
  Random rng(seed);
  MemUntrustedStore base;
  FaultInjectingStore faulty(&base, seed);

  std::map<int64_t, std::string> committed;
  std::map<int64_t, std::string> maybe;  // Last unacknowledged txn.
  {
    auto db_or = BaselineDb::Open(&faulty, SmallCache());
    ASSERT_TRUE(db_or.ok());
    auto& db = *db_or;
    auto tree = db->CreateTree("t");
    ASSERT_TRUE(tree.ok());
    faulty.CrashAfterWrites(rng.Uniform(300) + 1);
    for (int round = 0; round < 300; round++) {
      BaselineDb::Txn txn(db.get());
      std::map<int64_t, std::string> batch;
      for (int i = 0; i < 3; i++) {
        int64_t k = static_cast<int64_t>(rng.Uniform(100));
        std::string value =
            "v" + std::to_string(rng.Next() % 100000);
        if (!txn.Put(*tree, Key(k), Slice(value)).ok()) break;
        batch[k] = value;
      }
      Status s = txn.Commit();
      if (!s.ok()) {
        maybe = batch;
        break;
      }
      for (auto& [k, v] : batch) committed[k] = v;
      if (faulty.crashed()) break;
    }
  }
  faulty.Reboot();
  auto db_or = BaselineDb::Open(&faulty, SmallCache());
  ASSERT_TRUE(db_or.ok()) << "seed " << seed << ": "
                          << db_or.status().ToString();
  auto tree = (*db_or)->OpenTree("t");
  ASSERT_TRUE(tree.ok());
  BaselineDb::Txn txn(db_or->get());
  for (const auto& [k, v] : committed) {
    auto got = txn.Get(*tree, Key(k));
    ASSERT_TRUE(got.ok()) << "seed " << seed << " key " << k;
    bool matches = Slice(*got).ToString() == v;
    bool matches_maybe =
        maybe.count(k) && Slice(*got).ToString() == maybe.at(k);
    EXPECT_TRUE(matches || matches_maybe) << "seed " << seed << " key " << k;
  }
  ASSERT_TRUE(txn.Abort().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineCrashTest,
                         ::testing::Range<uint64_t>(0, 12));

TEST(BaselineDbTest, SingleWriterEnforced) {
  MemUntrustedStore store;
  auto db = BaselineDb::Open(&store, SmallCache());
  ASSERT_TRUE(db.ok());
  auto tree = (*db)->CreateTree("t");
  ASSERT_TRUE(tree.ok());
  BaselineDb::Txn txn1(db->get());
  BaselineDb::Txn txn2(db->get());
  EXPECT_TRUE(txn1.active());
  EXPECT_FALSE(txn2.active());
  EXPECT_FALSE(txn2.Put(*tree, Key(1), Slice("x")).ok());
  ASSERT_TRUE(txn1.Abort().ok());
}

TEST(BaselineDbTest, LogGrowsWithoutCheckpoint) {
  MemUntrustedStore store;
  BaselineDb::Options options;
  options.cache_bytes = 4 * 1024 * 1024;  // Big cache: no forced barriers.
  auto db = BaselineDb::Open(&store, options);
  ASSERT_TRUE(db.ok());
  auto tree = (*db)->CreateTree("t");
  ASSERT_TRUE(tree.ok());
  uint64_t size_100 = 0;
  for (int i = 0; i < 200; i++) {
    BaselineDb::Txn txn(db->get());
    ASSERT_TRUE(txn.Put(*tree, Key(i % 10), Slice("some value")).ok());
    ASSERT_TRUE(txn.Commit().ok());
    if (i == 99) size_100 = *(*db)->TotalFileBytes();
  }
  uint64_t size_200 = *(*db)->TotalFileBytes();
  EXPECT_GT(size_200, size_100);  // The log keeps growing (§7.4, Fig 11).
  // A checkpoint reclaims the log.
  ASSERT_TRUE((*db)->Checkpoint().ok());
  EXPECT_LT(*(*db)->TotalFileBytes(), size_200);
}

TEST(BaselineDbTest, TreeNamesPersist) {
  MemUntrustedStore store;
  {
    auto db = BaselineDb::Open(&store, SmallCache());
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateTree("alpha").ok());
    ASSERT_TRUE((*db)->CreateTree("beta").ok());
    EXPECT_EQ((*db)->CreateTree("alpha").status().code(),
              Status::Code::kAlreadyExists);
    ASSERT_TRUE((*db)->Close().ok());
  }
  auto db = BaselineDb::Open(&store, SmallCache());
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE((*db)->OpenTree("alpha").ok());
  EXPECT_TRUE((*db)->OpenTree("beta").ok());
  EXPECT_TRUE((*db)->OpenTree("gamma").status().IsNotFound());
}

}  // namespace
}  // namespace tdb::baseline
