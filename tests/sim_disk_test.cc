#include "platform/sim_disk.h"

#include <gtest/gtest.h>

#include "platform/mem_store.h"

namespace tdb::platform {
namespace {

TEST(SimDiskTest, PassesThroughData) {
  MemUntrustedStore mem;
  SimulatedDiskStore disk(&mem);
  ASSERT_TRUE(disk.Create("f", false).ok());
  ASSERT_TRUE(disk.Write("f", 0, Slice("hello")).ok());
  Buffer out;
  ASSERT_TRUE(disk.Read("f", 0, 5, &out).ok());
  EXPECT_EQ(Slice(out).ToString(), "hello");
  EXPECT_EQ(*disk.Size("f"), 5u);
}

TEST(SimDiskTest, SequentialWritesCheaperThanRandom) {
  DiskModel model;
  MemUntrustedStore mem;
  SimulatedDiskStore disk(&mem, model);
  ASSERT_TRUE(disk.Create("log", false).ok());

  // 10 sequential appends: one reposition then rotations only.
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(disk.Write("log", i * 100, Buffer(100, 0)).ok());
  }
  double sequential = disk.simulated_seconds();

  ASSERT_TRUE(disk.Create("data", false).ok());
  ASSERT_TRUE(disk.Write("data", 100000, Buffer(1, 0)).ok());  // Pre-size.
  disk.ResetClock();
  // 10 scattered writes: a reposition each.
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(disk.Write("data", (9 - i) * 8192, Buffer(100, 0)).ok());
  }
  double random = disk.simulated_seconds();
  EXPECT_GT(random, sequential);
  // Every random write pays the reposition; only the first sequential one
  // does (9 extra repositions across the 10 writes).
  double expected_gap = 9 * model.reposition_ms / 1000.0;
  EXPECT_NEAR(random - sequential, expected_gap, 1e-6);
}

TEST(SimDiskTest, AlternatingFilesAlwaysRepositions) {
  DiskModel model;
  MemUntrustedStore mem;
  SimulatedDiskStore disk(&mem, model);
  ASSERT_TRUE(disk.Create("a", false).ok());
  ASSERT_TRUE(disk.Create("b", false).ok());
  disk.ResetClock();
  for (int i = 0; i < 4; i++) {
    ASSERT_TRUE(disk.Write(i % 2 ? "a" : "b", 0, Buffer(10, 0)).ok());
  }
  double per_write = model.reposition_ms + model.rotational_ms / 2 +
                     10.0 / (model.bandwidth_mb_s * 1024 * 1024) * 1000;
  EXPECT_NEAR(disk.simulated_seconds(), 4 * per_write / 1000.0, 1e-9);
}

TEST(SimDiskTest, TransferTimeScalesWithBytes) {
  MemUntrustedStore mem;
  SimulatedDiskStore disk(&mem);
  ASSERT_TRUE(disk.Create("f", false).ok());
  ASSERT_TRUE(disk.Write("f", 0, Buffer(1024, 0)).ok());
  double small = disk.simulated_seconds();
  disk.ResetClock();
  ASSERT_TRUE(disk.Write("f", 1024, Buffer(1024 * 1024, 0)).ok());
  double big = disk.simulated_seconds();
  EXPECT_GT(big, small);
}

TEST(StoreBackedCounterTest, MonotonicAndPersistedInStore) {
  MemUntrustedStore store;
  StoreBackedCounter counter(&store);
  EXPECT_EQ(*counter.Read(), 0u);
  EXPECT_EQ(*counter.Increment(), 1u);
  EXPECT_EQ(*counter.Increment(), 2u);
  // A fresh handle over the same store continues the sequence.
  StoreBackedCounter again(&store);
  EXPECT_EQ(*again.Read(), 2u);
  EXPECT_EQ(*again.Increment(), 3u);
  // The value lives in the (simulated) untrusted store as a file.
  EXPECT_TRUE(store.Exists("one-way-counter"));
}

TEST(StoreBackedCounterTest, EachIncrementIsAStoreWrite) {
  MemUntrustedStore mem;
  SimulatedDiskStore disk(&mem);
  StoreBackedCounter counter(&disk);
  ASSERT_TRUE(counter.Increment().ok());
  double one = disk.simulated_seconds();
  ASSERT_TRUE(counter.Increment().ok());
  EXPECT_GT(disk.simulated_seconds(), one);
}

}  // namespace
}  // namespace tdb::platform
