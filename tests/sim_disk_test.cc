#include "platform/sim_disk.h"

#include <gtest/gtest.h>

#include "platform/fault_injection.h"
#include "platform/mem_store.h"

namespace tdb::platform {
namespace {

// Pins the sector-atomic torn-write model: a crashed write persists a
// prefix that always ends on an absolute sector boundary (sectors commit
// atomically, in order), or the whole write if it was fully requested.
TEST(SectorTornWriteTest, TornLengthEndsOnSectorBoundary) {
  // Requested >= write length: the whole write survives.
  EXPECT_EQ(SectorAtomicTornLength(0, 100, 100, 512), 100u);
  EXPECT_EQ(SectorAtomicTornLength(0, 100, 1000, 512), 100u);
  // Write starts at a sector boundary: prefix rounds down to the boundary.
  EXPECT_EQ(SectorAtomicTornLength(0, 2000, 1000, 512), 512u);
  EXPECT_EQ(SectorAtomicTornLength(1024, 2000, 1000, 512), 512u);  // ->1536.
  // Under one sector from the start: nothing survives.
  EXPECT_EQ(SectorAtomicTornLength(0, 2000, 511, 512), 0u);
  EXPECT_EQ(SectorAtomicTornLength(0, 100, 50, 512), 0u);
  // Unaligned write offset: the boundary is ABSOLUTE (offset + torn ends
  // at a multiple of the sector size), not relative to the write start.
  EXPECT_EQ(SectorAtomicTornLength(100, 2000, 1000, 512), 924u);  // ->1024.
  EXPECT_EQ(SectorAtomicTornLength(100, 2000, 412, 512), 412u);   // ->512.
  EXPECT_EQ(SectorAtomicTornLength(100, 2000, 411, 512), 0u);     // <512.
  // Exactly reaching a boundary keeps everything up to it.
  EXPECT_EQ(SectorAtomicTornLength(512, 1024, 512, 512), 512u);
  // Degenerate sector size: byte-granular tearing.
  EXPECT_EQ(SectorAtomicTornLength(7, 100, 33, 0), 33u);
  // Zero requested never persists anything.
  EXPECT_EQ(SectorAtomicTornLength(0, 100, 0, 512), 0u);
  EXPECT_EQ(SectorAtomicTornLength(512, 100, 0, 512), 0u);
}

TEST(SectorTornWriteTest, DeterministicCrashScheduleTearsAtSector) {
  // CrashAtWrite(index, num, den): the index-th write after arming crashes
  // and persists the sector-aligned prefix of num/den of its bytes.
  MemUntrustedStore mem;
  FaultInjectingStore faulty(&mem);
  ASSERT_TRUE(faulty.Create("f", false).ok());

  Buffer data(2048, 0xAA);
  faulty.CrashAtWrite(2, 1, 2);  // Third write crashes, half requested.
  ASSERT_TRUE(faulty.Write("f", 0, data).ok());
  EXPECT_EQ(faulty.writes_seen(), 1u);
  ASSERT_TRUE(faulty.Write("f", 2048, data).ok());
  Status crashed = faulty.Write("f", 4096, data);
  EXPECT_FALSE(crashed.ok());
  EXPECT_TRUE(faulty.crashed());
  // 1024 of 2048 requested, already sector aligned: file ends at 5120.
  EXPECT_EQ(*mem.Size("f"), 4096u + 1024u);

  // The same schedule replays identically on a fresh store (determinism).
  MemUntrustedStore mem2;
  FaultInjectingStore faulty2(&mem2);
  ASSERT_TRUE(faulty2.Create("f", false).ok());
  faulty2.CrashAtWrite(2, 1, 2);
  ASSERT_TRUE(faulty2.Write("f", 0, data).ok());
  ASSERT_TRUE(faulty2.Write("f", 2048, data).ok());
  EXPECT_FALSE(faulty2.Write("f", 4096, data).ok());
  EXPECT_EQ(*mem2.Size("f"), *mem.Size("f"));

  // Tear fraction 0: the crashing write persists nothing.
  MemUntrustedStore mem3;
  FaultInjectingStore faulty3(&mem3);
  ASSERT_TRUE(faulty3.Create("f", false).ok());
  faulty3.CrashAtWrite(0, 0, 4);
  EXPECT_FALSE(faulty3.Write("f", 0, data).ok());
  EXPECT_EQ(*mem3.Size("f"), 0u);

  // Tear fraction 4/4: the full write lands before the crash surfaces.
  MemUntrustedStore mem4;
  FaultInjectingStore faulty4(&mem4);
  ASSERT_TRUE(faulty4.Create("f", false).ok());
  faulty4.CrashAtWrite(0, 4, 4);
  EXPECT_FALSE(faulty4.Write("f", 0, data).ok());
  EXPECT_EQ(*mem4.Size("f"), 2048u);

  // An unaligned crash write keeps the absolute-sector-boundary prefix:
  // offset 100 + requested 1024/2 = 612 rounds down to boundary 512.
  MemUntrustedStore mem5;
  FaultInjectingStore faulty5(&mem5);
  ASSERT_TRUE(faulty5.Create("f", false).ok());
  Buffer unaligned(1024, 0xBB);
  faulty5.CrashAtWrite(0, 1, 2);
  EXPECT_FALSE(faulty5.Write("f", 100, unaligned).ok());
  EXPECT_EQ(*mem5.Size("f"), 512u);
}

TEST(SimDiskTest, PassesThroughData) {
  MemUntrustedStore mem;
  SimulatedDiskStore disk(&mem);
  ASSERT_TRUE(disk.Create("f", false).ok());
  ASSERT_TRUE(disk.Write("f", 0, Slice("hello")).ok());
  Buffer out;
  ASSERT_TRUE(disk.Read("f", 0, 5, &out).ok());
  EXPECT_EQ(Slice(out).ToString(), "hello");
  EXPECT_EQ(*disk.Size("f"), 5u);
}

TEST(SimDiskTest, SequentialWritesCheaperThanRandom) {
  DiskModel model;
  MemUntrustedStore mem;
  SimulatedDiskStore disk(&mem, model);
  ASSERT_TRUE(disk.Create("log", false).ok());

  // 10 sequential appends: one reposition then rotations only.
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(disk.Write("log", i * 100, Buffer(100, 0)).ok());
  }
  double sequential = disk.simulated_seconds();

  ASSERT_TRUE(disk.Create("data", false).ok());
  ASSERT_TRUE(disk.Write("data", 100000, Buffer(1, 0)).ok());  // Pre-size.
  disk.ResetClock();
  // 10 scattered writes: a reposition each.
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(disk.Write("data", (9 - i) * 8192, Buffer(100, 0)).ok());
  }
  double random = disk.simulated_seconds();
  EXPECT_GT(random, sequential);
  // Every random write pays the reposition; only the first sequential one
  // does (9 extra repositions across the 10 writes).
  double expected_gap = 9 * model.reposition_ms / 1000.0;
  EXPECT_NEAR(random - sequential, expected_gap, 1e-6);
}

TEST(SimDiskTest, AlternatingFilesAlwaysRepositions) {
  DiskModel model;
  MemUntrustedStore mem;
  SimulatedDiskStore disk(&mem, model);
  ASSERT_TRUE(disk.Create("a", false).ok());
  ASSERT_TRUE(disk.Create("b", false).ok());
  disk.ResetClock();
  for (int i = 0; i < 4; i++) {
    ASSERT_TRUE(disk.Write(i % 2 ? "a" : "b", 0, Buffer(10, 0)).ok());
  }
  double per_write = model.reposition_ms + model.rotational_ms / 2 +
                     10.0 / (model.bandwidth_mb_s * 1024 * 1024) * 1000;
  EXPECT_NEAR(disk.simulated_seconds(), 4 * per_write / 1000.0, 1e-9);
}

TEST(SimDiskTest, TransferTimeScalesWithBytes) {
  MemUntrustedStore mem;
  SimulatedDiskStore disk(&mem);
  ASSERT_TRUE(disk.Create("f", false).ok());
  ASSERT_TRUE(disk.Write("f", 0, Buffer(1024, 0)).ok());
  double small = disk.simulated_seconds();
  disk.ResetClock();
  ASSERT_TRUE(disk.Write("f", 1024, Buffer(1024 * 1024, 0)).ok());
  double big = disk.simulated_seconds();
  EXPECT_GT(big, small);
}

TEST(StoreBackedCounterTest, MonotonicAndPersistedInStore) {
  MemUntrustedStore store;
  StoreBackedCounter counter(&store);
  EXPECT_EQ(*counter.Read(), 0u);
  EXPECT_EQ(*counter.Increment(), 1u);
  EXPECT_EQ(*counter.Increment(), 2u);
  // A fresh handle over the same store continues the sequence.
  StoreBackedCounter again(&store);
  EXPECT_EQ(*again.Read(), 2u);
  EXPECT_EQ(*again.Increment(), 3u);
  // The value lives in the (simulated) untrusted store as a file.
  EXPECT_TRUE(store.Exists("one-way-counter"));
}

TEST(StoreBackedCounterTest, EachIncrementIsAStoreWrite) {
  MemUntrustedStore mem;
  SimulatedDiskStore disk(&mem);
  StoreBackedCounter counter(&disk);
  ASSERT_TRUE(counter.Increment().ok());
  double one = disk.simulated_seconds();
  ASSERT_TRUE(counter.Increment().ok());
  EXPECT_GT(disk.simulated_seconds(), one);
}

}  // namespace
}  // namespace tdb::platform
