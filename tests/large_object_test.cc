// Large-object edge cases: part-boundary sizes (exact multiple, one byte
// over/under), the mid-stream-crash contract (no partial object is ever
// visible), and tamper detection on an interior part chunk.

#include "object/large_object.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "chunk/chunk_store.h"
#include "common/check.h"
#include "crypto/cipher_suite.h"
#include "harness/region_map.h"
#include "platform/fault_injection.h"
#include "platform/mem_store.h"
#include "platform/one_way_counter.h"
#include "platform/secret_store.h"
#include "workload/workload.h"

namespace tdb::object {
namespace {

constexpr uint32_t kPartBytes = 256;

struct Env {
  platform::MemUntrustedStore base;
  platform::FaultInjectingStore faulty{&base};
  platform::MemSecretStore secrets;
  platform::MemOneWayCounter counter;
  std::unique_ptr<chunk::ChunkStore> chunks;
  std::unique_ptr<ObjectStore> objects;
  bool compression;

  explicit Env(bool compress = false, bool open = true)
      : compression(compress) {
    TDB_CHECK(secrets.Provision(Slice("lob-test-secret")).ok());
    if (open) {
      Status opened = OpenAll();
      TDB_CHECK(opened.ok(), opened.ToString());
    }
  }

  Status OpenAll() {
    objects.reset();
    chunks.reset();
    chunk::ChunkStoreOptions copts;
    copts.security = crypto::SecurityConfig::Modern();
    copts.segment_size = 8 * 1024;
    copts.map_fanout = 8;
    copts.compression = compression;
    auto cs = chunk::ChunkStore::Open(&faulty, &secrets, &counter, copts);
    TDB_RETURN_IF_ERROR(cs.status());
    chunks = std::move(cs).value();
    auto os = ObjectStore::Open(chunks.get());
    TDB_RETURN_IF_ERROR(os.status());
    objects = std::move(os).value();
    return RegisterLargeObjectClasses(objects.get());
  }

  void Restart() {
    TDB_CHECK(chunks->Close().ok());
    Status opened = OpenAll();
    TDB_CHECK(opened.ok(), opened.ToString());
  }

  /// Simulated power failure: drop the stack without Close(), clear the
  /// injected fault, reopen (recovery).
  Status Reboot() {
    objects.reset();
    chunks.reset();
    faulty.Reboot();
    return OpenAll();
  }
};

Buffer TestValue(uint64_t seed, size_t size) {
  return workload::ValuePayload(seed, static_cast<uint32_t>(size));
}

/// Writes `value` as a large object, anchors the manifest under `root`,
/// commits durably. Returns the manifest oid.
Result<ObjectId> WriteAnchored(Env* env, const std::string& root,
                               uint64_t tag, const Buffer& value,
                               size_t append_step) {
  LargeObjectWriter writer(env->objects.get(), kPartBytes);
  for (size_t off = 0; off < value.size(); off += append_step) {
    size_t n = std::min(append_step, value.size() - off);
    TDB_RETURN_IF_ERROR(writer.Append(Slice(value.data() + off, n)));
  }
  TDB_ASSIGN_OR_RETURN(std::unique_ptr<LargeObjectManifest> manifest,
                       writer.Finish(tag));
  Transaction txn(env->objects.get());
  TDB_ASSIGN_OR_RETURN(ObjectId oid, txn.Insert(std::move(manifest)));
  TDB_RETURN_IF_ERROR(env->objects->SetNamedRoot(root, oid));
  TDB_RETURN_IF_ERROR(txn.Commit(/*durable=*/true));
  return oid;
}

Status ReadBack(Env* env, ObjectId oid, Buffer* out) {
  ReadTransaction txn(env->objects.get());
  LargeObjectReader reader(&txn);
  TDB_RETURN_IF_ERROR(reader.Open(oid));
  return reader.ReadAll(out);
}

/// GetNamedRoot returns OK with kInvalidObjectId for an absent root; a
/// root may also dangle (point at a never-committed manifest) when a
/// crash separates the header write from the manifest commit. Both mean
/// "no object visible".
Result<ObjectId> VisibleRoot(Env* env, const std::string& root) {
  TDB_ASSIGN_OR_RETURN(ObjectId oid, env->objects->GetNamedRoot(root));
  if (oid == kInvalidObjectId) return Status::NotFound("no root");
  ReadTransaction txn(env->objects.get());
  auto manifest = txn.Take<LargeObjectManifest>(oid);
  TDB_RETURN_IF_ERROR(manifest.status());  // NotFound: dangling root.
  return oid;
}

// --- Part-boundary sizes ---------------------------------------------------

class BoundarySizeTest : public ::testing::TestWithParam<bool> {};

TEST_P(BoundarySizeTest, ExactMultipleOneOverOneUnder) {
  Env env(GetParam());
  struct Case {
    size_t size;
    size_t want_parts;
  };
  const Case cases[] = {
      {0, 0},                      // Empty object: manifest only.
      {1, 1},                      // Minimal.
      {kPartBytes - 1, 1},         // One byte under one part.
      {kPartBytes, 1},             // Exactly one part.
      {kPartBytes + 1, 2},         // One byte over: short second part.
      {3 * kPartBytes, 3},         // Exact multiple.
      {3 * kPartBytes + 1, 4},     // One over the multiple.
      {3 * kPartBytes - 1, 3},     // One under the multiple.
  };
  uint64_t tag = 1;
  for (const Case& c : cases) {
    SCOPED_TRACE("size=" + std::to_string(c.size));
    Buffer value = TestValue(90 + tag, c.size);
    // Odd append step so appends straddle part boundaries.
    auto oid = WriteAnchored(&env, "lob-" + std::to_string(tag), tag, value,
                             kPartBytes / 3 + 7);
    ASSERT_TRUE(oid.ok()) << oid.status().ToString();

    ReadTransaction txn(env.objects.get());
    LargeObjectReader reader(&txn);
    ASSERT_TRUE(reader.Open(*oid).ok());
    EXPECT_EQ(reader.size(), c.size);
    ASSERT_NE(reader.manifest(), nullptr);
    EXPECT_EQ(reader.manifest()->parts().size(), c.want_parts);

    // Chunked read with a buffer that never aligns with part boundaries.
    Buffer got;
    uint8_t buf[kPartBytes / 2 + 3];
    while (true) {
      auto n = reader.Read(buf, sizeof(buf));
      ASSERT_TRUE(n.ok()) << n.status().ToString();
      if (*n == 0) break;
      got.insert(got.end(), buf, buf + *n);
    }
    EXPECT_TRUE(got == value) << "streamed bytes differ at size " << c.size;
    tag++;
  }

  // All objects survive a clean restart byte-for-byte.
  env.Restart();
  tag = 1;
  for (const Case& c : cases) {
    SCOPED_TRACE("reopen size=" + std::to_string(c.size));
    auto oid = env.objects->GetNamedRoot("lob-" + std::to_string(tag));
    ASSERT_TRUE(oid.ok()) << oid.status().ToString();
    Buffer got;
    ASSERT_TRUE(ReadBack(&env, *oid, &got).ok());
    EXPECT_TRUE(got == TestValue(90 + tag, c.size));
    tag++;
  }
}

INSTANTIATE_TEST_SUITE_P(Codec, BoundarySizeTest, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? std::string("On")
                                             : std::string("Off");
                         });

TEST(LargeObjectTest, ReadAllAfterPartialReadReturnsRemainder) {
  Env env;
  Buffer value = TestValue(7, 2 * kPartBytes + 17);
  auto oid = WriteAnchored(&env, "lob-partial", 7, value, 100);
  ASSERT_TRUE(oid.ok());

  ReadTransaction txn(env.objects.get());
  LargeObjectReader reader(&txn);
  ASSERT_TRUE(reader.Open(*oid).ok());
  uint8_t buf[19];
  auto n = reader.Read(buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, sizeof(buf));
  Buffer rest;
  ASSERT_TRUE(reader.ReadAll(&rest).ok());
  EXPECT_EQ(rest.size(), value.size() - sizeof(buf));
  EXPECT_TRUE(Slice(rest) == Slice(value.data() + sizeof(buf), rest.size()));
}

TEST(LargeObjectTest, RemoveFreesManifestAndParts) {
  Env env;
  Buffer value = TestValue(8, 3 * kPartBytes);
  auto oid = WriteAnchored(&env, "lob-rm", 8, value, 333);
  ASSERT_TRUE(oid.ok());
  std::vector<ObjectId> parts;
  {
    ReadTransaction txn(env.objects.get());
    LargeObjectReader reader(&txn);
    ASSERT_TRUE(reader.Open(*oid).ok());
    parts = reader.manifest()->parts();
  }
  {
    Transaction txn(env.objects.get());
    ASSERT_TRUE(RemoveLargeObject(&txn, *oid).ok());
    ASSERT_TRUE(txn.Commit(true).ok());
  }
  // Manifest and every part are gone.
  ReadTransaction txn(env.objects.get());
  EXPECT_TRUE(txn.Take<LargeObjectManifest>(*oid).status().IsNotFound());
  for (ObjectId part : parts) {
    EXPECT_TRUE(txn.Take<LargeObjectPart>(part).status().IsNotFound());
  }
}

// --- Mid-stream crash ------------------------------------------------------

TEST(LargeObjectCrashTest, MidStreamCrashLeavesNoPartialObject) {
  Env env;
  // A committed object that must survive unharmed.
  Buffer stable = TestValue(1, 2 * kPartBytes + 5);
  auto stable_oid = WriteAnchored(&env, "lob-stable", 1, stable, 97);
  ASSERT_TRUE(stable_oid.ok()) << stable_oid.status().ToString();

  // Start streaming a second object and crash mid-part-flush: arm the
  // crash a couple of base-store writes into the append sequence.
  env.faulty.CrashAtWrite(/*index=*/2, /*tear_num=*/2, /*tear_den=*/4);
  LargeObjectWriter writer(env.objects.get(), kPartBytes);
  Buffer doomed = TestValue(2, 6 * kPartBytes);
  Status streamed = Status::OK();
  for (size_t off = 0; off < doomed.size() && streamed.ok(); off += 64) {
    streamed = writer.Append(Slice(doomed.data() + off, 64));
  }
  if (streamed.ok()) {
    // Crash may fire at the manifest commit instead; drive it there.
    auto finish = writer.Finish(2);
    if (finish.ok()) {
      Transaction txn(env.objects.get());
      auto ins = txn.Insert(std::move(finish).value());
      if (ins.ok()) {
        (void)env.objects->SetNamedRoot("lob-doomed", *ins);
        streamed = txn.Commit(true);
      } else {
        streamed = ins.status();
      }
    } else {
      streamed = finish.status();
    }
  }
  ASSERT_FALSE(streamed.ok()) << "crash never fired";
  ASSERT_TRUE(env.faulty.crashed());

  // Recovery: the stable object is intact; the doomed one does not exist
  // in any form — its manifest was never committed, so no root resolves
  // and no partial state is reachable.
  ASSERT_TRUE(env.Reboot().ok());
  auto recovered_oid = env.objects->GetNamedRoot("lob-stable");
  ASSERT_TRUE(recovered_oid.ok());
  Buffer got;
  ASSERT_TRUE(ReadBack(&env, *recovered_oid, &got).ok());
  EXPECT_TRUE(got == stable);
  EXPECT_TRUE(VisibleRoot(&env, "lob-doomed").status().IsNotFound());
  uint64_t checked = 0;
  EXPECT_TRUE(env.chunks->VerifyIntegrity(&checked).ok());
}

TEST(LargeObjectCrashTest, CrashSweepOverManifestCommitWindow) {
  // Exhaustively crash at every write index of a small streamed commit;
  // after each recovery the object is either fully present (bit-exact) or
  // fully absent. Never partial.
  Buffer value = TestValue(3, 2 * kPartBytes + 31);
  uint64_t total_writes = 0;
  {
    Env probe;
    uint64_t before = probe.faulty.writes_seen();
    ASSERT_TRUE(WriteAnchored(&probe, "lob-x", 3, value, 77).ok());
    total_writes = probe.faulty.writes_seen() - before;
  }
  ASSERT_GT(total_writes, 0u);
  uint64_t full = 0, absent = 0;
  for (uint64_t index = 0; index < total_writes; index++) {
    for (uint32_t tear_num : {0u, 2u, 4u}) {
      SCOPED_TRACE("crash at write " + std::to_string(index) + " tear " +
                   std::to_string(tear_num) + "/4");
      Env env;
      env.faulty.CrashAtWrite(index, tear_num, 4);
      auto written = WriteAnchored(&env, "lob-x", 3, value, 77);
      ASSERT_FALSE(written.ok());
      ASSERT_TRUE(env.Reboot().ok());
      auto oid = VisibleRoot(&env, "lob-x");
      if (oid.ok()) {
        Buffer got;
        ASSERT_TRUE(ReadBack(&env, *oid, &got).ok())
            << "visible object must be fully readable";
        ASSERT_TRUE(got == value) << "visible object must be bit-exact";
        full++;
      } else {
        ASSERT_TRUE(oid.status().IsNotFound()) << oid.status().ToString();
        absent++;
      }
    }
  }
  // The commit point sits inside the window, so both outcomes occur: a
  // crash whose final write fully persisted (tear 4/4 at the commit
  // point) recovers the whole object; earlier crashes recover none of it.
  EXPECT_GT(absent, 0u);
  EXPECT_GT(full, 0u);
  std::cout << "LOB-CRASH-SWEEP writes=" << total_writes << " full=" << full
            << " absent=" << absent << std::endl;
}

// --- Tampered interior part ------------------------------------------------

TEST(LargeObjectTamperTest, TamperedMiddlePartIsDetected) {
  platform::MemUntrustedStore::Image image;
  uint64_t counter_value = 0;
  Buffer value = TestValue(4, 3 * kPartBytes);  // Exactly parts 0,1,2.
  {
    Env env;
    ASSERT_TRUE(WriteAnchored(&env, "lob-t", 4, value, 123).ok());
    ASSERT_TRUE(env.chunks->Close().ok());
    image = env.base.SnapshotImage();
    counter_value = env.counter.Read().value();
  }

  std::vector<harness::TamperRegion> payloads;
  for (const harness::TamperRegion& region : harness::ClassifyImage(image)) {
    if (region.cls == harness::RegionClass::kChunkPayload) {
      payloads.push_back(region);
    }
  }
  // At least the three part chunks plus the manifest (the image may also
  // hold object-store header versions, themselves sealed payloads).
  ASSERT_GE(payloads.size(), 4u) << "expected >= 3 parts + manifest";

  uint64_t detected = 0, masked = 0;
  for (size_t i = 0; i < payloads.size(); i++) {
    SCOPED_TRACE("payload region " + std::to_string(i));
    // Fresh stack over the tampered image, with the trusted state (secret
    // + one-way counter) carried over — tamper evaluation is meaningless
    // if the replay defense starts from a virgin counter.
    Env env(/*compress=*/false, /*open=*/false);
    platform::MemUntrustedStore::Image copy = image;
    auto& bytes = copy[payloads[i].file];
    bytes[payloads[i].offset + payloads[i].length / 2] ^= 0x40;
    env.base.RestoreImage(std::move(copy));
    while (env.counter.Read().value() < counter_value) {
      ASSERT_TRUE(env.counter.Increment().ok());
    }
    Status status = env.OpenAll();
    if (status.ok()) {
      auto oid = VisibleRoot(&env, "lob-t");
      if (oid.ok()) {
        Buffer got;
        status = ReadBack(&env, *oid, &got);
        if (status.ok()) {
          // Never silent: a readable object must be bit-exact. (Flipping
          // a superseded chunk version the live tree no longer references
          // may be fully masked.)
          ASSERT_TRUE(got == value) << "silent corruption of payload " << i;
          masked++;
          continue;
        }
      } else {
        status = oid.status();
      }
    }
    EXPECT_TRUE(status.IsTamperDetected() || status.IsReplayDetected() ||
                status.IsCorruption())
        << "payload " << i << ": " << status.ToString();
    detected++;
  }
  EXPECT_EQ(detected + masked, payloads.size());
  // The three part chunks and the manifest are all on the read path, so
  // at least those four flips must be detected — which covers the middle
  // part in particular.
  EXPECT_GE(detected, 4u);
  std::cout << "LOB-TAMPER payloads=" << payloads.size()
            << " detected=" << detected << " masked=" << masked << std::endl;
}

}  // namespace
}  // namespace tdb::object
