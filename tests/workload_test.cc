// Workload diversity suite: deterministic small-scale runs of every YCSB
// mix, the time-series retention scenario, and streaming large objects —
// each checked against a commit-hook oracle, re-checked after a clean
// reopen (compression on and off), and driven through the crash/tamper
// harness (sharded exhaustive sweeps with the zero-silent-acceptance and
// audit-trail contracts).

#include <gtest/gtest.h>

#include <algorithm>
#include <iostream>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "chunk/chunk_store.h"
#include "common/check.h"
#include "common/random.h"
#include "crypto/cipher_suite.h"
#include "harness/region_map.h"
#include "harness/replay.h"
#include "harness/workload_driver.h"
#include "platform/mem_store.h"
#include "platform/one_way_counter.h"
#include "platform/secret_store.h"
#include "workload/key_chooser.h"
#include "workload/large_objects.h"
#include "workload/timeseries.h"
#include "workload/ycsb.h"

namespace tdb::workload {
namespace {

using harness::Scenario;
using harness::SweepStats;
using harness::TraceSpec;

// --- Key choosers ----------------------------------------------------------

TEST(KeyChooserTest, ZipfianStaysInRangeAndIsDeterministic) {
  ZipfianChooser zipf(100);
  Random rng1(42), rng2(42);
  ZipfianChooser zipf2(100);
  for (int i = 0; i < 2000; i++) {
    uint64_t a = zipf.Next(&rng1);
    uint64_t b = zipf2.Next(&rng2);
    ASSERT_LT(a, 100u);
    ASSERT_EQ(a, b);
  }
}

TEST(KeyChooserTest, ZipfianIsSkewedTowardSmallRanks) {
  ZipfianChooser zipf(1000);
  Random rng(7);
  uint64_t zero_hits = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; i++) {
    if (zipf.Next(&rng) == 0) zero_hits++;
  }
  // Rank 0 carries ~zeta-share of the mass (theta=0.99 over n=1000:
  // roughly 13%); a uniform chooser would give 0.1%. Assert a wide gap.
  EXPECT_GT(zero_hits, kDraws / 20);
}

TEST(KeyChooserTest, ScrambledZipfianSpreadsHotKeys) {
  ScrambledZipfianChooser scrambled(1000);
  Random rng(7);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; i++) {
    uint64_t key = scrambled.Next(&rng);
    ASSERT_LT(key, 1000u);
    counts[key]++;
  }
  // Still skewed (some key is hot) but the hottest key is no longer 0 in
  // general — the FNV scramble maps rank 0 elsewhere.
  auto hottest =
      std::max_element(counts.begin(), counts.end(),
                       [](auto& a, auto& b) { return a.second < b.second; });
  EXPECT_GT(hottest->second, 20000 / 100);
  EXPECT_EQ(hottest->first, FnvHash64(0) % 1000);
}

TEST(KeyChooserTest, LatestFavorsNewestAndGrows) {
  LatestChooser latest(100);
  Random rng(9);
  uint64_t newest_half = 0;
  for (int i = 0; i < 5000; i++) {
    uint64_t key = latest.Next(&rng, 100);
    ASSERT_LT(key, 100u);
    if (key >= 50) newest_half++;
  }
  EXPECT_GT(newest_half, 5000u * 3 / 5);  // Heavily biased to recent keys.
  latest.Grow(200);
  for (int i = 0; i < 100; i++) ASSERT_LT(latest.Next(&rng, 200), 200u);
}

TEST(KeyChooserTest, ZipfianGrowIsIncremental) {
  ZipfianChooser grown(10);
  grown.Grow(500);
  ZipfianChooser fresh(500);
  Random rng1(3), rng2(3);
  for (int i = 0; i < 200; i++) {
    ASSERT_EQ(grown.Next(&rng1), fresh.Next(&rng2));
  }
}

// --- Shared fixtures -------------------------------------------------------

/// Applies acked commits to a reference model (the test-side oracle).
class ModelHook final : public CommitHook {
 public:
  void BeginCommit() override { pending_.clear(); }
  void PendingWrite(uint64_t id, Buffer image) override {
    pending_.emplace_back(id, std::move(image), false);
  }
  void PendingRemove(uint64_t id) override {
    pending_.emplace_back(id, Buffer{}, true);
  }
  void EndCommit(bool acked, bool /*durable*/) override {
    if (acked) {
      for (auto& [id, image, removed] : pending_) {
        if (removed) {
          model_.erase(id);
        } else {
          model_[id] = std::move(image);
        }
      }
    }
    pending_.clear();
  }

  const std::map<uint64_t, Buffer>& model() const { return model_; }

 private:
  std::vector<std::tuple<uint64_t, Buffer, bool>> pending_;
  std::map<uint64_t, Buffer> model_;
};

struct Env {
  platform::MemUntrustedStore store;
  platform::MemSecretStore secrets;
  platform::MemOneWayCounter counter;
  std::unique_ptr<chunk::ChunkStore> chunks;
  std::unique_ptr<object::ObjectStore> objects;
  std::unique_ptr<collection::CollectionStore> collections;
  bool compression;

  explicit Env(bool compress = false) : compression(compress) {
    TDB_CHECK(secrets.Provision(Slice("workload-test-secret")).ok());
    OpenAll();
  }

  void OpenAll() {
    collections.reset();
    objects.reset();
    chunks.reset();
    chunk::ChunkStoreOptions copts;
    copts.security = crypto::SecurityConfig::Modern();
    copts.segment_size = 8 * 1024;
    copts.map_fanout = 8;
    copts.compression = compression;
    chunks =
        std::move(chunk::ChunkStore::Open(&store, &secrets, &counter, copts))
            .value();
    auto os = object::ObjectStore::Open(chunks.get());
    TDB_CHECK(os.ok(), os.status().ToString());
    objects = std::move(os).value();
    TDB_CHECK(RegisterYcsbClasses(objects.get()).ok());
    TDB_CHECK(RegisterTimeSeriesClasses(objects.get()).ok());
    TDB_CHECK(RegisterLargeObjectWorkloadClasses(objects.get()).ok());
    auto cs = collection::CollectionStore::Open(objects.get());
    TDB_CHECK(cs.ok(), cs.status().ToString());
    collections = std::move(cs).value();
  }

  void Restart() {
    TDB_CHECK(chunks->Close().ok());
    OpenAll();
  }
};

// --- YCSB mixes ------------------------------------------------------------

/// (mix index, compression) — every mix runs with the codec off and on.
class YcsbMixTest
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(YcsbMixTest, DeterministicRunMatchesOracleAndSurvivesReopen) {
  const Mix mix = MixFromIndex(std::get<0>(GetParam()));
  Env env(std::get<1>(GetParam()));

  YcsbSpec spec;
  spec.mix = mix;
  spec.records = 20;
  spec.ops = 60;
  spec.value_bytes = 48;
  spec.seed = 11 + std::get<0>(GetParam());

  ModelHook hook;
  auto opened = YcsbDriver::Open(env.objects.get(), env.collections.get(),
                                 spec, /*create=*/true, &hook);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<YcsbDriver> driver = std::move(opened).value();
  ASSERT_EQ(driver->live_records(), spec.records);

  Status run = driver->Run(/*stream=*/0, &hook);
  ASSERT_TRUE(run.ok()) << run.ToString();

  // Final state must match the hook-applied model exactly.
  std::map<uint64_t, Buffer> state;
  Status scanned = driver->Scan(&state);
  ASSERT_TRUE(scanned.ok()) << scanned.ToString();
  EXPECT_EQ(state, hook.model()) << "mix " << MixName(mix);

  // A clean close + reopen recovers the identical table.
  driver.reset();
  env.Restart();
  auto reopened = YcsbDriver::Open(env.objects.get(), env.collections.get(),
                                   spec, /*create=*/false);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  std::map<uint64_t, Buffer> recovered;
  scanned = reopened.value()->Scan(&recovered);
  ASSERT_TRUE(scanned.ok()) << scanned.ToString();
  EXPECT_EQ(recovered, hook.model()) << "mix " << MixName(mix);
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, YcsbMixTest,
    ::testing::Combine(::testing::Range(0, kMixCount),
                       ::testing::Bool()),
    [](const auto& info) {
      return std::string("Mix") +
             MixName(MixFromIndex(std::get<0>(info.param))) +
             (std::get<1>(info.param) ? "Codec" : "Raw");
    });

TEST(YcsbTest, RunsAreDeterministicAcrossDrivers) {
  YcsbSpec spec;
  spec.mix = Mix::kA;
  spec.records = 12;
  spec.ops = 30;
  spec.seed = 5;
  std::map<uint64_t, Buffer> first, second;
  for (int round = 0; round < 2; round++) {
    Env env;
    auto driver = YcsbDriver::Open(env.objects.get(), env.collections.get(),
                                   spec, true);
    ASSERT_TRUE(driver.ok());
    ASSERT_TRUE(driver.value()->Run(0).ok());
    ASSERT_TRUE(driver.value()->Scan(round == 0 ? &first : &second).ok());
  }
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

TEST(YcsbTest, InsertHeadroomExhaustionDegradesGracefully) {
  Env env;
  YcsbSpec spec;
  spec.mix = Mix::kD;  // 5% inserts, latest distribution.
  spec.records = 8;
  spec.ops = 120;
  spec.max_inserts = 2;  // Exhausts quickly; inserts degrade to reads.
  spec.seed = 3;
  auto driver = YcsbDriver::Open(env.objects.get(), env.collections.get(),
                                 spec, true);
  ASSERT_TRUE(driver.ok());
  ASSERT_TRUE(driver.value()->Run(0).ok()) << "degraded inserts must not fail";
  EXPECT_LE(driver.value()->live_records(), 10u);
}

// --- Time series -----------------------------------------------------------

class TimeSeriesTest : public ::testing::TestWithParam<bool> {};

TEST_P(TimeSeriesTest, RetentionRunMatchesOracleAndSurvivesReopen) {
  Env env(GetParam());
  TimeSeriesSpec spec;
  spec.seed = 21;
  spec.batches = 24;
  spec.points_per_batch = 6;
  spec.retention_window = 300;  // 30 points; forces several retentions.
  spec.retention_every = 3;

  ModelHook hook;
  auto opened = TimeSeriesDriver::Open(env.collections.get(), spec, true);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<TimeSeriesDriver> driver = std::move(opened).value();
  Status run = driver->Run(&hook);
  ASSERT_TRUE(run.ok()) << run.ToString();

  EXPECT_EQ(driver->points_appended(), 24u * 6u);
  EXPECT_GT(driver->points_deleted(), 0u) << "retention never fired";
  EXPECT_LT(driver->model_size(), driver->points_appended());

  std::map<uint64_t, Buffer> state;
  ASSERT_TRUE(driver->ScanAll(&state).ok());
  EXPECT_EQ(state, hook.model());
  EXPECT_EQ(state.size(), driver->model_size());

  driver.reset();
  env.Restart();
  auto reopened = TimeSeriesDriver::Open(env.collections.get(), spec, false);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  std::map<uint64_t, Buffer> recovered;
  ASSERT_TRUE(reopened.value()->ScanAll(&recovered).ok());
  EXPECT_EQ(recovered, hook.model());
}

INSTANTIATE_TEST_SUITE_P(Codec, TimeSeriesTest, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? std::string("On")
                                             : std::string("Off");
                         });

// --- Large objects ---------------------------------------------------------

class LargeObjectScenarioTest : public ::testing::TestWithParam<bool> {};

TEST_P(LargeObjectScenarioTest, StreamedRunMatchesOracleAndSurvivesReopen) {
  Env env(GetParam());
  LargeObjectSpec spec;
  spec.seed = 31;
  spec.ops = 16;
  spec.part_bytes = 128;
  spec.max_parts = 4;

  ModelHook hook;
  auto opened = LargeObjectDriver::Open(env.objects.get(), spec, true);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<LargeObjectDriver> driver = std::move(opened).value();
  Status run = driver->Run(&hook);
  ASSERT_TRUE(run.ok()) << run.ToString();
  EXPECT_GT(driver->bytes_written(), 0u);

  std::map<uint64_t, Buffer> state;
  ASSERT_TRUE(driver->ScanAll(&state).ok());
  EXPECT_EQ(state, hook.model());

  driver.reset();
  env.Restart();
  auto reopened = LargeObjectDriver::Open(env.objects.get(), spec, false);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  std::map<uint64_t, Buffer> recovered;
  ASSERT_TRUE(reopened.value()->ScanAll(&recovered).ok());
  EXPECT_EQ(recovered, hook.model());
}

INSTANTIATE_TEST_SUITE_P(Codec, LargeObjectScenarioTest, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? std::string("On")
                                             : std::string("Off");
                         });

// --- Repro grammar ---------------------------------------------------------

TEST(WorkloadReproTest, ScenarioLinesRoundTrip) {
  for (Scenario scenario : {Scenario::kYcsb, Scenario::kTimeSeries,
                            Scenario::kLargeObject}) {
    harness::ReproCase repro;
    repro.layer = harness::ScenarioName(scenario);
    repro.kind = "crash";
    repro.spec.seed = 9;
    repro.spec.commits = 5;
    repro.spec.slots = 7;
    repro.crash.write_index = 13;
    repro.crash.tear_num = 2;
    std::string line = harness::FormatRepro(repro);
    auto parsed = harness::ParseRepro(line);
    ASSERT_TRUE(parsed.ok()) << line;
    EXPECT_EQ(parsed.value().layer, repro.layer);
    EXPECT_EQ(harness::FormatRepro(parsed.value()), line);
  }
}

TEST(WorkloadReproTest, ReplayRunsAPassingScenarioCase) {
  // A crash index far beyond the trace: the scenario completes, the crash
  // tears the destructor's best-effort shutdown, and recovery must match.
  Status replayed = harness::ReplayRepro(
      "TDB-REPRO v1 layer=largeobject kind=crash preset=strict seed=2 "
      "commits=3 slots=4 point=40 tear=2/4 rcrash=-1");
  EXPECT_TRUE(replayed.ok()) << replayed.ToString();
}

// --- Harness campaigns -----------------------------------------------------

constexpr int kShards = 4;

uint64_t ShardShare(uint64_t total, int shard, int num_shards) {
  return total / num_shards +
         (total % static_cast<uint64_t>(num_shards) >
                  static_cast<uint64_t>(shard)
              ? 1
              : 0);
}

void PrintCoverage(const std::string& campaign, int shard,
                   const SweepStats& stats) {
  std::cout << "HARNESS-COVERAGE campaign=" << campaign << " shard=" << shard
            << "/" << kShards << " write_points=" << stats.write_points
            << " cases=" << stats.cases << " tamper_sites="
            << stats.tamper_sites << " detected=" << stats.detected
            << " masked=" << stats.masked << std::endl;
}

TraceSpec SweepSpec(uint64_t seed, harness::Preset preset) {
  TraceSpec spec;
  spec.seed = seed;
  spec.commits = 4;
  spec.slots = 6;
  spec.preset = preset;
  return spec;
}

struct SweepCase {
  Scenario scenario;
  uint64_t seed;  // For ycsb, seed % 6 picks the mix.
  harness::Preset preset;
};

/// Crash sweeps: seed 0 -> mix A (object store), seed 4 -> mix E (B-tree
/// collection), so both YCSB substrates are swept; the time-series case
/// runs under the compression codec and the large-object case under
/// group commit, so preset-specific crash windows are covered too.
class WorkloadCrashSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

constexpr SweepCase kCrashCases[] = {
    {Scenario::kYcsb, 0, harness::Preset::kStrict},
    {Scenario::kYcsb, 4, harness::Preset::kStrict},
    {Scenario::kTimeSeries, 2, harness::Preset::kCodec},
    {Scenario::kLargeObject, 2, harness::Preset::kGroup},
};

TEST_P(WorkloadCrashSweepTest, Exhaustive) {
  const SweepCase& c = kCrashCases[std::get<0>(GetParam())];
  const int shard = std::get<1>(GetParam());
  TraceSpec spec = SweepSpec(c.seed, c.preset);
  SweepStats stats;
  Status status =
      harness::WorkloadCrashSweep(c.scenario, spec, shard, kShards, &stats);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_GT(stats.write_points, 0u);
  EXPECT_EQ(stats.cases,
            ShardShare(stats.write_points * stats.tear_buckets, shard,
                       kShards));
  PrintCoverage(std::string("workload-crash-") +
                    harness::ScenarioName(c.scenario) + "-seed" +
                    std::to_string(c.seed),
                shard, stats);
}

INSTANTIATE_TEST_SUITE_P(
    Shards, WorkloadCrashSweepTest,
    ::testing::Combine(::testing::Range(0, 4), ::testing::Range(0, kShards)),
    [](const auto& info) {
      const SweepCase& c = kCrashCases[std::get<0>(info.param)];
      return std::string(harness::ScenarioName(c.scenario)) + "Seed" +
             std::to_string(c.seed) + "Shard" +
             std::to_string(std::get<1>(info.param));
    });

/// Tamper sweeps: every region class of every scenario image, first /
/// middle / last byte of each region, with the audit contract enforced by
/// the sweep itself (zero silent acceptances, exactly one deduplicated
/// audit event per detection, none for masked or crash-normal cases).
class WorkloadTamperSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

constexpr SweepCase kTamperCases[] = {
    {Scenario::kYcsb, 0, harness::Preset::kStrict},
    {Scenario::kTimeSeries, 2, harness::Preset::kStrict},
    {Scenario::kLargeObject, 2, harness::Preset::kCodec},
};

TEST_P(WorkloadTamperSweepTest, EveryRegionClass) {
  const SweepCase& c = kTamperCases[std::get<0>(GetParam())];
  const int shard = std::get<1>(GetParam());
  TraceSpec spec = SweepSpec(c.seed, c.preset);
  SweepStats stats;
  Status status =
      harness::WorkloadTamperSweep(c.scenario, spec, shard, kShards, &stats);
  EXPECT_TRUE(status.ok()) << status.ToString();
  // Full-campaign coverage: the image of every scenario contains all four
  // structural region classes.
  for (int cls = 0; cls < harness::kRegionClasses; cls++) {
    EXPECT_GT(stats.sites_per_class[cls], 0u)
        << "region class " << cls << " absent from the "
        << harness::ScenarioName(c.scenario) << " image";
  }
  EXPECT_EQ(stats.detected + stats.masked, stats.cases);
  EXPECT_GT(stats.detected, 0u);
  // Every detection logged exactly one deduplicated audit event; masked
  // cases logged none (already enforced case-by-case; cross-check totals).
  EXPECT_EQ(stats.audit_events, stats.detected);
  PrintCoverage(std::string("workload-tamper-") +
                    harness::ScenarioName(c.scenario),
                shard, stats);
}

INSTANTIATE_TEST_SUITE_P(
    Shards, WorkloadTamperSweepTest,
    ::testing::Combine(::testing::Range(0, 3), ::testing::Range(0, kShards)),
    [](const auto& info) {
      const SweepCase& c = kTamperCases[std::get<0>(info.param)];
      return std::string(harness::ScenarioName(c.scenario)) + "Shard" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace tdb::workload
