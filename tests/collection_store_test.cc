#include "collection/collection.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include <cmath>

#include "collection/btree_index.h"
#include "collection/hash_index.h"
#include "common/random.h"
#include "platform/mem_store.h"
#include "platform/one_way_counter.h"
#include "platform/secret_store.h"

namespace tdb::collection {
namespace {

using object::ObjectId;

// --- Schema: the paper's Figure 7 Meter -----------------------------------

constexpr object::ClassId kMeterClass = 100;

class Meter : public object::Object {
 public:
  Meter() = default;
  Meter(int64_t id, int64_t views, int64_t prints)
      : id_(id), view_count_(views), print_count_(prints) {}

  object::ClassId class_id() const override { return kMeterClass; }
  void Pickle(object::Pickler* p) const override {
    p->PutInt64(id_);
    p->PutInt64(view_count_);
    p->PutInt64(print_count_);
  }
  Status UnpickleFrom(object::Unpickler* u) override {
    TDB_RETURN_IF_ERROR(u->GetInt64(&id_));
    TDB_RETURN_IF_ERROR(u->GetInt64(&view_count_));
    return u->GetInt64(&print_count_);
  }
  size_t ApproxSize() const override { return sizeof(*this); }

  int64_t id_ = 0;
  int64_t view_count_ = 0;
  int64_t print_count_ = 0;
};

// Unrelated class for type-check tests.
constexpr object::ClassId kOtherClass = 101;
class Other : public object::Object {
 public:
  object::ClassId class_id() const override { return kOtherClass; }
  void Pickle(object::Pickler*) const override {}
  Status UnpickleFrom(object::Unpickler*) override { return Status::OK(); }
};

using MeterIndexer = Indexer<Meter, IntKey>;

std::shared_ptr<GenericIndexer> IdIndexer(
    IndexKind kind = IndexKind::kHashTable) {
  return std::make_shared<MeterIndexer>(
      "by-id", Uniqueness::kUnique, kind,
      [](const Meter& m) { return IntKey(m.id_); });
}

// The paper's derived-value functional index: total usage count (§5.1.1).
std::shared_ptr<GenericIndexer> UsageIndexer(
    IndexKind kind = IndexKind::kBTree) {
  return std::make_shared<MeterIndexer>(
      "by-usage", Uniqueness::kNonUnique, kind,
      [](const Meter& m) { return IntKey(m.view_count_ + m.print_count_); });
}

struct Env {
  platform::MemUntrustedStore store;
  platform::MemSecretStore secrets;
  platform::MemOneWayCounter counter;
  std::unique_ptr<chunk::ChunkStore> chunks;
  std::unique_ptr<object::ObjectStore> objects;
  std::unique_ptr<CollectionStore> collections;

  Env() {
    TDB_CHECK(secrets.Provision(Slice("coll-secret")).ok());
    OpenAll();
  }

  void OpenAll() {
    collections.reset();
    objects.reset();
    chunks.reset();
    chunk::ChunkStoreOptions copts;
    copts.security = crypto::SecurityConfig::Modern();
    copts.segment_size = 16 * 1024;
    copts.map_fanout = 16;
    chunks = std::move(chunk::ChunkStore::Open(&store, &secrets, &counter,
                                               copts))
                 .value();
    object::ObjectStoreOptions oopts;
    auto os = object::ObjectStore::Open(chunks.get(), oopts);
    TDB_CHECK(os.ok(), os.status().ToString());
    objects = std::move(os).value();
    TDB_CHECK(objects->registry().Register<Meter>(kMeterClass).ok());
    TDB_CHECK(objects->registry().Register<Other>(kOtherClass).ok());
    auto cs = CollectionStore::Open(objects.get());
    TDB_CHECK(cs.ok(), cs.status().ToString());
    collections = std::move(cs).value();
  }

  void Restart() {
    TDB_CHECK(chunks->Close().ok());
    OpenAll();
  }
};

// One suite run against each index organization (§5.2.4).
class IndexKindTest : public ::testing::TestWithParam<IndexKind> {};

TEST_P(IndexKindTest, InsertAndExactMatch) {
  Env env;
  CTransaction t(env.collections.get());
  auto id_indexer = IdIndexer(GetParam());
  auto coll = t.CreateCollection("profile", id_indexer);
  ASSERT_TRUE(coll.ok()) << coll.status().ToString();
  for (int64_t i = 0; i < 100; i++) {
    auto oid = (*coll)->Insert(&t, std::make_unique<Meter>(i, i * 2, 0));
    ASSERT_TRUE(oid.ok()) << oid.status().ToString();
  }
  IntKey key(42);
  auto it = (*coll)->Query(&t, *id_indexer, key);
  ASSERT_TRUE(it.ok()) << it.status().ToString();
  ASSERT_FALSE((*it)->end());
  auto meter = (*it)->Read<Meter>();
  ASSERT_TRUE(meter.ok());
  EXPECT_EQ((*meter)->id_, 42);
  EXPECT_EQ((*meter)->view_count_, 84);
  (*it)->Next();
  EXPECT_TRUE((*it)->end());
  ASSERT_TRUE((*it)->Close().ok());
  ASSERT_TRUE(t.Commit().ok());
}

TEST_P(IndexKindTest, ScanSeesAllObjects) {
  Env env;
  CTransaction t(env.collections.get());
  auto id_indexer = IdIndexer(GetParam());
  auto coll = t.CreateCollection("profile", id_indexer);
  ASSERT_TRUE(coll.ok());
  std::set<int64_t> expected;
  for (int64_t i = 0; i < 50; i++) {
    ASSERT_TRUE((*coll)->Insert(&t, std::make_unique<Meter>(i, 0, 0)).ok());
    expected.insert(i);
  }
  auto it = (*coll)->Query(&t, *id_indexer);
  ASSERT_TRUE(it.ok());
  std::set<int64_t> seen;
  for (; !(*it)->end(); (*it)->Next()) {
    auto meter = (*it)->Read<Meter>();
    ASSERT_TRUE(meter.ok());
    seen.insert((*meter)->id_);
  }
  EXPECT_EQ(seen, expected);
  ASSERT_TRUE((*it)->Close().ok());
  ASSERT_TRUE(t.Commit().ok());
}

TEST_P(IndexKindTest, UniqueViolationOnInsert) {
  Env env;
  CTransaction t(env.collections.get());
  auto id_indexer = IdIndexer(GetParam());
  auto coll = t.CreateCollection("profile", id_indexer);
  ASSERT_TRUE(coll.ok());
  ASSERT_TRUE((*coll)->Insert(&t, std::make_unique<Meter>(7, 0, 0)).ok());
  auto dup = (*coll)->Insert(&t, std::make_unique<Meter>(7, 99, 0));
  EXPECT_TRUE(dup.status().IsUniqueViolation()) << dup.status().ToString();
  // The collection is unchanged by the failed insert.
  auto it = (*coll)->Query(&t, *id_indexer, IntKey(7));
  ASSERT_TRUE(it.ok());
  int count = 0;
  for (; !(*it)->end(); (*it)->Next()) count++;
  EXPECT_EQ(count, 1);
  ASSERT_TRUE((*it)->Close().ok());
  ASSERT_TRUE(t.Commit().ok());
}

TEST_P(IndexKindTest, SchemaTypeCheckedOnInsert) {
  Env env;
  CTransaction t(env.collections.get());
  auto coll = t.CreateCollection("profile", IdIndexer(GetParam()));
  ASSERT_TRUE(coll.ok());
  auto bad = (*coll)->Insert(&t, std::make_unique<Other>());
  EXPECT_EQ(bad.status().code(), Status::Code::kTypeMismatch);
}

INSTANTIATE_TEST_SUITE_P(Kinds, IndexKindTest,
                         ::testing::Values(IndexKind::kBTree,
                                           IndexKind::kHashTable,
                                           IndexKind::kList),
                         [](const auto& info) {
                           switch (info.param) {
                             case IndexKind::kBTree: return "BTree";
                             case IndexKind::kHashTable: return "Hash";
                             case IndexKind::kList: return "List";
                           }
                           return "?";
                         });

// ---------------------------------------------------------------- queries

TEST(CollectionTest, RangeQueryOnBTree) {
  Env env;
  CTransaction t(env.collections.get());
  auto usage = UsageIndexer();
  auto coll = t.CreateCollection("profile", usage);
  ASSERT_TRUE(coll.ok());
  for (int64_t i = 0; i < 100; i++) {
    ASSERT_TRUE(
        (*coll)->Insert(&t, std::make_unique<Meter>(i, i, 0)).ok());
  }
  IntKey min(20), max(29);
  auto it = (*coll)->Query(&t, *usage, &min, &max);
  ASSERT_TRUE(it.ok()) << it.status().ToString();
  std::vector<int64_t> seen;
  for (; !(*it)->end(); (*it)->Next()) {
    seen.push_back((*(*it)->Read<Meter>())->view_count_);
  }
  ASSERT_EQ(seen.size(), 10u);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_EQ(seen.front(), 20);
  EXPECT_EQ(seen.back(), 29);
  ASSERT_TRUE((*it)->Close().ok());
}

TEST(CollectionTest, OpenEndedRanges) {
  Env env;
  CTransaction t(env.collections.get());
  auto usage = UsageIndexer();
  auto coll = t.CreateCollection("profile", usage);
  ASSERT_TRUE(coll.ok());
  for (int64_t i = 0; i < 20; i++) {
    ASSERT_TRUE((*coll)->Insert(&t, std::make_unique<Meter>(i, i, 0)).ok());
  }
  IntKey min(15);
  auto upper = (*coll)->Query(&t, *usage, &min, nullptr);
  ASSERT_TRUE(upper.ok());
  int count = 0;
  for (; !(*upper)->end(); (*upper)->Next()) count++;
  EXPECT_EQ(count, 5);
  ASSERT_TRUE((*upper)->Close().ok());

  IntKey max(4);
  auto lower = (*coll)->Query(&t, *usage, nullptr, &max);
  ASSERT_TRUE(lower.ok());
  count = 0;
  for (; !(*lower)->end(); (*lower)->Next()) count++;
  EXPECT_EQ(count, 5);
  ASSERT_TRUE((*lower)->Close().ok());
}

TEST(CollectionTest, RangeOnHashIndexNotSupported) {
  Env env;
  CTransaction t(env.collections.get());
  auto id_indexer = IdIndexer(IndexKind::kHashTable);
  auto coll = t.CreateCollection("profile", id_indexer);
  ASSERT_TRUE(coll.ok());
  IntKey min(0), max(10);
  auto it = (*coll)->Query(&t, *id_indexer, &min, &max);
  EXPECT_EQ(it.status().code(), Status::Code::kNotSupported);
}

TEST(CollectionTest, NonUniqueIndexReturnsAllMatches) {
  Env env;
  CTransaction t(env.collections.get());
  auto usage = UsageIndexer();
  auto coll = t.CreateCollection("profile", usage);
  ASSERT_TRUE(coll.ok());
  for (int64_t i = 0; i < 30; i++) {
    // Usage = i % 3: ten objects per usage value.
    ASSERT_TRUE(
        (*coll)->Insert(&t, std::make_unique<Meter>(i, i % 3, 0)).ok());
  }
  auto it = (*coll)->Query(&t, *usage, IntKey(1));
  ASSERT_TRUE(it.ok());
  int count = 0;
  for (; !(*it)->end(); (*it)->Next()) count++;
  EXPECT_EQ(count, 10);
  ASSERT_TRUE((*it)->Close().ok());
}

// -------------------------------------------------- dynamic index DDL

TEST(CollectionTest, CreateIndexBackfillsExistingObjects) {
  Env env;
  CTransaction t(env.collections.get());
  auto id_indexer = IdIndexer();
  auto coll = t.CreateCollection("profile", id_indexer);
  ASSERT_TRUE(coll.ok());
  for (int64_t i = 0; i < 25; i++) {
    ASSERT_TRUE(
        (*coll)->Insert(&t, std::make_unique<Meter>(i, 100 - i, 0)).ok());
  }
  // Add the usage index afterwards (§5.1.1: "applications can add and
  // remove indexes dynamically").
  auto usage = UsageIndexer();
  ASSERT_TRUE((*coll)->CreateIndex(&t, usage).ok());
  EXPECT_EQ((*coll)->index_count(), 2u);

  auto it = (*coll)->Query(&t, *usage, IntKey(100));  // i=0: views 100.
  ASSERT_TRUE(it.ok());
  ASSERT_FALSE((*it)->end());
  EXPECT_EQ((*(*it)->Read<Meter>())->id_, 0);
  ASSERT_TRUE((*it)->Close().ok());
  ASSERT_TRUE(t.Commit().ok());
}

TEST(CollectionTest, CreateUniqueIndexOverDuplicatesFails) {
  Env env;
  CTransaction t(env.collections.get());
  auto coll = t.CreateCollection("profile", IdIndexer());
  ASSERT_TRUE(coll.ok());
  ASSERT_TRUE((*coll)->Insert(&t, std::make_unique<Meter>(1, 5, 0)).ok());
  ASSERT_TRUE((*coll)->Insert(&t, std::make_unique<Meter>(2, 5, 0)).ok());
  // Unique index on view_count: both objects have 5.
  auto bad = std::make_shared<MeterIndexer>(
      "by-views", Uniqueness::kUnique, IndexKind::kBTree,
      [](const Meter& m) { return IntKey(m.view_count_); });
  Status s = (*coll)->CreateIndex(&t, bad);
  EXPECT_TRUE(s.IsUniqueViolation()) << s.ToString();
  EXPECT_EQ((*coll)->index_count(), 1u);
}

TEST(CollectionTest, RemoveIndexAndLastIndexProtection) {
  Env env;
  CTransaction t(env.collections.get());
  auto id_indexer = IdIndexer();
  auto usage = UsageIndexer();
  auto coll = t.CreateCollection("profile", id_indexer);
  ASSERT_TRUE(coll.ok());
  ASSERT_TRUE((*coll)->CreateIndex(&t, usage).ok());
  ASSERT_TRUE((*coll)->RemoveIndex(&t, *usage).ok());
  EXPECT_EQ((*coll)->index_count(), 1u);
  // §5.1.2: removing the only index raises an exception.
  Status s = (*coll)->RemoveIndex(&t, *id_indexer);
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
}

TEST(CollectionTest, MismatchedIndexerRejected) {
  Env env;
  CTransaction t(env.collections.get());
  auto coll = t.CreateCollection("profile", IdIndexer(IndexKind::kBTree));
  ASSERT_TRUE(coll.ok());
  // Same name, different organization.
  auto wrong = IdIndexer(IndexKind::kHashTable);
  auto it = (*coll)->Query(&t, *wrong);
  EXPECT_EQ(it.status().code(), Status::Code::kInvalidArgument);
}

// ------------------------------------------- insensitive iterators

TEST(IteratorTest, UpdatesInvisibleUntilClose) {
  // The Halloween-syndrome scenario (§5.2.2): reset every meter with
  // usage > 100 — updating the very key used as the access path.
  Env env;
  CTransaction t(env.collections.get());
  auto usage = UsageIndexer();
  auto coll = t.CreateCollection("profile", usage);
  ASSERT_TRUE(coll.ok());
  for (int64_t i = 0; i < 20; i++) {
    ASSERT_TRUE(
        (*coll)->Insert(&t, std::make_unique<Meter>(i, 95 + i, 0)).ok());
  }
  // Meters with usage in [101, +inf): i = 6..19 — fourteen of them.
  IntKey min(101);
  auto it = (*coll)->Query(&t, *usage, &min, nullptr);
  ASSERT_TRUE(it.ok());
  int updated = 0;
  for (; !(*it)->end(); (*it)->Next()) {
    auto meter = (*it)->Write<Meter>();
    ASSERT_TRUE(meter.ok()) << meter.status().ToString();
    (*meter)->view_count_ = 0;  // Would re-enter the range... if sensitive.
    (*meter)->print_count_ = 0;
    updated++;
  }
  EXPECT_EQ(updated, 14);  // No infinite loop, no re-enumeration.
  ASSERT_TRUE((*it)->Close().ok());

  // After close, the index reflects the updates.
  auto verify = (*coll)->Query(&t, *usage, &min, nullptr);
  ASSERT_TRUE(verify.ok());
  EXPECT_TRUE((*verify)->end());  // Nothing above 100 anymore.
  ASSERT_TRUE((*verify)->Close().ok());
  auto zeros = (*coll)->Query(&t, *usage, IntKey(0));
  ASSERT_TRUE(zeros.ok());
  int count = 0;
  for (; !(*zeros)->end(); (*zeros)->Next()) count++;
  EXPECT_EQ(count, 14);
  ASSERT_TRUE((*zeros)->Close().ok());
  ASSERT_TRUE(t.Commit().ok());
}

TEST(IteratorTest, RemoveCurrentDeferredToClose) {
  Env env;
  CTransaction t(env.collections.get());
  auto id_indexer = IdIndexer();
  auto coll = t.CreateCollection("profile", id_indexer);
  ASSERT_TRUE(coll.ok());
  for (int64_t i = 0; i < 10; i++) {
    ASSERT_TRUE((*coll)->Insert(&t, std::make_unique<Meter>(i, 0, 0)).ok());
  }
  auto it = (*coll)->Query(&t, *id_indexer);
  ASSERT_TRUE(it.ok());
  for (; !(*it)->end(); (*it)->Next()) {
    auto meter = (*it)->Read<Meter>();
    ASSERT_TRUE(meter.ok());
    if ((*meter)->id_ % 2 == 0) {
      ASSERT_TRUE((*it)->RemoveCurrent().ok());
    }
  }
  ASSERT_TRUE((*it)->Close().ok());

  auto verify = (*coll)->Query(&t, *id_indexer);
  ASSERT_TRUE(verify.ok());
  int count = 0;
  for (; !(*verify)->end(); (*verify)->Next()) {
    EXPECT_EQ((*(*verify)->Read<Meter>())->id_ % 2, 1);
    count++;
  }
  EXPECT_EQ(count, 5);
  ASSERT_TRUE((*verify)->Close().ok());
  ASSERT_TRUE(t.Commit().ok());
}

TEST(IteratorTest, WritableDerefRequiresSoleIterator) {
  Env env;
  CTransaction t(env.collections.get());
  auto id_indexer = IdIndexer();
  auto coll = t.CreateCollection("profile", id_indexer);
  ASSERT_TRUE(coll.ok());
  ASSERT_TRUE((*coll)->Insert(&t, std::make_unique<Meter>(1, 0, 0)).ok());

  auto it1 = (*coll)->Query(&t, *id_indexer);
  auto it2 = (*coll)->Query(&t, *id_indexer);
  ASSERT_TRUE(it1.ok() && it2.ok());
  // Two iterators open: writable dereference violates constraint 2.
  auto w = (*it1)->Write<Meter>();
  EXPECT_EQ(w.status().code(), Status::Code::kInvalidArgument);
  // Reading is fine.
  EXPECT_TRUE((*it1)->Read<Meter>().ok());
  ASSERT_TRUE((*it2)->Close().ok());
  // Now writable works.
  EXPECT_TRUE((*it1)->Write<Meter>().ok());
  ASSERT_TRUE((*it1)->Close().ok());
}

TEST(IteratorTest, CommitBlockedWhileIteratorOpen) {
  Env env;
  CTransaction t(env.collections.get());
  auto id_indexer = IdIndexer();
  auto coll = t.CreateCollection("profile", id_indexer);
  ASSERT_TRUE(coll.ok());
  ASSERT_TRUE((*coll)->Insert(&t, std::make_unique<Meter>(1, 0, 0)).ok());
  auto it = (*coll)->Query(&t, *id_indexer);
  ASSERT_TRUE(it.ok());
  EXPECT_EQ(t.Commit().code(), Status::Code::kInvalidArgument);
  ASSERT_TRUE((*it)->Close().ok());
  EXPECT_TRUE(t.Commit().ok());
}

TEST(IteratorTest, UniqueViolationAtCloseEjectsObject) {
  Env env;
  CTransaction t(env.collections.get());
  auto id_indexer = IdIndexer();
  auto coll = t.CreateCollection("profile", id_indexer);
  ASSERT_TRUE(coll.ok());
  ObjectId first, second;
  first = *(*coll)->Insert(&t, std::make_unique<Meter>(1, 0, 0));
  second = *(*coll)->Insert(&t, std::make_unique<Meter>(2, 0, 0));
  (void)first;

  // Update meter 2's id to 1 — a duplicate the store cannot prevent at
  // update time (§5.2.3); detected at close, object ejected.
  auto it = (*coll)->Query(&t, *id_indexer, IntKey(2));
  ASSERT_TRUE(it.ok());
  ASSERT_FALSE((*it)->end());
  auto meter = (*it)->Write<Meter>();
  ASSERT_TRUE(meter.ok());
  (*meter)->id_ = 1;
  Status close_status = (*it)->Close();
  EXPECT_TRUE(close_status.IsUniqueViolation()) << close_status.ToString();
  ASSERT_EQ((*it)->ejected().size(), 1u);
  EXPECT_EQ((*it)->ejected()[0], second);

  // The ejected object is out of the collection's indexes...
  auto gone = (*coll)->Query(&t, *id_indexer, IntKey(2));
  ASSERT_TRUE(gone.ok());
  EXPECT_TRUE((*gone)->end());
  ASSERT_TRUE((*gone)->Close().ok());
  auto one = (*coll)->Query(&t, *id_indexer, IntKey(1));
  ASSERT_TRUE(one.ok());
  int count = 0;
  for (; !(*one)->end(); (*one)->Next()) count++;
  EXPECT_EQ(count, 1);
  ASSERT_TRUE((*one)->Close().ok());
  // ...but still exists in the object store for re-integration.
  EXPECT_TRUE(t.txn()->OpenReadonly<Meter>(second).ok());
}

TEST(IteratorTest, UnchangedKeysSkipIndexMaintenance) {
  Env env;
  CTransaction t(env.collections.get());
  auto id_indexer = IdIndexer();
  auto coll = t.CreateCollection("profile", id_indexer);
  ASSERT_TRUE(coll.ok());
  ASSERT_TRUE((*coll)->Insert(&t, std::make_unique<Meter>(1, 10, 0)).ok());
  auto it = (*coll)->Query(&t, *id_indexer);
  ASSERT_TRUE(it.ok());
  auto meter = (*it)->Write<Meter>();
  ASSERT_TRUE(meter.ok());
  (*meter)->view_count_ = 99;  // id_ (the indexed key) unchanged.
  ASSERT_TRUE((*it)->Close().ok());
  auto verify = (*coll)->Query(&t, *id_indexer, IntKey(1));
  ASSERT_TRUE(verify.ok());
  ASSERT_FALSE((*verify)->end());
  EXPECT_EQ((*(*verify)->Read<Meter>())->view_count_, 99);
  ASSERT_TRUE((*verify)->Close().ok());
}

// ------------------------------------------------ collection lifecycle

TEST(CollectionStoreTest, CollectionsPersistAcrossRestart) {
  Env env;
  {
    CTransaction t(env.collections.get());
    auto coll = t.CreateCollection("profile", IdIndexer());
    ASSERT_TRUE(coll.ok());
    for (int64_t i = 0; i < 10; i++) {
      ASSERT_TRUE((*coll)->Insert(&t, std::make_unique<Meter>(i, i, 0)).ok());
    }
    ASSERT_TRUE(t.Commit(true).ok());
  }
  env.Restart();
  // Re-register the indexer (extractors cannot be persisted).
  ASSERT_TRUE(
      env.collections->RegisterIndexer("profile", IdIndexer()).ok());
  CTransaction t(env.collections.get());
  auto coll = t.ReadCollection("profile");
  ASSERT_TRUE(coll.ok()) << coll.status().ToString();
  auto id_indexer = IdIndexer();
  auto it = (*coll)->Query(&t, *id_indexer, IntKey(7));
  ASSERT_TRUE(it.ok()) << it.status().ToString();
  ASSERT_FALSE((*it)->end());
  EXPECT_EQ((*(*it)->Read<Meter>())->view_count_, 7);
  ASSERT_TRUE((*it)->Close().ok());
}

TEST(CollectionStoreTest, DuplicateCollectionNameRejected) {
  Env env;
  CTransaction t(env.collections.get());
  ASSERT_TRUE(t.CreateCollection("profile", IdIndexer()).ok());
  auto dup = t.CreateCollection("profile", IdIndexer());
  EXPECT_EQ(dup.status().code(), Status::Code::kAlreadyExists);
}

TEST(CollectionStoreTest, ReadMissingCollectionFails) {
  Env env;
  CTransaction t(env.collections.get());
  EXPECT_TRUE(t.ReadCollection("nope").status().IsNotFound());
  EXPECT_TRUE(t.WriteCollection("nope").status().IsNotFound());
  EXPECT_TRUE(t.RemoveCollection("nope").IsNotFound());
}

TEST(CollectionStoreTest, RemoveCollectionRemovesMembers) {
  Env env;
  std::vector<ObjectId> members;
  {
    CTransaction t(env.collections.get());
    auto coll = t.CreateCollection("profile", IdIndexer());
    ASSERT_TRUE(coll.ok());
    for (int64_t i = 0; i < 5; i++) {
      members.push_back(
          *(*coll)->Insert(&t, std::make_unique<Meter>(i, 0, 0)));
    }
    ASSERT_TRUE(t.Commit().ok());
  }
  {
    CTransaction t(env.collections.get());
    ASSERT_TRUE(t.RemoveCollection("profile").ok());
    ASSERT_TRUE(t.Commit().ok());
  }
  CTransaction t(env.collections.get());
  EXPECT_TRUE(t.ReadCollection("profile").status().IsNotFound());
  for (ObjectId oid : members) {
    EXPECT_TRUE(t.txn()->OpenReadonly<Meter>(oid).status().IsNotFound());
  }
  // The name is reusable.
  EXPECT_TRUE(t.CreateCollection("profile", IdIndexer()).ok());
}

TEST(CollectionStoreTest, AbortRollsBackCollectionChanges) {
  Env env;
  {
    CTransaction t(env.collections.get());
    auto coll = t.CreateCollection("profile", IdIndexer());
    ASSERT_TRUE(coll.ok());
    ASSERT_TRUE((*coll)->Insert(&t, std::make_unique<Meter>(1, 0, 0)).ok());
    ASSERT_TRUE(t.Commit().ok());
  }
  {
    CTransaction t(env.collections.get());
    auto coll = t.WriteCollection("profile");
    ASSERT_TRUE(coll.ok());
    ASSERT_TRUE((*coll)->Insert(&t, std::make_unique<Meter>(2, 0, 0)).ok());
    ASSERT_TRUE(t.Abort().ok());
  }
  CTransaction t(env.collections.get());
  auto coll = t.ReadCollection("profile");
  ASSERT_TRUE(coll.ok());
  auto id_indexer = IdIndexer();
  ASSERT_TRUE(env.collections->RegisterIndexer("profile", id_indexer).ok());
  auto it = (*coll)->Query(&t, *id_indexer);
  ASSERT_TRUE(it.ok());
  int count = 0;
  for (; !(*it)->end(); (*it)->Next()) count++;
  EXPECT_EQ(count, 1);  // Only the committed object.
  ASSERT_TRUE((*it)->Close().ok());
}

TEST(CollectionStoreTest, MissingIndexerReported) {
  Env env;
  {
    CTransaction t(env.collections.get());
    auto coll = t.CreateCollection("profile", IdIndexer());
    ASSERT_TRUE(coll.ok());
    ASSERT_TRUE((*coll)->Insert(&t, std::make_unique<Meter>(1, 0, 0)).ok());
    ASSERT_TRUE(t.Commit(true).ok());
  }
  env.Restart();  // Indexers are gone.
  CTransaction t(env.collections.get());
  auto coll = t.WriteCollection("profile");
  ASSERT_TRUE(coll.ok());
  auto insert = (*coll)->Insert(&t, std::make_unique<Meter>(2, 0, 0));
  EXPECT_TRUE(insert.status().IsNotFound());
  EXPECT_NE(insert.status().ToString().find("re-register"),
            std::string::npos);
}

// ------------------------------------------------ property tests

// Random workload against an in-memory model, checked for every index kind
// with both a unique and a non-unique index present.
class CollectionPropertyTest : public ::testing::TestWithParam<IndexKind> {};

TEST_P(CollectionPropertyTest, RandomOpsMatchModel) {
  Env env;
  Random rng(static_cast<uint64_t>(GetParam()) * 97 + 3);
  auto id_indexer = IdIndexer(GetParam());
  auto usage = UsageIndexer(GetParam() == IndexKind::kHashTable
                                ? IndexKind::kBTree
                                : GetParam());

  CTransaction setup(env.collections.get());
  auto created = setup.CreateCollection("c", id_indexer);
  ASSERT_TRUE(created.ok());
  ASSERT_TRUE((*created)->CreateIndex(&setup, usage).ok());
  ASSERT_TRUE(setup.Commit().ok());

  // Model: id -> (views, prints).
  std::map<int64_t, std::pair<int64_t, int64_t>> model;
  int64_t next_id = 0;

  for (int round = 0; round < 25; round++) {
    CTransaction t(env.collections.get());
    auto coll = t.WriteCollection("c");
    ASSERT_TRUE(coll.ok());
    for (int op = 0; op < 8; op++) {
      uint64_t roll = rng.Uniform(100);
      if (model.empty() || roll < 40) {
        int64_t id = next_id++;
        int64_t views = static_cast<int64_t>(rng.Uniform(50));
        ASSERT_TRUE(
            (*coll)->Insert(&t, std::make_unique<Meter>(id, views, 0)).ok());
        model[id] = {views, 0};
      } else if (roll < 70) {
        // Update a random object's views through an iterator.
        auto it_model = model.begin();
        std::advance(it_model, rng.Uniform(model.size()));
        auto it = (*coll)->Query(&t, *id_indexer, IntKey(it_model->first));
        ASSERT_TRUE(it.ok());
        ASSERT_FALSE((*it)->end());
        auto meter = (*it)->Write<Meter>();
        ASSERT_TRUE(meter.ok());
        int64_t views = static_cast<int64_t>(rng.Uniform(50));
        (*meter)->view_count_ = views;
        ASSERT_TRUE((*it)->Close().ok());
        it_model->second.first = views;
      } else {
        auto it_model = model.begin();
        std::advance(it_model, rng.Uniform(model.size()));
        auto it = (*coll)->Query(&t, *id_indexer, IntKey(it_model->first));
        ASSERT_TRUE(it.ok());
        ASSERT_FALSE((*it)->end());
        ASSERT_TRUE((*it)->RemoveCurrent().ok());
        ASSERT_TRUE((*it)->Close().ok());
        model.erase(it_model);
      }
    }
    ASSERT_TRUE(t.Commit(round % 4 == 0).ok());
  }

  // Verify: scan matches the model; every id resolves; usage queries agree.
  CTransaction t(env.collections.get());
  auto coll = t.ReadCollection("c");
  ASSERT_TRUE(coll.ok());
  auto scan = (*coll)->Query(&t, *id_indexer);
  ASSERT_TRUE(scan.ok());
  std::map<int64_t, int64_t> seen;
  for (; !(*scan)->end(); (*scan)->Next()) {
    auto meter = (*scan)->Read<Meter>();
    ASSERT_TRUE(meter.ok());
    seen[(*meter)->id_] = (*meter)->view_count_;
  }
  ASSERT_TRUE((*scan)->Close().ok());
  ASSERT_EQ(seen.size(), model.size());
  for (const auto& [id, state] : model) {
    ASSERT_TRUE(seen.count(id)) << id;
    EXPECT_EQ(seen[id], state.first) << id;
  }
  // Usage (derived-value) index agrees with the model.
  std::map<int64_t, int> usage_histogram;
  for (const auto& [id, state] : model) {
    usage_histogram[state.first + state.second]++;
  }
  for (const auto& [value, expected_count] : usage_histogram) {
    auto it = (*coll)->Query(&t, *usage, IntKey(value));
    ASSERT_TRUE(it.ok());
    int count = 0;
    for (; !(*it)->end(); (*it)->Next()) count++;
    EXPECT_EQ(count, expected_count) << "usage " << value;
    ASSERT_TRUE((*it)->Close().ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, CollectionPropertyTest,
                         ::testing::Values(IndexKind::kBTree,
                                           IndexKind::kHashTable,
                                           IndexKind::kList),
                         [](const auto& info) {
                           switch (info.param) {
                             case IndexKind::kBTree: return "BTree";
                             case IndexKind::kHashTable: return "Hash";
                             case IndexKind::kList: return "List";
                           }
                           return "?";
                         });

// B-tree structural invariants under heavy random insert/delete.
TEST(BTreePropertyTest, InvariantsHoldUnderChurn) {
  Env env;
  Random rng(424242);
  object::Transaction txn(env.objects.get());
  auto indexer = std::make_shared<MeterIndexer>(
      "churn", Uniqueness::kNonUnique, IndexKind::kBTree,
      [](const Meter& m) { return IntKey(m.id_); });
  auto root = BTreeIndex::Create(&txn);
  ASSERT_TRUE(root.ok());

  std::set<std::pair<int64_t, ObjectId>> model;
  ObjectId fake_oid = 1000;
  for (int op = 0; op < 3000; op++) {
    if (model.empty() || rng.Bernoulli(0.6)) {
      int64_t k = static_cast<int64_t>(rng.Uniform(500));
      IntKey key(k);
      ObjectId oid = fake_oid++;
      ASSERT_TRUE(BTreeIndex::Insert(&txn, *indexer, *root, key, oid).ok());
      model.insert({k, oid});
    } else {
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      IntKey key(it->first);
      ASSERT_TRUE(
          BTreeIndex::Remove(&txn, *indexer, *root, key, it->second).ok());
      model.erase(it);
    }
    if (op % 250 == 0) {
      Status valid = BTreeIndex::Validate(&txn, *indexer, *root);
      ASSERT_TRUE(valid.ok()) << "op " << op << ": " << valid.ToString();
    }
  }
  ASSERT_TRUE(BTreeIndex::Validate(&txn, *indexer, *root).ok());

  // Full scan returns exactly the model, in order.
  std::vector<ObjectId> scanned;
  ASSERT_TRUE(BTreeIndex::Scan(&txn, *root, &scanned).ok());
  ASSERT_EQ(scanned.size(), model.size());
  size_t i = 0;
  for (const auto& [k, oid] : model) {
    EXPECT_EQ(scanned[i++], oid);
  }
  // Random range queries match the model.
  for (int q = 0; q < 50; q++) {
    int64_t lo = static_cast<int64_t>(rng.Uniform(500));
    int64_t hi = lo + static_cast<int64_t>(rng.Uniform(100));
    IntKey min(lo), max(hi);
    std::vector<ObjectId> got;
    ASSERT_TRUE(
        BTreeIndex::Range(&txn, *indexer, *root, &min, &max, &got).ok());
    size_t expected = 0;
    for (const auto& [k, oid] : model) {
      if (k >= lo && k <= hi) expected++;
    }
    EXPECT_EQ(got.size(), expected) << "[" << lo << "," << hi << "]";
  }
  ASSERT_TRUE(txn.Commit().ok());
}

// Hash index under churn: exact-match agrees with a model through many
// bucket splits.
TEST(HashIndexPropertyTest, SplitsPreserveEntries) {
  Env env;
  Random rng(5150);
  object::Transaction txn(env.objects.get());
  auto indexer = std::make_shared<MeterIndexer>(
      "h", Uniqueness::kNonUnique, IndexKind::kHashTable,
      [](const Meter& m) { return IntKey(m.id_); });
  auto root = HashIndex::Create(&txn);
  ASSERT_TRUE(root.ok());

  std::multimap<int64_t, ObjectId> model;
  ObjectId fake_oid = 5000;
  for (int op = 0; op < 2000; op++) {
    if (model.empty() || rng.Bernoulli(0.7)) {
      int64_t k = static_cast<int64_t>(rng.Uniform(300));
      ASSERT_TRUE(
          HashIndex::Insert(&txn, *indexer, *root, IntKey(k), fake_oid).ok());
      model.insert({k, fake_oid});
      fake_oid++;
    } else {
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      ASSERT_TRUE(HashIndex::Remove(&txn, *indexer, *root, IntKey(it->first),
                                    it->second)
                      .ok());
      model.erase(it);
    }
  }
  for (int64_t k = 0; k < 300; k++) {
    std::vector<ObjectId> got;
    ASSERT_TRUE(HashIndex::Match(&txn, *indexer, *root, IntKey(k), &got).ok());
    EXPECT_EQ(got.size(), static_cast<size_t>(model.count(k))) << k;
  }
  std::vector<ObjectId> all;
  ASSERT_TRUE(HashIndex::Scan(&txn, *root, &all).ok());
  EXPECT_EQ(all.size(), model.size());
  ASSERT_TRUE(txn.Commit().ok());
}

// --------------------------------------------------------- key classes

TEST(KeyTest, IntKeyOrderingAndHash) {
  IntKey a(-5), b(3), c(3);
  EXPECT_LT(a.Compare(b), 0);
  EXPECT_GT(b.Compare(a), 0);
  EXPECT_EQ(b.Compare(c), 0);
  EXPECT_EQ(b.Hash(), c.Hash());
}

TEST(KeyTest, StringKeyOrdering) {
  StringKey a("apple"), b("banana"), c("apple");
  EXPECT_LT(a.Compare(b), 0);
  EXPECT_EQ(a.Compare(c), 0);
  EXPECT_EQ(a.Hash(), c.Hash());
}

TEST(KeyTest, DoubleKeyNanOrdering) {
  DoubleKey a(1.5), nan(std::nan("")), b(2.5);
  EXPECT_LT(a.Compare(b), 0);
  EXPECT_GT(nan.Compare(a), 0);  // NaN sorts last.
  EXPECT_EQ(nan.Compare(nan), 0);
}

TEST(KeyTest, PickleRoundtrip) {
  StringKey original("hello world");
  Buffer pickled = PickleKey(original);
  StringKey restored;
  object::Unpickler u{Slice(pickled)};
  ASSERT_TRUE(restored.UnpickleFrom(&u).ok());
  EXPECT_EQ(restored.value(), "hello world");
}

}  // namespace
}  // namespace tdb::collection
