// Adversarial-input robustness: every decoder that parses bytes from the
// untrusted store must fail cleanly (Status, never a crash or hang) on
// arbitrary garbage. Randomized property tests stand in for a fuzzer.

#include <gtest/gtest.h>

#include "chunk/anchor.h"
#include "chunk/location_map.h"
#include "chunk/log_format.h"
#include "common/random.h"
#include "crypto/cipher_suite.h"
#include "object/pickle.h"

namespace tdb {
namespace {

crypto::CipherSuite Suite() {
  return crypto::CipherSuite(crypto::SecurityConfig::Modern(),
                             Slice("fuzz-secret"), Slice("iv"));
}

TEST(CodecFuzzTest, ParseRecordNeverCrashesOnGarbage) {
  Random rng(1);
  for (int trial = 0; trial < 2000; trial++) {
    Buffer garbage;
    rng.Fill(&garbage, rng.Uniform(200));
    chunk::RecordView view;
    // Either parses (checksum collision is possible but harmless here) or
    // reports Corruption; must never crash.
    (void)chunk::ParseRecord(garbage, &view).ok();
  }
}

TEST(CodecFuzzTest, DecodeManifestNeverCrashesOnGarbage) {
  Random rng(2);
  for (int trial = 0; trial < 2000; trial++) {
    Buffer garbage;
    rng.Fill(&garbage, rng.Uniform(300));
    chunk::CommitManifest manifest;
    (void)chunk::DecodeManifest(garbage, 32, 12, &manifest).ok();
  }
}

TEST(CodecFuzzTest, DecodeMapNodeNeverCrashesOnGarbage) {
  Random rng(3);
  for (int trial = 0; trial < 2000; trial++) {
    Buffer garbage;
    rng.Fill(&garbage, rng.Uniform(300));
    (void)chunk::LocationMap::DecodeNode(garbage, 64, 12).ok();
  }
}

TEST(CodecFuzzTest, DecodeAnchorNeverCrashesOnGarbage) {
  Random rng(4);
  crypto::CipherSuite suite = Suite();
  for (int trial = 0; trial < 2000; trial++) {
    Buffer garbage;
    rng.Fill(&garbage, rng.Uniform(300));
    (void)chunk::AnchorManager::Decode(garbage, suite, 12).ok();
  }
}

TEST(CodecFuzzTest, ManifestRoundtripWithAllFields) {
  Random rng(5);
  for (int trial = 0; trial < 200; trial++) {
    chunk::CommitManifest manifest;
    manifest.seq = rng.Next();
    manifest.flags = static_cast<uint8_t>(rng.Uniform(8));
    manifest.next_chunk_id = rng.Next();
    manifest.counter = rng.Next();
    Buffer mac_bytes;
    rng.Fill(&mac_bytes, 32);
    manifest.prev_mac = crypto::Digest(mac_bytes.data(), 32);
    int n_writes = static_cast<int>(rng.Uniform(10));
    for (int i = 0; i < n_writes; i++) {
      chunk::ManifestWrite w;
      w.cid = rng.Next();
      w.loc = {static_cast<uint32_t>(rng.Next()),
               static_cast<uint32_t>(rng.Next()),
               static_cast<uint32_t>(rng.Next())};
      Buffer h;
      rng.Fill(&h, 12);
      w.hash = crypto::Digest(h.data(), 12);
      manifest.writes.push_back(w);
    }
    int n_deallocs = static_cast<int>(rng.Uniform(5));
    for (int i = 0; i < n_deallocs; i++) manifest.deallocs.push_back(rng.Next());
    manifest.has_root = rng.Bernoulli(0.5);
    if (manifest.has_root) {
      manifest.root_loc = {1, 2, 3};
      Buffer h;
      rng.Fill(&h, 12);
      manifest.root_hash = crypto::Digest(h.data(), 12);
    }

    Buffer encoded = chunk::EncodeManifest(manifest, 32, 12);
    chunk::CommitManifest decoded;
    ASSERT_TRUE(chunk::DecodeManifest(encoded, 32, 12, &decoded).ok());
    EXPECT_EQ(decoded.seq, manifest.seq);
    EXPECT_EQ(decoded.flags, manifest.flags);
    EXPECT_EQ(decoded.counter, manifest.counter);
    EXPECT_EQ(decoded.next_chunk_id, manifest.next_chunk_id);
    EXPECT_EQ(decoded.prev_mac, manifest.prev_mac);
    ASSERT_EQ(decoded.writes.size(), manifest.writes.size());
    for (size_t i = 0; i < manifest.writes.size(); i++) {
      EXPECT_EQ(decoded.writes[i].cid, manifest.writes[i].cid);
      EXPECT_TRUE(decoded.writes[i].loc == manifest.writes[i].loc);
      EXPECT_EQ(decoded.writes[i].hash, manifest.writes[i].hash);
    }
    EXPECT_EQ(decoded.deallocs, manifest.deallocs);
    EXPECT_EQ(decoded.has_root, manifest.has_root);
  }
}

TEST(CodecFuzzTest, TruncatedManifestAlwaysRejected) {
  chunk::CommitManifest manifest;
  manifest.seq = 7;
  manifest.counter = 3;
  Buffer mac(32, 0xAB);
  manifest.prev_mac = crypto::Digest(mac.data(), 32);
  chunk::ManifestWrite w;
  w.cid = 9;
  w.loc = {1, 2, 3};
  Buffer h(12, 0xCD);
  w.hash = crypto::Digest(h.data(), 12);
  manifest.writes.push_back(w);

  Buffer encoded = chunk::EncodeManifest(manifest, 32, 12);
  for (size_t cut = 0; cut < encoded.size(); cut++) {
    Buffer truncated(encoded.begin(), encoded.begin() + cut);
    chunk::CommitManifest out;
    EXPECT_FALSE(chunk::DecodeManifest(truncated, 32, 12, &out).ok())
        << "cut at " << cut;
  }
}

TEST(CodecFuzzTest, UnpicklerNeverCrashesOnGarbage) {
  Random rng(6);
  for (int trial = 0; trial < 2000; trial++) {
    Buffer garbage;
    rng.Fill(&garbage, rng.Uniform(100));
    object::Unpickler u{Slice(garbage)};
    // Pull a random sequence of typed reads.
    for (int op = 0; op < 8; op++) {
      switch (rng.Uniform(6)) {
        case 0: { bool v; (void)u.GetBool(&v).ok(); break; }
        case 1: { int32_t v; (void)u.GetInt32(&v).ok(); break; }
        case 2: { int64_t v; (void)u.GetInt64(&v).ok(); break; }
        case 3: { double v; (void)u.GetDouble(&v).ok(); break; }
        case 4: { std::string v; (void)u.GetString(&v).ok(); break; }
        case 5: { Buffer v; (void)u.GetBytes(&v).ok(); break; }
      }
    }
  }
}

TEST(CodecFuzzTest, SealedChunkBitFlipsAlwaysCaughtByOpenOrHash) {
  // Flip every byte of a sealed chunk: either CBC unpadding fails, or the
  // plaintext differs (which the Merkle hash above would catch — emulated
  // here by direct comparison).
  crypto::CipherSuite suite = Suite();
  Buffer plain;
  Random rng(7);
  rng.Fill(&plain, 100);
  Buffer sealed = suite.Seal(plain);
  for (size_t i = 0; i < sealed.size(); i++) {
    Buffer tampered = sealed;
    tampered[i] ^= 0x01;
    auto opened = suite.Open(tampered);
    if (opened.ok()) {
      EXPECT_NE(*opened, plain) << "byte " << i;
    }
  }
}

}  // namespace
}  // namespace tdb
