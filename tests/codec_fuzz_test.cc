// Adversarial-input robustness: every decoder that parses bytes from the
// untrusted store must fail cleanly (Status, never a crash or hang) on
// arbitrary garbage. Randomized property tests stand in for a fuzzer.

#include <gtest/gtest.h>

#include "chunk/anchor.h"
#include "chunk/location_map.h"
#include "chunk/log_format.h"
#include "common/random.h"
#include "crypto/cipher_suite.h"
#include "object/pickle.h"

namespace tdb {
namespace {

crypto::CipherSuite Suite() {
  return crypto::CipherSuite(crypto::SecurityConfig::Modern(),
                             Slice("fuzz-secret"), Slice("iv"));
}

TEST(CodecFuzzTest, ParseRecordNeverCrashesOnGarbage) {
  Random rng(1);
  for (int trial = 0; trial < 2000; trial++) {
    Buffer garbage;
    rng.Fill(&garbage, rng.Uniform(200));
    chunk::RecordView view;
    // Either parses (checksum collision is possible but harmless here) or
    // reports Corruption; must never crash.
    (void)chunk::ParseRecord(garbage, &view).ok();
  }
}

TEST(CodecFuzzTest, DecodeManifestNeverCrashesOnGarbage) {
  Random rng(2);
  for (int trial = 0; trial < 2000; trial++) {
    Buffer garbage;
    rng.Fill(&garbage, rng.Uniform(300));
    chunk::CommitManifest manifest;
    (void)chunk::DecodeManifest(garbage, 32, 12, &manifest).ok();
  }
}

TEST(CodecFuzzTest, DecodeMapNodeNeverCrashesOnGarbage) {
  Random rng(3);
  for (int trial = 0; trial < 2000; trial++) {
    Buffer garbage;
    rng.Fill(&garbage, rng.Uniform(300));
    (void)chunk::LocationMap::DecodeNode(garbage, 64, 12).ok();
  }
}

TEST(CodecFuzzTest, DecodeAnchorNeverCrashesOnGarbage) {
  Random rng(4);
  crypto::CipherSuite suite = Suite();
  for (int trial = 0; trial < 2000; trial++) {
    Buffer garbage;
    rng.Fill(&garbage, rng.Uniform(300));
    (void)chunk::AnchorManager::Decode(garbage, suite, 12).ok();
  }
}

TEST(CodecFuzzTest, ManifestRoundtripWithAllFields) {
  Random rng(5);
  for (int trial = 0; trial < 200; trial++) {
    chunk::CommitManifest manifest;
    manifest.seq = rng.Next();
    manifest.flags = static_cast<uint8_t>(rng.Uniform(8));
    manifest.next_chunk_id = rng.Next();
    manifest.counter = rng.Next();
    Buffer mac_bytes;
    rng.Fill(&mac_bytes, 32);
    manifest.prev_mac = crypto::Digest(mac_bytes.data(), 32);
    int n_writes = static_cast<int>(rng.Uniform(10));
    for (int i = 0; i < n_writes; i++) {
      chunk::ManifestWrite w;
      w.cid = rng.Next();
      w.loc = {static_cast<uint32_t>(rng.Next()),
               static_cast<uint32_t>(rng.Next()),
               static_cast<uint32_t>(rng.Next())};
      Buffer h;
      rng.Fill(&h, 12);
      w.hash = crypto::Digest(h.data(), 12);
      manifest.writes.push_back(w);
    }
    int n_deallocs = static_cast<int>(rng.Uniform(5));
    for (int i = 0; i < n_deallocs; i++) manifest.deallocs.push_back(rng.Next());
    manifest.has_root = rng.Bernoulli(0.5);
    if (manifest.has_root) {
      manifest.root_loc = {1, 2, 3};
      Buffer h;
      rng.Fill(&h, 12);
      manifest.root_hash = crypto::Digest(h.data(), 12);
    }

    Buffer encoded = chunk::EncodeManifest(manifest, 32, 12);
    chunk::CommitManifest decoded;
    ASSERT_TRUE(chunk::DecodeManifest(encoded, 32, 12, &decoded).ok());
    EXPECT_EQ(decoded.seq, manifest.seq);
    EXPECT_EQ(decoded.flags, manifest.flags);
    EXPECT_EQ(decoded.counter, manifest.counter);
    EXPECT_EQ(decoded.next_chunk_id, manifest.next_chunk_id);
    EXPECT_EQ(decoded.prev_mac, manifest.prev_mac);
    ASSERT_EQ(decoded.writes.size(), manifest.writes.size());
    for (size_t i = 0; i < manifest.writes.size(); i++) {
      EXPECT_EQ(decoded.writes[i].cid, manifest.writes[i].cid);
      EXPECT_TRUE(decoded.writes[i].loc == manifest.writes[i].loc);
      EXPECT_EQ(decoded.writes[i].hash, manifest.writes[i].hash);
    }
    EXPECT_EQ(decoded.deallocs, manifest.deallocs);
    EXPECT_EQ(decoded.has_root, manifest.has_root);
  }
}

TEST(CodecFuzzTest, TruncatedManifestAlwaysRejected) {
  chunk::CommitManifest manifest;
  manifest.seq = 7;
  manifest.counter = 3;
  Buffer mac(32, 0xAB);
  manifest.prev_mac = crypto::Digest(mac.data(), 32);
  chunk::ManifestWrite w;
  w.cid = 9;
  w.loc = {1, 2, 3};
  Buffer h(12, 0xCD);
  w.hash = crypto::Digest(h.data(), 12);
  manifest.writes.push_back(w);

  Buffer encoded = chunk::EncodeManifest(manifest, 32, 12);
  for (size_t cut = 0; cut < encoded.size(); cut++) {
    Buffer truncated(encoded.begin(), encoded.begin() + cut);
    chunk::CommitManifest out;
    EXPECT_FALSE(chunk::DecodeManifest(truncated, 32, 12, &out).ok())
        << "cut at " << cut;
  }
}

TEST(CodecFuzzTest, UnpicklerNeverCrashesOnGarbage) {
  Random rng(6);
  for (int trial = 0; trial < 2000; trial++) {
    Buffer garbage;
    rng.Fill(&garbage, rng.Uniform(100));
    object::Unpickler u{Slice(garbage)};
    // Pull a random sequence of typed reads.
    for (int op = 0; op < 8; op++) {
      switch (rng.Uniform(6)) {
        case 0: { bool v; (void)u.GetBool(&v).ok(); break; }
        case 1: { int32_t v; (void)u.GetInt32(&v).ok(); break; }
        case 2: { int64_t v; (void)u.GetInt64(&v).ok(); break; }
        case 3: { double v; (void)u.GetDouble(&v).ok(); break; }
        case 4: { std::string v; (void)u.GetString(&v).ok(); break; }
        case 5: { Buffer v; (void)u.GetBytes(&v).ok(); break; }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Deterministic corpora: instead of random garbage, take a well-formed
// encoding and enumerate EVERY truncation point and EVERY single-bit-flip
// site. Decoders must fail cleanly or surface the change — a flip that
// decodes successfully back to the original artifact would be a silently
// accepted modification.

Buffer SampleRecord(Buffer* payload_out) {
  Random rng(40);
  Buffer payload;
  rng.Fill(&payload, 75);
  Buffer record;
  chunk::AppendRecord(&record, chunk::RecordType::kData, payload);
  *payload_out = payload;
  return record;
}

TEST(CodecCorpusTest, RecordTruncationsAlwaysRejected) {
  Buffer payload;
  Buffer record = SampleRecord(&payload);
  chunk::RecordView view;
  ASSERT_TRUE(chunk::ParseRecord(record, &view).ok());
  ASSERT_EQ(view.record_size, record.size());

  for (size_t cut = 0; cut < record.size(); cut++) {
    Buffer truncated(record.begin(), record.begin() + cut);
    chunk::RecordView out;
    EXPECT_FALSE(chunk::ParseRecord(truncated, &out).ok()) << "cut " << cut;
  }
}

TEST(CodecCorpusTest, RecordBitFlipsNeverSilentlyAccepted) {
  Buffer payload;
  Buffer record = SampleRecord(&payload);
  for (size_t i = 0; i < record.size(); i++) {
    for (uint8_t mask : {0x01, 0x80}) {
      Buffer flipped = record;
      flipped[i] ^= mask;
      chunk::RecordView view;
      Status parsed = chunk::ParseRecord(flipped, &view);
      if (!parsed.ok()) continue;  // Rejected: fine.
      // Parsed despite the flip (e.g. the unchecksummed type byte): the
      // change must be visible to the caller, never masked.
      bool differs = view.type != chunk::RecordType::kData ||
                     Slice(view.payload) != Slice(payload) ||
                     view.record_size != record.size();
      EXPECT_TRUE(differs) << "byte " << i << " mask " << int(mask)
                           << " silently accepted";
    }
  }
}

TEST(CodecCorpusTest, SegmentHeaderTruncationAndFlips) {
  Buffer header = chunk::EncodeSegmentHeader(3);
  ASSERT_EQ(header.size(), chunk::kSegmentHeaderSize);
  uint32_t id = 0;
  ASSERT_TRUE(chunk::DecodeSegmentHeader(header, &id).ok());
  ASSERT_EQ(id, 3u);

  for (size_t cut = 0; cut < header.size(); cut++) {
    Buffer truncated(header.begin(), header.begin() + cut);
    EXPECT_FALSE(chunk::DecodeSegmentHeader(truncated, &id).ok())
        << "cut " << cut;
  }
  for (size_t i = 0; i < header.size(); i++) {
    for (uint8_t mask : {0x01, 0x80}) {
      Buffer flipped = header;
      flipped[i] ^= mask;
      uint32_t out = 0;
      Status decoded = chunk::DecodeSegmentHeader(flipped, &out);
      // A magic flip must fail; a segment-id flip must decode a DIFFERENT
      // id (the caller cross-checks it against the file name).
      if (decoded.ok()) {
        EXPECT_NE(out, 3u) << "byte " << i << " mask " << int(mask);
      }
    }
  }
}

chunk::AnchorState SampleAnchor() {
  chunk::AnchorState state;
  state.counter = 42;
  state.seq = 17;
  state.next_chunk_id = 1000;
  state.has_root = true;
  state.root_loc = {5, 64, 900};
  Buffer h(12, 0x5A);
  state.root_hash = crypto::Digest(h.data(), 12);
  Buffer m(32, 0xC3);
  state.ckpt_mac = crypto::Digest(m.data(), 32);
  state.scan_segment = 6;
  state.scan_offset = 512;
  return state;
}

TEST(CodecCorpusTest, AnchorTruncationsAlwaysRejected) {
  crypto::CipherSuite suite = Suite();
  Buffer encoded = chunk::AnchorManager::Encode(SampleAnchor(), suite, 12);
  ASSERT_TRUE(chunk::AnchorManager::Decode(encoded, suite, 12).ok());
  for (size_t cut = 0; cut < encoded.size(); cut++) {
    Buffer truncated(encoded.begin(), encoded.begin() + cut);
    EXPECT_FALSE(chunk::AnchorManager::Decode(truncated, suite, 12).ok())
        << "cut " << cut;
  }
}

TEST(CodecCorpusTest, AnchorBitFlipsAlwaysRejected) {
  // The anchor is the trust root: every byte is under the MAC, so every
  // single-bit flip must be rejected outright.
  crypto::CipherSuite suite = Suite();
  chunk::AnchorState state = SampleAnchor();
  Buffer encoded = chunk::AnchorManager::Encode(state, suite, 12);
  for (size_t i = 0; i < encoded.size(); i++) {
    for (uint8_t mask : {0x01, 0x80}) {
      Buffer flipped = encoded;
      flipped[i] ^= mask;
      Result<chunk::AnchorState> decoded =
          chunk::AnchorManager::Decode(flipped, suite, 12);
      EXPECT_FALSE(decoded.ok())
          << "byte " << i << " mask " << int(mask) << " accepted";
    }
  }
}

TEST(CodecFuzzTest, SealedChunkBitFlipsAlwaysCaughtByOpenOrHash) {
  // Flip every byte of a sealed chunk: either CBC unpadding fails, or the
  // plaintext differs (which the Merkle hash above would catch — emulated
  // here by direct comparison).
  crypto::CipherSuite suite = Suite();
  Buffer plain;
  Random rng(7);
  rng.Fill(&plain, 100);
  Buffer sealed = suite.Seal(plain);
  for (size_t i = 0; i < sealed.size(); i++) {
    Buffer tampered = sealed;
    tampered[i] ^= 0x01;
    auto opened = suite.Open(tampered);
    if (opened.ok()) {
      EXPECT_NE(*opened, plain) << "byte " << i;
    }
  }
}

}  // namespace
}  // namespace tdb
