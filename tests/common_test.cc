#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/coding.h"
#include "common/lz.h"
#include "common/random.h"
#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace tdb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CodesAndMessages) {
  Status s = Status::NotFound("chunk 42");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: chunk 42");

  EXPECT_TRUE(Status::TamperDetected("x").IsTamperDetected());
  EXPECT_TRUE(Status::ReplayDetected("x").IsReplayDetected());
  EXPECT_TRUE(Status::LockTimeout("x").IsLockTimeout());
  EXPECT_TRUE(Status::UniqueViolation("x").IsUniqueViolation());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = []() { return Status::IOError("disk"); };
  auto outer = [&]() -> Status {
    TDB_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), Status::Code::kIOError);
}

TEST(ResultTest, ValueAndStatus) {
  Result<int> ok_result(7);
  ASSERT_TRUE(ok_result.ok());
  EXPECT_EQ(*ok_result, 7);

  Result<int> err_result(Status::NotFound("nope"));
  EXPECT_FALSE(err_result.ok());
  EXPECT_TRUE(err_result.status().IsNotFound());
}

TEST(ResultTest, AssignOrReturn) {
  auto make = [](bool fail) -> Result<std::string> {
    if (fail) return Status::IOError("bad");
    return std::string("hello");
  };
  auto use = [&](bool fail) -> Status {
    TDB_ASSIGN_OR_RETURN(std::string v, make(fail));
    EXPECT_EQ(v, "hello");
    return Status::OK();
  };
  EXPECT_TRUE(use(false).ok());
  EXPECT_EQ(use(true).code(), Status::Code::kIOError);
}

TEST(SliceTest, BasicsAndEquality) {
  Buffer b = {1, 2, 3};
  Slice s(b);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s[1], 2);
  EXPECT_EQ(s, Slice(b));
  s.RemovePrefix(1);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], 2);
  EXPECT_NE(s, Slice(b));

  Slice from_str("abc");
  EXPECT_EQ(from_str.size(), 3u);
  EXPECT_EQ(from_str.ToString(), "abc");
}

TEST(CodingTest, FixedRoundtrip) {
  Buffer b;
  PutFixed16(&b, 0xBEEF);
  PutFixed32(&b, 0xDEADBEEF);
  PutFixed64(&b, 0x0123456789ABCDEFull);
  Decoder dec{Slice(b)};
  uint16_t v16;
  uint32_t v32;
  uint64_t v64;
  ASSERT_TRUE(dec.GetFixed16(&v16).ok());
  ASSERT_TRUE(dec.GetFixed32(&v32).ok());
  ASSERT_TRUE(dec.GetFixed64(&v64).ok());
  EXPECT_EQ(v16, 0xBEEF);
  EXPECT_EQ(v32, 0xDEADBEEFu);
  EXPECT_EQ(v64, 0x0123456789ABCDEFull);
  EXPECT_TRUE(dec.done());
}

TEST(CodingTest, VarintBoundaries) {
  const uint64_t cases[] = {0,       1,          127,        128,
                            16383,   16384,      UINT32_MAX, 1ull << 40,
                            1ull << 63, UINT64_MAX};
  for (uint64_t v : cases) {
    Buffer b;
    PutVarint64(&b, v);
    Decoder dec{Slice(b)};
    uint64_t out;
    ASSERT_TRUE(dec.GetVarint64(&out).ok()) << v;
    EXPECT_EQ(out, v);
    EXPECT_TRUE(dec.done());
  }
}

TEST(CodingTest, VarintRandomRoundtrip) {
  Random rng(1234);
  Buffer b;
  std::vector<uint64_t> values;
  for (int i = 0; i < 1000; i++) {
    uint64_t v = rng.Next() >> (rng.Uniform(64));
    values.push_back(v);
    PutVarint64(&b, v);
  }
  Decoder dec{Slice(b)};
  for (uint64_t expected : values) {
    uint64_t out;
    ASSERT_TRUE(dec.GetVarint64(&out).ok());
    EXPECT_EQ(out, expected);
  }
  EXPECT_TRUE(dec.done());
}

TEST(CodingTest, LengthPrefixedRoundtrip) {
  Buffer b;
  PutLengthPrefixed(&b, Slice("hello"));
  PutLengthPrefixed(&b, Slice(""));
  PutLengthPrefixed(&b, Slice("world!"));
  Decoder dec{Slice(b)};
  Slice s1, s2, s3;
  ASSERT_TRUE(dec.GetLengthPrefixed(&s1).ok());
  ASSERT_TRUE(dec.GetLengthPrefixed(&s2).ok());
  ASSERT_TRUE(dec.GetLengthPrefixed(&s3).ok());
  EXPECT_EQ(s1.ToString(), "hello");
  EXPECT_EQ(s2.ToString(), "");
  EXPECT_EQ(s3.ToString(), "world!");
}

TEST(CodingTest, DecoderRejectsTruncation) {
  Buffer b;
  PutFixed32(&b, 42);
  b.resize(3);  // Truncate.
  Decoder dec{Slice(b)};
  uint32_t v;
  EXPECT_TRUE(dec.GetFixed32(&v).IsCorruption());
}

TEST(CodingTest, DecoderRejectsMalformedVarint) {
  Buffer b(11, 0xFF);  // Continuation bit never clears.
  Decoder dec{Slice(b)};
  uint64_t v;
  EXPECT_TRUE(dec.GetVarint64(&v).IsCorruption());
}

TEST(CodingTest, DecoderRejectsOverlongLengthPrefix) {
  Buffer b;
  PutVarint64(&b, 1000);  // Claims 1000 bytes; none follow.
  Decoder dec{Slice(b)};
  Slice s;
  EXPECT_TRUE(dec.GetLengthPrefixed(&s).IsCorruption());
}

TEST(CodingTest, PatchFixed32) {
  Buffer b;
  PutFixed32(&b, 0);
  PutFixed32(&b, 7);
  PatchFixed32(&b, 0, 0xCAFEBABE);
  EXPECT_EQ(DecodeFixed32(b.data()), 0xCAFEBABEu);
  EXPECT_EQ(DecodeFixed32(b.data() + 4), 7u);
}

TEST(CodingTest, ToHex) {
  Buffer b = {0x00, 0xab, 0xff};
  EXPECT_EQ(ToHex(Slice(b)), "00abff");
}

TEST(CodingTest, ChecksumDistinguishesInputs) {
  EXPECT_NE(Checksum32(Slice("abc")), Checksum32(Slice("abd")));
  EXPECT_EQ(Checksum32(Slice("abc")), Checksum32(Slice("abc")));
}

Buffer LzRoundtrip(const Buffer& raw) {
  Buffer packed = LzCompress(Slice(raw));
  Result<Buffer> unpacked = LzDecompress(Slice(packed), raw.size());
  EXPECT_TRUE(unpacked.ok()) << unpacked.status().ToString();
  return unpacked.ok() ? *std::move(unpacked) : Buffer{};
}

TEST(LzTest, RoundtripEmptyAndTiny) {
  for (size_t n : {0u, 1u, 2u, 3u, 4u, 5u}) {
    Buffer raw(n, 0x5a);
    EXPECT_EQ(LzRoundtrip(raw), raw) << n;
  }
}

TEST(LzTest, CompressesRepetitiveData) {
  Buffer raw(8192, 0);
  for (size_t i = 0; i < raw.size(); i++) raw[i] = "tdbtdbtdb!"[i % 10];
  Buffer packed = LzCompress(Slice(raw));
  EXPECT_LT(packed.size(), raw.size() / 4);
  EXPECT_EQ(LzRoundtrip(raw), raw);
}

TEST(LzTest, RoundtripLongRuns) {
  // offset < match length: the match overlaps its own output.
  Buffer raw(100000, 0xee);
  Buffer packed = LzCompress(Slice(raw));
  EXPECT_LT(packed.size(), 1000u);
  EXPECT_EQ(LzRoundtrip(raw), raw);
}

TEST(LzTest, RoundtripIncompressibleRandom) {
  Random rng(77);
  for (size_t n : {16u, 100u, 4096u, 70000u}) {
    Buffer raw;
    rng.Fill(&raw, n);
    Buffer packed = LzCompress(Slice(raw));
    // Random data grows slightly but must still round-trip exactly.
    EXPECT_EQ(LzRoundtrip(raw), raw) << n;
  }
}

TEST(LzTest, RoundtripMixedContent) {
  Random rng(13);
  for (int iter = 0; iter < 50; iter++) {
    size_t n = rng.Range(1, 3000);
    Buffer raw;
    rng.Fill(&raw, n);
    // Half-repeated payloads (the harness shape) and sprinkled runs.
    for (size_t i = n / 2; i < n; i++) raw[i] = raw[i - n / 2];
    if (n > 64) std::fill(raw.begin() + 8, raw.begin() + 40, 0x11);
    EXPECT_EQ(LzRoundtrip(raw), raw) << "iter " << iter;
  }
}

TEST(LzTest, DecompressRejectsOversizedClaim) {
  Buffer raw(500, 7);
  Buffer packed = LzCompress(Slice(raw));
  EXPECT_TRUE(LzDecompress(Slice(packed), raw.size()).ok());
  EXPECT_TRUE(
      LzDecompress(Slice(packed), raw.size() - 1).status().IsCorruption());
}

TEST(LzTest, DecompressRejectsTruncation) {
  Buffer raw(2000, 0);
  for (size_t i = 0; i < raw.size(); i++) raw[i] = uint8_t(i * 31);
  for (size_t i = raw.size() / 2; i < raw.size(); i++) raw[i] = raw[i / 2];
  Buffer packed = LzCompress(Slice(raw));
  for (size_t cut = 0; cut < packed.size(); cut++) {
    Buffer trunc(packed.begin(), packed.begin() + cut);
    Result<Buffer> out = LzDecompress(Slice(trunc), raw.size());
    // A prefix is only accepted when the bytes already decoded form the
    // complete payload (e.g. dropping a trailing empty-literals token) —
    // still a valid encoding of the same data. Anything short must error.
    if (out.ok()) {
      EXPECT_EQ(*out, raw) << "truncation at " << cut << " accepted";
    }
  }
}

TEST(LzTest, DecompressSurvivesMutation) {
  // Single-byte corruptions must never crash or over-read; they either
  // error out or produce some same-or-smaller output (the chunk layer's
  // Merkle hash is what detects semantic corruption).
  Random rng(4242);
  Buffer raw;
  rng.Fill(&raw, 1500);
  for (size_t i = raw.size() / 2; i < raw.size(); i++) raw[i] = raw[i - 700];
  Buffer packed = LzCompress(Slice(raw));
  for (size_t pos = 0; pos < packed.size(); pos++) {
    for (uint8_t delta : {0x01, 0x80, 0xff}) {
      Buffer bad = packed;
      bad[pos] ^= delta;
      Result<Buffer> out = LzDecompress(Slice(bad), raw.size());
      if (out.ok()) {
        EXPECT_LE(out->size(), raw.size());
      }
    }
  }
}

TEST(LzTest, DecompressRejectsGarbage) {
  Random rng(99);
  for (int iter = 0; iter < 200; iter++) {
    Buffer junk;
    rng.Fill(&junk, rng.Range(0, 300));
    Result<Buffer> out = LzDecompress(Slice(junk), 1 << 20);
    if (out.ok()) {
      EXPECT_LE(out->size(), 1u << 20);
    }
  }
}

TEST(RandomTest, DeterministicFromSeed) {
  Random a(99), b(99), c(100);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RandomTest, UniformInRange) {
  Random rng(7);
  for (int i = 0; i < 1000; i++) {
    uint64_t v = rng.Range(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RandomTest, BernoulliExtremes) {
  Random rng(7);
  for (int i = 0; i < 100; i++) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(ThreadPoolTest, ResultsLandInSubmissionOrder) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
  constexpr size_t kN = 200;
  std::vector<size_t> results(kN, 0);
  pool.ParallelFor(kN, [&](size_t i) { results[i] = i * i; });
  for (size_t i = 0; i < kN; i++) {
    ASSERT_EQ(results[i], i * i) << i;
  }
}

TEST(ThreadPoolTest, ZeroAndOneThreadDegradeToInline) {
  for (int threads : {0, 1}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.thread_count(), 0);
    const std::thread::id caller = std::this_thread::get_id();
    std::vector<std::thread::id> ran_on(8);
    bool submitted_ran = false;
    pool.ParallelFor(8, [&](size_t i) {
      ran_on[i] = std::this_thread::get_id();
    });
    pool.Submit([&] { submitted_ran = true; }).get();
    EXPECT_TRUE(submitted_ran);
    for (const std::thread::id& id : ran_on) {
      EXPECT_EQ(id, caller);  // Inline on the calling thread, in order.
    }
  }
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  for (int threads : {0, 3}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.ParallelFor(64,
                         [&](size_t i) {
                           if (i == 37) throw std::runtime_error("boom");
                         }),
        std::runtime_error);
    // The pool survives a throwing batch and accepts more work.
    std::atomic<int> done{0};
    pool.ParallelFor(16, [&](size_t) { done++; });
    EXPECT_EQ(done.load(), 16);
  }
}

TEST(ThreadPoolTest, SubmitFutureRethrows) {
  ThreadPool pool(2);
  auto future = pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ErrorStatusPropagates) {
  for (int threads : {0, 4}) {
    ThreadPool pool(threads);
    Status all_ok = pool.ParallelForStatus(
        32, [](size_t) { return Status::OK(); });
    EXPECT_TRUE(all_ok.ok());
    Status failed = pool.ParallelForStatus(32, [](size_t i) {
      if (i == 7) return Status::IOError("disk on index 7");
      return Status::OK();
    });
    EXPECT_EQ(failed.code(), Status::Code::kIOError);
    EXPECT_NE(failed.ToString().find("index 7"), std::string::npos);
  }
}

}  // namespace
}  // namespace tdb
