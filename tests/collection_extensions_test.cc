// Tests for the §5.2.3 immutable-key extension, string-keyed collections,
// and assorted collection/Ref edge cases not covered by the main suite.

#include <gtest/gtest.h>

#include "collection/collection.h"
#include "common/random.h"
#include "platform/mem_store.h"
#include "platform/one_way_counter.h"
#include "platform/secret_store.h"

namespace tdb::collection {
namespace {

using object::ObjectId;

constexpr object::ClassId kSongClass = 120;

class Song : public object::Object {
 public:
  Song() = default;
  Song(int64_t id, std::string title, int64_t plays)
      : id_(id), title_(std::move(title)), plays_(plays) {}

  object::ClassId class_id() const override { return kSongClass; }
  void Pickle(object::Pickler* p) const override {
    p->PutInt64(id_);
    p->PutString(title_);
    p->PutInt64(plays_);
  }
  Status UnpickleFrom(object::Unpickler* u) override {
    TDB_RETURN_IF_ERROR(u->GetInt64(&id_));
    TDB_RETURN_IF_ERROR(u->GetString(&title_));
    return u->GetInt64(&plays_);
  }

  int64_t id_ = 0;
  std::string title_;
  int64_t plays_ = 0;
};

using SongIntIndexer = Indexer<Song, IntKey>;
using SongStringIndexer = Indexer<Song, StringKey>;

std::shared_ptr<GenericIndexer> IdIndexer() {
  // The song id never changes: declared immutable (§5.2.3).
  return std::make_shared<SongIntIndexer>(
      "by-id", Uniqueness::kUnique, IndexKind::kHashTable,
      [](const Song& s) { return IntKey(s.id_); }, KeyMutability::kImmutable);
}

std::shared_ptr<GenericIndexer> TitleIndexer() {
  return std::make_shared<SongStringIndexer>(
      "by-title", Uniqueness::kNonUnique, IndexKind::kBTree,
      [](const Song& s) { return StringKey(s.title_); });
}

std::shared_ptr<GenericIndexer> PlaysIndexer() {
  return std::make_shared<SongIntIndexer>(
      "by-plays", Uniqueness::kNonUnique, IndexKind::kBTree,
      [](const Song& s) { return IntKey(s.plays_); });
}

struct Env {
  platform::MemUntrustedStore store;
  platform::MemSecretStore secrets;
  platform::MemOneWayCounter counter;
  std::unique_ptr<chunk::ChunkStore> chunks;
  std::unique_ptr<object::ObjectStore> objects;
  std::unique_ptr<CollectionStore> collections;

  Env() {
    TDB_CHECK(secrets.Provision(Slice("ext-secret")).ok());
    chunk::ChunkStoreOptions copts;
    copts.security = crypto::SecurityConfig::Modern();
    copts.segment_size = 16 * 1024;
    copts.map_fanout = 8;
    chunks = std::move(chunk::ChunkStore::Open(&store, &secrets, &counter,
                                               copts))
                 .value();
    objects = std::move(object::ObjectStore::Open(chunks.get())).value();
    TDB_CHECK(objects->registry().Register<Song>(kSongClass).ok());
    collections = std::move(CollectionStore::Open(objects.get())).value();
  }
};

// Builds a library collection with all three indexes and `n` songs.
void Populate(Env& env, int n) {
  CTransaction t(env.collections.get());
  auto lib = t.CreateCollection("library", IdIndexer());
  TDB_CHECK(lib.ok(), lib.status().ToString());
  TDB_CHECK((*lib)->CreateIndex(&t, TitleIndexer()).ok());
  TDB_CHECK((*lib)->CreateIndex(&t, PlaysIndexer()).ok());
  for (int64_t i = 0; i < n; i++) {
    TDB_CHECK((*lib)
                  ->Insert(&t, std::make_unique<Song>(
                                   i, "song-" + std::to_string(i % 7), i))
                  .status()
                  .ok());
  }
  TDB_CHECK(t.Commit(true).ok());
}

TEST(ImmutableKeyTest, UpdatesSkipImmutableIndexMaintenance) {
  Env env;
  Populate(env, 20);
  CTransaction t(env.collections.get());
  auto lib = t.ReadCollection("library");
  ASSERT_TRUE(lib.ok());
  auto id_indexer = IdIndexer();

  // Update mutable fields through an iterator on the immutable index.
  auto it = (*lib)->Query(&t, *id_indexer, IntKey(5));
  ASSERT_TRUE(it.ok());
  ASSERT_FALSE((*it)->end());
  auto song = (*it)->Write<Song>();
  ASSERT_TRUE(song.ok());
  (*song)->plays_ = 999;
  (*song)->title_ = "renamed";
  ASSERT_TRUE((*it)->Close().ok());

  // The immutable id index still resolves; the mutable indexes moved.
  auto by_id = (*lib)->Query(&t, *id_indexer, IntKey(5));
  ASSERT_TRUE(by_id.ok());
  ASSERT_FALSE((*by_id)->end());
  EXPECT_EQ((*(*by_id)->Read<Song>())->plays_, 999);
  ASSERT_TRUE((*by_id)->Close().ok());

  auto plays = PlaysIndexer();
  auto by_plays = (*lib)->Query(&t, *plays, IntKey(999));
  ASSERT_TRUE(by_plays.ok());
  ASSERT_FALSE((*by_plays)->end());
  EXPECT_EQ((*(*by_plays)->Read<Song>())->id_, 5);
  ASSERT_TRUE((*by_plays)->Close().ok());

  auto title = TitleIndexer();
  auto by_title = (*lib)->Query(&t, *title, StringKey("renamed"));
  ASSERT_TRUE(by_title.ok());
  ASSERT_FALSE((*by_title)->end());
  ASSERT_TRUE((*by_title)->Close().ok());
  ASSERT_TRUE(t.Commit().ok());
}

TEST(ImmutableKeyTest, RemoveCurrentWorksOnImmutableIndex) {
  Env env;
  Populate(env, 10);
  CTransaction t(env.collections.get());
  auto lib = t.ReadCollection("library");
  ASSERT_TRUE(lib.ok());
  auto id_indexer = IdIndexer();
  auto it = (*lib)->Query(&t, *id_indexer, IntKey(3));
  ASSERT_TRUE(it.ok());
  ASSERT_FALSE((*it)->end());
  ASSERT_TRUE((*it)->RemoveCurrent().ok());
  ASSERT_TRUE((*it)->Close().ok());

  auto gone = (*lib)->Query(&t, *id_indexer, IntKey(3));
  ASSERT_TRUE(gone.ok());
  EXPECT_TRUE((*gone)->end());
  ASSERT_TRUE((*gone)->Close().ok());
  // The mutable indexes were maintained too.
  auto plays = PlaysIndexer();
  auto by_plays = (*lib)->Query(&t, *plays, IntKey(3));
  ASSERT_TRUE(by_plays.ok());
  EXPECT_TRUE((*by_plays)->end());
  ASSERT_TRUE((*by_plays)->Close().ok());
  ASSERT_TRUE(t.Commit().ok());
}

TEST(ImmutableKeyTest, MutabilityMismatchRejected) {
  Env env;
  Populate(env, 3);
  CTransaction t(env.collections.get());
  auto lib = t.ReadCollection("library");
  ASSERT_TRUE(lib.ok());
  // Same name/kind/uniqueness but declared mutable: stored index disagrees.
  auto wrong = std::make_shared<SongIntIndexer>(
      "by-id", Uniqueness::kUnique, IndexKind::kHashTable,
      [](const Song& s) { return IntKey(s.id_); });
  auto it = (*lib)->Query(&t, *wrong, IntKey(1));
  EXPECT_EQ(it.status().code(), Status::Code::kInvalidArgument);
}

TEST(StringKeyTest, RangeQueriesOverTitles) {
  Env env;
  Populate(env, 21);  // Titles song-0 .. song-6, three of each.
  CTransaction t(env.collections.get());
  auto lib = t.ReadCollection("library");
  ASSERT_TRUE(lib.ok());
  auto title = TitleIndexer();
  StringKey min("song-2"), max("song-4");
  auto it = (*lib)->Query(&t, *title, &min, &max);
  ASSERT_TRUE(it.ok()) << it.status().ToString();
  int count = 0;
  std::string last;
  for (; !(*it)->end(); (*it)->Next()) {
    auto song = (*it)->Read<Song>();
    ASSERT_TRUE(song.ok());
    EXPECT_GE((*song)->title_, "song-2");
    EXPECT_LE((*song)->title_, "song-4");
    EXPECT_GE((*song)->title_, last);  // B-tree returns sorted order.
    last = (*song)->title_;
    count++;
  }
  EXPECT_EQ(count, 9);  // 3 titles x 3 songs each.
  ASSERT_TRUE((*it)->Close().ok());
}

TEST(RefCastTest, WritableDownCastChecked) {
  Env env;
  object::Transaction txn(env.objects.get());
  ObjectId oid = *txn.Insert(std::make_unique<Song>(1, "t", 0));
  auto base = txn.OpenWritable<object::Object>(oid);
  ASSERT_TRUE(base.ok());
  auto song = object::ref_cast<Song>(*base);
  ASSERT_TRUE(song.ok());
  (*song)->plays_ = 42;
  // AsReadonly view of the same object.
  auto ro = (*song).AsReadonly();
  EXPECT_EQ(ro->plays_, 42);
  // Wrong class fails cleanly.
  auto wrong = object::ref_cast<Collection>(*base);
  EXPECT_EQ(wrong.status().code(), Status::Code::kTypeMismatch);
  ASSERT_TRUE(txn.Commit().ok());
}

TEST(IteratorEdgeTest, WriteThenRemoveSameObject) {
  Env env;
  Populate(env, 5);
  CTransaction t(env.collections.get());
  auto lib = t.ReadCollection("library");
  ASSERT_TRUE(lib.ok());
  auto id_indexer = IdIndexer();
  auto it = (*lib)->Query(&t, *id_indexer, IntKey(2));
  ASSERT_TRUE(it.ok());
  auto song = (*it)->Write<Song>();
  ASSERT_TRUE(song.ok());
  (*song)->plays_ = 12345;        // Update...
  ASSERT_TRUE((*it)->RemoveCurrent().ok());  // ...then delete: delete wins.
  ASSERT_TRUE((*it)->Close().ok());

  auto gone = (*lib)->Query(&t, *id_indexer, IntKey(2));
  ASSERT_TRUE(gone.ok());
  EXPECT_TRUE((*gone)->end());
  ASSERT_TRUE((*gone)->Close().ok());
  auto plays = PlaysIndexer();
  for (int64_t key : {2, 12345}) {
    auto by_plays = (*lib)->Query(&t, *plays, IntKey(key));
    ASSERT_TRUE(by_plays.ok());
    EXPECT_TRUE((*by_plays)->end()) << key;
    ASSERT_TRUE((*by_plays)->Close().ok());
  }
  ASSERT_TRUE(t.Commit().ok());
}

TEST(IteratorEdgeTest, TransactionDestructorWithOpenIterator) {
  Env env;
  Populate(env, 5);
  {
    CTransaction t(env.collections.get());
    auto lib = t.ReadCollection("library");
    ASSERT_TRUE(lib.ok());
    auto id_indexer = IdIndexer();
    auto it = (*lib)->Query(&t, *id_indexer);
    ASSERT_TRUE(it.ok());
    auto song = (*it)->Write<Song>();
    ASSERT_TRUE(song.ok());
    (*song)->plays_ = -1;
    // Neither iterator Close nor Commit: both destructors run (iterator
    // first, then transaction abort). Must not crash, must roll back.
  }
  CTransaction t(env.collections.get());
  auto lib = t.ReadCollection("library");
  ASSERT_TRUE(lib.ok());
  auto plays = PlaysIndexer();
  auto by_plays = (*lib)->Query(&t, *plays, IntKey(-1));
  ASSERT_TRUE(by_plays.ok());
  EXPECT_TRUE((*by_plays)->end());
  ASSERT_TRUE((*by_plays)->Close().ok());
}

TEST(IteratorEdgeTest, EmptyResultIterator) {
  Env env;
  Populate(env, 3);
  CTransaction t(env.collections.get());
  auto lib = t.ReadCollection("library");
  ASSERT_TRUE(lib.ok());
  auto id_indexer = IdIndexer();
  auto it = (*lib)->Query(&t, *id_indexer, IntKey(777));
  ASSERT_TRUE(it.ok());
  EXPECT_TRUE((*it)->end());
  EXPECT_EQ((*it)->Read<Song>().status().code(),
            Status::Code::kInvalidArgument);
  ASSERT_TRUE((*it)->Close().ok());
  ASSERT_TRUE((*it)->Close().ok());  // Idempotent.
}

TEST(IteratorEdgeTest, SnapshotSkipsImmutableSavingBytes) {
  // Quantify the §5.2.3 saving: with all indexes immutable vs mutable,
  // writable dereferences do less snapshot work. (Behavioral proxy: both
  // still work; this documents the API contract.)
  Env env;
  CTransaction t(env.collections.get());
  auto all_immutable = std::make_shared<SongIntIndexer>(
      "imm", Uniqueness::kUnique, IndexKind::kBTree,
      [](const Song& s) { return IntKey(s.id_); }, KeyMutability::kImmutable);
  auto coll = t.CreateCollection("imm-only", all_immutable);
  ASSERT_TRUE(coll.ok());
  for (int64_t i = 0; i < 10; i++) {
    ASSERT_TRUE(
        (*coll)->Insert(&t, std::make_unique<Song>(i, "x", 0)).ok());
  }
  auto it = (*coll)->Query(&t, *all_immutable);
  ASSERT_TRUE(it.ok());
  for (; !(*it)->end(); (*it)->Next()) {
    auto song = (*it)->Write<Song>();
    ASSERT_TRUE(song.ok());
    (*song)->plays_++;
  }
  ASSERT_TRUE((*it)->Close().ok());
  ASSERT_TRUE(t.Commit().ok());
}

}  // namespace
}  // namespace tdb::collection
