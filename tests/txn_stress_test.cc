// Multi-threaded two-phase-locking stress test over the object store,
// with the PR-1 chunk-layer validated-plaintext cache and the parallel
// commit crypto pipeline both enabled. Threads run transfer transactions
// between shared accounts, acquiring locks in RANDOM order so deadlocks
// occur and are broken by lock timeouts (§4.1); aborted transfers retry.
// The invariant is conservation: the sum of balances never changes. The
// test must also be clean under ThreadSanitizer (tools/check.sh --tsan).

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "chunk/chunk_store.h"
#include "common/random.h"
#include "crypto/cipher_suite.h"
#include "object/object_store.h"
#include "platform/mem_store.h"
#include "platform/one_way_counter.h"
#include "platform/secret_store.h"
#include "workload/key_chooser.h"

namespace tdb::object {
namespace {

class Account final : public Object {
 public:
  static constexpr ClassId kClassId = 0x41434354;  // "ACCT"

  Account() = default;
  explicit Account(uint64_t balance) : balance_(balance) {}

  ClassId class_id() const override { return kClassId; }
  void Pickle(Pickler* pickler) const override {
    pickler->PutUint64(balance_);
  }
  Status UnpickleFrom(Unpickler* unpickler) override {
    return unpickler->GetUint64(&balance_);
  }
  size_t ApproxSize() const override { return 32; }

  uint64_t balance() const { return balance_; }
  void set_balance(uint64_t balance) { balance_ = balance; }

 private:
  uint64_t balance_ = 0;
};

constexpr int kAccounts = 8;
constexpr uint64_t kInitialBalance = 1000;
constexpr int kThreads = 4;
constexpr int kTransfersPerThread = 40;
constexpr int kMaxAttemptsPerTransfer = 200;

struct Stack {
  platform::MemUntrustedStore mem;
  platform::MemSecretStore secrets;
  platform::MemOneWayCounter counter;
  std::unique_ptr<chunk::ChunkStore> chunks;
  std::unique_ptr<ObjectStore> objects;
};

void OpenStack(Stack* stack, bool group_commit = false) {
  if (!stack->secrets.GetSecret().ok()) {
    ASSERT_TRUE(stack->secrets.Provision(Slice("stress-secret")).ok());
  }
  chunk::ChunkStoreOptions chunk_options;
  chunk_options.security = crypto::SecurityConfig::Modern();
  chunk_options.segment_size = 8 * 1024;
  chunk_options.map_fanout = 8;
  chunk_options.cache_bytes = 256 * 1024;  // PR-1 validated-plaintext cache.
  chunk_options.crypto_threads = 4;        // PR-1 commit crypto pipeline.
  chunk_options.group_commit = group_commit;  // PR-3 group commit.
  auto chunks = chunk::ChunkStore::Open(&stack->mem, &stack->secrets,
                                        &stack->counter, chunk_options);
  ASSERT_TRUE(chunks.ok()) << chunks.status().ToString();
  stack->chunks = std::move(chunks).value();

  ObjectStoreOptions object_options;
  object_options.cache_capacity_bytes = 4 * 1024;  // Force cache misses.
  object_options.lock_timeout = std::chrono::milliseconds(25);
  auto objects = ObjectStore::Open(stack->chunks.get(), object_options);
  ASSERT_TRUE(objects.ok()) << objects.status().ToString();
  stack->objects = std::move(objects).value();
  ASSERT_TRUE(stack->objects->registry().Register<Account>(
      Account::kClassId).ok());
}

// Seeds the shared accounts with one durable transaction.
std::vector<ObjectId> SeedAccounts(Stack* stack) {
  std::vector<ObjectId> accounts;
  Transaction txn(stack->objects.get());
  for (int i = 0; i < kAccounts; i++) {
    auto oid = txn.Insert(std::make_unique<Account>(kInitialBalance));
    EXPECT_TRUE(oid.ok()) << oid.status().ToString();
    if (!oid.ok()) return accounts;
    accounts.push_back(oid.value());
  }
  EXPECT_TRUE(txn.Commit(true).ok());
  return accounts;
}

// The core multi-threaded transfer workload: random-order 2PL lock
// acquisition (deadlocks broken by timeout), interleaved read-only audits,
// conservation of the total balance throughout and at the end.
// `p_durable` controls how many transfers also wait on durability — with
// group commit enabled that is the path where concurrent committers share
// one sync and one counter bump.
void RunTransferStress(Stack* stack, const std::vector<ObjectId>& accounts,
                       double p_durable) {
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> lock_timeouts{0};
  std::atomic<uint64_t> audits{0};
  std::atomic<bool> failed{false};

  auto worker = [&](int thread_idx) {
    Random rng(1000 + static_cast<uint64_t>(thread_idx));
    for (int t = 0; t < kTransfersPerThread && !failed.load(); t++) {
      // Every few transfers, audit: a read-only transaction must always
      // see a conserved total (2PL isolation).
      if (t % 8 == 7) {
        for (int attempt = 0;; attempt++) {
          Transaction txn(stack->objects.get());
          uint64_t sum = 0;
          bool retry = false;
          for (ObjectId oid : accounts) {
            auto ref = txn.OpenReadonly<Account>(oid);
            if (!ref.ok()) {
              if (ref.status().IsLockTimeout() &&
                  attempt < kMaxAttemptsPerTransfer) {
                lock_timeouts++;
                retry = true;
              } else {
                failed = true;
              }
              break;
            }
            sum += ref.value()->balance();
          }
          (void)txn.Abort();
          if (failed.load()) return;
          if (!retry) {
            if (sum != kAccounts * kInitialBalance) failed = true;
            audits++;
            break;
          }
        }
        continue;
      }

      // Transfer: two distinct accounts locked in random order.
      uint32_t a = static_cast<uint32_t>(rng.Uniform(kAccounts));
      uint32_t b = static_cast<uint32_t>(rng.Uniform(kAccounts - 1));
      if (b >= a) b++;
      uint64_t amount = rng.Uniform(50) + 1;
      bool durable = rng.Bernoulli(p_durable);

      for (int attempt = 0;; attempt++) {
        Transaction txn(stack->objects.get());
        auto src = txn.OpenWritable<Account>(accounts[a]);
        auto dst = src.ok() ? txn.OpenWritable<Account>(accounts[b])
                            : Result<WritableRef<Account>>(src.status());
        if (!src.ok() || !dst.ok()) {
          Status status = src.ok() ? dst.status() : src.status();
          (void)txn.Abort();
          if (status.IsLockTimeout() && attempt < kMaxAttemptsPerTransfer) {
            lock_timeouts++;
            continue;  // Deadlock broken by timeout: retry.
          }
          failed = true;
          return;
        }
        uint64_t moved = std::min(amount, src.value()->balance());
        src.value()->set_balance(src.value()->balance() - moved);
        dst.value()->set_balance(dst.value()->balance() + moved);
        Status status = txn.Commit(durable);
        if (status.ok()) {
          committed++;
          break;
        }
        if (status.IsLockTimeout() && attempt < kMaxAttemptsPerTransfer) {
          lock_timeouts++;
          continue;
        }
        failed = true;
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; i++) threads.emplace_back(worker, i);
  for (std::thread& thread : threads) thread.join();

  ASSERT_FALSE(failed.load()) << "a transaction failed non-retryably "
                              << "(committed=" << committed.load()
                              << " timeouts=" << lock_timeouts.load() << ")";
  EXPECT_GT(committed.load(), 0u);
  EXPECT_GT(audits.load(), 0u);

  // Conservation after all threads are done.
  {
    Transaction txn(stack->objects.get());
    uint64_t sum = 0;
    for (ObjectId oid : accounts) {
      auto ref = txn.OpenReadonly<Account>(oid);
      ASSERT_TRUE(ref.ok()) << ref.status().ToString();
      sum += ref.value()->balance();
    }
    ASSERT_TRUE(txn.Abort().ok());
    EXPECT_EQ(sum, kAccounts * kInitialBalance);
  }

  // The underlying chunk store (cache + pipeline) is still fully intact.
  uint64_t checked = 0;
  EXPECT_TRUE(stack->chunks->VerifyIntegrity(&checked).ok());
  EXPECT_GE(checked, static_cast<uint64_t>(kAccounts));
}

TEST(TxnStressTest, ConcurrentTransfersConserveTotal) {
  Stack stack;
  OpenStack(&stack);
  if (HasFatalFailure()) return;
  std::vector<ObjectId> accounts = SeedAccounts(&stack);
  if (HasFailure()) return;
  RunTransferStress(&stack, accounts, /*p_durable=*/0.1);
}

// Same workload with group commit enabled and EVERY transfer durable: the
// commit path exercised here is two-stage (early lock release after the
// batch is buffered, ack after the shared group flush). Conservation and
// audit isolation must hold exactly as under the serialized path, and the
// group-acked state must survive a close + reopen.
TEST(TxnStressTest, GroupCommitDurableTransfersConserveTotal) {
  Stack stack;
  OpenStack(&stack, /*group_commit=*/true);
  if (HasFatalFailure()) return;
  std::vector<ObjectId> accounts = SeedAccounts(&stack);
  if (HasFailure()) return;
  RunTransferStress(&stack, accounts, /*p_durable=*/1.0);
  if (HasFailure()) return;

  chunk::ChunkStoreStats stats = stack.chunks->Stats();
  EXPECT_GT(stats.durable_commits, 0u);
  // Amortization can only merge syncs, never add them.
  EXPECT_LE(stats.log_syncs, stats.durable_commits);
  EXPECT_LE(stats.counter_bumps, stats.durable_commits);

  // Every group-acked commit must survive recovery.
  stack.objects.reset();
  ASSERT_TRUE(stack.chunks->Close().ok());
  stack.chunks.reset();
  OpenStack(&stack, /*group_commit=*/true);
  if (HasFatalFailure()) return;
  Transaction txn(stack.objects.get());
  uint64_t sum = 0;
  for (ObjectId oid : accounts) {
    auto ref = txn.OpenReadonly<Account>(oid);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    sum += ref.value()->balance();
  }
  EXPECT_EQ(sum, kAccounts * kInitialBalance);
}

// Zipfian hot-key contention: transfers pick BOTH endpoints from a
// zipfian distribution (theta = 0.99) over a larger account pool, so a
// handful of hot accounts absorb most of the lock traffic — the
// worst-case 2PL shape the uniform test above cannot produce. Conservation
// must hold exactly, and the store's lock accounting must stay coherent:
// acquisitions grew, every timeout was first a wait, and deadlock-aborts
// never exceed aborts. (No lower bound on timeouts: on a single-CPU run
// the threads may serialize and never collide.)
TEST(TxnStressTest, ZipfianHotKeyContentionConservesTotal) {
  constexpr int kHotAccounts = 32;
  constexpr int kHotThreads = 4;
  constexpr int kHotTransfersPerThread = 60;

  Stack stack;
  OpenStack(&stack);
  if (HasFatalFailure()) return;
  std::vector<ObjectId> accounts;
  {
    Transaction txn(stack.objects.get());
    for (int i = 0; i < kHotAccounts; i++) {
      auto oid = txn.Insert(std::make_unique<Account>(kInitialBalance));
      ASSERT_TRUE(oid.ok()) << oid.status().ToString();
      accounts.push_back(oid.value());
    }
    ASSERT_TRUE(txn.Commit(true).ok());
  }
  const ObjectStoreStats before = stack.objects->Stats();

  const workload::ZipfianChooser zipf(kHotAccounts);  // Shared, read-only.
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> retries{0};
  std::atomic<bool> failed{false};

  auto worker = [&](int thread_idx) {
    Random rng(4000 + static_cast<uint64_t>(thread_idx));
    for (int t = 0; t < kHotTransfersPerThread && !failed.load(); t++) {
      uint32_t a = static_cast<uint32_t>(zipf.Next(&rng));
      uint32_t b = a;
      while (b == a) b = static_cast<uint32_t>(zipf.Next(&rng));
      uint64_t amount = rng.Uniform(50) + 1;
      for (int attempt = 0;; attempt++) {
        Transaction txn(stack.objects.get());
        auto src = txn.OpenWritable<Account>(accounts[a]);
        auto dst = src.ok() ? txn.OpenWritable<Account>(accounts[b])
                            : Result<WritableRef<Account>>(src.status());
        Status status =
            src.ok() && dst.ok() ? Status::OK()
                                 : (src.ok() ? dst.status() : src.status());
        if (status.ok()) {
          uint64_t moved = std::min(amount, src.value()->balance());
          src.value()->set_balance(src.value()->balance() - moved);
          dst.value()->set_balance(dst.value()->balance() + moved);
          status = txn.Commit(/*durable=*/t % 16 == 0);
          if (status.ok()) {
            committed++;
            break;
          }
        } else {
          (void)txn.Abort();
        }
        if (status.IsLockTimeout() && attempt < kMaxAttemptsPerTransfer) {
          retries++;
          continue;
        }
        failed = true;
        return;
      }
    }
  };
  std::vector<std::thread> threads;
  for (int i = 0; i < kHotThreads; i++) threads.emplace_back(worker, i);
  for (std::thread& thread : threads) thread.join();

  ASSERT_FALSE(failed.load())
      << "non-retryable failure (committed=" << committed.load()
      << " retries=" << retries.load() << ")";
  EXPECT_EQ(committed.load(),
            static_cast<uint64_t>(kHotThreads) * kHotTransfersPerThread);

  // Conservation over the full pool.
  {
    Transaction txn(stack.objects.get());
    uint64_t sum = 0;
    for (ObjectId oid : accounts) {
      auto ref = txn.OpenReadonly<Account>(oid);
      ASSERT_TRUE(ref.ok()) << ref.status().ToString();
      sum += ref.value()->balance();
    }
    ASSERT_TRUE(txn.Abort().ok());
    EXPECT_EQ(sum, static_cast<uint64_t>(kHotAccounts) * kInitialBalance);
  }

  // Lock accounting sanity (deltas over this workload only).
  const ObjectStoreStats after = stack.objects->Stats();
  EXPECT_GE(after.lock_acquisitions - before.lock_acquisitions,
            2 * committed.load())
      << "every transfer locks two accounts";
  EXPECT_LE(after.lock_timeouts - before.lock_timeouts,
            after.lock_waits - before.lock_waits)
      << "a timeout is a wait that expired";
  EXPECT_GE(after.lock_timeouts - before.lock_timeouts, retries.load())
      << "every observed LockTimeout status came from an expired wait";
  EXPECT_LE(after.deadlock_aborts, after.aborts);
  EXPECT_GT(after.commits, before.commits);

  uint64_t checked = 0;
  EXPECT_TRUE(stack.chunks->VerifyIntegrity(&checked).ok());
}

// Same workload shape with locking disabled and a single thread: §4.2.3's
// "switch off locking" mode must still commit and conserve the total.
TEST(TxnStressTest, LockingDisabledSingleThreaded) {
  Stack stack;
  ASSERT_TRUE(stack.secrets.Provision(Slice("stress-secret")).ok());
  chunk::ChunkStoreOptions chunk_options;
  chunk_options.security = crypto::SecurityConfig::Modern();
  chunk_options.segment_size = 8 * 1024;
  chunk_options.cache_bytes = 64 * 1024;
  auto chunks = chunk::ChunkStore::Open(&stack.mem, &stack.secrets,
                                        &stack.counter, chunk_options);
  ASSERT_TRUE(chunks.ok());
  stack.chunks = std::move(chunks).value();
  ObjectStoreOptions object_options;
  object_options.locking_enabled = false;
  auto objects = ObjectStore::Open(stack.chunks.get(), object_options);
  ASSERT_TRUE(objects.ok());
  stack.objects = std::move(objects).value();
  ASSERT_TRUE(stack.objects->registry().Register<Account>(
      Account::kClassId).ok());

  std::vector<ObjectId> accounts;
  {
    Transaction txn(stack.objects.get());
    for (int i = 0; i < kAccounts; i++) {
      accounts.push_back(
          txn.Insert(std::make_unique<Account>(kInitialBalance)).value());
    }
    ASSERT_TRUE(txn.Commit(true).ok());
  }
  Random rng(77);
  for (int t = 0; t < 100; t++) {
    uint32_t a = static_cast<uint32_t>(rng.Uniform(kAccounts));
    uint32_t b = static_cast<uint32_t>(rng.Uniform(kAccounts - 1));
    if (b >= a) b++;
    Transaction txn(stack.objects.get());
    auto src = txn.OpenWritable<Account>(accounts[a]);
    auto dst = txn.OpenWritable<Account>(accounts[b]);
    ASSERT_TRUE(src.ok() && dst.ok());
    uint64_t moved = std::min<uint64_t>(rng.Uniform(50) + 1,
                                        src.value()->balance());
    src.value()->set_balance(src.value()->balance() - moved);
    dst.value()->set_balance(dst.value()->balance() + moved);
    ASSERT_TRUE(txn.Commit(t % 10 == 0).ok());
  }
  Transaction txn(stack.objects.get());
  uint64_t sum = 0;
  for (ObjectId oid : accounts) {
    sum += txn.OpenReadonly<Account>(oid).value()->balance();
  }
  EXPECT_EQ(sum, kAccounts * kInitialBalance);
}

}  // namespace
}  // namespace tdb::object
