#include "backup/backup_store.h"

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "platform/archival_store.h"
#include "platform/mem_store.h"
#include "platform/one_way_counter.h"
#include "platform/secret_store.h"

namespace tdb::backup {
namespace {

using chunk::ChunkId;
using chunk::ChunkStore;
using chunk::ChunkStoreOptions;
using chunk::WriteBatch;

struct Env {
  platform::MemUntrustedStore store;
  platform::MemUntrustedStore restore_store;
  platform::MemSecretStore secrets;
  platform::MemOneWayCounter counter;
  platform::MemOneWayCounter restore_counter;
  platform::MemArchivalStore archive;
  crypto::SecurityConfig security = crypto::SecurityConfig::Modern();

  Env() { TDB_CHECK(secrets.Provision(Slice("backup-secret")).ok()); }

  ChunkStoreOptions Options() {
    ChunkStoreOptions options;
    options.security = security;
    options.segment_size = 4 * 1024;
    options.map_fanout = 8;
    return options;
  }

  std::unique_ptr<ChunkStore> OpenSource() {
    auto cs = ChunkStore::Open(&store, &secrets, &counter, Options());
    TDB_CHECK(cs.ok(), cs.status().ToString());
    return std::move(cs).value();
  }
  std::unique_ptr<ChunkStore> OpenTarget() {
    auto cs = ChunkStore::Open(&restore_store, &secrets, &restore_counter,
                               Options());
    TDB_CHECK(cs.ok(), cs.status().ToString());
    return std::move(cs).value();
  }
  std::unique_ptr<BackupStore> OpenBackup(ChunkStore* cs) {
    auto bs = BackupStore::Open(cs, &archive, &secrets, security);
    TDB_CHECK(bs.ok(), bs.status().ToString());
    return std::move(bs).value();
  }
};

TEST(BackupStoreTest, FullBackupRestoresEverything) {
  Env env;
  auto cs = env.OpenSource();
  std::map<ChunkId, Buffer> model;
  Random rng(1);
  for (int i = 0; i < 50; i++) {
    ChunkId cid = cs->AllocateChunkId();
    Buffer data;
    rng.Fill(&data, rng.Uniform(200) + 1);
    model[cid] = data;
    ASSERT_TRUE(cs->Write(cid, data, false).ok());
  }
  auto bs = env.OpenBackup(cs.get());
  auto info = bs->CreateFull("full-1");
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->chunks, 50u);
  EXPECT_EQ(info->seq, 0u);

  auto target = env.OpenTarget();
  ASSERT_TRUE(bs->Restore({"full-1"}, target.get()).ok());
  for (const auto& [cid, expected] : model) {
    auto data = target->Read(cid);
    ASSERT_TRUE(data.ok()) << cid;
    EXPECT_EQ(*data, expected);
  }
}

TEST(BackupStoreTest, IncrementalCarriesOnlyChanges) {
  Env env;
  auto cs = env.OpenSource();
  std::vector<ChunkId> cids;
  for (int i = 0; i < 30; i++) {
    ChunkId cid = cs->AllocateChunkId();
    cids.push_back(cid);
    ASSERT_TRUE(cs->Write(cid, Slice("base"), false).ok());
  }
  auto bs = env.OpenBackup(cs.get());
  ASSERT_TRUE(bs->CreateFull("b0").ok());

  // Change 3, add 1, remove 1.
  ASSERT_TRUE(cs->Write(cids[0], Slice("changed-0"), false).ok());
  ASSERT_TRUE(cs->Write(cids[1], Slice("changed-1"), false).ok());
  ASSERT_TRUE(cs->Write(cids[2], Slice("changed-2"), false).ok());
  ChunkId fresh = cs->AllocateChunkId();
  ASSERT_TRUE(cs->Write(fresh, Slice("fresh"), false).ok());
  ASSERT_TRUE(cs->Deallocate(cids[29], false).ok());

  auto info = bs->CreateIncremental("b1");
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->chunks, 4u);
  EXPECT_EQ(info->removed, 1u);
  EXPECT_EQ(info->seq, 1u);
  // The incremental is much smaller than the full backup.
  EXPECT_LT(*env.archive.ArchiveSize("b1"), *env.archive.ArchiveSize("b0"));

  auto target = env.OpenTarget();
  ASSERT_TRUE(bs->Restore({"b0", "b1"}, target.get()).ok());
  EXPECT_EQ(Slice(*target->Read(cids[0])).ToString(), "changed-0");
  EXPECT_EQ(Slice(*target->Read(cids[5])).ToString(), "base");
  EXPECT_EQ(Slice(*target->Read(fresh)).ToString(), "fresh");
  EXPECT_TRUE(target->Read(cids[29]).status().IsNotFound());
}

TEST(BackupStoreTest, LongIncrementalChain) {
  Env env;
  auto cs = env.OpenSource();
  auto bs = env.OpenBackup(cs.get());
  Random rng(2);
  std::map<ChunkId, Buffer> model;
  std::vector<std::string> names;

  for (int i = 0; i < 10; i++) {
    ChunkId cid = cs->AllocateChunkId();
    Buffer data;
    rng.Fill(&data, 100);
    model[cid] = data;
    ASSERT_TRUE(cs->Write(cid, data, false).ok());
  }
  ASSERT_TRUE(bs->CreateFull("b0").ok());
  names.push_back("b0");

  for (int gen = 1; gen <= 5; gen++) {
    // Mutate a few chunks each generation.
    for (int j = 0; j < 3; j++) {
      ChunkId cid = cs->AllocateChunkId();
      Buffer data;
      rng.Fill(&data, 120);
      model[cid] = data;
      ASSERT_TRUE(cs->Write(cid, data, false).ok());
    }
    auto it = model.begin();
    std::advance(it, rng.Uniform(model.size()));
    ASSERT_TRUE(cs->Deallocate(it->first, false).ok());
    model.erase(it);

    std::string name = "b" + std::to_string(gen);
    auto info = bs->CreateIncremental(name);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    names.push_back(name);
  }

  auto target = env.OpenTarget();
  ASSERT_TRUE(bs->Restore(names, target.get()).ok());
  EXPECT_EQ(target->stats().live_chunks, model.size());
  for (const auto& [cid, expected] : model) {
    auto data = target->Read(cid);
    ASSERT_TRUE(data.ok()) << cid;
    EXPECT_EQ(*data, expected);
  }
}

TEST(BackupStoreTest, IncrementalWithoutFullRejected) {
  Env env;
  auto cs = env.OpenSource();
  auto bs = env.OpenBackup(cs.get());
  EXPECT_EQ(bs->CreateIncremental("x").status().code(),
            Status::Code::kInvalidArgument);
}

TEST(BackupStoreTest, TamperedArchiveRejectedEntirely) {
  Env env;
  auto cs = env.OpenSource();
  ChunkId cid = cs->AllocateChunkId();
  ASSERT_TRUE(cs->Write(cid, Slice("precious"), false).ok());
  auto bs = env.OpenBackup(cs.get());
  ASSERT_TRUE(bs->CreateFull("b0").ok());

  uint64_t size = *env.archive.ArchiveSize("b0");
  for (uint64_t off : {uint64_t(4), size / 2, size - 5}) {
    ASSERT_TRUE(env.archive.CorruptByte("b0", off, 0x10).ok());
    auto target = env.OpenTarget();
    Status s = bs->Restore({"b0"}, target.get());
    EXPECT_FALSE(s.ok()) << "offset " << off;
    // Nothing may have been applied.
    EXPECT_EQ(target->stats().live_chunks, 0u);
    ASSERT_TRUE(env.archive.CorruptByte("b0", off, 0x10).ok());  // Undo.
  }
}

TEST(BackupStoreTest, OutOfOrderChainRejected) {
  Env env;
  auto cs = env.OpenSource();
  ChunkId cid = cs->AllocateChunkId();
  ASSERT_TRUE(cs->Write(cid, Slice("v0"), false).ok());
  auto bs = env.OpenBackup(cs.get());
  ASSERT_TRUE(bs->CreateFull("b0").ok());
  ASSERT_TRUE(cs->Write(cid, Slice("v1"), false).ok());
  ASSERT_TRUE(bs->CreateIncremental("b1").ok());
  ASSERT_TRUE(cs->Write(cid, Slice("v2"), false).ok());
  ASSERT_TRUE(bs->CreateIncremental("b2").ok());

  auto target = env.OpenTarget();
  // Skipping b1: sequence gap.
  EXPECT_FALSE(bs->Restore({"b0", "b2"}, target.get()).ok());
  // Swapped incrementals.
  EXPECT_FALSE(bs->Restore({"b0", "b2", "b1"}, target.get()).ok());
  // Starting with an incremental.
  EXPECT_FALSE(bs->Restore({"b1"}, target.get()).ok());
  EXPECT_EQ(target->stats().live_chunks, 0u);
  // The correct order restores fine.
  EXPECT_TRUE(bs->Restore({"b0", "b1", "b2"}, target.get()).ok());
  EXPECT_EQ(Slice(*target->Read(cid)).ToString(), "v2");
}

TEST(BackupStoreTest, ReplayedOldIncrementalRejected) {
  // An attacker substitutes an older incremental with the same seq: the MAC
  // chain catches it.
  Env env;
  auto cs = env.OpenSource();
  ChunkId cid = cs->AllocateChunkId();
  ASSERT_TRUE(cs->Write(cid, Slice("v0"), false).ok());
  auto bs = env.OpenBackup(cs.get());
  ASSERT_TRUE(bs->CreateFull("b0").ok());
  ASSERT_TRUE(cs->Write(cid, Slice("v1"), false).ok());
  ASSERT_TRUE(bs->CreateIncremental("b1").ok());

  // Second lineage: a new full backup and its incremental.
  ASSERT_TRUE(cs->Write(cid, Slice("v2"), false).ok());
  ASSERT_TRUE(bs->CreateFull("c0").ok());
  ASSERT_TRUE(cs->Write(cid, Slice("v3"), false).ok());
  ASSERT_TRUE(bs->CreateIncremental("c1").ok());

  auto target = env.OpenTarget();
  // b1 has seq 1 but chains to b0, not c0.
  EXPECT_FALSE(bs->Restore({"c0", "b1"}, target.get()).ok());
  EXPECT_TRUE(bs->Restore({"c0", "c1"}, target.get()).ok());
  EXPECT_EQ(Slice(*target->Read(cid)).ToString(), "v3");
}

TEST(BackupStoreTest, ArchiveIsEncrypted) {
  Env env;
  auto cs = env.OpenSource();
  const std::string secret = "SECRET-LICENSE-KEY-XYZZY";
  ASSERT_TRUE(cs->Write(cs->AllocateChunkId(), Slice(secret), false).ok());
  auto bs = env.OpenBackup(cs.get());
  ASSERT_TRUE(bs->CreateFull("b0").ok());

  auto reader = env.archive.OpenArchive("b0");
  ASSERT_TRUE(reader.ok());
  Buffer contents;
  ASSERT_TRUE((*reader)->Read((*reader)->remaining(), &contents).ok());
  std::string haystack(reinterpret_cast<const char*>(contents.data()),
                       contents.size());
  EXPECT_EQ(haystack.find(secret), std::string::npos);
}

TEST(BackupStoreTest, RestoreIntoLiveStoreOverwrites) {
  Env env;
  auto cs = env.OpenSource();
  ChunkId cid = cs->AllocateChunkId();
  ASSERT_TRUE(cs->Write(cid, Slice("good"), false).ok());
  auto bs = env.OpenBackup(cs.get());
  ASSERT_TRUE(bs->CreateFull("b0").ok());

  // The source database "goes bad" (user keeps using it), then restores.
  ASSERT_TRUE(cs->Write(cid, Slice("bad"), true).ok());
  ASSERT_TRUE(bs->Restore({"b0"}, cs.get()).ok());
  EXPECT_EQ(Slice(*cs->Read(cid)).ToString(), "good");
}

TEST(BackupStoreTest, WorksWithSecurityDisabled) {
  Env env;
  env.security = crypto::SecurityConfig::Disabled();
  auto cs = env.OpenSource();
  ChunkId cid = cs->AllocateChunkId();
  ASSERT_TRUE(cs->Write(cid, Slice("plain"), false).ok());
  auto bs = env.OpenBackup(cs.get());
  ASSERT_TRUE(bs->CreateFull("b0").ok());
  ASSERT_TRUE(cs->Write(cid, Slice("plain2"), false).ok());
  ASSERT_TRUE(bs->CreateIncremental("b1").ok());

  auto target = env.OpenTarget();
  ASSERT_TRUE(bs->Restore({"b0", "b1"}, target.get()).ok());
  EXPECT_EQ(Slice(*target->Read(cid)).ToString(), "plain2");
}

TEST(BackupStoreTest, EmptyDatabaseBackupAndRestore) {
  Env env;
  auto cs = env.OpenSource();
  auto bs = env.OpenBackup(cs.get());
  auto info = bs->CreateFull("empty");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->chunks, 0u);
  auto target = env.OpenTarget();
  EXPECT_TRUE(bs->Restore({"empty"}, target.get()).ok());
  EXPECT_EQ(target->stats().live_chunks, 0u);
}

}  // namespace
}  // namespace tdb::backup
